// Package hipac is a Go reproduction of HiPAC, the active DBMS of
// McCarthy & Dayal, "The Architecture of an Active Data Base
// Management System" (SIGMOD 1989).
//
// An active DBMS executes user-specified actions automatically when
// specified conditions arise. HiPAC expresses this with
// Event-Condition-Action (ECA) rules: when the event occurs, evaluate
// the condition; if it is satisfied, execute the action — with
// coupling modes (immediate, deferred, separate) controlling how the
// condition and action relate to the triggering transaction in a
// nested transaction model.
//
// Quick start:
//
//	db, _ := hipac.Open(hipac.Options{})
//	defer db.Close()
//
//	tx := db.Begin()
//	db.DefineClass(tx, hipac.Class{
//	    Name: "Stock",
//	    Attrs: []hipac.AttrDef{
//	        {Name: "symbol", Kind: hipac.KindString, Required: true},
//	        {Name: "price", Kind: hipac.KindFloat, Indexed: true},
//	    },
//	})
//	tx.Commit()
//
//	db.CreateRule(hipac.RuleDef{
//	    Name:      "buy-xerox-at-50",
//	    Event:     "modify(Stock)",
//	    Condition: []string{"select s from Stock s where s.symbol = 'XRX' and event.new_price >= 50"},
//	    Action: []hipac.Step{{
//	        Kind: hipac.StepRequest, Op: "buy",
//	        Args: map[string]string{"symbol": "'XRX'", "qty": "500"},
//	    }},
//	    EC: "separate", CA: "immediate",
//	})
//
// The package re-exports the engine assembled in internal/core; see
// DESIGN.md for the architecture and the per-experiment index.
package hipac

import (
	"repro/internal/clock"
	"repro/internal/core"
	"repro/internal/datum"
	"repro/internal/object"
	"repro/internal/rule"
	"repro/internal/storage"
	"repro/internal/txn"
)

// Engine is an active DBMS instance.
type Engine = core.Engine

// Options configures Open.
type Options = core.Options

// Open creates or reopens an engine. With an empty Options.Dir the
// database is in-memory; otherwise the directory holds the write-ahead
// log and checkpoint snapshot.
func Open(opts Options) (*Engine, error) { return core.Open(opts) }

// Txn is a (top-level or nested) transaction. Begin one with
// Engine.Begin; create subtransactions with Txn.Child.
type Txn = txn.Txn

// Class defines an object class (type).
type Class = object.Class

// AttrDef declares one attribute of a class.
type AttrDef = object.AttrDef

// Record is an object's state: OID, class, and attribute values.
type Record = storage.Record

// OID identifies an object.
type OID = datum.OID

// Value is a typed attribute value.
type Value = datum.Value

// Attribute value constructors.
var (
	// Int makes an integer value.
	Int = datum.Int
	// Float makes a floating-point value.
	Float = datum.Float
	// Str makes a string value.
	Str = datum.Str
	// Bool makes a boolean value.
	Bool = datum.Bool
	// TimeVal makes a time value.
	TimeVal = datum.Time
	// Null makes the null value.
	Null = datum.Null
	// ID makes an object-identifier value.
	ID = datum.ID
	// List makes a list value.
	List = datum.List
)

// Value kinds for schema definitions.
const (
	KindBool   = datum.KindBool
	KindInt    = datum.KindInt
	KindFloat  = datum.KindFloat
	KindString = datum.KindString
	KindTime   = datum.KindTime
	KindOID    = datum.KindOID
	KindList   = datum.KindList
)

// RuleDef is the definition of an ECA rule: the event (in the text
// syntax, e.g. "modify(Stock)", "external(Trade)", "every(5s)",
// "seq(a, b)"), the condition (a collection of queries, all of which
// must be non-empty), the action (a sequence of steps), and the E-C
// and C-A coupling modes ("immediate", "deferred", "separate").
type RuleDef = rule.Def

// Step is one action step.
type Step = rule.Step

// Rule is a compiled, registered rule.
type Rule = rule.Rule

// Action step kinds.
const (
	// StepCreate creates an object of Step.Class with attributes
	// computed from Step.Attrs expressions.
	StepCreate = rule.StepCreate
	// StepModify updates the object named by the Step.Target
	// expression.
	StepModify = rule.StepModify
	// StepDelete deletes the object named by the Step.Target
	// expression.
	StepDelete = rule.StepDelete
	// StepSignal signals the external event Step.Event with arguments
	// from Step.Args.
	StepSignal = rule.StepSignal
	// StepRequest sends a request to the application operation
	// Step.Op (the §4.1 role reversal).
	StepRequest = rule.StepRequest
	// StepCall invokes the Go callback registered under Step.Fn.
	StepCall = rule.StepCall
	// StepAbort makes the firing — and thereby the triggering
	// operation — fail, for constraint enforcement.
	StepAbort = rule.StepAbort
)

// AbortRequested is the error surfaced to a triggering operation when
// a rule action executed an abort step.
var AbortRequested = rule.AbortRequested

// AppHandler serves an application operation that rule actions may
// request.
type AppHandler = core.AppHandler

// CallFunc is a registered Go callback for StepCall action steps.
type CallFunc = rule.CallFunc

// Clock abstracts time for temporal events.
type Clock = clock.Clock

// NewVirtualClock returns a manually advanced clock for tests and
// deterministic runs.
var NewVirtualClock = clock.NewVirtual

// RealClock returns the wall clock.
var RealClock = clock.Real

// Stats aggregates engine counters.
type Stats = core.Stats
