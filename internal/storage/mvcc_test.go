package storage

import (
	"testing"
	"time"

	"repro/internal/btree"
	"repro/internal/datum"
	"repro/internal/lock"
)

// chainLen walks oid's committed version chain and returns its length.
func chainLen(s *Store, oid datum.OID) int {
	v, ok := s.shardOf(oid).objects.Load(oid)
	if !ok {
		return 0
	}
	n := 0
	for cur := v.(*mvEntry).head.Load(); cur != nil; cur = cur.prev.Load() {
		n++
	}
	return n
}

// TestReadsHoldNoShardLocks proves the tentpole claim directly: with
// every shard mutex held exclusively, lock-free Get and ScanClassAt
// still complete. (ScanClass and IndexCandidates are exercised by
// TestCommittersProgressMidScan; IndexCandidates still takes a shard
// read lock for the btree probe by design.)
func TestReadsHoldNoShardLocks(t *testing.T) {
	s, _ := ephemeral(t)
	var oids []datum.OID
	for i := 0; i < 20; i++ {
		oid := s.AllocOID()
		oids = append(oids, oid)
		commitOne(t, s, lock.TxnID(i+1), rec(oid, "F", map[string]datum.Value{"v": datum.Int(int64(i))}))
	}
	snap := s.AcquireSnapshot()
	defer snap.Release()

	for _, sh := range s.shards {
		sh.mu.Lock()
	}
	defer func() {
		for _, sh := range s.shards {
			sh.mu.Unlock()
		}
	}()

	done := make(chan int, 1)
	go func() {
		seen := 0
		for _, oid := range oids {
			if _, ok := s.GetAt(99, oid, snap.LSN()); ok {
				seen++
			}
		}
		s.ScanClassAt(99, "F", snap.LSN(), func(Record) bool { seen++; return true })
		done <- seen
	}()
	select {
	case seen := <-done:
		if seen != 2*len(oids) {
			t.Fatalf("lock-free reads saw %d records, want %d", seen, 2*len(oids))
		}
	case <-time.After(2 * time.Second):
		t.Fatal("lock-free reads blocked on exclusively-held shard mutexes")
	}
}

// TestCommittersProgressMidScan: a long ScanClass holds no shard
// RWMutex, so a committer makes progress while the scan is paused
// mid-callback.
func TestCommittersProgressMidScan(t *testing.T) {
	s, _ := ephemeral(t)
	for i := 0; i < 10; i++ {
		commitOne(t, s, lock.TxnID(i+1), rec(s.AllocOID(), "F", map[string]datum.Value{"v": datum.Int(int64(i))}))
	}

	paused := make(chan struct{}) // closed when the scan is inside fn
	resume := make(chan struct{}) // closed when the committer is done
	scanned := make(chan int, 1)
	go func() {
		n, first := 0, true
		s.ScanClass(50, "F", func(Record) bool {
			if first {
				first = false
				close(paused)
				<-resume
			}
			n++
			return true
		})
		scanned <- n
	}()

	<-paused
	committed := make(chan error, 1)
	go func() {
		s.Put(60, rec(s.AllocOID(), "F", map[string]datum.Value{"v": datum.Int(999)}))
		committed <- s.CommitTop(60)
	}()
	select {
	case err := <-committed:
		if err != nil {
			t.Fatal(err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("committer blocked behind a paused ScanClass")
	}
	close(resume)
	if n := <-scanned; n != 10 {
		t.Fatalf("snapshot scan saw %d rows, want 10 (mid-scan commit must be invisible)", n)
	}
	// A fresh scan sees the row committed mid-flight.
	n := 0
	s.ScanClass(70, "F", func(Record) bool { n++; return true })
	if n != 11 {
		t.Fatalf("post-commit scan saw %d rows, want 11", n)
	}
}

// TestVersionGCBoundByPinnedSnapshot: while an old snapshot is
// pinned, the chain keeps every version the snapshot can reach (so
// its length is bounded by updates-since-pin + 1, never collapsing
// under the pin); once released, VersionGC collapses it to one.
func TestVersionGCBoundByPinnedSnapshot(t *testing.T) {
	s, _ := ephemeral(t)
	oid := s.AllocOID()
	commitOne(t, s, 1, rec(oid, "F", map[string]datum.Value{"v": datum.Int(0)}))

	pin := s.AcquireSnapshot()
	const updates = 25
	for i := 1; i <= updates; i++ {
		commitOne(t, s, lock.TxnID(i+1), rec(oid, "F", map[string]datum.Value{"v": datum.Int(int64(i))}))
	}
	if got := chainLen(s, oid); got != updates+1 {
		t.Fatalf("chain length = %d before GC, want %d", got, updates+1)
	}

	res := s.VersionGC()
	if res.Watermark != pin.LSN() {
		t.Fatalf("GC watermark = %d, want pinned %d", res.Watermark, pin.LSN())
	}
	// Everything above the pin survives, plus the one version the pin
	// still reads: the GC must not have shortened the chain at all.
	if got := chainLen(s, oid); got != updates+1 {
		t.Fatalf("chain length = %d after pinned GC, want %d", got, updates+1)
	}
	if got, ok := s.GetAt(99, oid, pin.LSN()); !ok || got.Attrs["v"].AsInt() != 0 {
		t.Fatalf("pinned snapshot read = %v %v, want v=0", got, ok)
	}

	pin.Release()
	res = s.VersionGC()
	if res.Reclaimed == 0 {
		t.Fatalf("GC reclaimed nothing after pin release: %+v", res)
	}
	if got := chainLen(s, oid); got != 1 {
		t.Fatalf("chain length = %d after unpinned GC, want 1", got)
	}
	if got, _ := s.Get(99, oid); got.Attrs["v"].AsInt() != updates {
		t.Fatalf("newest version = %v, want v=%d", got, updates)
	}
}

// TestVersionGCIntermediateWatermark: a pin in the middle of the
// history keeps exactly the versions at or above what it can reach.
func TestVersionGCIntermediateWatermark(t *testing.T) {
	s, _ := ephemeral(t)
	oid := s.AllocOID()
	for i := 0; i < 5; i++ {
		commitOne(t, s, lock.TxnID(i+1), rec(oid, "F", map[string]datum.Value{"v": datum.Int(int64(i))}))
	}
	pin := s.AcquireSnapshot() // sees v=4
	for i := 5; i < 10; i++ {
		commitOne(t, s, lock.TxnID(i+1), rec(oid, "F", map[string]datum.Value{"v": datum.Int(int64(i))}))
	}
	s.VersionGC()
	// Versions v=0..3 are unreachable by any snapshot and must be
	// gone; v=4 (the pin's view) and v=5..9 must survive.
	if got := chainLen(s, oid); got != 6 {
		t.Fatalf("chain length = %d after GC, want 6", got)
	}
	if got, ok := s.GetAt(99, oid, pin.LSN()); !ok || got.Attrs["v"].AsInt() != 4 {
		t.Fatalf("pinned read = %v %v, want v=4", got, ok)
	}
	// The trimmed chain must keep its GC candidacy: releasing the pin
	// and sweeping again (no intervening install) collapses it fully.
	pin.Release()
	s.VersionGC()
	if got := chainLen(s, oid); got != 1 {
		t.Fatalf("chain length = %d after pin release + GC, want 1", got)
	}
}

// TestSnapshotScanAtomicFlip: a multi-record commit is all-or-nothing
// to snapshot scans — no scan may observe a half-installed commit.
func TestSnapshotScanAtomicFlip(t *testing.T) {
	s, _ := ephemeral(t)
	const n = 64
	var oids []datum.OID
	for i := 0; i < n; i++ {
		oid := s.AllocOID()
		oids = append(oids, oid)
		s.Put(1, rec(oid, "F", map[string]datum.Value{"v": datum.Int(0)}))
	}
	if err := s.CommitTop(1); err != nil {
		t.Fatal(err)
	}

	stop := make(chan struct{})
	writerDone := make(chan error, 1)
	go func() {
		var tx lock.TxnID = 100
		for {
			select {
			case <-stop:
				writerDone <- nil
				return
			default:
			}
			tx++
			gen := int64(tx - 100)
			for _, oid := range oids {
				s.Put(tx, rec(oid, "F", map[string]datum.Value{"v": datum.Int(gen)}))
			}
			if err := s.CommitTop(tx); err != nil {
				writerDone <- err
				return
			}
		}
	}()

	deadline := time.Now().Add(500 * time.Millisecond)
	for time.Now().Before(deadline) {
		vals := map[int64]int{}
		rows := 0
		s.ScanClass(7, "F", func(r Record) bool {
			vals[r.Attrs["v"].AsInt()]++
			rows++
			return true
		})
		if rows != n {
			t.Fatalf("scan saw %d rows, want %d", rows, n)
		}
		if len(vals) != 1 {
			t.Fatalf("scan observed a torn commit: generations %v", vals)
		}
	}
	close(stop)
	if err := <-writerDone; err != nil {
		t.Fatal(err)
	}
}

// TestRecoveryEquivalenceVersionChains: replaying the WAL (with and
// without a prior VersionGC) reproduces exactly the pre-crash
// committed state, with single-version chains and a sane published
// LSN.
func TestRecoveryEquivalenceVersionChains(t *testing.T) {
	for _, gcFirst := range []bool{false, true} {
		dir := t.TempDir()
		s, _ := Open(newTopo(), Options{Dir: dir, NoSync: true})
		var oids []datum.OID
		for i := 0; i < 8; i++ {
			oids = append(oids, s.AllocOID())
		}
		// Several generations of updates plus a delete, so chains are
		// multi-version at crash time.
		tx := lock.TxnID(1)
		for gen := 0; gen < 4; gen++ {
			for j, oid := range oids {
				s.Put(tx, rec(oid, "F", map[string]datum.Value{"v": datum.Int(int64(gen*100 + j))}))
				if err := s.CommitTop(tx); err != nil {
					t.Fatal(err)
				}
				tx++
			}
		}
		s.Put(tx, Record{OID: oids[3], Class: "F", Deleted: true})
		if err := s.CommitTop(tx); err != nil {
			t.Fatal(err)
		}
		if gcFirst {
			s.VersionGC()
		}

		want := map[datum.OID]int64{}
		s.ScanClass(999, "F", func(r Record) bool {
			want[r.OID] = r.Attrs["v"].AsInt()
			return true
		})
		if len(want) != 7 {
			t.Fatalf("pre-crash live rows = %d, want 7", len(want))
		}
		// Abrupt stop: no Close, reopen from WAL (+checkpoint if any).
		s2, err := Open(newTopo(), Options{Dir: dir, NoSync: true})
		if err != nil {
			t.Fatal(err)
		}
		got := map[datum.OID]int64{}
		s2.ScanClass(999, "F", func(r Record) bool {
			got[r.OID] = r.Attrs["v"].AsInt()
			return true
		})
		if len(got) != len(want) {
			t.Fatalf("gcFirst=%v: recovered rows = %d, want %d", gcFirst, len(got), len(want))
		}
		for oid, v := range want {
			if got[oid] != v {
				t.Fatalf("gcFirst=%v: oid %v recovered v=%d, want %d", gcFirst, oid, got[oid], v)
			}
		}
		if _, ok := s2.Get(999, oids[3]); ok {
			t.Fatalf("gcFirst=%v: deleted object resurrected by recovery", gcFirst)
		}
		// Recovery rebuilds single-version chains and republishes.
		for _, oid := range oids {
			if oid == oids[3] {
				continue
			}
			if n := chainLen(s2, oid); n != 1 {
				t.Fatalf("gcFirst=%v: recovered chain length = %d, want 1", gcFirst, n)
			}
		}
		if s2.PublishedLSN() == 0 {
			t.Fatalf("gcFirst=%v: recovered store published LSN = 0", gcFirst)
		}
		s.Close()
		s2.Close()
	}
}

// TestTombstoneChainGC: a deleted object's chain disappears entirely
// once no snapshot can reach a live version, and its index entries go
// with it.
func TestTombstoneChainGC(t *testing.T) {
	s, _ := ephemeral(t)
	s.RegisterIndex("F", "v")
	oid := s.AllocOID()
	commitOne(t, s, 1, rec(oid, "F", map[string]datum.Value{"v": datum.Int(7)}))
	s.Put(2, Record{OID: oid, Class: "F", Deleted: true})
	if err := s.CommitTop(2); err != nil {
		t.Fatal(err)
	}
	s.VersionGC()
	if n := chainLen(s, oid); n != 0 {
		t.Fatalf("tombstone chain survived GC: length %d", n)
	}
	if _, ok := s.shardOf(oid).objects.Load(oid); ok {
		t.Fatal("entry not removed for fully-dead chain")
	}
	key := btree.Include(datum.Int(7).Key())
	if cands := s.IndexCandidates(9, "F", "v", key, key); len(cands) != 0 {
		t.Fatalf("index entries for dead chain survived GC: %v", cands)
	}
}
