package storage

// Sharded-store stress test: parallel committers and readers across
// many classes while a checkpointer runs, against a replay-only twin
// store fed the identical transactions. Writers own disjoint OID
// ranges, so the final committed state is schedule-independent and
// both stores must converge to it. Run under -race this doubles as
// the data-race gate for the per-shard locking.

import (
	"fmt"
	"sync"
	"sync/atomic"
	"testing"

	"repro/internal/datum"
	"repro/internal/lock"
)

func TestShardedStoreStress(t *testing.T) {
	const (
		writers     = 8
		readers     = 4
		classes     = 4
		oidsPerW    = 16
		commitsPerW = 300
	)
	iters := commitsPerW
	if testing.Short() {
		iters = 60
	}

	topo := newTopo()
	dirA, dirB := t.TempDir(), t.TempDir()
	// Different shard counts on the two stores cross-check that the
	// partitioning is invisible in committed state; b never checkpoints
	// so its recovery is WAL replay alone.
	a, err := Open(topo, Options{Dir: dirA, NoSync: true, Shards: 8})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Open(topo, Options{Dir: dirB, NoSync: true, Shards: 1})
	if err != nil {
		t.Fatal(err)
	}

	// Writer w owns OIDs [w*oidsPerW, (w+1)*oidsPerW); OID o belongs to
	// class fmt.Sprintf("C%d", o%classes). Values encode (writer, seq)
	// so readers can check per-OID monotonicity.
	class := func(oid datum.OID) string { return fmt.Sprintf("C%d", uint64(oid)%classes) }
	var txnSeq atomic.Uint64
	final := make([]map[datum.OID]int64, writers) // per-writer committed values

	var wg sync.WaitGroup
	stop := make(chan struct{})

	// Checkpointer: run fuzzy checkpoints continuously on a.
	ckptDone := make(chan error, 1)
	wg.Add(1)
	go func() {
		defer wg.Done()
		n := 0
		for {
			select {
			case <-stop:
				ckptDone <- nil
				return
			default:
			}
			if _, err := a.Checkpoint(); err != nil {
				ckptDone <- fmt.Errorf("checkpoint %d: %w", n, err)
				return
			}
			n++
		}
	}()

	// Readers: committed-view point reads must be monotone per OID
	// (values only grow), and ScanClass must only surface records of
	// the scanned class.
	readerErr := make(chan error, readers)
	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			last := map[datum.OID]int64{}
			i := 0
			for {
				select {
				case <-stop:
					return
				default:
				}
				i++
				oid := datum.OID(1 + (i*7+r*13)%(writers*oidsPerW))
				if rec, ok := a.Get(0, oid); ok {
					v := rec.Attrs["v"].AsInt()
					if v < last[oid] {
						readerErr <- fmt.Errorf("oid %v went backwards: %d then %d", oid, last[oid], v)
						return
					}
					last[oid] = v
					if got := class(oid); rec.Class != got {
						readerErr <- fmt.Errorf("oid %v: class %q, want %q", oid, rec.Class, got)
						return
					}
				}
				if i%64 == 0 {
					cls := fmt.Sprintf("C%d", i%classes)
					bad := false
					a.ScanClass(0, cls, func(rec Record) bool {
						if rec.Class != cls {
							bad = true
							return false
						}
						return true
					})
					if bad {
						readerErr <- fmt.Errorf("scan of %s surfaced a foreign record", cls)
						return
					}
				}
			}
		}(r)
	}

	// Writers: batches of puts over owned OIDs, mostly committed,
	// sometimes aborted.
	writerErr := make(chan error, writers)
	var wwg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wwg.Add(1)
		go func(w int) {
			defer wwg.Done()
			mine := make([]datum.OID, oidsPerW)
			for i := range mine {
				mine[i] = datum.OID(1 + w*oidsPerW + i)
			}
			committed := map[datum.OID]int64{}
			for seq := 1; seq <= iters; seq++ {
				tx := lock.TxnID(txnSeq.Add(1))
				batch := map[datum.OID]int64{}
				for n := 1 + seq%3; n > 0; n-- {
					oid := mine[(seq*5+n*3)%len(mine)]
					v := int64(seq)*int64(writers) + int64(w)
					batch[oid] = v
					rec := Record{OID: oid, Class: class(oid),
						Attrs: map[string]datum.Value{"v": datum.Int(v)}}
					a.Put(tx, rec)
					b.Put(tx, rec)
				}
				if seq%7 == 0 {
					a.AbortTxn(tx)
					b.AbortTxn(tx)
					continue
				}
				if err := a.CommitTop(tx); err != nil {
					writerErr <- fmt.Errorf("writer %d commit a: %w", w, err)
					return
				}
				if err := b.CommitTop(tx); err != nil {
					writerErr <- fmt.Errorf("writer %d commit b: %w", w, err)
					return
				}
				for oid, v := range batch {
					committed[oid] = v
				}
			}
			final[w] = committed
		}(w)
	}

	wwg.Wait()
	close(stop)
	wg.Wait()
	close(readerErr)
	close(writerErr)
	for err := range readerErr {
		t.Fatal(err)
	}
	for err := range writerErr {
		t.Fatal(err)
	}
	if err := <-ckptDone; err != nil {
		t.Fatal(err)
	}

	want := map[datum.OID]int64{}
	for _, m := range final {
		for oid, v := range m {
			want[oid] = v
		}
	}

	// Per-shard invariants on the live store: every chain and extent
	// entry lives in the shard its OID hashes to, and the shard-local
	// extents partition the class extents exactly.
	checkShardInvariants(t, a)
	checkShardInvariants(t, b)

	verify := func(name string, s *Store) {
		t.Helper()
		got := map[datum.OID]int64{}
		for c := 0; c < classes; c++ {
			cls := fmt.Sprintf("C%d", c)
			s.ScanClass(0, cls, func(rec Record) bool {
				got[rec.OID] = rec.Attrs["v"].AsInt()
				return true
			})
		}
		if len(got) != len(want) {
			t.Fatalf("%s: %d committed records, want %d", name, len(got), len(want))
		}
		for oid, v := range want {
			if got[oid] != v {
				t.Fatalf("%s: oid %v = %d, want %d", name, oid, got[oid], v)
			}
		}
	}
	verify("a live", a)
	verify("b live", b)

	// Recovery equivalence: reopen both (a from its checkpoint chain +
	// WAL tail, b by replay alone) and require the identical state.
	if err := a.Close(); err != nil {
		t.Fatal(err)
	}
	if err := b.Close(); err != nil {
		t.Fatal(err)
	}
	a, err = Open(topo, Options{Dir: dirA, NoSync: true, Shards: 8})
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	b, err = Open(topo, Options{Dir: dirB, NoSync: true, Shards: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()
	verify("a recovered", a)
	verify("b recovered", b)
	checkShardInvariants(t, a)
	checkShardInvariants(t, b)
}

// checkShardInvariants asserts the partitioning is well-formed: every
// object entry and extent member is in the shard its OID hashes to,
// no OID appears in two shards, and every version chain is strictly
// LSN-descending with head depth at least the chain length. White-box
// by design.
func checkShardInvariants(t *testing.T, s *Store) {
	t.Helper()
	seen := map[datum.OID]bool{}
	for i, sh := range s.shards {
		sh.mu.RLock()
		sh.objects.Range(func(k, v any) bool {
			oid := k.(datum.OID)
			if s.shardOf(oid) != sh {
				t.Errorf("shard %d: oid %v hashes elsewhere", i, oid)
			}
			if seen[oid] {
				t.Errorf("oid %v present in two shards", oid)
			}
			seen[oid] = true
			e := v.(*mvEntry)
			n := uint32(0)
			last := uint64(0)
			for mv := e.head.Load(); mv != nil; mv = mv.prev.Load() {
				n++
				if last != 0 && mv.lsn >= last {
					t.Errorf("oid %v: chain not LSN-descending (%d after %d)", oid, mv.lsn, last)
				}
				last = mv.lsn
				if mv.rec.OID != oid {
					t.Errorf("oid %v: chain holds record for %v", oid, mv.rec.OID)
				}
			}
			if hv := e.head.Load(); hv != nil && hv.depth.Load() < n {
				t.Errorf("oid %v: head depth %d below chain length %d", oid, hv.depth.Load(), n)
			}
			return true
		})
		sh.extents.Range(func(ck, ev any) bool {
			cls := ck.(string)
			ev.(*sync.Map).Range(func(ok2, _ any) bool {
				oid := ok2.(datum.OID)
				if s.shardOf(oid) != sh {
					t.Errorf("shard %d extent %q: oid %v hashes elsewhere", i, cls, oid)
				}
				return true
			})
			return true
		})
		sh.mu.RUnlock()
	}
}
