package storage

// Directed tests for the incremental checkpointer: the O(d) delta
// claim, compaction cadence, the empty-delta no-op, the WAL-growth
// trigger, and the offline snapshot inspector.

import (
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"repro/internal/datum"
	"repro/internal/lock"
)

// commitOne writes a single record in its own top-level transaction.
func commitOne(t *testing.T, s *Store, tx lock.TxnID, r Record) {
	t.Helper()
	s.Put(tx, r)
	if err := s.CommitTop(tx); err != nil {
		t.Fatal(err)
	}
}

// TestDeltaCheckpointWritesOnlyDirty is the acceptance criterion: a
// store holding n objects of which d were dirtied since the last
// checkpoint must write a delta of exactly d records — O(d), not
// O(n) — while still reclaiming WAL bytes, and a deletion must travel
// as a tombstone so recovery cannot resurrect the object from an
// older chain element.
func TestDeltaCheckpointWritesOnlyDirty(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(newTopo(), Options{Dir: dir, NoSync: true})
	if err != nil {
		t.Fatal(err)
	}
	const n = 100
	oids := make([]datum.OID, n)
	for i := 0; i < n; i++ {
		oids[i] = s.AllocOID()
		commitOne(t, s, lock.TxnID(i+1), rec(oids[i], "C",
			map[string]datum.Value{"v": datum.Int(int64(i))}))
	}
	res, err := s.Checkpoint()
	if err != nil {
		t.Fatal(err)
	}
	if res.Kind != "full" || res.Records != n {
		t.Fatalf("first checkpoint = %+v, want full with %d records", res, n)
	}

	// Dirty 3 of the 100, delete a 4th.
	for i, oid := range oids[:3] {
		commitOne(t, s, lock.TxnID(1000+i), rec(oid, "C",
			map[string]datum.Value{"v": datum.Int(int64(-1 - i))}))
	}
	s.Put(2000, Record{OID: oids[50], Class: "C", Deleted: true})
	if err := s.CommitTop(2000); err != nil {
		t.Fatal(err)
	}
	res, err = s.Checkpoint()
	if err != nil {
		t.Fatal(err)
	}
	if res.Kind != "delta" || res.Records != 4 {
		t.Fatalf("delta checkpoint = %+v, want delta with 4 records", res)
	}
	if res.Reclaimed == 0 {
		t.Fatal("delta checkpoint reclaimed no WAL bytes")
	}
	st := s.Stats()
	if st.FullCheckpoints != 1 || st.DeltaCheckpoints != 1 {
		t.Fatalf("stats: %d full, %d delta", st.FullCheckpoints, st.DeltaCheckpoints)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	// The delta file itself must hold exactly the 4 records.
	sn, _, err := readSnapshotFile(filepath.Join(dir, deltaName(1)))
	if err != nil {
		t.Fatal(err)
	}
	if sn.kind != snapKindDelta || len(sn.recs) != 4 {
		t.Fatalf("delta file: kind %d, %d recs", sn.kind, len(sn.recs))
	}
	tombs := 0
	for _, r := range sn.recs {
		if r.Deleted {
			tombs++
			if r.OID != oids[50] {
				t.Fatalf("tombstone for %v, want %v", r.OID, oids[50])
			}
		}
	}
	if tombs != 1 {
		t.Fatalf("delta holds %d tombstones, want 1", tombs)
	}

	// Recovery folds the delta over the full snapshot.
	s2, err := Open(newTopo(), Options{Dir: dir, NoSync: true})
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	for i, oid := range oids {
		got, ok := s2.Get(0, oid)
		switch {
		case i < 3:
			if !ok || got.Attrs["v"].AsInt() != int64(-1-i) {
				t.Fatalf("oid %v: lost delta update", oid)
			}
		case i == 50:
			if ok {
				t.Fatalf("oid %v: resurrected after tombstoned delta", oid)
			}
		default:
			if !ok || got.Attrs["v"].AsInt() != int64(i) {
				t.Fatalf("oid %v: lost base value", oid)
			}
		}
	}
}

// TestCompactionEveryK checks the chain cadence with CompactEvery=2:
// full, delta, delta, full (compaction), and that compaction removes
// the now-subsumed delta files.
func TestCompactionEveryK(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(newTopo(), Options{Dir: dir, NoSync: true, CompactEvery: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	wantKinds := []string{"full", "delta", "delta", "full"}
	for i, want := range wantKinds {
		oid := s.AllocOID()
		commitOne(t, s, lock.TxnID(i+1), rec(oid, "C",
			map[string]datum.Value{"v": datum.Int(int64(i))}))
		res, err := s.Checkpoint()
		if err != nil {
			t.Fatal(err)
		}
		if res.Kind != want {
			t.Fatalf("checkpoint %d kind = %q, want %q", i, res.Kind, want)
		}
	}
	if names, _, err := deltaFiles(dir); err != nil || len(names) != 0 {
		t.Fatalf("delta files after compaction: %v (err %v)", names, err)
	}
	st := s.Stats()
	if st.FullCheckpoints != 2 || st.DeltaCheckpoints != 2 {
		t.Fatalf("stats: %d full, %d delta", st.FullCheckpoints, st.DeltaCheckpoints)
	}
}

// TestAdaptiveCompaction checks the byte-threshold mode (CompactEvery
// left zero): small deltas extend the chain indefinitely, but once the
// cumulative delta bytes reach half the full snapshot's size the next
// checkpoint compacts. The fixed-K cadence must not kick in (more than
// 8 small deltas survive).
func TestAdaptiveCompaction(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(newTopo(), Options{Dir: dir, NoSync: true})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	// A wide base so one-record deltas are far below the threshold.
	const n = 200
	oids := make([]datum.OID, n)
	for i := 0; i < n; i++ {
		oids[i] = s.AllocOID()
		commitOne(t, s, lock.TxnID(i+1), rec(oids[i], "C",
			map[string]datum.Value{"v": datum.Int(int64(i))}))
	}
	if res, err := s.Checkpoint(); err != nil || res.Kind != "full" {
		t.Fatalf("first checkpoint = %+v (err %v), want full", res, err)
	}
	// 10 one-record deltas: under the old fixed-8 default the 9th
	// would have compacted; adaptively they all stay deltas.
	for i := 0; i < 10; i++ {
		commitOne(t, s, lock.TxnID(1000+i), rec(oids[i], "C",
			map[string]datum.Value{"v": datum.Int(int64(-1 - i))}))
		res, err := s.Checkpoint()
		if err != nil {
			t.Fatal(err)
		}
		if res.Kind != "delta" {
			t.Fatalf("small checkpoint %d kind = %q, want delta", i, res.Kind)
		}
	}
	// Dirty most of the base: this delta is large, pushing the
	// cumulative delta bytes past half the snapshot's size...
	for i := 0; i < n*3/4; i++ {
		commitOne(t, s, lock.TxnID(2000+i), rec(oids[i], "C",
			map[string]datum.Value{"v": datum.Int(int64(10000 + i))}))
	}
	res, err := s.Checkpoint()
	if err != nil {
		t.Fatal(err)
	}
	if res.Kind != "delta" {
		t.Fatalf("large checkpoint kind = %q, want delta (threshold checks prior bytes)", res.Kind)
	}
	// ...so the next checkpoint, however small, compacts.
	commitOne(t, s, 5000, rec(oids[0], "C", map[string]datum.Value{"v": datum.Int(-999)}))
	res, err = s.Checkpoint()
	if err != nil {
		t.Fatal(err)
	}
	if res.Kind != "full" {
		t.Fatalf("post-threshold checkpoint kind = %q, want full", res.Kind)
	}
	if names, _, err := deltaFiles(dir); err != nil || len(names) != 0 {
		t.Fatalf("delta files after adaptive compaction: %v (err %v)", names, err)
	}
}

// TestCheckpointOnOpen: reopening a directory whose surviving WAL
// suffix exceeds CheckpointAfterBytes must checkpoint during Open —
// folding the backlog into the chain instead of carrying it to the
// next crash — without losing any replayed record.
func TestCheckpointOnOpen(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(newTopo(), Options{Dir: dir, NoSync: true})
	if err != nil {
		t.Fatal(err)
	}
	const n = 50
	oids := make([]datum.OID, n)
	for i := 0; i < n; i++ {
		oids[i] = s.AllocOID()
		commitOne(t, s, lock.TxnID(i+1), rec(oids[i], "C",
			map[string]datum.Value{"v": datum.Int(int64(i))}))
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	// The whole history is still in the WAL (never checkpointed), so
	// any tiny threshold is exceeded at open.
	s2, err := Open(newTopo(), Options{Dir: dir, NoSync: true, CheckpointAfterBytes: 64})
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	st := s2.Stats()
	if st.Checkpoints == 0 || st.FullCheckpoints == 0 {
		t.Fatalf("no checkpoint ran at open: %+v", st)
	}
	if st.WALBytesReclaimed == 0 {
		t.Fatal("checkpoint-on-open reclaimed no WAL bytes")
	}
	if _, err := os.Stat(filepath.Join(dir, fullSnapshotName)); err != nil {
		t.Fatalf("no snapshot file after checkpoint-on-open: %v", err)
	}
	for i, oid := range oids {
		got, ok := s2.Get(0, oid)
		if !ok || got.Attrs["v"].AsInt() != int64(i) {
			t.Fatalf("oid %v lost across checkpoint-on-open", oid)
		}
	}
}

// TestIdleDeltaCheckpointIsNoop: with nothing committed since the
// last checkpoint and the watermark unmoved, a checkpoint must not
// extend the chain.
func TestIdleDeltaCheckpointIsNoop(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(newTopo(), Options{Dir: dir, NoSync: true})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	commitOne(t, s, 1, rec(s.AllocOID(), "C", map[string]datum.Value{"v": datum.Int(1)}))
	if _, err := s.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	res, err := s.Checkpoint()
	if err != nil {
		t.Fatal(err)
	}
	if res.Kind != "delta" || res.Records != 0 || res.Reclaimed != 0 {
		t.Fatalf("idle checkpoint = %+v, want empty delta", res)
	}
	if names, _, err := deltaFiles(dir); err != nil || len(names) != 0 {
		t.Fatalf("idle checkpoint wrote chain files: %v (err %v)", names, err)
	}
}

// TestSizeTriggeredCheckpoint: with CheckpointAfterBytes set, commits
// alone must eventually run a background checkpoint — no timer, no
// manual call — and wal_bytes_reclaimed must advance.
func TestSizeTriggeredCheckpoint(t *testing.T) {
	var mu sync.Mutex
	var asyncErrs []error
	dir := t.TempDir()
	s, err := Open(newTopo(), Options{Dir: dir, NoSync: true,
		CheckpointAfterBytes: 2048,
		OnAsyncError: func(err error) {
			mu.Lock()
			asyncErrs = append(asyncErrs, err)
			mu.Unlock()
		}})
	if err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(10 * time.Second)
	for i := 1; s.Stats().Checkpoints == 0; i++ {
		if time.Now().After(deadline) {
			t.Fatal("no size-triggered checkpoint after 10s of commits")
		}
		oid := s.AllocOID()
		commitOne(t, s, lock.TxnID(i), rec(oid, "C",
			map[string]datum.Value{"pad": datum.Str("xxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxx")}))
	}
	if err := s.Close(); err != nil { // waits for the background checkpoint
		t.Fatal(err)
	}
	mu.Lock()
	defer mu.Unlock()
	for _, err := range asyncErrs {
		t.Errorf("async checkpoint error: %v", err)
	}
	if st := s.Stats(); st.WALBytesReclaimed == 0 {
		t.Error("size-triggered checkpoint reclaimed no WAL bytes")
	}
}

// TestCheckpointPersistsClassCards pins the v3 snapshot-header
// statistics: a checkpoint writes the live per-class extent
// cardinalities, deltas carry the GLOBAL cards (not just the dirty
// classes), the offline inspector surfaces them, and a reopened store
// seeds its planner statistics from the newest chain element.
func TestCheckpointPersistsClassCards(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(newTopo(), Options{Dir: dir, NoSync: true})
	if err != nil {
		t.Fatal(err)
	}
	txn := 1
	put := func(class string, n int) {
		t.Helper()
		for i := 0; i < n; i++ {
			commitOne(t, s, lock.TxnID(txn), rec(s.AllocOID(), class,
				map[string]datum.Value{"v": datum.Int(int64(i))}))
			txn++
		}
	}
	put("C", 7)
	put("D", 3)
	if _, err := s.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	// Dirty only C: the delta's cards must still cover D.
	put("C", 2)
	if _, err := s.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	full, err := InspectSnapshotFile(filepath.Join(dir, fullSnapshotName))
	if err != nil {
		t.Fatal(err)
	}
	if full.Format != snapshotMagic {
		t.Fatalf("full format = %q, want %q", full.Format, snapshotMagic)
	}
	if full.ClassCards["C"] != 7 || full.ClassCards["D"] != 3 {
		t.Fatalf("full cards = %v, want C:7 D:3", full.ClassCards)
	}
	delta, err := InspectSnapshotFile(filepath.Join(dir, deltaName(1)))
	if err != nil {
		t.Fatal(err)
	}
	if delta.ClassCards["C"] != 9 || delta.ClassCards["D"] != 3 {
		t.Fatalf("delta cards = %v, want global C:9 D:3", delta.ClassCards)
	}

	// Reopen: the newest element's cards seed the planner statistics,
	// and the live extent counters agree with them after install.
	s2, err := Open(newTopo(), Options{Dir: dir, NoSync: true})
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	seeded := s2.SeededStats()
	if seeded["C"] != 9 || seeded["D"] != 3 {
		t.Fatalf("seeded stats = %v, want C:9 D:3", seeded)
	}
	if got := s2.ExtentEstimate("C"); got != 9 {
		t.Fatalf("ExtentEstimate(C) = %d, want 9", got)
	}
	// The seed answers for classes with no live extent entries yet —
	// the cold-start fallback ExtentEstimate documents.
	s2.seedStats(map[string]uint64{"Ghost": 41})
	if got := s2.ExtentEstimate("Ghost"); got != 41 {
		t.Fatalf("ExtentEstimate(Ghost) = %d, want seeded 41", got)
	}
}

// TestInspectSnapshot drives the offline inspector over a real chain:
// the full snapshot, a delta (whose parent link must match the full
// file's trailing CRC), and a deliberately corrupted copy.
func TestInspectSnapshot(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(newTopo(), Options{Dir: dir, NoSync: true})
	if err != nil {
		t.Fatal(err)
	}
	commitOne(t, s, 1, rec(s.AllocOID(), "C", map[string]datum.Value{"v": datum.Int(1)}))
	if _, err := s.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	commitOne(t, s, 2, rec(s.AllocOID(), "C", map[string]datum.Value{"v": datum.Int(2)}))
	if _, err := s.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	fullPath := filepath.Join(dir, fullSnapshotName)
	full, err := InspectSnapshotFile(fullPath)
	if err != nil {
		t.Fatal(err)
	}
	if full.Kind != "full" || !full.CRCOK || full.Records != 1 {
		t.Fatalf("full inspect = %+v", full)
	}
	delta, err := InspectSnapshotFile(filepath.Join(dir, deltaName(1)))
	if err != nil {
		t.Fatal(err)
	}
	if delta.Kind != "delta" || !delta.CRCOK || delta.Records != 1 {
		t.Fatalf("delta inspect = %+v", delta)
	}
	if delta.ParentWatermark != full.Watermark || delta.ParentCRC != full.CRC {
		t.Fatalf("delta parent link (%d, %08x) does not match full (%d, %08x)",
			delta.ParentWatermark, delta.ParentCRC, full.Watermark, full.CRC)
	}

	// Flip a body byte: the inspector still reads the header but
	// reports the CRC mismatch instead of failing.
	buf, err := os.ReadFile(fullPath)
	if err != nil {
		t.Fatal(err)
	}
	buf[len(buf)-5] ^= 0xff
	bad := filepath.Join(dir, "corrupt")
	if err := os.WriteFile(bad, buf, 0o644); err != nil {
		t.Fatal(err)
	}
	info, err := InspectSnapshotFile(bad)
	if err != nil {
		t.Fatal(err)
	}
	if info.CRCOK {
		t.Fatal("inspector missed a corrupted body")
	}
}
