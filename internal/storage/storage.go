// Package storage implements the versioned object heap beneath the
// Object Manager. Each object carries a chain of versions tagged by
// the transaction that wrote them; a reader sees its own newest
// version, else the newest version of an ancestor, else the last
// committed version. Folding a child's versions into its parent at
// nested commit gives the nested-transaction atomicity of §3.1 of the
// paper without copying objects up front.
//
// The store is also the durability point: top-level commits append a
// redo record to the write-ahead log before the committed tier is
// updated, and Open replays the log (over an optional checkpoint
// snapshot) to recover. Only committed top-level effects are ever
// logged, so recovery is a pure redo pass.
//
// The store performs no locking of its own beyond an internal mutex;
// isolation comes from the lock manager driven by the layers above.
package storage

import (
	"encoding/binary"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/btree"
	"repro/internal/datum"
	"repro/internal/lock"
	"repro/internal/obs"
	"repro/internal/wal"
)

// committedOwner tags versions in the committed tier.
const committedOwner lock.TxnID = 0

// Record is one object state: its identity, class, attribute values,
// and whether this version is a deletion tombstone.
type Record struct {
	OID     datum.OID
	Class   string
	Attrs   map[string]datum.Value
	Deleted bool
}

// clone returns a deep-enough copy (Values are immutable).
func (r Record) clone() Record {
	r.Attrs = datum.CloneMap(r.Attrs)
	return r
}

// Topology resolves transaction ancestry for visibility; the
// transaction manager implements it.
type Topology interface {
	IsAncestorOrSelf(anc, desc lock.TxnID) bool
}

type version struct {
	owner lock.TxnID
	rec   Record
}

type chain struct {
	versions []version // oldest first; at most one per owner
}

// Options configures a Store.
type Options struct {
	// Dir is the durability directory (snapshot + WAL). Empty means
	// ephemeral: no logging, no recovery.
	Dir string
	// NoSync disables fsync on the WAL.
	NoSync bool
	// GroupWindow widens WAL group-commit batches: a flush leader
	// dwells this long before snapshotting the batch. 0 flushes
	// immediately (batching still happens whenever commits overlap).
	GroupWindow time.Duration
	// Obs, when non-nil, receives WAL fsync latencies, group-commit
	// batch sizes, and commit-stall latencies.
	Obs *obs.Metrics
}

// Store is the versioned heap.
type Store struct {
	mu      sync.RWMutex
	topo    Topology
	objects map[datum.OID]*chain
	extents map[string]map[datum.OID]struct{} // class -> OIDs with any version
	indexes map[string]map[string]*btree.Tree // class -> attr -> committed-tier index
	dirty   map[lock.TxnID]map[datum.OID]struct{}
	nextOID datum.OID
	modSeq  map[string]uint64 // class -> bumped on every write; used for incremental condition eval
	log     *wal.Log
	dir     string
	obsm    *obs.Metrics // nil-safe commit-stall observer

	// Counters are atomic: reads (Get/Scan) bump them while holding
	// only the read lock.
	nPuts, nGets, nScans, nProbes, nCommits, nWALBytes atomic.Uint64
}

// Stats counts store activity.
type Stats struct {
	Puts        uint64
	Gets        uint64
	Scans       uint64
	IndexProbes uint64
	TopCommits  uint64
	WALBytes    uint64
	// WALFsyncs counts physical fsyncs; WALSyncRequests counts commits
	// that asked for durability. Fsyncs/requests < 1 means group
	// commit is batching concurrent committers into shared flushes.
	WALFsyncs       uint64
	WALSyncRequests uint64
}

// Open creates a store. If opts.Dir is non-empty the store loads the
// checkpoint snapshot (if present), replays the WAL, and will log all
// future top-level commits there.
func Open(topo Topology, opts Options) (*Store, error) {
	s := &Store{
		topo:    topo,
		objects: map[datum.OID]*chain{},
		extents: map[string]map[datum.OID]struct{}{},
		indexes: map[string]map[string]*btree.Tree{},
		dirty:   map[lock.TxnID]map[datum.OID]struct{}{},
		modSeq:  map[string]uint64{},
		nextOID: 1,
		dir:     opts.Dir,
		obsm:    opts.Obs,
	}
	if opts.Dir == "" {
		return s, nil
	}
	if err := os.MkdirAll(opts.Dir, 0o755); err != nil {
		return nil, fmt.Errorf("storage: mkdir %s: %w", opts.Dir, err)
	}
	if err := s.loadSnapshot(filepath.Join(opts.Dir, "snapshot")); err != nil {
		return nil, err
	}
	l, err := wal.Open(filepath.Join(opts.Dir, "wal"),
		wal.Options{NoSync: opts.NoSync, GroupWindow: opts.GroupWindow, Obs: opts.Obs})
	if err != nil {
		return nil, err
	}
	s.log = l
	if err := l.Replay(func(_ wal.LSN, payload []byte) error {
		return s.applyRedo(payload)
	}); err != nil {
		l.Close()
		return nil, fmt.Errorf("storage: recovery: %w", err)
	}
	return s, nil
}

// Close closes the WAL, if any.
func (s *Store) Close() error {
	if s.log != nil {
		return s.log.Close()
	}
	return nil
}

// AllocOID returns a fresh, never-reused object identifier.
func (s *Store) AllocOID() datum.OID {
	s.mu.Lock()
	defer s.mu.Unlock()
	oid := s.nextOID
	s.nextOID++
	return oid
}

// Put installs rec as tx's version of the object, replacing any prior
// version tx wrote. The caller must already hold the appropriate
// exclusive lock.
func (s *Store) Put(tx lock.TxnID, rec Record) {
	rec = rec.clone()
	s.mu.Lock()
	defer s.mu.Unlock()
	s.nPuts.Add(1)
	s.modSeq[rec.Class]++
	c := s.objects[rec.OID]
	if c == nil {
		c = &chain{}
		s.objects[rec.OID] = c
	}
	for i := range c.versions {
		if c.versions[i].owner == tx {
			// Replace in place, but keep recency: move to the end so
			// the newest write wins within this owner tier.
			v := c.versions[i]
			v.rec = rec
			c.versions = append(append(c.versions[:i:i], c.versions[i+1:]...), v)
			s.noteDirty(tx, rec.OID)
			s.addExtent(rec.Class, rec.OID)
			return
		}
	}
	c.versions = append(c.versions, version{owner: tx, rec: rec})
	s.noteDirty(tx, rec.OID)
	s.addExtent(rec.Class, rec.OID)
}

func (s *Store) noteDirty(tx lock.TxnID, oid datum.OID) {
	d := s.dirty[tx]
	if d == nil {
		d = map[datum.OID]struct{}{}
		s.dirty[tx] = d
	}
	d[oid] = struct{}{}
}

func (s *Store) addExtent(class string, oid datum.OID) {
	e := s.extents[class]
	if e == nil {
		e = map[datum.OID]struct{}{}
		s.extents[class] = e
	}
	e[oid] = struct{}{}
}

// Get returns the version of the object visible to tx: the newest
// version owned by tx or an ancestor, else the committed version.
// The second result is false if no visible version exists or the
// visible version is a deletion tombstone (the record is still
// returned so callers can see the tombstone's class).
func (s *Store) Get(tx lock.TxnID, oid datum.OID) (Record, bool) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	s.nGets.Add(1)
	return s.getLocked(tx, oid)
}

func (s *Store) getLocked(tx lock.TxnID, oid datum.OID) (Record, bool) {
	c := s.objects[oid]
	if c == nil {
		return Record{}, false
	}
	for i := len(c.versions) - 1; i >= 0; i-- {
		v := c.versions[i]
		if v.owner == committedOwner || v.owner == tx || s.topo.IsAncestorOrSelf(v.owner, tx) {
			return v.rec.clone(), !v.rec.Deleted
		}
	}
	return Record{}, false
}

// ScanClass calls fn for every live (visible, non-deleted) object of
// the class, in ascending OID order. Scanning stops if fn returns
// false.
func (s *Store) ScanClass(tx lock.TxnID, class string, fn func(Record) bool) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	s.nScans.Add(1)
	e := s.extents[class]
	if e == nil {
		return
	}
	oids := make([]datum.OID, 0, len(e))
	for oid := range e {
		oids = append(oids, oid)
	}
	sort.Slice(oids, func(i, j int) bool { return oids[i] < oids[j] })
	for _, oid := range oids {
		rec, ok := s.getLocked(tx, oid)
		if !ok || rec.Class != class {
			continue
		}
		if !fn(rec) {
			return
		}
	}
}

// RegisterIndex declares (and builds, from the committed tier) a
// secondary index on class.attr. Idempotent.
func (s *Store) RegisterIndex(class, attr string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	byAttr := s.indexes[class]
	if byAttr == nil {
		byAttr = map[string]*btree.Tree{}
		s.indexes[class] = byAttr
	}
	if byAttr[attr] != nil {
		return
	}
	t := btree.New()
	byAttr[attr] = t
	for oid := range s.extents[class] {
		c := s.objects[oid]
		if c == nil {
			continue
		}
		for i := len(c.versions) - 1; i >= 0; i-- {
			if c.versions[i].owner == committedOwner {
				rec := c.versions[i].rec
				if !rec.Deleted {
					if v, ok := rec.Attrs[attr]; ok {
						t.Insert(v.Key(), oid)
					}
				}
				break
			}
		}
	}
}

// HasIndex reports whether class.attr has a registered index.
func (s *Store) HasIndex(class, attr string) bool {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.indexes[class][attr] != nil
}

// IndexCandidates returns OIDs that *may* satisfy lo <= attr <= hi
// for transaction tx: the committed-tier index hits plus every object
// tx (or an ancestor) has written in the class. Callers must re-check
// the predicate against the visible record; candidates may include
// false positives but never miss a visible match.
func (s *Store) IndexCandidates(tx lock.TxnID, class, attr string, lo, hi btree.Bound) []datum.OID {
	s.mu.RLock()
	defer s.mu.RUnlock()
	s.nProbes.Add(1)
	t := s.indexes[class][attr]
	if t == nil {
		return nil
	}
	seen := map[datum.OID]struct{}{}
	var out []datum.OID
	t.Scan(lo, hi, func(_ string, oid datum.OID) bool {
		if _, dup := seen[oid]; !dup {
			seen[oid] = struct{}{}
			out = append(out, oid)
		}
		return true
	})
	// Uncommitted writes by tx's tree are invisible to the committed
	// index; add every dirty object of this class whose writer is
	// visible to tx.
	for owner, objs := range s.dirty {
		if owner != tx && !s.topo.IsAncestorOrSelf(owner, tx) {
			continue
		}
		for oid := range objs {
			if _, dup := seen[oid]; dup {
				continue
			}
			if c := s.objects[oid]; c != nil && len(c.versions) > 0 {
				if c.versions[len(c.versions)-1].rec.Class == class {
					seen[oid] = struct{}{}
					out = append(out, oid)
				}
			}
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// ModSeq returns a counter that increases whenever the class is
// written (by any transaction). The condition evaluator uses it to
// reuse cached results when nothing relevant changed.
func (s *Store) ModSeq(class string) uint64 {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.modSeq[class]
}

// Stats returns a snapshot of the activity counters.
func (s *Store) Stats() Stats {
	st := Stats{
		Puts:        s.nPuts.Load(),
		Gets:        s.nGets.Load(),
		Scans:       s.nScans.Load(),
		IndexProbes: s.nProbes.Load(),
		TopCommits:  s.nCommits.Load(),
		WALBytes:    s.nWALBytes.Load(),
	}
	if s.log != nil {
		st.WALFsyncs = s.log.Fsyncs()
		st.WALSyncRequests = s.log.SyncRequests()
	}
	return st
}

// DirtyOIDs returns the objects tx itself has written (not
// ancestors'), sorted. The rule manager uses it for delta queries.
func (s *Store) DirtyOIDs(tx lock.TxnID) []datum.OID {
	s.mu.RLock()
	defer s.mu.RUnlock()
	out := make([]datum.OID, 0, len(s.dirty[tx]))
	for oid := range s.dirty[tx] {
		out = append(out, oid)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// --- txn.Participant ---

// CommitNested folds the child's versions into the parent tier.
func (s *Store) CommitNested(child, parent lock.TxnID) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	for oid := range s.dirty[child] {
		c := s.objects[oid]
		if c == nil {
			continue
		}
		// Drop the parent's own older version (the child's is newer
		// and the parent cannot roll back to it independently), then
		// re-tag the child's version as the parent's.
		kept := c.versions[:0]
		var childV *version
		for i := range c.versions {
			switch c.versions[i].owner {
			case parent:
				// superseded
			case child:
				v := c.versions[i]
				childV = &v
			default:
				kept = append(kept, c.versions[i])
			}
		}
		c.versions = kept
		if childV != nil {
			childV.owner = parent
			c.versions = append(c.versions, *childV)
			s.noteDirty(parent, oid)
		}
	}
	delete(s.dirty, child)
	return nil
}

// CommitTop makes tx's versions durable and visible to everyone. It
// runs in three phases so the disk flush never stalls the store:
//
//  1. prepare — collect the new committed states under s.mu;
//  2. log — append the redo record and group-fsync it with no store
//     lock held, so concurrent committers batch into shared flushes;
//  3. install — reacquire s.mu and publish the committed tier and
//     secondary-index updates.
//
// The write-ahead invariant holds: no version installs before its log
// record is durable. Reading the prepared records outside s.mu is
// safe because records are immutable once Put (Put clones its input,
// readers clone on the way out), tx's own versions cannot change
// while its single commit goroutine is here, and tx still holds its
// exclusive locks, so no other committer touches the same objects.
func (s *Store) CommitTop(tx lock.TxnID) error {
	s.nCommits.Add(1)

	// Prepare.
	s.mu.Lock()
	oids := make([]datum.OID, 0, len(s.dirty[tx]))
	for oid := range s.dirty[tx] {
		oids = append(oids, oid)
	}
	sort.Slice(oids, func(i, j int) bool { return oids[i] < oids[j] })
	recs := make([]Record, 0, len(oids))
	for _, oid := range oids {
		c := s.objects[oid]
		if c == nil {
			continue
		}
		for i := range c.versions {
			if c.versions[i].owner == tx {
				recs = append(recs, c.versions[i].rec)
				break
			}
		}
	}
	s.mu.Unlock()

	// Log before install (write-ahead), outside s.mu.
	if s.log != nil && len(recs) > 0 {
		payload := encodeRedo(recs)
		lsn, err := s.log.Append(payload)
		if err != nil {
			return err
		}
		tm := s.obsm.Timer(obs.HCommitStall)
		if err := s.log.SyncTo(lsn + wal.LSN(8+len(payload))); err != nil {
			return err
		}
		tm.Done()
		s.nWALBytes.Add(uint64(len(payload)))
	}

	// Install.
	s.mu.Lock()
	for _, rec := range recs {
		s.installCommitted(tx, rec)
	}
	delete(s.dirty, tx)
	s.mu.Unlock()
	return nil
}

// installCommitted replaces the committed version of rec's object
// (dropping owner's uncommitted copy, which is what is being
// committed) and maintains extents and indexes. During recovery the
// owner is committedOwner, meaning there is no uncommitted copy to
// drop. Caller holds s.mu.
func (s *Store) installCommitted(owner lock.TxnID, rec Record) {
	c := s.objects[rec.OID]
	if c == nil {
		c = &chain{}
		s.objects[rec.OID] = c
	}
	kept := c.versions[:0]
	var old *Record
	for i := range c.versions {
		v := c.versions[i]
		if v.owner == committedOwner {
			r := v.rec
			old = &r
			continue
		}
		if v.owner == owner {
			continue // the copy being committed
		}
		kept = append(kept, v)
	}
	c.versions = kept
	if old != nil {
		s.indexRemove(*old)
	}
	if rec.Deleted {
		// Tombstone: no committed version is re-installed. Remove the
		// object entirely if no uncommitted versions remain.
		if len(c.versions) == 0 {
			delete(s.objects, rec.OID)
			if e := s.extents[rec.Class]; e != nil {
				delete(e, rec.OID)
			}
		}
		s.modSeq[rec.Class]++
		return
	}
	c.versions = append([]version{{owner: committedOwner, rec: rec}}, c.versions...)
	s.indexInsert(rec)
	s.addExtent(rec.Class, rec.OID)
	s.modSeq[rec.Class]++
}

// AbortTxn discards tx's versions.
func (s *Store) AbortTxn(tx lock.TxnID) {
	s.mu.Lock()
	defer s.mu.Unlock()
	for oid := range s.dirty[tx] {
		c := s.objects[oid]
		if c == nil {
			continue
		}
		kept := c.versions[:0]
		var class string
		for i := range c.versions {
			if c.versions[i].owner == tx {
				class = c.versions[i].rec.Class
				continue
			}
			kept = append(kept, c.versions[i])
		}
		c.versions = kept
		if class != "" {
			s.modSeq[class]++
		}
		if len(c.versions) == 0 {
			delete(s.objects, oid)
			if class != "" {
				if e := s.extents[class]; e != nil {
					delete(e, oid)
				}
			}
		}
	}
	delete(s.dirty, tx)
}

func (s *Store) indexInsert(rec Record) {
	for attr, t := range s.indexes[rec.Class] {
		if v, ok := rec.Attrs[attr]; ok {
			t.Insert(v.Key(), rec.OID)
		}
	}
}

func (s *Store) indexRemove(rec Record) {
	for attr, t := range s.indexes[rec.Class] {
		if v, ok := rec.Attrs[attr]; ok {
			t.Delete(v.Key(), rec.OID)
		}
	}
}

// --- redo log records and snapshot ---

func encodeRedo(recs []Record) []byte {
	buf := binary.AppendUvarint(nil, uint64(len(recs)))
	for _, r := range recs {
		buf = binary.AppendUvarint(buf, uint64(r.OID))
		buf = binary.AppendUvarint(buf, uint64(len(r.Class)))
		buf = append(buf, r.Class...)
		if r.Deleted {
			buf = append(buf, 1)
		} else {
			buf = append(buf, 0)
		}
		buf = datum.EncodeMap(buf, r.Attrs)
	}
	return buf
}

func decodeRedo(payload []byte) ([]Record, error) {
	cnt, n := binary.Uvarint(payload)
	if n <= 0 {
		return nil, errors.New("storage: bad redo header")
	}
	recs := make([]Record, 0, cnt)
	for i := uint64(0); i < cnt; i++ {
		oid, m := binary.Uvarint(payload[n:])
		if m <= 0 {
			return nil, errors.New("storage: bad redo oid")
		}
		n += m
		clen, m := binary.Uvarint(payload[n:])
		if m <= 0 || len(payload) < n+m+int(clen)+1 {
			return nil, errors.New("storage: bad redo class")
		}
		n += m
		class := string(payload[n : n+int(clen)])
		n += int(clen)
		deleted := payload[n] == 1
		n++
		attrs, m, err := datum.DecodeMap(payload[n:])
		if err != nil {
			return nil, fmt.Errorf("storage: redo attrs: %w", err)
		}
		n += m
		recs = append(recs, Record{OID: datum.OID(oid), Class: class, Attrs: attrs, Deleted: deleted})
	}
	return recs, nil
}

// applyRedo applies one WAL record during recovery.
func (s *Store) applyRedo(payload []byte) error {
	recs, err := decodeRedo(payload)
	if err != nil {
		return err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, rec := range recs {
		if rec.OID >= s.nextOID {
			s.nextOID = rec.OID + 1
		}
		s.installCommitted(committedOwner, rec)
	}
	return nil
}

// Checkpoint writes the committed tier to the snapshot file and
// truncates the WAL. It must not run concurrently with commits (the
// engine quiesces first).
func (s *Store) Checkpoint() error {
	if s.dir == "" {
		return nil
	}
	s.mu.RLock()
	recs := make([]Record, 0, len(s.objects))
	for _, c := range s.objects {
		for i := range c.versions {
			if c.versions[i].owner == committedOwner {
				recs = append(recs, c.versions[i].rec)
				break
			}
		}
	}
	nextOID := s.nextOID
	s.mu.RUnlock()
	sort.Slice(recs, func(i, j int) bool { return recs[i].OID < recs[j].OID })

	buf := binary.AppendUvarint(nil, uint64(nextOID))
	buf = append(buf, encodeRedo(recs)...)
	tmp := filepath.Join(s.dir, "snapshot.tmp")
	if err := os.WriteFile(tmp, buf, 0o644); err != nil {
		return fmt.Errorf("storage: write snapshot: %w", err)
	}
	if err := os.Rename(tmp, filepath.Join(s.dir, "snapshot")); err != nil {
		return fmt.Errorf("storage: install snapshot: %w", err)
	}
	if s.log != nil {
		return s.log.Reset()
	}
	return nil
}

func (s *Store) loadSnapshot(path string) error {
	buf, err := os.ReadFile(path)
	if errors.Is(err, os.ErrNotExist) {
		return nil
	}
	if err != nil {
		return fmt.Errorf("storage: read snapshot: %w", err)
	}
	nextOID, n := binary.Uvarint(buf)
	if n <= 0 {
		return errors.New("storage: bad snapshot header")
	}
	recs, err := decodeRedo(buf[n:])
	if err != nil {
		return fmt.Errorf("storage: snapshot: %w", err)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	s.nextOID = datum.OID(nextOID)
	for _, rec := range recs {
		s.installCommitted(committedOwner, rec)
	}
	return nil
}
