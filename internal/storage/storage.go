// Package storage implements the versioned object heap beneath the
// Object Manager. Each committed object carries a chain of versions
// stamped with logical commit LSNs (see mvcc.go); uncommitted
// versions are tagged by the transaction that wrote them. A reader
// sees its own newest version, else the newest version of an
// ancestor, else the newest committed version at its snapshot LSN.
// Folding a child's versions into its parent at nested commit gives
// the nested-transaction atomicity of §3.1 of the paper without
// copying objects up front.
//
// The store is also the durability point: top-level commits append a
// redo record to the write-ahead log before the committed tier is
// updated, and Open replays the log (over an optional checkpoint
// snapshot) to recover. Only committed top-level effects are ever
// logged, so recovery is a pure redo pass.
//
// The heap is hash-partitioned: object entries, per-class extents,
// and secondary btree indexes are co-located in N shards keyed by
// OID. Reads of committed data are lock-free: entries live in
// sync.Maps, version heads are atomic pointers, and readers resolve
// visibility against a snapshot LSN without ever taking the shard
// mutex or the lock table. Writers (Put, install, abort, GC) take the
// shard mutex to keep the index/extent/dirty bookkeeping coherent.
// Isolation still comes from the lock manager driven by the layers
// above.
package storage

import (
	"encoding/binary"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/btree"
	"repro/internal/datum"
	"repro/internal/failpoint"
	"repro/internal/lock"
	"repro/internal/obs"
	"repro/internal/wal"
)

// committedOwner tags versions in the committed tier.
const committedOwner lock.TxnID = 0

// frameOverheadBytes is the WAL's per-record framing cost (length +
// CRC); a record appended at LSN x advances the log end to
// x + frameOverheadBytes + len(payload).
const frameOverheadBytes = 8

// Record is one object state: its identity, class, attribute values,
// and whether this version is a deletion tombstone.
type Record struct {
	OID     datum.OID
	Class   string
	Attrs   map[string]datum.Value
	Deleted bool
}

// clone returns a deep-enough copy (Values are immutable).
func (r Record) clone() Record {
	r.Attrs = datum.CloneMap(r.Attrs)
	return r
}

// Topology resolves transaction ancestry for visibility; the
// transaction manager implements it.
type Topology interface {
	IsAncestorOrSelf(anc, desc lock.TxnID) bool
}

// version is one uncommitted object state, tagged by the transaction
// that wrote it. Committed states live in mvVersion chains (mvcc.go).
type version struct {
	owner lock.TxnID
	rec   Record
}

// compactFraction sets the adaptive compaction threshold: when
// CompactEvery is zero, the chain compacts once the cumulative delta
// bytes written since the last full snapshot reach 1/compactFraction
// of that snapshot's size. Compaction work then tracks actual churn —
// a write-heavy store compacts often, a quiet one lets its (cheap)
// chain grow — instead of a fixed element cadence.
const compactFraction = 2

// DefaultShards is the committed-tier partition count when Options
// leaves Shards zero. Shard counts are rounded up to a power of two so
// the OID hash is a mask; sequential OIDs then stripe round-robin.
const DefaultShards = 16

// maxShards bounds the partition count (diminishing returns and O(n)
// scans beyond this).
const maxShards = 1024

// Options configures a Store.
type Options struct {
	// Dir is the durability directory (snapshot chain + WAL). Empty
	// means ephemeral: no logging, no recovery.
	Dir string
	// NoSync disables fsync on the WAL.
	NoSync bool
	// Shards is the number of hash partitions of the in-memory heap
	// (rounded up to a power of two, capped at 1024). 0 means
	// DefaultShards. Purely an in-memory concurrency knob: the on-disk
	// format is shard-oblivious, so the count may change across opens.
	Shards int
	// GroupWindow widens WAL group-commit batches: a flush leader
	// dwells this long before snapshotting the batch when followers
	// are queuing (a lone committer never dwells). 0 disables the
	// dwell (batching still happens whenever commits overlap).
	GroupWindow time.Duration
	// CheckpointAfterBytes, when >0, kicks a background checkpoint
	// whenever the WAL has grown by at least this many bytes since the
	// last checkpoint finished. The check runs after each commit's
	// group flush; the checkpoint itself runs on its own goroutine so
	// the triggering commit is never stalled.
	CheckpointAfterBytes uint64
	// CompactEvery, when >0, bounds the delta chain by element count:
	// after this many delta checkpoints, the next Checkpoint writes a
	// full snapshot and drops the chain. 0 selects adaptive
	// compaction: the chain compacts once the cumulative delta bytes
	// reach 1/2 of the last full snapshot's size.
	CompactEvery int
	// OnAsyncError receives errors from background (size-triggered)
	// checkpoints. nil discards them.
	OnAsyncError func(error)
	// Obs, when non-nil, receives WAL fsync latencies, group-commit
	// batch sizes, commit-stall latencies, and per-commit shard
	// spread.
	Obs *obs.Metrics
}

// shard is one hash partition of the heap: the object entries whose
// OIDs map here, the slices of every class extent and secondary index
// covering those OIDs, and the partition's delta-checkpoint dirty and
// GC candidate sets. objects and extents are concurrent maps read
// lock-free by the MVCC read path; mu guards their membership
// mutations plus indexes, ckptDirty, and gcCand.
type shard struct {
	mu        sync.RWMutex
	objects   sync.Map                          // datum.OID -> *mvEntry
	extents   sync.Map                          // class string -> *sync.Map (datum.OID -> struct{})
	indexes   map[string]map[string]*btree.Tree // class -> attr -> committed-tier index, this shard
	ckptDirty map[datum.OID]string              // OIDs committed since the last checkpoint -> class
	gcCand    map[datum.OID]struct{}            // chains that may hold collectible versions
	installs  atomic.Uint64                     // committed installs landed here (load/contention signal)
}

// txnDirty is one transaction's write set. The entry mutex covers the
// set: the owning transaction adds to it, and other transactions'
// IndexCandidates calls read it through their visibility check.
type txnDirty struct {
	mu   sync.Mutex
	oids map[datum.OID]struct{}
}

// Store is the versioned heap.
type Store struct {
	topo      Topology
	shards    []*shard
	shardMask uint64
	dirty     sync.Map // lock.TxnID -> *txnDirty
	modSeq    sync.Map // class string -> *atomic.Uint64
	extentN   sync.Map // class string -> *atomic.Int64 (extent cardinality)
	// statsSeed holds the per-class extent cardinalities carried by the
	// newest snapshot-chain element loaded at Open: checkpoint-time
	// planner statistics that answer ExtentEstimate even before (or
	// without) the live counters seeing the class. Written only during
	// single-threaded recovery; read-only afterwards.
	statsSeed map[string]uint64
	nextOID   atomic.Uint64
	log       *wal.Log
	dir       string
	noSync    bool
	obsm      *obs.Metrics // nil-safe commit-stall observer

	// imu guards index registration (RegisterIndex must create the
	// per-shard trees of one class.attr exactly once).
	imu sync.Mutex

	// inflight holds the LSNs of redo records that have been appended
	// to the WAL but whose versions are not yet installed in the
	// committed tier. The fuzzy checkpointer's watermark is the
	// smallest in-flight LSN (or the log end if none): every record
	// below it is guaranteed to be in the snapshot scan. Guarded by
	// cmu; lock order is shard locks before cmu.
	cmu      sync.Mutex
	inflight map[wal.LSN]struct{}
	// Commit-LSN publish protocol (mvcc.go): nextCommit/pending are
	// guarded by cmu; published is the contiguous prefix of completed
	// commit LSNs, advanced under cmu and read lock-free by snapshot
	// acquisition. pubCond (on cmu) wakes committers waiting for their
	// LSN to publish.
	nextCommit uint64
	pending    map[uint64]struct{}
	published  atomic.Uint64
	pubCond    *sync.Cond

	// Snapshot registry + version GC state (mvcc.go). gcMu serializes
	// sweeps; gcRunning (under bgMu) single-flights the background
	// sweep maybeKickGC starts every gcEveryCommits commits.
	snaps     [snapStripes]snapStripe
	snapSeq   atomic.Uint64
	snapsLive atomic.Int64
	gcMu      sync.Mutex
	gcRunning bool
	gcTick    atomic.Uint64

	// loading marks the single-threaded recovery phase of Open:
	// installs then replace chain heads outright (no history — there
	// are no snapshots yet) and tombstones drop entries immediately.
	loading bool

	// ckptMu serializes checkpoints (they are rare; overlapping ones
	// would race on snapshot.tmp and the chain-link state below, which
	// it also guards).
	ckptMu sync.Mutex
	// Chain-link state for the next checkpoint, guarded by ckptMu:
	// the tip element's watermark and trailing CRC, whether a full
	// snapshot exists (a delta needs a parent), and the sequence
	// number of the newest chain element (reset by compaction).
	chainWatermark wal.LSN
	chainCRC       uint32
	haveFull       bool
	deltaSeq       int
	compactEvery   int
	// fullBytes/deltaBytes drive adaptive compaction (compactEvery ==
	// 0): the last full snapshot's encoded size and the bytes of delta
	// files written (or reloaded) since. Guarded by ckptMu.
	fullBytes  uint64
	deltaBytes uint64

	// Size-trigger state: lastCkptEnd is the log end when the last
	// checkpoint finished (growth beyond ckptAfterBytes kicks a
	// background checkpoint). bgMu orders kicks against Close so the
	// WaitGroup is never Added after Close begins waiting.
	ckptAfterBytes uint64
	lastCkptEnd    atomic.Uint64
	onAsyncErr     func(error)
	bgMu           sync.Mutex
	bgRunning      bool
	closing        bool
	bgWG           sync.WaitGroup

	// Counters are atomic: reads (Get/Scan) bump them while holding
	// no lock at all.
	nPuts, nGets, nScans, nProbes, nCommits, nWALBytes atomic.Uint64
	nCheckpoints, nFullCkpts, nDeltaCkpts              atomic.Uint64
	nWALReclaimed                                      atomic.Uint64
	nGCRuns, nGCReclaimed                              atomic.Uint64
}

// Stats counts store activity.
type Stats struct {
	Puts        uint64
	Gets        uint64
	Scans       uint64
	IndexProbes uint64
	TopCommits  uint64
	WALBytes    uint64
	// WALFsyncs counts physical fsyncs; WALSyncRequests counts commits
	// that asked for durability. Fsyncs/requests < 1 means group
	// commit is batching concurrent committers into shared flushes.
	WALFsyncs       uint64
	WALSyncRequests uint64
	// Checkpoints counts completed fuzzy checkpoints;
	// FullCheckpoints/DeltaCheckpoints split them by kind (a full
	// checkpoint rewrites the whole committed tier and compacts the
	// delta chain; a delta writes only the OIDs dirtied since the last
	// checkpoint). WALBytesReclaimed totals the log bytes truncated.
	Checkpoints       uint64
	FullCheckpoints   uint64
	DeltaCheckpoints  uint64
	WALBytesReclaimed uint64
	// Shards is the partition count of the in-memory heap.
	Shards int
	// PublishedLSN is the newest commit LSN visible to fresh
	// snapshots; OldestSnapshotLSN is the version-GC watermark (equal
	// to PublishedLSN when no snapshot is pinned); LiveSnapshots
	// counts currently registered snapshots. GCRuns/VersionsReclaimed
	// count version-GC sweeps and the versions they unlinked.
	PublishedLSN      uint64
	OldestSnapshotLSN uint64
	LiveSnapshots     int
	GCRuns            uint64
	VersionsReclaimed uint64
}

// roundShards normalizes a configured shard count to a power of two in
// [1, maxShards].
func roundShards(n int) int {
	if n <= 0 {
		n = DefaultShards
	}
	if n > maxShards {
		n = maxShards
	}
	p := 1
	for p < n {
		p <<= 1
	}
	return p
}

// Open creates a store. If opts.Dir is non-empty the store loads the
// snapshot chain (full snapshot plus deltas, if present), replays the
// WAL, and will log all future top-level commits there.
func Open(topo Topology, opts Options) (*Store, error) {
	compactEvery := opts.CompactEvery
	if compactEvery < 0 {
		compactEvery = 0
	}
	nShards := roundShards(opts.Shards)
	s := &Store{
		topo:           topo,
		shards:         make([]*shard, nShards),
		shardMask:      uint64(nShards - 1),
		inflight:       map[wal.LSN]struct{}{},
		nextCommit:     1,
		pending:        map[uint64]struct{}{},
		compactEvery:   compactEvery,
		ckptAfterBytes: opts.CheckpointAfterBytes,
		onAsyncErr:     opts.OnAsyncError,
		dir:            opts.Dir,
		noSync:         opts.NoSync,
		obsm:           opts.Obs,
	}
	s.pubCond = sync.NewCond(&s.cmu)
	for i := range s.snaps {
		s.snaps[i].live = map[*Snapshot]struct{}{}
	}
	for i := range s.shards {
		s.shards[i] = &shard{
			indexes:   map[string]map[string]*btree.Tree{},
			ckptDirty: map[datum.OID]string{},
			gcCand:    map[datum.OID]struct{}{},
		}
	}
	s.nextOID.Store(1)
	if opts.Dir == "" {
		return s, nil
	}
	if err := os.MkdirAll(opts.Dir, 0o755); err != nil {
		return nil, fmt.Errorf("storage: mkdir %s: %w", opts.Dir, err)
	}
	s.loading = true
	watermark, err := s.loadChain()
	if err != nil {
		return nil, err
	}
	l, err := wal.Open(filepath.Join(opts.Dir, "wal"),
		wal.Options{NoSync: opts.NoSync, GroupWindow: opts.GroupWindow, Obs: opts.Obs})
	if err != nil {
		return nil, err
	}
	s.log = l
	// The checkpointer renames the snapshot before truncating the log,
	// so on any crash the snapshot covers at least everything the log
	// has dropped. A base past the watermark means records are gone
	// from both places — refuse to open rather than lose data silently.
	if base := l.Base(); base > watermark {
		l.Close()
		return nil, fmt.Errorf("storage: recovery: wal base %d beyond snapshot watermark %d", base, watermark)
	}
	if err := l.Replay(func(lsn wal.LSN, payload []byte) error {
		if lsn < watermark {
			// Already folded into the snapshot (watermark invariant);
			// the record survives in the log only because truncation
			// runs after the snapshot rename.
			return nil
		}
		return s.applyRedo(payload)
	}); err != nil {
		l.Close()
		return nil, fmt.Errorf("storage: recovery: %w", err)
	}
	s.loading = false
	// Seed the size trigger at the chain watermark, not the log end:
	// a WAL suffix surviving from before the crash counts as growth,
	// so an over-threshold backlog checkpoints on the first commit.
	s.lastCkptEnd.Store(uint64(watermark))
	// Checkpoint-on-open: a surviving WAL suffix already past the size
	// trigger is folded into the chain now, while the store is still
	// private to this goroutine, rather than being replayed again on
	// the next crash and only reclaimed after the first post-open
	// commit. A failure here is as fatal as a recovery failure — the
	// directory is writable-or-not, and finding out now beats finding
	// out on the first background checkpoint.
	if s.ckptAfterBytes > 0 && uint64(l.End())-uint64(watermark) > s.ckptAfterBytes {
		if _, err := s.checkpoint(false); err != nil {
			l.Close()
			return nil, fmt.Errorf("storage: checkpoint-on-open: %w", err)
		}
	}
	return s, nil
}

// Close waits out any background (size-triggered) checkpoint, then
// closes the WAL, if any.
func (s *Store) Close() error {
	s.bgMu.Lock()
	s.closing = true
	s.bgMu.Unlock()
	s.bgWG.Wait()
	if s.log != nil {
		return s.log.Close()
	}
	return nil
}

// shardOf maps an OID to its partition.
func (s *Store) shardOf(oid datum.OID) *shard {
	return s.shards[uint64(oid)&s.shardMask]
}

// ShardCount returns the number of heap partitions.
func (s *Store) ShardCount() int { return len(s.shards) }

// ShardInstalls returns, per shard, the number of committed installs
// it has absorbed — a cheap load/contention profile of the partitions.
func (s *Store) ShardInstalls() []uint64 {
	out := make([]uint64, len(s.shards))
	for i, sh := range s.shards {
		out[i] = sh.installs.Load()
	}
	return out
}

// AllocOID returns a fresh, never-reused object identifier.
func (s *Store) AllocOID() datum.OID {
	return datum.OID(s.nextOID.Add(1) - 1)
}

// raiseNextOID lifts the allocator above oid (recovery paths).
func (s *Store) raiseNextOID(oid datum.OID) {
	for {
		cur := s.nextOID.Load()
		if uint64(oid) < cur {
			return
		}
		if s.nextOID.CompareAndSwap(cur, uint64(oid)+1) {
			return
		}
	}
}

// bumpSeq advances the class's modification counter. Lock-free after
// the class's first write.
func (s *Store) bumpSeq(class string) {
	if v, ok := s.modSeq.Load(class); ok {
		v.(*atomic.Uint64).Add(1)
		return
	}
	v, _ := s.modSeq.LoadOrStore(class, &atomic.Uint64{})
	v.(*atomic.Uint64).Add(1)
}

// Put installs rec as tx's uncommitted version of the object,
// replacing any prior version tx wrote. The caller must already hold
// the appropriate exclusive lock.
func (s *Store) Put(tx lock.TxnID, rec Record) {
	rec = rec.clone()
	s.nPuts.Add(1)
	sh := s.shardOf(rec.OID)
	sh.mu.Lock()
	e := s.entryLocked(sh, rec.OID)
	e.umu.Lock()
	replaced := false
	for i := range e.unc {
		if e.unc[i].owner == tx {
			// Replace in place, but keep recency: move to the end so
			// the newest write wins within this owner tier.
			v := e.unc[i]
			v.rec = rec
			e.unc = append(append(e.unc[:i:i], e.unc[i+1:]...), v)
			replaced = true
			break
		}
	}
	if !replaced {
		e.unc = append(e.unc, version{owner: tx, rec: rec})
	}
	e.nUnc.Store(int32(len(e.unc)))
	e.umu.Unlock()
	s.extentAdd(sh, rec.Class, rec.OID)
	sh.mu.Unlock()
	// Bump after the write so a stale ModSeq read can only under-claim
	// freshness (forcing a harmless re-evaluation), never cache stale
	// data under a new sequence number.
	s.bumpSeq(rec.Class)
	s.noteDirty(tx, rec.OID)
}

// entryLocked returns oid's entry, creating it if needed. Caller
// holds sh.mu exclusively (entry membership is mutated only under it).
func (s *Store) entryLocked(sh *shard, oid datum.OID) *mvEntry {
	if v, ok := sh.objects.Load(oid); ok {
		return v.(*mvEntry)
	}
	e := &mvEntry{}
	sh.objects.Store(oid, e)
	return e
}

func (s *Store) noteDirty(tx lock.TxnID, oid datum.OID) {
	d := s.dirtySet(tx)
	d.mu.Lock()
	d.oids[oid] = struct{}{}
	d.mu.Unlock()
}

// dirtySet returns tx's write-set entry, creating it if needed.
func (s *Store) dirtySet(tx lock.TxnID) *txnDirty {
	if v, ok := s.dirty.Load(tx); ok {
		return v.(*txnDirty)
	}
	v, _ := s.dirty.LoadOrStore(tx, &txnDirty{oids: map[datum.OID]struct{}{}})
	return v.(*txnDirty)
}

// takeDirty removes and returns tx's write set (sorted), or nil.
func (s *Store) takeDirty(tx lock.TxnID) []datum.OID {
	v, ok := s.dirty.LoadAndDelete(tx)
	if !ok {
		return nil
	}
	d := v.(*txnDirty)
	d.mu.Lock()
	oids := make([]datum.OID, 0, len(d.oids))
	for oid := range d.oids {
		oids = append(oids, oid)
	}
	d.mu.Unlock()
	sort.Slice(oids, func(i, j int) bool { return oids[i] < oids[j] })
	return oids
}

// extentAdd records oid as a (possible) member of class's extent.
// Membership is a superset: resolution filters tombstones and
// invisible versions. sync.Map writes are safe without sh.mu, but all
// callers hold it anyway (they are mutating the entry too).
func (s *Store) extentAdd(sh *shard, class string, oid datum.OID) {
	var set *sync.Map
	if v, ok := sh.extents.Load(class); ok {
		set = v.(*sync.Map)
	} else {
		v, _ := sh.extents.LoadOrStore(class, &sync.Map{})
		set = v.(*sync.Map)
	}
	if _, present := set.LoadOrStore(oid, struct{}{}); !present {
		s.extentCounter(class).Add(1)
	}
}

// extentDel removes oid from class's extent membership, keeping the
// cardinality counter in step. Caller holds sh.mu exclusively.
func (s *Store) extentDel(sh *shard, class string, oid datum.OID) {
	if ev, ok := sh.extents.Load(class); ok {
		if _, present := ev.(*sync.Map).LoadAndDelete(oid); present {
			s.extentCounter(class).Add(-1)
		}
	}
}

func (s *Store) extentCounter(class string) *atomic.Int64 {
	if v, ok := s.extentN.Load(class); ok {
		return v.(*atomic.Int64)
	}
	v, _ := s.extentN.LoadOrStore(class, &atomic.Int64{})
	return v.(*atomic.Int64)
}

// ExtentEstimate returns the approximate cardinality of class's
// extent: the number of extent-membership entries across all shards,
// maintained O(1) at insert/remove, falling back to the cardinality
// the newest loaded snapshot header recorded at checkpoint time. It
// over-counts live rows by uncommitted inserts and not-yet-GC'd
// tombstone-headed chains, which is fine for its purpose — planner
// cost estimation.
func (s *Store) ExtentEstimate(class string) int {
	if v, ok := s.extentN.Load(class); ok {
		if n := v.(*atomic.Int64).Load(); n > 0 {
			return int(n)
		}
	}
	if n, ok := s.statsSeed[class]; ok {
		return int(n)
	}
	return 0
}

// SeededStats returns a copy of the per-class extent cardinalities the
// newest snapshot-chain element carried at Open (nil when the chain
// predates checkpoint statistics). Planner statistics are seeded from
// these on a cold start instead of live structure probes.
func (s *Store) SeededStats() map[string]uint64 {
	if len(s.statsSeed) == 0 {
		return nil
	}
	out := make(map[string]uint64, len(s.statsSeed))
	for k, v := range s.statsSeed {
		out[k] = v
	}
	return out
}

// classCards captures the live per-class extent cardinalities — the
// planner statistics a checkpoint persists in its header.
func (s *Store) classCards() map[string]uint64 {
	cards := map[string]uint64{}
	s.extentN.Range(func(k, v any) bool {
		if n := v.(*atomic.Int64).Load(); n > 0 {
			cards[k.(string)] = uint64(n)
		}
		return true
	})
	return cards
}

// IndexEstimate counts committed-tier index entries on class.attr in
// [lo, hi], stopping early once limit entries are seen (pass limit<=0
// for an exact count). ok is false when no index exists. The count
// includes entries for older, not-yet-GC'd versions — like the extent
// estimate it is a cheap upper bound for cost estimation, not an
// exact selectivity.
func (s *Store) IndexEstimate(class, attr string, lo, hi btree.Bound, limit int) (int, bool) {
	if !s.HasIndex(class, attr) {
		return 0, false
	}
	n := 0
	for _, sh := range s.shards {
		sh.mu.RLock()
		if t := sh.indexes[class][attr]; t != nil {
			t.Scan(lo, hi, func(string, datum.OID) bool {
				n++
				return limit <= 0 || n < limit
			})
		}
		sh.mu.RUnlock()
		if limit > 0 && n >= limit {
			break
		}
	}
	return n, true
}

// Get returns the version of the object visible to tx: the newest
// version owned by tx or an ancestor, else the newest published
// committed version. Lock-free for committed data — no shard mutex,
// no lock table. The second result is false if no visible version
// exists or the visible version is a deletion tombstone (the record
// is still returned so callers can see the tombstone's class).
//
// Reading at the latest published LSN (rather than a pinned snapshot)
// keeps writers correct under two-phase locking: a transaction
// holding an exclusive lock always sees the newest committed state,
// because the previous writer's commit published before its locks
// were released.
func (s *Store) Get(tx lock.TxnID, oid datum.OID) (Record, bool) {
	for {
		p := s.published.Load()
		rec, ok := s.GetAt(tx, oid, p)
		if ok || s.published.Load() == p {
			return rec, ok
		}
		// Miss with a moved frontier: a GC cut (whose watermark is
		// always at or below published at cut time) may have raced
		// our read of p — versions visible at p exist only above a
		// watermark > p, which implies published has advanced past p.
		// Retry at the new frontier; one round suffices unless the
		// race recurs.
	}
}

// GetAt is Get against an explicit snapshot LSN (see AcquireSnapshot).
func (s *Store) GetAt(tx lock.TxnID, oid datum.OID, snap uint64) (Record, bool) {
	s.nGets.Add(1)
	v, ok := s.shardOf(oid).objects.Load(oid)
	if !ok {
		return Record{}, false
	}
	return s.resolve(v.(*mvEntry), tx, snap)
}

// ScanClass calls fn for every live (visible, non-deleted) object of
// the class, in ascending OID order, against a snapshot pinned for
// the whole scan: the result set is a consistent point-in-time view
// even while committers land concurrently. Scanning stops if fn
// returns false. The scan holds no shard lock at any point (the
// extent and entries are read lock-free), so committers are never
// blocked and fn may re-enter the store.
func (s *Store) ScanClass(tx lock.TxnID, class string, fn func(Record) bool) {
	h := s.AcquireSnapshot()
	defer h.Release()
	s.ScanClassAt(tx, class, h.lsn, fn)
}

// ScanClassAt is ScanClass against an explicit snapshot LSN. The
// caller is responsible for keeping a Snapshot registered at or below
// snap while it runs (otherwise the version GC may unlink versions
// the scan needs).
func (s *Store) ScanClassAt(tx lock.TxnID, class string, snap uint64, fn func(Record) bool) {
	s.nScans.Add(1)
	tm := s.obsm.Timer(obs.HSnapshotRead)
	var recs []Record
	for _, sh := range s.shards {
		recs = s.collectClassShard(sh, tx, class, snap, recs)
	}
	sort.Slice(recs, func(i, j int) bool { return recs[i].OID < recs[j].OID })
	tm.Done()
	for _, rec := range recs {
		if !fn(rec) {
			return
		}
	}
}

// collectClassShard appends one shard's visible records of class at
// snap to recs — the lock-free resolve walk shared by the whole-extent
// scan and the per-shard parallel iterator.
func (s *Store) collectClassShard(sh *shard, tx lock.TxnID, class string, snap uint64, recs []Record) []Record {
	ev, ok := sh.extents.Load(class)
	if !ok {
		return recs
	}
	ev.(*sync.Map).Range(func(k, _ any) bool {
		oid := k.(datum.OID)
		if v, ok := sh.objects.Load(oid); ok {
			if rec, ok := s.resolve(v.(*mvEntry), tx, snap); ok && rec.Class == class {
				recs = append(recs, rec)
			}
		}
		return true
	})
	return recs
}

// ScanClassShardAt visits shard si's slice of class's extent, in
// ascending OID order within the shard, at snapshot snap. It is the
// per-shard MVCC extent iterator behind the parallel query executor:
// one worker per shard, every worker at the same pinned LSN, no locks
// taken at any point, so N workers and concurrent committers never
// contend. The caller owns the snapshot-pin obligation of ScanClassAt
// (keep a Snapshot registered at or below snap across *all* workers);
// out-of-range si visits nothing. Scanning stops if fn returns false.
func (s *Store) ScanClassShardAt(tx lock.TxnID, si int, class string, snap uint64, fn func(Record) bool) {
	if si < 0 || si >= len(s.shards) {
		return
	}
	recs := s.collectClassShard(s.shards[si], tx, class, snap, nil)
	sort.Slice(recs, func(i, j int) bool { return recs[i].OID < recs[j].OID })
	for _, rec := range recs {
		if !fn(rec) {
			return
		}
	}
}

// RegisterIndex declares (and builds, from the committed tier) a
// secondary index on class.attr. Idempotent. Each shard gets its own
// tree covering the shard's slice of the extent.
func (s *Store) RegisterIndex(class, attr string) {
	s.imu.Lock()
	defer s.imu.Unlock()
	s.shards[0].mu.RLock()
	exists := s.shards[0].indexes[class][attr] != nil
	s.shards[0].mu.RUnlock()
	if exists {
		return
	}
	for _, sh := range s.shards {
		sh.mu.Lock()
		byAttr := sh.indexes[class]
		if byAttr == nil {
			byAttr = map[string]*btree.Tree{}
			sh.indexes[class] = byAttr
		}
		t := btree.New()
		byAttr[attr] = t
		ev, ok := sh.extents.Load(class)
		if !ok {
			sh.mu.Unlock()
			continue
		}
		ev.(*sync.Map).Range(func(k, _ any) bool {
			oid := k.(datum.OID)
			cv, ok := sh.objects.Load(oid)
			if !ok {
				return true
			}
			// Index every committed version, not just the head: a
			// snapshot pinned below the head must still find its rows
			// (the btree dedups (key, oid) pairs; stale entries are
			// false positives callers re-verify, removed by the GC).
			for v := cv.(*mvEntry).head.Load(); v != nil; v = v.prev.Load() {
				if v.rec.Deleted || v.rec.Class != class {
					continue
				}
				if val, ok := v.rec.Attrs[attr]; ok {
					t.Insert(val.Key(), oid)
				}
			}
			return true
		})
		sh.mu.Unlock()
	}
}

// HasIndex reports whether class.attr has a registered index.
func (s *Store) HasIndex(class, attr string) bool {
	sh := s.shards[0]
	sh.mu.RLock()
	defer sh.mu.RUnlock()
	return sh.indexes[class][attr] != nil
}

// IndexCandidates returns OIDs that *may* satisfy lo <= attr <= hi
// for transaction tx: the committed-tier index hits plus every object
// tx (or an ancestor) has written in the class. Callers must re-check
// the predicate against the visible record (at their snapshot);
// candidates may include false positives — including entries for
// older versions not yet garbage-collected — but never miss a match
// visible at any live snapshot. The btree probe itself takes a brief
// shard read-lock (trees are mutated in place by installs and the
// GC); the subsequent record resolution is lock-free.
func (s *Store) IndexCandidates(tx lock.TxnID, class, attr string, lo, hi btree.Bound) []datum.OID {
	s.nProbes.Add(1)
	if !s.HasIndex(class, attr) {
		return nil
	}
	seen := map[datum.OID]struct{}{}
	var out []datum.OID
	for _, sh := range s.shards {
		sh.mu.RLock()
		if t := sh.indexes[class][attr]; t != nil {
			t.Scan(lo, hi, func(_ string, oid datum.OID) bool {
				if _, dup := seen[oid]; !dup {
					seen[oid] = struct{}{}
					out = append(out, oid)
				}
				return true
			})
		}
		sh.mu.RUnlock()
	}
	// Uncommitted writes by tx's tree are invisible to the committed
	// index; add every dirty object of this class whose writer is
	// visible to tx.
	s.dirty.Range(func(k, v any) bool {
		owner := k.(lock.TxnID)
		if owner != tx && !s.topo.IsAncestorOrSelf(owner, tx) {
			return true
		}
		d := v.(*txnDirty)
		d.mu.Lock()
		oids := make([]datum.OID, 0, len(d.oids))
		for oid := range d.oids {
			oids = append(oids, oid)
		}
		d.mu.Unlock()
		for _, oid := range oids {
			if _, dup := seen[oid]; dup {
				continue
			}
			cv, ok := s.shardOf(oid).objects.Load(oid)
			if !ok {
				continue
			}
			e := cv.(*mvEntry)
			var cls string
			e.umu.Lock()
			if n := len(e.unc); n > 0 {
				cls = e.unc[n-1].rec.Class
			}
			e.umu.Unlock()
			if cls == "" {
				if hv := e.head.Load(); hv != nil {
					cls = hv.rec.Class
				}
			}
			if cls == class {
				seen[oid] = struct{}{}
				out = append(out, oid)
			}
		}
		return true
	})
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// ModSeq returns a counter that increases whenever the class is
// written (by any transaction). The condition evaluator uses it to
// reuse cached results when nothing relevant changed.
func (s *Store) ModSeq(class string) uint64 {
	if v, ok := s.modSeq.Load(class); ok {
		return v.(*atomic.Uint64).Load()
	}
	return 0
}

// Stats returns a snapshot of the activity counters.
func (s *Store) Stats() Stats {
	st := Stats{
		Puts:        s.nPuts.Load(),
		Gets:        s.nGets.Load(),
		Scans:       s.nScans.Load(),
		IndexProbes: s.nProbes.Load(),
		TopCommits:  s.nCommits.Load(),
		WALBytes:    s.nWALBytes.Load(),
		Shards:      len(s.shards),
	}
	st.Checkpoints = s.nCheckpoints.Load()
	st.FullCheckpoints = s.nFullCkpts.Load()
	st.DeltaCheckpoints = s.nDeltaCkpts.Load()
	st.WALBytesReclaimed = s.nWALReclaimed.Load()
	st.PublishedLSN = s.published.Load()
	st.OldestSnapshotLSN, st.LiveSnapshots = s.oldestSnapshotLSN()
	st.GCRuns = s.nGCRuns.Load()
	st.VersionsReclaimed = s.nGCReclaimed.Load()
	if s.log != nil {
		st.WALFsyncs = s.log.Fsyncs()
		st.WALSyncRequests = s.log.SyncRequests()
	}
	return st
}

// DirtyOIDs returns the objects tx itself has written (not
// ancestors'), sorted. The rule manager uses it for delta queries.
func (s *Store) DirtyOIDs(tx lock.TxnID) []datum.OID {
	v, ok := s.dirty.Load(tx)
	if !ok {
		return nil
	}
	d := v.(*txnDirty)
	d.mu.Lock()
	out := make([]datum.OID, 0, len(d.oids))
	for oid := range d.oids {
		out = append(out, oid)
	}
	d.mu.Unlock()
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// --- txn.Participant ---

// CommitNested folds the child's versions into the parent tier.
func (s *Store) CommitNested(child, parent lock.TxnID) error {
	for _, oid := range s.takeDirty(child) {
		v, ok := s.shardOf(oid).objects.Load(oid)
		if !ok {
			continue
		}
		e := v.(*mvEntry)
		// Drop the parent's own older version (the child's is newer
		// and the parent cannot roll back to it independently), then
		// re-tag the child's version as the parent's.
		e.umu.Lock()
		kept := e.unc[:0]
		var childV *version
		for i := range e.unc {
			switch e.unc[i].owner {
			case parent:
				// superseded
			case child:
				cv := e.unc[i]
				childV = &cv
			default:
				kept = append(kept, e.unc[i])
			}
		}
		e.unc = kept
		if childV != nil {
			childV.owner = parent
			e.unc = append(e.unc, *childV)
		}
		e.nUnc.Store(int32(len(e.unc)))
		e.umu.Unlock()
		if childV != nil {
			s.noteDirty(parent, oid)
		}
	}
	return nil
}

// CommitTop makes tx's versions durable and visible to everyone. It
// runs in three phases so the disk flush never stalls the store:
//
//  1. prepare — collect the new committed states from tx's write set
//     (uncommitted entries, under their entry mutexes);
//  2. log — append the redo record, assign the commit LSN, and
//     group-fsync with no store lock held, so concurrent committers
//     batch into shared flushes;
//  3. install, then publish — push the new versions onto their chains
//     and update secondary indexes shard by shard (locking only the
//     shards the write set maps to), then mark the commit LSN
//     complete. Lock-free readers see the commit only once the
//     published frontier crosses its LSN, which happens only when
//     every record of this commit — and of every earlier commit — is
//     installed, so a snapshot can never observe half a commit.
//
// The write-ahead invariant holds: no version installs before its log
// record is durable. Reading the prepared records outside the shard
// locks is safe because records are immutable once Put (Put clones
// its input, readers clone on the way out), tx's own versions cannot
// change while its single commit goroutine is here, and tx still
// holds its exclusive locks, so no other committer touches the same
// objects.
//
// CommitTop returns only after its LSN publishes (read-your-commits
// for the caller, which releases tx's locks next). The wait is
// bounded by earlier committers finishing their installs — their WAL
// records were flushed by the same group commit.
func (s *Store) CommitTop(tx lock.TxnID) error {
	s.nCommits.Add(1)

	// Prepare.
	oids := s.takeDirty(tx)
	recs := make([]Record, 0, len(oids))
	for _, oid := range oids {
		if v, ok := s.shardOf(oid).objects.Load(oid); ok {
			e := v.(*mvEntry)
			e.umu.Lock()
			for i := range e.unc {
				if e.unc[i].owner == tx {
					recs = append(recs, e.unc[i].rec)
					break
				}
			}
			e.umu.Unlock()
		}
	}
	if len(recs) == 0 {
		return nil
	}

	// Log before install (write-ahead), outside the shard locks. The
	// record's WAL LSN is registered as in-flight — and the logical
	// commit LSN assigned — under cmu in the same critical section as
	// the append, so a concurrent checkpoint either sees this commit
	// installed or holds its watermark below the record (the
	// watermark invariant), and commit-LSN order matches log order.
	var lsn wal.LSN
	var clsn uint64
	logged := false
	if s.log != nil {
		payload := encodeRedo(recs)
		s.cmu.Lock()
		var err error
		lsn, err = s.log.Append(payload)
		if err != nil {
			s.cmu.Unlock()
			return err
		}
		s.inflight[lsn] = struct{}{}
		clsn = s.beginCommitLocked()
		s.cmu.Unlock()
		logged = true
		tm := s.obsm.Timer(obs.HCommitStall)
		if err := s.log.SyncTo(lsn + wal.LSN(frameOverheadBytes+len(payload))); err != nil {
			s.cmu.Lock()
			delete(s.inflight, lsn)
			s.endCommitLocked(clsn) // abandoned: nothing installed at clsn
			s.cmu.Unlock()
			return err
		}
		tm.Done()
		s.nWALBytes.Add(uint64(len(payload)))
	} else {
		s.cmu.Lock()
		clsn = s.beginCommitLocked()
		s.cmu.Unlock()
	}

	// Install, shard by shard: group the write set so each shard lock
	// is taken once. Single-record commits (the common OLTP shape)
	// skip the grouping maps entirely.
	var nShards int
	if len(recs) == 1 {
		rec := recs[0]
		sh := s.shardOf(rec.OID)
		sh.mu.Lock()
		s.installCommitted(sh, tx, rec, clsn)
		if s.dir != "" {
			// Mark for the next delta snapshot. The mark rides the
			// same critical section as the install, so a checkpoint
			// scan sees the version and the mark together or neither.
			sh.ckptDirty[rec.OID] = rec.Class
		}
		sh.installs.Add(1)
		sh.mu.Unlock()
		s.bumpSeq(rec.Class)
		nShards = 1
	} else {
		groups := map[*shard][]Record{}
		for _, rec := range recs {
			sh := s.shardOf(rec.OID)
			groups[sh] = append(groups[sh], rec)
		}
		classes := map[string]struct{}{}
		for sh, group := range groups {
			sh.mu.Lock()
			for _, rec := range group {
				s.installCommitted(sh, tx, rec, clsn)
				if s.dir != "" {
					sh.ckptDirty[rec.OID] = rec.Class
				}
				classes[rec.Class] = struct{}{}
			}
			sh.installs.Add(uint64(len(group)))
			sh.mu.Unlock()
		}
		for class := range classes {
			s.bumpSeq(class)
		}
		nShards = len(groups)
	}
	s.obsm.ObserveN(obs.HCommitShards, uint64(nShards))

	// Publish: deregister the WAL LSN and complete the commit LSN only
	// after every shard's install — a checkpoint scan that missed
	// these versions must still see the LSN in flight, and a snapshot
	// must not resolve to a partially installed commit.
	s.cmu.Lock()
	if logged {
		delete(s.inflight, lsn)
	}
	s.endCommitLocked(clsn)
	s.cmu.Unlock()
	s.waitPublished(clsn)
	if logged {
		s.maybeKickCheckpoint()
	}
	s.maybeKickGC()
	return nil
}

// maybeKickCheckpoint starts a background checkpoint when the WAL has
// grown past the configured byte threshold since the last one. At most
// one background checkpoint runs at a time, and none may start once
// Close has begun.
func (s *Store) maybeKickCheckpoint() {
	if s.ckptAfterBytes == 0 || s.log == nil {
		return
	}
	if uint64(s.log.End())-s.lastCkptEnd.Load() < s.ckptAfterBytes {
		return
	}
	s.bgMu.Lock()
	if s.closing || s.bgRunning {
		s.bgMu.Unlock()
		return
	}
	s.bgRunning = true
	s.bgWG.Add(1)
	s.bgMu.Unlock()
	go func() {
		defer s.bgWG.Done()
		_, err := s.Checkpoint()
		s.bgMu.Lock()
		s.bgRunning = false
		s.bgMu.Unlock()
		if err != nil && s.onAsyncErr != nil {
			s.onAsyncErr(fmt.Errorf("storage: size-triggered checkpoint: %w", err))
		}
	}()
}

// installCommitted pushes rec as the newest committed version of its
// object, stamped with commit LSN clsn (dropping owner's uncommitted
// copy, which is what is being committed), and maintains the shard's
// extents and indexes. Old versions stay linked beneath the new head
// for snapshot readers; the version GC unlinks them (and removes
// their index entries) once no live snapshot can reach them. During
// recovery (s.loading) the owner is committedOwner, there is no
// history to preserve, and the head is replaced outright. Caller
// holds sh.mu exclusively; sh is rec.OID's shard. The class
// modification counter is bumped by the caller (after its shard
// section) — see Put for the ordering argument.
func (s *Store) installCommitted(sh *shard, owner lock.TxnID, rec Record, clsn uint64) {
	if s.loading {
		if rec.Deleted {
			sh.objects.Delete(rec.OID)
			s.extentDel(sh, rec.Class, rec.OID)
			return
		}
		e := s.entryLocked(sh, rec.OID)
		nv := &mvVersion{lsn: clsn, rec: rec}
		nv.depth.Store(1)
		e.head.Store(nv)
		s.extentAdd(sh, rec.Class, rec.OID)
		return
	}
	e := s.entryLocked(sh, rec.OID)
	if owner != committedOwner {
		e.umu.Lock()
		kept := e.unc[:0]
		for i := range e.unc {
			if e.unc[i].owner != owner {
				kept = append(kept, e.unc[i])
			}
		}
		e.unc = kept
		e.nUnc.Store(int32(len(e.unc)))
		e.umu.Unlock()
	}
	old := e.head.Load()
	nv := &mvVersion{lsn: clsn, rec: rec}
	depth := uint32(1)
	if old != nil {
		nv.prev.Store(old)
		depth = old.depth.Load() + 1
	}
	nv.depth.Store(depth)
	// The head store is the publication point for this version: the
	// record was cloned at Put and is immutable from here on, so a
	// lock-free reader that loads the new head sees it fully built.
	// (Visibility to *snapshots* additionally waits for the commit
	// LSN to publish — see CommitTop.)
	e.head.Store(nv)
	s.obsm.ObserveN(obs.HVersionChain, uint64(depth))
	if !rec.Deleted {
		indexInsert(sh, rec)
		s.extentAdd(sh, rec.Class, rec.OID)
	}
	if old != nil || rec.Deleted {
		// Inline trim: with no snapshot registered anywhere, versions
		// below the one the published frontier resolves to are
		// already unreachable — cut them (and their index entries)
		// now rather than letting a hot chain grow until the next
		// background sweep pins a pile of dead attr maps in the heap.
		// Safe against racing registrations because AcquireSnapshot
		// bumps the live count before reading published: a count of 0
		// here means any registration we missed pins an LSN at or
		// above the watermark this cut uses.
		if s.snapsLive.Load() == 0 {
			var r GCResult
			done := s.gcChain(sh, rec.OID, s.published.Load(), &r)
			if r.Reclaimed > 0 {
				s.nGCReclaimed.Add(uint64(r.Reclaimed))
			}
			if done {
				return
			}
		}
		sh.gcCand[rec.OID] = struct{}{}
	}
}

// AbortTxn discards tx's versions.
func (s *Store) AbortTxn(tx lock.TxnID) {
	classes := map[string]struct{}{}
	for _, oid := range s.takeDirty(tx) {
		sh := s.shardOf(oid)
		sh.mu.Lock()
		v, ok := sh.objects.Load(oid)
		if !ok {
			sh.mu.Unlock()
			continue
		}
		e := v.(*mvEntry)
		e.umu.Lock()
		kept := e.unc[:0]
		var class string
		for i := range e.unc {
			if e.unc[i].owner == tx {
				class = e.unc[i].rec.Class
				continue
			}
			kept = append(kept, e.unc[i])
		}
		e.unc = kept
		e.nUnc.Store(int32(len(kept)))
		empty := len(kept) == 0 && e.head.Load() == nil
		e.umu.Unlock()
		if empty {
			// Never committed and no other writer: drop the entry.
			sh.objects.Delete(oid)
			if class != "" {
				s.extentDel(sh, class, oid)
			}
		}
		sh.mu.Unlock()
		if class != "" {
			classes[class] = struct{}{}
		}
	}
	for class := range classes {
		s.bumpSeq(class)
	}
}

func indexInsert(sh *shard, rec Record) {
	for attr, t := range sh.indexes[rec.Class] {
		if v, ok := rec.Attrs[attr]; ok {
			t.Insert(v.Key(), rec.OID)
		}
	}
}

// --- redo log records and snapshot ---

func encodeRedo(recs []Record) []byte {
	buf := binary.AppendUvarint(nil, uint64(len(recs)))
	for _, r := range recs {
		buf = binary.AppendUvarint(buf, uint64(r.OID))
		buf = binary.AppendUvarint(buf, uint64(len(r.Class)))
		buf = append(buf, r.Class...)
		if r.Deleted {
			buf = append(buf, 1)
		} else {
			buf = append(buf, 0)
		}
		buf = datum.EncodeMap(buf, r.Attrs)
	}
	return buf
}

func decodeRedo(payload []byte) ([]Record, error) {
	cnt, n := binary.Uvarint(payload)
	// Each record takes several bytes, so a count beyond the remaining
	// input is corrupt — reject before allocating.
	if n <= 0 || cnt > uint64(len(payload)-n) {
		return nil, errors.New("storage: bad redo header")
	}
	recs := make([]Record, 0, cnt)
	for i := uint64(0); i < cnt; i++ {
		oid, m := binary.Uvarint(payload[n:])
		if m <= 0 {
			return nil, errors.New("storage: bad redo oid")
		}
		n += m
		clen, m := binary.Uvarint(payload[n:])
		// Compare in uint64 so a huge length cannot wrap int and slip
		// past the bounds check; >= keeps one byte for the tombstone
		// flag.
		if m <= 0 || clen >= uint64(len(payload)-n-m) {
			return nil, errors.New("storage: bad redo class")
		}
		n += m
		class := string(payload[n : n+int(clen)])
		n += int(clen)
		deleted := payload[n] == 1
		n++
		attrs, m, err := datum.DecodeMap(payload[n:])
		if err != nil {
			return nil, fmt.Errorf("storage: redo attrs: %w", err)
		}
		n += m
		recs = append(recs, Record{OID: datum.OID(oid), Class: class, Attrs: attrs, Deleted: deleted})
	}
	return recs, nil
}

// WAL exposes the store's write-ahead log (nil for an ephemeral
// store). The replication primary streams durable frames straight
// from it.
func (s *Store) WAL() *wal.Log { return s.log }

// Dir returns the store's durability directory ("" for ephemeral).
// The replication primary ships the snapshot-chain files in it to
// bootstrapping followers.
func (s *Store) Dir() string { return s.dir }

// ApplyReplicated logs and installs one replicated redo batch on a
// follower store. payload is the primary's WAL record verbatim and
// primaryLSN its LSN there; batches must be applied in stream order.
// The follower's log was initialized with the primary's base (see
// wal.InitFile), so the append must land at exactly primaryLSN — the
// logical LSNs of primary and follower line up byte for byte, which
// makes the follower's log end its durable applied-LSN frontier and
// lets recovery after a follower crash resume the stream from there.
//
// The batch follows CommitTop's write-ahead discipline: append and
// register in-flight under cmu, group-sync, then install and publish.
// A follower checkpoint interleaving anywhere in between therefore
// keeps the watermark invariant, so followers truncate their own logs
// safely. Returns the new applied frontier (the follower's log end).
func (s *Store) ApplyReplicated(primaryLSN wal.LSN, payload []byte) (wal.LSN, error) {
	if s.log == nil {
		return 0, errors.New("storage: replica apply needs a durable store")
	}
	recs, err := decodeRedo(payload)
	if err != nil {
		return 0, err
	}
	s.cmu.Lock()
	if end := s.log.End(); end != primaryLSN {
		s.cmu.Unlock()
		return 0, fmt.Errorf("storage: replica apply at lsn %d, local log end %d", primaryLSN, end)
	}
	lsn, err := s.log.Append(payload)
	if err != nil {
		s.cmu.Unlock()
		return 0, err
	}
	s.inflight[lsn] = struct{}{}
	clsn := s.beginCommitLocked()
	s.cmu.Unlock()
	failpoint.Hit("repl.midApply")
	end := lsn + wal.LSN(frameOverheadBytes+len(payload))
	if err := s.log.SyncTo(end); err != nil {
		s.cmu.Lock()
		delete(s.inflight, lsn)
		s.endCommitLocked(clsn)
		s.cmu.Unlock()
		return 0, err
	}
	s.nWALBytes.Add(uint64(len(payload)))
	failpoint.Hit("repl.beforeInstall")
	classes := map[string]struct{}{}
	for _, rec := range recs {
		s.raiseNextOID(rec.OID)
		sh := s.shardOf(rec.OID)
		sh.mu.Lock()
		s.installCommitted(sh, committedOwner, rec, clsn)
		sh.ckptDirty[rec.OID] = rec.Class
		sh.installs.Add(1)
		sh.mu.Unlock()
		classes[rec.Class] = struct{}{}
	}
	for class := range classes {
		s.bumpSeq(class)
	}
	s.nCommits.Add(1)
	s.cmu.Lock()
	delete(s.inflight, lsn)
	s.endCommitLocked(clsn)
	s.cmu.Unlock()
	s.waitPublished(clsn)
	failpoint.Hit("repl.afterInstall")
	s.maybeKickCheckpoint()
	s.maybeKickGC()
	return end, nil
}

// applyRedo applies one WAL record during recovery. Each redo batch
// was one commit, so it gets one fresh commit LSN (recovery is
// single-threaded; endCommit publishes it immediately).
func (s *Store) applyRedo(payload []byte) error {
	recs, err := decodeRedo(payload)
	if err != nil {
		return err
	}
	s.cmu.Lock()
	clsn := s.beginCommitLocked()
	s.cmu.Unlock()
	for _, rec := range recs {
		s.raiseNextOID(rec.OID)
		sh := s.shardOf(rec.OID)
		sh.mu.Lock()
		s.installCommitted(sh, committedOwner, rec, clsn)
		// Replayed records are newer than the on-disk chain (their
		// LSNs are at or above its watermark), so the next delta must
		// carry them.
		sh.ckptDirty[rec.OID] = rec.Class
		sh.mu.Unlock()
		s.bumpSeq(rec.Class)
	}
	s.endCommit(clsn)
	return nil
}

// CheckpointResult describes one completed checkpoint.
type CheckpointResult struct {
	// Kind is "full" (whole committed tier, chain compacted) or
	// "delta" (only the OIDs dirtied since the last checkpoint).
	Kind string `json:"kind"`
	// Records is the number of records written to the chain element.
	Records int `json:"records"`
	// Reclaimed is the number of WAL bytes truncated away.
	Reclaimed uint64 `json:"reclaimed"`
}

// Checkpoint performs one fuzzy (non-quiescent) checkpoint. It is
// incremental and demand-driven: when a full snapshot already exists
// and compaction is not yet due, it writes a *delta* snapshot holding
// only the records committed since the last checkpoint — O(dirty),
// not O(store) — chained to its parent by the parent's watermark LSN
// and CRC. When compaction is due (adaptive byte threshold or the
// fixed CompactEvery cadence — see compactDueLocked — or on the first
// checkpoint of a directory, or via Compact) it rewrites a full
// snapshot and drops the chain. Either way it then truncates the WAL
// prefix the chain covers.
//
// Commits proceed concurrently: the capture iterates the shards one at
// a time (read locks for a full scan, a brief exclusive lock per shard
// to cut its delta dirty set), never stopping the world, and the WAL
// keeps accepting appends except during the (short) suffix copy inside
// TruncateBefore.
//
// The watermark invariant makes this safe: every committed record is
// either in the chain or at LSN >= watermark. The watermark is the
// smallest in-flight LSN (appended but not yet installed), or the log
// end if none. A commit whose LSN is below the watermark had been
// deregistered — which happens only after every shard's install — by
// the time the watermark was read under cmu, so every shard scan that
// follows sees its versions; a commit at or above the watermark
// survives TruncateBefore(watermark) and is replayed over the chain on
// recovery, even if the shard-by-shard capture saw only part of it.
func (s *Store) Checkpoint() (CheckpointResult, error) {
	return s.checkpoint(false)
}

// Compact forces the next checkpoint to be full: it rewrites the
// whole committed tier as a fresh snapshot and drops the delta chain.
func (s *Store) Compact() (CheckpointResult, error) {
	return s.checkpoint(true)
}

// compactDueLocked reports whether the next checkpoint must rewrite a
// full snapshot instead of extending the chain. Fixed-K mode
// (CompactEvery > 0) counts chain elements; adaptive mode (the
// default) compacts once the cumulative delta bytes reach
// 1/compactFraction of the full snapshot's size, so a chain never
// costs recovery more than a bounded multiple of a fresh snapshot
// read. Caller holds ckptMu.
func (s *Store) compactDueLocked() bool {
	if s.compactEvery > 0 {
		return s.deltaSeq >= s.compactEvery
	}
	return s.deltaBytes*compactFraction >= s.fullBytes
}

func (s *Store) checkpoint(forceFull bool) (CheckpointResult, error) {
	if s.dir == "" {
		return CheckpointResult{}, nil
	}
	s.ckptMu.Lock()
	defer s.ckptMu.Unlock()
	tm := s.obsm.Timer(obs.HCheckpoint)

	full := forceFull || !s.haveFull || s.compactDueLocked()

	var watermark wal.LSN
	if s.log != nil {
		watermark = s.log.End()
		s.cmu.Lock()
		for lsn := range s.inflight {
			if lsn < watermark {
				watermark = lsn
			}
		}
		s.cmu.Unlock()
	}
	// Capture shard by shard. For a delta, each shard's dirty set is
	// stolen and its records resolved inside one exclusive section, so
	// a concurrent install either lands wholly before the cut (version
	// and mark captured) or wholly after (mark lands in the fresh set,
	// record at LSN >= watermark). On any failure below the stolen
	// sets are merged back — losing a mark would silently drop its
	// record from every future delta.
	var recs []Record
	var taken []map[datum.OID]string
	if full {
		for _, sh := range s.shards {
			sh.mu.Lock()
			// The capture reads each chain's newest installed head —
			// published or not. An unpublished head's WAL record is
			// already durable (write-ahead) and its LSN is still in
			// flight, so it is at or above the watermark either way.
			sh.objects.Range(func(_, v any) bool {
				if hv := v.(*mvEntry).head.Load(); hv != nil && !hv.rec.Deleted {
					recs = append(recs, hv.rec)
				}
				return true
			})
			taken = append(taken, sh.ckptDirty)
			sh.ckptDirty = make(map[datum.OID]string, 8)
			sh.mu.Unlock()
		}
	} else {
		for _, sh := range s.shards {
			sh.mu.Lock()
			for oid, class := range sh.ckptDirty {
				if rec, ok := committedInShard(sh, oid); ok {
					recs = append(recs, rec)
				} else {
					// Deleted since the last checkpoint: the delta must
					// carry the tombstone or recovery would resurrect
					// the object from an older chain element.
					recs = append(recs, Record{OID: oid, Class: class, Deleted: true})
				}
			}
			taken = append(taken, sh.ckptDirty)
			sh.ckptDirty = make(map[datum.OID]string, 8)
			sh.mu.Unlock()
		}
	}
	// An empty delta at an unmoved watermark would extend the chain
	// with nothing; skip the file but still attempt the truncate (a
	// prior crash between rename and truncate leaves covered prefix
	// to reclaim).
	writeFile := full || len(recs) > 0 || watermark != s.chainWatermark
	// Safe to read after the scans: any captured record's OID was
	// allocated before its commit installed, and recovery raises the
	// allocator past every replayed record anyway.
	nextOID := datum.OID(s.nextOID.Load())
	sort.Slice(recs, func(i, j int) bool { return recs[i].OID < recs[j].OID })

	restoreDirty := func() {
		for i, sh := range s.shards {
			sh.mu.Lock()
			for oid, class := range taken[i] {
				if _, ok := sh.ckptDirty[oid]; !ok {
					sh.ckptDirty[oid] = class
				}
			}
			sh.mu.Unlock()
		}
	}

	res := CheckpointResult{Kind: "delta", Records: len(recs)}
	if full {
		res.Kind = "full"
	}
	if writeFile {
		// Every chain element (delta included) carries the *global*
		// per-class cardinalities as of the cut — recovery seeds planner
		// statistics from the newest element, so cold-start plans cost
		// with real extents before any live counter moves.
		sn := &snapshot{watermark: watermark, nextOID: nextOID, recs: recs, cards: s.classCards()}
		if full {
			sn.kind = snapKindFull
			nbytes, err := s.writeSnapshotFile(sn, fullSnapshotName, fullSnapshotName+".tmp",
				"storage.midSnapshot", "storage.afterRename")
			if err != nil {
				restoreDirty()
				return res, err
			}
			s.fullBytes = uint64(nbytes)
			s.deltaBytes = 0
			// Compaction: the full snapshot subsumes the chain, so the
			// delta files are dead weight. Stale elements surviving a
			// crash here (or a failed remove) are harmless — their
			// parent link no longer matches the new snapshot, so
			// recovery ignores them, and future deltas overwrite them
			// by rename as the sequence numbers restart.
			failpoint.Hit("storage.midCompaction")
			if names, _, err := deltaFiles(s.dir); err == nil {
				for _, name := range names {
					os.Remove(filepath.Join(s.dir, name))
				}
			}
			s.haveFull = true
			s.deltaSeq = 0
			s.nFullCkpts.Add(1)
		} else {
			sn.kind = snapKindDelta
			sn.parentWatermark = s.chainWatermark
			sn.parentCRC = s.chainCRC
			nbytes, err := s.writeSnapshotFile(sn, deltaName(s.deltaSeq+1), "delta.tmp",
				"storage.midDelta", "storage.afterDeltaRename")
			if err != nil {
				restoreDirty()
				return res, err
			}
			s.deltaBytes += uint64(nbytes)
			s.deltaSeq++
			s.nDeltaCkpts.Add(1)
			s.obsm.ObserveN(obs.HDeltaRecords, uint64(len(recs)))
		}
		s.chainWatermark, s.chainCRC = watermark, sn.crc
	}

	failpoint.Hit("storage.beforeTruncate")
	if s.log != nil {
		// Only after the chain element is durably in place may the
		// covered prefix be dropped; crashing before this line
		// recovers from the extended chain plus the untruncated log.
		reclaimed, err := s.log.TruncateBefore(watermark)
		if err != nil {
			return res, err
		}
		res.Reclaimed = reclaimed
		s.lastCkptEnd.Store(uint64(s.log.End()))
	}
	if writeFile || res.Reclaimed > 0 {
		s.nCheckpoints.Add(1)
		s.nWALReclaimed.Add(res.Reclaimed)
		s.obsm.ObserveN(obs.HWALReclaimed, res.Reclaimed)
	}
	tm.Done()
	return res, nil
}

// committedInShard returns oid's newest committed version (tombstones
// read as absent). Caller holds sh.mu (read or write); sh is oid's
// shard.
func committedInShard(sh *shard, oid datum.OID) (Record, bool) {
	v, ok := sh.objects.Load(oid)
	if !ok {
		return Record{}, false
	}
	hv := v.(*mvEntry).head.Load()
	if hv == nil || hv.rec.Deleted {
		return Record{}, false
	}
	return hv.rec, true
}

// syncDir fsyncs a directory so a just-renamed entry survives a crash.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return fmt.Errorf("storage: open dir: %w", err)
	}
	defer d.Close()
	if err := d.Sync(); err != nil {
		return fmt.Errorf("storage: sync dir: %w", err)
	}
	return nil
}
