// Package storage implements the versioned object heap beneath the
// Object Manager. Each object carries a chain of versions tagged by
// the transaction that wrote them; a reader sees its own newest
// version, else the newest version of an ancestor, else the last
// committed version. Folding a child's versions into its parent at
// nested commit gives the nested-transaction atomicity of §3.1 of the
// paper without copying objects up front.
//
// The store is also the durability point: top-level commits append a
// redo record to the write-ahead log before the committed tier is
// updated, and Open replays the log (over an optional checkpoint
// snapshot) to recover. Only committed top-level effects are ever
// logged, so recovery is a pure redo pass.
//
// The heap is hash-partitioned: object chains, per-class extents, and
// secondary btree indexes are co-located in N shards keyed by OID,
// each under its own RWMutex, so readers and committers touching
// different objects never share a lock. Isolation still comes from the
// lock manager driven by the layers above; the shard locks only keep
// the in-memory structures coherent.
package storage

import (
	"encoding/binary"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/btree"
	"repro/internal/datum"
	"repro/internal/failpoint"
	"repro/internal/lock"
	"repro/internal/obs"
	"repro/internal/wal"
)

// committedOwner tags versions in the committed tier.
const committedOwner lock.TxnID = 0

// Record is one object state: its identity, class, attribute values,
// and whether this version is a deletion tombstone.
type Record struct {
	OID     datum.OID
	Class   string
	Attrs   map[string]datum.Value
	Deleted bool
}

// clone returns a deep-enough copy (Values are immutable).
func (r Record) clone() Record {
	r.Attrs = datum.CloneMap(r.Attrs)
	return r
}

// Topology resolves transaction ancestry for visibility; the
// transaction manager implements it.
type Topology interface {
	IsAncestorOrSelf(anc, desc lock.TxnID) bool
}

type version struct {
	owner lock.TxnID
	rec   Record
}

type chain struct {
	versions []version // oldest first; at most one per owner
}

// compactFraction sets the adaptive compaction threshold: when
// CompactEvery is zero, the chain compacts once the cumulative delta
// bytes written since the last full snapshot reach 1/compactFraction
// of that snapshot's size. Compaction work then tracks actual churn —
// a write-heavy store compacts often, a quiet one lets its (cheap)
// chain grow — instead of a fixed element cadence.
const compactFraction = 2

// DefaultShards is the committed-tier partition count when Options
// leaves Shards zero. Shard counts are rounded up to a power of two so
// the OID hash is a mask; sequential OIDs then stripe round-robin.
const DefaultShards = 16

// maxShards bounds the partition count (diminishing returns and O(n)
// scans beyond this).
const maxShards = 1024

// Options configures a Store.
type Options struct {
	// Dir is the durability directory (snapshot chain + WAL). Empty
	// means ephemeral: no logging, no recovery.
	Dir string
	// NoSync disables fsync on the WAL.
	NoSync bool
	// Shards is the number of hash partitions of the in-memory heap
	// (rounded up to a power of two, capped at 1024). 0 means
	// DefaultShards. Purely an in-memory concurrency knob: the on-disk
	// format is shard-oblivious, so the count may change across opens.
	Shards int
	// GroupWindow widens WAL group-commit batches: a flush leader
	// dwells this long before snapshotting the batch when followers
	// are queuing (a lone committer never dwells). 0 disables the
	// dwell (batching still happens whenever commits overlap).
	GroupWindow time.Duration
	// CheckpointAfterBytes, when >0, kicks a background checkpoint
	// whenever the WAL has grown by at least this many bytes since the
	// last checkpoint finished. The check runs after each commit's
	// group flush; the checkpoint itself runs on its own goroutine so
	// the triggering commit is never stalled.
	CheckpointAfterBytes uint64
	// CompactEvery, when >0, bounds the delta chain by element count:
	// after this many delta checkpoints, the next Checkpoint writes a
	// full snapshot and drops the chain. 0 selects adaptive
	// compaction: the chain compacts once the cumulative delta bytes
	// reach 1/2 of the last full snapshot's size.
	CompactEvery int
	// OnAsyncError receives errors from background (size-triggered)
	// checkpoints. nil discards them.
	OnAsyncError func(error)
	// Obs, when non-nil, receives WAL fsync latencies, group-commit
	// batch sizes, commit-stall latencies, and per-commit shard
	// spread.
	Obs *obs.Metrics
}

// shard is one hash partition of the heap: the object chains whose
// OIDs map here, the slices of every class extent and secondary index
// covering those OIDs, and the partition's delta-checkpoint dirty set.
// All fields are guarded by mu.
type shard struct {
	mu        sync.RWMutex
	objects   map[datum.OID]*chain
	extents   map[string]map[datum.OID]struct{} // class -> OIDs with any version, this shard
	indexes   map[string]map[string]*btree.Tree // class -> attr -> committed-tier index, this shard
	ckptDirty map[datum.OID]string              // OIDs committed since the last checkpoint -> class
	installs  atomic.Uint64                     // committed installs landed here (load/contention signal)
}

// txnDirty is one transaction's write set. The entry mutex covers the
// set: the owning transaction adds to it, and other transactions'
// IndexCandidates calls read it through their visibility check.
type txnDirty struct {
	mu   sync.Mutex
	oids map[datum.OID]struct{}
}

// Store is the versioned heap.
type Store struct {
	topo      Topology
	shards    []*shard
	shardMask uint64
	dirty     sync.Map // lock.TxnID -> *txnDirty
	modSeq    sync.Map // class string -> *atomic.Uint64
	nextOID   atomic.Uint64
	log       *wal.Log
	dir       string
	noSync    bool
	obsm      *obs.Metrics // nil-safe commit-stall observer

	// imu guards index registration (RegisterIndex must create the
	// per-shard trees of one class.attr exactly once).
	imu sync.Mutex

	// inflight holds the LSNs of redo records that have been appended
	// to the WAL but whose versions are not yet installed in the
	// committed tier. The fuzzy checkpointer's watermark is the
	// smallest in-flight LSN (or the log end if none): every record
	// below it is guaranteed to be in the snapshot scan. Guarded by
	// cmu; lock order is shard locks before cmu.
	cmu      sync.Mutex
	inflight map[wal.LSN]struct{}

	// ckptMu serializes checkpoints (they are rare; overlapping ones
	// would race on snapshot.tmp and the chain-link state below, which
	// it also guards).
	ckptMu sync.Mutex
	// Chain-link state for the next checkpoint, guarded by ckptMu:
	// the tip element's watermark and trailing CRC, whether a full
	// snapshot exists (a delta needs a parent), and the sequence
	// number of the newest chain element (reset by compaction).
	chainWatermark wal.LSN
	chainCRC       uint32
	haveFull       bool
	deltaSeq       int
	compactEvery   int
	// fullBytes/deltaBytes drive adaptive compaction (compactEvery ==
	// 0): the last full snapshot's encoded size and the bytes of delta
	// files written (or reloaded) since. Guarded by ckptMu.
	fullBytes  uint64
	deltaBytes uint64

	// Size-trigger state: lastCkptEnd is the log end when the last
	// checkpoint finished (growth beyond ckptAfterBytes kicks a
	// background checkpoint). bgMu orders kicks against Close so the
	// WaitGroup is never Added after Close begins waiting.
	ckptAfterBytes uint64
	lastCkptEnd    atomic.Uint64
	onAsyncErr     func(error)
	bgMu           sync.Mutex
	bgRunning      bool
	closing        bool
	bgWG           sync.WaitGroup

	// Counters are atomic: reads (Get/Scan) bump them while holding
	// only a shard read lock.
	nPuts, nGets, nScans, nProbes, nCommits, nWALBytes atomic.Uint64
	nCheckpoints, nFullCkpts, nDeltaCkpts              atomic.Uint64
	nWALReclaimed                                      atomic.Uint64
}

// Stats counts store activity.
type Stats struct {
	Puts        uint64
	Gets        uint64
	Scans       uint64
	IndexProbes uint64
	TopCommits  uint64
	WALBytes    uint64
	// WALFsyncs counts physical fsyncs; WALSyncRequests counts commits
	// that asked for durability. Fsyncs/requests < 1 means group
	// commit is batching concurrent committers into shared flushes.
	WALFsyncs       uint64
	WALSyncRequests uint64
	// Checkpoints counts completed fuzzy checkpoints;
	// FullCheckpoints/DeltaCheckpoints split them by kind (a full
	// checkpoint rewrites the whole committed tier and compacts the
	// delta chain; a delta writes only the OIDs dirtied since the last
	// checkpoint). WALBytesReclaimed totals the log bytes truncated.
	Checkpoints       uint64
	FullCheckpoints   uint64
	DeltaCheckpoints  uint64
	WALBytesReclaimed uint64
	// Shards is the partition count of the in-memory heap.
	Shards int
}

// roundShards normalizes a configured shard count to a power of two in
// [1, maxShards].
func roundShards(n int) int {
	if n <= 0 {
		n = DefaultShards
	}
	if n > maxShards {
		n = maxShards
	}
	p := 1
	for p < n {
		p <<= 1
	}
	return p
}

// Open creates a store. If opts.Dir is non-empty the store loads the
// snapshot chain (full snapshot plus deltas, if present), replays the
// WAL, and will log all future top-level commits there.
func Open(topo Topology, opts Options) (*Store, error) {
	compactEvery := opts.CompactEvery
	if compactEvery < 0 {
		compactEvery = 0
	}
	nShards := roundShards(opts.Shards)
	s := &Store{
		topo:           topo,
		shards:         make([]*shard, nShards),
		shardMask:      uint64(nShards - 1),
		inflight:       map[wal.LSN]struct{}{},
		compactEvery:   compactEvery,
		ckptAfterBytes: opts.CheckpointAfterBytes,
		onAsyncErr:     opts.OnAsyncError,
		dir:            opts.Dir,
		noSync:         opts.NoSync,
		obsm:           opts.Obs,
	}
	for i := range s.shards {
		s.shards[i] = &shard{
			objects:   map[datum.OID]*chain{},
			extents:   map[string]map[datum.OID]struct{}{},
			indexes:   map[string]map[string]*btree.Tree{},
			ckptDirty: map[datum.OID]string{},
		}
	}
	s.nextOID.Store(1)
	if opts.Dir == "" {
		return s, nil
	}
	if err := os.MkdirAll(opts.Dir, 0o755); err != nil {
		return nil, fmt.Errorf("storage: mkdir %s: %w", opts.Dir, err)
	}
	watermark, err := s.loadChain()
	if err != nil {
		return nil, err
	}
	l, err := wal.Open(filepath.Join(opts.Dir, "wal"),
		wal.Options{NoSync: opts.NoSync, GroupWindow: opts.GroupWindow, Obs: opts.Obs})
	if err != nil {
		return nil, err
	}
	s.log = l
	// The checkpointer renames the snapshot before truncating the log,
	// so on any crash the snapshot covers at least everything the log
	// has dropped. A base past the watermark means records are gone
	// from both places — refuse to open rather than lose data silently.
	if base := l.Base(); base > watermark {
		l.Close()
		return nil, fmt.Errorf("storage: recovery: wal base %d beyond snapshot watermark %d", base, watermark)
	}
	if err := l.Replay(func(lsn wal.LSN, payload []byte) error {
		if lsn < watermark {
			// Already folded into the snapshot (watermark invariant);
			// the record survives in the log only because truncation
			// runs after the snapshot rename.
			return nil
		}
		return s.applyRedo(payload)
	}); err != nil {
		l.Close()
		return nil, fmt.Errorf("storage: recovery: %w", err)
	}
	// Seed the size trigger at the chain watermark, not the log end:
	// a WAL suffix surviving from before the crash counts as growth,
	// so an over-threshold backlog checkpoints on the first commit.
	s.lastCkptEnd.Store(uint64(watermark))
	// Checkpoint-on-open: a surviving WAL suffix already past the size
	// trigger is folded into the chain now, while the store is still
	// private to this goroutine, rather than being replayed again on
	// the next crash and only reclaimed after the first post-open
	// commit. A failure here is as fatal as a recovery failure — the
	// directory is writable-or-not, and finding out now beats finding
	// out on the first background checkpoint.
	if s.ckptAfterBytes > 0 && uint64(l.End())-uint64(watermark) > s.ckptAfterBytes {
		if _, err := s.checkpoint(false); err != nil {
			l.Close()
			return nil, fmt.Errorf("storage: checkpoint-on-open: %w", err)
		}
	}
	return s, nil
}

// Close waits out any background (size-triggered) checkpoint, then
// closes the WAL, if any.
func (s *Store) Close() error {
	s.bgMu.Lock()
	s.closing = true
	s.bgMu.Unlock()
	s.bgWG.Wait()
	if s.log != nil {
		return s.log.Close()
	}
	return nil
}

// shardOf maps an OID to its partition.
func (s *Store) shardOf(oid datum.OID) *shard {
	return s.shards[uint64(oid)&s.shardMask]
}

// ShardCount returns the number of heap partitions.
func (s *Store) ShardCount() int { return len(s.shards) }

// ShardInstalls returns, per shard, the number of committed installs
// it has absorbed — a cheap load/contention profile of the partitions.
func (s *Store) ShardInstalls() []uint64 {
	out := make([]uint64, len(s.shards))
	for i, sh := range s.shards {
		out[i] = sh.installs.Load()
	}
	return out
}

// AllocOID returns a fresh, never-reused object identifier.
func (s *Store) AllocOID() datum.OID {
	return datum.OID(s.nextOID.Add(1) - 1)
}

// raiseNextOID lifts the allocator above oid (recovery paths).
func (s *Store) raiseNextOID(oid datum.OID) {
	for {
		cur := s.nextOID.Load()
		if uint64(oid) < cur {
			return
		}
		if s.nextOID.CompareAndSwap(cur, uint64(oid)+1) {
			return
		}
	}
}

// bumpSeq advances the class's modification counter. Lock-free after
// the class's first write.
func (s *Store) bumpSeq(class string) {
	if v, ok := s.modSeq.Load(class); ok {
		v.(*atomic.Uint64).Add(1)
		return
	}
	v, _ := s.modSeq.LoadOrStore(class, &atomic.Uint64{})
	v.(*atomic.Uint64).Add(1)
}

// Put installs rec as tx's version of the object, replacing any prior
// version tx wrote. The caller must already hold the appropriate
// exclusive lock.
func (s *Store) Put(tx lock.TxnID, rec Record) {
	rec = rec.clone()
	s.nPuts.Add(1)
	sh := s.shardOf(rec.OID)
	sh.mu.Lock()
	c := sh.objects[rec.OID]
	if c == nil {
		c = &chain{}
		sh.objects[rec.OID] = c
	}
	replaced := false
	for i := range c.versions {
		if c.versions[i].owner == tx {
			// Replace in place, but keep recency: move to the end so
			// the newest write wins within this owner tier.
			v := c.versions[i]
			v.rec = rec
			c.versions = append(append(c.versions[:i:i], c.versions[i+1:]...), v)
			replaced = true
			break
		}
	}
	if !replaced {
		c.versions = append(c.versions, version{owner: tx, rec: rec})
	}
	addExtent(sh, rec.Class, rec.OID)
	sh.mu.Unlock()
	// Bump after the write so a stale ModSeq read can only under-claim
	// freshness (forcing a harmless re-evaluation), never cache stale
	// data under a new sequence number.
	s.bumpSeq(rec.Class)
	s.noteDirty(tx, rec.OID)
}

func (s *Store) noteDirty(tx lock.TxnID, oid datum.OID) {
	d := s.dirtySet(tx)
	d.mu.Lock()
	d.oids[oid] = struct{}{}
	d.mu.Unlock()
}

// dirtySet returns tx's write-set entry, creating it if needed.
func (s *Store) dirtySet(tx lock.TxnID) *txnDirty {
	if v, ok := s.dirty.Load(tx); ok {
		return v.(*txnDirty)
	}
	v, _ := s.dirty.LoadOrStore(tx, &txnDirty{oids: map[datum.OID]struct{}{}})
	return v.(*txnDirty)
}

// takeDirty removes and returns tx's write set (sorted), or nil.
func (s *Store) takeDirty(tx lock.TxnID) []datum.OID {
	v, ok := s.dirty.LoadAndDelete(tx)
	if !ok {
		return nil
	}
	d := v.(*txnDirty)
	d.mu.Lock()
	oids := make([]datum.OID, 0, len(d.oids))
	for oid := range d.oids {
		oids = append(oids, oid)
	}
	d.mu.Unlock()
	sort.Slice(oids, func(i, j int) bool { return oids[i] < oids[j] })
	return oids
}

func addExtent(sh *shard, class string, oid datum.OID) {
	e := sh.extents[class]
	if e == nil {
		e = map[datum.OID]struct{}{}
		sh.extents[class] = e
	}
	e[oid] = struct{}{}
}

// Get returns the version of the object visible to tx: the newest
// version owned by tx or an ancestor, else the committed version.
// The second result is false if no visible version exists or the
// visible version is a deletion tombstone (the record is still
// returned so callers can see the tombstone's class).
func (s *Store) Get(tx lock.TxnID, oid datum.OID) (Record, bool) {
	s.nGets.Add(1)
	sh := s.shardOf(oid)
	sh.mu.RLock()
	rec, ok := s.getLocked(sh, tx, oid)
	sh.mu.RUnlock()
	return rec, ok
}

// getLocked resolves visibility inside one shard. Caller holds sh.mu.
func (s *Store) getLocked(sh *shard, tx lock.TxnID, oid datum.OID) (Record, bool) {
	c := sh.objects[oid]
	if c == nil {
		return Record{}, false
	}
	for i := len(c.versions) - 1; i >= 0; i-- {
		v := c.versions[i]
		if v.owner == committedOwner || v.owner == tx || s.topo.IsAncestorOrSelf(v.owner, tx) {
			return v.rec.clone(), !v.rec.Deleted
		}
	}
	return Record{}, false
}

// ScanClass calls fn for every live (visible, non-deleted) object of
// the class, in ascending OID order. Scanning stops if fn returns
// false. Shard locks are taken one at a time, and no lock is held
// while fn runs, so fn may re-enter the store.
func (s *Store) ScanClass(tx lock.TxnID, class string, fn func(Record) bool) {
	s.nScans.Add(1)
	var oids []datum.OID
	for _, sh := range s.shards {
		sh.mu.RLock()
		for oid := range sh.extents[class] {
			oids = append(oids, oid)
		}
		sh.mu.RUnlock()
	}
	sort.Slice(oids, func(i, j int) bool { return oids[i] < oids[j] })
	for _, oid := range oids {
		sh := s.shardOf(oid)
		sh.mu.RLock()
		rec, ok := s.getLocked(sh, tx, oid)
		sh.mu.RUnlock()
		if !ok || rec.Class != class {
			continue
		}
		if !fn(rec) {
			return
		}
	}
}

// RegisterIndex declares (and builds, from the committed tier) a
// secondary index on class.attr. Idempotent. Each shard gets its own
// tree covering the shard's slice of the extent.
func (s *Store) RegisterIndex(class, attr string) {
	s.imu.Lock()
	defer s.imu.Unlock()
	s.shards[0].mu.RLock()
	exists := s.shards[0].indexes[class][attr] != nil
	s.shards[0].mu.RUnlock()
	if exists {
		return
	}
	for _, sh := range s.shards {
		sh.mu.Lock()
		byAttr := sh.indexes[class]
		if byAttr == nil {
			byAttr = map[string]*btree.Tree{}
			sh.indexes[class] = byAttr
		}
		t := btree.New()
		byAttr[attr] = t
		for oid := range sh.extents[class] {
			c := sh.objects[oid]
			if c == nil {
				continue
			}
			for i := len(c.versions) - 1; i >= 0; i-- {
				if c.versions[i].owner == committedOwner {
					rec := c.versions[i].rec
					if !rec.Deleted {
						if v, ok := rec.Attrs[attr]; ok {
							t.Insert(v.Key(), oid)
						}
					}
					break
				}
			}
		}
		sh.mu.Unlock()
	}
}

// HasIndex reports whether class.attr has a registered index.
func (s *Store) HasIndex(class, attr string) bool {
	sh := s.shards[0]
	sh.mu.RLock()
	defer sh.mu.RUnlock()
	return sh.indexes[class][attr] != nil
}

// IndexCandidates returns OIDs that *may* satisfy lo <= attr <= hi
// for transaction tx: the committed-tier index hits plus every object
// tx (or an ancestor) has written in the class. Callers must re-check
// the predicate against the visible record; candidates may include
// false positives but never miss a visible match.
func (s *Store) IndexCandidates(tx lock.TxnID, class, attr string, lo, hi btree.Bound) []datum.OID {
	s.nProbes.Add(1)
	if !s.HasIndex(class, attr) {
		return nil
	}
	seen := map[datum.OID]struct{}{}
	var out []datum.OID
	for _, sh := range s.shards {
		sh.mu.RLock()
		if t := sh.indexes[class][attr]; t != nil {
			t.Scan(lo, hi, func(_ string, oid datum.OID) bool {
				if _, dup := seen[oid]; !dup {
					seen[oid] = struct{}{}
					out = append(out, oid)
				}
				return true
			})
		}
		sh.mu.RUnlock()
	}
	// Uncommitted writes by tx's tree are invisible to the committed
	// index; add every dirty object of this class whose writer is
	// visible to tx.
	s.dirty.Range(func(k, v any) bool {
		owner := k.(lock.TxnID)
		if owner != tx && !s.topo.IsAncestorOrSelf(owner, tx) {
			return true
		}
		d := v.(*txnDirty)
		d.mu.Lock()
		oids := make([]datum.OID, 0, len(d.oids))
		for oid := range d.oids {
			oids = append(oids, oid)
		}
		d.mu.Unlock()
		for _, oid := range oids {
			if _, dup := seen[oid]; dup {
				continue
			}
			sh := s.shardOf(oid)
			sh.mu.RLock()
			if c := sh.objects[oid]; c != nil && len(c.versions) > 0 {
				if c.versions[len(c.versions)-1].rec.Class == class {
					seen[oid] = struct{}{}
					out = append(out, oid)
				}
			}
			sh.mu.RUnlock()
		}
		return true
	})
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// ModSeq returns a counter that increases whenever the class is
// written (by any transaction). The condition evaluator uses it to
// reuse cached results when nothing relevant changed.
func (s *Store) ModSeq(class string) uint64 {
	if v, ok := s.modSeq.Load(class); ok {
		return v.(*atomic.Uint64).Load()
	}
	return 0
}

// Stats returns a snapshot of the activity counters.
func (s *Store) Stats() Stats {
	st := Stats{
		Puts:        s.nPuts.Load(),
		Gets:        s.nGets.Load(),
		Scans:       s.nScans.Load(),
		IndexProbes: s.nProbes.Load(),
		TopCommits:  s.nCommits.Load(),
		WALBytes:    s.nWALBytes.Load(),
		Shards:      len(s.shards),
	}
	st.Checkpoints = s.nCheckpoints.Load()
	st.FullCheckpoints = s.nFullCkpts.Load()
	st.DeltaCheckpoints = s.nDeltaCkpts.Load()
	st.WALBytesReclaimed = s.nWALReclaimed.Load()
	if s.log != nil {
		st.WALFsyncs = s.log.Fsyncs()
		st.WALSyncRequests = s.log.SyncRequests()
	}
	return st
}

// DirtyOIDs returns the objects tx itself has written (not
// ancestors'), sorted. The rule manager uses it for delta queries.
func (s *Store) DirtyOIDs(tx lock.TxnID) []datum.OID {
	v, ok := s.dirty.Load(tx)
	if !ok {
		return nil
	}
	d := v.(*txnDirty)
	d.mu.Lock()
	out := make([]datum.OID, 0, len(d.oids))
	for oid := range d.oids {
		out = append(out, oid)
	}
	d.mu.Unlock()
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// --- txn.Participant ---

// CommitNested folds the child's versions into the parent tier.
func (s *Store) CommitNested(child, parent lock.TxnID) error {
	for _, oid := range s.takeDirty(child) {
		sh := s.shardOf(oid)
		sh.mu.Lock()
		c := sh.objects[oid]
		if c == nil {
			sh.mu.Unlock()
			continue
		}
		// Drop the parent's own older version (the child's is newer
		// and the parent cannot roll back to it independently), then
		// re-tag the child's version as the parent's.
		kept := c.versions[:0]
		var childV *version
		for i := range c.versions {
			switch c.versions[i].owner {
			case parent:
				// superseded
			case child:
				v := c.versions[i]
				childV = &v
			default:
				kept = append(kept, c.versions[i])
			}
		}
		c.versions = kept
		if childV != nil {
			childV.owner = parent
			c.versions = append(c.versions, *childV)
		}
		sh.mu.Unlock()
		if childV != nil {
			s.noteDirty(parent, oid)
		}
	}
	return nil
}

// CommitTop makes tx's versions durable and visible to everyone. It
// runs in three phases so the disk flush never stalls the store:
//
//  1. prepare — collect the new committed states under the shard read
//     locks of tx's write set;
//  2. log — append the redo record and group-fsync it with no store
//     lock held, so concurrent committers batch into shared flushes;
//  3. install — publish the committed tier and secondary-index
//     updates shard by shard, locking only the shards the write set
//     maps to.
//
// The write-ahead invariant holds: no version installs before its log
// record is durable. Reading the prepared records outside the shard
// locks is safe because records are immutable once Put (Put clones
// its input, readers clone on the way out), tx's own versions cannot
// change while its single commit goroutine is here, and tx still
// holds its exclusive locks, so no other committer touches the same
// objects.
func (s *Store) CommitTop(tx lock.TxnID) error {
	s.nCommits.Add(1)

	// Prepare.
	oids := s.takeDirty(tx)
	recs := make([]Record, 0, len(oids))
	for _, oid := range oids {
		sh := s.shardOf(oid)
		sh.mu.RLock()
		if c := sh.objects[oid]; c != nil {
			for i := range c.versions {
				if c.versions[i].owner == tx {
					recs = append(recs, c.versions[i].rec)
					break
				}
			}
		}
		sh.mu.RUnlock()
	}

	// Log before install (write-ahead), outside the shard locks. The
	// record's LSN is registered as in-flight under cmu in the same
	// critical section as the append, so a concurrent checkpoint
	// either sees this commit installed or holds its watermark below
	// the record — never both missing (the watermark invariant).
	var lsn wal.LSN
	logged := false
	if s.log != nil && len(recs) > 0 {
		payload := encodeRedo(recs)
		s.cmu.Lock()
		var err error
		lsn, err = s.log.Append(payload)
		if err == nil {
			s.inflight[lsn] = struct{}{}
		}
		s.cmu.Unlock()
		if err != nil {
			return err
		}
		logged = true
		tm := s.obsm.Timer(obs.HCommitStall)
		if err := s.log.SyncTo(lsn + wal.LSN(8+len(payload))); err != nil {
			s.cmu.Lock()
			delete(s.inflight, lsn)
			s.cmu.Unlock()
			return err
		}
		tm.Done()
		s.nWALBytes.Add(uint64(len(payload)))
	}

	// Install, shard by shard: group the write set so each shard lock
	// is taken once. Single-record commits (the common OLTP shape)
	// skip the grouping maps entirely.
	var nShards int
	if len(recs) == 1 {
		rec := recs[0]
		sh := s.shardOf(rec.OID)
		sh.mu.Lock()
		s.installCommitted(sh, tx, rec)
		if s.dir != "" {
			// Mark for the next delta snapshot. The mark rides the
			// same critical section as the install, so a checkpoint
			// scan sees the version and the mark together or neither.
			sh.ckptDirty[rec.OID] = rec.Class
		}
		sh.installs.Add(1)
		sh.mu.Unlock()
		s.bumpSeq(rec.Class)
		nShards = 1
	} else if len(recs) > 0 {
		groups := map[*shard][]Record{}
		for _, rec := range recs {
			sh := s.shardOf(rec.OID)
			groups[sh] = append(groups[sh], rec)
		}
		classes := map[string]struct{}{}
		for sh, group := range groups {
			sh.mu.Lock()
			for _, rec := range group {
				s.installCommitted(sh, tx, rec)
				if s.dir != "" {
					sh.ckptDirty[rec.OID] = rec.Class
				}
				classes[rec.Class] = struct{}{}
			}
			sh.installs.Add(uint64(len(group)))
			sh.mu.Unlock()
		}
		for class := range classes {
			s.bumpSeq(class)
		}
		nShards = len(groups)
	}
	s.obsm.ObserveN(obs.HCommitShards, uint64(nShards))
	if logged {
		// Deregister only after every shard's install: a checkpoint
		// scan that missed these versions must still see the LSN in
		// flight.
		s.cmu.Lock()
		delete(s.inflight, lsn)
		s.cmu.Unlock()
		s.maybeKickCheckpoint()
	}
	return nil
}

// maybeKickCheckpoint starts a background checkpoint when the WAL has
// grown past the configured byte threshold since the last one. At most
// one background checkpoint runs at a time, and none may start once
// Close has begun.
func (s *Store) maybeKickCheckpoint() {
	if s.ckptAfterBytes == 0 || s.log == nil {
		return
	}
	if uint64(s.log.End())-s.lastCkptEnd.Load() < s.ckptAfterBytes {
		return
	}
	s.bgMu.Lock()
	if s.closing || s.bgRunning {
		s.bgMu.Unlock()
		return
	}
	s.bgRunning = true
	s.bgWG.Add(1)
	s.bgMu.Unlock()
	go func() {
		defer s.bgWG.Done()
		_, err := s.Checkpoint()
		s.bgMu.Lock()
		s.bgRunning = false
		s.bgMu.Unlock()
		if err != nil && s.onAsyncErr != nil {
			s.onAsyncErr(fmt.Errorf("storage: size-triggered checkpoint: %w", err))
		}
	}()
}

// installCommitted replaces the committed version of rec's object
// (dropping owner's uncommitted copy, which is what is being
// committed) and maintains the shard's extents and indexes. During
// recovery the owner is committedOwner, meaning there is no
// uncommitted copy to drop. Caller holds sh.mu exclusively; sh is
// rec.OID's shard. The class modification counter is bumped by the
// caller (after its shard section) — see Put for the ordering
// argument.
func (s *Store) installCommitted(sh *shard, owner lock.TxnID, rec Record) {
	c := sh.objects[rec.OID]
	if c == nil {
		c = &chain{}
		sh.objects[rec.OID] = c
	}
	kept := c.versions[:0]
	var old *Record
	for i := range c.versions {
		v := c.versions[i]
		if v.owner == committedOwner {
			r := v.rec
			old = &r
			continue
		}
		if v.owner == owner {
			continue // the copy being committed
		}
		kept = append(kept, v)
	}
	c.versions = kept
	if old != nil {
		indexRemove(sh, *old)
	}
	if rec.Deleted {
		// Tombstone: no committed version is re-installed. Remove the
		// object entirely if no uncommitted versions remain.
		if len(c.versions) == 0 {
			delete(sh.objects, rec.OID)
			if e := sh.extents[rec.Class]; e != nil {
				delete(e, rec.OID)
			}
		}
		return
	}
	c.versions = append([]version{{owner: committedOwner, rec: rec}}, c.versions...)
	indexInsert(sh, rec)
	addExtent(sh, rec.Class, rec.OID)
}

// AbortTxn discards tx's versions.
func (s *Store) AbortTxn(tx lock.TxnID) {
	classes := map[string]struct{}{}
	for _, oid := range s.takeDirty(tx) {
		sh := s.shardOf(oid)
		sh.mu.Lock()
		c := sh.objects[oid]
		if c == nil {
			sh.mu.Unlock()
			continue
		}
		kept := c.versions[:0]
		var class string
		for i := range c.versions {
			if c.versions[i].owner == tx {
				class = c.versions[i].rec.Class
				continue
			}
			kept = append(kept, c.versions[i])
		}
		c.versions = kept
		if len(c.versions) == 0 {
			delete(sh.objects, oid)
			if class != "" {
				if e := sh.extents[class]; e != nil {
					delete(e, oid)
				}
			}
		}
		sh.mu.Unlock()
		if class != "" {
			classes[class] = struct{}{}
		}
	}
	for class := range classes {
		s.bumpSeq(class)
	}
}

func indexInsert(sh *shard, rec Record) {
	for attr, t := range sh.indexes[rec.Class] {
		if v, ok := rec.Attrs[attr]; ok {
			t.Insert(v.Key(), rec.OID)
		}
	}
}

func indexRemove(sh *shard, rec Record) {
	for attr, t := range sh.indexes[rec.Class] {
		if v, ok := rec.Attrs[attr]; ok {
			t.Delete(v.Key(), rec.OID)
		}
	}
}

// --- redo log records and snapshot ---

func encodeRedo(recs []Record) []byte {
	buf := binary.AppendUvarint(nil, uint64(len(recs)))
	for _, r := range recs {
		buf = binary.AppendUvarint(buf, uint64(r.OID))
		buf = binary.AppendUvarint(buf, uint64(len(r.Class)))
		buf = append(buf, r.Class...)
		if r.Deleted {
			buf = append(buf, 1)
		} else {
			buf = append(buf, 0)
		}
		buf = datum.EncodeMap(buf, r.Attrs)
	}
	return buf
}

func decodeRedo(payload []byte) ([]Record, error) {
	cnt, n := binary.Uvarint(payload)
	// Each record takes several bytes, so a count beyond the remaining
	// input is corrupt — reject before allocating.
	if n <= 0 || cnt > uint64(len(payload)-n) {
		return nil, errors.New("storage: bad redo header")
	}
	recs := make([]Record, 0, cnt)
	for i := uint64(0); i < cnt; i++ {
		oid, m := binary.Uvarint(payload[n:])
		if m <= 0 {
			return nil, errors.New("storage: bad redo oid")
		}
		n += m
		clen, m := binary.Uvarint(payload[n:])
		// Compare in uint64 so a huge length cannot wrap int and slip
		// past the bounds check; >= keeps one byte for the tombstone
		// flag.
		if m <= 0 || clen >= uint64(len(payload)-n-m) {
			return nil, errors.New("storage: bad redo class")
		}
		n += m
		class := string(payload[n : n+int(clen)])
		n += int(clen)
		deleted := payload[n] == 1
		n++
		attrs, m, err := datum.DecodeMap(payload[n:])
		if err != nil {
			return nil, fmt.Errorf("storage: redo attrs: %w", err)
		}
		n += m
		recs = append(recs, Record{OID: datum.OID(oid), Class: class, Attrs: attrs, Deleted: deleted})
	}
	return recs, nil
}

// applyRedo applies one WAL record during recovery.
func (s *Store) applyRedo(payload []byte) error {
	recs, err := decodeRedo(payload)
	if err != nil {
		return err
	}
	for _, rec := range recs {
		s.raiseNextOID(rec.OID)
		sh := s.shardOf(rec.OID)
		sh.mu.Lock()
		s.installCommitted(sh, committedOwner, rec)
		// Replayed records are newer than the on-disk chain (their
		// LSNs are at or above its watermark), so the next delta must
		// carry them.
		sh.ckptDirty[rec.OID] = rec.Class
		sh.mu.Unlock()
		s.bumpSeq(rec.Class)
	}
	return nil
}

// CheckpointResult describes one completed checkpoint.
type CheckpointResult struct {
	// Kind is "full" (whole committed tier, chain compacted) or
	// "delta" (only the OIDs dirtied since the last checkpoint).
	Kind string `json:"kind"`
	// Records is the number of records written to the chain element.
	Records int `json:"records"`
	// Reclaimed is the number of WAL bytes truncated away.
	Reclaimed uint64 `json:"reclaimed"`
}

// Checkpoint performs one fuzzy (non-quiescent) checkpoint. It is
// incremental and demand-driven: when a full snapshot already exists
// and compaction is not yet due, it writes a *delta* snapshot holding
// only the records committed since the last checkpoint — O(dirty),
// not O(store) — chained to its parent by the parent's watermark LSN
// and CRC. When compaction is due (adaptive byte threshold or the
// fixed CompactEvery cadence — see compactDueLocked — or on the first
// checkpoint of a directory, or via Compact) it rewrites a full
// snapshot and drops the chain. Either way it then truncates the WAL
// prefix the chain covers.
//
// Commits proceed concurrently: the capture iterates the shards one at
// a time (read locks for a full scan, a brief exclusive lock per shard
// to cut its delta dirty set), never stopping the world, and the WAL
// keeps accepting appends except during the (short) suffix copy inside
// TruncateBefore.
//
// The watermark invariant makes this safe: every committed record is
// either in the chain or at LSN >= watermark. The watermark is the
// smallest in-flight LSN (appended but not yet installed), or the log
// end if none. A commit whose LSN is below the watermark had been
// deregistered — which happens only after every shard's install — by
// the time the watermark was read under cmu, so every shard scan that
// follows sees its versions; a commit at or above the watermark
// survives TruncateBefore(watermark) and is replayed over the chain on
// recovery, even if the shard-by-shard capture saw only part of it.
func (s *Store) Checkpoint() (CheckpointResult, error) {
	return s.checkpoint(false)
}

// Compact forces the next checkpoint to be full: it rewrites the
// whole committed tier as a fresh snapshot and drops the delta chain.
func (s *Store) Compact() (CheckpointResult, error) {
	return s.checkpoint(true)
}

// compactDueLocked reports whether the next checkpoint must rewrite a
// full snapshot instead of extending the chain. Fixed-K mode
// (CompactEvery > 0) counts chain elements; adaptive mode (the
// default) compacts once the cumulative delta bytes reach
// 1/compactFraction of the full snapshot's size, so a chain never
// costs recovery more than a bounded multiple of a fresh snapshot
// read. Caller holds ckptMu.
func (s *Store) compactDueLocked() bool {
	if s.compactEvery > 0 {
		return s.deltaSeq >= s.compactEvery
	}
	return s.deltaBytes*compactFraction >= s.fullBytes
}

func (s *Store) checkpoint(forceFull bool) (CheckpointResult, error) {
	if s.dir == "" {
		return CheckpointResult{}, nil
	}
	s.ckptMu.Lock()
	defer s.ckptMu.Unlock()
	tm := s.obsm.Timer(obs.HCheckpoint)

	full := forceFull || !s.haveFull || s.compactDueLocked()

	var watermark wal.LSN
	if s.log != nil {
		watermark = s.log.End()
		s.cmu.Lock()
		for lsn := range s.inflight {
			if lsn < watermark {
				watermark = lsn
			}
		}
		s.cmu.Unlock()
	}
	// Capture shard by shard. For a delta, each shard's dirty set is
	// stolen and its records resolved inside one exclusive section, so
	// a concurrent install either lands wholly before the cut (version
	// and mark captured) or wholly after (mark lands in the fresh set,
	// record at LSN >= watermark). On any failure below the stolen
	// sets are merged back — losing a mark would silently drop its
	// record from every future delta.
	var recs []Record
	var taken []map[datum.OID]string
	if full {
		for _, sh := range s.shards {
			sh.mu.Lock()
			for _, c := range sh.objects {
				for i := range c.versions {
					if c.versions[i].owner == committedOwner {
						recs = append(recs, c.versions[i].rec)
						break
					}
				}
			}
			taken = append(taken, sh.ckptDirty)
			sh.ckptDirty = make(map[datum.OID]string, 8)
			sh.mu.Unlock()
		}
	} else {
		for _, sh := range s.shards {
			sh.mu.Lock()
			for oid, class := range sh.ckptDirty {
				if rec, ok := committedInShard(sh, oid); ok {
					recs = append(recs, rec)
				} else {
					// Deleted since the last checkpoint: the delta must
					// carry the tombstone or recovery would resurrect
					// the object from an older chain element.
					recs = append(recs, Record{OID: oid, Class: class, Deleted: true})
				}
			}
			taken = append(taken, sh.ckptDirty)
			sh.ckptDirty = make(map[datum.OID]string, 8)
			sh.mu.Unlock()
		}
	}
	// An empty delta at an unmoved watermark would extend the chain
	// with nothing; skip the file but still attempt the truncate (a
	// prior crash between rename and truncate leaves covered prefix
	// to reclaim).
	writeFile := full || len(recs) > 0 || watermark != s.chainWatermark
	// Safe to read after the scans: any captured record's OID was
	// allocated before its commit installed, and recovery raises the
	// allocator past every replayed record anyway.
	nextOID := datum.OID(s.nextOID.Load())
	sort.Slice(recs, func(i, j int) bool { return recs[i].OID < recs[j].OID })

	restoreDirty := func() {
		for i, sh := range s.shards {
			sh.mu.Lock()
			for oid, class := range taken[i] {
				if _, ok := sh.ckptDirty[oid]; !ok {
					sh.ckptDirty[oid] = class
				}
			}
			sh.mu.Unlock()
		}
	}

	res := CheckpointResult{Kind: "delta", Records: len(recs)}
	if full {
		res.Kind = "full"
	}
	if writeFile {
		sn := &snapshot{watermark: watermark, nextOID: nextOID, recs: recs}
		if full {
			sn.kind = snapKindFull
			nbytes, err := s.writeSnapshotFile(sn, fullSnapshotName, fullSnapshotName+".tmp",
				"storage.midSnapshot", "storage.afterRename")
			if err != nil {
				restoreDirty()
				return res, err
			}
			s.fullBytes = uint64(nbytes)
			s.deltaBytes = 0
			// Compaction: the full snapshot subsumes the chain, so the
			// delta files are dead weight. Stale elements surviving a
			// crash here (or a failed remove) are harmless — their
			// parent link no longer matches the new snapshot, so
			// recovery ignores them, and future deltas overwrite them
			// by rename as the sequence numbers restart.
			failpoint.Hit("storage.midCompaction")
			if names, _, err := deltaFiles(s.dir); err == nil {
				for _, name := range names {
					os.Remove(filepath.Join(s.dir, name))
				}
			}
			s.haveFull = true
			s.deltaSeq = 0
			s.nFullCkpts.Add(1)
		} else {
			sn.kind = snapKindDelta
			sn.parentWatermark = s.chainWatermark
			sn.parentCRC = s.chainCRC
			nbytes, err := s.writeSnapshotFile(sn, deltaName(s.deltaSeq+1), "delta.tmp",
				"storage.midDelta", "storage.afterDeltaRename")
			if err != nil {
				restoreDirty()
				return res, err
			}
			s.deltaBytes += uint64(nbytes)
			s.deltaSeq++
			s.nDeltaCkpts.Add(1)
			s.obsm.ObserveN(obs.HDeltaRecords, uint64(len(recs)))
		}
		s.chainWatermark, s.chainCRC = watermark, sn.crc
	}

	failpoint.Hit("storage.beforeTruncate")
	if s.log != nil {
		// Only after the chain element is durably in place may the
		// covered prefix be dropped; crashing before this line
		// recovers from the extended chain plus the untruncated log.
		reclaimed, err := s.log.TruncateBefore(watermark)
		if err != nil {
			return res, err
		}
		res.Reclaimed = reclaimed
		s.lastCkptEnd.Store(uint64(s.log.End()))
	}
	if writeFile || res.Reclaimed > 0 {
		s.nCheckpoints.Add(1)
		s.nWALReclaimed.Add(res.Reclaimed)
		s.obsm.ObserveN(obs.HWALReclaimed, res.Reclaimed)
	}
	tm.Done()
	return res, nil
}

// committedInShard returns oid's committed version. Caller holds
// sh.mu (read or write); sh is oid's shard.
func committedInShard(sh *shard, oid datum.OID) (Record, bool) {
	c := sh.objects[oid]
	if c == nil {
		return Record{}, false
	}
	for i := range c.versions {
		if c.versions[i].owner == committedOwner {
			return c.versions[i].rec, true
		}
	}
	return Record{}, false
}

// syncDir fsyncs a directory so a just-renamed entry survives a crash.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return fmt.Errorf("storage: open dir: %w", err)
	}
	defer d.Sync()
	if err := d.Sync(); err != nil {
		return fmt.Errorf("storage: sync dir: %w", err)
	}
	return nil
}
