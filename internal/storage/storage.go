// Package storage implements the versioned object heap beneath the
// Object Manager. Each object carries a chain of versions tagged by
// the transaction that wrote them; a reader sees its own newest
// version, else the newest version of an ancestor, else the last
// committed version. Folding a child's versions into its parent at
// nested commit gives the nested-transaction atomicity of §3.1 of the
// paper without copying objects up front.
//
// The store is also the durability point: top-level commits append a
// redo record to the write-ahead log before the committed tier is
// updated, and Open replays the log (over an optional checkpoint
// snapshot) to recover. Only committed top-level effects are ever
// logged, so recovery is a pure redo pass.
//
// The store performs no locking of its own beyond an internal mutex;
// isolation comes from the lock manager driven by the layers above.
package storage

import (
	"encoding/binary"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/btree"
	"repro/internal/datum"
	"repro/internal/failpoint"
	"repro/internal/lock"
	"repro/internal/obs"
	"repro/internal/wal"
)

// committedOwner tags versions in the committed tier.
const committedOwner lock.TxnID = 0

// Record is one object state: its identity, class, attribute values,
// and whether this version is a deletion tombstone.
type Record struct {
	OID     datum.OID
	Class   string
	Attrs   map[string]datum.Value
	Deleted bool
}

// clone returns a deep-enough copy (Values are immutable).
func (r Record) clone() Record {
	r.Attrs = datum.CloneMap(r.Attrs)
	return r
}

// Topology resolves transaction ancestry for visibility; the
// transaction manager implements it.
type Topology interface {
	IsAncestorOrSelf(anc, desc lock.TxnID) bool
}

type version struct {
	owner lock.TxnID
	rec   Record
}

type chain struct {
	versions []version // oldest first; at most one per owner
}

// DefaultCompactEvery is the delta-chain length bound when Options
// leaves CompactEvery zero: after this many delta checkpoints the next
// checkpoint rewrites a full snapshot and drops the chain.
const DefaultCompactEvery = 8

// Options configures a Store.
type Options struct {
	// Dir is the durability directory (snapshot chain + WAL). Empty
	// means ephemeral: no logging, no recovery.
	Dir string
	// NoSync disables fsync on the WAL.
	NoSync bool
	// GroupWindow widens WAL group-commit batches: a flush leader
	// dwells this long before snapshotting the batch. 0 flushes
	// immediately (batching still happens whenever commits overlap).
	GroupWindow time.Duration
	// CheckpointAfterBytes, when >0, kicks a background checkpoint
	// whenever the WAL has grown by at least this many bytes since the
	// last checkpoint finished. The check runs after each commit's
	// group flush; the checkpoint itself runs on its own goroutine so
	// the triggering commit is never stalled.
	CheckpointAfterBytes uint64
	// CompactEvery bounds the delta chain: after this many delta
	// checkpoints, the next Checkpoint writes a full snapshot and
	// drops the chain. 0 means DefaultCompactEvery.
	CompactEvery int
	// OnAsyncError receives errors from background (size-triggered)
	// checkpoints. nil discards them.
	OnAsyncError func(error)
	// Obs, when non-nil, receives WAL fsync latencies, group-commit
	// batch sizes, and commit-stall latencies.
	Obs *obs.Metrics
}

// Store is the versioned heap.
type Store struct {
	mu      sync.RWMutex
	topo    Topology
	objects map[datum.OID]*chain
	extents map[string]map[datum.OID]struct{} // class -> OIDs with any version
	indexes map[string]map[string]*btree.Tree // class -> attr -> committed-tier index
	dirty   map[lock.TxnID]map[datum.OID]struct{}
	nextOID datum.OID
	modSeq  map[string]uint64 // class -> bumped on every write; used for incremental condition eval
	log     *wal.Log
	dir     string
	noSync  bool
	obsm    *obs.Metrics // nil-safe commit-stall observer

	// inflight holds the LSNs of redo records that have been appended
	// to the WAL but whose versions are not yet installed in the
	// committed tier. The fuzzy checkpointer's watermark is the
	// smallest in-flight LSN (or the log end if none): every record
	// below it is guaranteed to be in the snapshot scan. Guarded by
	// cmu; lock order is s.mu before cmu.
	cmu      sync.Mutex
	inflight map[wal.LSN]struct{}

	// ckptMu serializes checkpoints (they are rare; overlapping ones
	// would race on snapshot.tmp and the chain-link state below, which
	// it also guards).
	ckptMu sync.Mutex
	// ckptDirty maps each OID committed since the last checkpoint to
	// the class of its newest committed write — the record set of the
	// next delta snapshot. Written in CommitTop's install phase and in
	// applyRedo (replayed records are newer than the on-disk chain)
	// under s.mu; read and reset by the checkpointer.
	ckptDirty map[datum.OID]string
	// Chain-link state for the next checkpoint, guarded by ckptMu:
	// the tip element's watermark and trailing CRC, whether a full
	// snapshot exists (a delta needs a parent), and the sequence
	// number of the newest chain element (reset by compaction).
	chainWatermark wal.LSN
	chainCRC       uint32
	haveFull       bool
	deltaSeq       int
	compactEvery   int

	// Size-trigger state: lastCkptEnd is the log end when the last
	// checkpoint finished (growth beyond ckptAfterBytes kicks a
	// background checkpoint). bgMu orders kicks against Close so the
	// WaitGroup is never Added after Close begins waiting.
	ckptAfterBytes uint64
	lastCkptEnd    atomic.Uint64
	onAsyncErr     func(error)
	bgMu           sync.Mutex
	bgRunning      bool
	closing        bool
	bgWG           sync.WaitGroup

	// Counters are atomic: reads (Get/Scan) bump them while holding
	// only the read lock.
	nPuts, nGets, nScans, nProbes, nCommits, nWALBytes atomic.Uint64
	nCheckpoints, nFullCkpts, nDeltaCkpts              atomic.Uint64
	nWALReclaimed                                      atomic.Uint64
}

// Stats counts store activity.
type Stats struct {
	Puts        uint64
	Gets        uint64
	Scans       uint64
	IndexProbes uint64
	TopCommits  uint64
	WALBytes    uint64
	// WALFsyncs counts physical fsyncs; WALSyncRequests counts commits
	// that asked for durability. Fsyncs/requests < 1 means group
	// commit is batching concurrent committers into shared flushes.
	WALFsyncs       uint64
	WALSyncRequests uint64
	// Checkpoints counts completed fuzzy checkpoints;
	// FullCheckpoints/DeltaCheckpoints split them by kind (a full
	// checkpoint rewrites the whole committed tier and compacts the
	// delta chain; a delta writes only the OIDs dirtied since the last
	// checkpoint). WALBytesReclaimed totals the log bytes truncated.
	Checkpoints       uint64
	FullCheckpoints   uint64
	DeltaCheckpoints  uint64
	WALBytesReclaimed uint64
}

// Open creates a store. If opts.Dir is non-empty the store loads the
// snapshot chain (full snapshot plus deltas, if present), replays the
// WAL, and will log all future top-level commits there.
func Open(topo Topology, opts Options) (*Store, error) {
	compactEvery := opts.CompactEvery
	if compactEvery <= 0 {
		compactEvery = DefaultCompactEvery
	}
	s := &Store{
		topo:           topo,
		objects:        map[datum.OID]*chain{},
		extents:        map[string]map[datum.OID]struct{}{},
		indexes:        map[string]map[string]*btree.Tree{},
		dirty:          map[lock.TxnID]map[datum.OID]struct{}{},
		modSeq:         map[string]uint64{},
		inflight:       map[wal.LSN]struct{}{},
		ckptDirty:      map[datum.OID]string{},
		compactEvery:   compactEvery,
		ckptAfterBytes: opts.CheckpointAfterBytes,
		onAsyncErr:     opts.OnAsyncError,
		nextOID:        1,
		dir:            opts.Dir,
		noSync:         opts.NoSync,
		obsm:           opts.Obs,
	}
	if opts.Dir == "" {
		return s, nil
	}
	if err := os.MkdirAll(opts.Dir, 0o755); err != nil {
		return nil, fmt.Errorf("storage: mkdir %s: %w", opts.Dir, err)
	}
	watermark, err := s.loadChain()
	if err != nil {
		return nil, err
	}
	l, err := wal.Open(filepath.Join(opts.Dir, "wal"),
		wal.Options{NoSync: opts.NoSync, GroupWindow: opts.GroupWindow, Obs: opts.Obs})
	if err != nil {
		return nil, err
	}
	s.log = l
	// The checkpointer renames the snapshot before truncating the log,
	// so on any crash the snapshot covers at least everything the log
	// has dropped. A base past the watermark means records are gone
	// from both places — refuse to open rather than lose data silently.
	if base := l.Base(); base > watermark {
		l.Close()
		return nil, fmt.Errorf("storage: recovery: wal base %d beyond snapshot watermark %d", base, watermark)
	}
	if err := l.Replay(func(lsn wal.LSN, payload []byte) error {
		if lsn < watermark {
			// Already folded into the snapshot (watermark invariant);
			// the record survives in the log only because truncation
			// runs after the snapshot rename.
			return nil
		}
		return s.applyRedo(payload)
	}); err != nil {
		l.Close()
		return nil, fmt.Errorf("storage: recovery: %w", err)
	}
	// Seed the size trigger at the chain watermark, not the log end:
	// a WAL suffix surviving from before the crash counts as growth,
	// so an over-threshold backlog checkpoints on the first commit.
	s.lastCkptEnd.Store(uint64(watermark))
	return s, nil
}

// Close waits out any background (size-triggered) checkpoint, then
// closes the WAL, if any.
func (s *Store) Close() error {
	s.bgMu.Lock()
	s.closing = true
	s.bgMu.Unlock()
	s.bgWG.Wait()
	if s.log != nil {
		return s.log.Close()
	}
	return nil
}

// AllocOID returns a fresh, never-reused object identifier.
func (s *Store) AllocOID() datum.OID {
	s.mu.Lock()
	defer s.mu.Unlock()
	oid := s.nextOID
	s.nextOID++
	return oid
}

// Put installs rec as tx's version of the object, replacing any prior
// version tx wrote. The caller must already hold the appropriate
// exclusive lock.
func (s *Store) Put(tx lock.TxnID, rec Record) {
	rec = rec.clone()
	s.mu.Lock()
	defer s.mu.Unlock()
	s.nPuts.Add(1)
	s.modSeq[rec.Class]++
	c := s.objects[rec.OID]
	if c == nil {
		c = &chain{}
		s.objects[rec.OID] = c
	}
	for i := range c.versions {
		if c.versions[i].owner == tx {
			// Replace in place, but keep recency: move to the end so
			// the newest write wins within this owner tier.
			v := c.versions[i]
			v.rec = rec
			c.versions = append(append(c.versions[:i:i], c.versions[i+1:]...), v)
			s.noteDirty(tx, rec.OID)
			s.addExtent(rec.Class, rec.OID)
			return
		}
	}
	c.versions = append(c.versions, version{owner: tx, rec: rec})
	s.noteDirty(tx, rec.OID)
	s.addExtent(rec.Class, rec.OID)
}

func (s *Store) noteDirty(tx lock.TxnID, oid datum.OID) {
	d := s.dirty[tx]
	if d == nil {
		d = map[datum.OID]struct{}{}
		s.dirty[tx] = d
	}
	d[oid] = struct{}{}
}

func (s *Store) addExtent(class string, oid datum.OID) {
	e := s.extents[class]
	if e == nil {
		e = map[datum.OID]struct{}{}
		s.extents[class] = e
	}
	e[oid] = struct{}{}
}

// Get returns the version of the object visible to tx: the newest
// version owned by tx or an ancestor, else the committed version.
// The second result is false if no visible version exists or the
// visible version is a deletion tombstone (the record is still
// returned so callers can see the tombstone's class).
func (s *Store) Get(tx lock.TxnID, oid datum.OID) (Record, bool) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	s.nGets.Add(1)
	return s.getLocked(tx, oid)
}

func (s *Store) getLocked(tx lock.TxnID, oid datum.OID) (Record, bool) {
	c := s.objects[oid]
	if c == nil {
		return Record{}, false
	}
	for i := len(c.versions) - 1; i >= 0; i-- {
		v := c.versions[i]
		if v.owner == committedOwner || v.owner == tx || s.topo.IsAncestorOrSelf(v.owner, tx) {
			return v.rec.clone(), !v.rec.Deleted
		}
	}
	return Record{}, false
}

// ScanClass calls fn for every live (visible, non-deleted) object of
// the class, in ascending OID order. Scanning stops if fn returns
// false.
func (s *Store) ScanClass(tx lock.TxnID, class string, fn func(Record) bool) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	s.nScans.Add(1)
	e := s.extents[class]
	if e == nil {
		return
	}
	oids := make([]datum.OID, 0, len(e))
	for oid := range e {
		oids = append(oids, oid)
	}
	sort.Slice(oids, func(i, j int) bool { return oids[i] < oids[j] })
	for _, oid := range oids {
		rec, ok := s.getLocked(tx, oid)
		if !ok || rec.Class != class {
			continue
		}
		if !fn(rec) {
			return
		}
	}
}

// RegisterIndex declares (and builds, from the committed tier) a
// secondary index on class.attr. Idempotent.
func (s *Store) RegisterIndex(class, attr string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	byAttr := s.indexes[class]
	if byAttr == nil {
		byAttr = map[string]*btree.Tree{}
		s.indexes[class] = byAttr
	}
	if byAttr[attr] != nil {
		return
	}
	t := btree.New()
	byAttr[attr] = t
	for oid := range s.extents[class] {
		c := s.objects[oid]
		if c == nil {
			continue
		}
		for i := len(c.versions) - 1; i >= 0; i-- {
			if c.versions[i].owner == committedOwner {
				rec := c.versions[i].rec
				if !rec.Deleted {
					if v, ok := rec.Attrs[attr]; ok {
						t.Insert(v.Key(), oid)
					}
				}
				break
			}
		}
	}
}

// HasIndex reports whether class.attr has a registered index.
func (s *Store) HasIndex(class, attr string) bool {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.indexes[class][attr] != nil
}

// IndexCandidates returns OIDs that *may* satisfy lo <= attr <= hi
// for transaction tx: the committed-tier index hits plus every object
// tx (or an ancestor) has written in the class. Callers must re-check
// the predicate against the visible record; candidates may include
// false positives but never miss a visible match.
func (s *Store) IndexCandidates(tx lock.TxnID, class, attr string, lo, hi btree.Bound) []datum.OID {
	s.mu.RLock()
	defer s.mu.RUnlock()
	s.nProbes.Add(1)
	t := s.indexes[class][attr]
	if t == nil {
		return nil
	}
	seen := map[datum.OID]struct{}{}
	var out []datum.OID
	t.Scan(lo, hi, func(_ string, oid datum.OID) bool {
		if _, dup := seen[oid]; !dup {
			seen[oid] = struct{}{}
			out = append(out, oid)
		}
		return true
	})
	// Uncommitted writes by tx's tree are invisible to the committed
	// index; add every dirty object of this class whose writer is
	// visible to tx.
	for owner, objs := range s.dirty {
		if owner != tx && !s.topo.IsAncestorOrSelf(owner, tx) {
			continue
		}
		for oid := range objs {
			if _, dup := seen[oid]; dup {
				continue
			}
			if c := s.objects[oid]; c != nil && len(c.versions) > 0 {
				if c.versions[len(c.versions)-1].rec.Class == class {
					seen[oid] = struct{}{}
					out = append(out, oid)
				}
			}
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// ModSeq returns a counter that increases whenever the class is
// written (by any transaction). The condition evaluator uses it to
// reuse cached results when nothing relevant changed.
func (s *Store) ModSeq(class string) uint64 {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.modSeq[class]
}

// Stats returns a snapshot of the activity counters.
func (s *Store) Stats() Stats {
	st := Stats{
		Puts:        s.nPuts.Load(),
		Gets:        s.nGets.Load(),
		Scans:       s.nScans.Load(),
		IndexProbes: s.nProbes.Load(),
		TopCommits:  s.nCommits.Load(),
		WALBytes:    s.nWALBytes.Load(),
	}
	st.Checkpoints = s.nCheckpoints.Load()
	st.FullCheckpoints = s.nFullCkpts.Load()
	st.DeltaCheckpoints = s.nDeltaCkpts.Load()
	st.WALBytesReclaimed = s.nWALReclaimed.Load()
	if s.log != nil {
		st.WALFsyncs = s.log.Fsyncs()
		st.WALSyncRequests = s.log.SyncRequests()
	}
	return st
}

// DirtyOIDs returns the objects tx itself has written (not
// ancestors'), sorted. The rule manager uses it for delta queries.
func (s *Store) DirtyOIDs(tx lock.TxnID) []datum.OID {
	s.mu.RLock()
	defer s.mu.RUnlock()
	out := make([]datum.OID, 0, len(s.dirty[tx]))
	for oid := range s.dirty[tx] {
		out = append(out, oid)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// --- txn.Participant ---

// CommitNested folds the child's versions into the parent tier.
func (s *Store) CommitNested(child, parent lock.TxnID) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	for oid := range s.dirty[child] {
		c := s.objects[oid]
		if c == nil {
			continue
		}
		// Drop the parent's own older version (the child's is newer
		// and the parent cannot roll back to it independently), then
		// re-tag the child's version as the parent's.
		kept := c.versions[:0]
		var childV *version
		for i := range c.versions {
			switch c.versions[i].owner {
			case parent:
				// superseded
			case child:
				v := c.versions[i]
				childV = &v
			default:
				kept = append(kept, c.versions[i])
			}
		}
		c.versions = kept
		if childV != nil {
			childV.owner = parent
			c.versions = append(c.versions, *childV)
			s.noteDirty(parent, oid)
		}
	}
	delete(s.dirty, child)
	return nil
}

// CommitTop makes tx's versions durable and visible to everyone. It
// runs in three phases so the disk flush never stalls the store:
//
//  1. prepare — collect the new committed states under s.mu;
//  2. log — append the redo record and group-fsync it with no store
//     lock held, so concurrent committers batch into shared flushes;
//  3. install — reacquire s.mu and publish the committed tier and
//     secondary-index updates.
//
// The write-ahead invariant holds: no version installs before its log
// record is durable. Reading the prepared records outside s.mu is
// safe because records are immutable once Put (Put clones its input,
// readers clone on the way out), tx's own versions cannot change
// while its single commit goroutine is here, and tx still holds its
// exclusive locks, so no other committer touches the same objects.
func (s *Store) CommitTop(tx lock.TxnID) error {
	s.nCommits.Add(1)

	// Prepare.
	s.mu.Lock()
	oids := make([]datum.OID, 0, len(s.dirty[tx]))
	for oid := range s.dirty[tx] {
		oids = append(oids, oid)
	}
	sort.Slice(oids, func(i, j int) bool { return oids[i] < oids[j] })
	recs := make([]Record, 0, len(oids))
	for _, oid := range oids {
		c := s.objects[oid]
		if c == nil {
			continue
		}
		for i := range c.versions {
			if c.versions[i].owner == tx {
				recs = append(recs, c.versions[i].rec)
				break
			}
		}
	}
	s.mu.Unlock()

	// Log before install (write-ahead), outside s.mu. The record's LSN
	// is registered as in-flight under cmu in the same critical
	// section as the append, so a concurrent checkpoint either sees
	// this commit installed or holds its watermark below the record —
	// never both missing (the watermark invariant).
	var lsn wal.LSN
	logged := false
	if s.log != nil && len(recs) > 0 {
		payload := encodeRedo(recs)
		s.cmu.Lock()
		var err error
		lsn, err = s.log.Append(payload)
		if err == nil {
			s.inflight[lsn] = struct{}{}
		}
		s.cmu.Unlock()
		if err != nil {
			return err
		}
		logged = true
		tm := s.obsm.Timer(obs.HCommitStall)
		if err := s.log.SyncTo(lsn + wal.LSN(8+len(payload))); err != nil {
			s.cmu.Lock()
			delete(s.inflight, lsn)
			s.cmu.Unlock()
			return err
		}
		tm.Done()
		s.nWALBytes.Add(uint64(len(payload)))
	}

	// Install.
	s.mu.Lock()
	for _, rec := range recs {
		s.installCommitted(tx, rec)
		if s.dir != "" {
			// Mark for the next delta snapshot. The mark rides the
			// same critical section as the install, so a checkpoint
			// scan sees the version and the mark together or neither.
			s.ckptDirty[rec.OID] = rec.Class
		}
	}
	delete(s.dirty, tx)
	if logged {
		// Deregister only after the install: a checkpoint scan that
		// missed these versions must still see the LSN in flight.
		s.cmu.Lock()
		delete(s.inflight, lsn)
		s.cmu.Unlock()
	}
	s.mu.Unlock()
	if logged {
		s.maybeKickCheckpoint()
	}
	return nil
}

// maybeKickCheckpoint starts a background checkpoint when the WAL has
// grown past the configured byte threshold since the last one. At most
// one background checkpoint runs at a time, and none may start once
// Close has begun.
func (s *Store) maybeKickCheckpoint() {
	if s.ckptAfterBytes == 0 || s.log == nil {
		return
	}
	if uint64(s.log.End())-s.lastCkptEnd.Load() < s.ckptAfterBytes {
		return
	}
	s.bgMu.Lock()
	if s.closing || s.bgRunning {
		s.bgMu.Unlock()
		return
	}
	s.bgRunning = true
	s.bgWG.Add(1)
	s.bgMu.Unlock()
	go func() {
		defer s.bgWG.Done()
		_, err := s.Checkpoint()
		s.bgMu.Lock()
		s.bgRunning = false
		s.bgMu.Unlock()
		if err != nil && s.onAsyncErr != nil {
			s.onAsyncErr(fmt.Errorf("storage: size-triggered checkpoint: %w", err))
		}
	}()
}

// installCommitted replaces the committed version of rec's object
// (dropping owner's uncommitted copy, which is what is being
// committed) and maintains extents and indexes. During recovery the
// owner is committedOwner, meaning there is no uncommitted copy to
// drop. Caller holds s.mu.
func (s *Store) installCommitted(owner lock.TxnID, rec Record) {
	c := s.objects[rec.OID]
	if c == nil {
		c = &chain{}
		s.objects[rec.OID] = c
	}
	kept := c.versions[:0]
	var old *Record
	for i := range c.versions {
		v := c.versions[i]
		if v.owner == committedOwner {
			r := v.rec
			old = &r
			continue
		}
		if v.owner == owner {
			continue // the copy being committed
		}
		kept = append(kept, v)
	}
	c.versions = kept
	if old != nil {
		s.indexRemove(*old)
	}
	if rec.Deleted {
		// Tombstone: no committed version is re-installed. Remove the
		// object entirely if no uncommitted versions remain.
		if len(c.versions) == 0 {
			delete(s.objects, rec.OID)
			if e := s.extents[rec.Class]; e != nil {
				delete(e, rec.OID)
			}
		}
		s.modSeq[rec.Class]++
		return
	}
	c.versions = append([]version{{owner: committedOwner, rec: rec}}, c.versions...)
	s.indexInsert(rec)
	s.addExtent(rec.Class, rec.OID)
	s.modSeq[rec.Class]++
}

// AbortTxn discards tx's versions.
func (s *Store) AbortTxn(tx lock.TxnID) {
	s.mu.Lock()
	defer s.mu.Unlock()
	for oid := range s.dirty[tx] {
		c := s.objects[oid]
		if c == nil {
			continue
		}
		kept := c.versions[:0]
		var class string
		for i := range c.versions {
			if c.versions[i].owner == tx {
				class = c.versions[i].rec.Class
				continue
			}
			kept = append(kept, c.versions[i])
		}
		c.versions = kept
		if class != "" {
			s.modSeq[class]++
		}
		if len(c.versions) == 0 {
			delete(s.objects, oid)
			if class != "" {
				if e := s.extents[class]; e != nil {
					delete(e, oid)
				}
			}
		}
	}
	delete(s.dirty, tx)
}

func (s *Store) indexInsert(rec Record) {
	for attr, t := range s.indexes[rec.Class] {
		if v, ok := rec.Attrs[attr]; ok {
			t.Insert(v.Key(), rec.OID)
		}
	}
}

func (s *Store) indexRemove(rec Record) {
	for attr, t := range s.indexes[rec.Class] {
		if v, ok := rec.Attrs[attr]; ok {
			t.Delete(v.Key(), rec.OID)
		}
	}
}

// --- redo log records and snapshot ---

func encodeRedo(recs []Record) []byte {
	buf := binary.AppendUvarint(nil, uint64(len(recs)))
	for _, r := range recs {
		buf = binary.AppendUvarint(buf, uint64(r.OID))
		buf = binary.AppendUvarint(buf, uint64(len(r.Class)))
		buf = append(buf, r.Class...)
		if r.Deleted {
			buf = append(buf, 1)
		} else {
			buf = append(buf, 0)
		}
		buf = datum.EncodeMap(buf, r.Attrs)
	}
	return buf
}

func decodeRedo(payload []byte) ([]Record, error) {
	cnt, n := binary.Uvarint(payload)
	// Each record takes several bytes, so a count beyond the remaining
	// input is corrupt — reject before allocating.
	if n <= 0 || cnt > uint64(len(payload)-n) {
		return nil, errors.New("storage: bad redo header")
	}
	recs := make([]Record, 0, cnt)
	for i := uint64(0); i < cnt; i++ {
		oid, m := binary.Uvarint(payload[n:])
		if m <= 0 {
			return nil, errors.New("storage: bad redo oid")
		}
		n += m
		clen, m := binary.Uvarint(payload[n:])
		// Compare in uint64 so a huge length cannot wrap int and slip
		// past the bounds check; >= keeps one byte for the tombstone
		// flag.
		if m <= 0 || clen >= uint64(len(payload)-n-m) {
			return nil, errors.New("storage: bad redo class")
		}
		n += m
		class := string(payload[n : n+int(clen)])
		n += int(clen)
		deleted := payload[n] == 1
		n++
		attrs, m, err := datum.DecodeMap(payload[n:])
		if err != nil {
			return nil, fmt.Errorf("storage: redo attrs: %w", err)
		}
		n += m
		recs = append(recs, Record{OID: datum.OID(oid), Class: class, Attrs: attrs, Deleted: deleted})
	}
	return recs, nil
}

// applyRedo applies one WAL record during recovery.
func (s *Store) applyRedo(payload []byte) error {
	recs, err := decodeRedo(payload)
	if err != nil {
		return err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, rec := range recs {
		if rec.OID >= s.nextOID {
			s.nextOID = rec.OID + 1
		}
		s.installCommitted(committedOwner, rec)
		// Replayed records are newer than the on-disk chain (their
		// LSNs are at or above its watermark), so the next delta must
		// carry them.
		s.ckptDirty[rec.OID] = rec.Class
	}
	return nil
}

// CheckpointResult describes one completed checkpoint.
type CheckpointResult struct {
	// Kind is "full" (whole committed tier, chain compacted) or
	// "delta" (only the OIDs dirtied since the last checkpoint).
	Kind string `json:"kind"`
	// Records is the number of records written to the chain element.
	Records int `json:"records"`
	// Reclaimed is the number of WAL bytes truncated away.
	Reclaimed uint64 `json:"reclaimed"`
}

// Checkpoint performs one fuzzy (non-quiescent) checkpoint. It is
// incremental and demand-driven: when a full snapshot already exists
// and the delta chain is shorter than CompactEvery, it writes a
// *delta* snapshot holding only the records committed since the last
// checkpoint — O(dirty), not O(store) — chained to its parent by the
// parent's watermark LSN and CRC. Every CompactEvery deltas (or on
// the first checkpoint of a directory, or via Compact) it rewrites a
// full snapshot and drops the chain. Either way it then truncates the
// WAL prefix the chain covers.
//
// Commits proceed concurrently: the only store lock taken is a read
// lock for the in-memory scan, and the WAL keeps accepting appends
// except during the (short) suffix copy inside TruncateBefore.
//
// The watermark invariant makes this safe: every committed record is
// either in the chain or at LSN >= watermark. The watermark is the
// smallest in-flight LSN (appended but not yet installed), or the log
// end if none: a record below it was installed before the scan (the
// read lock blocks installs mid-scan, and deregistration happens only
// after install), so the scan saw it — in the dirty set if it landed
// after the previous checkpoint, in an older chain element otherwise;
// anything at or above survives TruncateBefore(watermark) and is
// replayed over the chain on recovery.
func (s *Store) Checkpoint() (CheckpointResult, error) {
	return s.checkpoint(false)
}

// Compact forces the next checkpoint to be full: it rewrites the
// whole committed tier as a fresh snapshot and drops the delta chain.
func (s *Store) Compact() (CheckpointResult, error) {
	return s.checkpoint(true)
}

func (s *Store) checkpoint(forceFull bool) (CheckpointResult, error) {
	if s.dir == "" {
		return CheckpointResult{}, nil
	}
	s.ckptMu.Lock()
	defer s.ckptMu.Unlock()
	tm := s.obsm.Timer(obs.HCheckpoint)

	full := forceFull || !s.haveFull || s.deltaSeq >= s.compactEvery

	s.mu.RLock()
	var watermark wal.LSN
	if s.log != nil {
		watermark = s.log.End()
		s.cmu.Lock()
		for lsn := range s.inflight {
			if lsn < watermark {
				watermark = lsn
			}
		}
		s.cmu.Unlock()
	}
	var recs []Record
	if full {
		recs = make([]Record, 0, len(s.objects))
		for _, c := range s.objects {
			for i := range c.versions {
				if c.versions[i].owner == committedOwner {
					recs = append(recs, c.versions[i].rec)
					break
				}
			}
		}
	} else {
		recs = make([]Record, 0, len(s.ckptDirty))
		for oid, class := range s.ckptDirty {
			if rec, ok := s.committedRecord(oid); ok {
				recs = append(recs, rec)
			} else {
				// Deleted since the last checkpoint: the delta must
				// carry the tombstone or recovery would resurrect the
				// object from an older chain element.
				recs = append(recs, Record{OID: oid, Class: class, Deleted: true})
			}
		}
	}
	// An empty delta at an unmoved watermark would extend the chain
	// with nothing; skip the file but still attempt the truncate (a
	// prior crash between rename and truncate leaves covered prefix
	// to reclaim).
	writeFile := full || len(recs) > 0 || watermark != s.chainWatermark
	// Reset the dirty set: everything in it is in recs now. Installs
	// are excluded while the read lock is held and checkpoints are
	// serialized by ckptMu, so this write does not race. On any
	// failure below the saved set is merged back — losing a mark
	// would silently drop its record from every future delta.
	taken := s.ckptDirty
	s.ckptDirty = make(map[datum.OID]string, 8)
	nextOID := s.nextOID
	s.mu.RUnlock()
	sort.Slice(recs, func(i, j int) bool { return recs[i].OID < recs[j].OID })

	restoreDirty := func() {
		s.mu.Lock()
		for oid, class := range taken {
			if _, ok := s.ckptDirty[oid]; !ok {
				s.ckptDirty[oid] = class
			}
		}
		s.mu.Unlock()
	}

	res := CheckpointResult{Kind: "delta", Records: len(recs)}
	if full {
		res.Kind = "full"
	}
	if writeFile {
		sn := &snapshot{watermark: watermark, nextOID: nextOID, recs: recs}
		if full {
			sn.kind = snapKindFull
			if err := s.writeSnapshotFile(sn, fullSnapshotName, fullSnapshotName+".tmp",
				"storage.midSnapshot", "storage.afterRename"); err != nil {
				restoreDirty()
				return res, err
			}
			// Compaction: the full snapshot subsumes the chain, so the
			// delta files are dead weight. Stale elements surviving a
			// crash here (or a failed remove) are harmless — their
			// parent link no longer matches the new snapshot, so
			// recovery ignores them, and future deltas overwrite them
			// by rename as the sequence numbers restart.
			failpoint.Hit("storage.midCompaction")
			if names, _, err := deltaFiles(s.dir); err == nil {
				for _, name := range names {
					os.Remove(filepath.Join(s.dir, name))
				}
			}
			s.haveFull = true
			s.deltaSeq = 0
			s.nFullCkpts.Add(1)
		} else {
			sn.kind = snapKindDelta
			sn.parentWatermark = s.chainWatermark
			sn.parentCRC = s.chainCRC
			if err := s.writeSnapshotFile(sn, deltaName(s.deltaSeq+1), "delta.tmp",
				"storage.midDelta", "storage.afterDeltaRename"); err != nil {
				restoreDirty()
				return res, err
			}
			s.deltaSeq++
			s.nDeltaCkpts.Add(1)
			s.obsm.ObserveN(obs.HDeltaRecords, uint64(len(recs)))
		}
		s.chainWatermark, s.chainCRC = watermark, sn.crc
	}

	failpoint.Hit("storage.beforeTruncate")
	if s.log != nil {
		// Only after the chain element is durably in place may the
		// covered prefix be dropped; crashing before this line
		// recovers from the extended chain plus the untruncated log.
		reclaimed, err := s.log.TruncateBefore(watermark)
		if err != nil {
			return res, err
		}
		res.Reclaimed = reclaimed
		s.lastCkptEnd.Store(uint64(s.log.End()))
	}
	if writeFile || res.Reclaimed > 0 {
		s.nCheckpoints.Add(1)
		s.nWALReclaimed.Add(res.Reclaimed)
		s.obsm.ObserveN(obs.HWALReclaimed, res.Reclaimed)
	}
	tm.Done()
	return res, nil
}

// committedRecord returns oid's committed version. Caller holds s.mu
// (read or write).
func (s *Store) committedRecord(oid datum.OID) (Record, bool) {
	c := s.objects[oid]
	if c == nil {
		return Record{}, false
	}
	for i := range c.versions {
		if c.versions[i].owner == committedOwner {
			return c.versions[i].rec, true
		}
	}
	return Record{}, false
}

// syncDir fsyncs a directory so a just-renamed entry survives a crash.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return fmt.Errorf("storage: open dir: %w", err)
	}
	defer d.Close()
	if err := d.Sync(); err != nil {
		return fmt.Errorf("storage: sync dir: %w", err)
	}
	return nil
}
