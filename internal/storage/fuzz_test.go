package storage

// Fuzz targets for the two untrusted-input decoders in this package:
// the redo-record payload read back from the WAL and the snapshot file
// read at open. Both must reject arbitrary bytes with an error — never
// panic, never allocate unboundedly — and must round-trip their own
// encoder's output exactly.

import (
	"testing"

	"repro/internal/datum"
)

func fuzzSeedRecords() []Record {
	return []Record{
		rec(1, "stock", map[string]datum.Value{"qty": datum.Int(7), "sym": datum.Str("IBM")}),
		rec(2, "stock", map[string]datum.Value{"list": datum.List(datum.Int(1), datum.Int(2))}),
		{OID: 3, Class: "stock", Deleted: true},
	}
}

func FuzzDecodeRedo(f *testing.F) {
	f.Add(encodeRedo(fuzzSeedRecords()))
	f.Add(encodeRedo(nil))
	f.Add([]byte{})
	f.Add([]byte{0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0x01}) // huge count
	f.Fuzz(func(t *testing.T, payload []byte) {
		recs, err := decodeRedo(payload)
		if err != nil {
			return
		}
		// Valid payloads must survive a re-encode/re-decode round trip.
		again, err := decodeRedo(encodeRedo(recs))
		if err != nil {
			t.Fatalf("re-decode of re-encoded payload failed: %v", err)
		}
		if len(again) != len(recs) {
			t.Fatalf("round trip changed record count: %d -> %d", len(recs), len(again))
		}
	})
}

func FuzzSnapshotLoad(f *testing.F) {
	f.Add(encodeSnapshot(&snapshot{watermark: 0, nextOID: 1}))
	f.Add(encodeSnapshot(&snapshot{watermark: 12345, nextOID: 42, recs: fuzzSeedRecords()}))
	f.Add([]byte(snapshotMagic))
	f.Add([]byte(snapshotMagicV1))
	f.Add([]byte{})
	corrupt := encodeSnapshot(&snapshot{watermark: 7, nextOID: 9, recs: fuzzSeedRecords()})
	corrupt[len(corrupt)-1] ^= 0xff // bad CRC
	f.Add(corrupt)
	f.Fuzz(func(t *testing.T, buf []byte) {
		sn, err := decodeSnapshot(buf)
		if err != nil {
			return
		}
		again, err := decodeSnapshot(encodeSnapshot(sn))
		if err != nil {
			t.Fatalf("re-decode of re-encoded snapshot failed: %v", err)
		}
		if again.kind != sn.kind || again.watermark != sn.watermark ||
			again.nextOID != sn.nextOID || len(again.recs) != len(sn.recs) {
			t.Fatalf("round trip changed header: (%d,%d,%d,%d) -> (%d,%d,%d,%d)",
				sn.kind, sn.watermark, sn.nextOID, len(sn.recs),
				again.kind, again.watermark, again.nextOID, len(again.recs))
		}
	})
}

// FuzzDeltaSnapshot exercises the delta-specific surface: the kind
// byte, the parent chain link (watermark + CRC), and the record
// frames behind them. Valid inputs must round-trip exactly —
// including the chain link, which recovery compares bit-for-bit — and
// the lenient header inspector must agree with the strict decoder on
// everything it reports.
func FuzzDeltaSnapshot(f *testing.F) {
	f.Add(encodeSnapshot(&snapshot{kind: snapKindDelta, watermark: 100, nextOID: 10,
		parentWatermark: 40, parentCRC: 0xdeadbeef, recs: fuzzSeedRecords()}))
	f.Add(encodeSnapshot(&snapshot{kind: snapKindDelta, watermark: 1, nextOID: 1,
		parentWatermark: 1, parentCRC: 0}))
	valid := encodeSnapshot(&snapshot{kind: snapKindDelta, watermark: 55, nextOID: 5,
		parentWatermark: 54, parentCRC: 7, recs: fuzzSeedRecords()})
	f.Add(valid[:len(valid)/2]) // truncated mid-frame
	badLink := append([]byte(nil), valid...)
	badLink[len(snapshotMagic)+3] ^= 0x55 // perturb the chain link
	f.Add(badLink)
	f.Fuzz(func(t *testing.T, buf []byte) {
		sn, err := decodeSnapshot(buf)
		if err != nil {
			return
		}
		if sn.kind != snapKindFull && sn.kind != snapKindDelta {
			t.Fatalf("decoder accepted kind %d", sn.kind)
		}
		again, err := decodeSnapshot(encodeSnapshot(sn))
		if err != nil {
			t.Fatalf("re-decode of re-encoded snapshot failed: %v", err)
		}
		if again.kind != sn.kind || again.watermark != sn.watermark ||
			again.parentWatermark != sn.parentWatermark || again.parentCRC != sn.parentCRC ||
			len(again.recs) != len(sn.recs) {
			t.Fatal("round trip changed delta header or chain link")
		}
	})
}
