package storage

// Fuzz targets for the two untrusted-input decoders in this package:
// the redo-record payload read back from the WAL and the snapshot file
// read at open. Both must reject arbitrary bytes with an error — never
// panic, never allocate unboundedly — and must round-trip their own
// encoder's output exactly.

import (
	"testing"

	"repro/internal/datum"
)

func fuzzSeedRecords() []Record {
	return []Record{
		rec(1, "stock", map[string]datum.Value{"qty": datum.Int(7), "sym": datum.Str("IBM")}),
		rec(2, "stock", map[string]datum.Value{"list": datum.List(datum.Int(1), datum.Int(2))}),
		{OID: 3, Class: "stock", Deleted: true},
	}
}

func FuzzDecodeRedo(f *testing.F) {
	f.Add(encodeRedo(fuzzSeedRecords()))
	f.Add(encodeRedo(nil))
	f.Add([]byte{})
	f.Add([]byte{0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0x01}) // huge count
	f.Fuzz(func(t *testing.T, payload []byte) {
		recs, err := decodeRedo(payload)
		if err != nil {
			return
		}
		// Valid payloads must survive a re-encode/re-decode round trip.
		again, err := decodeRedo(encodeRedo(recs))
		if err != nil {
			t.Fatalf("re-decode of re-encoded payload failed: %v", err)
		}
		if len(again) != len(recs) {
			t.Fatalf("round trip changed record count: %d -> %d", len(recs), len(again))
		}
	})
}

func FuzzSnapshotLoad(f *testing.F) {
	f.Add(encodeSnapshot(0, 1, nil))
	f.Add(encodeSnapshot(12345, 42, fuzzSeedRecords()))
	f.Add([]byte(snapshotMagic))
	f.Add([]byte{})
	corrupt := encodeSnapshot(7, 9, fuzzSeedRecords())
	corrupt[len(corrupt)-1] ^= 0xff // bad CRC
	f.Add(corrupt)
	f.Fuzz(func(t *testing.T, buf []byte) {
		watermark, nextOID, recs, err := decodeSnapshot(buf)
		if err != nil {
			return
		}
		enc := encodeSnapshot(watermark, nextOID, recs)
		w2, o2, r2, err := decodeSnapshot(enc)
		if err != nil {
			t.Fatalf("re-decode of re-encoded snapshot failed: %v", err)
		}
		if w2 != watermark || o2 != nextOID || len(r2) != len(recs) {
			t.Fatalf("round trip changed header: (%d,%d,%d) -> (%d,%d,%d)",
				watermark, nextOID, len(recs), w2, o2, len(r2))
		}
	})
}
