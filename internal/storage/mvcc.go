// MVCC read path: commit-LSN version chains, the snapshot registry,
// and the version garbage collector.
//
// Committed object states live in per-object version chains: a chain
// is an atomic head pointer to the newest committed version, each
// version carrying the logical commit LSN that installed it and an
// atomic link to the previous version. Readers never take a shard
// lock for committed data — they pick a snapshot LSN (the newest
// *published* commit) and walk the chain to the newest version at or
// below it.
//
// Install-then-publish ordering makes multi-record commits atomic to
// lock-free readers: CommitTop assigns its commit LSN under cmu,
// installs every shard's versions, and only then marks the LSN
// complete; the published counter advances only to the contiguous
// prefix of completed commit LSNs, so a snapshot can never observe
// half of a commit. CommitTop waits for its own LSN to publish before
// returning, preserving read-your-commits for callers (the wait is
// short: earlier commits only need to finish their installs, their
// WAL records having been flushed by the same group commit).
//
// Snapshots pinned for the duration of a scan or a condition
// evaluation register in a striped registry; the version GC computes
// the oldest registered snapshot LSN as its watermark and unlinks
// chain versions below the newest version each live snapshot can
// still reach. Secondary-index entries are removed here too — installs
// only ever add entries, so an old snapshot's index probe still finds
// rows visible to it (probes may return false positives; callers
// re-verify against the resolved record).
package storage

import (
	"sync"
	"sync/atomic"

	"repro/internal/datum"
	"repro/internal/lock"
)

// mvVersion is one committed version of an object.
type mvVersion struct {
	// lsn is the logical commit LSN that installed this version;
	// a reader at snapshot S sees the newest version with lsn <= S.
	lsn uint64
	rec Record
	// prev links to the next-older committed version. Written once at
	// install and cleared (to nil) by the version GC; atomic so
	// lock-free readers can walk mid-unlink.
	prev atomic.Pointer[mvVersion]
	// depth approximates the chain length at this head (recounted by
	// GC); feeds the version_chain_len histogram and GC candidacy.
	depth atomic.Uint32
}

// mvEntry is one object's slot in a shard: the committed version
// chain plus the uncommitted versions of in-flight transactions.
// Entry creation and removal happen under the shard mutex; the
// committed head is read lock-free; the uncommitted tier is guarded
// by umu (writers additionally hold the shard mutex, so the GC can
// rely on sh.mu alone to freeze an entry).
type mvEntry struct {
	head atomic.Pointer[mvVersion]
	umu  sync.Mutex
	unc  []version
	// nUnc mirrors len(unc) so readers skip the umu lock entirely when
	// no transaction has the object dirty (the common case).
	nUnc atomic.Int32
}

// visibleAt returns the newest committed version with lsn <= snap,
// or nil. Lock-free.
func (e *mvEntry) visibleAt(snap uint64) *mvVersion {
	for v := e.head.Load(); v != nil; v = v.prev.Load() {
		if v.lsn <= snap {
			return v
		}
	}
	return nil
}

// resolve returns the record of e visible to tx at snapshot snap:
// tx's own (or an ancestor's) uncommitted version first, else the
// committed version at snap. The returned bool is false for a
// tombstone or no visible version; the record is still returned for
// tombstones so callers can see the class.
func (s *Store) resolve(e *mvEntry, tx lock.TxnID, snap uint64) (Record, bool) {
	if tx != committedOwner && e.nUnc.Load() > 0 {
		e.umu.Lock()
		for i := len(e.unc) - 1; i >= 0; i-- {
			v := e.unc[i]
			if v.owner == tx || s.topo.IsAncestorOrSelf(v.owner, tx) {
				rec := v.rec.clone()
				e.umu.Unlock()
				return rec, !rec.Deleted
			}
		}
		e.umu.Unlock()
	}
	if v := e.visibleAt(snap); v != nil {
		return v.rec.clone(), !v.rec.Deleted
	}
	return Record{}, false
}

// --- commit-LSN publish protocol (fields guarded by cmu) ---

// beginCommitLocked assigns the next commit LSN and marks it pending.
// Caller holds cmu — for logged commits this is the same critical
// section as the WAL append, so commit-LSN order matches log order.
func (s *Store) beginCommitLocked() uint64 {
	clsn := s.nextCommit
	s.nextCommit++
	s.pending[clsn] = struct{}{}
	return clsn
}

// endCommit marks clsn complete (installed or abandoned) and advances
// the published frontier.
func (s *Store) endCommit(clsn uint64) {
	s.cmu.Lock()
	s.endCommitLocked(clsn)
	s.cmu.Unlock()
}

func (s *Store) endCommitLocked(clsn uint64) {
	delete(s.pending, clsn)
	// published = the contiguous prefix of completed commits: one
	// below the smallest pending LSN, or everything assigned if none
	// is pending. Monotone: the minimum pending LSN only grows.
	pub := s.nextCommit - 1
	for lsn := range s.pending {
		if lsn-1 < pub {
			pub = lsn - 1
		}
	}
	if pub > s.published.Load() {
		s.published.Store(pub)
		s.pubCond.Broadcast()
	}
}

// waitPublished blocks until the published frontier reaches clsn.
func (s *Store) waitPublished(clsn uint64) {
	if s.published.Load() >= clsn {
		return
	}
	s.cmu.Lock()
	for s.published.Load() < clsn {
		s.pubCond.Wait()
	}
	s.cmu.Unlock()
}

// PublishedLSN returns the newest commit LSN visible to fresh
// snapshots.
func (s *Store) PublishedLSN() uint64 { return s.published.Load() }

// --- snapshot registry ---

// snapStripes is the registry partition count; acquisition round-
// robins across stripes so concurrent scans do not share a mutex.
const snapStripes = 16

type snapStripe struct {
	mu   sync.Mutex
	live map[*Snapshot]struct{}
	_    [32]byte // keep stripes off one cache line
}

// Snapshot pins a point-in-time view of the committed tier. Reads at
// the snapshot's LSN see every commit published before acquisition
// and none after; the version GC keeps every version a live snapshot
// can reach. Release it when done — a leaked snapshot pins garbage
// forever.
type Snapshot struct {
	lsn      uint64
	s        *Store
	stripe   int
	released atomic.Bool
}

// LSN returns the snapshot's commit LSN.
func (h *Snapshot) LSN() uint64 { return h.lsn }

// AcquireSnapshot registers a snapshot at the current published LSN.
func (s *Store) AcquireSnapshot() *Snapshot {
	h := &Snapshot{s: s, stripe: int(s.snapSeq.Add(1) % snapStripes)}
	// Increment the live count BEFORE reading published: the inline
	// trim in installCommitted reads published and then checks the
	// count, so a registration it observed as absent must read
	// published after the trim's read — at or above any watermark the
	// trim could have cut at.
	s.snapsLive.Add(1)
	st := &s.snaps[h.stripe]
	st.mu.Lock()
	// Read published inside the stripe lock: the GC scans each stripe
	// under its mutex after reading published once, so a registration
	// the GC's scan missed must have read published at or above the
	// GC's watermark — the versions it needs are never collected.
	h.lsn = s.published.Load()
	st.live[h] = struct{}{}
	st.mu.Unlock()
	return h
}

// Release unregisters the snapshot. Idempotent; nil-safe.
func (h *Snapshot) Release() {
	if h == nil || h.released.Swap(true) {
		return
	}
	st := &h.s.snaps[h.stripe]
	st.mu.Lock()
	delete(st.live, h)
	st.mu.Unlock()
	h.s.snapsLive.Add(-1)
}

// oldestSnapshotLSN returns the GC watermark: the smallest LSN any
// live snapshot (or a fresh one) could read at. Must read published
// before scanning the stripes — see AcquireSnapshot.
func (s *Store) oldestSnapshotLSN() (lsn uint64, live int) {
	lsn = s.published.Load()
	for i := range s.snaps {
		st := &s.snaps[i]
		st.mu.Lock()
		for h := range st.live {
			live++
			if h.lsn < lsn {
				lsn = h.lsn
			}
		}
		st.mu.Unlock()
	}
	return lsn, live
}

// OldestSnapshotLSN reports the current GC watermark (stats/gauge).
func (s *Store) OldestSnapshotLSN() uint64 {
	lsn, _ := s.oldestSnapshotLSN()
	return lsn
}

// --- version garbage collection ---

// gcEveryCommits is the background GC cadence: a sweep is kicked once
// this many top-level commits have landed since the last one.
const gcEveryCommits = 1024

// GCResult describes one VersionGC sweep.
type GCResult struct {
	// Chains is the number of candidate chains examined.
	Chains int `json:"chains"`
	// Reclaimed is the number of versions unlinked.
	Reclaimed int `json:"reclaimed"`
	// Removed is the number of tombstone-headed chains deleted whole.
	Removed int `json:"removed"`
	// Watermark is the oldest-active-snapshot LSN the sweep used.
	Watermark uint64 `json:"watermark"`
}

// VersionGC unlinks committed versions no live snapshot can reach.
// For each candidate chain it keeps the newest version at or below
// the oldest active snapshot LSN (the version that snapshot resolves
// to) and everything newer, and unlinks the rest; a chain whose only
// reachable state is a tombstone is removed from the heap outright.
// Secondary-index entries of dropped versions are deleted unless a
// surviving version of the same chain carries the same key (installs
// defer index removal to this sweep so old snapshots keep probing
// correctly). Sweeps are serialized; safe to call concurrently with
// readers and committers.
func (s *Store) VersionGC() GCResult {
	s.gcMu.Lock()
	defer s.gcMu.Unlock()
	var res GCResult
	res.Watermark, _ = s.oldestSnapshotLSN()
	for _, sh := range s.shards {
		sh.mu.Lock()
		cand := sh.gcCand
		sh.gcCand = make(map[datum.OID]struct{}, 8)
		sh.mu.Unlock()
		for oid := range cand {
			// Per-OID shard sections keep GC pauses off the commit
			// path; the shard lock freezes the entry (installs, Put,
			// abort, and entry removal all hold it).
			sh.mu.Lock()
			if !s.gcChain(sh, oid, res.Watermark, &res) {
				// Still collectible later (e.g. a pinned snapshot
				// below the chain's versions): re-arm candidacy.
				sh.gcCand[oid] = struct{}{}
			}
			sh.mu.Unlock()
			res.Chains++
		}
	}
	s.nGCRuns.Add(1)
	s.nGCReclaimed.Add(uint64(res.Reclaimed))
	return res
}

// gcChain collects one chain at watermark w. Caller holds sh.mu
// exclusively. Returns true when nothing collectible remains.
func (s *Store) gcChain(sh *shard, oid datum.OID, w uint64, res *GCResult) bool {
	v, ok := sh.objects.Load(oid)
	if !ok {
		return true
	}
	e := v.(*mvEntry)
	head := e.head.Load()
	if head == nil {
		return true
	}
	// keep = the version the oldest live snapshot resolves to; all
	// older versions are unreachable by any current or future reader.
	keep := head
	for keep.lsn > w {
		next := keep.prev.Load()
		if next == nil {
			// Every version is newer than the watermark: a snapshot at
			// w resolves to nothing, newer snapshots need what's here.
			// Re-arm unless the chain is a lone live version (a deeper
			// or tombstoned chain becomes collectible as w advances).
			return keep == head && !head.rec.Deleted
		}
		keep = next
	}
	var dropped []*mvVersion
	for v := keep.prev.Load(); v != nil; v = v.prev.Load() {
		dropped = append(dropped, v)
	}
	dead := head == keep && keep.rec.Deleted && e.nUnc.Load() == 0
	if len(dropped) == 0 && !dead {
		// Nothing to cut this round. Still a candidate if the chain is
		// deeper than one version (the versions above keep become
		// droppable once the pinning snapshot releases) or the head is
		// a tombstone (it collapses once its uncommitted writers and
		// old snapshots drain).
		return keep == head && !head.rec.Deleted
	}
	keep.prev.Store(nil)
	res.Reclaimed += len(dropped)
	// Recount the chain so depth-driven stats stay honest after a cut.
	n := uint32(0)
	for v := head; v != nil; v = v.prev.Load() {
		n++
	}
	head.depth.Store(n)
	if dead {
		// The only reachable state is a deletion: drop the whole
		// object. A lock-free reader still holding e sees the
		// tombstone and reports not-found, same as before.
		dropped = append(dropped, keep)
		res.Reclaimed++
		res.Removed++
		sh.objects.Delete(oid)
	}
	// Index cleanup: delete dropped versions' entries unless a
	// surviving version still carries the key (the btree stores one
	// entry per (key, oid) pair).
	surviving := map[string]struct{}{}
	if !dead {
		for v := head; v != nil; v = v.prev.Load() {
			if v.rec.Deleted {
				continue
			}
			for attr := range sh.indexes[v.rec.Class] {
				if val, ok := v.rec.Attrs[attr]; ok {
					surviving[v.rec.Class+"\x00"+attr+"\x00"+val.Key()] = struct{}{}
				}
			}
		}
	}
	classes := map[string]struct{}{}
	for _, v := range dropped {
		classes[v.rec.Class] = struct{}{}
		if v.rec.Deleted {
			continue
		}
		for attr, t := range sh.indexes[v.rec.Class] {
			val, ok := v.rec.Attrs[attr]
			if !ok {
				continue
			}
			if _, kept := surviving[v.rec.Class+"\x00"+attr+"\x00"+val.Key()]; !kept {
				t.Delete(val.Key(), oid)
			}
		}
	}
	if dead {
		for class := range classes {
			s.extentDel(sh, class, oid)
		}
		return true
	}
	// A tombstone-headed chain is still waiting (on the watermark or
	// an uncommitted version) to be removed whole, and a chain still
	// holding history above the watermark sheds it as the watermark
	// advances: both keep candidacy. A lone live version is done — the
	// next install re-adds it.
	return keep == head && !head.rec.Deleted
}

// maybeKickGC starts a background VersionGC sweep every
// gcEveryCommits top-level commits. Single-flight; never after Close.
func (s *Store) maybeKickGC() {
	if s.gcTick.Add(1)%gcEveryCommits != 0 {
		return
	}
	s.bgMu.Lock()
	if s.closing || s.gcRunning {
		s.bgMu.Unlock()
		return
	}
	s.gcRunning = true
	s.bgWG.Add(1)
	s.bgMu.Unlock()
	go func() {
		defer s.bgWG.Done()
		s.VersionGC()
		s.bgMu.Lock()
		s.gcRunning = false
		s.bgMu.Unlock()
	}()
}
