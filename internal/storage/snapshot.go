// Snapshot files and the delta chain.
//
// A checkpoint writes one of two file kinds into the durability
// directory:
//
//   - a full snapshot ("snapshot"): every committed record;
//   - a delta snapshot ("delta-NNNNNN"): only the records dirtied
//     since the previous chain element, chained to that parent by the
//     parent's watermark LSN and trailing CRC.
//
// Recovery loads the newest full snapshot, folds the delta files
// forward in sequence order — verifying each file's own CRC and its
// parent link, and stopping at the first element that does not extend
// the chain — then replays the WAL suffix at or above the achieved
// watermark. A crash-truncated chain is therefore recovered from its
// longest valid prefix; the wal-base-vs-watermark check in Open
// refuses the directory only if log records the broken chain would
// need have already been truncated away.
//
// File layout (format v3, magic "hipacsp3"):
//
//	[8]byte  magic
//	byte     kind (0 = full, 1 = delta)
//	uvarint  watermark LSN
//	uvarint  next OID
//	delta only:
//	  uvarint parent watermark LSN
//	  uint32  parent CRC (big-endian; the parent file's trailing CRC)
//	uvarint  class-cardinality count, then per class (sorted by name):
//	  uvarint name length, name bytes, uvarint extent cardinality
//	records in redo form (uvarint count, then frames)
//	uint32   CRC-32 (IEEE, big-endian) over everything above
//
// The class cardinalities are checkpoint-time planner statistics: the
// store's live per-class extent counters as of the cut (global state,
// even in a delta element). Recovery seeds ExtentEstimate from the
// newest element's table, so a cold engine costs plans with real
// extents before touching any live structure.
//
// Formats v1 ("hipacsp1": no kind byte, no parent link, read as a
// full snapshot) and v2 ("hipacsp2": no cardinality table) are still
// read so directories written by older builds keep opening.
package storage

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"

	"repro/internal/datum"
	"repro/internal/failpoint"
	"repro/internal/wal"
)

const (
	// snapshotMagicV1 tags the legacy single-file snapshot format.
	snapshotMagicV1 = "hipacsp1"
	// snapshotMagicV2 tags the chain format without the class-
	// cardinality table.
	snapshotMagicV2 = "hipacsp2"
	// snapshotMagic tags the current format: kind byte + parent link +
	// checkpoint-time class cardinalities.
	snapshotMagic = "hipacsp3"

	snapKindFull  byte = 0
	snapKindDelta byte = 1

	// fullSnapshotName is the full snapshot's file name; deltaPrefix
	// plus a six-digit sequence number names each chain element.
	fullSnapshotName = "snapshot"
	deltaPrefix      = "delta-"
)

// deltaName returns the file name of chain element seq (1-based).
func deltaName(seq int) string {
	return fmt.Sprintf("%s%06d", deltaPrefix, seq)
}

// snapshot is the decoded form of one snapshot or delta file.
type snapshot struct {
	kind      byte
	watermark wal.LSN
	nextOID   datum.OID
	// parentWatermark/parentCRC link a delta to the chain element it
	// extends; zero for full snapshots.
	parentWatermark wal.LSN
	parentCRC       uint32
	// cards is the checkpoint-time per-class extent cardinality table
	// (planner statistics); nil for pre-v3 files.
	cards map[string]uint64
	recs  []Record
	// crc is the file's own trailing CRC — the link value a child
	// delta must carry.
	crc uint32
}

// encodeSnapshot serializes sn (setting sn.crc as a side effect).
func encodeSnapshot(sn *snapshot) []byte {
	buf := append([]byte(nil), snapshotMagic...)
	buf = append(buf, sn.kind)
	buf = binary.AppendUvarint(buf, uint64(sn.watermark))
	buf = binary.AppendUvarint(buf, uint64(sn.nextOID))
	if sn.kind == snapKindDelta {
		buf = binary.AppendUvarint(buf, uint64(sn.parentWatermark))
		buf = binary.BigEndian.AppendUint32(buf, sn.parentCRC)
	}
	names := make([]string, 0, len(sn.cards))
	for name := range sn.cards {
		names = append(names, name)
	}
	sort.Strings(names) // deterministic bytes -> deterministic CRC
	buf = binary.AppendUvarint(buf, uint64(len(names)))
	for _, name := range names {
		buf = binary.AppendUvarint(buf, uint64(len(name)))
		buf = append(buf, name...)
		buf = binary.AppendUvarint(buf, sn.cards[name])
	}
	buf = append(buf, encodeRedo(sn.recs)...)
	sn.crc = crc32.ChecksumIEEE(buf)
	return binary.BigEndian.AppendUint32(buf, sn.crc)
}

// decodeSnapshot parses and verifies a snapshot produced by
// encodeSnapshot (either format version).
func decodeSnapshot(buf []byte) (*snapshot, error) {
	if len(buf) < len(snapshotMagic)+4 {
		return nil, errors.New("storage: snapshot too short")
	}
	body, tail := buf[:len(buf)-4], buf[len(buf)-4:]
	stored := binary.BigEndian.Uint32(tail)
	if crc32.ChecksumIEEE(body) != stored {
		return nil, errors.New("storage: snapshot checksum mismatch")
	}
	sn := &snapshot{crc: stored}
	var n int
	var hasCards bool
	switch string(body[:len(snapshotMagic)]) {
	case snapshotMagicV1:
		sn.kind = snapKindFull
		n = len(snapshotMagicV1)
	case snapshotMagicV2, snapshotMagic:
		hasCards = string(body[:len(snapshotMagic)]) == snapshotMagic
		n = len(snapshotMagic)
		if n >= len(body) {
			return nil, errors.New("storage: snapshot missing kind")
		}
		sn.kind = body[n]
		n++
		if sn.kind != snapKindFull && sn.kind != snapKindDelta {
			return nil, fmt.Errorf("storage: unknown snapshot kind %d", sn.kind)
		}
	default:
		return nil, errors.New("storage: bad snapshot magic")
	}
	watermark, m := binary.Uvarint(body[n:])
	if m <= 0 {
		return nil, errors.New("storage: bad snapshot watermark")
	}
	n += m
	sn.watermark = wal.LSN(watermark)
	nextOID, m := binary.Uvarint(body[n:])
	if m <= 0 {
		return nil, errors.New("storage: bad snapshot header")
	}
	n += m
	sn.nextOID = datum.OID(nextOID)
	if sn.kind == snapKindDelta {
		pw, m := binary.Uvarint(body[n:])
		if m <= 0 {
			return nil, errors.New("storage: bad delta parent watermark")
		}
		n += m
		if len(body)-n < 4 {
			return nil, errors.New("storage: bad delta parent crc")
		}
		sn.parentWatermark = wal.LSN(pw)
		sn.parentCRC = binary.BigEndian.Uint32(body[n : n+4])
		n += 4
	}
	if hasCards {
		var err error
		if sn.cards, n, err = decodeCards(body, n); err != nil {
			return nil, err
		}
	}
	recs, err := decodeRedo(body[n:])
	if err != nil {
		return nil, fmt.Errorf("storage: snapshot: %w", err)
	}
	sn.recs = recs
	return sn, nil
}

// decodeCards parses the class-cardinality table at body[n:],
// returning the table and the offset past it. Length checks are
// untrusted-input safe (the fuzz target feeds arbitrary bytes).
func decodeCards(body []byte, n int) (map[string]uint64, int, error) {
	cnt, m := binary.Uvarint(body[n:])
	if m <= 0 {
		return nil, 0, errors.New("storage: bad snapshot stats count")
	}
	n += m
	var cards map[string]uint64
	for i := uint64(0); i < cnt; i++ {
		l, m := binary.Uvarint(body[n:])
		if m <= 0 {
			return nil, 0, errors.New("storage: bad snapshot stats name length")
		}
		n += m
		if l > uint64(len(body)-n) {
			return nil, 0, errors.New("storage: snapshot stats name overruns body")
		}
		name := string(body[n : n+int(l)])
		n += int(l)
		card, m := binary.Uvarint(body[n:])
		if m <= 0 {
			return nil, 0, errors.New("storage: bad snapshot stats cardinality")
		}
		n += m
		if cards == nil {
			cards = map[string]uint64{}
		}
		cards[name] = card
	}
	return cards, n, nil
}

// readSnapshotFile reads and decodes one snapshot or delta file,
// also reporting its encoded size for compaction accounting.
func readSnapshotFile(path string) (*snapshot, int, error) {
	buf, err := os.ReadFile(path)
	if err != nil {
		return nil, 0, err
	}
	sn, err := decodeSnapshot(buf)
	return sn, len(buf), err
}

// deltaFiles lists the chain files in dir in sequence order, returning
// parallel slices of names and their parsed sequence numbers.
func deltaFiles(dir string) (names []string, seqs []int, err error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, nil, fmt.Errorf("storage: list deltas: %w", err)
	}
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasPrefix(name, deltaPrefix) || strings.HasSuffix(name, ".tmp") {
			continue
		}
		seq, err := strconv.Atoi(strings.TrimPrefix(name, deltaPrefix))
		if err != nil {
			continue // not a chain element
		}
		names = append(names, name)
		seqs = append(seqs, seq)
	}
	sort.Sort(&bySeq{names, seqs})
	return names, seqs, nil
}

type bySeq struct {
	names []string
	seqs  []int
}

func (b *bySeq) Len() int           { return len(b.seqs) }
func (b *bySeq) Less(i, j int) bool { return b.seqs[i] < b.seqs[j] }
func (b *bySeq) Swap(i, j int) {
	b.names[i], b.names[j] = b.names[j], b.names[i]
	b.seqs[i], b.seqs[j] = b.seqs[j], b.seqs[i]
}

// ChainFileNames lists the snapshot chain files present in dir — the
// full snapshot (if any) followed by the delta files in sequence
// order. A replication primary ships exactly these files to a
// bootstrapping follower; the follower's own chain validation (the
// same parent-link walk recovery uses) sorts out any inconsistency a
// racing checkpoint may have introduced between listing and reading.
func ChainFileNames(dir string) ([]string, error) {
	var names []string
	if _, err := os.Stat(filepath.Join(dir, fullSnapshotName)); err == nil {
		names = append(names, fullSnapshotName)
	} else if !errors.Is(err, os.ErrNotExist) {
		return nil, err
	}
	dn, _, err := deltaFiles(dir)
	if err != nil {
		return nil, err
	}
	return append(names, dn...), nil
}

// ChainWatermark validates the snapshot chain in dir exactly as Open
// would — full snapshot, then every delta that extends the chain by
// its parent watermark and CRC — and returns the achieved watermark,
// without building a store. A replication follower uses it after
// writing a shipped chain to learn the LSN its local WAL must start
// at. A missing full snapshot yields watermark 0 (an empty chain, not
// an error); a corrupt full snapshot is an error, matching loadChain.
func ChainWatermark(dir string) (wal.LSN, error) {
	var tip wal.LSN
	var tipCRC uint32
	full, _, err := readSnapshotFile(filepath.Join(dir, fullSnapshotName))
	switch {
	case errors.Is(err, os.ErrNotExist):
	case err != nil:
		return 0, fmt.Errorf("storage: read snapshot: %w", err)
	case full.kind != snapKindFull:
		return 0, errors.New("storage: snapshot file holds a delta")
	default:
		tip, tipCRC = full.watermark, full.crc
	}
	names, _, err := deltaFiles(dir)
	if err != nil {
		return 0, err
	}
	for _, name := range names {
		d, _, err := readSnapshotFile(filepath.Join(dir, name))
		if err != nil || d.kind != snapKindDelta ||
			d.parentWatermark != tip || d.parentCRC != tipCRC || d.watermark < tip {
			break
		}
		tip, tipCRC = d.watermark, d.crc
	}
	return tip, nil
}

// loadChain installs the snapshot chain at s.dir: the full snapshot if
// present, then every delta that validly extends it, in order. It
// returns the achieved watermark (the LSN below which the chain covers
// every committed record) and leaves the chain-link state (tip
// watermark/CRC, delta sequence counter) set for the next checkpoint.
//
// A delta that is torn, corrupt, or does not link to the current tip
// ends the fold: later elements cannot be applied without it. That is
// the correct reading of every crash the checkpointer can leave
// behind — a torn tail delta (crash mid-write) truncates the chain to
// its durable prefix, and a stale pre-compaction delta (crash between
// the compacted full snapshot's rename and the chain deletion) fails
// its parent-link check against the new full snapshot. Whether a
// broken chain is *fatal* is decided by the caller: Open refuses the
// directory only if the WAL's base exceeds the achieved watermark,
// i.e. records the chain should have covered are gone from both
// places.
func (s *Store) loadChain() (wal.LSN, error) {
	var tip wal.LSN
	var tipCRC uint32
	full, fullSize, err := readSnapshotFile(filepath.Join(s.dir, fullSnapshotName))
	switch {
	case errors.Is(err, os.ErrNotExist):
		// Fresh directory (or WAL-only): chain starts empty.
	case err != nil:
		// The full snapshot was fsynced before its rename, so it can
		// never be torn by a crash; corruption is real damage. Refuse
		// rather than silently recover less than was acknowledged.
		return 0, fmt.Errorf("storage: read snapshot: %w", err)
	case full.kind != snapKindFull:
		return 0, errors.New("storage: snapshot file holds a delta")
	default:
		s.installSnapshot(full)
		tip, tipCRC = full.watermark, full.crc
		s.haveFull = true
		s.fullBytes = uint64(fullSize)
	}

	names, seqs, err := deltaFiles(s.dir)
	if err != nil {
		return 0, err
	}
	for i, name := range names {
		d, dSize, err := readSnapshotFile(filepath.Join(s.dir, name))
		if err != nil || d.kind != snapKindDelta ||
			d.parentWatermark != tip || d.parentCRC != tipCRC || d.watermark < tip {
			break // end of the valid chain prefix
		}
		s.installSnapshot(d)
		tip, tipCRC = d.watermark, d.crc
		s.deltaSeq = seqs[i]
		s.deltaBytes += uint64(dSize)
	}
	s.chainWatermark, s.chainCRC = tip, tipCRC
	return tip, nil
}

// seedStats records the per-class cardinalities of one chain element;
// later elements overwrite earlier ones, so after loadChain the seed
// is the newest checkpoint's statistics. Pre-v3 elements carry none.
func (s *Store) seedStats(cards map[string]uint64) {
	if len(cards) == 0 {
		return
	}
	s.statsSeed = make(map[string]uint64, len(cards))
	for k, v := range cards {
		s.statsSeed[k] = v
	}
}

// installSnapshot applies one decoded chain element to the store.
// Runs during Open, before any concurrency, but takes the shard locks
// anyway so installCommitted's contract holds. The whole element is
// stamped with one fresh commit LSN — on-disk records carry no
// version history, so recovery rebuilds single-version chains.
func (s *Store) installSnapshot(sn *snapshot) {
	s.seedStats(sn.cards)
	if sn.nextOID > 0 {
		s.raiseNextOID(sn.nextOID - 1)
	}
	s.cmu.Lock()
	clsn := s.beginCommitLocked()
	s.cmu.Unlock()
	for _, rec := range sn.recs {
		s.raiseNextOID(rec.OID)
		sh := s.shardOf(rec.OID)
		sh.mu.Lock()
		s.installCommitted(sh, committedOwner, rec, clsn)
		sh.mu.Unlock()
	}
	s.endCommit(clsn)
}

// writeSnapshotFile durably writes sn to name inside s.dir: encode
// into a temp file, fsync it, rename into place, fsync the directory.
// midSite and renameSite name the failpoints hit after the raw write
// and after the rename. Returns the encoded size in bytes (the input
// to adaptive compaction accounting).
func (s *Store) writeSnapshotFile(sn *snapshot, name, tmpName, midSite, renameSite string) (int, error) {
	buf := encodeSnapshot(sn)
	tmp := filepath.Join(s.dir, tmpName)
	f, err := os.OpenFile(tmp, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return 0, fmt.Errorf("storage: create %s: %w", tmpName, err)
	}
	if _, err := f.Write(buf); err != nil {
		f.Close()
		return 0, fmt.Errorf("storage: write %s: %w", tmpName, err)
	}
	failpoint.Hit(midSite)
	// fsync before the rename: the rename must never install a file
	// whose bytes could still be lost by a power failure.
	if !s.noSync {
		if err := f.Sync(); err != nil {
			f.Close()
			return 0, fmt.Errorf("storage: sync %s: %w", tmpName, err)
		}
	}
	if err := f.Close(); err != nil {
		return 0, fmt.Errorf("storage: close %s: %w", tmpName, err)
	}
	if err := os.Rename(tmp, filepath.Join(s.dir, name)); err != nil {
		return 0, fmt.Errorf("storage: install %s: %w", name, err)
	}
	failpoint.Hit(renameSite)
	if !s.noSync {
		if err := syncDir(s.dir); err != nil {
			return 0, err
		}
	}
	return len(buf), nil
}

// SnapshotInfo is the decoded header of one snapshot or delta file,
// as reported by InspectSnapshotFile and `hipac-cli snapshot inspect`.
type SnapshotInfo struct {
	Path string `json:"path"`
	// Format is the magic string ("hipacsp1", "hipacsp2", or
	// "hipacsp3").
	Format string `json:"format"`
	// Kind is "full" or "delta".
	Kind      string `json:"kind"`
	Watermark uint64 `json:"watermark"`
	NextOID   uint64 `json:"nextOid"`
	// ParentWatermark/ParentCRC are the chain link (delta only).
	ParentWatermark uint64 `json:"parentWatermark,omitempty"`
	ParentCRC       uint32 `json:"parentCrc,omitempty"`
	// ClassCards is the checkpoint-time per-class extent cardinality
	// table (v3 files; planner statistics seeded at recovery).
	ClassCards map[string]uint64 `json:"classCards,omitempty"`
	Records    int               `json:"records"`
	// CRC is the file's stored trailing checksum; CRCOK reports
	// whether the body matches it.
	CRC   uint32 `json:"crc"`
	CRCOK bool   `json:"crcOk"`
}

// InspectSnapshotFile reads the snapshot or delta file at path without
// touching any store state — the offline half of `hipac-cli snapshot
// inspect`. Unlike recovery it tolerates a checksum mismatch (the
// header is still parsed best-effort and CRCOK reports false) so a
// damaged file can be diagnosed; a file whose header does not parse at
// all returns an error.
func InspectSnapshotFile(path string) (*SnapshotInfo, error) {
	buf, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	if len(buf) < len(snapshotMagic)+4 {
		return nil, errors.New("storage: snapshot too short")
	}
	info := &SnapshotInfo{Path: path}
	body, tail := buf[:len(buf)-4], buf[len(buf)-4:]
	info.CRC = binary.BigEndian.Uint32(tail)
	info.CRCOK = crc32.ChecksumIEEE(body) == info.CRC

	var kind byte
	var n int
	hasCards := false
	switch magic := string(body[:len(snapshotMagic)]); magic {
	case snapshotMagicV1:
		info.Format, info.Kind = snapshotMagicV1, "full"
		n = len(snapshotMagicV1)
	case snapshotMagicV2, snapshotMagic:
		info.Format = magic
		hasCards = magic == snapshotMagic
		n = len(magic)
		if n >= len(body) {
			return nil, errors.New("storage: snapshot missing kind")
		}
		kind = body[n]
		n++
		switch kind {
		case snapKindFull:
			info.Kind = "full"
		case snapKindDelta:
			info.Kind = "delta"
		default:
			return nil, fmt.Errorf("storage: unknown snapshot kind %d", kind)
		}
	default:
		return nil, errors.New("storage: bad snapshot magic")
	}
	watermark, m := binary.Uvarint(body[n:])
	if m <= 0 {
		return nil, errors.New("storage: bad snapshot watermark")
	}
	n += m
	info.Watermark = watermark
	nextOID, m := binary.Uvarint(body[n:])
	if m <= 0 {
		return nil, errors.New("storage: bad snapshot header")
	}
	n += m
	info.NextOID = nextOID
	if kind == snapKindDelta {
		pw, m := binary.Uvarint(body[n:])
		if m <= 0 {
			return nil, errors.New("storage: bad delta parent watermark")
		}
		n += m
		if len(body)-n < 4 {
			return nil, errors.New("storage: bad delta parent crc")
		}
		info.ParentWatermark = pw
		info.ParentCRC = binary.BigEndian.Uint32(body[n : n+4])
		n += 4
	}
	if hasCards {
		cards, m, err := decodeCards(body, n)
		if err != nil {
			return nil, err
		}
		info.ClassCards = cards
		n = m
	}
	// The record count is the next uvarint; the frames themselves are
	// not decoded (a damaged body should not block header inspection).
	cnt, m := binary.Uvarint(body[n:])
	if m <= 0 {
		return nil, errors.New("storage: bad snapshot record count")
	}
	info.Records = int(cnt)
	return info, nil
}
