package storage

import (
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"testing"

	"repro/internal/btree"
	"repro/internal/datum"
	"repro/internal/lock"
)

// topo is a parent-map Topology for tests.
type topo struct {
	mu     sync.Mutex
	parent map[lock.TxnID]lock.TxnID
}

func newTopo() *topo { return &topo{parent: map[lock.TxnID]lock.TxnID{}} }

func (f *topo) setParent(child, parent lock.TxnID) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.parent[child] = parent
}

func (f *topo) IsAncestorOrSelf(anc, desc lock.TxnID) bool {
	f.mu.Lock()
	defer f.mu.Unlock()
	for {
		if anc == desc {
			return true
		}
		p, ok := f.parent[desc]
		if !ok {
			return false
		}
		desc = p
	}
}

func ephemeral(t *testing.T) (*Store, *topo) {
	t.Helper()
	tp := newTopo()
	s, err := Open(tp, Options{})
	if err != nil {
		t.Fatal(err)
	}
	return s, tp
}

func rec(oid datum.OID, class string, attrs map[string]datum.Value) Record {
	return Record{OID: oid, Class: class, Attrs: attrs}
}

func TestPutGetOwnWrites(t *testing.T) {
	s, _ := ephemeral(t)
	oid := s.AllocOID()
	s.Put(5, rec(oid, "Stock", map[string]datum.Value{"price": datum.Float(50)}))
	got, ok := s.Get(5, oid)
	if !ok || got.Attrs["price"].AsFloat() != 50 {
		t.Fatalf("own write invisible: %v %v", got, ok)
	}
	// Unrelated transaction must not see it.
	if _, ok := s.Get(9, oid); ok {
		t.Fatal("uncommitted write visible to stranger")
	}
}

func TestChildSeesParentWrites(t *testing.T) {
	s, tp := ephemeral(t)
	tp.setParent(2, 1)
	oid := s.AllocOID()
	s.Put(1, rec(oid, "C", map[string]datum.Value{"v": datum.Int(1)}))
	got, ok := s.Get(2, oid)
	if !ok || got.Attrs["v"].AsInt() != 1 {
		t.Fatal("child cannot see ancestor write")
	}
	// Child overwrite shadows for the child only...
	s.Put(2, rec(oid, "C", map[string]datum.Value{"v": datum.Int(2)}))
	if got, _ := s.Get(2, oid); got.Attrs["v"].AsInt() != 2 {
		t.Fatal("child does not see own overwrite")
	}
	if got, _ := s.Get(1, oid); got.Attrs["v"].AsInt() != 1 {
		t.Fatal("parent saw child's uncommitted overwrite")
	}
	// ...until nested commit folds it up.
	if err := s.CommitNested(2, 1); err != nil {
		t.Fatal(err)
	}
	if got, _ := s.Get(1, oid); got.Attrs["v"].AsInt() != 2 {
		t.Fatal("nested commit did not fold into parent")
	}
}

func TestAbortDiscards(t *testing.T) {
	s, _ := ephemeral(t)
	oid := s.AllocOID()
	s.Put(1, rec(oid, "C", map[string]datum.Value{"v": datum.Int(1)}))
	s.CommitTop(1)
	s.Put(2, rec(oid, "C", map[string]datum.Value{"v": datum.Int(99)}))
	s.AbortTxn(2)
	got, ok := s.Get(3, oid)
	if !ok || got.Attrs["v"].AsInt() != 1 {
		t.Fatalf("abort did not restore committed state: %v", got)
	}
}

func TestAbortOfCreatorRemovesObject(t *testing.T) {
	s, _ := ephemeral(t)
	oid := s.AllocOID()
	s.Put(1, rec(oid, "C", map[string]datum.Value{"v": datum.Int(1)}))
	s.AbortTxn(1)
	if _, ok := s.Get(2, oid); ok {
		t.Fatal("aborted create still visible")
	}
	count := 0
	s.ScanClass(2, "C", func(Record) bool { count++; return true })
	if count != 0 {
		t.Fatal("aborted create left extent entry")
	}
}

func TestCommitTopMakesVisible(t *testing.T) {
	s, _ := ephemeral(t)
	oid := s.AllocOID()
	s.Put(1, rec(oid, "C", map[string]datum.Value{"v": datum.Int(7)}))
	if err := s.CommitTop(1); err != nil {
		t.Fatal(err)
	}
	got, ok := s.Get(42, oid)
	if !ok || got.Attrs["v"].AsInt() != 7 {
		t.Fatal("committed write not visible to new txn")
	}
}

func TestDeleteTombstone(t *testing.T) {
	s, _ := ephemeral(t)
	oid := s.AllocOID()
	s.Put(1, rec(oid, "C", map[string]datum.Value{"v": datum.Int(1)}))
	s.CommitTop(1)
	s.Put(2, Record{OID: oid, Class: "C", Deleted: true})
	// Deleter sees it gone; others still see it.
	if _, ok := s.Get(2, oid); ok {
		t.Fatal("deleter still sees object")
	}
	if _, ok := s.Get(3, oid); !ok {
		t.Fatal("uncommitted delete visible to stranger")
	}
	s.CommitTop(2)
	if _, ok := s.Get(3, oid); ok {
		t.Fatal("object survived committed delete")
	}
}

func TestScanClassVisibilityAndOrder(t *testing.T) {
	s, _ := ephemeral(t)
	var oids []datum.OID
	for i := 0; i < 5; i++ {
		oid := s.AllocOID()
		oids = append(oids, oid)
		s.Put(1, rec(oid, "C", map[string]datum.Value{"i": datum.Int(int64(i))}))
	}
	s.CommitTop(1)
	// Txn 2 deletes one and adds one (uncommitted).
	s.Put(2, Record{OID: oids[1], Class: "C", Deleted: true})
	newOID := s.AllocOID()
	s.Put(2, rec(newOID, "C", map[string]datum.Value{"i": datum.Int(100)}))

	collect := func(tx lock.TxnID) []int64 {
		var out []int64
		s.ScanClass(tx, "C", func(r Record) bool {
			out = append(out, r.Attrs["i"].AsInt())
			return true
		})
		return out
	}
	if got := collect(2); fmt.Sprint(got) != "[0 2 3 4 100]" {
		t.Fatalf("writer scan = %v", got)
	}
	if got := collect(3); fmt.Sprint(got) != "[0 1 2 3 4]" {
		t.Fatalf("stranger scan = %v", got)
	}
}

func TestScanEarlyStop(t *testing.T) {
	s, _ := ephemeral(t)
	for i := 0; i < 10; i++ {
		s.Put(1, rec(s.AllocOID(), "C", map[string]datum.Value{"i": datum.Int(int64(i))}))
	}
	s.CommitTop(1)
	n := 0
	s.ScanClass(2, "C", func(Record) bool { n++; return n < 3 })
	if n != 3 {
		t.Fatalf("visited %d", n)
	}
}

func TestIndexLookupCommitted(t *testing.T) {
	s, _ := ephemeral(t)
	s.RegisterIndex("Stock", "price")
	var oids []datum.OID
	for i := 0; i < 10; i++ {
		oid := s.AllocOID()
		oids = append(oids, oid)
		s.Put(1, rec(oid, "Stock", map[string]datum.Value{"price": datum.Float(float64(i * 10))}))
	}
	s.CommitTop(1)
	lo := btree.Include(datum.Float(30).Key())
	hi := btree.Include(datum.Float(50).Key())
	got := s.IndexCandidates(2, "Stock", "price", lo, hi)
	if len(got) != 3 {
		t.Fatalf("candidates = %v", got)
	}
}

func TestIndexSeesOwnUncommittedWrites(t *testing.T) {
	s, _ := ephemeral(t)
	s.RegisterIndex("Stock", "price")
	oid := s.AllocOID()
	s.Put(1, rec(oid, "Stock", map[string]datum.Value{"price": datum.Float(100)}))
	s.CommitTop(1)
	// Txn 2 moves the price out of the committed index range; index
	// candidates must still include the object for txn 2 (it will be
	// re-filtered by the caller against the visible record).
	s.Put(2, rec(oid, "Stock", map[string]datum.Value{"price": datum.Float(5)}))
	lo := btree.Include(datum.Float(0).Key())
	hi := btree.Include(datum.Float(10).Key())
	got := s.IndexCandidates(2, "Stock", "price", lo, hi)
	if len(got) != 1 || got[0] != oid {
		t.Fatalf("candidates for writer = %v", got)
	}
	// A stranger gets only the committed view (price 100, not in range).
	if got := s.IndexCandidates(3, "Stock", "price", lo, hi); len(got) != 0 {
		t.Fatalf("candidates for stranger = %v", got)
	}
}

func TestIndexMaintainedAcrossCommits(t *testing.T) {
	s, _ := ephemeral(t)
	s.RegisterIndex("Stock", "price")
	oid := s.AllocOID()
	s.Put(1, rec(oid, "Stock", map[string]datum.Value{"price": datum.Float(10)}))
	s.CommitTop(1)
	s.Put(2, rec(oid, "Stock", map[string]datum.Value{"price": datum.Float(90)}))
	s.CommitTop(2)
	inRange := func(lo, hi float64) int {
		c := s.IndexCandidates(9, "Stock", "price",
			btree.Include(datum.Float(lo).Key()), btree.Include(datum.Float(hi).Key()))
		return len(c)
	}
	// Installs defer index-entry removal to the version GC (an old
	// snapshot may still probe for the old value); until it runs the
	// old entry is a permitted false positive, afterwards it is gone.
	s.VersionGC()
	if inRange(0, 20) != 0 {
		t.Fatal("old index entry not removed by version GC")
	}
	if inRange(80, 100) != 1 {
		t.Fatal("new index entry missing")
	}
	// Delete removes the entry (again after the GC collapses the
	// tombstoned chain).
	s.Put(3, Record{OID: oid, Class: "Stock", Deleted: true})
	s.CommitTop(3)
	s.VersionGC()
	if inRange(80, 100) != 0 {
		t.Fatal("index entry survived delete")
	}
}

func TestRegisterIndexBuildsFromExisting(t *testing.T) {
	s, _ := ephemeral(t)
	oid := s.AllocOID()
	s.Put(1, rec(oid, "Stock", map[string]datum.Value{"price": datum.Float(42)}))
	s.CommitTop(1)
	s.RegisterIndex("Stock", "price") // after the data exists
	got := s.IndexCandidates(2, "Stock", "price",
		btree.Include(datum.Float(42).Key()), btree.Include(datum.Float(42).Key()))
	if len(got) != 1 {
		t.Fatalf("late-built index missed existing row: %v", got)
	}
	if !s.HasIndex("Stock", "price") || s.HasIndex("Stock", "symbol") {
		t.Fatal("HasIndex wrong")
	}
}

func TestModSeqAdvances(t *testing.T) {
	s, _ := ephemeral(t)
	before := s.ModSeq("C")
	s.Put(1, rec(s.AllocOID(), "C", nil))
	if s.ModSeq("C") == before {
		t.Fatal("ModSeq must advance on Put")
	}
	if s.ModSeq("Other") != 0 {
		t.Fatal("unrelated class bumped")
	}
}

func TestDirtyOIDs(t *testing.T) {
	s, _ := ephemeral(t)
	a, b := s.AllocOID(), s.AllocOID()
	s.Put(1, rec(b, "C", nil))
	s.Put(1, rec(a, "C", nil))
	got := s.DirtyOIDs(1)
	if len(got) != 2 || got[0] != a || got[1] != b {
		t.Fatalf("DirtyOIDs = %v", got)
	}
	s.CommitTop(1)
	if len(s.DirtyOIDs(1)) != 0 {
		t.Fatal("dirty set survived commit")
	}
}

func TestMultiLevelFold(t *testing.T) {
	// grandchild -> child -> parent -> committed
	s, tp := ephemeral(t)
	tp.setParent(2, 1)
	tp.setParent(3, 2)
	oid := s.AllocOID()
	s.Put(3, rec(oid, "C", map[string]datum.Value{"v": datum.Int(3)}))
	s.CommitNested(3, 2)
	if got, ok := s.Get(2, oid); !ok || got.Attrs["v"].AsInt() != 3 {
		t.Fatal("fold to child failed")
	}
	if _, ok := s.Get(1, oid); ok {
		t.Fatal("parent sees grandchild's fold prematurely")
	}
	s.CommitNested(2, 1)
	if got, ok := s.Get(1, oid); !ok || got.Attrs["v"].AsInt() != 3 {
		t.Fatal("fold to parent failed")
	}
	s.CommitTop(1)
	if got, ok := s.Get(77, oid); !ok || got.Attrs["v"].AsInt() != 3 {
		t.Fatal("final commit failed")
	}
}

func TestNestedAbortAfterChildCommit(t *testing.T) {
	// Child commits into parent; parent aborts; everything vanishes.
	s, tp := ephemeral(t)
	tp.setParent(2, 1)
	oid := s.AllocOID()
	s.Put(2, rec(oid, "C", map[string]datum.Value{"v": datum.Int(9)}))
	s.CommitNested(2, 1)
	s.AbortTxn(1)
	if _, ok := s.Get(5, oid); ok {
		t.Fatal("parent abort did not discard child's committed effects")
	}
}

func TestRecoveryFromWAL(t *testing.T) {
	dir := t.TempDir()
	tp := newTopo()
	s, err := Open(tp, Options{Dir: dir, NoSync: true})
	if err != nil {
		t.Fatal(err)
	}
	oid := s.AllocOID()
	s.Put(1, rec(oid, "C", map[string]datum.Value{"v": datum.Int(11)}))
	s.CommitTop(1)
	oid2 := s.AllocOID()
	s.Put(2, rec(oid2, "C", map[string]datum.Value{"v": datum.Int(22)}))
	// Txn 2 never commits: crash now.
	s.Close()

	s2, err := Open(newTopo(), Options{Dir: dir, NoSync: true})
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if got, ok := s2.Get(9, oid); !ok || got.Attrs["v"].AsInt() != 11 {
		t.Fatal("committed record lost in recovery")
	}
	if _, ok := s2.Get(9, oid2); ok {
		t.Fatal("uncommitted record resurrected by recovery")
	}
	// OIDs must not be reused after recovery.
	if next := s2.AllocOID(); next <= oid {
		t.Fatalf("AllocOID after recovery = %v, must exceed %v", next, oid)
	}
}

func TestRecoveryOfDelete(t *testing.T) {
	dir := t.TempDir()
	s, _ := Open(newTopo(), Options{Dir: dir, NoSync: true})
	oid := s.AllocOID()
	s.Put(1, rec(oid, "C", map[string]datum.Value{"v": datum.Int(1)}))
	s.CommitTop(1)
	s.Put(2, Record{OID: oid, Class: "C", Deleted: true})
	s.CommitTop(2)
	s.Close()

	s2, _ := Open(newTopo(), Options{Dir: dir, NoSync: true})
	defer s2.Close()
	if _, ok := s2.Get(9, oid); ok {
		t.Fatal("deleted object resurrected by recovery")
	}
}

func TestCheckpointAndRecovery(t *testing.T) {
	dir := t.TempDir()
	s, _ := Open(newTopo(), Options{Dir: dir, NoSync: true})
	var oids []datum.OID
	for i := 0; i < 5; i++ {
		oid := s.AllocOID()
		oids = append(oids, oid)
		s.Put(lock.TxnID(i+1), rec(oid, "C", map[string]datum.Value{"i": datum.Int(int64(i))}))
		s.CommitTop(lock.TxnID(i + 1))
	}
	if _, err := s.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	// More commits after the checkpoint land in the fresh WAL.
	oid := s.AllocOID()
	s.Put(9, rec(oid, "C", map[string]datum.Value{"i": datum.Int(99)}))
	s.CommitTop(9)
	s.Close()

	s2, err := Open(newTopo(), Options{Dir: dir, NoSync: true})
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	count := 0
	s2.ScanClass(1, "C", func(Record) bool { count++; return true })
	if count != 6 {
		t.Fatalf("recovered %d objects, want 6", count)
	}
	if got, ok := s2.Get(1, oid); !ok || got.Attrs["i"].AsInt() != 99 {
		t.Fatal("post-checkpoint commit lost")
	}
}

func TestStatsCounters(t *testing.T) {
	s, _ := ephemeral(t)
	oid := s.AllocOID()
	s.Put(1, rec(oid, "C", nil))
	s.Get(1, oid)
	s.ScanClass(1, "C", func(Record) bool { return true })
	s.CommitTop(1)
	st := s.Stats()
	if st.Puts != 1 || st.Gets != 1 || st.Scans != 1 || st.TopCommits != 1 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestConcurrentReadersAndWriters(t *testing.T) {
	s, _ := ephemeral(t)
	// Seed committed data.
	var oids []datum.OID
	for i := 0; i < 20; i++ {
		oid := s.AllocOID()
		oids = append(oids, oid)
		s.Put(1, rec(oid, "C", map[string]datum.Value{"v": datum.Int(0)}))
	}
	s.CommitTop(1)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			tx := lock.TxnID(100 + w)
			for i := 0; i < 200; i++ {
				oid := oids[(w*7+i)%len(oids)]
				if i%3 == 0 {
					s.Put(tx, rec(oid, "C", map[string]datum.Value{"v": datum.Int(int64(i))}))
				} else {
					s.Get(tx, oid)
				}
			}
			s.AbortTxn(tx)
		}(w)
	}
	wg.Wait()
	// All writers aborted; committed state intact.
	count := 0
	s.ScanClass(999, "C", func(r Record) bool {
		if r.Attrs["v"].AsInt() != 0 {
			t.Error("committed value changed by aborted writer")
		}
		count++
		return true
	})
	if count != len(oids) {
		t.Fatalf("scan found %d, want %d", count, len(oids))
	}
}

func TestConcurrentCommitTopGroupFlush(t *testing.T) {
	// Concurrent top-level committers on disjoint objects: every
	// commit must be durable (survive reopen) and the WAL's group
	// flush must not issue more fsyncs than commits.
	dir := t.TempDir()
	tp := newTopo()
	s, err := Open(tp, Options{Dir: dir}) // fsync enabled
	if err != nil {
		t.Fatal(err)
	}
	const writers, each = 8, 20
	oids := make([][]datum.OID, writers)
	for w := range oids {
		oids[w] = make([]datum.OID, each)
		for i := range oids[w] {
			oids[w][i] = s.AllocOID()
		}
	}
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < each; i++ {
				tx := lock.TxnID(1 + w*each + i)
				s.Put(tx, rec(oids[w][i], "C", map[string]datum.Value{
					"w": datum.Int(int64(w)), "i": datum.Int(int64(i))}))
				if err := s.CommitTop(tx); err != nil {
					t.Error(err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	st := s.Stats()
	if st.TopCommits != writers*each {
		t.Fatalf("TopCommits = %d, want %d", st.TopCommits, writers*each)
	}
	if st.WALFsyncs == 0 || st.WALFsyncs > st.WALSyncRequests {
		t.Fatalf("WALFsyncs = %d, WALSyncRequests = %d", st.WALFsyncs, st.WALSyncRequests)
	}
	s.Close()

	s2, err := Open(newTopo(), Options{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	for w := 0; w < writers; w++ {
		for i := 0; i < each; i++ {
			got, ok := s2.Get(999, oids[w][i])
			if !ok || got.Attrs["w"].AsInt() != int64(w) || got.Attrs["i"].AsInt() != int64(i) {
				t.Fatalf("commit by writer %d iter %d lost in recovery", w, i)
			}
		}
	}
}

func TestTornTailAfterGroupFlush(t *testing.T) {
	// Crash with a torn record after a group flush: recovery must
	// yield exactly the committed prefix — every acknowledged commit
	// present, the torn tail discarded.
	dir := t.TempDir()
	s, err := Open(newTopo(), Options{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	const writers, each = 4, 10
	oids := make([][]datum.OID, writers)
	for w := range oids {
		oids[w] = make([]datum.OID, each)
		for i := range oids[w] {
			oids[w][i] = s.AllocOID()
		}
	}
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < each; i++ {
				tx := lock.TxnID(1 + w*each + i)
				s.Put(tx, rec(oids[w][i], "C", map[string]datum.Value{"v": datum.Int(int64(i))}))
				if err := s.CommitTop(tx); err != nil {
					t.Error(err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	s.Close()

	// Simulate a crash mid-append: a half-written frame at the tail.
	walPath := filepath.Join(dir, "wal")
	f, err := os.OpenFile(walPath, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	torn := []byte{0x00, 0x00, 0x01, 0x00, 0xde, 0xad} // claims 256 bytes, has none
	if _, err := f.Write(torn); err != nil {
		t.Fatal(err)
	}
	f.Close()

	s2, err := Open(newTopo(), Options{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	count := 0
	s2.ScanClass(999, "C", func(Record) bool { count++; return true })
	if count != writers*each {
		t.Fatalf("recovered %d objects, want exactly the committed prefix %d", count, writers*each)
	}
}

// TestCheckpointConcurrentWithCommits hammers the fuzzy checkpointer:
// commits never pause while checkpoints run, yet after a reopen every
// committed value must be present — whether it arrived via the
// snapshot or via the surviving WAL suffix. This is the deterministic
// (non-sampled) companion to the crash-injection matrix and catches
// any watermark that runs ahead of an in-flight commit.
func TestCheckpointConcurrentWithCommits(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(newTopo(), Options{Dir: dir, NoSync: true})
	if err != nil {
		t.Fatal(err)
	}

	const writers = 8
	const each = 30
	stop := make(chan struct{})
	ckptDone := make(chan struct{})
	var checkpoints int
	go func() {
		defer close(ckptDone)
		for {
			select {
			case <-stop:
				return
			default:
			}
			if _, err := s.Checkpoint(); err != nil {
				t.Error(err)
				return
			}
			checkpoints++
		}
	}()

	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for v := int64(1); v <= each; v++ {
				oid := datum.OID(uint64(w)*each + uint64(v))
				tx := lock.TxnID(uint64(w+1)*1_000_000 + uint64(v))
				s.Put(tx, rec(oid, "W", map[string]datum.Value{"v": datum.Int(v)}))
				if err := s.CommitTop(tx); err != nil {
					t.Error(err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	close(stop)
	<-ckptDone
	if checkpoints == 0 {
		t.Fatal("checkpointer never ran")
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if t.Failed() {
		return
	}

	s2, err := Open(newTopo(), Options{Dir: dir, NoSync: true})
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	for w := 0; w < writers; w++ {
		for v := int64(1); v <= each; v++ {
			oid := datum.OID(uint64(w)*each + uint64(v))
			got, ok := s2.Get(1, oid)
			if !ok || got.Attrs["v"].AsInt() != v {
				t.Fatalf("writer %d object %d: committed value lost across checkpointed recovery", w, oid)
			}
		}
	}
}
