package storage

import (
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/datum"
	"repro/internal/failpoint"
	"repro/internal/lock"
)

// crashCapture is the on-disk state of a store "at the instant of a
// crash", plus the workload model needed to judge recovery. The test
// copies files rather than killing a process: every durability
// decision (what is in which file when) is identical, and the copy is
// taken at a failpoint inside the operation under test.
type crashCapture struct {
	wal, snapshot []byte
	deltas        map[string][]byte
	// acked is each object's newest acknowledged value BEFORE the
	// files were read; attempted is each object's newest attempted
	// value AFTER. Together they bracket the recovered state:
	// acked[oid] <= recovered[oid] <= attempted[oid].
	acked, attempted map[datum.OID]int64
}

// crashSites are the failpoints the matrix samples: the WAL append
// and fsync paths, the three danger windows of the full-snapshot
// path (written but not fsynced/renamed; renamed but directory not
// synced; everything durable but the WAL not yet truncated), and the
// delta-chain windows (mid-delta write, delta renamed but WAL not
// truncated, full snapshot renamed but stale deltas not yet removed).
var crashSites = []string{
	"wal.afterAppend",
	"wal.afterFsync",
	"storage.midSnapshot",
	"storage.afterRename",
	"storage.beforeTruncate",
	"storage.midDelta",
	"storage.afterDeltaRename",
	"storage.midCompaction",
}

// ckptSite reports whether a site fires at most once per checkpoint
// (so its hit budget must stay small to bound wall-clock time).
func ckptSite(site string) bool {
	switch site {
	case "storage.midSnapshot", "storage.afterRename", "storage.beforeTruncate",
		"storage.midDelta", "storage.afterDeltaRename", "storage.midCompaction":
		return true
	}
	return false
}

// TestCrashInjectionMatrix samples ~50 crash points from a seeded
// PRNG. Each round runs concurrent committers plus an active fuzzy
// checkpointer against a durable store, "crashes" at the Nth hit of a
// chosen failpoint, reopens the captured state, and asserts no
// acknowledged commit is lost and no value appears that was never
// written.
func TestCrashInjectionMatrix(t *testing.T) {
	rounds := 50
	if testing.Short() {
		rounds = 10
	}
	rng := rand.New(rand.NewSource(0x41c71bc))
	for r := 0; r < rounds; r++ {
		site := crashSites[rng.Intn(len(crashSites))]
		// WAL sites fire on every commit (cheap); the checkpoint sites
		// need a full multi-fsync checkpoint per hit, so keep their
		// counts low to bound wall-clock time.
		hits := 1 + rng.Intn(10)
		if ckptSite(site) {
			hits = 1 + rng.Intn(3)
		}
		// Vary the chain shape: mostly-delta chains, frequent
		// compactions, and (except for the compaction site, which
		// needs compactions to fire at all) chains that never compact.
		compactEvery := []int{2, 4, 1000}[rng.Intn(3)]
		if site == "storage.midCompaction" && compactEvery > 4 {
			compactEvery = 2
		}
		t.Run(fmt.Sprintf("r%02d-%s-hit%d-k%d", r, site, hits, compactEvery), func(t *testing.T) {
			runCrashRound(t, site, hits, compactEvery)
		})
	}
}

func runCrashRound(t *testing.T, site string, hits, compactEvery int) {
	dir := t.TempDir()
	s, err := Open(newTopo(), Options{Dir: dir, CompactEvery: compactEvery})
	if err != nil {
		t.Fatal(err)
	}

	const writers = 4
	var mu sync.Mutex
	acked := map[datum.OID]int64{}
	attempted := map[datum.OID]int64{}
	var cap *crashCapture
	var capOnce sync.Once
	captured := make(chan struct{})

	// doCapture freezes "the crash". Read order is load-bearing:
	// acked before the files (a commit acknowledged before the copy
	// began is certainly on disk in the copy — one-sided lower bound),
	// the WAL before the chain files (chain coverage only grows, and
	// the checkpointer truncates the WAL only after the covering
	// element's rename, so a later chain always covers an earlier
	// WAL's base), deltas before the full snapshot (a compaction
	// racing the copy then yields a *newer* full snapshot whose
	// coverage subsumes the stale deltas — which its CRC link makes
	// recovery ignore — never an older one missing the deltas'
	// coverage), and attempted after everything (an upper bound on any
	// value the copied files can hold). It runs on whatever goroutine
	// hit the failpoint — possibly holding WAL or checkpoint internals
	// — so it must not call back into the store.
	doCapture := func() {
		capOnce.Do(func() {
			c := &crashCapture{acked: map[datum.OID]int64{}, attempted: map[datum.OID]int64{},
				deltas: map[string][]byte{}}
			mu.Lock()
			for k, v := range acked {
				c.acked[k] = v
			}
			mu.Unlock()
			c.wal, _ = os.ReadFile(filepath.Join(dir, "wal"))
			if names, _, err := deltaFiles(dir); err == nil {
				for _, name := range names {
					if buf, err := os.ReadFile(filepath.Join(dir, name)); err == nil {
						c.deltas[name] = buf
					}
				}
			}
			c.snapshot, _ = os.ReadFile(filepath.Join(dir, "snapshot"))
			mu.Lock()
			for k, v := range attempted {
				c.attempted[k] = v
			}
			mu.Unlock()
			cap = c
			close(captured)
		})
	}
	var hitCount atomic.Int32
	failpoint.Set(site, func() {
		if int(hitCount.Add(1)) == hits {
			doCapture()
		}
	})
	defer failpoint.ClearAll()

	stop := make(chan struct{})
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			oid := datum.OID(w + 1)
			for v := int64(1); ; v++ {
				select {
				case <-stop:
					return
				default:
				}
				mu.Lock()
				attempted[oid] = v
				mu.Unlock()
				tx := lock.TxnID(uint64(w+1)*1_000_000 + uint64(v))
				s.Put(tx, rec(oid, "K", map[string]datum.Value{"v": datum.Int(v)}))
				if err := s.CommitTop(tx); err != nil {
					t.Error(err)
					return
				}
				mu.Lock()
				acked[oid] = v
				mu.Unlock()
			}
		}(w)
	}
	ckptDone := make(chan struct{})
	go func() {
		defer close(ckptDone)
		for {
			select {
			case <-stop:
				return
			default:
			}
			if _, err := s.Checkpoint(); err != nil {
				t.Error(err)
				return
			}
		}
	}()

	select {
	case <-captured:
	case <-time.After(8 * time.Second):
		// The site never accumulated enough hits under this workload;
		// crash at an arbitrary instant instead — still a valid sample.
		doCapture()
	}
	close(stop)
	wg.Wait()
	<-ckptDone
	failpoint.ClearAll()
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if t.Failed() {
		return
	}

	// "Reboot" from the captured state.
	cdir := t.TempDir()
	if cap.wal != nil {
		if err := os.WriteFile(filepath.Join(cdir, "wal"), cap.wal, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	if cap.snapshot != nil {
		if err := os.WriteFile(filepath.Join(cdir, "snapshot"), cap.snapshot, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	for name, buf := range cap.deltas {
		if err := os.WriteFile(filepath.Join(cdir, name), buf, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	s2, err := Open(newTopo(), Options{Dir: cdir, NoSync: true})
	if err != nil {
		t.Fatalf("recovery failed: %v", err)
	}
	defer s2.Close()

	reader := lock.TxnID(1)
	for oid, want := range cap.acked {
		got, ok := s2.Get(reader, oid)
		if !ok {
			t.Errorf("object %d: acknowledged commit (v=%d) lost", oid, want)
			continue
		}
		v := got.Attrs["v"].AsInt()
		if v < want {
			t.Errorf("object %d: recovered v=%d older than acknowledged v=%d", oid, v, want)
		}
		if max := cap.attempted[oid]; v > max {
			t.Errorf("object %d: recovered v=%d was never written (max attempted %d)", oid, v, max)
		}
	}
	// Nothing recovered may exceed what was ever attempted.
	s2.ScanClass(reader, "K", func(r Record) bool {
		if max, ok := cap.attempted[r.OID]; !ok || r.Attrs["v"].AsInt() > max {
			t.Errorf("object %d: phantom recovered value %d", r.OID, r.Attrs["v"].AsInt())
		}
		return true
	})
}

// TestDeltaChainCrashSites drives each delta-chain danger window
// directly, with enough checkpoints first that the crash lands on a
// chain of >= 3 deltas while committers are running: mid-delta write
// (tmp exists, rename pending), delta renamed but WAL not truncated,
// and mid-compaction (new full snapshot renamed, stale deltas still
// on disk). Recovery must still satisfy the acknowledged-commit
// bracket.
func TestDeltaChainCrashSites(t *testing.T) {
	cases := []struct {
		site               string
		hits, compactEvery int
	}{
		// The chain never compacts; the fifth delta write crashes with
		// deltas 1-4 durable.
		{"storage.midDelta", 5, 1000},
		{"storage.afterDeltaRename", 5, 1000},
		// Hit 1 is the initial full snapshot; hit 2 is the compaction
		// after deltas 1-3, crashing before their removal.
		{"storage.midCompaction", 2, 3},
	}
	for _, c := range cases {
		t.Run(c.site, func(t *testing.T) {
			runCrashRound(t, c.site, c.hits, c.compactEvery)
		})
	}
}

// TestSnapshotCrashBetweenWriteAndRename is the regression test for
// the original durability bug: Checkpoint wrote snapshot.tmp and
// renamed it with no fsync, then truncated the whole WAL — a crash in
// between lost everything. Now the crash window must be harmless: the
// WAL is untouched until the snapshot is durably in place, and
// recovery ignores snapshot.tmp.
func TestSnapshotCrashBetweenWriteAndRename(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(newTopo(), Options{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	want := map[datum.OID]int64{}
	for i := 0; i < 5; i++ {
		oid := s.AllocOID()
		v := int64(i * 10)
		s.Put(lock.TxnID(i+1), rec(oid, "C", map[string]datum.Value{"v": datum.Int(v)}))
		if err := s.CommitTop(lock.TxnID(i + 1)); err != nil {
			t.Fatal(err)
		}
		want[oid] = v
	}

	var walCopy, snapCopy, tmpCopy []byte
	failpoint.Set("storage.midSnapshot", func() {
		// Crash after the tmp write, before fsync and rename.
		walCopy, _ = os.ReadFile(filepath.Join(dir, "wal"))
		snapCopy, _ = os.ReadFile(filepath.Join(dir, "snapshot"))
		tmpCopy, _ = os.ReadFile(filepath.Join(dir, "snapshot.tmp"))
	})
	defer failpoint.ClearAll()
	if _, err := s.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	failpoint.ClearAll()
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if snapCopy != nil {
		t.Fatal("snapshot renamed into place before the failpoint")
	}
	if tmpCopy == nil {
		t.Fatal("snapshot.tmp missing at the failpoint")
	}

	cdir := t.TempDir()
	if err := os.WriteFile(filepath.Join(cdir, "wal"), walCopy, 0o644); err != nil {
		t.Fatal(err)
	}
	// The unfsynced tmp would be garbage after a real power failure;
	// model the worst case by leaving only half of it.
	if err := os.WriteFile(filepath.Join(cdir, "snapshot.tmp"), tmpCopy[:len(tmpCopy)/2], 0o644); err != nil {
		t.Fatal(err)
	}
	s2, err := Open(newTopo(), Options{Dir: cdir, NoSync: true})
	if err != nil {
		t.Fatalf("recovery failed: %v", err)
	}
	defer s2.Close()
	for oid, v := range want {
		got, ok := s2.Get(1, oid)
		if !ok || got.Attrs["v"].AsInt() != v {
			t.Fatalf("object %d lost or wrong after mid-snapshot crash", oid)
		}
	}
}

// TestCheckpointedSnapshotIsTaggedAndVerifiable loads the snapshot
// file a completed checkpoint left behind and checks its watermark
// matches the WAL base: the recovery contract (base <= watermark) at
// its tightest.
func TestCheckpointedSnapshotIsTaggedAndVerifiable(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(newTopo(), Options{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		oid := s.AllocOID()
		s.Put(lock.TxnID(i+1), rec(oid, "C", map[string]datum.Value{"v": datum.Int(int64(i))}))
		if err := s.CommitTop(lock.TxnID(i + 1)); err != nil {
			t.Fatal(err)
		}
	}
	res, err := s.Checkpoint()
	if err != nil {
		t.Fatal(err)
	}
	if res.Reclaimed == 0 {
		t.Fatal("checkpoint reclaimed no WAL bytes")
	}
	if res.Kind != "full" || res.Records != 3 {
		t.Fatalf("first checkpoint = %+v, want full with 3 records", res)
	}
	base := s.log.Base()
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	buf, err := os.ReadFile(filepath.Join(dir, "snapshot"))
	if err != nil {
		t.Fatal(err)
	}
	sn, err := decodeSnapshot(buf)
	if err != nil {
		t.Fatalf("snapshot does not verify: %v", err)
	}
	if sn.kind != snapKindFull {
		t.Fatalf("snapshot kind = %d, want full", sn.kind)
	}
	if sn.watermark != base {
		t.Fatalf("snapshot watermark %d != wal base %d", sn.watermark, base)
	}
	if len(sn.recs) != 3 || sn.nextOID != 4 {
		t.Fatalf("snapshot holds %d recs, nextOID %d", len(sn.recs), sn.nextOID)
	}
	st := s.Stats()
	if st.Checkpoints != 1 || st.FullCheckpoints != 1 || st.WALBytesReclaimed != res.Reclaimed {
		t.Fatalf("stats: %d checkpoints (%d full), %d reclaimed",
			st.Checkpoints, st.FullCheckpoints, st.WALBytesReclaimed)
	}
}
