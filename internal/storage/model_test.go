package storage

// Model-based randomized test: drive the versioned heap with a random
// single-threaded schedule of nested transactions (begin-child, put,
// delete, commit, abort) and compare every read against a simple
// layered-map model.

import (
	"bytes"
	"fmt"
	"math/rand"
	"sort"
	"testing"

	"repro/internal/datum"
	"repro/internal/lock"
)

// modelTxn mirrors one transaction's uncommitted view in the model.
type modelTxn struct {
	id     lock.TxnID
	parent *modelTxn
	writes map[datum.OID]*int64 // nil pointer = tombstone
}

type model struct {
	committed map[datum.OID]int64
}

// lookup resolves visibility exactly as the spec says: own writes,
// then ancestors', then committed.
func (m *model) lookup(t *modelTxn, oid datum.OID) (int64, bool) {
	for cur := t; cur != nil; cur = cur.parent {
		if v, ok := cur.writes[oid]; ok {
			if v == nil {
				return 0, false
			}
			return *v, true
		}
	}
	v, ok := m.committed[oid]
	return v, ok
}

func (m *model) commit(t *modelTxn) {
	if t.parent == nil {
		for oid, v := range t.writes {
			if v == nil {
				delete(m.committed, oid)
			} else {
				m.committed[oid] = *v
			}
		}
		return
	}
	for oid, v := range t.writes {
		t.parent.writes[oid] = v
	}
}

func TestStorageAgainstModel(t *testing.T) {
	topo := newTopo()
	s, err := Open(topo, Options{})
	if err != nil {
		t.Fatal(err)
	}
	mdl := &model{committed: map[datum.OID]int64{}}

	rng := rand.New(rand.NewSource(99))
	var nextTxn lock.TxnID = 1
	var oidPool []datum.OID
	for i := 0; i < 10; i++ {
		oidPool = append(oidPool, s.AllocOID())
	}

	// Active transaction stack (single-threaded schedule: we always
	// operate on the innermost active transaction — exactly the
	// parent-suspension discipline).
	var stack []*modelTxn

	begin := func() *modelTxn {
		var parent *modelTxn
		if len(stack) > 0 {
			parent = stack[len(stack)-1]
		}
		tx := &modelTxn{id: nextTxn, parent: parent, writes: map[datum.OID]*int64{}}
		if parent != nil {
			topo.setParent(tx.id, parent.id)
		}
		nextTxn++
		stack = append(stack, tx)
		return tx
	}

	finish := func(commit bool) {
		tx := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if commit {
			mdl.commit(tx)
			if tx.parent == nil {
				if err := s.CommitTop(tx.id); err != nil {
					t.Fatal(err)
				}
			} else {
				if err := s.CommitNested(tx.id, tx.parent.id); err != nil {
					t.Fatal(err)
				}
			}
		} else {
			s.AbortTxn(tx.id)
		}
	}

	verifyAll := func(step int) {
		var reader *modelTxn
		readerID := lock.TxnID(0)
		if len(stack) > 0 {
			reader = stack[len(stack)-1]
			readerID = reader.id
		}
		for _, oid := range oidPool {
			wantV, wantOK := int64(0), false
			if reader != nil {
				wantV, wantOK = mdl.lookup(reader, oid)
			} else if v, ok := mdl.committed[oid]; ok {
				wantV, wantOK = v, true
			}
			rec, gotOK := s.Get(readerID, oid)
			if gotOK != wantOK {
				t.Fatalf("step %d: Get(%d,%v) ok=%v want %v", step, readerID, oid, gotOK, wantOK)
			}
			if gotOK && rec.Attrs["v"].AsInt() != wantV {
				t.Fatalf("step %d: Get(%d,%v) = %d want %d", step, readerID, oid,
					rec.Attrs["v"].AsInt(), wantV)
			}
		}
		// Scan agreement: live count matches the model.
		want := 0
		for _, oid := range oidPool {
			if reader != nil {
				if _, ok := mdl.lookup(reader, oid); ok {
					want++
				}
			} else if _, ok := mdl.committed[oid]; ok {
				want++
			}
		}
		got := 0
		s.ScanClass(readerID, "M", func(Record) bool { got++; return true })
		if got != want {
			t.Fatalf("step %d: scan found %d, model %d", step, got, want)
		}
	}

	for step := 0; step < 20_000; step++ {
		switch op := rng.Intn(10); {
		case op < 2: // begin (bounded depth)
			if len(stack) < 5 {
				begin()
			}
		case op < 4: // finish
			if len(stack) > 0 {
				finish(rng.Intn(2) == 0)
			}
		case op < 8: // put
			if len(stack) == 0 {
				begin()
			}
			tx := stack[len(stack)-1]
			oid := oidPool[rng.Intn(len(oidPool))]
			v := rng.Int63n(1000)
			tx.writes[oid] = &v
			s.Put(tx.id, Record{OID: oid, Class: "M",
				Attrs: map[string]datum.Value{"v": datum.Int(v)}})
		default: // delete
			if len(stack) == 0 {
				begin()
			}
			tx := stack[len(stack)-1]
			oid := oidPool[rng.Intn(len(oidPool))]
			// Only delete objects currently visible (matching the
			// object layer, which refuses deletes of missing objects).
			if _, ok := mdl.lookup(tx, oid); !ok {
				continue
			}
			tx.writes[oid] = nil
			s.Put(tx.id, Record{OID: oid, Class: "M", Deleted: true})
		}
		if step%500 == 0 {
			verifyAll(step)
		}
	}
	// Drain the stack and verify the committed tier.
	for len(stack) > 0 {
		finish(true)
	}
	verifyAll(-1)

	// Also compare the full committed extent.
	got := map[datum.OID]int64{}
	s.ScanClass(0, "M", func(r Record) bool {
		got[r.OID] = r.Attrs["v"].AsInt()
		return true
	})
	if len(got) != len(mdl.committed) {
		t.Fatalf("committed extent: %d objects, model %d", len(got), len(mdl.committed))
	}
	for oid, v := range mdl.committed {
		if got[oid] != v {
			t.Fatalf("oid %v: %d vs model %d", oid, got[oid], v)
		}
	}
}

// TestRecoveryEquivalenceWithCheckpoints is the recovery-equivalence
// property: a store that checkpoints (and reopens) at random points
// must end in exactly the state of a twin store fed the identical
// schedule with checkpointing disabled — replay-only recovery is the
// ground truth the fuzzy checkpointer is judged against. Both are
// also compared against an in-memory committed model.
func TestRecoveryEquivalenceWithCheckpoints(t *testing.T) {
	topo := newTopo()
	dirA, dirB := t.TempDir(), t.TempDir()
	open := func(dir string) *Store {
		s, err := Open(topo, Options{Dir: dir, NoSync: true})
		if err != nil {
			t.Fatal(err)
		}
		return s
	}
	a, b := open(dirA), open(dirB) // a checkpoints; b never does
	defer func() { a.Close(); b.Close() }()

	committed := map[datum.OID]int64{}
	rng := rand.New(rand.NewSource(7))
	// A fixed OID pool (no AllocOID) keeps the schedule identical on
	// both stores across reopens.
	oidPool := make([]datum.OID, 12)
	for i := range oidPool {
		oidPool[i] = datum.OID(i + 1)
	}
	next := lock.TxnID(1)

	verify := func(step int) {
		for _, oid := range oidPool {
			wantV, wantOK := committed[oid]
			ra, okA := a.Get(0, oid)
			rb, okB := b.Get(0, oid)
			if okA != wantOK || okB != wantOK {
				t.Fatalf("step %d oid %v: okA=%v okB=%v want %v", step, oid, okA, okB, wantOK)
			}
			if wantOK && (ra.Attrs["v"].AsInt() != wantV || rb.Attrs["v"].AsInt() != wantV) {
				t.Fatalf("step %d oid %v: a=%d b=%d want %d", step, oid,
					ra.Attrs["v"].AsInt(), rb.Attrs["v"].AsInt(), wantV)
			}
		}
	}

	for step := 0; step < 800; step++ {
		switch r := rng.Intn(20); {
		case r < 12: // one whole top-level transaction on both stores
			tx := next
			next++
			writes := map[datum.OID]*int64{}
			for i, nops := 0, 1+rng.Intn(4); i < nops; i++ {
				oid := oidPool[rng.Intn(len(oidPool))]
				del := rng.Intn(6) == 0
				if del {
					// Delete only visible objects (the object layer's rule).
					if w, ok := writes[oid]; ok {
						if w == nil {
							continue
						}
					} else if _, ok := committed[oid]; !ok {
						continue
					}
					writes[oid] = nil
					a.Put(tx, Record{OID: oid, Class: "E", Deleted: true})
					b.Put(tx, Record{OID: oid, Class: "E", Deleted: true})
					continue
				}
				v := rng.Int63n(1_000_000)
				writes[oid] = &v
				r := Record{OID: oid, Class: "E", Attrs: map[string]datum.Value{"v": datum.Int(v)}}
				a.Put(tx, r)
				b.Put(tx, r)
			}
			if rng.Intn(5) == 0 {
				a.AbortTxn(tx)
				b.AbortTxn(tx)
				break
			}
			if err := a.CommitTop(tx); err != nil {
				t.Fatal(err)
			}
			if err := b.CommitTop(tx); err != nil {
				t.Fatal(err)
			}
			for oid, w := range writes {
				if w == nil {
					delete(committed, oid)
				} else {
					committed[oid] = *w
				}
			}
		case r < 16: // checkpoint the checkpointing store only
			if _, err := a.Checkpoint(); err != nil {
				t.Fatal(err)
			}
		case r < 18: // crash-free reopen of the checkpointing store
			if err := a.Close(); err != nil {
				t.Fatal(err)
			}
			a = open(dirA)
		default: // reopen of the replay-only store
			if err := b.Close(); err != nil {
				t.Fatal(err)
			}
			b = open(dirB)
		}
		if step%100 == 0 {
			verify(step)
		}
	}

	// Final reopen of both, then full-extent equality.
	a.Close()
	b.Close()
	a, b = open(dirA), open(dirB)
	verify(-1)
	gotA := map[datum.OID]int64{}
	a.ScanClass(0, "E", func(r Record) bool { gotA[r.OID] = r.Attrs["v"].AsInt(); return true })
	gotB := map[datum.OID]int64{}
	b.ScanClass(0, "E", func(r Record) bool { gotB[r.OID] = r.Attrs["v"].AsInt(); return true })
	if len(gotA) != len(committed) || len(gotB) != len(committed) {
		t.Fatalf("extents: a=%d b=%d model=%d", len(gotA), len(gotB), len(committed))
	}
	for oid, v := range committed {
		if gotA[oid] != v || gotB[oid] != v {
			t.Fatalf("oid %v: a=%d b=%d model=%d", oid, gotA[oid], gotB[oid], v)
		}
	}
}

// TestDeltaChainRandomizedEquivalence is the chain-randomizing
// property test: 50 seeded rounds, each a random interleaving of
// committed/aborted transactions, delta checkpoints, forced
// compactions, and crash-free reopens on store a, against a twin
// store b fed the identical transaction schedule but recovering by
// replay only. After a final reopen of both, the committed extents
// must be *byte-equal* under the canonical redo encoding — not just
// value-equal — so any divergence in attrs, tombstone handling, or
// record shape introduced by the chain fold fails loudly.
func TestDeltaChainRandomizedEquivalence(t *testing.T) {
	const rounds = 50
	for round := 0; round < rounds; round++ {
		round := round
		t.Run(fmt.Sprintf("seed%02d", round), func(t *testing.T) {
			runChainEquivalenceRound(t, int64(round))
		})
	}
}

func runChainEquivalenceRound(t *testing.T, seed int64) {
	topo := newTopo()
	rng := rand.New(rand.NewSource(0x5eed0000 + seed))
	dirA, dirB := t.TempDir(), t.TempDir()
	// Short chains force frequent automatic compaction; 1000
	// effectively disables it so the chain only compacts via the
	// explicit Compact calls in the schedule.
	compactEvery := []int{1, 2, 3, 1000}[rng.Intn(4)]
	open := func(dir string, k int) *Store {
		s, err := Open(topo, Options{Dir: dir, NoSync: true, CompactEvery: k})
		if err != nil {
			t.Fatal(err)
		}
		return s
	}
	a, b := open(dirA, compactEvery), open(dirB, 1000)
	defer func() { a.Close(); b.Close() }()

	oidPool := make([]datum.OID, 10)
	for i := range oidPool {
		oidPool[i] = datum.OID(i + 1)
	}
	live := map[datum.OID]bool{}
	next := lock.TxnID(1)

	for step := 0; step < 120; step++ {
		switch r := rng.Intn(20); {
		case r < 12: // one whole top-level transaction on both stores
			tx := next
			next++
			writes := map[datum.OID]bool{}
			for i, nops := 0, 1+rng.Intn(4); i < nops; i++ {
				oid := oidPool[rng.Intn(len(oidPool))]
				if rng.Intn(6) == 0 {
					if w, wrote := writes[oid]; (wrote && !w) || (!wrote && !live[oid]) {
						continue
					}
					writes[oid] = false
					rec := Record{OID: oid, Class: "E", Deleted: true}
					a.Put(tx, rec)
					b.Put(tx, rec)
					continue
				}
				writes[oid] = true
				rec := Record{OID: oid, Class: "E",
					Attrs: map[string]datum.Value{"v": datum.Int(rng.Int63n(1_000_000))}}
				a.Put(tx, rec)
				b.Put(tx, rec)
			}
			if rng.Intn(5) == 0 {
				a.AbortTxn(tx)
				b.AbortTxn(tx)
				break
			}
			if err := a.CommitTop(tx); err != nil {
				t.Fatal(err)
			}
			if err := b.CommitTop(tx); err != nil {
				t.Fatal(err)
			}
			for oid, w := range writes {
				live[oid] = w
			}
		case r < 15: // delta (or due-for-compaction full) checkpoint
			if _, err := a.Checkpoint(); err != nil {
				t.Fatal(err)
			}
		case r < 17: // forced compaction into a fresh full snapshot
			if _, err := a.Compact(); err != nil {
				t.Fatal(err)
			}
		case r < 19: // crash-free reopen: recover through the chain
			if err := a.Close(); err != nil {
				t.Fatal(err)
			}
			a = open(dirA, compactEvery)
		default: // reopen of the replay-only twin
			if err := b.Close(); err != nil {
				t.Fatal(err)
			}
			b = open(dirB, 1000)
		}
	}

	// Final reopen of both, then byte-equality of the extents.
	a.Close()
	b.Close()
	a, b = open(dirA, compactEvery), open(dirB, 1000)
	dump := func(s *Store) []byte {
		var recs []Record
		s.ScanClass(0, "E", func(r Record) bool { recs = append(recs, r); return true })
		sort.Slice(recs, func(i, j int) bool { return recs[i].OID < recs[j].OID })
		return encodeRedo(recs)
	}
	da, db := dump(a), dump(b)
	if !bytes.Equal(da, db) {
		t.Fatalf("chain-recovered store diverges from replay-only twin:\n a: %d bytes\n b: %d bytes",
			len(da), len(db))
	}
}
