// Package txn implements the HiPAC nested transaction model (§3.1 of
// the paper, after Moss): top-level transactions are atomic,
// serializable and permanent; nested transactions (subtransactions)
// are atomic and serializable against their siblings; a parent is
// suspended while its children execute; the effects of a
// subtransaction become permanent only when it and all its ancestors
// commit; aborting a transaction discards the effects of its entire
// subtree.
//
// The manager owns transaction identity and state, enforces parent
// suspension, coordinates the lock manager (lock inheritance at
// nested commit, release at abort/top commit), and drives registered
// Participants (the storage layer) and hooks (the rule manager's
// deferred-firing processing runs as a pre-commit hook, exactly as in
// §6.3: the "commit event signal" is delivered before commit
// processing completes).
//
// Top-level commit has a visibility contract with the MVCC store: the
// storage participant's CommitTop returns only after the commit's
// LSN is published (visible to fresh snapshots), and the manager
// releases the transaction's locks only after every participant
// commits. A writer that acquires those locks next therefore always
// reads the previous writer's effects, which is what lets plain reads
// skip the lock table entirely.
package txn

import (
	"errors"
	"fmt"
	"sync"

	"repro/internal/lock"
	"repro/internal/obs"
)

// State is a transaction's lifecycle state.
type State int

// Transaction states.
const (
	// Active: the transaction may perform operations (unless
	// suspended by running children).
	Active State = iota
	// Committing: pre-commit hooks are running; the transaction may
	// still spawn children (deferred rule firings) but user
	// operations are done.
	Committing
	// Committed is terminal.
	Committed
	// Aborted is terminal.
	Aborted
)

// String names the state.
func (s State) String() string {
	switch s {
	case Active:
		return "active"
	case Committing:
		return "committing"
	case Committed:
		return "committed"
	case Aborted:
		return "aborted"
	default:
		return fmt.Sprintf("state(%d)", int(s))
	}
}

// Errors returned by transaction operations.
var (
	// ErrFinished: the transaction has already committed or aborted.
	ErrFinished = errors.New("txn: transaction already terminated")
	// ErrSuspended: the parent attempted an operation while children
	// run. The paper's model suspends parents for the duration of
	// their subtransactions.
	ErrSuspended = errors.New("txn: transaction suspended while subtransactions execute")
	// ErrChildrenActive: Commit/Abort called before all children
	// terminated.
	ErrChildrenActive = errors.New("txn: subtransactions still active")
)

// Participant is a resource manager (the storage layer) that takes
// part in transaction completion.
type Participant interface {
	// CommitNested folds the child's effects into its parent.
	CommitNested(child, parent lock.TxnID) error
	// CommitTop makes a top-level transaction's effects permanent.
	CommitTop(top lock.TxnID) error
	// AbortTxn discards the transaction's effects. Descendant
	// transactions' effects were already folded in or discarded.
	AbortTxn(tx lock.TxnID)
}

// Hook is a pre-commit hook. It runs while the transaction is in
// state Committing; it may create and run subtransactions of t. A
// non-nil error aborts the commit (the transaction is then aborted).
type Hook func(t *Txn) error

// Listener observes terminal transaction events (the "transaction
// control" primitive events of §2.1). It runs after the state change.
type Listener func(t *Txn, committed bool)

// Manager creates and completes transactions.
type Manager struct {
	mu       sync.Mutex
	nextID   lock.TxnID
	live     sync.Map // lock.TxnID -> *Txn, pruned at termination
	locks    *lock.Manager
	parts    []Participant
	hooks    []Hook
	listen   []Listener
	liveTxns int
	obsm     *obs.Metrics // nil-safe commit-latency observer
}

// SetObserver installs a commit-latency observer. Not safe to call
// concurrently with transaction processing.
func (m *Manager) SetObserver(o *obs.Metrics) { m.obsm = o }

// NewManager returns a transaction manager. The lock manager is
// created by the caller against the returned manager's topology; use
// Wire to connect them, or NewSystem for the common case.
func NewManager() *Manager {
	return &Manager{nextID: 1}
}

// NewSystem returns a transaction manager wired to a fresh lock
// manager.
func NewSystem() (*Manager, *lock.Manager) {
	m := NewManager()
	lm := lock.NewManager(m)
	m.locks = lm
	return m, lm
}

// Wire connects an externally created lock manager.
func (m *Manager) Wire(lm *lock.Manager) { m.locks = lm }

// Register adds a participant (resource manager). Not safe to call
// concurrently with transaction processing.
func (m *Manager) Register(p Participant) { m.parts = append(m.parts, p) }

// AddPreCommitHook installs a pre-commit hook; hooks run in
// installation order on every Commit. Not safe to call concurrently
// with transaction processing.
func (m *Manager) AddPreCommitHook(h Hook) { m.hooks = append(m.hooks, h) }

// AddListener installs a terminal-event listener. Not safe to call
// concurrently with transaction processing.
func (m *Manager) AddListener(l Listener) { m.listen = append(m.listen, l) }

// IsAncestorOrSelf implements lock.Topology: it reports whether anc
// is desc or one of desc's transitive parents. Parent links are
// immutable, so only the initial id lookup needs synchronization.
func (m *Manager) IsAncestorOrSelf(anc, desc lock.TxnID) bool {
	if anc == desc {
		return true
	}
	v, ok := m.live.Load(desc)
	if !ok {
		return false
	}
	for t := v.(*Txn).parent; t != nil; t = t.parent {
		if t.id == anc {
			return true
		}
	}
	return false
}

// Find returns the live transaction with the given id. The Rule
// Manager uses it to locate the triggering transaction of an event
// signal; since signals are processed synchronously on the
// transaction's own goroutine, the returned handle is safe to use
// there.
func (m *Manager) Find(id lock.TxnID) (*Txn, bool) {
	v, ok := m.live.Load(id)
	if !ok {
		return nil, false
	}
	return v.(*Txn), true
}

// Live reports the number of non-terminated transactions.
func (m *Manager) Live() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.liveTxns
}

// Begin creates a new top-level transaction.
func (m *Manager) Begin() *Txn {
	return m.newTxn(nil)
}

func (m *Manager) newTxn(parent *Txn) *Txn {
	m.mu.Lock()
	id := m.nextID
	m.nextID++
	t := &Txn{m: m, id: id, parent: parent}
	if parent != nil {
		t.depth = parent.depth + 1
		parent.activeChildren++
	}
	m.liveTxns++
	m.mu.Unlock()
	m.live.Store(id, t)
	return t
}

// Txn is one (top-level or nested) transaction. A Txn's operations
// are driven by one goroutine at a time; concurrent siblings each
// have their own Txn.
type Txn struct {
	m              *Manager
	id             lock.TxnID
	parent         *Txn
	depth          int
	state          State
	activeChildren int

	// DeferredData is an opaque slot the rule manager uses to hang
	// this transaction's deferred rule firings on (§6.3). It is
	// managed entirely above this package.
	DeferredData any

	// Internal marks transactions created by the rule manager and the
	// engine itself (condition/action subtransactions, separate
	// firings, rule-catalog updates). Internal transactions do not
	// signal transaction-control events — otherwise a rule on
	// commit() would trigger itself through its own firing
	// subtransactions' commits, recursing forever. Their deferred
	// sets still drain normally.
	Internal bool
}

// ID returns the transaction identifier.
func (t *Txn) ID() lock.TxnID { return t.id }

// Parent returns the parent transaction, or nil for a top-level one.
func (t *Txn) Parent() *Txn { return t.parent }

// Depth returns 0 for top-level transactions, 1 for their children,
// and so on.
func (t *Txn) Depth() int { return t.depth }

// IsTop reports whether this is a top-level transaction.
func (t *Txn) IsTop() bool { return t.parent == nil }

// Top returns the root of this transaction's tree.
func (t *Txn) Top() *Txn {
	for t.parent != nil {
		t = t.parent
	}
	return t
}

// State returns the current lifecycle state.
func (t *Txn) State() State {
	t.m.mu.Lock()
	defer t.m.mu.Unlock()
	return t.state
}

// CheckOperable returns nil if the transaction may perform database
// operations now: it must be Active (or Committing, for operations
// issued by deferred rule firings) and not suspended by running
// children.
func (t *Txn) CheckOperable() error {
	t.m.mu.Lock()
	defer t.m.mu.Unlock()
	return t.checkOperableLocked()
}

func (t *Txn) checkOperableLocked() error {
	switch t.state {
	case Committed, Aborted:
		return fmt.Errorf("%w (txn %d, %s)", ErrFinished, t.id, t.state)
	}
	if t.activeChildren > 0 {
		return fmt.Errorf("%w (txn %d, %d children)", ErrSuspended, t.id, t.activeChildren)
	}
	return nil
}

// Child creates a nested transaction. The parent becomes suspended
// until every child terminates. Children may be created while the
// parent is Active or Committing (the latter supports deferred rule
// firings at commit, §6.3).
func (t *Txn) Child() (*Txn, error) {
	t.m.mu.Lock()
	if t.state == Committed || t.state == Aborted {
		t.m.mu.Unlock()
		return nil, fmt.Errorf("%w (txn %d)", ErrFinished, t.id)
	}
	t.m.mu.Unlock()
	return t.m.newTxn(t), nil
}

// Lock acquires item in the given mode for this transaction,
// blocking per the Moss rule.
func (t *Txn) Lock(item lock.Item, mode lock.Mode) error {
	if err := t.CheckOperable(); err != nil {
		return err
	}
	return t.m.locks.Acquire(t.id, item, mode)
}

// Commit completes the transaction. For nested transactions, effects
// and locks are inherited by the parent; for top-level transactions,
// effects become permanent and locks are released. Pre-commit hooks
// (deferred rule firings) run first and may create subtransactions; a
// hook error aborts the transaction and is returned.
func (t *Txn) Commit() error {
	m := t.m
	m.mu.Lock()
	if t.state == Committed || t.state == Aborted {
		m.mu.Unlock()
		return fmt.Errorf("%w (txn %d)", ErrFinished, t.id)
	}
	if t.activeChildren > 0 {
		m.mu.Unlock()
		return fmt.Errorf("%w (txn %d)", ErrChildrenActive, t.id)
	}
	t.state = Committing
	m.mu.Unlock()

	// Time user-visible top-level commits: hooks (deferred firings),
	// participant flush, WAL sync, lock release.
	if t.parent == nil && !t.Internal {
		tm := m.obsm.Timer(obs.HTxnCommit)
		defer tm.Done()
	}

	// §6.3: the Transaction Manager signals the commit event; the
	// Rule Manager processes deferred firings and replies; only then
	// does commit processing resume.
	for _, h := range m.hooks {
		if err := h(t); err != nil {
			abortErr := t.Abort()
			if abortErr != nil {
				return fmt.Errorf("txn: pre-commit hook failed (%w); abort also failed: %v", err, abortErr)
			}
			return fmt.Errorf("txn: aborted by pre-commit hook: %w", err)
		}
	}

	m.mu.Lock()
	if t.state != Committing { // hook aborted us concurrently
		st := t.state
		m.mu.Unlock()
		return fmt.Errorf("%w (txn %d, state %s)", ErrFinished, t.id, st)
	}
	if t.activeChildren > 0 {
		m.mu.Unlock()
		return fmt.Errorf("%w (txn %d after hooks)", ErrChildrenActive, t.id)
	}
	t.state = Committed
	m.liveTxns--
	parent := t.parent
	m.mu.Unlock()

	var err error
	if parent != nil {
		for _, p := range m.parts {
			if perr := p.CommitNested(t.id, parent.id); perr != nil && err == nil {
				err = perr
			}
		}
		m.locks.TransferToParent(t.id, parent.id)
	} else {
		// CommitTop runs outside m.mu, so independent top-level
		// commits overlap here; the storage layer exploits that by
		// fsyncing outside its own lock and batching the concurrent
		// WAL flushes into one group commit. Locks are released only
		// after the participant reports the effects durable.
		for _, p := range m.parts {
			if perr := p.CommitTop(t.id); perr != nil && err == nil {
				err = perr
			}
		}
		m.locks.ReleaseAll(t.id)
	}
	m.live.Delete(t.id)
	t.detachFromParent()
	for _, l := range m.listen {
		l(t, true)
	}
	if err != nil {
		return fmt.Errorf("txn: participant commit: %w", err)
	}
	return nil
}

// Abort discards the transaction's effects and releases its locks.
// All children must already have terminated (the engine always waits
// for its rule-firing subtransactions before aborting a parent).
func (t *Txn) Abort() error {
	m := t.m
	m.mu.Lock()
	if t.state == Committed || t.state == Aborted {
		m.mu.Unlock()
		return fmt.Errorf("%w (txn %d)", ErrFinished, t.id)
	}
	if t.activeChildren > 0 {
		m.mu.Unlock()
		return fmt.Errorf("%w (txn %d)", ErrChildrenActive, t.id)
	}
	t.state = Aborted
	m.liveTxns--
	m.mu.Unlock()

	for _, p := range m.parts {
		p.AbortTxn(t.id)
	}
	m.locks.ReleaseAll(t.id)
	m.live.Delete(t.id)
	t.detachFromParent()
	for _, l := range m.listen {
		l(t, false)
	}
	return nil
}

// detachFromParent decrements the parent's active-children count,
// resuming the parent when it reaches zero.
func (t *Txn) detachFromParent() {
	if t.parent == nil {
		return
	}
	m := t.m
	m.mu.Lock()
	t.parent.activeChildren--
	m.mu.Unlock()
}
