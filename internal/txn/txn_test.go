package txn

import (
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"repro/internal/lock"
)

// recorder is a Participant that records completion calls.
type recorder struct {
	mu     sync.Mutex
	events []string
	fail   error // returned from commit calls when set
}

func (r *recorder) log(s string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.events = append(r.events, s)
}

func (r *recorder) CommitNested(child, parent lock.TxnID) error {
	r.log(fmt.Sprintf("nested %d->%d", child, parent))
	return r.fail
}

func (r *recorder) CommitTop(top lock.TxnID) error {
	r.log(fmt.Sprintf("top %d", top))
	return r.fail
}

func (r *recorder) AbortTxn(tx lock.TxnID) {
	r.log(fmt.Sprintf("abort %d", tx))
}

func (r *recorder) snapshot() []string {
	r.mu.Lock()
	defer r.mu.Unlock()
	return append([]string(nil), r.events...)
}

func TestTopLevelCommit(t *testing.T) {
	m, _ := NewSystem()
	rec := &recorder{}
	m.Register(rec)
	tx := m.Begin()
	if !tx.IsTop() || tx.Depth() != 0 {
		t.Fatal("Begin should make a top-level txn")
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	if tx.State() != Committed {
		t.Fatalf("state = %v", tx.State())
	}
	ev := rec.snapshot()
	if len(ev) != 1 || ev[0] != fmt.Sprintf("top %d", tx.ID()) {
		t.Fatalf("events = %v", ev)
	}
	if m.Live() != 0 {
		t.Fatalf("Live = %d", m.Live())
	}
}

func TestNestedCommitFoldsToParent(t *testing.T) {
	m, _ := NewSystem()
	rec := &recorder{}
	m.Register(rec)
	parent := m.Begin()
	child, err := parent.Child()
	if err != nil {
		t.Fatal(err)
	}
	if child.Depth() != 1 || child.Parent() != parent || child.Top() != parent {
		t.Fatal("child topology wrong")
	}
	if err := child.Commit(); err != nil {
		t.Fatal(err)
	}
	if err := parent.Commit(); err != nil {
		t.Fatal(err)
	}
	ev := rec.snapshot()
	want := []string{
		fmt.Sprintf("nested %d->%d", child.ID(), parent.ID()),
		fmt.Sprintf("top %d", parent.ID()),
	}
	if fmt.Sprint(ev) != fmt.Sprint(want) {
		t.Fatalf("events = %v, want %v", ev, want)
	}
}

func TestParentSuspendedWhileChildActive(t *testing.T) {
	m, _ := NewSystem()
	parent := m.Begin()
	child, _ := parent.Child()
	err := parent.CheckOperable()
	if !errors.Is(err, ErrSuspended) {
		t.Fatalf("parent operable with active child: %v", err)
	}
	if err := parent.Lock("x", lock.Shared); !errors.Is(err, ErrSuspended) {
		t.Fatalf("Lock while suspended: %v", err)
	}
	if err := parent.Commit(); !errors.Is(err, ErrChildrenActive) {
		t.Fatalf("Commit with active child: %v", err)
	}
	if err := parent.Abort(); !errors.Is(err, ErrChildrenActive) {
		t.Fatalf("Abort with active child: %v", err)
	}
	if err := child.Commit(); err != nil {
		t.Fatal(err)
	}
	if err := parent.CheckOperable(); err != nil {
		t.Fatalf("parent should resume after child commit: %v", err)
	}
	parent.Commit()
}

func TestSiblingsRunConcurrently(t *testing.T) {
	m, _ := NewSystem()
	parent := m.Begin()
	const n = 8
	var wg sync.WaitGroup
	children := make([]*Txn, n)
	for i := range children {
		c, err := parent.Child()
		if err != nil {
			t.Fatal(err)
		}
		children[i] = c
	}
	gate := make(chan struct{})
	for _, c := range children {
		wg.Add(1)
		go func(c *Txn) {
			defer wg.Done()
			<-gate
			if err := c.Lock(lock.Item(fmt.Sprintf("i%d", c.ID())), lock.Exclusive); err != nil {
				t.Error(err)
			}
			if err := c.Commit(); err != nil {
				t.Error(err)
			}
		}(c)
	}
	close(gate)
	wg.Wait()
	if err := parent.Commit(); err != nil {
		t.Fatal(err)
	}
}

func TestLockInheritanceAtNestedCommit(t *testing.T) {
	m, lm := NewSystem()
	parent := m.Begin()
	child, _ := parent.Child()
	if err := child.Lock("obj", lock.Exclusive); err != nil {
		t.Fatal(err)
	}
	if err := child.Commit(); err != nil {
		t.Fatal(err)
	}
	if mode, held := lm.HeldMode(parent.ID(), "obj"); !held || mode != lock.Exclusive {
		t.Fatalf("parent hold = %v %v; lock not inherited", mode, held)
	}
	if _, held := lm.HeldMode(child.ID(), "obj"); held {
		t.Fatal("child still holds after commit")
	}
	parent.Commit()
	if _, held := lm.HeldMode(parent.ID(), "obj"); held {
		t.Fatal("lock survived top-level commit")
	}
}

func TestAbortReleasesLocks(t *testing.T) {
	m, lm := NewSystem()
	rec := &recorder{}
	m.Register(rec)
	tx := m.Begin()
	tx.Lock("obj", lock.Exclusive)
	if err := tx.Abort(); err != nil {
		t.Fatal(err)
	}
	if _, held := lm.HeldMode(tx.ID(), "obj"); held {
		t.Fatal("lock survived abort")
	}
	if ev := rec.snapshot(); len(ev) != 1 || ev[0] != fmt.Sprintf("abort %d", tx.ID()) {
		t.Fatalf("events = %v", ev)
	}
	if tx.State() != Aborted {
		t.Fatalf("state = %v", tx.State())
	}
}

func TestDoubleCompleteFails(t *testing.T) {
	m, _ := NewSystem()
	tx := m.Begin()
	tx.Commit()
	if err := tx.Commit(); !errors.Is(err, ErrFinished) {
		t.Fatalf("double commit: %v", err)
	}
	if err := tx.Abort(); !errors.Is(err, ErrFinished) {
		t.Fatalf("abort after commit: %v", err)
	}
	if _, err := tx.Child(); !errors.Is(err, ErrFinished) {
		t.Fatalf("child of finished txn: %v", err)
	}
}

func TestPreCommitHookRunsAndCanSpawnChildren(t *testing.T) {
	m, _ := NewSystem()
	var hookState State
	var childOK bool
	m.AddPreCommitHook(func(t *Txn) error {
		if t.Depth() > 0 {
			return nil // hooks run on every commit; only act on the top txn
		}
		hookState = t.State()
		c, err := t.Child()
		if err != nil {
			return err
		}
		childOK = c.Commit() == nil
		return nil
	})
	tx := m.Begin()
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	if hookState != Committing {
		t.Fatalf("hook saw state %v, want Committing", hookState)
	}
	if !childOK {
		t.Fatal("hook could not run a subtransaction")
	}
}

func TestPreCommitHookErrorAborts(t *testing.T) {
	m, _ := NewSystem()
	rec := &recorder{}
	m.Register(rec)
	boom := errors.New("deferred condition failed")
	m.AddPreCommitHook(func(*Txn) error { return boom })
	tx := m.Begin()
	err := tx.Commit()
	if err == nil || !errors.Is(err, boom) {
		t.Fatalf("commit error = %v", err)
	}
	if tx.State() != Aborted {
		t.Fatalf("state = %v, want Aborted", tx.State())
	}
	if ev := rec.snapshot(); len(ev) != 1 || ev[0] != fmt.Sprintf("abort %d", tx.ID()) {
		t.Fatalf("events = %v", ev)
	}
}

func TestHooksRunOnNestedCommitToo(t *testing.T) {
	m, _ := NewSystem()
	var seen []lock.TxnID
	m.AddPreCommitHook(func(t *Txn) error {
		seen = append(seen, t.ID())
		return nil
	})
	parent := m.Begin()
	child, _ := parent.Child()
	child.Commit()
	parent.Commit()
	if len(seen) != 2 || seen[0] != child.ID() || seen[1] != parent.ID() {
		t.Fatalf("hook ids = %v", seen)
	}
}

func TestListeners(t *testing.T) {
	m, _ := NewSystem()
	type evt struct {
		id        lock.TxnID
		committed bool
	}
	var mu sync.Mutex
	var events []evt
	m.AddListener(func(t *Txn, committed bool) {
		mu.Lock()
		events = append(events, evt{t.ID(), committed})
		mu.Unlock()
	})
	t1 := m.Begin()
	t1.Commit()
	t2 := m.Begin()
	t2.Abort()
	if len(events) != 2 || !events[0].committed || events[1].committed {
		t.Fatalf("events = %v", events)
	}
}

func TestParticipantErrorSurfacesFromCommit(t *testing.T) {
	m, _ := NewSystem()
	rec := &recorder{fail: errors.New("disk full")}
	m.Register(rec)
	tx := m.Begin()
	if err := tx.Commit(); err == nil {
		t.Fatal("participant failure swallowed")
	}
}

func TestCascadingTreeDepth(t *testing.T) {
	m, _ := NewSystem()
	root := m.Begin()
	cur := root
	var chain []*Txn
	for i := 0; i < 6; i++ {
		c, err := cur.Child()
		if err != nil {
			t.Fatal(err)
		}
		chain = append(chain, c)
		cur = c
	}
	if cur.Depth() != 6 || cur.Top() != root {
		t.Fatalf("depth = %d", cur.Depth())
	}
	// Innermost-out commit order.
	for i := len(chain) - 1; i >= 0; i-- {
		if err := chain[i].Commit(); err != nil {
			t.Fatal(err)
		}
	}
	if err := root.Commit(); err != nil {
		t.Fatal(err)
	}
	if m.Live() != 0 {
		t.Fatalf("Live = %d", m.Live())
	}
}

func TestIsAncestorOrSelf(t *testing.T) {
	m, _ := NewSystem()
	a := m.Begin()
	b, _ := a.Child()
	c, _ := b.Child()
	other := m.Begin()
	cases := []struct {
		anc, desc lock.TxnID
		want      bool
	}{
		{a.ID(), a.ID(), true},
		{a.ID(), b.ID(), true},
		{a.ID(), c.ID(), true},
		{b.ID(), c.ID(), true},
		{c.ID(), a.ID(), false},
		{other.ID(), c.ID(), false},
		{b.ID(), a.ID(), false},
	}
	for _, tc := range cases {
		if got := m.IsAncestorOrSelf(tc.anc, tc.desc); got != tc.want {
			t.Errorf("IsAncestorOrSelf(%d,%d) = %v, want %v", tc.anc, tc.desc, got, tc.want)
		}
	}
}

func TestSiblingSerializationThroughLocks(t *testing.T) {
	// Two siblings contend on one item; the lock manager must
	// serialize them, and the loser must proceed after the winner
	// commits (lock inherited by suspended parent = ancestor).
	m, _ := NewSystem()
	parent := m.Begin()
	c1, _ := parent.Child()
	c2, _ := parent.Child()
	got1 := make(chan error, 1)
	if err := c1.Lock("hot", lock.Exclusive); err != nil {
		t.Fatal(err)
	}
	go func() { got1 <- c2.Lock("hot", lock.Exclusive) }()
	select {
	case err := <-got1:
		t.Fatalf("sibling acquired conflicting lock immediately: %v", err)
	case <-time.After(30 * time.Millisecond):
	}
	if err := c1.Commit(); err != nil {
		t.Fatal(err)
	}
	if err := <-got1; err != nil {
		t.Fatalf("sibling not unblocked by commit: %v", err)
	}
	c2.Commit()
	parent.Commit()
}

func TestUniqueIncreasingIDs(t *testing.T) {
	m, _ := NewSystem()
	var prev lock.TxnID
	for i := 0; i < 100; i++ {
		tx := m.Begin()
		if tx.ID() <= prev {
			t.Fatal("ids must be strictly increasing")
		}
		prev = tx.ID()
		tx.Commit()
	}
}

func TestConcurrentTopLevelStress(t *testing.T) {
	m, _ := NewSystem()
	var wg sync.WaitGroup
	for w := 0; w < 16; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				tx := m.Begin()
				c, err := tx.Child()
				if err != nil {
					t.Error(err)
					return
				}
				if err := c.Lock(lock.Item(fmt.Sprintf("it%d", i%7)), lock.Exclusive); err != nil {
					c.Abort()
					tx.Abort()
					continue
				}
				if err := c.Commit(); err != nil {
					t.Error(err)
					return
				}
				if err := tx.Commit(); err != nil {
					t.Error(err)
					return
				}
			}
		}()
	}
	wg.Wait()
	if m.Live() != 0 {
		t.Fatalf("Live = %d after stress", m.Live())
	}
}
