package txn

// Randomized schedule test: a random forest of nested transactions is
// begun, committed, and aborted in a parent-suspension-respecting
// order; the manager's bookkeeping invariants must hold throughout.

import (
	"math/rand"
	"testing"
)

func TestRandomTreeSchedules(t *testing.T) {
	m, _ := NewSystem()
	rng := rand.New(rand.NewSource(31))
	committed := map[*Txn]bool{}

	for round := 0; round < 300; round++ {
		// Build a random chain of nested transactions (the deepest is
		// the only operable one, matching parent suspension).
		var chain []*Txn
		chain = append(chain, m.Begin())
		depth := rng.Intn(5)
		for d := 0; d < depth; d++ {
			c, err := chain[len(chain)-1].Child()
			if err != nil {
				t.Fatalf("round %d: child: %v", round, err)
			}
			chain = append(chain, c)
		}
		// Only the innermost may operate.
		for i, tx := range chain {
			err := tx.CheckOperable()
			if i == len(chain)-1 && err != nil {
				t.Fatalf("round %d: innermost not operable: %v", round, err)
			}
			if i < len(chain)-1 && err == nil {
				t.Fatalf("round %d: suspended ancestor operable", round)
			}
		}
		// Finish innermost-out with random commit/abort; once a level
		// aborts, children were already finished (we go inside-out).
		for i := len(chain) - 1; i >= 0; i-- {
			tx := chain[i]
			if rng.Intn(4) == 0 {
				if err := tx.Abort(); err != nil {
					t.Fatalf("round %d: abort: %v", round, err)
				}
				if tx.State() != Aborted {
					t.Fatalf("round %d: state after abort = %v", round, tx.State())
				}
			} else {
				if err := tx.Commit(); err != nil {
					t.Fatalf("round %d: commit: %v", round, err)
				}
				if tx.State() != Committed {
					t.Fatalf("round %d: state after commit = %v", round, tx.State())
				}
				committed[tx] = true
			}
			// Double completion always fails.
			if err := tx.Commit(); err == nil {
				t.Fatalf("round %d: double commit accepted", round)
			}
			if err := tx.Abort(); err == nil {
				t.Fatalf("round %d: abort after completion accepted", round)
			}
		}
		if live := m.Live(); live != 0 {
			t.Fatalf("round %d: %d transactions leaked", round, live)
		}
	}
}

func TestRandomSiblingForests(t *testing.T) {
	// A parent with several children finished in random order; the
	// parent resumes exactly when the last child terminates.
	m, _ := NewSystem()
	rng := rand.New(rand.NewSource(32))
	for round := 0; round < 200; round++ {
		parent := m.Begin()
		n := rng.Intn(4) + 1
		kids := make([]*Txn, n)
		for i := range kids {
			c, err := parent.Child()
			if err != nil {
				t.Fatal(err)
			}
			kids[i] = c
		}
		rng.Shuffle(n, func(i, j int) { kids[i], kids[j] = kids[j], kids[i] })
		for i, c := range kids {
			if err := parent.CheckOperable(); err == nil {
				t.Fatalf("round %d: parent operable with %d children left", round, n-i)
			}
			var err error
			if rng.Intn(2) == 0 {
				err = c.Commit()
			} else {
				err = c.Abort()
			}
			if err != nil {
				t.Fatalf("round %d: %v", round, err)
			}
		}
		if err := parent.CheckOperable(); err != nil {
			t.Fatalf("round %d: parent did not resume: %v", round, err)
		}
		if err := parent.Commit(); err != nil {
			t.Fatal(err)
		}
	}
	if m.Live() != 0 {
		t.Fatal("transactions leaked")
	}
}
