// Package repl ships the write-ahead log from a primary store to
// read-only followers. The primary streams committed batches straight
// out of the WAL's group-commit machinery (a batch is streamable the
// moment the flush leader's fsync covers it); a follower bootstraps
// from the primary's snapshot chain, tails the stream, applies each
// batch through the store's replicated-apply path, and serves
// read-only queries at its applied-LSN frontier through the MVCC
// snapshot reader.
//
// Stream protocol (one TCP connection per follower):
//
//	follower → primary   hello{mode, resume}
//	primary  → follower  ok{from}            resume accepted; batches follow
//	                  or resync              resume below the WAL base (or a
//	                                         fresh follower): chain files and
//	                                         chainEnd follow, after which the
//	                                         follower re-sends hello with the
//	                                         watermark it achieved
//	primary  → follower  batch{lsn, sentNanos, redo}  one committed group
//	primary  → follower  heartbeat{flushed, sentNanos} while idle
//
// A resync can also arrive mid-stream: when a checkpoint on the
// primary truncates the WAL past a slow follower's frontier, the
// primary switches the connection back into bootstrap mode rather
// than failing it. The handshake loop converges because each shipped
// chain's watermark is at or above the WAL base that invalidated the
// previous resume point.
//
// Wire framing (all integers big-endian):
//
//	byte    type
//	uint32  payload length
//	[]byte  payload
//	uint32  CRC-32 (IEEE) of the payload
package repl

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"

	"repro/internal/wal"
)

// Frame types.
const (
	frameHello     byte = 1
	frameOK        byte = 2
	frameResync    byte = 3
	frameFile      byte = 4
	frameChainEnd  byte = 5
	frameBatch     byte = 6
	frameHeartbeat byte = 7
	frameErr       byte = 8
)

// Hello modes.
const (
	// modeBootstrap asks for a full chain ship: the follower has no
	// usable local state.
	modeBootstrap byte = 0
	// modeResume asks to tail from the hello's resume LSN.
	modeResume byte = 1
)

// streamMagic opens every hello payload; a mismatch means the peer is
// not speaking this protocol (or a different version of it).
const streamMagic = "hipacrs1"

// maxFramePayload bounds one frame (32 MiB). Batch frames are far
// smaller (the primary reads the WAL in ~1 MiB budgets); file frames
// are chunked at fileChunkSize, so the bound only guards the decoder
// against hostile lengths.
const maxFramePayload = 32 << 20

// fileChunkSize is the largest file frame a bootstrap sends;
// consecutive file frames naming the same file append to it.
const fileChunkSize = 4 << 20

// errFrameTooLarge rejects a frame header whose length exceeds
// maxFramePayload before any allocation happens.
var errFrameTooLarge = errors.New("repl: frame too large")

// writeFrame frames and writes one message as a single Write call.
func writeFrame(w io.Writer, typ byte, payload []byte) error {
	buf := make([]byte, 0, 5+len(payload)+4)
	buf = append(buf, typ)
	buf = binary.BigEndian.AppendUint32(buf, uint32(len(payload)))
	buf = append(buf, payload...)
	buf = binary.BigEndian.AppendUint32(buf, crc32.ChecksumIEEE(payload))
	_, err := w.Write(buf)
	return err
}

// readFrame reads one frame, verifying its checksum.
func readFrame(r io.Reader) (byte, []byte, error) {
	var hdr [5]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return 0, nil, err
	}
	typ := hdr[0]
	n := binary.BigEndian.Uint32(hdr[1:5])
	if n > maxFramePayload {
		return 0, nil, errFrameTooLarge
	}
	buf := make([]byte, int(n)+4)
	if _, err := io.ReadFull(r, buf); err != nil {
		return 0, nil, err
	}
	payload, tail := buf[:n], buf[n:]
	if crc32.ChecksumIEEE(payload) != binary.BigEndian.Uint32(tail) {
		return 0, nil, fmt.Errorf("repl: bad frame crc (type %d)", typ)
	}
	return typ, payload, nil
}

// sendErr best-effort ships an error frame before the sender hangs up.
func sendErr(w io.Writer, msg string) {
	writeFrame(w, frameErr, []byte(msg)) // the connection is dying anyway
}

// --- payload codecs ---

func encodeHello(mode byte, resume wal.LSN) []byte {
	buf := make([]byte, 0, len(streamMagic)+9)
	buf = append(buf, streamMagic...)
	buf = append(buf, mode)
	return binary.BigEndian.AppendUint64(buf, uint64(resume))
}

func parseHello(payload []byte) (mode byte, resume wal.LSN, err error) {
	if len(payload) != len(streamMagic)+9 {
		return 0, 0, errors.New("repl: malformed hello")
	}
	if string(payload[:len(streamMagic)]) != streamMagic {
		return 0, 0, errors.New("repl: bad hello magic")
	}
	mode = payload[len(streamMagic)]
	if mode != modeBootstrap && mode != modeResume {
		return 0, 0, fmt.Errorf("repl: unknown hello mode %d", mode)
	}
	resume = wal.LSN(binary.BigEndian.Uint64(payload[len(streamMagic)+1:]))
	return mode, resume, nil
}

func encodeOK(from wal.LSN) []byte {
	return binary.BigEndian.AppendUint64(nil, uint64(from))
}

func parseOK(payload []byte) (wal.LSN, error) {
	if len(payload) != 8 {
		return 0, errors.New("repl: malformed ok")
	}
	return wal.LSN(binary.BigEndian.Uint64(payload)), nil
}

func encodeFile(name string, chunk []byte) []byte {
	buf := binary.AppendUvarint(nil, uint64(len(name)))
	buf = append(buf, name...)
	return append(buf, chunk...)
}

func parseFile(payload []byte) (name string, chunk []byte, err error) {
	n, m := binary.Uvarint(payload)
	if m <= 0 || n > uint64(len(payload)-m) {
		return "", nil, errors.New("repl: malformed file frame")
	}
	name = string(payload[m : m+int(n)])
	if name == "" {
		return "", nil, errors.New("repl: file frame without a name")
	}
	return name, payload[m+int(n):], nil
}

func encodeBatch(lsn wal.LSN, sentNanos int64, redo []byte) []byte {
	buf := make([]byte, 0, 16+len(redo))
	buf = binary.BigEndian.AppendUint64(buf, uint64(lsn))
	buf = binary.BigEndian.AppendUint64(buf, uint64(sentNanos))
	return append(buf, redo...)
}

func parseBatch(payload []byte) (lsn wal.LSN, sentNanos int64, redo []byte, err error) {
	if len(payload) < 16 {
		return 0, 0, nil, errors.New("repl: malformed batch")
	}
	lsn = wal.LSN(binary.BigEndian.Uint64(payload[0:8]))
	sentNanos = int64(binary.BigEndian.Uint64(payload[8:16]))
	return lsn, sentNanos, payload[16:], nil
}

func encodeHeartbeat(flushed wal.LSN, sentNanos int64) []byte {
	buf := binary.BigEndian.AppendUint64(nil, uint64(flushed))
	return binary.BigEndian.AppendUint64(buf, uint64(sentNanos))
}

func parseHeartbeat(payload []byte) (flushed wal.LSN, sentNanos int64, err error) {
	if len(payload) != 16 {
		return 0, 0, errors.New("repl: malformed heartbeat")
	}
	flushed = wal.LSN(binary.BigEndian.Uint64(payload[0:8]))
	sentNanos = int64(binary.BigEndian.Uint64(payload[8:16]))
	return flushed, sentNanos, nil
}
