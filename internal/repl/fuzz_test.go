package repl

import (
	"bytes"
	"testing"
)

// fuzzSeedStream concatenates one valid frame of every type, so the
// fuzzer starts from a fully well-formed stream and mutates from
// there.
func fuzzSeedStream() []byte {
	var b bytes.Buffer
	writeFrame(&b, frameHello, encodeHello(modeResume, 1234))
	writeFrame(&b, frameOK, encodeOK(1234))
	writeFrame(&b, frameResync, nil)
	writeFrame(&b, frameFile, encodeFile("snapshot", []byte("chunk-bytes")))
	writeFrame(&b, frameChainEnd, nil)
	writeFrame(&b, frameBatch, encodeBatch(1234, 42, []byte("redo-bytes")))
	writeFrame(&b, frameHeartbeat, encodeHeartbeat(5678, 43))
	writeFrame(&b, frameErr, []byte("boom"))
	return b.Bytes()
}

// FuzzReplStream drives the wire decoder and every per-type payload
// parser over arbitrary bytes: no panic, no unbounded allocation (the
// frame header's length is validated before the payload buffer is
// made), and every payload a parser accepts must survive a re-encode
// round trip.
func FuzzReplStream(f *testing.F) {
	f.Add(fuzzSeedStream())
	f.Add([]byte{})
	f.Add([]byte{frameBatch, 0xff, 0xff, 0xff, 0xff})
	corrupt := fuzzSeedStream()
	corrupt[len(corrupt)-1] ^= 0x40 // breaks the last frame's CRC
	f.Add(corrupt)

	f.Fuzz(func(t *testing.T, data []byte) {
		r := bytes.NewReader(data)
		for i := 0; i < 1<<10; i++ {
			typ, payload, err := readFrame(r)
			if err != nil {
				return
			}
			switch typ {
			case frameHello:
				if mode, resume, err := parseHello(payload); err == nil {
					if !bytes.Equal(encodeHello(mode, resume), payload) {
						t.Fatalf("hello round trip: %x", payload)
					}
				}
			case frameOK:
				if from, err := parseOK(payload); err == nil {
					if !bytes.Equal(encodeOK(from), payload) {
						t.Fatalf("ok round trip: %x", payload)
					}
				}
			case frameFile:
				if name, chunk, err := parseFile(payload); err == nil {
					// The uvarint length prefix is not canonical, so
					// re-encoding may differ byte-wise; the parsed
					// fields themselves must round-trip.
					n2, c2, err := parseFile(encodeFile(name, chunk))
					if err != nil || n2 != name || !bytes.Equal(c2, chunk) {
						t.Fatalf("file round trip: %q %x", name, chunk)
					}
				}
			case frameBatch:
				if lsn, sent, redo, err := parseBatch(payload); err == nil {
					if !bytes.Equal(encodeBatch(lsn, sent, redo), payload) {
						t.Fatalf("batch round trip: %x", payload)
					}
				}
			case frameHeartbeat:
				if flushed, sent, err := parseHeartbeat(payload); err == nil {
					if !bytes.Equal(encodeHeartbeat(flushed, sent), payload) {
						t.Fatalf("heartbeat round trip: %x", payload)
					}
				}
			case frameResync, frameChainEnd, frameErr:
				// No payload structure to validate.
			}
		}
	})
}
