package repl

import (
	"errors"
	"fmt"
	"net"
	"sync"

	"repro/internal/datum"
	"repro/internal/ipc"
	"repro/internal/txn"
)

// errReadOnly answers every mutating operation a client tries against
// a replica.
var errReadOnly = errors.New("repl: replica is read-only; send writes to the primary")

// Server exposes a replica's read path over the ipc protocol: the
// same wire format and operations as the full server, restricted to
// Begin/Commit/Abort, Get, Query, Classes, Stats, ReplStatus, and
// Promote. Every read resolves against one pinned MVCC snapshot at
// the replica's applied-LSN frontier; writes and rule operations are
// rejected with a redirect-style error.
type Server struct {
	rep *Replica
	// onPromote, when set, performs the whole promotion (typically the
	// daemon: stop this server, reopen the data directory as a full
	// engine, start a writable server). It returns the applied LSN the
	// promoted store recovered to.
	onPromote func() (uint64, error)

	mu     sync.Mutex
	ln     net.Listener
	conns  map[net.Conn]struct{}
	closed bool
	wg     sync.WaitGroup
}

// NewServer builds a read server over rep. onPromote may be nil, in
// which case OpPromote detaches the replica (Replica.Promote) and
// reports its applied LSN, leaving the caller to reopen the returned
// directory out of band.
func NewServer(rep *Replica, onPromote func() (uint64, error)) *Server {
	return &Server{rep: rep, onPromote: onPromote, conns: map[net.Conn]struct{}{}}
}

// Serve accepts client connections on ln until Close.
func (s *Server) Serve(ln net.Listener) error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		ln.Close()
		return errors.New("repl: server closed")
	}
	s.ln = ln
	s.mu.Unlock()
	for {
		conn, err := ln.Accept()
		if err != nil {
			s.mu.Lock()
			closed := s.closed
			s.mu.Unlock()
			if closed {
				return nil
			}
			return err
		}
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			conn.Close()
			return nil
		}
		s.conns[conn] = struct{}{}
		s.wg.Add(1)
		s.mu.Unlock()
		go func() {
			defer s.wg.Done()
			s.serveConn(conn)
			s.mu.Lock()
			delete(s.conns, conn)
			s.mu.Unlock()
			conn.Close()
		}()
	}
}

// ListenAndServe listens on a TCP address and serves.
func (s *Server) ListenAndServe(addr string) error {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	return s.Serve(ln)
}

// Addr returns the listener address (once Serve has been called).
func (s *Server) Addr() net.Addr {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.ln == nil {
		return nil
	}
	return s.ln.Addr()
}

// Close stops accepting and closes every connection.
func (s *Server) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	ln := s.ln
	var conns []net.Conn
	for c := range s.conns {
		conns = append(conns, c)
	}
	s.mu.Unlock()
	var err error
	if ln != nil {
		err = ln.Close()
	}
	for _, c := range conns {
		c.Close()
	}
	s.wg.Wait()
	return err
}

// replSession is one client connection to the read server. Read
// transactions exist only to satisfy the protocol's Begin/op/Commit
// shape — each read pins its own snapshot regardless.
type replSession struct {
	srv  *Server
	conn net.Conn

	writeMu sync.Mutex
	mu      sync.Mutex
	txns    map[uint64]*txn.Txn
}

func (s *Server) serveConn(conn net.Conn) {
	sess := &replSession{srv: s, conn: conn, txns: map[uint64]*txn.Txn{}}
	defer sess.cleanup()
	for {
		m, err := ipc.Read(conn)
		if err != nil {
			return
		}
		if m.Kind != ipc.KindRequest {
			continue
		}
		go sess.handle(m)
	}
}

func (s *replSession) cleanup() {
	s.mu.Lock()
	open := s.txns
	s.txns = map[uint64]*txn.Txn{}
	s.mu.Unlock()
	for _, t := range open {
		t.Abort()
	}
}

func (s *replSession) reply(req *ipc.Message, body any, err error) {
	m := &ipc.Message{ID: req.ID, Kind: ipc.KindReply, Op: req.Op}
	if err != nil {
		m.Err = err.Error()
	} else if body != nil {
		raw, encErr := ipc.EncodeBody(body)
		if encErr != nil {
			m.Err = encErr.Error()
		} else {
			m.Body = raw
		}
	}
	s.writeMu.Lock()
	ipc.Write(s.conn, m) // best-effort; read loop notices a dead conn
	s.writeMu.Unlock()
}

func (s *replSession) handle(req *ipc.Message) {
	rep := s.srv.rep
	switch req.Op {
	case ipc.OpBegin:
		_, txns, err := rep.reader()
		if err != nil {
			s.reply(req, nil, err)
			return
		}
		t := txns.Begin()
		s.mu.Lock()
		s.txns[uint64(t.ID())] = t
		s.mu.Unlock()
		s.reply(req, ipc.BeginRep{Txn: uint64(t.ID())}, nil)

	case ipc.OpCommit, ipc.OpAbort:
		var body ipc.TxnRef
		if err := ipc.DecodeBody(req, &body); err != nil {
			s.reply(req, nil, err)
			return
		}
		s.mu.Lock()
		t := s.txns[body.Txn]
		delete(s.txns, body.Txn)
		s.mu.Unlock()
		if t == nil {
			s.reply(req, nil, fmt.Errorf("repl: unknown transaction %d", body.Txn))
			return
		}
		if req.Op == ipc.OpCommit {
			s.reply(req, nil, t.Commit())
		} else {
			s.reply(req, nil, t.Abort())
		}

	case ipc.OpGet:
		var body ipc.GetReq
		if err := ipc.DecodeBody(req, &body); err != nil {
			s.reply(req, nil, err)
			return
		}
		rec, err := rep.Get(datum.OID(body.OID))
		if err != nil {
			s.reply(req, nil, err)
			return
		}
		s.reply(req, ipc.GetRep{OID: uint64(rec.OID), Class: rec.Class, Attrs: rec.Attrs}, nil)

	case ipc.OpQuery:
		var body ipc.QueryReq
		if err := ipc.DecodeBody(req, &body); err != nil {
			s.reply(req, nil, err)
			return
		}
		res, _, err := rep.Query(body.Src, body.Args)
		if err != nil {
			s.reply(req, nil, err)
			return
		}
		s.reply(req, ipc.QueryRep{Columns: res.Columns, Rows: res.Rows}, nil)

	case ipc.OpClasses:
		classes, err := rep.Classes()
		if err != nil {
			s.reply(req, nil, err)
			return
		}
		out := classes[:0]
		for _, c := range classes {
			if len(c.Name) < 2 || c.Name[:2] != "__" {
				out = append(out, c)
			}
		}
		s.reply(req, ipc.ClassesRep{Classes: out}, nil)

	case ipc.OpStats:
		st := rep.Store()
		var engRaw []byte
		var err error
		if st != nil {
			engRaw, err = ipc.EncodeBody(struct {
				Store any               `json:"Store"`
				Repl  ipc.ReplStatusRep `json:"Repl"`
			}{st.Stats(), rep.Status()})
		} else {
			engRaw, err = ipc.EncodeBody(struct {
				Repl ipc.ReplStatusRep `json:"Repl"`
			}{rep.Status()})
		}
		if err != nil {
			s.reply(req, nil, err)
			return
		}
		s.reply(req, ipc.StatsRep{Engine: engRaw, Obs: rep.o.Snapshot()}, nil)

	case ipc.OpReplStatus:
		s.reply(req, rep.Status(), nil)

	case ipc.OpPromote:
		if s.srv.onPromote != nil {
			applied, err := s.srv.onPromote()
			if err != nil {
				s.reply(req, nil, err)
				return
			}
			s.reply(req, ipc.PromoteRep{AppliedLSN: applied}, nil)
			return
		}
		applied := uint64(rep.AppliedLSN())
		if _, err := rep.Promote(); err != nil {
			s.reply(req, nil, err)
			return
		}
		s.reply(req, ipc.PromoteRep{AppliedLSN: applied}, nil)

	default:
		s.reply(req, nil, errReadOnly)
	}
}
