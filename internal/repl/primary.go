package repl

import (
	"errors"
	"fmt"
	"net"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/ipc"
	"repro/internal/obs"
	"repro/internal/storage"
	"repro/internal/wal"
)

// streamBudget bounds the WAL bytes one ReadDurable pass turns into
// batch frames before checking the connection again.
const streamBudget = 1 << 20

// heartbeatEvery is how often an idle stream sends its durable
// frontier so followers can measure lag without traffic.
const heartbeatEvery = 250 * time.Millisecond

// Primary serves the WAL shipping stream of one store to any number
// of followers. It reads the log strictly below the group-commit
// flush frontier, so a batch is shipped only once its fsync (or, on a
// NoSync store, its Sync call) has completed — a follower can never
// apply a commit the primary might lose.
type Primary struct {
	store *storage.Store
	obsm  *obs.Metrics

	nBatches atomic.Uint64
	nResyncs atomic.Uint64

	mu     sync.Mutex
	ln     net.Listener
	conns  map[net.Conn]struct{}
	closed bool
	wg     sync.WaitGroup
}

// NewPrimary wraps a store for WAL shipping. The store must be
// durable (have a directory); Serve rejects followers otherwise.
// obsm may be nil.
func NewPrimary(store *storage.Store, obsm *obs.Metrics) *Primary {
	return &Primary{store: store, obsm: obsm, conns: map[net.Conn]struct{}{}}
}

// Serve accepts follower connections on ln until Close. It returns
// the listener's error (nil after Close).
func (p *Primary) Serve(ln net.Listener) error {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		ln.Close()
		return errors.New("repl: primary closed")
	}
	p.ln = ln
	p.mu.Unlock()
	for {
		conn, err := ln.Accept()
		if err != nil {
			p.mu.Lock()
			closed := p.closed
			p.mu.Unlock()
			if closed {
				return nil
			}
			return err
		}
		p.mu.Lock()
		if p.closed {
			p.mu.Unlock()
			conn.Close()
			return nil
		}
		p.conns[conn] = struct{}{}
		p.wg.Add(1)
		p.mu.Unlock()
		go func() {
			defer p.wg.Done()
			p.serveConn(conn)
			p.mu.Lock()
			delete(p.conns, conn)
			p.mu.Unlock()
			conn.Close()
		}()
	}
}

// ListenAndServe listens on a TCP address and serves followers.
func (p *Primary) ListenAndServe(addr string) error {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	return p.Serve(ln)
}

// Addr returns the listener address (once Serve has been called).
func (p *Primary) Addr() net.Addr {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.ln == nil {
		return nil
	}
	return p.ln.Addr()
}

// Close stops accepting, tears down every follower connection, and
// waits for their stream goroutines to exit.
func (p *Primary) Close() error {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return nil
	}
	p.closed = true
	ln := p.ln
	var conns []net.Conn
	for c := range p.conns {
		conns = append(conns, c)
	}
	p.mu.Unlock()
	var err error
	if ln != nil {
		err = ln.Close()
	}
	for _, c := range conns {
		c.Close()
	}
	p.wg.Wait()
	return err
}

// Status reports the primary's replication state for repl-status and
// the Prometheus endpoint.
func (p *Primary) Status() ipc.ReplStatusRep {
	rep := ipc.ReplStatusRep{Role: "primary", Batches: p.nBatches.Load(),
		Bootstraps: p.nResyncs.Load()}
	if log := p.store.WAL(); log != nil {
		rep.FlushedLSN = uint64(log.Flushed())
	}
	p.mu.Lock()
	rep.Connections = len(p.conns)
	p.mu.Unlock()
	return rep
}

// serveConn drives one follower: handshake, optional bootstrap, then
// the tail loop. The connection's read side is drained by a separate
// goroutine that forwards hello frames (the only thing a follower
// sends) and signals stop on disconnect, so the tail loop can block
// in WaitDurable without pinning a dead connection forever.
func (p *Primary) serveConn(conn net.Conn) {
	log := p.store.WAL()
	if log == nil {
		sendErr(conn, "primary is not durable: nothing to ship")
		return
	}

	type hello struct {
		mode   byte
		resume wal.LSN
	}
	stop := make(chan struct{})
	helloCh := make(chan hello, 1)
	go func() {
		defer close(stop)
		for {
			typ, payload, err := readFrame(conn)
			if err != nil {
				return
			}
			if typ != frameHello {
				return // protocol violation; stop tears the stream down
			}
			mode, resume, err := parseHello(payload)
			if err != nil {
				return
			}
			select {
			case helloCh <- hello{mode, resume}:
			default:
				return // follower sent a hello we were not waiting for
			}
		}
	}()

	waitHello := func() (hello, bool) {
		select {
		case h := <-helloCh:
			return h, true
		case <-stop:
			return hello{}, false
		}
	}

	h, ok := waitHello()
	if !ok {
		return
	}
	for {
		if h.mode == modeBootstrap || h.resume < log.Base() {
			p.nResyncs.Add(1)
			if err := p.sendBootstrap(conn); err != nil {
				return
			}
			// The follower installs the chain, then re-handshakes with
			// the watermark it achieved.
			if h, ok = waitHello(); !ok {
				return
			}
			continue
		}
		if h.resume > log.End() {
			sendErr(conn, fmt.Sprintf("resume %d is beyond the log end %d (diverged follower?)",
				h.resume, log.End()))
			return
		}
		if err := writeFrame(conn, frameOK, encodeOK(h.resume)); err != nil {
			return
		}
		truncated, err := p.tail(conn, log, h.resume, stop)
		if err != nil || !truncated {
			return
		}
		// A checkpoint truncated the WAL past this follower mid-stream:
		// fall back to a fresh bootstrap on the same connection.
		h = hello{mode: modeBootstrap}
	}
}

// tail streams batches from resume until the connection dies or the
// WAL is truncated past the follower (returned as truncated=true so
// the caller re-bootstraps it).
func (p *Primary) tail(conn net.Conn, log *wal.Log, from wal.LSN, stop <-chan struct{}) (truncated bool, err error) {
	for {
		frames, next, err := log.ReadDurable(from, streamBudget)
		if errors.Is(err, wal.ErrTruncated) {
			return true, nil
		}
		if err != nil {
			sendErr(conn, err.Error())
			return false, err
		}
		if len(frames) == 0 {
			if err := p.idle(conn, log, from, stop); err != nil {
				return false, err
			}
			continue
		}
		for _, fr := range frames {
			payload := encodeBatch(fr.LSN, time.Now().UnixNano(), fr.Payload)
			if err := writeFrame(conn, frameBatch, payload); err != nil {
				return false, err
			}
			p.nBatches.Add(1)
			p.obsm.ObserveN(obs.HReplBatch, uint64(len(fr.Payload)))
		}
		from = next
	}
}

// idle parks until the durable frontier passes from, sending
// heartbeats so the follower keeps measuring lag (and noticing a
// dead primary) while nothing commits.
func (p *Primary) idle(conn net.Conn, log *wal.Log, from wal.LSN, stop <-chan struct{}) error {
	type res struct {
		err error
	}
	done := make(chan res, 1)
	go func() {
		_, err := log.WaitDurable(from, stop)
		done <- res{err}
	}()
	tick := time.NewTicker(heartbeatEvery)
	defer tick.Stop()
	for {
		select {
		case r := <-done:
			if errors.Is(r.err, wal.ErrWaitCanceled) {
				return r.err // follower hung up
			}
			return r.err // nil (new bytes) or ErrClosed (store shut down)
		case <-tick.C:
			hb := encodeHeartbeat(log.Flushed(), time.Now().UnixNano())
			if err := writeFrame(conn, frameHeartbeat, hb); err != nil {
				return err
			}
		}
	}
}

// sendBootstrap ships the primary's snapshot chain. The file set is
// read optimistically: a checkpoint may rewrite or delete chain files
// between listing and reading, in which case the read fails and the
// whole set is re-listed — the shipped set is always a byte-complete
// copy of files that coexisted, and the follower's own chain
// validation decides how far it links up.
func (p *Primary) sendBootstrap(conn net.Conn) error {
	dir := p.store.Dir()
	var names []string
	var blobs [][]byte
	for attempt := 0; ; attempt++ {
		ns, err := storage.ChainFileNames(dir)
		if err != nil {
			sendErr(conn, err.Error())
			return err
		}
		ok := true
		blobs = blobs[:0]
		for _, n := range ns {
			b, err := os.ReadFile(filepath.Join(dir, n))
			if err != nil {
				ok = false
				break
			}
			blobs = append(blobs, b)
		}
		if ok {
			names = ns
			break
		}
		if attempt == 4 {
			err := errors.New("repl: chain files kept changing during bootstrap")
			sendErr(conn, err.Error())
			return err
		}
	}
	if err := writeFrame(conn, frameResync, nil); err != nil {
		return err
	}
	for i, name := range names {
		blob := blobs[i]
		for off := 0; ; off += fileChunkSize {
			end := off + fileChunkSize
			if end > len(blob) {
				end = len(blob)
			}
			if err := writeFrame(conn, frameFile, encodeFile(name, blob[off:end])); err != nil {
				return err
			}
			if end == len(blob) {
				break
			}
		}
	}
	return writeFrame(conn, frameChainEnd, nil)
}
