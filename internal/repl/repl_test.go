package repl

import (
	"fmt"
	"net"
	"os"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/datum"
	"repro/internal/lock"
	"repro/internal/obs"
	"repro/internal/storage"
	"repro/internal/txn"
)

// primaryNode is a durable store with commits driven through the real
// transaction manager, shipping its WAL on a loopback listener.
type primaryNode struct {
	t     *testing.T
	dir   string
	txns  *txn.Manager
	store *storage.Store
	prim  *Primary
	addr  string
}

func startPrimary(t *testing.T, opts storage.Options) *primaryNode {
	t.Helper()
	if opts.Dir == "" {
		opts.Dir = t.TempDir()
	}
	txns, _ := txn.NewSystem()
	store, err := storage.Open(txns, opts)
	if err != nil {
		t.Fatal(err)
	}
	txns.Register(store)
	prim := NewPrimary(store, obs.New(obs.Options{}).Metrics())
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		store.Close()
		t.Fatal(err)
	}
	go prim.Serve(ln)
	p := &primaryNode{t: t, dir: opts.Dir, txns: txns, store: store,
		prim: prim, addr: ln.Addr().String()}
	t.Cleanup(func() {
		p.prim.Close()
		p.store.Close()
	})
	return p
}

// commit lands one transaction writing the given records.
func (p *primaryNode) commit(recs ...storage.Record) {
	p.t.Helper()
	tx := p.txns.Begin()
	for _, rec := range recs {
		p.store.Put(tx.ID(), rec)
	}
	if err := tx.Commit(); err != nil {
		p.t.Fatal(err)
	}
}

func rec(oid datum.OID, class string, v int64) storage.Record {
	return storage.Record{OID: oid, Class: class,
		Attrs: map[string]datum.Value{"v": datum.Int(v)}}
}

// dumpReader is the read surface shared by Store and the test's
// canonical dump: a class scan over committed state.
type dumpReader interface {
	ScanClass(tx lock.TxnID, class string, fn func(storage.Record) bool)
}

// dumpTx is a transaction ID that never wrote anything, so every scan
// through it sees exactly the committed tier.
const dumpTx = lock.TxnID(1 << 56)

// dump renders the committed state of the given classes as one
// canonical string: OID-sorted records with key-sorted attributes.
// Two stores with equal dumps hold byte-equal logical state.
func dump(s dumpReader, classes ...string) string {
	var b strings.Builder
	for _, class := range classes {
		s.ScanClass(dumpTx, class, func(r storage.Record) bool {
			keys := make([]string, 0, len(r.Attrs))
			for k := range r.Attrs {
				keys = append(keys, k)
			}
			sort.Strings(keys)
			fmt.Fprintf(&b, "%s/%d:", r.Class, r.OID)
			for _, k := range keys {
				fmt.Fprintf(&b, " %s=%s", k, r.Attrs[k].String())
			}
			b.WriteByte('\n')
			return true
		})
	}
	return b.String()
}

// waitConverged blocks until the replica's applied frontier reaches
// the primary's current WAL end.
func waitConverged(t *testing.T, p *primaryNode, r *Replica, timeout time.Duration) {
	t.Helper()
	end := p.store.WAL().End()
	if !r.WaitApplied(end, timeout) {
		t.Fatalf("replica stuck at applied %d, want %d (status %+v)",
			r.AppliedLSN(), end, r.Status())
	}
}

// dialTracker wraps the TCP dialer so tests can sever the replica's
// live connection (simulating a network drop) or gate new dials
// (keeping it down while the primary moves on).
type dialTracker struct {
	addr string
	mu   sync.Mutex
	cur  net.Conn
	gate bool
}

func (d *dialTracker) dial(string) (net.Conn, error) {
	d.mu.Lock()
	blocked := d.gate
	d.mu.Unlock()
	if blocked {
		return nil, fmt.Errorf("dial gated")
	}
	c, err := net.Dial("tcp", d.addr)
	if err != nil {
		return nil, err
	}
	d.mu.Lock()
	d.cur = c
	d.mu.Unlock()
	return c, nil
}

func (d *dialTracker) drop() {
	d.mu.Lock()
	c := d.cur
	d.mu.Unlock()
	if c != nil {
		c.Close()
	}
}

func (d *dialTracker) setGate(on bool) {
	d.mu.Lock()
	d.gate = on
	d.mu.Unlock()
}

func TestReplicaBasicSync(t *testing.T) {
	p := startPrimary(t, storage.Options{})
	for i := 0; i < 20; i++ {
		p.commit(rec(datum.OID(100+i), "E", int64(i)))
	}

	r, err := Open(Options{Dir: t.TempDir(), PrimaryAddr: p.addr})
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	waitConverged(t, p, r, 5*time.Second)

	if got, want := dump(r.Store(), "E"), dump(p.store, "E"); got != want {
		t.Fatalf("replica state diverged:\n got: %q\nwant: %q", got, want)
	}

	// Live tail: new commits stream without a new handshake.
	p.commit(rec(100, "E", 999), rec(500, "E", 1))
	waitConverged(t, p, r, 5*time.Second)
	if got, want := dump(r.Store(), "E"), dump(p.store, "E"); got != want {
		t.Fatalf("replica state diverged after tail:\n got: %q\nwant: %q", got, want)
	}

	// The read path serves the replicated objects at the frontier.
	got, err := r.Get(500)
	if err != nil {
		t.Fatal(err)
	}
	if got.Attrs["v"].String() != "1" {
		t.Fatalf("replica Get(500) = %v", got.Attrs)
	}

	st := r.Status()
	if st.Role != "replica" || st.Bootstraps != 1 || st.Generation != 1 {
		t.Fatalf("unexpected status %+v", st)
	}
	if st.AppliedLSN != uint64(p.store.WAL().End()) {
		t.Fatalf("status applied %d, want %d", st.AppliedLSN, p.store.WAL().End())
	}
	if err := r.AsyncError(); err != nil {
		t.Fatal(err)
	}
}

func TestReplicaCatchupAfterDisconnect(t *testing.T) {
	p := startPrimary(t, storage.Options{})
	for i := 0; i < 10; i++ {
		p.commit(rec(datum.OID(100+i), "E", int64(i)))
	}

	d := &dialTracker{addr: p.addr}
	r, err := Open(Options{Dir: t.TempDir(), PrimaryAddr: p.addr,
		Dial: d.dial, ReconnectDelay: 5 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	waitConverged(t, p, r, 5*time.Second)

	// Sever the connection, commit while the replica is down, and let
	// the automatic reconnect resume from the applied frontier — no
	// re-bootstrap, since the primary kept the WAL suffix.
	d.setGate(true)
	d.drop()
	for i := 0; i < 10; i++ {
		p.commit(rec(datum.OID(200+i), "E", int64(i)))
	}
	d.setGate(false)
	waitConverged(t, p, r, 5*time.Second)

	if got, want := dump(r.Store(), "E"), dump(p.store, "E"); got != want {
		t.Fatalf("replica state diverged after catchup:\n got: %q\nwant: %q", got, want)
	}
	st := r.Status()
	if st.Bootstraps != 1 {
		t.Fatalf("resume-path catchup re-bootstrapped: %+v", st)
	}
	if st.Reconnects == 0 {
		t.Fatalf("no reconnect counted: %+v", st)
	}
}

func TestReplicaRebootstrapAfterTruncation(t *testing.T) {
	p := startPrimary(t, storage.Options{})
	for i := 0; i < 10; i++ {
		p.commit(rec(datum.OID(100+i), "E", int64(i)))
	}

	d := &dialTracker{addr: p.addr}
	r, err := Open(Options{Dir: t.TempDir(), PrimaryAddr: p.addr,
		Dial: d.dial, ReconnectDelay: 5 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	waitConverged(t, p, r, 5*time.Second)
	applied := r.AppliedLSN()

	// While the replica is down, commit and compact so the primary's
	// WAL base moves past the replica's resume point.
	d.setGate(true)
	d.drop()
	for i := 0; i < 20; i++ {
		p.commit(rec(datum.OID(200+i), "E", int64(i)))
	}
	if _, err := p.store.Compact(); err != nil {
		t.Fatal(err)
	}
	if base := p.store.WAL().Base(); base <= applied {
		t.Fatalf("test setup: base %d did not pass applied %d", base, applied)
	}

	d.setGate(false)
	waitConverged(t, p, r, 5*time.Second)
	if got, want := dump(r.Store(), "E"), dump(p.store, "E"); got != want {
		t.Fatalf("replica state diverged after re-bootstrap:\n got: %q\nwant: %q", got, want)
	}
	st := r.Status()
	if st.Bootstraps != 2 || st.Generation != 2 {
		t.Fatalf("expected a second bootstrap generation, got %+v", st)
	}
	// The old generation directory is removed (asynchronously relative
	// to the applied frontier: the cleanup runs right after the swap).
	deadline := time.Now().Add(5 * time.Second)
	for {
		entries, err := os.ReadDir(r.opts.Dir)
		if err != nil {
			t.Fatal(err)
		}
		stale := ""
		for _, e := range entries {
			if e.Name() != currentFile && e.Name() != fmt.Sprintf("data-%06d", st.Generation) {
				stale = e.Name()
			}
		}
		if stale == "" {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("stale entry %q left in replica root", stale)
		}
		time.Sleep(time.Millisecond)
	}
}

// TestReplicaMonotonicReads is the staleness-bound e2e check: the
// applied frontier — the LSN every read is served at or above — never
// regresses, across connection drops, forced truncations, and a full
// replica restart from its own directory.
func TestReplicaMonotonicReads(t *testing.T) {
	p := startPrimary(t, storage.Options{})
	rdir := t.TempDir()
	d := &dialTracker{addr: p.addr}
	r, err := Open(Options{Dir: rdir, PrimaryAddr: p.addr,
		Dial: d.dial, ReconnectDelay: time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}

	var stopWatch atomic.Bool
	var regressed atomic.Bool
	var watched sync.WaitGroup
	watch := func(rep *Replica) {
		defer watched.Done()
		last := uint64(0)
		for !stopWatch.Load() {
			now := uint64(rep.AppliedLSN())
			if now < last {
				regressed.Store(true)
				return
			}
			last = now
		}
	}
	watched.Add(1)
	go watch(r)

	oid := datum.OID(0)
	for round := 0; round < 6; round++ {
		for i := 0; i < 10; i++ {
			oid++
			p.commit(rec(oid, "E", int64(oid)))
		}
		switch round % 3 {
		case 0:
			d.drop()
		case 1:
			d.setGate(true)
			d.drop()
			if _, err := p.store.Compact(); err != nil {
				t.Fatal(err)
			}
			d.setGate(false)
		}
		waitConverged(t, p, r, 10*time.Second)
	}

	// Restart the replica from its own directory: recovery must resume
	// at (or above) the pre-restart frontier, never below it.
	before := r.AppliedLSN()
	stopWatch.Store(true)
	watched.Wait()
	if err := r.Close(); err != nil {
		t.Fatal(err)
	}
	r, err = Open(Options{Dir: rdir, PrimaryAddr: p.addr,
		Dial: d.dial, ReconnectDelay: time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	if got := r.AppliedLSN(); got < before {
		t.Fatalf("restart regressed applied: %d -> %d", before, got)
	}
	stopWatch.Store(false)
	watched.Add(1)
	go watch(r)

	for i := 0; i < 10; i++ {
		oid++
		p.commit(rec(oid, "E", int64(oid)))
	}
	waitConverged(t, p, r, 10*time.Second)
	stopWatch.Store(true)
	watched.Wait()
	if regressed.Load() {
		t.Fatal("applied LSN regressed")
	}
	if got, want := dump(r.Store(), "E"), dump(p.store, "E"); got != want {
		t.Fatalf("replica state diverged:\n got: %q\nwant: %q", got, want)
	}
}

// TestPromoteMidCatchup promotes a replica while the primary is still
// committing, then reopens the returned directory as a writable store
// and checks it recovered to a transactionally consistent prefix of
// the primary's history: commit i writes both a counter bump and a
// ledger object, so the recovered counter must exactly match the set
// of recovered ledger objects.
func TestPromoteMidCatchup(t *testing.T) {
	p := startPrimary(t, storage.Options{})
	const counter = datum.OID(1)
	const ledgerBase = datum.OID(1000)
	commitN := func(i int64) {
		p.commit(rec(counter, "E", i), rec(ledgerBase+datum.OID(i), "E", i))
	}
	for i := int64(1); i <= 5; i++ {
		commitN(i)
	}

	r, err := Open(Options{Dir: t.TempDir(), PrimaryAddr: p.addr,
		ReconnectDelay: time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	if !r.WaitApplied(1, 5*time.Second) {
		t.Fatalf("replica never bootstrapped: %+v", r.Status())
	}

	// Keep the primary committing while we promote.
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := int64(6); i <= 60; i++ {
			commitN(i)
		}
	}()
	time.Sleep(5 * time.Millisecond)
	dir, err := r.Promote()
	if err != nil {
		t.Fatal(err)
	}
	<-done
	promotedAt := r.AppliedLSN()
	if _, err := r.Get(counter); err != ErrPromoted {
		t.Fatalf("read after promote: err=%v, want ErrPromoted", err)
	}
	if _, err := r.Promote(); err != ErrPromoted {
		t.Fatalf("second promote: err=%v, want ErrPromoted", err)
	}

	// Reopen the handed-back directory as a writable store.
	txns, _ := txn.NewSystem()
	st, err := storage.Open(txns, storage.Options{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	txns.Register(st)
	if end := st.WAL().End(); end != promotedAt {
		t.Fatalf("promoted store recovered to %d, want applied %d", end, promotedAt)
	}

	// Atomic-prefix consistency: counter == c implies ledger 1..c
	// present and c+1.. absent.
	cr, ok := st.Get(dumpTx, counter)
	if !ok {
		t.Fatal("promoted store lost the counter object")
	}
	c := cr.Attrs["v"].AsInt()
	if c < 1 {
		t.Fatalf("counter %d", c)
	}
	for i := int64(1); i <= c; i++ {
		lr, ok := st.Get(dumpTx, ledgerBase+datum.OID(i))
		if !ok {
			t.Fatalf("counter %d but ledger %d missing (torn commit)", c, i)
		}
		if got := lr.Attrs["v"].AsInt(); got != i {
			t.Fatalf("ledger %d holds %d", i, got)
		}
	}
	if _, ok := st.Get(dumpTx, ledgerBase+datum.OID(c+1)); ok {
		t.Fatalf("counter %d but ledger %d already present (future commit leaked)", c, c+1)
	}

	// The promoted store accepts new writes through the normal path.
	tx := txns.Begin()
	st.Put(tx.ID(), rec(counter, "E", 10_000))
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	got, _ := st.Get(dumpTx, counter)
	if v := got.Attrs["v"].AsInt(); v != 10_000 {
		t.Fatalf("write after promote: counter=%d", v)
	}
}

// TestReplicaStatusLagFields checks the lag instrumentation settles
// to zero on an idle, caught-up pair and that the primary's status
// counts its follower.
func TestReplicaStatusLagFields(t *testing.T) {
	p := startPrimary(t, storage.Options{})
	p.commit(rec(100, "E", 1))
	r, err := Open(Options{Dir: t.TempDir(), PrimaryAddr: p.addr})
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	waitConverged(t, p, r, 5*time.Second)

	// After a heartbeat interval the replica has seen the primary's
	// flushed frontier and reports zero byte lag.
	deadline := time.Now().Add(5 * time.Second)
	for {
		st := r.Status()
		if st.FlushedLSN == uint64(p.store.WAL().Flushed()) && st.LagBytes == 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("lag fields never settled: %+v", r.Status())
		}
		time.Sleep(5 * time.Millisecond)
	}
	ps := p.prim.Status()
	if ps.Role != "primary" || ps.Connections != 1 || ps.Batches == 0 {
		t.Fatalf("primary status %+v", ps)
	}
}
