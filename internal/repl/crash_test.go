package repl

import (
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"testing"
	"time"

	"repro/internal/datum"
	"repro/internal/failpoint"
	"repro/internal/storage"
)

// replCrashSites are the follower-side failpoints the matrix samples:
// the three danger windows of a replicated batch apply (logged but
// not synced; synced but not installed; installed, with the local
// checkpoint possibly racing) and the two danger windows of a
// bootstrap (a chain file landed but the chain is incomplete; the new
// generation fully built but the CURRENT pointer not yet flipped).
var replCrashSites = []string{
	"repl.midApply",
	"repl.beforeInstall",
	"repl.afterInstall",
	"repl.midBootstrap",
	"repl.beforeCurrent",
}

func bootstrapSite(site string) bool {
	return site == "repl.midBootstrap" || site == "repl.beforeCurrent"
}

// captureTree reads every file under the replica root into memory,
// relative-path keyed — the on-disk state "at the instant of the
// crash". It runs inside a failpoint hook, so the stream goroutine
// (the only one that applies batches or flips generations) is paused
// while we read; per-generation files are read WAL first, then deltas,
// then the full snapshot, so a replica-local checkpoint racing the
// copy can only widen chain coverage past the copied WAL (the same
// one-sided argument the storage crash matrix makes).
func captureTree(root string) (map[string][]byte, error) {
	out := map[string][]byte{}
	read := func(rel string) error {
		b, err := os.ReadFile(filepath.Join(root, rel))
		if os.IsNotExist(err) {
			return nil
		}
		if err != nil {
			return err
		}
		out[rel] = b
		return nil
	}
	if err := read(currentFile); err != nil {
		return nil, err
	}
	entries, err := os.ReadDir(root)
	if err != nil {
		return nil, err
	}
	for _, e := range entries {
		if !e.IsDir() || !strings.HasPrefix(e.Name(), "data-") {
			continue
		}
		gen := e.Name()
		if err := read(filepath.Join(gen, "wal")); err != nil {
			return nil, err
		}
		genEntries, err := os.ReadDir(filepath.Join(root, gen))
		if err != nil {
			return nil, err
		}
		var deltas, rest []string
		for _, ge := range genEntries {
			switch {
			case ge.Name() == "wal":
			case strings.HasPrefix(ge.Name(), "delta-"):
				deltas = append(deltas, ge.Name())
			default:
				rest = append(rest, ge.Name())
			}
		}
		sort.Strings(deltas)
		sort.Strings(rest)
		for _, n := range append(deltas, rest...) {
			if err := read(filepath.Join(gen, n)); err != nil {
				return nil, err
			}
		}
	}
	return out, nil
}

func restoreTree(t *testing.T, root string, files map[string][]byte) {
	t.Helper()
	for rel, b := range files {
		path := filepath.Join(root, rel)
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, b, 0o644); err != nil {
			t.Fatal(err)
		}
	}
}

// TestFollowerCrashMatrix crashes a follower at sampled failpoints —
// mid-bootstrap, mid-batch-apply, between the WAL append (the durable
// applied-LSN) and the install, and just before the generation
// pointer flip — then reboots it from the captured files and asserts
// it converges byte-equal to the primary. A third of the rounds also
// truncate the primary's WAL past the crashed follower's frontier
// while it is down, forcing the catchup to go through a re-bootstrap.
func TestFollowerCrashMatrix(t *testing.T) {
	rounds := 30
	if testing.Short() {
		rounds = 8
	}
	rng := rand.New(rand.NewSource(0x8ad5eed))
	for r := 0; r < rounds; r++ {
		site := replCrashSites[r%len(replCrashSites)]
		hits := 1 + rng.Intn(8)
		if bootstrapSite(site) {
			// midBootstrap fires once per chain file (the priming
			// checkpoints give the chain two), beforeCurrent once per
			// bootstrap.
			hits = 1
			if site == "repl.midBootstrap" {
				hits = 1 + rng.Intn(2)
			}
		}
		truncate := r%3 == 0
		// Some rounds let the follower checkpoint its own log while
		// batches apply, so the capture can land mid-checkpoint too.
		replCkpt := uint64(0)
		if rng.Intn(3) == 0 {
			replCkpt = 256
		}
		t.Run(fmt.Sprintf("r%02d-%s-hit%d-trunc%v-ckpt%d", r, site, hits, truncate, replCkpt),
			func(t *testing.T) {
				runReplCrashRound(t, site, hits, truncate, replCkpt)
			})
	}
}

func runReplCrashRound(t *testing.T, site string, hits int, truncate bool, replCkpt uint64) {
	p := startPrimary(t, storage.Options{})
	oid := datum.OID(0)
	commitSome := func(n int) {
		for i := 0; i < n; i++ {
			oid++
			p.commit(rec(oid, "E", int64(oid)), rec(oid%7+1000, "E", int64(oid)))
		}
	}
	// Prime a two-file chain (full + delta) so bootstrap ships several
	// files and midBootstrap has more than one place to fire.
	commitSome(5)
	if _, err := p.store.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	commitSome(5)
	if _, err := p.store.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	commitSome(3)

	rroot := t.TempDir()
	var capture map[string][]byte
	captured := make(chan struct{})
	count := 0
	failpoint.Set(site, func() {
		select {
		case <-captured:
			return
		default:
		}
		count++
		if count < hits {
			return
		}
		snap, err := captureTree(rroot)
		if err != nil {
			t.Errorf("capture: %v", err)
		}
		capture = snap
		close(captured)
	})
	defer failpoint.Clear(site)

	r, err := Open(Options{Dir: rroot, PrimaryAddr: p.addr,
		ReconnectDelay: time.Millisecond, CheckpointAfterBytes: replCkpt})
	if err != nil {
		t.Fatal(err)
	}

	// Drive commits until the crash point fires (bootstrap sites fire
	// on their own; apply sites need batches flowing).
	deadline := time.Now().Add(15 * time.Second)
waiting:
	for {
		select {
		case <-captured:
			break waiting
		default:
		}
		if time.Now().After(deadline) {
			r.Close()
			t.Fatalf("failpoint %s never reached hit %d", site, hits)
		}
		commitSome(1)
		time.Sleep(time.Millisecond)
	}
	failpoint.Clear(site)
	if err := r.Close(); err != nil {
		t.Fatal(err)
	}

	// The primary moves on while the follower is "down"; optionally it
	// also truncates its WAL past anything the follower had applied.
	commitSome(4)
	if truncate {
		commitSome(8)
		if _, err := p.store.Compact(); err != nil {
			t.Fatal(err)
		}
	}

	// Reboot from the crash image and let catchup converge.
	rroot2 := t.TempDir()
	restoreTree(t, rroot2, capture)
	r2, err := Open(Options{Dir: rroot2, PrimaryAddr: p.addr,
		ReconnectDelay: time.Millisecond, CheckpointAfterBytes: replCkpt})
	if err != nil {
		t.Fatalf("reboot from %s crash image: %v", site, err)
	}
	defer r2.Close()
	rebootedAt := r2.AppliedLSN()
	waitConverged(t, p, r2, 15*time.Second)

	if got, want := dump(r2.Store(), "E"), dump(p.store, "E"); got != want {
		t.Fatalf("follower diverged after %s crash:\n got: %q\nwant: %q", site, got, want)
	}
	if final := r2.AppliedLSN(); final < rebootedAt {
		t.Fatalf("applied regressed across catchup: %d -> %d", rebootedAt, final)
	}
	if err := r2.AsyncError(); err != nil {
		t.Fatal(err)
	}
	if truncate {
		if st := r2.Status(); st.Bootstraps == 0 && rebootedAt < p.store.WAL().Base() {
			t.Fatalf("truncated catchup did not re-bootstrap: %+v", st)
		}
	}
}
