package repl

import (
	"math/rand"
	"os"
	"path/filepath"
	"testing"
	"time"

	"repro/internal/datum"
	"repro/internal/storage"
	"repro/internal/txn"
)

// TestReplicationEquivalence is the replication-equivalence property:
// a follower that lives through a randomized interleaving of commits,
// connection drops, checkpoints, and WAL truncations must, at every
// applied watermark it converges to, hold byte-equal state to a
// replay-only twin — a store built purely by recovery over a copy of
// the primary's files, with no streaming involved. The stream plus
// catchup machinery may never produce a state recovery alone would
// not.
func TestReplicationEquivalence(t *testing.T) {
	phases := 8
	if testing.Short() {
		phases = 4
	}
	rng := rand.New(rand.NewSource(0x7e11ca))
	p := startPrimary(t, storage.Options{})
	d := &dialTracker{addr: p.addr}
	r, err := Open(Options{Dir: t.TempDir(), PrimaryAddr: p.addr,
		Dial: d.dial, ReconnectDelay: time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()

	nextOID := datum.OID(2000)
	commitRandom := func() {
		var recs []storage.Record
		for i := 0; i < 1+rng.Intn(3); i++ {
			var o datum.OID
			if rng.Intn(4) == 0 {
				nextOID++
				o = nextOID
			} else {
				o = datum.OID(1 + rng.Intn(40))
			}
			rc := rec(o, "E", rng.Int63n(1_000_000))
			if rng.Intn(10) == 0 {
				rc = storage.Record{OID: o, Class: "E", Deleted: true}
			}
			recs = append(recs, rc)
		}
		p.commit(recs...)
	}

	for phase := 0; phase < phases; phase++ {
		for i := 0; i < 10+rng.Intn(15); i++ {
			commitRandom()
		}
		switch rng.Intn(4) {
		case 0:
			// Network drop mid-stream; the replica resumes on its own.
			d.drop()
		case 1:
			// Truncate the primary's WAL while the replica is down,
			// forcing the catchup through a re-bootstrap.
			d.setGate(true)
			d.drop()
			for i := 0; i < 5; i++ {
				commitRandom()
			}
			if _, err := p.store.Compact(); err != nil {
				t.Fatal(err)
			}
			d.setGate(false)
		case 2:
			// Checkpoint with the stream attached.
			if _, err := p.store.Checkpoint(); err != nil {
				t.Fatal(err)
			}
		}
		waitConverged(t, p, r, 10*time.Second)

		// The applied watermark this phase converged to: compare the
		// follower against the replay-only twin and the primary itself.
		twin := replayTwin(t, p)
		if got := dump(r.Store(), "E"); got != twin {
			t.Fatalf("phase %d: follower state != replay-only twin\n follower: %q\n twin: %q",
				phase, got, twin)
		}
		if prim := dump(p.store, "E"); prim != twin {
			t.Fatalf("phase %d: primary state != its own replay\n primary: %q\n twin: %q",
				phase, prim, twin)
		}
	}
	if err := r.AsyncError(); err != nil {
		t.Fatal(err)
	}
}

// replayTwin copies the primary's quiesced files (no commit is in
// flight between phases) and opens the copy as a fresh store: its
// state is what chain+WAL recovery alone reconstructs at the current
// watermark.
func replayTwin(t *testing.T, p *primaryNode) string {
	t.Helper()
	dir := t.TempDir()
	entries, err := os.ReadDir(p.dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if e.IsDir() {
			continue
		}
		b, err := os.ReadFile(filepath.Join(p.dir, e.Name()))
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(filepath.Join(dir, e.Name()), b, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	txns, _ := txn.NewSystem()
	st, err := storage.Open(txns, storage.Options{Dir: dir})
	if err != nil {
		t.Fatalf("replay twin: %v", err)
	}
	defer st.Close()
	return dump(st, "E")
}
