package repl

import (
	"fmt"
	"io"

	"repro/internal/obs"
)

// WritePrometheus renders the primary's shipping counters in the
// Prometheus text format. hipacd appends it to the engine's exposition
// when -repl-listen is set; the repl_batch_bytes histogram itself
// flows through the engine's shared obs snapshot.
func (p *Primary) WritePrometheus(w io.Writer) error {
	st := p.Status()
	rows := []struct {
		name, typ string
		value     uint64
	}{
		{"hipac_repl_connections", "gauge", uint64(st.Connections)},
		{"hipac_repl_flushed_lsn", "gauge", st.FlushedLSN},
		{"hipac_repl_batches_shipped_total", "counter", st.Batches},
		{"hipac_repl_resyncs_total", "counter", st.Bootstraps},
	}
	for _, r := range rows {
		if _, err := fmt.Fprintf(w, "# TYPE %s %s\n%s %d\n", r.name, r.typ, r.name, r.value); err != nil {
			return err
		}
	}
	return nil
}

// WritePrometheus renders the replica's lag gauges, catchup counters,
// store stats, and histograms (including repl_lag) in the Prometheus
// text format. hipacd serves it on the -metrics listener in replica
// mode.
func (r *Replica) WritePrometheus(w io.Writer) error {
	st := r.Status()
	rows := []struct {
		name, typ string
		value     uint64
	}{
		{"hipac_repl_applied_lsn", "gauge", st.AppliedLSN},
		{"hipac_repl_primary_flushed_lsn", "gauge", st.FlushedLSN},
		{"hipac_repl_lag_bytes", "gauge", st.LagBytes},
		{"hipac_repl_lag_nanos", "gauge", uint64(st.LagNanos)},
		{"hipac_repl_generation", "gauge", uint64(st.Generation)},
		{"hipac_repl_batches_applied_total", "counter", st.Batches},
		{"hipac_repl_reconnects_total", "counter", st.Reconnects},
		{"hipac_repl_bootstraps_total", "counter", st.Bootstraps},
	}
	for _, row := range rows {
		if _, err := fmt.Fprintf(w, "# TYPE %s %s\n%s %d\n", row.name, row.typ, row.name, row.value); err != nil {
			return err
		}
	}
	if store := r.Store(); store != nil {
		s := store.Stats()
		gauges := []struct {
			name  string
			value uint64
		}{
			{"hipac_store_published_lsn", s.PublishedLSN},
			{"hipac_store_oldest_snapshot_lsn", s.OldestSnapshotLSN},
			{"hipac_store_live_snapshots", uint64(s.LiveSnapshots)},
			{"hipac_store_gets_total", s.Gets},
			{"hipac_store_scans_total", s.Scans},
		}
		for _, g := range gauges {
			if _, err := fmt.Fprintf(w, "# TYPE %s gauge\n%s %d\n", g.name, g.name, g.value); err != nil {
				return err
			}
		}
	}
	return obs.WritePrometheus(w, r.o.Snapshot(), "hipac")
}
