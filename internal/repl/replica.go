package repl

import (
	"errors"
	"fmt"
	"net"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/datum"
	"repro/internal/failpoint"
	"repro/internal/ipc"
	"repro/internal/object"
	"repro/internal/obs"
	"repro/internal/plan"
	"repro/internal/query"
	"repro/internal/storage"
	"repro/internal/txn"
	"repro/internal/wal"
)

// ErrNotBootstrapped is returned for reads before the first chain
// ship has completed.
var ErrNotBootstrapped = errors.New("repl: replica has no store yet (still bootstrapping)")

// ErrPromoted is returned once Promote has detached the replica.
var ErrPromoted = errors.New("repl: replica was promoted")

// currentFile is the durable pointer naming the live data generation
// inside the replica root directory.
const currentFile = "CURRENT"

// Options configures a replica.
type Options struct {
	// Dir is the replica root. It holds the CURRENT pointer plus one
	// data-NNNNNN directory per bootstrap generation; the live one is
	// a normal store directory (chain files + WAL).
	Dir string
	// PrimaryAddr is the primary's -repl-listen address.
	PrimaryAddr string
	// NoSync disables fsync on the replica's own WAL.
	NoSync bool
	// Shards is the store shard count (0: storage.DefaultShards).
	Shards int
	// CheckpointAfterBytes / CompactEvery tune the replica's own
	// checkpoints, which bound its local WAL exactly as on a primary.
	CheckpointAfterBytes uint64
	CompactEvery         int
	// Obs receives the replica's histograms (repl_lag and the store's
	// usual set); nil builds a default-enabled one.
	Obs *obs.Obs
	// Dial overrides the connection factory (tests); nil means TCP.
	Dial func(addr string) (net.Conn, error)
	// ReconnectDelay is the pause between connection attempts
	// (default 100ms).
	ReconnectDelay time.Duration
}

// Replica tails a primary's WAL stream into its own store and serves
// read-only traffic at its applied-LSN frontier. The applied frontier
// is durable for free: each batch is appended to the replica's own
// WAL (base-aligned with the primary's logical LSNs) before it is
// installed, so the local log end IS the resume point after a crash —
// the same log-then-install discipline the primary's commits use.
type Replica struct {
	opts Options
	o    *obs.Obs
	txns *txn.Manager

	stop chan struct{}
	wg   sync.WaitGroup

	mu       sync.Mutex
	store    *storage.Store
	objects  *object.Manager
	objSeq   uint64
	gen      int
	dataDir  string
	state    string
	conn     net.Conn // live stream connection, closed by Close/Promote
	promoted bool
	closed   bool
	asyncErr error

	applied     atomic.Uint64 // wal.LSN; never regresses
	flushedSeen atomic.Uint64 // primary's durable frontier, last heard
	lagNanos    atomic.Int64  // last batch's send→apply latency

	nBatches    atomic.Uint64
	nReconnects atomic.Uint64
	nBootstraps atomic.Uint64
}

// Open starts a replica: it reopens the current data generation if
// one exists (recovering through the store's normal replay path) and
// launches the background stream loop against the primary.
func Open(opts Options) (*Replica, error) {
	if opts.Dir == "" {
		return nil, errors.New("repl: replica needs a directory")
	}
	if opts.PrimaryAddr == "" {
		return nil, errors.New("repl: replica needs a primary address")
	}
	if opts.Dial == nil {
		opts.Dial = func(addr string) (net.Conn, error) { return net.Dial("tcp", addr) }
	}
	if opts.ReconnectDelay <= 0 {
		opts.ReconnectDelay = 100 * time.Millisecond
	}
	if opts.Obs == nil {
		opts.Obs = obs.New(obs.Options{})
	}
	if err := os.MkdirAll(opts.Dir, 0o755); err != nil {
		return nil, err
	}
	txns, _ := txn.NewSystem()
	r := &Replica{opts: opts, o: opts.Obs, txns: txns,
		stop: make(chan struct{}), state: "connecting"}

	if name, err := readCurrent(opts.Dir); err != nil {
		return nil, err
	} else if name != "" {
		dataDir := filepath.Join(opts.Dir, name)
		st, err := r.openStoreAt(dataDir)
		if err != nil {
			return nil, fmt.Errorf("repl: reopen %s: %w", dataDir, err)
		}
		r.store, r.dataDir = st, dataDir
		r.gen = genOf(name)
		r.applied.Store(uint64(st.WAL().End()))
	}

	r.wg.Add(1)
	go func() {
		defer r.wg.Done()
		r.run()
	}()
	return r, nil
}

// openStoreAt opens one data generation as a store. The replica's txn
// manager is only a source of read-transaction IDs; the store is not
// registered as a commit participant because nothing commits through
// the transaction path here — batches arrive via ApplyReplicated.
func (r *Replica) openStoreAt(dir string) (*storage.Store, error) {
	return storage.Open(r.txns, storage.Options{
		Dir: dir, NoSync: r.opts.NoSync, Shards: r.opts.Shards,
		CheckpointAfterBytes: r.opts.CheckpointAfterBytes,
		CompactEvery:         r.opts.CompactEvery,
		Obs:                  r.o.Metrics(),
		OnAsyncError: func(err error) {
			r.mu.Lock()
			r.asyncErr = err
			r.mu.Unlock()
		},
	})
}

// Close stops the stream loop and closes the store.
func (r *Replica) Close() error {
	r.mu.Lock()
	if r.closed {
		r.mu.Unlock()
		return nil
	}
	r.closed = true
	conn := r.conn
	r.mu.Unlock()
	close(r.stop)
	if conn != nil {
		conn.Close()
	}
	r.wg.Wait()
	r.mu.Lock()
	st := r.store
	r.store, r.objects = nil, nil
	r.mu.Unlock()
	if st != nil {
		return st.Close()
	}
	return nil
}

// Promote detaches the replica from its primary and hands back the
// live data directory: the stream loop is stopped, the store is
// closed (flushing its WAL), and the caller reopens the directory as
// a normal writable engine — recovery replays the applied suffix, so
// the promoted store is exactly the replicated state at the applied
// frontier. Reads through this Replica fail afterwards.
func (r *Replica) Promote() (string, error) {
	r.mu.Lock()
	if r.promoted {
		r.mu.Unlock()
		return "", ErrPromoted
	}
	if r.closed {
		r.mu.Unlock()
		return "", errors.New("repl: replica closed")
	}
	if r.store == nil {
		r.mu.Unlock()
		return "", ErrNotBootstrapped
	}
	r.promoted = true
	r.closed = true
	conn := r.conn
	r.mu.Unlock()
	close(r.stop)
	if conn != nil {
		conn.Close()
	}
	r.wg.Wait()
	r.mu.Lock()
	st, dir := r.store, r.dataDir
	r.store, r.objects = nil, nil
	r.mu.Unlock()
	if err := st.Close(); err != nil {
		return "", err
	}
	return dir, nil
}

// AppliedLSN returns the replica's applied frontier: every commit
// below it is installed and readable. It never regresses, across
// reconnects and re-bootstraps alike.
func (r *Replica) AppliedLSN() wal.LSN { return wal.LSN(r.applied.Load()) }

// WaitApplied blocks until the applied frontier reaches lsn or the
// timeout expires.
func (r *Replica) WaitApplied(lsn wal.LSN, timeout time.Duration) bool {
	deadline := time.Now().Add(timeout)
	for {
		if r.AppliedLSN() >= lsn {
			return true
		}
		if time.Now().After(deadline) {
			return false
		}
		time.Sleep(time.Millisecond)
	}
}

// Status reports the replica's replication state.
func (r *Replica) Status() ipc.ReplStatusRep {
	rep := ipc.ReplStatusRep{
		Role:       "replica",
		Primary:    r.opts.PrimaryAddr,
		AppliedLSN: r.applied.Load(),
		FlushedLSN: r.flushedSeen.Load(),
		LagNanos:   r.lagNanos.Load(),
		Batches:    r.nBatches.Load(),
		Reconnects: r.nReconnects.Load(),
		Bootstraps: r.nBootstraps.Load(),
	}
	if rep.FlushedLSN > rep.AppliedLSN {
		rep.LagBytes = rep.FlushedLSN - rep.AppliedLSN
	}
	r.mu.Lock()
	rep.State = r.state
	rep.Generation = r.gen
	if r.promoted {
		rep.Role = "promoted"
	}
	r.mu.Unlock()
	return rep
}

// AsyncError returns the last error recorded by the replica's store
// background work (size-triggered checkpoints), if any.
func (r *Replica) AsyncError() error {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.asyncErr
}

// --- read path ---

// reader returns the object manager over the current store, rebuilt
// lazily whenever the replicated class catalog changes (the catalog
// lives in the __class system class, so its mod sequence tells us
// when a DefineClass arrived from the primary).
func (r *Replica) reader() (*object.Manager, *txn.Manager, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.promoted {
		return nil, nil, ErrPromoted
	}
	if r.store == nil {
		return nil, nil, ErrNotBootstrapped
	}
	seq := r.store.ModSeq(object.MetaClass)
	if r.objects == nil || seq != r.objSeq {
		r.objects = object.NewManager(r.store, nil)
		r.objSeq = seq
	}
	return r.objects, r.txns, nil
}

// Query evaluates a read-only select against one pinned MVCC
// snapshot, returning the result and the snapshot's commit LSN.
func (r *Replica) Query(src string, args map[string]datum.Value) (*query.Result, uint64, error) {
	m, txns, err := r.reader()
	if err != nil {
		return nil, 0, err
	}
	q, err := query.Parse(src)
	if err != nil {
		return nil, 0, err
	}
	t := txns.Begin()
	defer t.Commit()
	sr := m.SnapshotReader(t)
	defer sr.Close()
	// Planner-backed execution, same as the primary's query path: the
	// snapshot reader doubles as the statistics catalog.
	res, err := plan.Run(q, sr, args)
	if err != nil {
		return nil, 0, err
	}
	return res, sr.SnapshotLSN(), nil
}

// Get fetches one object at the newest published snapshot.
func (r *Replica) Get(oid datum.OID) (storage.Record, error) {
	m, txns, err := r.reader()
	if err != nil {
		return storage.Record{}, err
	}
	t := txns.Begin()
	defer t.Commit()
	sr := m.SnapshotReader(t)
	defer sr.Close()
	class, attrs, ok := sr.Fetch(oid)
	if !ok {
		return storage.Record{}, fmt.Errorf("repl: no object %d", oid)
	}
	return storage.Record{OID: oid, Class: class, Attrs: attrs}, nil
}

// Classes lists the replicated class catalog.
func (r *Replica) Classes() ([]object.Class, error) {
	m, txns, err := r.reader()
	if err != nil {
		return nil, err
	}
	t := txns.Begin()
	defer t.Commit()
	return m.Classes(t)
}

// Store exposes the current store for tests and stats; nil before the
// first bootstrap. The swap during a re-bootstrap leaves old stores'
// in-memory tier intact, so a caller holding one across the swap
// still reads consistent (if stale) data.
func (r *Replica) Store() *storage.Store {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.store
}

// --- stream loop ---

func (r *Replica) stopped() bool {
	select {
	case <-r.stop:
		return true
	default:
		return false
	}
}

func (r *Replica) setState(s string) {
	r.mu.Lock()
	r.state = s
	r.mu.Unlock()
}

func (r *Replica) run() {
	first := true
	for !r.stopped() {
		if !first {
			r.nReconnects.Add(1)
			select {
			case <-time.After(r.opts.ReconnectDelay):
			case <-r.stop:
				return
			}
		}
		first = false
		r.setState("connecting")
		conn, err := r.opts.Dial(r.opts.PrimaryAddr)
		if err != nil {
			continue
		}
		r.mu.Lock()
		if r.closed {
			r.mu.Unlock()
			conn.Close()
			return
		}
		r.conn = conn
		r.mu.Unlock()
		r.stream(conn) // errors surface as a reconnect
		r.mu.Lock()
		r.conn = nil
		r.mu.Unlock()
		conn.Close()
	}
}

// hello reports the replica's resume point: the local WAL end when a
// store exists, else a bootstrap request.
func (r *Replica) hello(conn net.Conn) error {
	r.mu.Lock()
	st := r.store
	r.mu.Unlock()
	if st == nil {
		return writeFrame(conn, frameHello, encodeHello(modeBootstrap, 0))
	}
	return writeFrame(conn, frameHello, encodeHello(modeResume, st.WAL().End()))
}

// stream drives one connection: handshake, then frames until error.
func (r *Replica) stream(conn net.Conn) error {
	if err := r.hello(conn); err != nil {
		return err
	}
	for {
		typ, payload, err := readFrame(conn)
		if err != nil {
			return err
		}
		switch typ {
		case frameOK:
			from, err := parseOK(payload)
			if err != nil {
				return err
			}
			if got := r.AppliedLSN(); from != got && !(got == 0 && r.Store() == nil) {
				return fmt.Errorf("repl: primary acked resume %d, expected %d", from, got)
			}
			r.setState("streaming")

		case frameResync:
			r.setState("bootstrapping")
			if err := r.bootstrap(conn); err != nil {
				return err
			}
			if err := r.hello(conn); err != nil {
				return err
			}

		case frameBatch:
			lsn, sentNanos, redo, err := parseBatch(payload)
			if err != nil {
				return err
			}
			st := r.Store()
			if st == nil {
				return errors.New("repl: batch before bootstrap")
			}
			end, err := st.ApplyReplicated(lsn, redo)
			if err != nil {
				return err
			}
			r.advanceApplied(uint64(end))
			r.nBatches.Add(1)
			lag := time.Duration(time.Now().UnixNano() - sentNanos)
			if lag > 0 {
				r.lagNanos.Store(int64(lag))
				r.o.Metrics().Observe(obs.HReplLag, lag)
			}

		case frameHeartbeat:
			flushed, sentNanos, err := parseHeartbeat(payload)
			if err != nil {
				return err
			}
			r.flushedSeen.Store(uint64(flushed))
			if wal.LSN(flushed) <= r.AppliedLSN() {
				// Caught up: the transit latency of the heartbeat itself
				// is the best available lag estimate.
				if lag := time.Now().UnixNano() - sentNanos; lag > 0 {
					r.lagNanos.Store(lag)
				}
			}

		case frameErr:
			return fmt.Errorf("repl: primary: %s", string(payload))

		default:
			return fmt.Errorf("repl: unexpected frame type %d", typ)
		}
	}
}

// advanceApplied moves the applied frontier monotonically.
func (r *Replica) advanceApplied(lsn uint64) {
	for {
		cur := r.applied.Load()
		if lsn <= cur || r.applied.CompareAndSwap(cur, lsn) {
			return
		}
	}
}

// bootstrap receives a shipped snapshot chain into a fresh data
// generation, validates it, aligns a new WAL at the achieved
// watermark, and atomically flips the CURRENT pointer to it. Old
// state survives any crash before the flip; readers swap to the new
// store only after it is fully built, and the applied frontier only
// ever jumps forward (the shipped watermark is at or above the WAL
// base that forced the resync, which is above our stale frontier).
func (r *Replica) bootstrap(conn net.Conn) error {
	r.nBootstraps.Add(1)
	r.mu.Lock()
	newGen := r.gen + 1
	r.mu.Unlock()
	name := fmt.Sprintf("data-%06d", newGen)
	newDir := filepath.Join(r.opts.Dir, name)
	if err := os.RemoveAll(newDir); err != nil {
		return err
	}
	if err := os.MkdirAll(newDir, 0o755); err != nil {
		return err
	}

	if err := r.receiveChain(conn, newDir); err != nil {
		os.RemoveAll(newDir)
		return err
	}

	watermark, err := storage.ChainWatermark(newDir)
	if err != nil {
		os.RemoveAll(newDir)
		return err
	}
	if uint64(watermark) < r.applied.Load() {
		// A racing compaction shipped a chain older than what we had
		// already applied; installing it would regress reads. Drop it
		// and re-handshake — the next resync ships the newer chain.
		os.RemoveAll(newDir)
		return fmt.Errorf("repl: shipped chain watermark %d below applied %d", watermark, r.AppliedLSN())
	}
	if err := wal.InitFile(filepath.Join(newDir, "wal"), watermark); err != nil {
		os.RemoveAll(newDir)
		return err
	}
	newStore, err := r.openStoreAt(newDir)
	if err != nil {
		os.RemoveAll(newDir)
		return err
	}

	failpoint.Hit("repl.beforeCurrent")
	if err := writeCurrent(r.opts.Dir, name); err != nil {
		newStore.Close()
		os.RemoveAll(newDir)
		return err
	}

	r.mu.Lock()
	old, oldDir := r.store, r.dataDir
	r.store, r.dataDir, r.gen = newStore, newDir, newGen
	r.objects = nil
	r.mu.Unlock()
	r.advanceApplied(uint64(watermark))
	if old != nil {
		old.Close() // in-memory tier stays readable for raced readers
		os.RemoveAll(oldDir)
	}
	return nil
}

// receiveChain writes file frames into dir until chainEnd. Each file
// is fsynced on close and the directory once at the end, so a crash
// after the CURRENT flip can never find a torn chain behind it.
func (r *Replica) receiveChain(conn net.Conn, dir string) error {
	var cur *os.File
	var curName string
	closeCur := func() error {
		if cur == nil {
			return nil
		}
		if err := cur.Sync(); err != nil {
			cur.Close()
			return err
		}
		err := cur.Close()
		cur = nil
		failpoint.Hit("repl.midBootstrap")
		return err
	}
	for {
		typ, payload, err := readFrame(conn)
		if err != nil {
			closeCur()
			return err
		}
		switch typ {
		case frameFile:
			name, chunk, err := parseFile(payload)
			if err != nil {
				closeCur()
				return err
			}
			if strings.ContainsAny(name, "/\\") || name == "." || name == ".." {
				closeCur()
				return fmt.Errorf("repl: unsafe chain file name %q", name)
			}
			if name != curName || cur == nil {
				if err := closeCur(); err != nil {
					return err
				}
				cur, err = os.OpenFile(filepath.Join(dir, name),
					os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
				if err != nil {
					return err
				}
				curName = name
			}
			if _, err := cur.Write(chunk); err != nil {
				closeCur()
				return err
			}
		case frameChainEnd:
			if err := closeCur(); err != nil {
				return err
			}
			return syncDir(dir)
		case frameHeartbeat:
			// Harmless straggler from the previous tail phase.
		case frameErr:
			closeCur()
			return fmt.Errorf("repl: primary: %s", string(payload))
		default:
			closeCur()
			return fmt.Errorf("repl: unexpected frame %d during bootstrap", typ)
		}
	}
}

// --- CURRENT pointer ---

func readCurrent(root string) (string, error) {
	b, err := os.ReadFile(filepath.Join(root, currentFile))
	if errors.Is(err, os.ErrNotExist) {
		return "", nil
	}
	if err != nil {
		return "", err
	}
	name := strings.TrimSpace(string(b))
	if name == "" || strings.ContainsAny(name, "/\\") {
		return "", fmt.Errorf("repl: corrupt CURRENT pointer %q", name)
	}
	if _, err := os.Stat(filepath.Join(root, name)); err != nil {
		return "", fmt.Errorf("repl: CURRENT names missing generation %q: %w", name, err)
	}
	return name, nil
}

// writeCurrent durably flips the generation pointer: write a temp
// file, fsync, rename over CURRENT, fsync the directory.
func writeCurrent(root, name string) error {
	tmp := filepath.Join(root, currentFile+".tmp")
	f, err := os.OpenFile(tmp, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return err
	}
	if _, err := f.WriteString(name + "\n"); err != nil {
		f.Close()
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	if err := os.Rename(tmp, filepath.Join(root, currentFile)); err != nil {
		return err
	}
	return syncDir(root)
}

func genOf(name string) int {
	var g int
	fmt.Sscanf(name, "data-%06d", &g)
	return g
}

// syncDir fsyncs a directory so just-renamed entries survive a crash.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	defer d.Close()
	return d.Sync()
}
