package failpoint

// First tests for the injection registry. The crash matrices lean on
// three properties: an unarmed site is (nearly) free and never fires,
// arm/disarm is exact (no leftover hooks to poison the next round),
// and concurrent Hit calls racing Set/Clear neither crash nor fire a
// hook for the wrong site.

import (
	"sync"
	"sync/atomic"
	"testing"
)

func TestArmDisarm(t *testing.T) {
	defer ClearAll()
	var hits int
	Hit("t.site") // unarmed: no-op
	Set("t.site", func() { hits++ })
	Hit("t.site")
	Hit("t.other") // armed registry, different site: still no-op
	if hits != 1 {
		t.Fatalf("hits = %d, want 1", hits)
	}
	Clear("t.site")
	Hit("t.site")
	if hits != 1 {
		t.Fatalf("hits after Clear = %d, want 1", hits)
	}
	// Replacing a hook must not double-count the site: ClearAll's
	// bookkeeping would otherwise leave the fast-path counter armed
	// forever and every Hit would take the slow path.
	Set("t.site", func() {})
	Set("t.site", func() { hits += 100 })
	Hit("t.site")
	if hits != 101 {
		t.Fatalf("hits after replace = %d, want 101", hits)
	}
}

func TestClearAllResetsFastPath(t *testing.T) {
	Set("a", func() {})
	Set("b", func() {})
	ClearAll()
	if active.Load() != 0 {
		t.Fatalf("active = %d after ClearAll, want 0", active.Load())
	}
	// Clearing a never-set site must not unbalance the counter.
	Clear("never-set")
	if active.Load() != 0 {
		t.Fatalf("active = %d after spurious Clear, want 0", active.Load())
	}
}

// TestConcurrentFire hammers one armed site from many goroutines
// while another goroutine repeatedly arms and disarms a second site.
// Every hit of the armed site must run its own hook; the racing site
// must only ever run its own. Run under -race this also proves the
// registry's internal synchronization.
func TestConcurrentFire(t *testing.T) {
	defer ClearAll()
	var stable, flicker atomic.Int64
	Set("t.stable", func() { stable.Add(1) })

	const goroutines = 8
	const perG = 2000
	stop := make(chan struct{})
	var armWG sync.WaitGroup
	armWG.Add(1)
	go func() {
		defer armWG.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			Set("t.flicker", func() { flicker.Add(1) })
			Hit("t.flicker")
			Clear("t.flicker")
		}
	}()

	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				Hit("t.stable")
				Hit("t.flicker") // may or may not be armed; must not panic
			}
		}()
	}
	wg.Wait()
	close(stop)
	armWG.Wait()

	if got := stable.Load(); got != goroutines*perG {
		t.Fatalf("stable site fired %d times, want %d", got, goroutines*perG)
	}
	if flicker.Load() == 0 {
		t.Fatal("flicker site never fired from its own goroutine")
	}
}
