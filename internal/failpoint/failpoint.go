// Package failpoint is a test-only crash/fault injection registry.
// Durability-critical code paths (WAL append, fsync, checkpoint
// snapshot, rename, truncate) call Hit with a site name; tests
// register callbacks that capture on-disk state mid-operation or
// simulate a crash at exactly that instant. In production no hook is
// registered and Hit costs a single atomic load.
package failpoint

import (
	"sync"
	"sync/atomic"
)

var (
	active atomic.Int32 // number of registered hooks; 0 = fast path
	mu     sync.RWMutex
	hooks  map[string]func()
)

// Hit invokes the hook registered for the named site, if any. The
// hook runs synchronously on the calling goroutine, which may hold
// internal locks of the calling package — hooks must not call back
// into the store or log they are observing.
func Hit(name string) {
	if active.Load() == 0 {
		return
	}
	mu.RLock()
	fn := hooks[name]
	mu.RUnlock()
	if fn != nil {
		fn()
	}
}

// Set registers (or replaces) the hook for a site.
func Set(name string, fn func()) {
	mu.Lock()
	defer mu.Unlock()
	if hooks == nil {
		hooks = map[string]func(){}
	}
	if _, exists := hooks[name]; !exists {
		active.Add(1)
	}
	hooks[name] = fn
}

// Clear removes the hook for a site.
func Clear(name string) {
	mu.Lock()
	defer mu.Unlock()
	if _, exists := hooks[name]; exists {
		delete(hooks, name)
		active.Add(-1)
	}
}

// ClearAll removes every registered hook.
func ClearAll() {
	mu.Lock()
	defer mu.Unlock()
	active.Add(-int32(len(hooks)))
	hooks = nil
}
