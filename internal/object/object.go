// Package object implements the HiPAC Object Manager (§5.1 of the
// paper): object-oriented data management — class definitions, typed
// instances, and DDL/DML execution inside transactions. In the course
// of executing operations it obtains locks from the Transaction
// Manager and acts as an event detector, reporting database
// operations to the Rule Manager (synchronously, so the triggering
// operation is suspended while immediate rule firings run, per §6.2).
//
// Lock protocol (items are named "class/<name>", "extent/<class>",
// "obj/<oid>"):
//
//	DefineClass/DropClass  X class
//	Create                 S class, X extent, X obj
//	Modify                 S class, X obj
//	Delete                 S class, X extent, X obj
//	Get                    S obj
//	Scan (queries)         S extent, then S obj per visited object
//
// Class definitions are stored as ordinary records (class "__class"),
// so DDL is transactional with the same visibility rules as data.
// Classes whose names start with "__" are system classes: they accept
// operations but emit no database events.
package object

import (
	"encoding/json"
	"errors"
	"fmt"
	"strings"
	"sync"

	"repro/internal/datum"
	"repro/internal/event"
	"repro/internal/lock"
	"repro/internal/storage"
	"repro/internal/txn"
)

// MetaClass is the system class holding class definitions.
const MetaClass = "__class"

// Errors returned by object operations.
var (
	ErrNoSuchClass  = errors.New("object: no such class")
	ErrClassExists  = errors.New("object: class already exists")
	ErrNoSuchObject = errors.New("object: no such object")
	ErrSchema       = errors.New("object: schema violation")
	ErrClassInUse   = errors.New("object: class extent not empty")
)

// AttrDef declares one attribute of a class.
type AttrDef struct {
	Name     string     `json:"name"`
	Kind     datum.Kind `json:"kind"`
	Required bool       `json:"required,omitempty"`
	Indexed  bool       `json:"indexed,omitempty"`
}

// Class is a class (type) definition.
type Class struct {
	Name  string    `json:"name"`
	Attrs []AttrDef `json:"attrs"`
}

// Attr returns the definition of the named attribute.
func (c *Class) Attr(name string) (AttrDef, bool) {
	for _, a := range c.Attrs {
		if a.Name == name {
			return a, true
		}
	}
	return AttrDef{}, false
}

// EventSink receives database-operation events; the engine connects
// it to the event detectors.
type EventSink interface {
	// SignalDatabase reports an operation; a non-nil error propagates
	// to the caller of the operation (the operation's storage effects
	// remain and are discarded when the caller aborts).
	SignalDatabase(op event.Op, class string, tx lock.TxnID, bindings map[string]datum.Value) error
}

// Manager is the Object Manager.
type Manager struct {
	store *storage.Store
	sink  EventSink

	mu      sync.RWMutex
	byName  map[string]datum.OID // class name -> schema record OID (may be uncommitted)
	sinkOff bool
}

// NewManager returns an Object Manager over the store. Pass a nil
// sink to run without event detection (it can be set later with
// SetSink). Existing committed class definitions are loaded and their
// indexes registered.
func NewManager(store *storage.Store, sink EventSink) *Manager {
	m := &Manager{store: store, sink: sink, byName: map[string]datum.OID{}}
	// Rebuild the catalog index from the committed tier (recovery).
	// Index registration happens after the scan: it takes the store's
	// write lock, which must not nest inside the scan's read lock.
	var classes []Class
	store.ScanClass(0, MetaClass, func(rec storage.Record) bool {
		name := rec.Attrs["name"].AsString()
		m.byName[name] = rec.OID
		if cls, err := decodeClass(rec); err == nil {
			classes = append(classes, cls)
		}
		return true
	})
	for _, cls := range classes {
		m.registerIndexes(cls)
	}
	return m
}

// SetSink installs the event sink (done by the engine after the
// detectors exist). Not safe to call concurrently with operations.
func (m *Manager) SetSink(sink EventSink) { m.sink = sink }

func (m *Manager) signal(op event.Op, class string, tx lock.TxnID, bindings map[string]datum.Value) error {
	if m.sink == nil || strings.HasPrefix(class, "__") {
		return nil
	}
	return m.sink.SignalDatabase(op, class, tx, bindings)
}

func (m *Manager) registerIndexes(c Class) {
	for _, a := range c.Attrs {
		if a.Indexed {
			m.store.RegisterIndex(c.Name, a.Name)
		}
	}
}

func encodeClass(c Class) (map[string]datum.Value, error) {
	def, err := json.Marshal(c)
	if err != nil {
		return nil, fmt.Errorf("object: encode class: %w", err)
	}
	return map[string]datum.Value{
		"name": datum.Str(c.Name),
		"def":  datum.Str(string(def)),
	}, nil
}

func decodeClass(rec storage.Record) (Class, error) {
	var c Class
	if err := json.Unmarshal([]byte(rec.Attrs["def"].AsString()), &c); err != nil {
		return Class{}, fmt.Errorf("object: decode class: %w", err)
	}
	return c, nil
}

// DefineClass creates a class (DDL). The definition is transactional:
// it becomes visible to other transactions when tx commits.
func (m *Manager) DefineClass(tx *txn.Txn, c Class) error {
	if c.Name == "" {
		return fmt.Errorf("%w: class needs a name", ErrSchema)
	}
	seen := map[string]bool{}
	for _, a := range c.Attrs {
		if a.Name == "" {
			return fmt.Errorf("%w: attribute needs a name", ErrSchema)
		}
		if seen[a.Name] {
			return fmt.Errorf("%w: duplicate attribute %q", ErrSchema, a.Name)
		}
		seen[a.Name] = true
	}
	if err := tx.Lock(classItem(c.Name), lock.Exclusive); err != nil {
		return err
	}
	if _, err := m.lookupClass(tx, c.Name); err == nil {
		return fmt.Errorf("%w: %q", ErrClassExists, c.Name)
	}
	attrs, err := encodeClass(c)
	if err != nil {
		return err
	}
	oid := m.store.AllocOID()
	if err := tx.Lock(objItem(oid), lock.Exclusive); err != nil {
		return err
	}
	m.store.Put(tx.ID(), storage.Record{OID: oid, Class: MetaClass, Attrs: attrs})
	m.mu.Lock()
	m.byName[c.Name] = oid
	m.mu.Unlock()
	m.registerIndexes(c)
	return m.signal(event.OpDefineClass, c.Name, tx.ID(), map[string]datum.Value{
		"op":    datum.Str(string(event.OpDefineClass)),
		"class": datum.Str(c.Name),
	})
}

// DropClass removes a class definition (DDL). The extent must be
// empty as seen by tx.
func (m *Manager) DropClass(tx *txn.Txn, name string) error {
	if err := tx.Lock(classItem(name), lock.Exclusive); err != nil {
		return err
	}
	rec, err := m.classRecord(tx, name)
	if err != nil {
		return err
	}
	inUse := false
	m.store.ScanClass(tx.ID(), name, func(storage.Record) bool {
		inUse = true
		return false
	})
	if inUse {
		return fmt.Errorf("%w: %q", ErrClassInUse, name)
	}
	if err := tx.Lock(objItem(rec.OID), lock.Exclusive); err != nil {
		return err
	}
	m.store.Put(tx.ID(), storage.Record{OID: rec.OID, Class: MetaClass, Deleted: true})
	return m.signal(event.OpDropClass, name, tx.ID(), map[string]datum.Value{
		"op":    datum.Str(string(event.OpDropClass)),
		"class": datum.Str(name),
	})
}

// classRecord returns the schema record for name as visible to tx.
func (m *Manager) classRecord(tx *txn.Txn, name string) (storage.Record, error) {
	m.mu.RLock()
	oid, ok := m.byName[name]
	m.mu.RUnlock()
	if ok {
		if rec, live := m.store.Get(tx.ID(), oid); live && rec.Attrs["name"].AsString() == name {
			return rec, nil
		}
	}
	// Slow path: the cached OID may be stale (aborted redefinition).
	var found storage.Record
	var hit bool
	m.store.ScanClass(tx.ID(), MetaClass, func(rec storage.Record) bool {
		if rec.Attrs["name"].AsString() == name {
			found, hit = rec, true
			return false
		}
		return true
	})
	if !hit {
		return storage.Record{}, fmt.Errorf("%w: %q", ErrNoSuchClass, name)
	}
	m.mu.Lock()
	m.byName[name] = found.OID
	m.mu.Unlock()
	return found, nil
}

// lookupClass returns the class definition visible to tx.
func (m *Manager) lookupClass(tx *txn.Txn, name string) (Class, error) {
	rec, err := m.classRecord(tx, name)
	if err != nil {
		return Class{}, err
	}
	return decodeClass(rec)
}

// GetClass returns the class definition visible to tx (taking a
// shared lock on the class).
func (m *Manager) GetClass(tx *txn.Txn, name string) (Class, error) {
	if err := tx.Lock(classItem(name), lock.Shared); err != nil {
		return Class{}, err
	}
	return m.lookupClass(tx, name)
}

// Classes lists the class definitions visible to tx, in name order.
func (m *Manager) Classes(tx *txn.Txn) ([]Class, error) {
	if err := tx.CheckOperable(); err != nil {
		return nil, err
	}
	var out []Class
	var decodeErr error
	m.store.ScanClass(tx.ID(), MetaClass, func(rec storage.Record) bool {
		c, err := decodeClass(rec)
		if err != nil {
			decodeErr = err
			return false
		}
		out = append(out, c)
		return true
	})
	if decodeErr != nil {
		return nil, decodeErr
	}
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && out[j].Name < out[j-1].Name; j-- {
			out[j], out[j-1] = out[j-1], out[j]
		}
	}
	return out, nil
}

// validate checks attrs against the class definition. For creates,
// required attributes must be present; for modifies, only the
// supplied attributes are checked.
func validate(c Class, attrs map[string]datum.Value, create bool) error {
	for name, v := range attrs {
		def, ok := c.Attr(name)
		if !ok {
			return fmt.Errorf("%w: class %q has no attribute %q", ErrSchema, c.Name, name)
		}
		if v.IsNull() {
			if def.Required {
				return fmt.Errorf("%w: attribute %q is required", ErrSchema, name)
			}
			continue
		}
		if v.Kind() != def.Kind &&
			!(v.IsNumeric() && (def.Kind == datum.KindInt || def.Kind == datum.KindFloat)) {
			return fmt.Errorf("%w: attribute %q wants %s, got %s", ErrSchema, name, def.Kind, v.Kind())
		}
	}
	if create {
		for _, def := range c.Attrs {
			if def.Required {
				if v, ok := attrs[def.Name]; !ok || v.IsNull() {
					return fmt.Errorf("%w: attribute %q is required", ErrSchema, def.Name)
				}
			}
		}
	}
	return nil
}

// coerce normalizes numeric values to the declared kind so indexes
// and comparisons see uniform keys.
func coerce(c Class, attrs map[string]datum.Value) map[string]datum.Value {
	out := make(map[string]datum.Value, len(attrs))
	for name, v := range attrs {
		def, ok := c.Attr(name)
		if ok && v.IsNumeric() {
			switch def.Kind {
			case datum.KindFloat:
				v = datum.Float(v.AsFloat())
			case datum.KindInt:
				v = datum.Int(v.AsInt())
			}
		}
		out[name] = v
	}
	return out
}

// Create makes a new instance of the class and reports the create
// event. Returns the new object's OID.
func (m *Manager) Create(tx *txn.Txn, class string, attrs map[string]datum.Value) (datum.OID, error) {
	if err := tx.Lock(classItem(class), lock.Shared); err != nil {
		return 0, err
	}
	c, err := m.lookupClass(tx, class)
	if err != nil {
		return 0, err
	}
	if err := validate(c, attrs, true); err != nil {
		return 0, err
	}
	attrs = coerce(c, attrs)
	if err := tx.Lock(extentItem(class), lock.Exclusive); err != nil {
		return 0, err
	}
	oid := m.store.AllocOID()
	if err := tx.Lock(objItem(oid), lock.Exclusive); err != nil {
		return 0, err
	}
	m.store.Put(tx.ID(), storage.Record{OID: oid, Class: class, Attrs: attrs})

	bindings := map[string]datum.Value{
		"op":    datum.Str(string(event.OpCreate)),
		"class": datum.Str(class),
		"oid":   datum.ID(oid),
	}
	for k, v := range attrs {
		bindings["new_"+k] = v
	}
	if err := m.signal(event.OpCreate, class, tx.ID(), bindings); err != nil {
		return oid, err
	}
	return oid, nil
}

// Modify updates attributes of an object and reports the modify event
// with old and new values.
func (m *Manager) Modify(tx *txn.Txn, oid datum.OID, updates map[string]datum.Value) error {
	if err := tx.Lock(objItem(oid), lock.Exclusive); err != nil {
		return err
	}
	rec, ok := m.store.Get(tx.ID(), oid)
	if !ok {
		return fmt.Errorf("%w: %v", ErrNoSuchObject, oid)
	}
	if err := tx.Lock(classItem(rec.Class), lock.Shared); err != nil {
		return err
	}
	c, err := m.lookupClass(tx, rec.Class)
	if err != nil {
		return err
	}
	if err := validate(c, updates, false); err != nil {
		return err
	}
	updates = coerce(c, updates)

	bindings := map[string]datum.Value{
		"op":    datum.Str(string(event.OpModify)),
		"class": datum.Str(rec.Class),
		"oid":   datum.ID(oid),
	}
	newAttrs := datum.CloneMap(rec.Attrs)
	if newAttrs == nil {
		newAttrs = map[string]datum.Value{}
	}
	for k, v := range updates {
		bindings["old_"+k] = rec.Attrs[k]
		bindings["new_"+k] = v
		if v.IsNull() {
			delete(newAttrs, k)
		} else {
			newAttrs[k] = v
		}
	}
	m.store.Put(tx.ID(), storage.Record{OID: oid, Class: rec.Class, Attrs: newAttrs})
	return m.signal(event.OpModify, rec.Class, tx.ID(), bindings)
}

// Delete removes an object and reports the delete event with the old
// attribute values.
func (m *Manager) Delete(tx *txn.Txn, oid datum.OID) error {
	if err := tx.Lock(objItem(oid), lock.Exclusive); err != nil {
		return err
	}
	rec, ok := m.store.Get(tx.ID(), oid)
	if !ok {
		return fmt.Errorf("%w: %v", ErrNoSuchObject, oid)
	}
	if err := tx.Lock(classItem(rec.Class), lock.Shared); err != nil {
		return err
	}
	if err := tx.Lock(extentItem(rec.Class), lock.Exclusive); err != nil {
		return err
	}
	m.store.Put(tx.ID(), storage.Record{OID: oid, Class: rec.Class, Deleted: true})

	bindings := map[string]datum.Value{
		"op":    datum.Str(string(event.OpDelete)),
		"class": datum.Str(rec.Class),
		"oid":   datum.ID(oid),
	}
	for k, v := range rec.Attrs {
		bindings["old_"+k] = v
	}
	return m.signal(event.OpDelete, rec.Class, tx.ID(), bindings)
}

// Get returns the object visible to tx. The read is lock-free: the
// store resolves tx's own (or an ancestor's) uncommitted version,
// else the newest published committed version — no shared lock, no
// shard mutex. Writers are still correct without the lock because a
// transaction that intends to write takes its exclusive lock first,
// and the previous writer's commit published before releasing it.
func (m *Manager) Get(tx *txn.Txn, oid datum.OID) (storage.Record, error) {
	rec, ok := m.store.Get(tx.ID(), oid)
	if !ok {
		return storage.Record{}, fmt.Errorf("%w: %v", ErrNoSuchObject, oid)
	}
	return rec, nil
}

// GetForUpdate returns the object after taking tx's exclusive lock on
// it — the SELECT FOR UPDATE idiom. Unlike the lock-free Get, the
// returned record is guaranteed current (any prior writer published
// its commit before releasing the lock) and stable until tx ends, so
// it is safe to base an update on. Read-modify-write flows that use
// plain Get instead race: two transactions can both read the same
// version before either locks, and the second write clobbers the
// first (a lost update).
func (m *Manager) GetForUpdate(tx *txn.Txn, oid datum.OID) (storage.Record, error) {
	if err := tx.Lock(objItem(oid), lock.Exclusive); err != nil {
		return storage.Record{}, err
	}
	rec, ok := m.store.Get(tx.ID(), oid)
	if !ok {
		return storage.Record{}, fmt.Errorf("%w: %v", ErrNoSuchObject, oid)
	}
	return rec, nil
}

// Store exposes the underlying store (for the engine's recovery and
// checkpoint paths).
func (m *Manager) Store() *storage.Store { return m.store }

func classItem(name string) lock.Item  { return lock.Item("class/" + name) }
func extentItem(name string) lock.Item { return lock.Item("extent/" + name) }
func objItem(oid datum.OID) lock.Item  { return lock.Item("obj/" + oid.String()) }
