package object

import (
	"testing"

	"repro/internal/datum"
)

// TestSnapshotReaderConsistentMidScan: a pinned SnapshotReader
// observes one commit LSN for its whole lifetime — a commit landing
// in the middle of its scan is invisible to the rest of the scan and
// to later Fetches through the same reader. This is the as-of-commit
// view deferred-coupling condition evaluation relies on.
func TestSnapshotReaderConsistentMidScan(t *testing.T) {
	m, tm, _ := setup(t)
	mustDefine(t, m, tm, stockClass)

	const n = 16
	var oids []datum.OID
	setupTx := tm.Begin()
	for i := 0; i < n; i++ {
		oid, err := m.Create(setupTx, "Stock", map[string]datum.Value{
			"symbol": datum.Str("S"), "volume": datum.Int(0),
		})
		if err != nil {
			t.Fatal(err)
		}
		oids = append(oids, oid)
	}
	if err := setupTx.Commit(); err != nil {
		t.Fatal(err)
	}

	rtx := tm.Begin()
	defer rtx.Commit()
	reader := m.SnapshotReader(rtx)
	defer reader.Close()

	rows := 0
	err := reader.ScanClass("Stock", func(_ datum.OID, attrs map[string]datum.Value) bool {
		if rows == 0 {
			// Mid-scan, another transaction flips every object and
			// commits. The pinned reader must not see any of it.
			wtx := tm.Begin()
			for _, oid := range oids {
				if err := m.Modify(wtx, oid, map[string]datum.Value{"volume": datum.Int(1)}); err != nil {
					t.Errorf("mid-scan modify: %v", err)
				}
			}
			if err := wtx.Commit(); err != nil {
				t.Errorf("mid-scan commit: %v", err)
			}
		}
		if got := attrs["volume"].AsInt(); got != 0 {
			t.Fatalf("row %d: pinned scan saw mid-scan commit (volume=%d)", rows, got)
		}
		rows++
		return true
	})
	if err != nil {
		t.Fatal(err)
	}
	if rows != n {
		t.Fatalf("scan saw %d rows, want %d", rows, n)
	}
	// Fetch through the pinned reader stays at the snapshot too.
	if _, attrs, ok := reader.Fetch(oids[0]); !ok || attrs["volume"].AsInt() != 0 {
		t.Fatalf("pinned Fetch = %v %v, want volume=0", attrs, ok)
	}
	// A fresh (unpinned) reader sees the new state.
	fresh := m.Reader(rtx)
	if _, attrs, ok := fresh.Fetch(oids[0]); !ok || attrs["volume"].AsInt() != 1 {
		t.Fatalf("fresh Fetch = %v %v, want volume=1", attrs, ok)
	}
}
