package object

import (
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"repro/internal/datum"
	"repro/internal/event"
	"repro/internal/lock"
	"repro/internal/query"
	"repro/internal/storage"
	"repro/internal/txn"
)

// sinkRec records signaled events.
type sinkRec struct {
	mu     sync.Mutex
	events []event.Op
	last   map[string]datum.Value
}

func (s *sinkRec) SignalDatabase(op event.Op, class string, tx lock.TxnID, b map[string]datum.Value) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.events = append(s.events, op)
	s.last = b
	return nil
}

func (s *sinkRec) ops() []event.Op {
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]event.Op(nil), s.events...)
}

func setup(t *testing.T) (*Manager, *txn.Manager, *sinkRec) {
	t.Helper()
	tm, _ := txn.NewSystem()
	st, err := storage.Open(tm, storage.Options{})
	if err != nil {
		t.Fatal(err)
	}
	tm.Register(st)
	sink := &sinkRec{}
	return NewManager(st, sink), tm, sink
}

var stockClass = Class{
	Name: "Stock",
	Attrs: []AttrDef{
		{Name: "symbol", Kind: datum.KindString, Required: true},
		{Name: "price", Kind: datum.KindFloat, Indexed: true},
		{Name: "volume", Kind: datum.KindInt},
	},
}

func mustDefine(t *testing.T, m *Manager, tm *txn.Manager, c Class) {
	t.Helper()
	tx := tm.Begin()
	if err := m.DefineClass(tx, c); err != nil {
		t.Fatal(err)
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
}

func TestDefineAndGetClass(t *testing.T) {
	m, tm, _ := setup(t)
	mustDefine(t, m, tm, stockClass)
	tx := tm.Begin()
	defer tx.Commit()
	c, err := m.GetClass(tx, "Stock")
	if err != nil {
		t.Fatal(err)
	}
	if c.Name != "Stock" || len(c.Attrs) != 3 {
		t.Fatalf("class = %+v", c)
	}
	if a, ok := c.Attr("price"); !ok || !a.Indexed || a.Kind != datum.KindFloat {
		t.Fatalf("price attr = %+v", a)
	}
	if _, err := m.GetClass(tx, "Nope"); !errors.Is(err, ErrNoSuchClass) {
		t.Fatalf("missing class: %v", err)
	}
}

func TestDefineClassValidation(t *testing.T) {
	m, tm, _ := setup(t)
	tx := tm.Begin()
	defer tx.Abort()
	if err := m.DefineClass(tx, Class{}); !errors.Is(err, ErrSchema) {
		t.Fatalf("empty name: %v", err)
	}
	if err := m.DefineClass(tx, Class{Name: "X", Attrs: []AttrDef{{Name: "a"}, {Name: "a"}}}); !errors.Is(err, ErrSchema) {
		t.Fatalf("dup attr: %v", err)
	}
}

func TestDuplicateClassRejected(t *testing.T) {
	m, tm, _ := setup(t)
	mustDefine(t, m, tm, stockClass)
	tx := tm.Begin()
	defer tx.Abort()
	if err := m.DefineClass(tx, stockClass); !errors.Is(err, ErrClassExists) {
		t.Fatalf("want ErrClassExists, got %v", err)
	}
}

func TestDDLTransactional(t *testing.T) {
	m, tm, _ := setup(t)
	tx := tm.Begin()
	if err := m.DefineClass(tx, stockClass); err != nil {
		t.Fatal(err)
	}
	// Definer sees it; a stranger does not.
	if _, err := m.lookupClass(tx, "Stock"); err != nil {
		t.Fatal("definer cannot see own class")
	}
	other := tm.Begin()
	if _, err := m.lookupClass(other, "Stock"); err == nil {
		t.Fatal("uncommitted class visible to stranger")
	}
	other.Commit()
	tx.Abort()
	// After abort, nobody sees it.
	check := tm.Begin()
	defer check.Commit()
	if _, err := m.lookupClass(check, "Stock"); err == nil {
		t.Fatal("aborted class definition survived")
	}
	// And the name can be reused.
	tx2 := tm.Begin()
	if err := m.DefineClass(tx2, stockClass); err != nil {
		t.Fatalf("redefine after abort: %v", err)
	}
	tx2.Commit()
}

func TestCreateValidates(t *testing.T) {
	m, tm, _ := setup(t)
	mustDefine(t, m, tm, stockClass)
	tx := tm.Begin()
	defer tx.Abort()
	// Missing required attribute.
	if _, err := m.Create(tx, "Stock", map[string]datum.Value{"price": datum.Float(1)}); !errors.Is(err, ErrSchema) {
		t.Fatalf("missing required: %v", err)
	}
	// Unknown attribute.
	if _, err := m.Create(tx, "Stock", map[string]datum.Value{"symbol": datum.Str("X"), "bogus": datum.Int(1)}); !errors.Is(err, ErrSchema) {
		t.Fatalf("unknown attr: %v", err)
	}
	// Kind mismatch.
	if _, err := m.Create(tx, "Stock", map[string]datum.Value{"symbol": datum.Int(5)}); !errors.Is(err, ErrSchema) {
		t.Fatalf("kind mismatch: %v", err)
	}
	// Unknown class.
	if _, err := m.Create(tx, "Nope", nil); !errors.Is(err, ErrNoSuchClass) {
		t.Fatalf("unknown class: %v", err)
	}
}

func TestCreateModifyDeleteLifecycle(t *testing.T) {
	m, tm, sink := setup(t)
	mustDefine(t, m, tm, stockClass)
	tx := tm.Begin()
	oid, err := m.Create(tx, "Stock", map[string]datum.Value{
		"symbol": datum.Str("XRX"), "price": datum.Float(48),
	})
	if err != nil {
		t.Fatal(err)
	}
	rec, err := m.Get(tx, oid)
	if err != nil || rec.Attrs["symbol"].AsString() != "XRX" {
		t.Fatalf("get: %v %v", rec, err)
	}
	if err := m.Modify(tx, oid, map[string]datum.Value{"price": datum.Float(50)}); err != nil {
		t.Fatal(err)
	}
	rec, _ = m.Get(tx, oid)
	if rec.Attrs["price"].AsFloat() != 50 {
		t.Fatalf("modify lost: %v", rec.Attrs)
	}
	if err := m.Delete(tx, oid); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Get(tx, oid); !errors.Is(err, ErrNoSuchObject) {
		t.Fatalf("get after delete: %v", err)
	}
	tx.Commit()

	ops := sink.ops()
	want := []event.Op{event.OpDefineClass, event.OpCreate, event.OpModify, event.OpDelete}
	if fmt.Sprint(ops) != fmt.Sprint(want) {
		t.Fatalf("events = %v, want %v", ops, want)
	}
}

func TestModifyEventCarriesOldAndNew(t *testing.T) {
	m, tm, sink := setup(t)
	mustDefine(t, m, tm, stockClass)
	tx := tm.Begin()
	oid, _ := m.Create(tx, "Stock", map[string]datum.Value{
		"symbol": datum.Str("XRX"), "price": datum.Float(48),
	})
	m.Modify(tx, oid, map[string]datum.Value{"price": datum.Float(50)})
	tx.Commit()
	b := sink.last
	if b["old_price"].AsFloat() != 48 || b["new_price"].AsFloat() != 50 {
		t.Fatalf("bindings = %v", b)
	}
	if b["class"].AsString() != "Stock" || b["oid"].AsOID() != oid {
		t.Fatalf("bindings = %v", b)
	}
}

func TestSystemClassesEmitNoEvents(t *testing.T) {
	m, tm, sink := setup(t)
	mustDefine(t, m, tm, stockClass) // defineClass event IS emitted for Stock
	n := len(sink.ops())
	tx := tm.Begin()
	// Direct writes to a __-class (as the rule manager does).
	mustNoErr(t, m.DefineClass(tx, Class{Name: "__sys", Attrs: []AttrDef{{Name: "x", Kind: datum.KindInt}}}))
	if _, err := m.Create(tx, "__sys", map[string]datum.Value{"x": datum.Int(1)}); err != nil {
		t.Fatal(err)
	}
	tx.Commit()
	if len(sink.ops()) != n {
		t.Fatalf("system class emitted events: %v", sink.ops()[n:])
	}
}

func mustNoErr(t *testing.T, err error) {
	t.Helper()
	if err != nil {
		t.Fatal(err)
	}
}

func TestNumericCoercion(t *testing.T) {
	m, tm, _ := setup(t)
	mustDefine(t, m, tm, stockClass)
	tx := tm.Begin()
	defer tx.Commit()
	// Int literal into a float attribute: stored as float.
	oid, err := m.Create(tx, "Stock", map[string]datum.Value{
		"symbol": datum.Str("GM"), "price": datum.Int(45),
	})
	if err != nil {
		t.Fatal(err)
	}
	rec, _ := m.Get(tx, oid)
	if rec.Attrs["price"].Kind() != datum.KindFloat {
		t.Fatalf("price kind = %v", rec.Attrs["price"].Kind())
	}
}

func TestIsolationBetweenTransactions(t *testing.T) {
	// MVCC reads never block and never see uncommitted data: a
	// plain Get of another transaction's uncommitted create returns
	// ErrNoSuchObject immediately, and sees the object once the
	// creator commits. GetForUpdate, the locking read, still blocks
	// on the creator's exclusive lock (strict 2PL for writers).
	m, tm, _ := setup(t)
	mustDefine(t, m, tm, stockClass)
	t1 := tm.Begin()
	oid, _ := m.Create(t1, "Stock", map[string]datum.Value{"symbol": datum.Str("XRX")})
	t2 := tm.Begin()
	if _, err := m.Get(t2, oid); !errors.Is(err, ErrNoSuchObject) {
		t.Fatalf("uncommitted create visible to snapshot read: %v", err)
	}
	type getResult struct {
		rec storage.Record
		err error
	}
	done := make(chan getResult, 1)
	go func() {
		rec, err := m.GetForUpdate(t2, oid)
		done <- getResult{rec, err}
	}()
	select {
	case r := <-done:
		t.Fatalf("locking read did not block on uncommitted create: %v %v", r.rec, r.err)
	case <-time.After(30 * time.Millisecond):
	}
	t1.Commit()
	r := <-done
	if r.err != nil || r.rec.Attrs["symbol"].AsString() != "XRX" {
		t.Fatalf("after creator commit: %v %v", r.rec, r.err)
	}
	if rec, err := m.Get(t2, oid); err != nil || rec.Attrs["symbol"].AsString() != "XRX" {
		t.Fatalf("committed create not visible to snapshot read: %v %v", rec, err)
	}
	t2.Commit()
}

func TestDropClass(t *testing.T) {
	m, tm, _ := setup(t)
	mustDefine(t, m, tm, stockClass)
	tx := tm.Begin()
	oid, _ := m.Create(tx, "Stock", map[string]datum.Value{"symbol": datum.Str("XRX")})
	if err := m.DropClass(tx, "Stock"); !errors.Is(err, ErrClassInUse) {
		t.Fatalf("drop non-empty: %v", err)
	}
	m.Delete(tx, oid)
	if err := m.DropClass(tx, "Stock"); err != nil {
		t.Fatal(err)
	}
	tx.Commit()
	check := tm.Begin()
	defer check.Commit()
	if _, err := m.GetClass(check, "Stock"); !errors.Is(err, ErrNoSuchClass) {
		t.Fatalf("dropped class still there: %v", err)
	}
}

func TestReaderScanAndQuery(t *testing.T) {
	m, tm, _ := setup(t)
	mustDefine(t, m, tm, stockClass)
	tx := tm.Begin()
	for i, sym := range []string{"XRX", "IBM", "DEC"} {
		if _, err := m.Create(tx, "Stock", map[string]datum.Value{
			"symbol": datum.Str(sym), "price": datum.Float(float64(40 + i*40)),
		}); err != nil {
			t.Fatal(err)
		}
	}
	tx.Commit()

	q := tm.Begin()
	defer q.Commit()
	res, err := query.Eval(query.MustParse("select s.symbol from Stock s where s.price >= 80"), m.Reader(q), nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 2 {
		t.Fatalf("rows = %v", res.Rows)
	}
}

func TestReaderUsesIndex(t *testing.T) {
	m, tm, _ := setup(t)
	mustDefine(t, m, tm, stockClass)
	tx := tm.Begin()
	for i := 0; i < 100; i++ {
		m.Create(tx, "Stock", map[string]datum.Value{
			"symbol": datum.Str(fmt.Sprintf("S%03d", i)), "price": datum.Float(float64(i)),
		})
	}
	tx.Commit()
	before := m.store.Stats()
	q := tm.Begin()
	defer q.Commit()
	res, err := query.Eval(query.MustParse("select s from Stock s where s.price = 42"), m.Reader(q), nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 1 {
		t.Fatalf("rows = %v", res.Rows)
	}
	after := m.store.Stats()
	if after.IndexProbes != before.IndexProbes+1 {
		t.Fatalf("index probes %d -> %d; index not used", before.IndexProbes, after.IndexProbes)
	}
	if after.Scans != before.Scans {
		t.Fatalf("full scan happened despite index")
	}
}

func TestWriteConflictBlocksAndSerializes(t *testing.T) {
	m, tm, _ := setup(t)
	mustDefine(t, m, tm, stockClass)
	seed := tm.Begin()
	oid, _ := m.Create(seed, "Stock", map[string]datum.Value{"symbol": datum.Str("XRX"), "price": datum.Float(10)})
	seed.Commit()

	t1 := tm.Begin()
	if err := m.Modify(t1, oid, map[string]datum.Value{"price": datum.Float(20)}); err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	t2 := tm.Begin()
	go func() { done <- m.Modify(t2, oid, map[string]datum.Value{"price": datum.Float(30)}) }()
	select {
	case err := <-done:
		t.Fatalf("conflicting modify did not block: %v", err)
	default:
	}
	t1.Commit()
	if err := <-done; err != nil {
		t.Fatal(err)
	}
	t2.Commit()
	check := tm.Begin()
	defer check.Commit()
	rec, _ := m.Get(check, oid)
	if rec.Attrs["price"].AsFloat() != 30 {
		t.Fatalf("final price = %v", rec.Attrs["price"])
	}
}

func TestNestedTransactionDML(t *testing.T) {
	m, tm, _ := setup(t)
	mustDefine(t, m, tm, stockClass)
	parent := tm.Begin()
	oid, _ := m.Create(parent, "Stock", map[string]datum.Value{"symbol": datum.Str("XRX"), "price": datum.Float(10)})
	child, _ := parent.Child()
	if err := m.Modify(child, oid, map[string]datum.Value{"price": datum.Float(99)}); err != nil {
		t.Fatal(err)
	}
	child.Abort()
	rec, _ := m.Get(parent, oid)
	if rec.Attrs["price"].AsFloat() != 10 {
		t.Fatalf("child abort leaked: %v", rec.Attrs["price"])
	}
	child2, _ := parent.Child()
	m.Modify(child2, oid, map[string]datum.Value{"price": datum.Float(55)})
	child2.Commit()
	rec, _ = m.Get(parent, oid)
	if rec.Attrs["price"].AsFloat() != 55 {
		t.Fatalf("child commit lost: %v", rec.Attrs["price"])
	}
	parent.Commit()
}

func TestClassesListing(t *testing.T) {
	m, tm, _ := setup(t)
	mustDefine(t, m, tm, Class{Name: "Zebra"})
	mustDefine(t, m, tm, Class{Name: "Apple"})
	tx := tm.Begin()
	defer tx.Commit()
	cs, err := m.Classes(tx)
	if err != nil {
		t.Fatal(err)
	}
	if len(cs) != 2 || cs[0].Name != "Apple" || cs[1].Name != "Zebra" {
		t.Fatalf("classes = %v", cs)
	}
}

func TestNullClearsAttribute(t *testing.T) {
	m, tm, _ := setup(t)
	mustDefine(t, m, tm, stockClass)
	tx := tm.Begin()
	defer tx.Commit()
	oid, _ := m.Create(tx, "Stock", map[string]datum.Value{
		"symbol": datum.Str("XRX"), "volume": datum.Int(100),
	})
	if err := m.Modify(tx, oid, map[string]datum.Value{"volume": datum.Null()}); err != nil {
		t.Fatal(err)
	}
	rec, _ := m.Get(tx, oid)
	if _, ok := rec.Attrs["volume"]; ok {
		t.Fatal("null modify should clear the attribute")
	}
	// But clearing a required attribute is rejected.
	if err := m.Modify(tx, oid, map[string]datum.Value{"symbol": datum.Null()}); !errors.Is(err, ErrSchema) {
		t.Fatalf("clearing required: %v", err)
	}
}
