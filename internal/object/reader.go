package object

import (
	"repro/internal/btree"
	"repro/internal/datum"
	"repro/internal/lock"
	"repro/internal/query"
	"repro/internal/storage"
	"repro/internal/txn"
)

// Reader returns a query.Reader bound to tx. The reader acquires
// shared locks as it goes: the class extent before a scan and each
// visited object, so queries are serializable against concurrent
// writers.
func (m *Manager) Reader(tx *txn.Txn) query.Reader {
	return &txnReader{m: m, tx: tx}
}

type txnReader struct {
	m  *Manager
	tx *txn.Txn
}

// ScanClass locks the extent, snapshots the candidate OIDs, then
// visits each object under a shared object lock. Collecting OIDs
// first keeps lock acquisition out of the storage layer's critical
// section.
func (r *txnReader) ScanClass(class string, fn func(datum.OID, map[string]datum.Value) bool) error {
	if err := r.tx.Lock(extentItem(class), lock.Shared); err != nil {
		return err
	}
	var oids []datum.OID
	r.m.store.ScanClass(r.tx.ID(), class, func(rec storage.Record) bool {
		oids = append(oids, rec.OID)
		return true
	})
	for _, oid := range oids {
		if err := r.tx.Lock(objItem(oid), lock.Shared); err != nil {
			return err
		}
		rec, ok := r.m.store.Get(r.tx.ID(), oid)
		if !ok || rec.Class != class {
			continue // deleted or changed between snapshot and lock
		}
		if !fn(oid, rec.Attrs) {
			return nil
		}
	}
	return nil
}

// LookupRange probes a secondary index for candidates. Candidates are
// returned unlocked and unverified; the evaluator fetches each via
// Fetch (which locks) and re-checks the predicate, so false positives
// are harmless.
func (r *txnReader) LookupRange(class, attr string, lo, hi *datum.Value, loInc, hiInc bool) ([]datum.OID, bool) {
	if !r.m.store.HasIndex(class, attr) {
		return nil, false
	}
	loB, hiB := btree.Open(), btree.Open()
	if lo != nil {
		if loInc {
			loB = btree.Include(lo.Key())
		} else {
			loB = btree.Exclude(lo.Key())
		}
	}
	if hi != nil {
		if hiInc {
			hiB = btree.Include(hi.Key())
		} else {
			hiB = btree.Exclude(hi.Key())
		}
	}
	return r.m.store.IndexCandidates(r.tx.ID(), class, attr, loB, hiB), true
}

// Fetch returns a live object by OID under a shared lock.
func (r *txnReader) Fetch(oid datum.OID) (string, map[string]datum.Value, bool) {
	if err := r.tx.Lock(objItem(oid), lock.Shared); err != nil {
		return "", nil, false
	}
	rec, ok := r.m.store.Get(r.tx.ID(), oid)
	if !ok {
		return "", nil, false
	}
	return rec.Class, rec.Attrs, true
}
