package object

import (
	"repro/internal/btree"
	"repro/internal/datum"
	"repro/internal/query"
	"repro/internal/storage"
	"repro/internal/txn"
)

// Reader returns a query.Reader bound to tx. Committed data is read
// through the store's MVCC path — no shared locks, no shard mutexes:
// each ScanClass pins its own snapshot LSN for the duration of the
// scan, and Fetch reads at the latest published commit. tx's own
// uncommitted writes are always visible. For a reader whose *every*
// read must observe one consistent snapshot (condition evaluation,
// multi-query requests), use SnapshotReader.
func (m *Manager) Reader(tx *txn.Txn) query.Reader {
	return &txnReader{m: m, tx: tx}
}

// SnapshotReader returns a query.Reader pinned to a single snapshot
// LSN taken now: every Fetch and ScanClass through it resolves
// against the same committed state, so concurrent commits are
// invisible for the reader's whole lifetime (the as-of-commit view
// deferred-coupling condition evaluation requires). The pin holds the
// version GC back; callers must Close it.
func (m *Manager) SnapshotReader(tx *txn.Txn) *SnapshotReader {
	return &SnapshotReader{
		txnReader: txnReader{m: m, tx: tx, snap: m.store.AcquireSnapshot()},
	}
}

// SnapshotReader is a query.Reader whose reads all resolve at one
// pinned snapshot LSN. See Manager.SnapshotReader.
type SnapshotReader struct {
	txnReader
}

// SnapshotLSN returns the pinned commit LSN.
func (r *SnapshotReader) SnapshotLSN() uint64 { return r.snap.LSN() }

// Close releases the snapshot pin. Idempotent.
func (r *SnapshotReader) Close() { r.snap.Release() }

type txnReader struct {
	m  *Manager
	tx *txn.Txn
	// snap, when non-nil, pins every read to one snapshot LSN;
	// when nil each read resolves at the newest published commit.
	snap *storage.Snapshot
}

// ScanClass visits every live object of the class in OID order
// against a consistent snapshot (the reader's pin, or one acquired
// for this scan). No locks are taken — long scans never block
// committers — so the scan is a point-in-time view, not a
// serializable read: rows committed after the snapshot are missed by
// design.
func (r *txnReader) ScanClass(class string, fn func(datum.OID, map[string]datum.Value) bool) error {
	scan := func(rec storage.Record) bool { return fn(rec.OID, rec.Attrs) }
	if r.snap != nil {
		r.m.store.ScanClassAt(r.tx.ID(), class, r.snap.LSN(), scan)
	} else {
		r.m.store.ScanClass(r.tx.ID(), class, scan)
	}
	return nil
}

// LookupRange probes a secondary index for candidates. Candidates are
// returned unverified; the evaluator fetches each via Fetch and
// re-checks the predicate against the snapshot-visible record, so
// false positives (including entries for older, not yet
// garbage-collected versions) are harmless.
func (r *txnReader) LookupRange(class, attr string, lo, hi *datum.Value, loInc, hiInc bool) ([]datum.OID, bool) {
	if !r.m.store.HasIndex(class, attr) {
		return nil, false
	}
	loB, hiB := btree.Open(), btree.Open()
	if lo != nil {
		if loInc {
			loB = btree.Include(lo.Key())
		} else {
			loB = btree.Exclude(lo.Key())
		}
	}
	if hi != nil {
		if hiInc {
			hiB = btree.Include(hi.Key())
		} else {
			hiB = btree.Exclude(hi.Key())
		}
	}
	return r.m.store.IndexCandidates(r.tx.ID(), class, attr, loB, hiB), true
}

// The methods below make every reader a plan.Catalog: the physical
// planner draws its statistics from the same reader it executes
// against. Estimates read current store state, not the reader's
// snapshot — they only rank plans, never decide membership.

// ExtentEstimate approximates the class's extent cardinality.
func (r *txnReader) ExtentEstimate(class string) int {
	return r.m.store.ExtentEstimate(class)
}

// HasIndex reports whether class.attr has a secondary index.
func (r *txnReader) HasIndex(class, attr string) bool {
	return r.m.store.HasIndex(class, attr)
}

// IndexEstimate counts index entries in [lo, hi] on class.attr,
// stopping at limit; ok is false when no index exists.
func (r *txnReader) IndexEstimate(class, attr string, lo, hi *datum.Value, loInc, hiInc bool, limit int) (int, bool) {
	loB, hiB := btree.Open(), btree.Open()
	if lo != nil {
		if loInc {
			loB = btree.Include(lo.Key())
		} else {
			loB = btree.Exclude(lo.Key())
		}
	}
	if hi != nil {
		if hiInc {
			hiB = btree.Include(hi.Key())
		} else {
			hiB = btree.Exclude(hi.Key())
		}
	}
	return r.m.store.IndexEstimate(class, attr, loB, hiB, limit)
}

// The methods below make every reader a plan.ShardScanner, the
// parallel executor's fan-out surface: one worker per committed-tier
// shard walks its slice of a class extent, all pinned at one snapshot
// LSN so the union of the shard scans is exactly what ScanClass at
// that LSN would visit.

// ShardCount returns the committed tier's shard count.
func (r *txnReader) ShardCount() int { return r.m.store.ShardCount() }

// PinShards returns the snapshot LSN every shard worker must scan at,
// plus a release for the pin backing it. A pinned reader hands out its
// own immobile LSN (release is a no-op — the reader's pin outlives the
// scan); an unpinned reader acquires a pin for the scan's duration so
// version GC cannot reclaim rows mid-fan-out.
func (r *txnReader) PinShards() (uint64, func()) {
	if r.snap != nil {
		return r.snap.LSN(), func() {}
	}
	snap := r.m.store.AcquireSnapshot()
	return snap.LSN(), snap.Release
}

// ScanClassShard visits the class's live objects held by shard si, in
// OID order within the shard, at the given snapshot LSN. tx's own
// uncommitted writes are visible, matching ScanClass.
func (r *txnReader) ScanClassShard(si int, class string, lsn uint64, fn func(datum.OID, map[string]datum.Value) bool) error {
	r.m.store.ScanClassShardAt(r.tx.ID(), si, class, lsn, func(rec storage.Record) bool {
		return fn(rec.OID, rec.Attrs)
	})
	return nil
}

// Fetch returns a live object by OID — lock-free, at the reader's
// snapshot (or the newest published commit when unpinned).
func (r *txnReader) Fetch(oid datum.OID) (string, map[string]datum.Value, bool) {
	var rec storage.Record
	var ok bool
	if r.snap != nil {
		rec, ok = r.m.store.GetAt(r.tx.ID(), oid, r.snap.LSN())
	} else {
		rec, ok = r.m.store.Get(r.tx.ID(), oid)
	}
	if !ok {
		return "", nil, false
	}
	return rec.Class, rec.Attrs, true
}
