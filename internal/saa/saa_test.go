package saa

import (
	"strings"
	"testing"

	"repro/internal/cond"
	"repro/internal/event"
	"repro/internal/query"
)

// The SAA rule definitions must compile against the rule machinery:
// events parse, conditions parse, and action expressions parse.

func TestClassesWellFormed(t *testing.T) {
	classes := Classes()
	if len(classes) != 2 {
		t.Fatalf("classes = %d", len(classes))
	}
	names := map[string]bool{}
	for _, c := range classes {
		if c.Name == "" || len(c.Attrs) == 0 {
			t.Fatalf("malformed class %+v", c)
		}
		names[c.Name] = true
	}
	if !names[ClassStock] || !names[ClassHolding] {
		t.Fatalf("missing classes: %v", names)
	}
}

func TestRuleDefsCompile(t *testing.T) {
	defs := []struct {
		name  string
		event string
		conds []string
	}{
		{"dq", DisplayQuoteRule("dq").Event, DisplayQuoteRule("dq").Condition},
		{"buy", BuyAtRule("buy", "a", "XRX", 500, 50).Event, BuyAtRule("buy", "a", "XRX", 500, 50).Condition},
		{"pu", PortfolioUpdateRule("pu").Event, PortfolioUpdateRule("pu").Condition},
		{"dt", DisplayTradeRule("dt").Event, DisplayTradeRule("dt").Condition},
	}
	for _, d := range defs {
		if _, err := event.Parse(d.event); err != nil {
			t.Errorf("%s: event %q: %v", d.name, d.event, err)
		}
		if _, err := cond.ParseCondition(d.conds); err != nil {
			t.Errorf("%s: condition: %v", d.name, err)
		}
	}
}

func TestBuyAtRuleParameterized(t *testing.T) {
	def := BuyAtRule("order-1", "clientB", "IBM", 100, 125.5)
	if !strings.Contains(def.Condition[0], "'IBM'") ||
		!strings.Contains(def.Condition[0], "125.5") {
		t.Fatalf("condition = %q", def.Condition[0])
	}
	args := def.Action[0].Args
	for name, src := range args {
		if _, err := query.ParseExpr(src); err != nil {
			t.Errorf("arg %q = %q: %v", name, src, err)
		}
	}
	if args["qty"] != "100" || args["owner"] != "'clientB'" {
		t.Fatalf("args = %v", args)
	}
}

func TestCouplingsMatchPaper(t *testing.T) {
	// §4.2: display and trading rules run "condition and action
	// together in a separate transaction"; the portfolio update is
	// immediate in the trader's transaction.
	if d := DisplayQuoteRule("x"); d.EC != "separate" || d.CA != "immediate" {
		t.Errorf("display rule coupling = %s/%s", d.EC, d.CA)
	}
	if d := BuyAtRule("x", "o", "S", 1, 1); d.EC != "separate" {
		t.Errorf("trading rule EC = %s", d.EC)
	}
	if d := PortfolioUpdateRule("x"); d.EC != "immediate" {
		t.Errorf("portfolio rule EC = %s", d.EC)
	}
}
