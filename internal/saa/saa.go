// Package saa contains the schema, events, and ECA rules of the
// Securities Analyst's Assistant, the first application built over
// HiPAC (§4.2 of the paper, Figure 4.2). The application consists of
// three kinds of programs — Ticker, Display, Trader — that never call
// one another directly: every interaction flows through rule firings.
//
//	Ticker   updates current security prices from a (synthetic) wire
//	         service.
//	Display  shows price quotes and executed trades; driven by rules
//	         whose actions request its display operations.
//	Trader   executes trades when trading rules request them, then
//	         signals the TradeExecuted event, which rules turn into
//	         portfolio updates and display refreshes.
//
// The rule set mirrors the paper's: display rules couple "condition
// and action together in a separate transaction"; the portfolio
// update runs immediately in the trader's signalling transaction.
package saa

import (
	"fmt"

	"repro/internal/datum"
	"repro/internal/object"
	"repro/internal/rule"
)

// Attribute kinds used by the schema.
const (
	kindString = datum.KindString
	kindFloat  = datum.KindFloat
	kindInt    = datum.KindInt
)

// Class and operation names shared by the SAA programs.
const (
	ClassStock   = "Stock"
	ClassHolding = "Holding"

	EventTradeExecuted = "TradeExecuted"

	OpDisplayQuote = "display_quote"
	OpDisplayTrade = "display_trade"
	OpExecuteTrade = "execute_trade"
)

// Classes returns the SAA schema.
func Classes() []object.Class {
	return []object.Class{
		{
			Name: ClassStock,
			Attrs: []object.AttrDef{
				{Name: "symbol", Kind: kindString, Required: true, Indexed: true},
				{Name: "price", Kind: kindFloat, Indexed: true},
			},
		},
		{
			Name: ClassHolding,
			Attrs: []object.AttrDef{
				{Name: "owner", Kind: kindString, Required: true, Indexed: true},
				{Name: "symbol", Kind: kindString, Required: true},
				{Name: "qty", Kind: kindInt, Required: true},
			},
		},
	}
}

// TradeEventParams are the formal parameters of TradeExecuted (§4.2:
// "The execution of a trade is an event defined by SAA and signalled
// by a trading program").
var TradeEventParams = []string{"owner", "symbol", "qty", "price"}

// DisplayQuoteRule drives the analyst's scrolling ticker window: on
// every stock price update, send the quote to a display program. The
// paper gives exactly this rule with "condition and action together
// in a separate transaction".
func DisplayQuoteRule(name string) rule.Def {
	return rule.Def{
		Name:  name,
		Event: "modify(Stock)",
		Condition: []string{
			// The event signal carries the modified object; fetch its
			// symbol and fresh price for the display request.
			"select s.symbol as sym, s.price as p from Stock s where s = event.oid",
		},
		Action: []rule.Step{{
			Kind: rule.StepRequest, Op: OpDisplayQuote,
			Args: map[string]string{"symbol": "sym", "price": "p"},
		}},
		EC: "separate", CA: "immediate",
	}
}

// BuyAtRule is the paper's trading rule: "an analyst might instruct
// the application to buy 500 shares of Xerox for a client when the
// price reaches 50". When the condition holds, the action requests
// the trade from a trading program.
func BuyAtRule(name, owner, symbol string, qty int64, limit float64) rule.Def {
	return rule.Def{
		Name:  name,
		Event: fmt.Sprintf("modify(%s)", ClassStock),
		Condition: []string{fmt.Sprintf(
			"select s from Stock s where s = event.oid and s.symbol = '%s' and event.new_price >= %g",
			symbol, limit)},
		Action: []rule.Step{{
			Kind: rule.StepRequest, Op: OpExecuteTrade,
			Args: map[string]string{
				"owner":  fmt.Sprintf("'%s'", owner),
				"symbol": fmt.Sprintf("'%s'", symbol),
				"qty":    fmt.Sprintf("%d", qty),
				"price":  "event.new_price",
			},
		}},
		EC: "separate", CA: "immediate",
	}
}

// PortfolioUpdateRule applies an executed trade to the client's
// holdings, immediately in the trader's signalling transaction (the
// trade and the portfolio update commit or abort together).
func PortfolioUpdateRule(name string) rule.Def {
	return rule.Def{
		Name:  name,
		Event: "external(" + EventTradeExecuted + ")",
		Condition: []string{
			"select h from Holding h where h.owner = event.owner and h.symbol = event.symbol",
		},
		Action: []rule.Step{{
			Kind: rule.StepModify, Target: "h",
			Attrs: map[string]string{"qty": "h.qty + event.qty"},
		}},
		EC: "immediate", CA: "immediate",
	}
}

// DisplayTradeRule refreshes the analyst's screen when a trade
// executes (§4.2: "There is a display rule that causes the trade to
// be displayed and the portfolio updated on the analyst's screen").
func DisplayTradeRule(name string) rule.Def {
	return rule.Def{
		Name:  name,
		Event: "external(" + EventTradeExecuted + ")",
		Action: []rule.Step{{
			Kind: rule.StepRequest, Op: OpDisplayTrade,
			Args: map[string]string{
				"owner":  "event.owner",
				"symbol": "event.symbol",
				"qty":    "event.qty",
				"price":  "event.price",
			},
		}},
		EC: "separate", CA: "immediate",
	}
}
