package cond

import (
	"sort"
	"testing"

	"repro/internal/datum"
	"repro/internal/query"
)

// memReader is a tiny in-memory query.Reader with a scan counter.
type memReader struct {
	classes map[string][]row
	scans   int
}

type row struct {
	oid   datum.OID
	attrs map[string]datum.Value
}

func newReader() *memReader { return &memReader{classes: map[string][]row{}} }

func (m *memReader) add(class string, oid datum.OID, attrs map[string]datum.Value) {
	m.classes[class] = append(m.classes[class], row{oid, attrs})
	sort.Slice(m.classes[class], func(i, j int) bool { return m.classes[class][i].oid < m.classes[class][j].oid })
}

func (m *memReader) ScanClass(class string, fn func(datum.OID, map[string]datum.Value) bool) error {
	m.scans++
	for _, r := range m.classes[class] {
		if !fn(r.oid, r.attrs) {
			break
		}
	}
	return nil
}

func (m *memReader) LookupRange(string, string, *datum.Value, *datum.Value, bool, bool) ([]datum.OID, bool) {
	return nil, false
}

func (m *memReader) Fetch(oid datum.OID) (string, map[string]datum.Value, bool) {
	for class, rows := range m.classes {
		for _, r := range rows {
			if r.oid == oid {
				return class, r.attrs, true
			}
		}
	}
	return "", nil, false
}

func stockReader() *memReader {
	m := newReader()
	m.add("Stock", 1, map[string]datum.Value{"symbol": datum.Str("XRX"), "price": datum.Float(50)})
	m.add("Stock", 2, map[string]datum.Value{"symbol": datum.Str("IBM"), "price": datum.Float(120)})
	return m
}

func mustCond(t *testing.T, srcs ...string) Condition {
	t.Helper()
	c, err := ParseCondition(srcs)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestParseCondition(t *testing.T) {
	c := mustCond(t, "select s from Stock s", "select s from Stock s where s.price > 10")
	if len(c.Queries) != 2 {
		t.Fatalf("queries = %d", len(c.Queries))
	}
	if _, err := ParseCondition([]string{"not a query"}); err == nil {
		t.Fatal("bad query should fail")
	}
	got := c.Strings()
	if len(got) != 2 || got[0] != "select s from Stock s" {
		t.Fatalf("Strings = %v", got)
	}
}

func TestConditionFootprint(t *testing.T) {
	c := mustCond(t,
		"select s from Stock s where s.price > event.p",
		"select h from Holding h where h.qty > 0")
	fp := c.Footprint()
	if len(fp.Classes) != 2 {
		t.Fatalf("classes = %v", fp.Classes)
	}
	if len(fp.EventArgs) != 1 || fp.EventArgs[0] != "p" {
		t.Fatalf("eventArgs = %v", fp.EventArgs)
	}
}

func TestEmptyConditionAlwaysSatisfied(t *testing.T) {
	e := New(nil)
	e.AddRule(1, Condition{})
	out, err := e.Evaluate(stockReader(), nil, false, []uint64{1})
	if err != nil {
		t.Fatal(err)
	}
	if !out[1].Satisfied || out[1].Primary != nil {
		t.Fatalf("outcome = %+v", out[1])
	}
}

func TestSatisfiedAndUnsatisfied(t *testing.T) {
	e := New(nil)
	e.AddRule(1, mustCond(t, "select s from Stock s where s.price >= 100"))
	e.AddRule(2, mustCond(t, "select s from Stock s where s.price >= 1000"))
	out, err := e.Evaluate(stockReader(), nil, false, []uint64{1, 2})
	if err != nil {
		t.Fatal(err)
	}
	if !out[1].Satisfied || len(out[1].Primary.Rows) != 1 {
		t.Fatalf("rule 1 = %+v", out[1])
	}
	if out[2].Satisfied || out[2].Primary != nil {
		t.Fatalf("rule 2 = %+v", out[2])
	}
}

func TestAllQueriesMustBeNonEmpty(t *testing.T) {
	e := New(nil)
	e.AddRule(1, mustCond(t,
		"select s from Stock s where s.price >= 100",  // non-empty
		"select s from Stock s where s.price >= 1000", // empty -> unsatisfied
	))
	out, err := e.Evaluate(stockReader(), nil, false, []uint64{1})
	if err != nil {
		t.Fatal(err)
	}
	if out[1].Satisfied {
		t.Fatal("condition with one empty query must be unsatisfied")
	}
}

func TestPrimaryIsFirstQuery(t *testing.T) {
	e := New(nil)
	e.AddRule(1, mustCond(t,
		"select s.symbol as sym from Stock s where s.price >= 100",
		"select s from Stock s"))
	out, err := e.Evaluate(stockReader(), nil, false, []uint64{1})
	if err != nil {
		t.Fatal(err)
	}
	p := out[1].Primary
	if p == nil || len(p.Rows) != 1 || p.RowBindings(0)["sym"].AsString() != "IBM" {
		t.Fatalf("primary = %+v", p)
	}
}

func TestEventArgsReachQueries(t *testing.T) {
	e := New(nil)
	e.AddRule(1, mustCond(t, "select s from Stock s where s.symbol = event.sym"))
	args := map[string]datum.Value{"sym": datum.Str("XRX")}
	out, err := e.Evaluate(stockReader(), args, false, []uint64{1})
	if err != nil {
		t.Fatal(err)
	}
	if !out[1].Satisfied {
		t.Fatal("event-arg query should match")
	}
}

func TestSharingEvaluatesOncePerEvent(t *testing.T) {
	e := New(nil)
	const rules = 50
	for i := 1; i <= rules; i++ {
		e.AddRule(uint64(i), mustCond(t, "select s from Stock s where s.price >= 100"))
	}
	if e.NodeCount() != 1 {
		t.Fatalf("NodeCount = %d, want 1 shared node", e.NodeCount())
	}
	m := stockReader()
	ids := make([]uint64, rules)
	for i := range ids {
		ids[i] = uint64(i + 1)
	}
	out, err := e.Evaluate(m, nil, false, ids)
	if err != nil {
		t.Fatal(err)
	}
	for _, id := range ids {
		if !out[id].Satisfied {
			t.Fatalf("rule %d unsatisfied", id)
		}
	}
	if m.scans != 1 {
		t.Fatalf("scans = %d; shared node must be evaluated once", m.scans)
	}
	st := e.Stats()
	if st.Evaluations != 1 || st.SharedHits != rules-1 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestDistinctQueriesGetDistinctNodes(t *testing.T) {
	e := New(nil)
	e.AddRule(1, mustCond(t, "select s from Stock s where s.price >= 100"))
	e.AddRule(2, mustCond(t, "select s from Stock s where s.price >= 200"))
	if e.NodeCount() != 2 {
		t.Fatalf("NodeCount = %d", e.NodeCount())
	}
}

func TestWhitespaceVariantsShareNode(t *testing.T) {
	e := New(nil)
	e.AddRule(1, mustCond(t, "select s from Stock s where s.price>=100"))
	e.AddRule(2, mustCond(t, "select  s  from Stock s where (s.price >= 100)"))
	if e.NodeCount() != 1 {
		t.Fatalf("NodeCount = %d; canonicalization failed", e.NodeCount())
	}
}

func TestRemoveRuleDropsUnreferencedNodes(t *testing.T) {
	e := New(nil)
	e.AddRule(1, mustCond(t, "select s from Stock s"))
	e.AddRule(2, mustCond(t, "select s from Stock s"))
	e.RemoveRule(1)
	if e.NodeCount() != 1 {
		t.Fatal("node dropped while still referenced")
	}
	e.RemoveRule(2)
	if e.NodeCount() != 0 {
		t.Fatal("unreferenced node retained")
	}
	e.RemoveRule(99) // unknown: no-op
	// Evaluating a removed rule yields no outcome.
	out, err := e.Evaluate(stockReader(), nil, false, []uint64{1})
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := out[1]; ok {
		t.Fatal("removed rule produced an outcome")
	}
}

func TestCrossEventCache(t *testing.T) {
	seq := map[string]uint64{"Stock": 1}
	e := New(func(class string) uint64 { return seq[class] })
	e.AddRule(1, mustCond(t, "select s from Stock s where s.price >= 100"))
	m := stockReader()

	if _, err := e.Evaluate(m, nil, true, []uint64{1}); err != nil {
		t.Fatal(err)
	}
	if _, err := e.Evaluate(m, nil, true, []uint64{1}); err != nil {
		t.Fatal(err)
	}
	if m.scans != 1 {
		t.Fatalf("scans = %d; second clean evaluation should hit cache", m.scans)
	}
	if e.Stats().CacheHits != 1 {
		t.Fatalf("stats = %+v", e.Stats())
	}
	// A write to the class invalidates.
	seq["Stock"] = 2
	if _, err := e.Evaluate(m, nil, true, []uint64{1}); err != nil {
		t.Fatal(err)
	}
	if m.scans != 2 {
		t.Fatalf("scans = %d; modSeq change must invalidate cache", m.scans)
	}
}

func TestDirtyReaderBypassesCache(t *testing.T) {
	seq := map[string]uint64{"Stock": 1}
	e := New(func(class string) uint64 { return seq[class] })
	e.AddRule(1, mustCond(t, "select s from Stock s where s.price >= 100"))
	m := stockReader()
	e.Evaluate(m, nil, true, []uint64{1})  // fills cache
	e.Evaluate(m, nil, false, []uint64{1}) // dirty: must re-evaluate
	if m.scans != 2 {
		t.Fatalf("scans = %d; dirty reader must not use cache", m.scans)
	}
}

func TestEventQueriesNeverCached(t *testing.T) {
	seq := map[string]uint64{"Stock": 1}
	e := New(func(class string) uint64 { return seq[class] })
	e.AddRule(1, mustCond(t, "select s from Stock s where s.symbol = event.sym"))
	m := stockReader()
	args := map[string]datum.Value{"sym": datum.Str("XRX")}
	e.Evaluate(m, args, true, []uint64{1})
	args2 := map[string]datum.Value{"sym": datum.Str("IBM")}
	out, _ := e.Evaluate(m, args2, true, []uint64{1})
	if m.scans != 2 {
		t.Fatalf("scans = %d; event-dependent query must not be cached", m.scans)
	}
	if !out[1].Satisfied {
		t.Fatal("second event should match IBM")
	}
}

func TestQueryErrorSurfaces(t *testing.T) {
	e := New(nil)
	e.AddRule(1, mustCond(t, "select s.price / 0 from Stock s"))
	if _, err := e.Evaluate(stockReader(), nil, false, []uint64{1}); err == nil {
		t.Fatal("runtime error must surface")
	}
}

func TestMixedRulesOneEvaluatePass(t *testing.T) {
	e := New(nil)
	shared := "select s from Stock s where s.price >= 100"
	e.AddRule(1, mustCond(t, shared))
	e.AddRule(2, mustCond(t, shared, "select s from Stock s where s.price >= 40"))
	e.AddRule(3, mustCond(t, "select s from Stock s where s.price >= 999"))
	m := stockReader()
	out, err := e.Evaluate(m, nil, false, []uint64{1, 2, 3})
	if err != nil {
		t.Fatal(err)
	}
	if !out[1].Satisfied || !out[2].Satisfied || out[3].Satisfied {
		t.Fatalf("outcomes = %+v %+v %+v", out[1], out[2], out[3])
	}
	if m.scans != 3 { // shared node once + >=40 once + >=999 once
		t.Fatalf("scans = %d, want 3", m.scans)
	}
}

func TestNodesIntrospection(t *testing.T) {
	e := New(nil)
	shared := "select s from Stock s where s.price >= 100"
	e.AddRule(1, mustCond(t, shared))
	e.AddRule(2, mustCond(t, shared, "select s from Stock s where s.symbol = event.sym"))
	nodes := e.Nodes()
	if len(nodes) != 2 {
		t.Fatalf("nodes = %+v", nodes)
	}
	if nodes[0].Refs != 2 || !nodes[0].EventFree {
		t.Fatalf("most-shared node = %+v", nodes[0])
	}
	if nodes[1].Refs != 1 || nodes[1].EventFree {
		t.Fatalf("event node = %+v", nodes[1])
	}
	if nodes[0].Cached {
		t.Fatal("no evaluation yet: nothing should be cached")
	}
}

var _ query.Reader = (*memReader)(nil)

func TestCachePropertyUnderRandomInvalidation(t *testing.T) {
	// Property: under a random interleaving of clean evaluations and
	// class writes, a cached answer is served ONLY when no relevant
	// class changed since it was computed — i.e. the evaluator's
	// answer always matches a fresh evaluation.
	seq := map[string]uint64{"Stock": 0, "Other": 0}
	e := New(func(class string) uint64 { return seq[class] })
	e.AddRule(1, mustCond(t, "select s from Stock s where s.price >= 100"))

	m := stockReader() // IBM at 120 satisfies the condition
	satisfied := true  // ground truth for the current data
	rng := newRandSource()
	for step := 0; step < 2000; step++ {
		switch rng.Intn(4) {
		case 0: // mutate Stock: flip whether any row satisfies
			satisfied = !satisfied
			price := 50.0
			if satisfied {
				price = 150
			}
			m.classes["Stock"][1].attrs["price"] = datum.Float(price)
			seq["Stock"]++
		case 1: // mutate an unrelated class: must NOT invalidate
			seq["Other"]++
		default: // clean evaluation
			out, err := e.Evaluate(m, nil, true, []uint64{1})
			if err != nil {
				t.Fatal(err)
			}
			if out[1].Satisfied != satisfied {
				t.Fatalf("step %d: evaluator says %v, truth %v", step, out[1].Satisfied, satisfied)
			}
		}
	}
	// The unrelated-class mutations must have produced cache reuse:
	// strictly fewer evaluations than evaluate calls.
	st := e.Stats()
	if st.CacheHits == 0 {
		t.Fatal("cache never hit despite unrelated-class-only periods")
	}
}

func newRandSource() *randWrap { return &randWrap{state: 0x9E3779B97F4A7C15} }

// randWrap is a tiny deterministic PRNG so the test needs no
// math/rand import churn.
type randWrap struct{ state uint64 }

func (r *randWrap) Intn(n int) int {
	r.state ^= r.state << 13
	r.state ^= r.state >> 7
	r.state ^= r.state << 17
	return int(r.state % uint64(n))
}
