// Tests for the pluggable execution engine: the evaluator runs
// conditions through plan.Run (the engine default) and must preserve
// the tree-walk's as-of-commit snapshot semantics even when the
// planner picks an index access path. External test package: it
// drives a full engine, which links against cond itself.
package cond_test

import (
	"reflect"
	"strings"
	"testing"

	"repro/internal/cond"
	"repro/internal/core"
	"repro/internal/datum"
	"repro/internal/object"
	"repro/internal/plan"
	"repro/internal/query"
)

func condEngine(t *testing.T) *core.Engine {
	t.Helper()
	e, err := core.Open(core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { e.Close() })
	tx := e.Begin()
	err = e.DefineClass(tx, object.Class{
		Name: "Holding",
		Attrs: []object.AttrDef{
			{Name: "owner", Kind: datum.KindString, Indexed: true},
			{Name: "symbol", Kind: datum.KindString},
			{Name: "qty", Kind: datum.KindInt},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	err = e.DefineClass(tx, object.Class{
		Name: "Stock",
		Attrs: []object.AttrDef{
			{Name: "symbol", Kind: datum.KindString, Indexed: true},
			{Name: "price", Kind: datum.KindFloat},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	return e
}

func addHolding(t *testing.T, e *core.Engine, owner, symbol string, qty int64) {
	t.Helper()
	tx := e.Begin()
	if _, err := e.Create(tx, "Holding", map[string]datum.Value{
		"owner": datum.Str(owner), "symbol": datum.Str(symbol), "qty": datum.Int(qty),
	}); err != nil {
		t.Fatal(err)
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
}

// TestPlannerExecPinnedSnapshot pins a snapshot reader, commits more
// matching rows afterwards, and checks that a condition evaluated
// through plan.Run — with the live index already holding the new
// entries — still returns exactly the pinned state, identically to
// the tree-walk.
func TestPlannerExecPinnedSnapshot(t *testing.T) {
	e := condEngine(t)
	addHolding(t, e, "kim", "XRX", 1)
	addHolding(t, e, "kim", "IBM", 2)
	for i := 0; i < 120; i++ {
		addHolding(t, e, "filler", "ZZZ", int64(i))
	}

	c, err := cond.ParseCondition([]string{"select h from Holding h where h.owner = 'kim'"})
	if err != nil {
		t.Fatal(err)
	}
	planner := cond.New(e.Store.ModSeq)
	planner.SetExec(plan.Run)
	planner.AddRule(1, c)
	treewalk := cond.New(e.Store.ModSeq)
	treewalk.AddRule(1, c)

	// Pin the snapshot, THEN commit two more matching holdings. The
	// live owner index now has four 'kim' entries; the pinned reader
	// must surface only the two as-of rows.
	tx := e.Begin()
	sr := e.Objects.SnapshotReader(tx)
	defer func() { sr.Close(); tx.Commit() }()
	addHolding(t, e, "kim", "XRX", 3)
	addHolding(t, e, "kim", "GE", 4)

	// The planner takes the index path for this shape (cheap directed
	// check before trusting the main assertion).
	q := query.MustParse("select h from Holding h where h.owner = 'kim'")
	if text := plan.Build(q, sr, nil, plan.Options{}).Explain(); !strings.Contains(text, "index scan") {
		t.Fatalf("expected an index path:\n%s", text)
	}

	got, err := planner.Evaluate(sr, nil, false, []uint64{1})
	if err != nil {
		t.Fatal(err)
	}
	want, err := treewalk.Evaluate(sr, nil, false, []uint64{1})
	if err != nil {
		t.Fatal(err)
	}
	if !got[1].Satisfied || !want[1].Satisfied {
		t.Fatalf("condition unsatisfied: plan=%v treewalk=%v", got[1].Satisfied, want[1].Satisfied)
	}
	if len(got[1].Primary.Rows) != 2 {
		t.Fatalf("pinned snapshot leaked later commits: %d rows, want 2", len(got[1].Primary.Rows))
	}
	if !reflect.DeepEqual(want[1].Primary, got[1].Primary) {
		t.Fatalf("planner and tree-walk disagree on primary rows:\nwant %+v\ngot  %+v",
			want[1].Primary, got[1].Primary)
	}

	// A fresh snapshot sees all four.
	tx2 := e.Begin()
	sr2 := e.Objects.SnapshotReader(tx2)
	defer func() { sr2.Close(); tx2.Commit() }()
	after, err := planner.Evaluate(sr2, nil, false, []uint64{1})
	if err != nil {
		t.Fatal(err)
	}
	if len(after[1].Primary.Rows) != 4 {
		t.Fatalf("fresh snapshot rows = %d, want 4", len(after[1].Primary.Rows))
	}
}

// TestPlannerExecJoinConditionMatchesTreeWalk runs a join condition
// (the planner reorders it through the owner index) through both
// engines on the same snapshot and requires identical outcomes,
// including the primary rows that drive action binding.
func TestPlannerExecJoinConditionMatchesTreeWalk(t *testing.T) {
	e := condEngine(t)
	tx := e.Begin()
	for i := 0; i < 6; i++ {
		if _, err := e.Create(tx, "Stock", map[string]datum.Value{
			"symbol": datum.Str(string(rune('A' + i))), "price": datum.Float(float64(40 + i)),
		}); err != nil {
			t.Fatal(err)
		}
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	addHolding(t, e, "kim", "B", 10)
	addHolding(t, e, "kim", "D", 20)
	addHolding(t, e, "lee", "B", 30)
	for i := 0; i < 100; i++ {
		addHolding(t, e, "filler", "ZZZ", int64(i))
	}

	c, err := cond.ParseCondition([]string{
		"select h, s from Holding h, Stock s where h.symbol = s.symbol and h.owner = event.who",
		"select s from Stock s where s.price >= event.floor",
	})
	if err != nil {
		t.Fatal(err)
	}
	planner := cond.New(e.Store.ModSeq)
	planner.SetExec(plan.Run)
	planner.AddRule(7, c)
	treewalk := cond.New(e.Store.ModSeq)
	treewalk.AddRule(7, c)

	for _, args := range []map[string]datum.Value{
		{"who": datum.Str("kim"), "floor": datum.Float(41)},
		{"who": datum.Str("lee"), "floor": datum.Float(41)},
		{"who": datum.Str("kim"), "floor": datum.Float(1000)}, // second query empty
		{"who": datum.Str("nobody"), "floor": datum.Float(0)}, // first query empty
	} {
		rtx := e.Begin()
		sr := e.Objects.SnapshotReader(rtx)
		got, gerr := planner.Evaluate(sr, args, false, []uint64{7})
		want, werr := treewalk.Evaluate(sr, args, false, []uint64{7})
		sr.Close()
		rtx.Commit()
		if gerr != nil || werr != nil {
			t.Fatalf("evaluate: plan=%v treewalk=%v", gerr, werr)
		}
		if got[7].Satisfied != want[7].Satisfied {
			t.Fatalf("args %v: satisfied plan=%v treewalk=%v", args, got[7].Satisfied, want[7].Satisfied)
		}
		if !reflect.DeepEqual(want[7].Primary, got[7].Primary) {
			t.Fatalf("args %v: primary rows differ\nwant %+v\ngot  %+v", args, want[7].Primary, got[7].Primary)
		}
	}
}
