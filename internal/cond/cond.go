// Package cond implements the HiPAC Condition Evaluator (§5.5 of the
// paper): given an event signal and the set of rules it triggered,
// determine efficiently which rule conditions are satisfied.
//
// A condition is a collection of queries; it is satisfied iff every
// query returns a non-empty result (§2.1). The evaluator maintains a
// *condition graph*: each syntactically distinct query (by canonical
// form) is a single node shared by all rules that use it, so a query
// appearing in a thousand rules is evaluated once per event — the
// "multiple query optimization" of §5.5 in spirit. Nodes whose
// queries reference no event arguments can additionally be cached
// across events and invalidated by class modification counters
// (incremental evaluation).
//
// Evaluation reads the database through a query.Reader supplied by
// the caller. The rule manager passes a snapshot-pinned reader
// (object.SnapshotReader): every query of a coupling group's shared
// evaluation resolves committed data at one commit LSN — plus the
// triggering transaction's own uncommitted effects — so a deferred
// condition can never observe a torn view of a concurrent commit,
// and evaluation never blocks or is blocked by committers.
package cond

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"

	"repro/internal/datum"
	"repro/internal/obs"
	"repro/internal/query"
)

// Condition is a parsed rule condition: zero or more queries, the
// first of which is the *primary* query whose result rows drive the
// action (one action execution per row). An empty condition is always
// satisfied.
type Condition struct {
	Queries []*query.Query
}

// ParseCondition parses the query texts of a condition.
func ParseCondition(srcs []string) (Condition, error) {
	c := Condition{}
	for i, src := range srcs {
		q, err := query.Parse(src)
		if err != nil {
			return Condition{}, fmt.Errorf("cond: query %d: %w", i+1, err)
		}
		c.Queries = append(c.Queries, q)
	}
	return c, nil
}

// Strings returns the canonical texts of the condition's queries.
func (c Condition) Strings() []string {
	out := make([]string, len(c.Queries))
	for i, q := range c.Queries {
		out[i] = q.String()
	}
	return out
}

// Footprint unions the footprints of all queries.
func (c Condition) Footprint() query.Footprint {
	fp := query.Footprint{Classes: map[string]map[string]struct{}{}}
	seen := map[string]bool{}
	for _, q := range c.Queries {
		qf := q.ComputeFootprint()
		for cls, attrs := range qf.Classes {
			if fp.Classes[cls] == nil {
				fp.Classes[cls] = map[string]struct{}{}
			}
			for a := range attrs {
				fp.Classes[cls][a] = struct{}{}
			}
		}
		for _, a := range qf.EventArgs {
			if !seen[a] {
				seen[a] = true
				fp.EventArgs = append(fp.EventArgs, a)
			}
		}
	}
	return fp
}

// Outcome is the result of evaluating one rule's condition.
type Outcome struct {
	Satisfied bool
	// Primary is the first query's result when satisfied (nil for an
	// empty condition). Its rows drive action execution.
	Primary *query.Result
}

// Stats counts evaluator activity; Evaluations counts query-node
// evaluations actually performed, SharedHits counts rule-queries
// answered from a node already evaluated for the same event, and
// CacheHits counts nodes answered from the cross-event cache.
type Stats struct {
	Evaluations uint64
	SharedHits  uint64
	CacheHits   uint64
}

type qnode struct {
	q         *query.Query
	canonical string
	refs      int
	footprint query.Footprint
	eventFree bool

	// Cross-event cache, used only for event-free queries evaluated
	// by "clean" readers (transactions with no uncommitted writes).
	cached     *query.Result
	cachedSeqs map[string]uint64
}

type ruleEntry struct {
	nodes []*qnode
}

// ModSeqFunc reports a counter that advances whenever the class is
// written; the storage layer provides it.
type ModSeqFunc func(class string) uint64

// Evaluator is the condition evaluator. It is safe for concurrent
// use. The activity counters are atomics, not mu-guarded state:
// high-fan-out firing paths (many separate couplings evaluating
// concurrently, e.g. composite-event bursts) would otherwise
// serialize on the evaluator mutex just to count shared hits.
type Evaluator struct {
	mu     sync.Mutex
	nodes  map[string]*qnode
	rules  map[uint64]*ruleEntry
	modSeq ModSeqFunc
	obsm   *obs.Metrics // nil-safe evaluation-latency observer
	exec   ExecFunc     // nil means query.Eval (tree-walk)

	nEvals, nShared, nCache atomic.Uint64
}

// ExecFunc runs one query against a reader — the pluggable execution
// engine. The engine installs the cost-based planner here (plan.Exec
// with its configured parallelism, so rule conditions get the same
// shard-parallel scans and partitioned hash joins as ad-hoc queries);
// nil keeps the tree-walk evaluator. Any implementation must preserve
// query.Eval's semantics exactly: condition satisfaction, the primary
// query's action-parameter rows, and the as-of-commit snapshot view
// all flow through the reader unchanged.
type ExecFunc func(q *query.Query, r query.Reader, eventArgs map[string]datum.Value) (*query.Result, error)

// SetExec installs the query-execution engine. Not safe to call
// concurrently with evaluation.
func (e *Evaluator) SetExec(fn ExecFunc) { e.exec = fn }

// SetObserver installs an evaluation-latency observer. Not safe to
// call concurrently with evaluation.
func (e *Evaluator) SetObserver(o *obs.Metrics) { e.obsm = o }

// New returns an evaluator using modSeq for incremental-cache
// invalidation (pass nil to disable cross-event caching).
func New(modSeq ModSeqFunc) *Evaluator {
	return &Evaluator{
		nodes:  map[string]*qnode{},
		rules:  map[uint64]*ruleEntry{},
		modSeq: modSeq,
	}
}

// AddRule registers a rule's condition in the graph (§5.5 "Add
// Rule"). Queries identical to ones already in the graph share their
// node.
func (e *Evaluator) AddRule(id uint64, c Condition) {
	e.mu.Lock()
	defer e.mu.Unlock()
	entry := &ruleEntry{}
	for _, q := range c.Queries {
		key := q.String()
		n := e.nodes[key]
		if n == nil {
			fp := q.ComputeFootprint()
			n = &qnode{q: q, canonical: key, footprint: fp, eventFree: len(fp.EventArgs) == 0}
			e.nodes[key] = n
		}
		n.refs++
		entry.nodes = append(entry.nodes, n)
	}
	e.rules[id] = entry
}

// RemoveRule unregisters a rule (§5.5 "Delete Rule"), dropping
// graph nodes no longer referenced by any rule.
func (e *Evaluator) RemoveRule(id uint64) {
	e.mu.Lock()
	defer e.mu.Unlock()
	entry := e.rules[id]
	if entry == nil {
		return
	}
	delete(e.rules, id)
	for _, n := range entry.nodes {
		n.refs--
		if n.refs == 0 {
			delete(e.nodes, n.canonical)
		}
	}
}

// NodeCount reports the number of distinct query nodes in the graph.
func (e *Evaluator) NodeCount() int {
	e.mu.Lock()
	defer e.mu.Unlock()
	return len(e.nodes)
}

// NodeInfo describes one condition-graph node for the rule-base
// tooling of §7 ("tools and techniques needed to develop large,
// complex rule bases").
type NodeInfo struct {
	Query     string `json:"query"`     // canonical text
	Refs      int    `json:"refs"`      // rules sharing the node
	EventFree bool   `json:"eventFree"` // eligible for the cross-event cache
	Cached    bool   `json:"cached"`    // currently holds a cached result
}

// Nodes returns the condition graph's nodes sorted by descending
// reference count (most-shared first), then by query text.
func (e *Evaluator) Nodes() []NodeInfo {
	e.mu.Lock()
	defer e.mu.Unlock()
	out := make([]NodeInfo, 0, len(e.nodes))
	for _, n := range e.nodes {
		out = append(out, NodeInfo{
			Query:     n.canonical,
			Refs:      n.refs,
			EventFree: n.eventFree,
			Cached:    n.cached != nil,
		})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Refs != out[j].Refs {
			return out[i].Refs > out[j].Refs
		}
		return out[i].Query < out[j].Query
	})
	return out
}

// Stats returns a snapshot of the counters.
func (e *Evaluator) Stats() Stats {
	return Stats{
		Evaluations: e.nEvals.Load(),
		SharedHits:  e.nShared.Load(),
		CacheHits:   e.nCache.Load(),
	}
}

// Evaluate determines which of the given rules' conditions are
// satisfied (§5.5 "Evaluate Conditions"). reader is bound to the
// transaction chosen by the coupling mode; eventArgs are the signal's
// bindings; clean declares that the reader's transaction (including
// ancestors) has no uncommitted writes, enabling the cross-event
// cache. Each distinct query node is evaluated at most once per call
// regardless of how many rules share it.
func (e *Evaluator) Evaluate(reader query.Reader, eventArgs map[string]datum.Value,
	clean bool, ruleIDs []uint64) (map[uint64]*Outcome, error) {

	// Snapshot the per-rule node lists under the lock; query
	// evaluation itself runs without holding it.
	e.mu.Lock()
	plan := make(map[uint64][]*qnode, len(ruleIDs))
	for _, id := range ruleIDs {
		if entry, ok := e.rules[id]; ok {
			plan[id] = entry.nodes
		}
	}
	e.mu.Unlock()

	memo := map[*qnode]*query.Result{}
	out := make(map[uint64]*Outcome, len(plan))
	for id, nodes := range plan {
		oc := &Outcome{Satisfied: true}
		for i, n := range nodes {
			res, ok := memo[n]
			if ok {
				e.nShared.Add(1)
			} else {
				var err error
				res, err = e.evalNode(n, reader, eventArgs, clean)
				if err != nil {
					return nil, fmt.Errorf("cond: rule %d query %q: %w", id, n.canonical, err)
				}
				memo[n] = res
			}
			if res.Empty() {
				oc.Satisfied = false
				oc.Primary = nil
				break
			}
			if i == 0 {
				oc.Primary = res
			}
		}
		out[id] = oc
	}
	return out, nil
}

func (e *Evaluator) evalNode(n *qnode, reader query.Reader,
	eventArgs map[string]datum.Value, clean bool) (*query.Result, error) {

	if clean && n.eventFree && e.modSeq != nil {
		e.mu.Lock()
		if n.cached != nil && e.cacheFreshLocked(n) {
			res := n.cached
			e.nCache.Add(1)
			e.mu.Unlock()
			return res, nil
		}
		e.mu.Unlock()
	}

	tm := e.obsm.Timer(obs.HCondEval)
	run := e.exec
	if run == nil {
		run = query.Eval
	}
	res, err := run(n.q, reader, eventArgs)
	if err != nil {
		return nil, err
	}
	tm.Done()
	e.nEvals.Add(1)
	if clean && n.eventFree && e.modSeq != nil {
		e.mu.Lock()
		seqs := make(map[string]uint64, len(n.footprint.Classes))
		for cls := range n.footprint.Classes {
			seqs[cls] = e.modSeq(cls)
		}
		n.cached = res
		n.cachedSeqs = seqs
		e.mu.Unlock()
	}
	return res, nil
}

// cacheFreshLocked reports whether no class in the node's footprint
// has been written since the cache was filled. Caller holds e.mu.
func (e *Evaluator) cacheFreshLocked(n *qnode) bool {
	for cls, seq := range n.cachedSeqs {
		if e.modSeq(cls) != seq {
			return false
		}
	}
	return len(n.cachedSeqs) == len(n.footprint.Classes)
}
