package ipc

import (
	"bytes"
	"encoding/binary"
	"io"
	"strings"
	"testing"

	"repro/internal/datum"
)

func TestMessageRoundTrip(t *testing.T) {
	body, err := EncodeBody(CreateReq{Txn: 7, Class: "Stock",
		Attrs: map[string]datum.Value{"price": datum.Float(50)}})
	if err != nil {
		t.Fatal(err)
	}
	m := &Message{ID: 42, Kind: KindRequest, Op: OpCreate, Body: body}
	var buf bytes.Buffer
	if err := Write(&buf, m); err != nil {
		t.Fatal(err)
	}
	got, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.ID != 42 || got.Kind != KindRequest || got.Op != OpCreate {
		t.Fatalf("got %+v", got)
	}
	var req CreateReq
	if err := DecodeBody(got, &req); err != nil {
		t.Fatal(err)
	}
	if req.Txn != 7 || req.Class != "Stock" || req.Attrs["price"].AsFloat() != 50 {
		t.Fatalf("req = %+v", req)
	}
}

func TestMultipleMessagesOnStream(t *testing.T) {
	var buf bytes.Buffer
	for i := uint64(1); i <= 5; i++ {
		Write(&buf, &Message{ID: i, Kind: KindReply})
	}
	for i := uint64(1); i <= 5; i++ {
		m, err := Read(&buf)
		if err != nil || m.ID != i {
			t.Fatalf("message %d: %v %v", i, m, err)
		}
	}
	if _, err := Read(&buf); err != io.EOF {
		t.Fatalf("EOF expected, got %v", err)
	}
}

func TestReadTruncated(t *testing.T) {
	var buf bytes.Buffer
	Write(&buf, &Message{ID: 1, Kind: KindReply})
	data := buf.Bytes()
	for i := 1; i < len(data); i++ {
		if _, err := Read(bytes.NewReader(data[:i])); err == nil {
			t.Fatalf("%d-byte prefix should fail", i)
		}
	}
}

func TestReadOversizedFrame(t *testing.T) {
	var hdr [4]byte
	binary.BigEndian.PutUint32(hdr[:], MaxFrame+1)
	if _, err := Read(bytes.NewReader(hdr[:])); err == nil ||
		!strings.Contains(err.Error(), "too large") {
		t.Fatalf("oversized frame: %v", err)
	}
}

func TestReadGarbageJSON(t *testing.T) {
	var buf bytes.Buffer
	payload := []byte("not json")
	var hdr [4]byte
	binary.BigEndian.PutUint32(hdr[:], uint32(len(payload)))
	buf.Write(hdr[:])
	buf.Write(payload)
	if _, err := Read(&buf); err == nil {
		t.Fatal("garbage payload should fail")
	}
}

func TestDecodeEmptyBody(t *testing.T) {
	var req TxnRef
	if err := DecodeBody(&Message{}, &req); err != nil {
		t.Fatal(err)
	}
	if req.Txn != 0 {
		t.Fatal("empty body should leave zero value")
	}
}
