// Package ipc defines the wire protocol between application programs
// and the HiPAC server: length-prefixed JSON messages over a stream
// connection. The same connection carries requests in both
// directions — applications invoke DBMS operations, and the DBMS
// sends application requests back when rule actions name application
// operations (the §4.1 role reversal: "the same underlying operating
// system facility can be used to reverse the direction in which
// requests and replies are transmitted").
package ipc

import (
	"bytes"
	"encoding/binary"
	"encoding/json"
	"fmt"
	"io"
	"sync"

	"repro/internal/datum"
	"repro/internal/object"
	"repro/internal/obs"
	"repro/internal/rule"
)

// MaxFrame bounds a single message (16 MiB); larger frames are
// protocol errors.
const MaxFrame = 16 << 20

// Message kinds.
const (
	// KindRequest is a client-to-server operation request.
	KindRequest = "req"
	// KindReply answers a request.
	KindReply = "rep"
	// KindAppCall is a server-to-client application request (a rule
	// action's "request" step).
	KindAppCall = "call"
	// KindAppReply answers an application request.
	KindAppReply = "callrep"
)

// Message is one protocol frame.
type Message struct {
	ID   uint64          `json:"id"`
	Kind string          `json:"kind"`
	Op   string          `json:"op,omitempty"`
	Err  string          `json:"err,omitempty"`
	Body json.RawMessage `json:"body,omitempty"`
}

// framePool recycles encode buffers across Write calls. Buffers that
// grew past maxPooledFrame are dropped rather than pooled so one huge
// message does not pin its allocation forever.
var framePool = sync.Pool{New: func() any { return new(bytes.Buffer) }}

const maxPooledFrame = 64 << 10

// Write frames and writes one message. The header and payload are
// marshalled into one reused buffer and written with a single Write
// call, so a framed message costs one syscall (and, on a shared
// connection, cannot interleave its header with another writer's
// payload if a caller ever skips the connection mutex).
func Write(w io.Writer, m *Message) error {
	buf := framePool.Get().(*bytes.Buffer)
	defer func() {
		if buf.Cap() <= maxPooledFrame {
			framePool.Put(buf)
		}
	}()
	buf.Reset()
	var hdr [4]byte
	buf.Write(hdr[:]) // length placeholder, patched below
	if err := json.NewEncoder(buf).Encode(m); err != nil {
		return fmt.Errorf("ipc: marshal: %w", err)
	}
	frame := buf.Bytes()
	if n := len(frame); n > 0 && frame[n-1] == '\n' {
		frame = frame[:n-1] // Encoder's newline is not part of the wire format
	}
	payload := len(frame) - 4
	if payload > MaxFrame {
		return fmt.Errorf("ipc: frame too large (%d bytes)", payload)
	}
	binary.BigEndian.PutUint32(frame[:4], uint32(payload))
	_, err := w.Write(frame)
	return err
}

// Read reads one framed message.
func Read(r io.Reader) (*Message, error) {
	var hdr [4]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, err
	}
	n := binary.BigEndian.Uint32(hdr[:])
	if n > MaxFrame {
		return nil, fmt.Errorf("ipc: frame too large (%d bytes)", n)
	}
	payload := make([]byte, n)
	if _, err := io.ReadFull(r, payload); err != nil {
		return nil, err
	}
	var m Message
	if err := json.Unmarshal(payload, &m); err != nil {
		return nil, fmt.Errorf("ipc: unmarshal: %w", err)
	}
	return &m, nil
}

// EncodeBody marshals a payload struct into a message body.
func EncodeBody(v any) (json.RawMessage, error) {
	raw, err := json.Marshal(v)
	if err != nil {
		return nil, fmt.Errorf("ipc: encode body: %w", err)
	}
	return raw, nil
}

// DecodeBody unmarshals a message body into a payload struct.
func DecodeBody(m *Message, v any) error {
	if len(m.Body) == 0 {
		return nil
	}
	if err := json.Unmarshal(m.Body, v); err != nil {
		return fmt.Errorf("ipc: decode %s body: %w", m.Op, err)
	}
	return nil
}

// Operation names carried in Message.Op.
const (
	OpBegin       = "begin"
	OpChild       = "child"
	OpCommit      = "commit"
	OpAbort       = "abort"
	OpDefineClass = "defineClass"
	OpDropClass   = "dropClass"
	OpClasses     = "classes"
	OpCreate      = "create"
	OpModify      = "modify"
	OpDelete      = "delete"
	OpGet         = "get"
	OpQuery       = "query"
	OpExplain     = "explain"
	OpDefineEvent = "defineEvent"
	OpSignalEvent = "signalEvent"
	OpCreateRule  = "createRule"
	OpUpdateRule  = "updateRule"
	OpDeleteRule  = "deleteRule"
	OpEnableRule  = "enableRule"
	OpDisableRule = "disableRule"
	OpFireRule    = "fireRule"
	OpListRules   = "listRules"
	OpServe       = "serve"
	OpStats       = "stats"
	OpTrace       = "trace"
	OpGraph       = "graph"
	OpCheckpoint  = "checkpoint"
	OpReplStatus  = "replStatus"
	OpPromote     = "promote"
)

// TxnRef names a transaction in requests.
type TxnRef struct {
	Txn uint64 `json:"txn"`
}

// BeginRep returns the new transaction id.
type BeginRep struct {
	Txn uint64 `json:"txn"`
}

// DefineClassReq carries a class definition.
type DefineClassReq struct {
	Txn   uint64       `json:"txn"`
	Class object.Class `json:"class"`
}

// DropClassReq names a class to drop.
type DropClassReq struct {
	Txn  uint64 `json:"txn"`
	Name string `json:"name"`
}

// ClassesRep lists class definitions.
type ClassesRep struct {
	Classes []object.Class `json:"classes"`
}

// CreateReq creates an object.
type CreateReq struct {
	Txn   uint64                 `json:"txn"`
	Class string                 `json:"class"`
	Attrs map[string]datum.Value `json:"attrs"`
}

// CreateRep returns the new object's OID.
type CreateRep struct {
	OID uint64 `json:"oid"`
}

// ModifyReq updates an object.
type ModifyReq struct {
	Txn   uint64                 `json:"txn"`
	OID   uint64                 `json:"oid"`
	Attrs map[string]datum.Value `json:"attrs"`
}

// DeleteReq deletes an object.
type DeleteReq struct {
	Txn uint64 `json:"txn"`
	OID uint64 `json:"oid"`
}

// GetReq fetches an object.
type GetReq struct {
	Txn uint64 `json:"txn"`
	OID uint64 `json:"oid"`
}

// GetRep returns an object's state.
type GetRep struct {
	OID   uint64                 `json:"oid"`
	Class string                 `json:"class"`
	Attrs map[string]datum.Value `json:"attrs"`
}

// QueryReq evaluates a select statement.
type QueryReq struct {
	Txn  uint64                 `json:"txn"`
	Src  string                 `json:"src"`
	Args map[string]datum.Value `json:"args,omitempty"`
}

// QueryRep returns a result set.
type QueryRep struct {
	Columns []string        `json:"columns"`
	Rows    [][]datum.Value `json:"rows"`
}

// ExplainReq asks for the physical plan of a select statement; it is
// planned, not executed. Reuses QueryReq's shape.
type ExplainReq struct {
	Txn  uint64                 `json:"txn"`
	Src  string                 `json:"src"`
	Args map[string]datum.Value `json:"args,omitempty"`
}

// ExplainRep returns the rendered plan.
type ExplainRep struct {
	Text string `json:"text"`
}

// DefineEventReq defines an external event.
type DefineEventReq struct {
	Name   string   `json:"name"`
	Params []string `json:"params,omitempty"`
}

// SignalEventReq signals an external event. Txn 0 means outside any
// transaction.
type SignalEventReq struct {
	Txn  uint64                 `json:"txn"`
	Name string                 `json:"name"`
	Args map[string]datum.Value `json:"args,omitempty"`
}

// CreateRuleReq carries a rule definition.
type CreateRuleReq struct {
	Def rule.Def `json:"def"`
}

// RuleNameReq names a rule (delete/enable/disable).
type RuleNameReq struct {
	Name string `json:"name"`
}

// FireRuleReq fires a rule manually.
type FireRuleReq struct {
	Txn  uint64                 `json:"txn"`
	Name string                 `json:"name"`
	Args map[string]datum.Value `json:"args,omitempty"`
}

// RuleInfo describes one registered rule.
type RuleInfo struct {
	Name    string `json:"name"`
	Event   string `json:"event"`
	EC      string `json:"ec"`
	CA      string `json:"ca"`
	Enabled bool   `json:"enabled"`
}

// ListRulesRep lists registered rules.
type ListRulesRep struct {
	Rules []RuleInfo `json:"rules"`
}

// ServeReq declares the application operations this connection
// serves; the server routes matching rule-action requests to it.
type ServeReq struct {
	Ops []string `json:"ops"`
}

// StatsRep carries the engine counters plus the observability
// snapshot (histograms and trace-ring totals). Engine stays a raw
// message so the protocol does not pin the engine's Stats layout.
type StatsRep struct {
	Engine json.RawMessage `json:"engine"`
	Obs    obs.Snapshot    `json:"obs"`
}

// CheckpointRep reports the outcome of a manually triggered fuzzy
// checkpoint.
type CheckpointRep struct {
	// Kind is "full" or "delta" — which chain element the checkpoint
	// wrote.
	Kind string `json:"kind"`
	// Records is the number of records in that element.
	Records int `json:"records"`
	// Reclaimed is the number of WAL bytes truncated away.
	Reclaimed uint64 `json:"reclaimed"`
}

// ReplStatusRep describes the replication state of the answering
// node. A primary reports its durable frontier and attached follower
// count; a replica reports its applied frontier, the primary frontier
// it last heard, and its catchup counters.
type ReplStatusRep struct {
	// Role is "primary", "replica", or "promoted".
	Role string `json:"role"`
	// Primary is the upstream address (replica only).
	Primary string `json:"primary,omitempty"`
	// State is the replica stream state: connecting, bootstrapping, or
	// streaming.
	State string `json:"state,omitempty"`
	// AppliedLSN is the replica's applied frontier.
	AppliedLSN uint64 `json:"appliedLsn,omitempty"`
	// FlushedLSN is the durable WAL frontier: the node's own on a
	// primary, the last one heard from upstream on a replica.
	FlushedLSN uint64 `json:"flushedLsn,omitempty"`
	// LagBytes is FlushedLSN - AppliedLSN on a replica (0 when caught
	// up or unknown).
	LagBytes uint64 `json:"lagBytes,omitempty"`
	// LagNanos is the last observed send-to-apply latency.
	LagNanos int64 `json:"lagNanos,omitempty"`
	// Generation counts bootstrap generations of the replica's store.
	Generation int `json:"generation,omitempty"`
	// Bootstraps counts chain ships (resyncs served, on a primary).
	Bootstraps uint64 `json:"bootstraps,omitempty"`
	// Reconnects counts stream reconnection attempts.
	Reconnects uint64 `json:"reconnects,omitempty"`
	// Batches counts replicated commit batches applied (shipped, on a
	// primary).
	Batches uint64 `json:"batches,omitempty"`
	// Connections is the number of attached followers (primary only).
	Connections int `json:"connections,omitempty"`
}

// PromoteRep reports the applied frontier at which a replica was
// promoted to a writable store.
type PromoteRep struct {
	AppliedLSN uint64 `json:"appliedLsn"`
}

// TraceReq asks for the newest finished firing trees (Last <= 0 means
// all retained).
type TraceReq struct {
	Last int `json:"last"`
}

// TraceRep returns firing trees, newest first.
type TraceRep struct {
	Traces []obs.SpanSnapshot `json:"traces"`
}

// GraphNode describes one condition-graph node (rule-base tooling).
type GraphNode struct {
	Query     string `json:"query"`
	Refs      int    `json:"refs"`
	EventFree bool   `json:"eventFree"`
	Cached    bool   `json:"cached"`
}

// GraphRep lists the condition graph.
type GraphRep struct {
	Nodes []GraphNode `json:"nodes"`
}

// AppCallBody is the body of a server-to-client application request
// and of an in-process dispatch.
type AppCallBody struct {
	Op   string                 `json:"op"`
	Args map[string]datum.Value `json:"args,omitempty"`
}

// AppReplyBody answers an application request.
type AppReplyBody struct {
	Reply map[string]datum.Value `json:"reply,omitempty"`
}
