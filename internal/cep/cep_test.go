package cep

import (
	"fmt"
	"math/rand"
	"testing"
	"time"

	"repro/internal/datum"
)

var epoch = time.Date(2026, 7, 6, 9, 0, 0, 0, time.UTC)

func at(d time.Duration) time.Time { return epoch.Add(d) }

// occ builds a correlated occurrence with the test's standard "k"
// correlation attribute.
func occ(part int, ts time.Duration, key string) Occurrence {
	return Occurrence{Part: part, Time: at(ts),
		Bindings: map[string]datum.Value{"k": datum.Str(key)}}
}

func correlCfg(cfg Config) Config {
	cfg.CorrelAttr = "k"
	cfg.CorrelVar = "key"
	return cfg
}

func TestWithinFiresInsideWindow(t *testing.T) {
	tm := New(correlCfg(Config{Kind: KWithin, Parts: 3, Window: time.Minute}), 4)
	if f := tm.Offer(occ(0, 0, "a")); len(f) != 0 {
		t.Fatalf("fired on first part: %v", f)
	}
	if f := tm.Offer(occ(1, 10*time.Second, "a")); len(f) != 0 {
		t.Fatalf("fired mid-sequence: %v", f)
	}
	f := tm.Offer(occ(2, 50*time.Second, "a"))
	if len(f) != 1 {
		t.Fatalf("completed sequence fired %d times, want 1", len(f))
	}
	if got := f[0].Bindings["key"]; got.AsString() != "a" {
		t.Fatalf("correl binding = %v, want a", got)
	}
	if ws := f[0].Bindings["cep_window_start"]; !ws.AsTime().Equal(at(0)) {
		t.Fatalf("cep_window_start = %v", ws)
	}
	if st := tm.Stats(); st.Partials != 0 || st.Instances != 0 {
		t.Fatalf("state left after firing: %+v", st)
	}
}

func TestWithinExpiresPastWindow(t *testing.T) {
	tm := New(correlCfg(Config{Kind: KWithin, Parts: 2, Window: time.Minute}), 4)
	tm.Offer(occ(0, 0, "a"))
	// The second part arrives past the window: the stale partial is
	// dropped by opportunistic expiry, no firing.
	if f := tm.Offer(occ(1, 2*time.Minute, "a")); len(f) != 0 {
		t.Fatalf("fired past window: %v", f)
	}
	st := tm.Stats()
	if st.Expired != 1 || st.Fired != 0 {
		t.Fatalf("stats = %+v, want 1 expired 0 fired", st)
	}
}

func TestWithinOutOfOrderDoesNotAdvance(t *testing.T) {
	tm := New(correlCfg(Config{Kind: KWithin, Parts: 3, Window: time.Minute}), 4)
	tm.Offer(occ(0, 0, "a"))
	tm.Offer(occ(2, time.Second, "a")) // part 2 before part 1
	if f := tm.Offer(occ(1, 2*time.Second, "a")); len(f) != 0 {
		t.Fatalf("fired out of order: %v", f)
	}
	// Now complete properly.
	if f := tm.Offer(occ(2, 3*time.Second, "a")); len(f) != 1 {
		t.Fatalf("ordered completion fired %d times", len(f))
	}
}

func TestWithinMaxPartialsCap(t *testing.T) {
	tm := New(correlCfg(Config{Kind: KWithin, Parts: 2, Window: time.Hour, MaxPartials: 8}), 4)
	for i := 0; i < 100; i++ {
		tm.Offer(occ(0, time.Duration(i)*time.Second, "a"))
	}
	if st := tm.Stats(); st.Partials != 8 || st.Expired != 92 {
		t.Fatalf("stats = %+v, want 8 partials / 92 expired", st)
	}
}

func TestDuringFiresAtIntervalEnd(t *testing.T) {
	tm := New(correlCfg(Config{Kind: KDuring, Parts: 3}), 4)
	tm.Offer(occ(1, 0, "a"))             // start
	tm.Offer(occ(0, 5*time.Second, "a")) // event inside
	tm.Offer(occ(0, 6*time.Second, "a")) // another
	f := tm.Offer(occ(2, 10*time.Second, "a"))
	if len(f) != 1 {
		t.Fatalf("interval end fired %d times, want 1", len(f))
	}
	if n := f[0].Bindings["cep_count"]; n.AsInt() != 2 {
		t.Fatalf("cep_count = %v, want 2", n)
	}
}

func TestDuringEmptyIntervalDoesNotFire(t *testing.T) {
	tm := New(correlCfg(Config{Kind: KDuring, Parts: 3}), 4)
	tm.Offer(occ(0, 0, "a")) // event before any start: ignored
	tm.Offer(occ(1, time.Second, "a"))
	if f := tm.Offer(occ(2, 2*time.Second, "a")); len(f) != 0 {
		t.Fatalf("empty interval fired: %v", f)
	}
	tm.Offer(occ(0, 3*time.Second, "a")) // event after end: ignored
	if st := tm.Stats(); st.Fired != 0 || st.Instances != 0 {
		t.Fatalf("stats = %+v", st)
	}
}

// TestDuringDeliveryPermutations drives all six delivery orders of
// (event, start, end): the interval fires exactly when the event is
// delivered after the start and before the end.
func TestDuringDeliveryPermutations(t *testing.T) {
	perms := [][]int{{0, 1, 2}, {0, 2, 1}, {1, 0, 2}, {1, 2, 0}, {2, 0, 1}, {2, 1, 0}}
	for _, perm := range perms {
		tm := New(correlCfg(Config{Kind: KDuring, Parts: 3}), 4)
		fired := 0
		for i, part := range perm {
			fired += len(tm.Offer(occ(part, time.Duration(i)*time.Second, "a")))
		}
		// Expected: start (1) before event (0) before end (2).
		pos := map[int]int{}
		for i, part := range perm {
			pos[part] = i
		}
		want := 0
		if pos[1] < pos[0] && pos[0] < pos[2] {
			want = 1
		}
		if fired != want {
			t.Errorf("order %v fired %d, want %d", perm, fired, want)
		}
	}
}

func TestSlidingWindow(t *testing.T) {
	tm := New(correlCfg(Config{Kind: KSliding, Parts: 1, Count: 3}), 4)
	fired := 0
	for i := 0; i < 5; i++ {
		fired += len(tm.Offer(occ(0, time.Duration(i)*time.Second, "a")))
	}
	// Fires on the 3rd, 4th, and 5th occurrence (window slides).
	if fired != 3 {
		t.Fatalf("sliding fired %d, want 3", fired)
	}
}

func TestTumblingWindow(t *testing.T) {
	tm := New(correlCfg(Config{Kind: KTumbling, Parts: 1, Count: 3}), 4)
	fired := 0
	for i := 0; i < 7; i++ {
		fired += len(tm.Offer(occ(0, time.Duration(i)*time.Second, "a")))
	}
	// Fires on the 3rd and 6th (bucket resets), not the 7th.
	if fired != 2 {
		t.Fatalf("tumbling fired %d, want 2", fired)
	}
}

func TestAggregateFiresOncePerBurst(t *testing.T) {
	tm := New(correlCfg(Config{Kind: KAggregate, Parts: 1, Count: 10, Window: time.Minute}), 4)
	fired := 0
	for i := 0; i < 25; i++ {
		fired += len(tm.Offer(occ(0, time.Duration(i)*time.Second, "a")))
	}
	// 25 occurrences inside one window: the 10th fires and consumes,
	// the 20th fires and consumes, 5 left pending.
	if fired != 2 {
		t.Fatalf("aggregate fired %d, want 2", fired)
	}
	if st := tm.Stats(); st.Partials != 5 {
		t.Fatalf("pending partials = %d, want 5", st.Partials)
	}
}

func TestAggregateWindowSlides(t *testing.T) {
	tm := New(correlCfg(Config{Kind: KAggregate, Parts: 1, Count: 3, Window: 10 * time.Second}), 4)
	tm.Offer(occ(0, 0, "a"))
	tm.Offer(occ(0, 1*time.Second, "a"))
	// Third occurrence arrives after the first two slid out: no firing.
	if f := tm.Offer(occ(0, 30*time.Second, "a")); len(f) != 0 {
		t.Fatalf("fired across window gap: %v", f)
	}
	tm.Offer(occ(0, 31*time.Second, "a"))
	if f := tm.Offer(occ(0, 32*time.Second, "a")); len(f) != 1 {
		t.Fatalf("dense burst fired %d, want 1", len(f))
	}
}

func TestCorrelationKeysAreIndependent(t *testing.T) {
	tm := New(correlCfg(Config{Kind: KAggregate, Parts: 1, Count: 3, Window: time.Hour}), 8)
	tm.Offer(occ(0, 0, "a"))
	tm.Offer(occ(0, 1*time.Second, "b"))
	tm.Offer(occ(0, 2*time.Second, "a"))
	tm.Offer(occ(0, 3*time.Second, "b"))
	f := tm.Offer(occ(0, 4*time.Second, "a"))
	if len(f) != 1 || f[0].Bindings["key"].AsString() != "a" {
		t.Fatalf("key a completion: %v", f)
	}
	if st := tm.Stats(); st.Instances != 1 || st.Partials != 2 {
		t.Fatalf("stats after a fired = %+v, want b's instance with 2 partials", st)
	}
}

func TestUncorrelatableOccurrenceIgnored(t *testing.T) {
	tm := New(correlCfg(Config{Kind: KSliding, Parts: 1, Count: 1}), 4)
	if f := tm.Offer(Occurrence{Part: 0, Time: at(0),
		Bindings: map[string]datum.Value{"other": datum.Int(1)}}); len(f) != 0 {
		t.Fatalf("fired without correl attr: %v", f)
	}
	if f := tm.Offer(Occurrence{Part: 0, Time: at(0),
		Bindings: map[string]datum.Value{"k": datum.Null()}}); len(f) != 0 {
		t.Fatalf("fired on null correl attr: %v", f)
	}
	if st := tm.Stats(); st.Instances != 0 {
		t.Fatalf("instance allocated for uncorrelatable occurrence: %+v", st)
	}
}

func TestDisableKeepsState(t *testing.T) {
	tm := New(correlCfg(Config{Kind: KWithin, Parts: 2, Window: time.Hour}), 4)
	tm.Offer(occ(0, 0, "a"))
	tm.SetEnabled(false)
	if f := tm.Offer(occ(1, time.Second, "a")); len(f) != 0 {
		t.Fatalf("disabled template fired: %v", f)
	}
	tm.SetEnabled(true)
	if f := tm.Offer(occ(1, 2*time.Second, "a")); len(f) != 1 {
		t.Fatalf("partial did not survive disable/enable: %v", f)
	}
}

// TestGCBoundsMemory is the bounded-memory acceptance test: a
// sustained stream of never-completing first parts across many keys,
// with periodic GC at the advancing logical time, must keep the live
// partial and instance counts flat at the level one window can hold —
// not grow with the total number of occurrences.
func TestGCBoundsMemory(t *testing.T) {
	const window = 10 * time.Second
	tm := New(correlCfg(Config{Kind: KWithin, Parts: 2, Window: window}), 8)
	maxPartials, maxInstances := 0, 0
	// 200 keys, one non-matching part-0 occurrence per key per second,
	// for 10 windows' worth of stream; GC once per second.
	for sec := 0; sec < 100; sec++ {
		now := time.Duration(sec) * time.Second
		for k := 0; k < 200; k++ {
			tm.Offer(occ(0, now, fmt.Sprintf("key-%03d", k)))
		}
		tm.GC(at(now))
		if st := tm.Stats(); st.Partials > maxPartials {
			maxPartials = st.Partials
		}
		if st := tm.Stats(); st.Instances > maxInstances {
			maxInstances = st.Instances
		}
	}
	// One window holds at most window/1s+1 = 11 occurrences per key.
	bound := 200 * 12
	if maxPartials > bound {
		t.Fatalf("partials peaked at %d, want <= %d (one window's worth)", maxPartials, bound)
	}
	if maxInstances > 200 {
		t.Fatalf("instances peaked at %d, want <= 200", maxInstances)
	}
	// After the stream stops, one GC past the window empties the state.
	tm.GC(at(1000 * time.Second))
	if st := tm.Stats(); st.Partials != 0 || st.Instances != 0 {
		t.Fatalf("state survived final GC: %+v", st)
	}
}

// TestInterleavingInvariance is the property test for the windowed
// operators: per-key occurrence sequences merged in any cross-key
// interleaving (preserving each key's own order) must produce exactly
// the same firings per key — shard state is keyed, so other keys'
// traffic can never perturb an automaton.
func TestInterleavingInvariance(t *testing.T) {
	kinds := []Config{
		{Kind: KWithin, Parts: 3, Window: 30 * time.Second},
		{Kind: KAggregate, Parts: 1, Count: 4, Window: 30 * time.Second},
		{Kind: KSliding, Parts: 1, Count: 3},
		{Kind: KTumbling, Parts: 1, Count: 3},
	}
	const keys = 8
	for _, cfg := range kinds {
		cfg := correlCfg(cfg)
		// Per-key random occurrence sequences with increasing times.
		gen := rand.New(rand.NewSource(42))
		seqs := make([][]Occurrence, keys)
		for k := range seqs {
			ts := time.Duration(0)
			for i := 0; i < 40; i++ {
				ts += time.Duration(1+gen.Intn(10)) * time.Second
				seqs[k] = append(seqs[k], occ(gen.Intn(cfg.Parts), ts, fmt.Sprintf("k%d", k)))
			}
		}
		run := func(seed int64) map[string]int {
			r := rand.New(rand.NewSource(seed))
			tm := New(cfg, 8)
			idx := make([]int, keys)
			fired := map[string]int{}
			for {
				// Pick a random key with occurrences left.
				live := make([]int, 0, keys)
				for k := range idx {
					if idx[k] < len(seqs[k]) {
						live = append(live, k)
					}
				}
				if len(live) == 0 {
					break
				}
				k := live[r.Intn(len(live))]
				for _, f := range tm.Offer(seqs[k][idx[k]]) {
					fired[f.Bindings["key"].AsString()]++
				}
				idx[k]++
			}
			return fired
		}
		want := run(1)
		for seed := int64(2); seed <= 6; seed++ {
			got := run(seed)
			for k := 0; k < keys; k++ {
				name := fmt.Sprintf("k%d", k)
				if got[name] != want[name] {
					t.Fatalf("kind %v: interleaving %d changed %s firings: %d vs %d",
						cfg.Kind, seed, name, got[name], want[name])
				}
			}
		}
	}
}

// TestShardDistribution: many keys must spread across more than one
// shard (maphash seeds vary, so assert a weak but robust property).
func TestShardDistribution(t *testing.T) {
	tm := New(correlCfg(Config{Kind: KAggregate, Parts: 1, Count: 1000, Window: time.Hour}), 8)
	for k := 0; k < 256; k++ {
		tm.Offer(occ(0, time.Duration(k)*time.Millisecond, fmt.Sprintf("key-%03d", k)))
	}
	dist := tm.ShardInstances()
	nonEmpty, total := 0, 0
	for _, n := range dist {
		if n > 0 {
			nonEmpty++
		}
		total += n
	}
	if total != 256 {
		t.Fatalf("instances = %d, want 256", total)
	}
	if nonEmpty < 2 {
		t.Fatalf("256 keys landed on %d shard(s): %v", nonEmpty, dist)
	}
}

func TestConcurrentOffers(t *testing.T) {
	tm := New(correlCfg(Config{Kind: KAggregate, Parts: 1, Count: 10, Window: time.Hour}), 8)
	const workers = 8
	done := make(chan int, workers)
	for w := 0; w < workers; w++ {
		go func(w int) {
			fired := 0
			for i := 0; i < 1000; i++ {
				key := fmt.Sprintf("key-%d", (i+w)%16)
				fired += len(tm.Offer(occ(0, time.Duration(i)*time.Millisecond, key)))
			}
			done <- fired
		}(w)
	}
	fired := 0
	for w := 0; w < workers; w++ {
		fired += <-done
	}
	st := tm.Stats()
	// 8000 occurrences over 16 keys, threshold 10: every firing
	// consumes exactly 10, so fired*10 + pending == 8000.
	if fired*10+st.Partials != 8000 {
		t.Fatalf("occurrence accounting: %d firings, %d pending", fired, st.Partials)
	}
}
