// Package cep is the composite-event runtime: it runs the windowed,
// interval, and aggregate event operators that extend the paper's
// disjunction/sequence algebra (the operator space mapped by the
// Reaction RuleML classification — interval relations, count windows,
// aggregation over sliding time windows).
//
// A Template is the compiled form of one operator occurrence in an
// event specification. At runtime the template maintains NFA
// *instances*, one per correlation key (e.g. one per ticker for
// `count(PriceDrop where ticker=$t) >= 10 within 1m`), hash-sharded
// so that occurrences for different keys advance their automata in
// parallel under independent shard locks — detection parallelizes the
// same way the store's heap partitions do.
//
// All temporal reasoning uses the logical occurrence times stamped by
// the detector's clock (internal/clock), never the wall clock, so
// semantics are deterministic under the virtual clock. Partial
// matches expire at start+window and are reclaimed both
// opportunistically (whenever their instance is touched) and by the
// detector's periodic GC sweep, so memory stays bounded under
// sustained non-matching streams.
package cep

import (
	"hash/maphash"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/datum"
	"repro/internal/lock"
)

// Kind selects the operator a Template implements.
type Kind int

// The composite-event operator kinds.
const (
	// KWithin: the parts must occur in order, all within Window of the
	// first part's occurrence (sequence-within-duration).
	KWithin Kind = iota
	// KDuring: part 0 (the event) must occur inside the interval
	// delimited by part 1 (start) and part 2 (end); fires once per
	// interval containing at least one event, when the end occurs.
	KDuring
	// KSliding: a sliding count window over part 0 — fires on every
	// occurrence once the last Count occurrences are present.
	KSliding
	// KTumbling: a tumbling count window over part 0 — fires on every
	// Count-th occurrence, then resets.
	KTumbling
	// KAggregate: fires when at least Count occurrences of part 0 fall
	// within the trailing Window; the occurrence set is consumed on
	// firing, so one qualifying burst fires exactly once.
	KAggregate
)

// DefaultShards is the instance-map shard count when a Template is
// built with shards <= 0.
const DefaultShards = 16

// DefaultMaxPartials caps the open partial matches per instance for
// KWithin; the oldest partial is dropped (counted as expired) when a
// new one would exceed the cap.
const DefaultMaxPartials = 64

// Config is the compiled operator description.
type Config struct {
	Kind   Kind
	Parts  int           // constituent roles (KWithin: len(parts); KDuring: 3; others: 1)
	Window time.Duration // KWithin, KAggregate
	Count  int           // KSliding/KTumbling window size; KAggregate minimum count
	// Correlation: occurrences are partitioned by the value bound to
	// CorrelAttr (occurrences without it are ignored), and firings
	// bind that value to CorrelVar. Empty CorrelAttr means one global
	// instance.
	CorrelAttr  string
	CorrelVar   string
	MaxPartials int // 0 = DefaultMaxPartials
}

// Occurrence is one constituent-event occurrence routed to a
// template. Part identifies the constituent's role.
type Occurrence struct {
	Part     int
	Time     time.Time
	Txn      lock.TxnID
	Bindings map[string]datum.Value
}

// Firing is one completed composite occurrence. Bindings merge the
// constituents' bindings (later constituents win collisions) plus the
// operator's own: the correlation variable, and cep_count /
// cep_window_start where meaningful.
type Firing struct {
	Time     time.Time
	Txn      lock.TxnID
	Bindings map[string]datum.Value
}

// Stats is a point-in-time snapshot of one template's state.
type Stats struct {
	Instances int    // live correlation-key instances
	Partials  int    // open partial matches across all instances
	Fired     uint64 // composite firings produced
	Expired   uint64 // partial matches dropped by expiry, cap, or window slide
}

// Template is one compiled operator with its sharded instance state.
// Offer and GC are safe for concurrent use; distinct correlation keys
// contend only on their shard.
type Template struct {
	cfg    Config
	shards []shard
	seed   maphash.Seed

	enabled atomic.Bool
	removed atomic.Bool

	fired     atomic.Uint64
	expired   atomic.Uint64
	partials  atomic.Int64
	instances atomic.Int64
}

type shard struct {
	mu   sync.Mutex
	inst map[string]*instance
	_    [40]byte // keep neighboring shard locks off one cache line
}

// partial is one open KWithin partial match: the sequence has
// advanced through parts [0, next) and expires at start+Window.
type partial struct {
	next  int
	start time.Time
	bind  map[string]datum.Value
}

// instance is the automaton state for one correlation key. The fields
// used depend on the template kind; everything is O(parts + window
// count) per instance.
type instance struct {
	keyVal datum.Value

	partials []partial // KWithin

	open  bool                   // KDuring: inside a start..end interval
	count int                    // KDuring events seen; KTumbling counter
	bind  map[string]datum.Value // KDuring/KTumbling accumulated bindings
	first time.Time              // KTumbling bucket start

	times []time.Time // KSliding last-Count ring; KAggregate trailing-window deque
}

// New compiles cfg into a template with the given shard count
// (rounded up to a power of two; <=0 means DefaultShards).
func New(cfg Config, shards int) *Template {
	if shards <= 0 {
		shards = DefaultShards
	}
	n := 1
	for n < shards {
		n <<= 1
	}
	if cfg.MaxPartials <= 0 {
		cfg.MaxPartials = DefaultMaxPartials
	}
	t := &Template{cfg: cfg, shards: make([]shard, n), seed: maphash.MakeSeed()}
	for i := range t.shards {
		t.shards[i].inst = map[string]*instance{}
	}
	t.enabled.Store(true)
	return t
}

// Window reports the template's expiry window (0 for kinds without
// one); the detector uses it to pace GC sweeps.
func (t *Template) Window() time.Duration { return t.cfg.Window }

// SetEnabled gates Offer; a disabled template ignores occurrences but
// keeps its state (matching the detector's disable semantics, where
// partial automaton progress survives a disable/enable cycle).
func (t *Template) SetEnabled(on bool) { t.enabled.Store(on) }

// SetRemoved permanently stops the template.
func (t *Template) SetRemoved() { t.removed.Store(true) }

// Partials reports the open partial matches across all instances
// (lock-free).
func (t *Template) Partials() int { return int(t.partials.Load()) }

// Offer routes one constituent occurrence into the template and
// returns any composite firings it completes. Only the shard owning
// the occurrence's correlation key is locked.
func (t *Template) Offer(occ Occurrence) []Firing {
	if !t.enabled.Load() || t.removed.Load() {
		return nil
	}
	key := ""
	var keyVal datum.Value
	if t.cfg.CorrelAttr != "" {
		v, ok := occ.Bindings[t.cfg.CorrelAttr]
		if !ok || v.IsNull() {
			return nil // uncorrelatable occurrence: ignored
		}
		keyVal = v
		key = v.Key()
	}
	sh := &t.shards[t.shardOf(key)]
	sh.mu.Lock()
	in := sh.inst[key]
	if in == nil {
		// KDuring events/ends before any start, and non-part-0 KWithin
		// occurrences, cannot open state: don't allocate an instance.
		if !t.opens(occ.Part) {
			sh.mu.Unlock()
			return nil
		}
		in = &instance{keyVal: keyVal}
		sh.inst[key] = in
		t.instances.Add(1)
	}
	firs := t.offer(in, occ)
	if t.emptyInstance(in) {
		delete(sh.inst, key)
		t.instances.Add(-1)
	}
	sh.mu.Unlock()
	t.fired.Add(uint64(len(firs)))
	return firs
}

// opens reports whether an occurrence of the given part can open
// fresh instance state.
func (t *Template) opens(part int) bool {
	switch t.cfg.Kind {
	case KWithin:
		return part == 0
	case KDuring:
		return part == 1 // only a start occurrence opens an interval
	default:
		return true
	}
}

// offer advances one instance. Caller holds the shard lock.
func (t *Template) offer(in *instance, occ Occurrence) []Firing {
	switch t.cfg.Kind {
	case KWithin:
		return t.offerWithin(in, occ)
	case KDuring:
		return t.offerDuring(in, occ)
	case KSliding:
		return t.offerSliding(in, occ)
	case KTumbling:
		return t.offerTumbling(in, occ)
	case KAggregate:
		return t.offerAggregate(in, occ)
	}
	return nil
}

func (t *Template) offerWithin(in *instance, occ Occurrence) []Firing {
	// Opportunistic expiry keeps touched instances bounded between GC
	// sweeps.
	t.expireWithin(in, occ.Time)
	var firs []Firing
	if occ.Part == 0 {
		if len(in.partials) >= t.cfg.MaxPartials {
			in.partials = in.partials[1:]
			t.partials.Add(-1)
			t.expired.Add(1)
		}
		in.partials = append(in.partials, partial{
			next: 1, start: occ.Time, bind: datum.CloneMap(occ.Bindings),
		})
		t.partials.Add(1)
		// A single-role check: with Parts == 1 the sequence completes
		// immediately (the parser forbids this, but stay safe).
	}
	keep := in.partials[:0]
	for _, pm := range in.partials {
		if occ.Part != 0 && pm.next == occ.Part {
			pm.bind = mergeBindings(pm.bind, occ.Bindings)
			pm.next++
		}
		if pm.next == t.cfg.Parts {
			b := t.finish(in, pm.bind)
			b["cep_window_start"] = datum.Time(pm.start)
			firs = append(firs, Firing{Time: occ.Time, Txn: occ.Txn, Bindings: b})
			t.partials.Add(-1)
			continue
		}
		keep = append(keep, pm)
	}
	// Zero the tail so dropped partials' binding maps are collectable.
	for i := len(keep); i < len(in.partials); i++ {
		in.partials[i] = partial{}
	}
	in.partials = keep
	return firs
}

// expireWithin drops partials whose window has passed. Caller holds
// the shard lock.
func (t *Template) expireWithin(in *instance, now time.Time) {
	keep := in.partials[:0]
	for _, pm := range in.partials {
		if now.Sub(pm.start) > t.cfg.Window {
			t.partials.Add(-1)
			t.expired.Add(1)
			continue
		}
		keep = append(keep, pm)
	}
	for i := len(keep); i < len(in.partials); i++ {
		in.partials[i] = partial{}
	}
	in.partials = keep
}

func (t *Template) offerDuring(in *instance, occ Occurrence) []Firing {
	switch occ.Part {
	case 1: // start: open (or restart) the interval
		if in.open {
			t.partials.Add(-1)
			t.expired.Add(1)
		}
		in.open = true
		in.count = 0
		in.bind = datum.CloneMap(occ.Bindings)
		t.partials.Add(1)
	case 0: // the contained event
		if in.open {
			in.count++
			in.bind = mergeBindings(in.bind, occ.Bindings)
		}
	case 2: // end: fire if the interval contained an event
		if !in.open {
			return nil
		}
		t.partials.Add(-1)
		count := in.count
		b := t.finish(in, mergeBindings(in.bind, occ.Bindings))
		in.open = false
		in.count = 0
		in.bind = nil
		if count == 0 {
			return nil
		}
		b["cep_count"] = datum.Int(int64(count))
		return []Firing{{Time: occ.Time, Txn: occ.Txn, Bindings: b}}
	}
	return nil
}

func (t *Template) offerSliding(in *instance, occ Occurrence) []Firing {
	in.times = append(in.times, occ.Time)
	if len(in.times) > t.cfg.Count {
		copy(in.times, in.times[1:])
		in.times = in.times[:t.cfg.Count]
	} else {
		t.partials.Add(1)
	}
	if len(in.times) < t.cfg.Count {
		return nil
	}
	b := t.finish(in, datum.CloneMap(occ.Bindings))
	b["cep_count"] = datum.Int(int64(t.cfg.Count))
	b["cep_window_start"] = datum.Time(in.times[0])
	return []Firing{{Time: occ.Time, Txn: occ.Txn, Bindings: b}}
}

func (t *Template) offerTumbling(in *instance, occ Occurrence) []Firing {
	if in.count == 0 {
		in.first = occ.Time
		t.partials.Add(1)
	}
	in.count++
	in.bind = mergeBindings(in.bind, occ.Bindings)
	if in.count < t.cfg.Count {
		return nil
	}
	t.partials.Add(-1)
	b := t.finish(in, in.bind)
	b["cep_count"] = datum.Int(int64(t.cfg.Count))
	b["cep_window_start"] = datum.Time(in.first)
	in.count = 0
	in.bind = nil
	return []Firing{{Time: occ.Time, Txn: occ.Txn, Bindings: b}}
}

func (t *Template) offerAggregate(in *instance, occ Occurrence) []Firing {
	t.expireAggregate(in, occ.Time)
	in.times = append(in.times, occ.Time)
	t.partials.Add(1)
	if len(in.times) < t.cfg.Count {
		return nil
	}
	// Consume the qualifying set: one burst fires exactly once.
	b := t.finish(in, datum.CloneMap(occ.Bindings))
	b["cep_count"] = datum.Int(int64(len(in.times)))
	b["cep_window_start"] = datum.Time(in.times[0])
	t.partials.Add(-int64(len(in.times)))
	in.times = in.times[:0]
	return []Firing{{Time: occ.Time, Txn: occ.Txn, Bindings: b}}
}

// expireAggregate slides occurrences older than the trailing window
// out of the deque. Caller holds the shard lock.
func (t *Template) expireAggregate(in *instance, now time.Time) {
	drop := 0
	for drop < len(in.times) && now.Sub(in.times[drop]) > t.cfg.Window {
		drop++
	}
	if drop > 0 {
		in.times = in.times[:copy(in.times, in.times[drop:])]
		t.partials.Add(-int64(drop))
		t.expired.Add(uint64(drop))
	}
}

// finish decorates a firing's bindings with the correlation variable.
func (t *Template) finish(in *instance, b map[string]datum.Value) map[string]datum.Value {
	if b == nil {
		b = map[string]datum.Value{}
	}
	if t.cfg.CorrelVar != "" {
		b[t.cfg.CorrelVar] = in.keyVal
	}
	return b
}

// emptyInstance reports whether an instance holds no state worth
// keeping. Caller holds the shard lock.
func (t *Template) emptyInstance(in *instance) bool {
	switch t.cfg.Kind {
	case KWithin:
		return len(in.partials) == 0
	case KDuring:
		return !in.open
	case KSliding:
		// A full sliding window is live state: the next occurrence
		// still fires. Only an empty ring (never happens after an
		// offer) is dead.
		return len(in.times) == 0
	case KTumbling:
		return in.count == 0
	case KAggregate:
		return len(in.times) == 0
	}
	return false
}

// GC reclaims expired partial matches and now-empty instances as of
// the given logical time. It returns the number of partials and
// instances reclaimed. Kinds without a time window (during, count
// windows) have nothing to expire; their instances die inline when
// their state empties.
func (t *Template) GC(now time.Time) (partialsReclaimed, instancesReclaimed int) {
	if t.cfg.Window <= 0 {
		return 0, 0
	}
	for i := range t.shards {
		sh := &t.shards[i]
		sh.mu.Lock()
		for key, in := range sh.inst {
			before := t.livePartials(in)
			switch t.cfg.Kind {
			case KWithin:
				t.expireWithin(in, now)
			case KAggregate:
				t.expireAggregate(in, now)
			}
			partialsReclaimed += before - t.livePartials(in)
			if t.emptyInstance(in) {
				delete(sh.inst, key)
				t.instances.Add(-1)
				instancesReclaimed++
			}
		}
		sh.mu.Unlock()
	}
	return partialsReclaimed, instancesReclaimed
}

// livePartials counts one instance's open partials. Caller holds the
// shard lock.
func (t *Template) livePartials(in *instance) int {
	switch t.cfg.Kind {
	case KWithin:
		return len(in.partials)
	case KAggregate, KSliding:
		return len(in.times)
	case KDuring:
		if in.open {
			return 1
		}
		return 0
	case KTumbling:
		if in.count > 0 {
			return 1
		}
		return 0
	}
	return 0
}

// Stats snapshots the template's counters.
func (t *Template) Stats() Stats {
	return Stats{
		Instances: int(t.instances.Load()),
		Partials:  int(t.partials.Load()),
		Fired:     t.fired.Load(),
		Expired:   t.expired.Load(),
	}
}

// ShardInstances reports the live instance count per shard — the
// distribution evidence for the per-shard parallel-detection claim.
func (t *Template) ShardInstances() []int {
	out := make([]int, len(t.shards))
	for i := range t.shards {
		sh := &t.shards[i]
		sh.mu.Lock()
		out[i] = len(sh.inst)
		sh.mu.Unlock()
	}
	return out
}

func (t *Template) shardOf(key string) int {
	var h maphash.Hash
	h.SetSeed(t.seed)
	h.WriteString(key)
	return int(h.Sum64() & uint64(len(t.shards)-1))
}

func mergeBindings(first, second map[string]datum.Value) map[string]datum.Value {
	out := make(map[string]datum.Value, len(first)+len(second))
	for k, v := range first {
		out[k] = v
	}
	for k, v := range second {
		out[k] = v
	}
	return out
}
