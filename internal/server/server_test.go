package server

// End-to-end tests of the Figure 4.1 interface over real TCP
// connections (experiment F4.1): all four interface modules, the
// role-reversed application operations, and multi-client interaction
// through rules only.

import (
	"fmt"
	"net"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/client"
	"repro/internal/clock"
	"repro/internal/core"
	"repro/internal/datum"
	"repro/internal/object"
	"repro/internal/rule"
)

var epoch = time.Date(2026, 7, 6, 9, 0, 0, 0, time.UTC)

func startServer(t *testing.T) (*Server, string) {
	t.Helper()
	eng, err := core.Open(core.Options{Clock: clock.NewVirtual(epoch)})
	if err != nil {
		t.Fatal(err)
	}
	srv := New(eng)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go srv.Serve(ln)
	t.Cleanup(func() {
		srv.Close()
		eng.Close()
	})
	return srv, ln.Addr().String()
}

func dial(t *testing.T, addr string) *client.Client {
	t.Helper()
	c, err := client.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { c.Close() })
	return c
}

var stockClass = object.Class{
	Name: "Stock",
	Attrs: []object.AttrDef{
		{Name: "symbol", Kind: datum.KindString, Required: true},
		{Name: "price", Kind: datum.KindFloat, Indexed: true},
	},
}

func TestDataAndTransactionOperations(t *testing.T) {
	_, addr := startServer(t)
	c := dial(t, addr)

	tx, err := c.Begin()
	if err != nil {
		t.Fatal(err)
	}
	if err := c.DefineClass(tx, stockClass); err != nil {
		t.Fatal(err)
	}
	oid, err := c.Create(tx, "Stock", map[string]datum.Value{
		"symbol": datum.Str("XRX"), "price": datum.Float(48),
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Modify(tx, oid, map[string]datum.Value{"price": datum.Float(50)}); err != nil {
		t.Fatal(err)
	}
	obj, err := c.Get(tx, oid)
	if err != nil {
		t.Fatal(err)
	}
	if obj.Class != "Stock" || obj.Attrs["price"].AsFloat() != 50 {
		t.Fatalf("obj = %+v", obj)
	}
	res, err := c.Query(tx, "select s.symbol from Stock s where s.price >= 50", nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 1 || res.Rows[0][0].AsString() != "XRX" {
		t.Fatalf("rows = %v", res.Rows)
	}
	classes, err := c.Classes(tx)
	if err != nil {
		t.Fatal(err)
	}
	if len(classes) != 1 || classes[0].Name != "Stock" {
		t.Fatalf("classes = %v (system classes must be hidden)", classes)
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	// Abort works too.
	tx2, _ := c.Begin()
	c.Modify(tx2, oid, map[string]datum.Value{"price": datum.Float(99)})
	if err := tx2.Abort(); err != nil {
		t.Fatal(err)
	}
	tx3, _ := c.Begin()
	obj, _ = c.Get(tx3, oid)
	if obj.Attrs["price"].AsFloat() != 50 {
		t.Fatal("abort did not roll back")
	}
	tx3.Commit()
}

func TestNestedTransactionsOverIPC(t *testing.T) {
	_, addr := startServer(t)
	c := dial(t, addr)
	tx, _ := c.Begin()
	if err := c.DefineClass(tx, stockClass); err != nil {
		t.Fatal(err)
	}
	child, err := tx.Child()
	if err != nil {
		t.Fatal(err)
	}
	oid, err := c.Create(child, "Stock", map[string]datum.Value{"symbol": datum.Str("IBM")})
	if err != nil {
		t.Fatal(err)
	}
	// Parent is suspended while the child is active.
	if _, err := c.Create(tx, "Stock", map[string]datum.Value{"symbol": datum.Str("NO")}); err == nil {
		t.Fatal("suspended parent accepted an operation")
	}
	if err := child.Commit(); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Get(tx, oid); err != nil {
		t.Fatalf("parent cannot see child's committed effect: %v", err)
	}
	tx.Commit()
}

func TestRuleOperationsOverIPC(t *testing.T) {
	_, addr := startServer(t)
	c := dial(t, addr)
	tx, _ := c.Begin()
	c.DefineClass(tx, stockClass)
	c.DefineClass(tx, object.Class{Name: "Audit", Attrs: []object.AttrDef{
		{Name: "price", Kind: datum.KindFloat}}})
	tx.Commit()

	if err := c.CreateRule(rule.Def{
		Name:  "audit",
		Event: "modify(Stock)",
		Action: []rule.Step{{Kind: rule.StepCreate, Class: "Audit",
			Attrs: map[string]string{"price": "event.new_price"}}},
		EC: "immediate", CA: "immediate",
	}); err != nil {
		t.Fatal(err)
	}
	rules, err := c.Rules()
	if err != nil || len(rules) != 1 {
		t.Fatalf("rules = %v (%v)", rules, err)
	}
	if rules[0].Name != "audit" || rules[0].Event != "modify(Stock)" || !rules[0].Enabled {
		t.Fatalf("rule info = %+v", rules[0])
	}

	tx2, _ := c.Begin()
	oid, _ := c.Create(tx2, "Stock", map[string]datum.Value{"symbol": datum.Str("XRX")})
	c.Modify(tx2, oid, map[string]datum.Value{"price": datum.Float(50)})
	res, _ := c.Query(tx2, "select count(*) as n from Audit a", nil)
	if res.Rows[0][0].AsInt() != 1 {
		t.Fatal("rule did not fire over IPC")
	}
	tx2.Commit()

	if err := c.DisableRule("audit"); err != nil {
		t.Fatal(err)
	}
	rules, _ = c.Rules()
	if rules[0].Enabled {
		t.Fatal("disable not reflected")
	}
	if err := c.EnableRule("audit"); err != nil {
		t.Fatal(err)
	}
	if err := c.DeleteRule("audit"); err != nil {
		t.Fatal(err)
	}
	if rules, _ := c.Rules(); len(rules) != 0 {
		t.Fatal("rule not deleted")
	}
}

func TestFigure41ApplicationOperations(t *testing.T) {
	// The full role reversal: a rule action requests an operation
	// served by a connected application program.
	_, addr := startServer(t)
	producer := dial(t, addr)
	display := dial(t, addr)

	var mu sync.Mutex
	var quotes []float64
	if err := display.Serve(map[string]client.Handler{
		"display_quote": func(args map[string]datum.Value) (map[string]datum.Value, error) {
			mu.Lock()
			quotes = append(quotes, args["price"].AsFloat())
			mu.Unlock()
			return map[string]datum.Value{"ack": datum.Bool(true)}, nil
		},
	}); err != nil {
		t.Fatal(err)
	}

	tx, _ := producer.Begin()
	producer.DefineClass(tx, stockClass)
	tx.Commit()
	if err := producer.CreateRule(rule.Def{
		Name:  "ticker-window",
		Event: "modify(Stock)",
		Action: []rule.Step{{Kind: rule.StepRequest, Op: "display_quote",
			Args: map[string]string{"price": "event.new_price"}}},
		EC: "immediate", CA: "immediate",
	}); err != nil {
		t.Fatal(err)
	}

	tx2, _ := producer.Begin()
	oid, _ := producer.Create(tx2, "Stock", map[string]datum.Value{"symbol": datum.Str("XRX")})
	if err := producer.Modify(tx2, oid, map[string]datum.Value{"price": datum.Float(50)}); err != nil {
		t.Fatal(err)
	}
	tx2.Commit()

	mu.Lock()
	defer mu.Unlock()
	if len(quotes) != 1 || quotes[0] != 50 {
		t.Fatalf("display received %v", quotes)
	}
}

func TestExternalEventsOverIPC(t *testing.T) {
	_, addr := startServer(t)
	a := dial(t, addr)
	b := dial(t, addr)

	if err := a.DefineEvent("Ping", "n"); err != nil {
		t.Fatal(err)
	}
	var mu sync.Mutex
	var got []int64
	if err := b.Serve(map[string]client.Handler{
		"pong": func(args map[string]datum.Value) (map[string]datum.Value, error) {
			mu.Lock()
			got = append(got, args["n"].AsInt())
			mu.Unlock()
			return nil, nil
		},
	}); err != nil {
		t.Fatal(err)
	}
	if err := a.CreateRule(rule.Def{
		Name:  "ping-pong",
		Event: "external(Ping)",
		Action: []rule.Step{{Kind: rule.StepRequest, Op: "pong",
			Args: map[string]string{"n": "event.n"}}},
		EC: "immediate", CA: "immediate",
	}); err != nil {
		t.Fatal(err)
	}
	// Signal outside any transaction.
	if err := a.SignalEvent(nil, "Ping", map[string]datum.Value{"n": datum.Int(7)}); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(2 * time.Second)
	for {
		mu.Lock()
		n := len(got)
		mu.Unlock()
		if n == 1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("pong never arrived")
		}
		time.Sleep(5 * time.Millisecond)
	}
	mu.Lock()
	if got[0] != 7 {
		t.Fatalf("got %v", got)
	}
	mu.Unlock()
	// Undefined events are rejected remotely too.
	if err := a.SignalEvent(nil, "Undefined", nil); err == nil {
		t.Fatal("undefined event accepted")
	}
}

func TestServerErrorsPropagate(t *testing.T) {
	_, addr := startServer(t)
	c := dial(t, addr)
	tx, _ := c.Begin()
	if _, err := c.Create(tx, "NoSuchClass", nil); err == nil ||
		!strings.Contains(err.Error(), "no such class") {
		t.Fatalf("err = %v", err)
	}
	if _, err := c.Query(tx, "syntactically wrong", nil); err == nil {
		t.Fatal("bad query accepted")
	}
	tx.Commit()
	if err := tx.Commit(); err == nil {
		t.Fatal("double commit accepted")
	}
}

func TestClientDisconnectAbortsItsTransactions(t *testing.T) {
	_, addr := startServer(t)
	setup := dial(t, addr)
	tx, _ := setup.Begin()
	setup.DefineClass(tx, stockClass)
	tx.Commit()

	dying, err := client.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	dtx, _ := dying.Begin()
	oid, err := dying.Create(dtx, "Stock", map[string]datum.Value{"symbol": datum.Str("GONE")})
	if err != nil {
		t.Fatal(err)
	}
	dying.Close() // abrupt disconnect; dtx never committed

	// The object must not survive, and its locks must be freed so
	// others can proceed.
	deadline := time.Now().Add(2 * time.Second)
	for {
		check, _ := setup.Begin()
		_, err := setup.Get(check, oid)
		check.Commit()
		if err != nil && strings.Contains(err.Error(), "no such object") {
			return // aborted as expected
		}
		if time.Now().After(deadline) {
			t.Fatalf("disconnected client's transaction not aborted (err=%v)", err)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

func TestAppCallWithNoServerFails(t *testing.T) {
	_, addr := startServer(t)
	c := dial(t, addr)
	tx, _ := c.Begin()
	c.DefineClass(tx, stockClass)
	tx.Commit()
	c.CreateRule(rule.Def{
		Name:  "needs-app",
		Event: "modify(Stock)",
		Action: []rule.Step{{Kind: rule.StepRequest, Op: "nobody_serves_this",
			Args: map[string]string{}}},
		EC: "immediate", CA: "immediate",
	})
	tx2, _ := c.Begin()
	oid, _ := c.Create(tx2, "Stock", map[string]datum.Value{"symbol": datum.Str("XRX")})
	err := c.Modify(tx2, oid, map[string]datum.Value{"price": datum.Float(1)})
	if err == nil || !strings.Contains(err.Error(), "nobody_serves_this") {
		t.Fatalf("err = %v", err)
	}
	tx2.Abort()
}

func TestRoundRobinAcrossServers(t *testing.T) {
	_, addr := startServer(t)
	ctl := dial(t, addr)
	tx, _ := ctl.Begin()
	ctl.DefineClass(tx, stockClass)
	tx.Commit()

	counts := make([]int, 2)
	var mu sync.Mutex
	for i := 0; i < 2; i++ {
		i := i
		worker := dial(t, addr)
		if err := worker.Serve(map[string]client.Handler{
			"work": func(map[string]datum.Value) (map[string]datum.Value, error) {
				mu.Lock()
				counts[i]++
				mu.Unlock()
				return nil, nil
			},
		}); err != nil {
			t.Fatal(err)
		}
	}
	ctl.CreateRule(rule.Def{
		Name:   "distribute",
		Event:  "modify(Stock)",
		Action: []rule.Step{{Kind: rule.StepRequest, Op: "work", Args: map[string]string{}}},
		EC:     "immediate", CA: "immediate",
	})
	tx2, _ := ctl.Begin()
	oid, _ := ctl.Create(tx2, "Stock", map[string]datum.Value{"symbol": datum.Str("XRX")})
	for i := 0; i < 6; i++ {
		if err := ctl.Modify(tx2, oid, map[string]datum.Value{"price": datum.Float(float64(i))}); err != nil {
			t.Fatal(err)
		}
	}
	tx2.Commit()
	mu.Lock()
	defer mu.Unlock()
	if counts[0] != 3 || counts[1] != 3 {
		t.Fatalf("round robin counts = %v", counts)
	}
}

func TestGraphIntrospectionOverIPC(t *testing.T) {
	_, addr := startServer(t)
	c := dial(t, addr)
	tx, _ := c.Begin()
	c.DefineClass(tx, stockClass)
	tx.Commit()
	shared := "select s from Stock s where s.price >= 100"
	for i := 0; i < 3; i++ {
		if err := c.CreateRule(rule.Def{
			Name:      fmt.Sprintf("g%d", i),
			Event:     "modify(Stock)",
			Condition: []string{shared},
			Action: []rule.Step{{Kind: rule.StepCreate, Class: "Stock",
				Attrs: map[string]string{"symbol": "'x'"}}},
			EC: "immediate", CA: "immediate", Disabled: true,
		}); err != nil {
			t.Fatal(err)
		}
	}
	nodes, err := c.Graph()
	if err != nil {
		t.Fatal(err)
	}
	if len(nodes) != 1 || nodes[0].Refs != 3 {
		t.Fatalf("graph = %+v", nodes)
	}
}

func TestConcurrentClients(t *testing.T) {
	_, addr := startServer(t)
	setup := dial(t, addr)
	tx, _ := setup.Begin()
	setup.DefineClass(tx, stockClass)
	tx.Commit()

	var wg sync.WaitGroup
	errs := make(chan error, 8)
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			c, err := client.Dial(addr)
			if err != nil {
				errs <- err
				return
			}
			defer c.Close()
			for i := 0; i < 20; i++ {
				tx, err := c.Begin()
				if err != nil {
					errs <- err
					return
				}
				if _, err := c.Create(tx, "Stock", map[string]datum.Value{
					"symbol": datum.Str(fmt.Sprintf("W%dI%d", w, i)),
				}); err != nil {
					errs <- err
					return
				}
				if err := tx.Commit(); err != nil {
					errs <- err
					return
				}
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	check, _ := setup.Begin()
	res, err := setup.Query(check, "select count(*) as n from Stock s", nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.Rows[0][0].AsInt() != 160 {
		t.Fatalf("count = %v", res.Rows[0][0])
	}
	check.Commit()
}

func TestDropClassAndUpdateRuleOverIPC(t *testing.T) {
	_, addr := startServer(t)
	c := dial(t, addr)
	tx, _ := c.Begin()
	if err := c.DefineClass(tx, stockClass); err != nil {
		t.Fatal(err)
	}
	if err := c.DefineClass(tx, object.Class{Name: "Temp",
		Attrs: []object.AttrDef{{Name: "x", Kind: datum.KindInt}}}); err != nil {
		t.Fatal(err)
	}
	tx.Commit()

	// DropClass round trip.
	tx2, _ := c.Begin()
	if err := c.DropClass(tx2, "Temp"); err != nil {
		t.Fatal(err)
	}
	tx2.Commit()
	tx3, _ := c.Begin()
	classes, err := c.Classes(tx3)
	if err != nil {
		t.Fatal(err)
	}
	tx3.Commit()
	for _, cls := range classes {
		if cls.Name == "Temp" {
			t.Fatal("dropped class still listed")
		}
	}

	// UpdateRule round trip.
	if err := c.CreateRule(rule.Def{
		Name:  "watch",
		Event: "modify(Stock)",
		Action: []rule.Step{{Kind: rule.StepCreate, Class: "Stock",
			Attrs: map[string]string{"symbol": "'echo'"}}},
		EC: "immediate", CA: "immediate", Disabled: true,
	}); err != nil {
		t.Fatal(err)
	}
	if err := c.UpdateRule(rule.Def{
		Name:  "watch",
		Event: "create(Stock)",
		Action: []rule.Step{{Kind: rule.StepCreate, Class: "Stock",
			Attrs: map[string]string{"symbol": "'echo'"}}},
		EC: "immediate", CA: "immediate", Disabled: true,
	}); err != nil {
		t.Fatal(err)
	}
	rules, err := c.Rules()
	if err != nil || len(rules) != 1 {
		t.Fatalf("rules = %v (%v)", rules, err)
	}
	if rules[0].Event != "create(Stock)" {
		t.Fatalf("updated event = %q", rules[0].Event)
	}
	if err := c.UpdateRule(rule.Def{Name: "missing", Event: "commit()"}); err == nil {
		t.Fatal("update of unknown rule accepted over IPC")
	}
}

func TestCheckpointOverIPC(t *testing.T) {
	dir := t.TempDir()
	eng, err := core.Open(core.Options{Dir: dir, NoSync: true, Clock: clock.NewVirtual(epoch)})
	if err != nil {
		t.Fatal(err)
	}
	srv := New(eng)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go srv.Serve(ln)
	t.Cleanup(func() {
		srv.Close()
		eng.Close()
	})
	c := dial(t, ln.Addr().String())

	tx, err := c.Begin()
	if err != nil {
		t.Fatal(err)
	}
	if err := c.DefineClass(tx, stockClass); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Create(tx, "Stock", map[string]datum.Value{
		"symbol": datum.Str("XRX"), "price": datum.Float(48),
	}); err != nil {
		t.Fatal(err)
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	rep, err := c.Checkpoint()
	if err != nil {
		t.Fatal(err)
	}
	if rep.Reclaimed == 0 {
		t.Fatal("checkpoint over ipc reclaimed no WAL bytes")
	}
	if rep.Kind != "full" {
		t.Fatalf("first checkpoint kind = %q, want full", rep.Kind)
	}
	// A second checkpoint with nothing new to cover reclaims nothing.
	again, err := c.Checkpoint()
	if err != nil {
		t.Fatal(err)
	}
	if again.Reclaimed != 0 {
		t.Fatalf("idle checkpoint reclaimed %d bytes", again.Reclaimed)
	}
	if again.Kind != "delta" || again.Records != 0 {
		t.Fatalf("idle checkpoint = %+v, want empty delta", again)
	}
}
