// Package server exposes a HiPAC engine to application programs over
// the ipc protocol, implementing the application/DBMS interface of
// Figure 4.1 of the paper: operations on data, on transactions, on
// events — and application operations, where the server reverses
// roles and sends requests to connected clients when rule actions
// name operations those clients registered to serve.
package server

import (
	"errors"
	"fmt"
	"net"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/datum"
	"repro/internal/ipc"
	"repro/internal/object"
	"repro/internal/obs"
	"repro/internal/rule"
	"repro/internal/txn"
)

// CallTimeout bounds how long a rule action waits for an application
// program to answer a request.
const CallTimeout = 30 * time.Second

// Server serves a HiPAC engine over stream connections.
type Server struct {
	eng *core.Engine

	mu         sync.Mutex
	ln         net.Listener
	sessions   map[*session]struct{}
	serving    map[string][]*session // app operation -> serving sessions
	rr         map[string]int        // round-robin cursor per operation
	replStatus func() ipc.ReplStatusRep
	closed     bool
}

// New returns a server for the engine and installs itself as the
// engine's fallback application-operation dispatcher.
func New(eng *core.Engine) *Server {
	s := &Server{
		eng:      eng,
		sessions: map[*session]struct{}{},
		serving:  map[string][]*session{},
		rr:       map[string]int{},
	}
	eng.SetFallbackDispatcher(s)
	return s
}

// SetReplStatus installs the hook answering OpReplStatus — a primary
// running a WAL shipping stream reports its follower connections and
// durable frontier through it. Without a hook the server answers with
// a bare primary role.
func (s *Server) SetReplStatus(fn func() ipc.ReplStatusRep) {
	s.mu.Lock()
	s.replStatus = fn
	s.mu.Unlock()
}

// Serve accepts connections on ln until Close. It returns the
// listener's error (nil after Close).
func (s *Server) Serve(ln net.Listener) error {
	s.mu.Lock()
	s.ln = ln
	s.mu.Unlock()
	for {
		conn, err := ln.Accept()
		if err != nil {
			s.mu.Lock()
			closed := s.closed
			s.mu.Unlock()
			if closed {
				return nil
			}
			return err
		}
		sess := newSession(s, conn)
		s.mu.Lock()
		s.sessions[sess] = struct{}{}
		s.mu.Unlock()
		go sess.run()
	}
}

// ListenAndServe listens on a TCP address and serves.
func (s *Server) ListenAndServe(addr string) error {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	return s.Serve(ln)
}

// Addr returns the listener address (once Serve has been called).
func (s *Server) Addr() net.Addr {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.ln == nil {
		return nil
	}
	return s.ln.Addr()
}

// Close stops accepting and closes every session.
func (s *Server) Close() error {
	s.mu.Lock()
	s.closed = true
	ln := s.ln
	var sessions []*session
	for sess := range s.sessions {
		sessions = append(sessions, sess)
	}
	s.mu.Unlock()
	var err error
	if ln != nil {
		err = ln.Close()
	}
	for _, sess := range sessions {
		sess.close()
	}
	return err
}

// Dispatch implements rule.AppDispatcher: route an application
// request from a rule action to a connected client serving the
// operation (round-robin among them).
func (s *Server) Dispatch(op string, args map[string]datum.Value) (map[string]datum.Value, error) {
	s.mu.Lock()
	list := s.serving[op]
	if len(list) == 0 {
		s.mu.Unlock()
		return nil, fmt.Errorf("server: no connected application serves %q", op)
	}
	idx := s.rr[op] % len(list)
	s.rr[op]++
	sess := list[idx]
	s.mu.Unlock()
	return sess.appCall(op, args)
}

func (s *Server) dropSession(sess *session) {
	s.mu.Lock()
	delete(s.sessions, sess)
	for op, list := range s.serving {
		kept := list[:0]
		for _, x := range list {
			if x != sess {
				kept = append(kept, x)
			}
		}
		if len(kept) == 0 {
			delete(s.serving, op)
		} else {
			s.serving[op] = kept
		}
	}
	s.mu.Unlock()
}

func (s *Server) registerServing(sess *session, ops []string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, op := range ops {
		s.serving[op] = append(s.serving[op], sess)
	}
}

// session is one client connection.
type session struct {
	srv  *Server
	conn net.Conn

	writeMu sync.Mutex // serializes frames onto conn

	mu       sync.Mutex
	txns     map[uint64]*txn.Txn
	txnLocks map[uint64]*sync.Mutex // serialize ops on one txn
	pending  map[uint64]chan *ipc.Message
	nextCall uint64
	closed   bool
}

func newSession(srv *Server, conn net.Conn) *session {
	return &session{
		srv:      srv,
		conn:     conn,
		txns:     map[uint64]*txn.Txn{},
		txnLocks: map[uint64]*sync.Mutex{},
		pending:  map[uint64]chan *ipc.Message{},
		nextCall: 1,
	}
}

func (s *session) run() {
	defer s.close()
	for {
		m, err := ipc.Read(s.conn)
		if err != nil {
			return
		}
		switch m.Kind {
		case ipc.KindRequest:
			// Each request gets its own goroutine: a blocked lock
			// acquisition or a rule firing awaiting an application
			// reply must not stall the connection's read loop.
			go s.handle(m)
		case ipc.KindAppReply:
			s.mu.Lock()
			ch := s.pending[m.ID]
			delete(s.pending, m.ID)
			s.mu.Unlock()
			if ch != nil {
				ch <- m
			}
		}
	}
}

func (s *session) close() {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return
	}
	s.closed = true
	var open []*txn.Txn
	for _, t := range s.txns {
		open = append(open, t)
	}
	s.txns = map[uint64]*txn.Txn{}
	pend := s.pending
	s.pending = map[uint64]chan *ipc.Message{}
	s.mu.Unlock()

	s.conn.Close()
	s.srv.dropSession(s)
	for _, ch := range pend {
		close(ch)
	}
	// Abort the disconnected client's transactions (children first:
	// sort by descending id — children always have larger ids).
	for i := 1; i < len(open); i++ {
		for j := i; j > 0 && open[j].ID() > open[j-1].ID(); j-- {
			open[j], open[j-1] = open[j-1], open[j]
		}
	}
	for _, t := range open {
		t.Abort() // best-effort; errors ignored on teardown
	}
}

// appCall sends an application request to this session's client and
// waits for the reply.
func (s *session) appCall(op string, args map[string]datum.Value) (map[string]datum.Value, error) {
	body, err := ipc.EncodeBody(ipc.AppCallBody{Op: op, Args: args})
	if err != nil {
		return nil, err
	}
	ch := make(chan *ipc.Message, 1)
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil, errors.New("server: application disconnected")
	}
	id := s.nextCall
	s.nextCall++
	s.pending[id] = ch
	s.mu.Unlock()

	if err := s.send(&ipc.Message{ID: id, Kind: ipc.KindAppCall, Op: op, Body: body}); err != nil {
		s.mu.Lock()
		delete(s.pending, id)
		s.mu.Unlock()
		return nil, err
	}
	select {
	case m, ok := <-ch:
		if !ok {
			return nil, errors.New("server: application disconnected")
		}
		if m.Err != "" {
			return nil, fmt.Errorf("server: application error: %s", m.Err)
		}
		var rep ipc.AppReplyBody
		if err := ipc.DecodeBody(m, &rep); err != nil {
			return nil, err
		}
		return rep.Reply, nil
	case <-time.After(CallTimeout):
		s.mu.Lock()
		delete(s.pending, id)
		s.mu.Unlock()
		return nil, fmt.Errorf("server: application did not answer %q", op)
	}
}

func (s *session) send(m *ipc.Message) error {
	s.writeMu.Lock()
	defer s.writeMu.Unlock()
	return ipc.Write(s.conn, m)
}

func (s *session) reply(req *ipc.Message, body any, err error) {
	m := &ipc.Message{ID: req.ID, Kind: ipc.KindReply, Op: req.Op}
	if err != nil {
		m.Err = err.Error()
	} else if body != nil {
		raw, encErr := ipc.EncodeBody(body)
		if encErr != nil {
			m.Err = encErr.Error()
		} else {
			m.Body = raw
		}
	}
	s.send(m) // best-effort; a write error tears the session down via run()
}

// lookupTxn resolves a transaction reference and its serialization
// mutex.
func (s *session) lookupTxn(id uint64) (*txn.Txn, *sync.Mutex, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	t := s.txns[id]
	if t == nil {
		return nil, nil, fmt.Errorf("server: unknown transaction %d", id)
	}
	return t, s.txnLocks[id], nil
}

func (s *session) addTxn(t *txn.Txn) {
	s.mu.Lock()
	s.txns[uint64(t.ID())] = t
	s.txnLocks[uint64(t.ID())] = &sync.Mutex{}
	s.mu.Unlock()
}

func (s *session) removeTxn(id uint64) {
	s.mu.Lock()
	delete(s.txns, id)
	delete(s.txnLocks, id)
	s.mu.Unlock()
}

// handle dispatches one request.
func (s *session) handle(req *ipc.Message) {
	eng := s.srv.eng
	tm := eng.Obs.Metrics().Timer(obs.HIPCRequest)
	defer tm.Done()
	switch req.Op {
	case ipc.OpBegin:
		t := eng.Begin()
		s.addTxn(t)
		s.reply(req, ipc.BeginRep{Txn: uint64(t.ID())}, nil)

	case ipc.OpChild:
		var body ipc.TxnRef
		if err := ipc.DecodeBody(req, &body); err != nil {
			s.reply(req, nil, err)
			return
		}
		parent, mu, err := s.lookupTxn(body.Txn)
		if err != nil {
			s.reply(req, nil, err)
			return
		}
		mu.Lock()
		child, err := parent.Child()
		mu.Unlock()
		if err != nil {
			s.reply(req, nil, err)
			return
		}
		s.addTxn(child)
		s.reply(req, ipc.BeginRep{Txn: uint64(child.ID())}, nil)

	case ipc.OpCommit, ipc.OpAbort:
		var body ipc.TxnRef
		if err := ipc.DecodeBody(req, &body); err != nil {
			s.reply(req, nil, err)
			return
		}
		t, mu, err := s.lookupTxn(body.Txn)
		if err != nil {
			s.reply(req, nil, err)
			return
		}
		mu.Lock()
		if req.Op == ipc.OpCommit {
			err = t.Commit()
		} else {
			err = t.Abort()
		}
		mu.Unlock()
		s.removeTxn(body.Txn)
		s.reply(req, nil, err)

	case ipc.OpDefineClass:
		var body ipc.DefineClassReq
		if err := ipc.DecodeBody(req, &body); err != nil {
			s.reply(req, nil, err)
			return
		}
		s.withTxn(req, body.Txn, func(t *txn.Txn) (any, error) {
			return nil, eng.DefineClass(t, body.Class)
		})

	case ipc.OpDropClass:
		var body ipc.DropClassReq
		if err := ipc.DecodeBody(req, &body); err != nil {
			s.reply(req, nil, err)
			return
		}
		s.withTxn(req, body.Txn, func(t *txn.Txn) (any, error) {
			return nil, eng.DropClass(t, body.Name)
		})

	case ipc.OpClasses:
		var body ipc.TxnRef
		if err := ipc.DecodeBody(req, &body); err != nil {
			s.reply(req, nil, err)
			return
		}
		s.withTxn(req, body.Txn, func(t *txn.Txn) (any, error) {
			classes, err := eng.Classes(t)
			if err != nil {
				return nil, err
			}
			// Hide system classes from the listing.
			var out []object.Class
			for _, c := range classes {
				if len(c.Name) < 2 || c.Name[:2] != "__" {
					out = append(out, c)
				}
			}
			return ipc.ClassesRep{Classes: out}, nil
		})

	case ipc.OpCreate:
		var body ipc.CreateReq
		if err := ipc.DecodeBody(req, &body); err != nil {
			s.reply(req, nil, err)
			return
		}
		s.withTxn(req, body.Txn, func(t *txn.Txn) (any, error) {
			oid, err := eng.Create(t, body.Class, body.Attrs)
			if err != nil {
				return nil, err
			}
			return ipc.CreateRep{OID: uint64(oid)}, nil
		})

	case ipc.OpModify:
		var body ipc.ModifyReq
		if err := ipc.DecodeBody(req, &body); err != nil {
			s.reply(req, nil, err)
			return
		}
		s.withTxn(req, body.Txn, func(t *txn.Txn) (any, error) {
			return nil, eng.Modify(t, datum.OID(body.OID), body.Attrs)
		})

	case ipc.OpDelete:
		var body ipc.DeleteReq
		if err := ipc.DecodeBody(req, &body); err != nil {
			s.reply(req, nil, err)
			return
		}
		s.withTxn(req, body.Txn, func(t *txn.Txn) (any, error) {
			return nil, eng.Delete(t, datum.OID(body.OID))
		})

	case ipc.OpGet:
		var body ipc.GetReq
		if err := ipc.DecodeBody(req, &body); err != nil {
			s.reply(req, nil, err)
			return
		}
		s.withTxn(req, body.Txn, func(t *txn.Txn) (any, error) {
			rec, err := eng.Get(t, datum.OID(body.OID))
			if err != nil {
				return nil, err
			}
			return ipc.GetRep{OID: uint64(rec.OID), Class: rec.Class, Attrs: rec.Attrs}, nil
		})

	case ipc.OpQuery:
		var body ipc.QueryReq
		if err := ipc.DecodeBody(req, &body); err != nil {
			s.reply(req, nil, err)
			return
		}
		s.withTxn(req, body.Txn, func(t *txn.Txn) (any, error) {
			res, err := eng.Query(t, body.Src, body.Args)
			if err != nil {
				return nil, err
			}
			return ipc.QueryRep{Columns: res.Columns, Rows: res.Rows}, nil
		})

	case ipc.OpExplain:
		var body ipc.ExplainReq
		if err := ipc.DecodeBody(req, &body); err != nil {
			s.reply(req, nil, err)
			return
		}
		s.withTxn(req, body.Txn, func(t *txn.Txn) (any, error) {
			text, err := eng.Explain(t, body.Src, body.Args)
			if err != nil {
				return nil, err
			}
			return ipc.ExplainRep{Text: text}, nil
		})

	case ipc.OpDefineEvent:
		var body ipc.DefineEventReq
		if err := ipc.DecodeBody(req, &body); err != nil {
			s.reply(req, nil, err)
			return
		}
		s.reply(req, nil, eng.DefineEvent(body.Name, body.Params...))

	case ipc.OpSignalEvent:
		var body ipc.SignalEventReq
		if err := ipc.DecodeBody(req, &body); err != nil {
			s.reply(req, nil, err)
			return
		}
		if body.Txn == 0 {
			s.reply(req, nil, eng.SignalEvent(nil, body.Name, body.Args))
			return
		}
		s.withTxn(req, body.Txn, func(t *txn.Txn) (any, error) {
			return nil, eng.SignalEvent(t, body.Name, body.Args)
		})

	case ipc.OpCreateRule:
		var body ipc.CreateRuleReq
		if err := ipc.DecodeBody(req, &body); err != nil {
			s.reply(req, nil, err)
			return
		}
		_, err := eng.CreateRule(body.Def)
		s.reply(req, nil, err)

	case ipc.OpUpdateRule:
		var body ipc.CreateRuleReq
		if err := ipc.DecodeBody(req, &body); err != nil {
			s.reply(req, nil, err)
			return
		}
		_, err := eng.UpdateRule(body.Def)
		s.reply(req, nil, err)

	case ipc.OpDeleteRule, ipc.OpEnableRule, ipc.OpDisableRule:
		var body ipc.RuleNameReq
		if err := ipc.DecodeBody(req, &body); err != nil {
			s.reply(req, nil, err)
			return
		}
		var err error
		switch req.Op {
		case ipc.OpDeleteRule:
			err = eng.DeleteRule(body.Name)
		case ipc.OpEnableRule:
			err = eng.EnableRule(body.Name)
		case ipc.OpDisableRule:
			err = eng.DisableRule(body.Name)
		}
		s.reply(req, nil, err)

	case ipc.OpFireRule:
		var body ipc.FireRuleReq
		if err := ipc.DecodeBody(req, &body); err != nil {
			s.reply(req, nil, err)
			return
		}
		if body.Txn == 0 {
			s.reply(req, nil, eng.FireRule(nil, body.Name, body.Args))
			return
		}
		s.withTxn(req, body.Txn, func(t *txn.Txn) (any, error) {
			return nil, eng.FireRule(t, body.Name, body.Args)
		})

	case ipc.OpListRules:
		var infos []ipc.RuleInfo
		for _, r := range eng.Rules.Rules() {
			infos = append(infos, ruleInfo(r))
		}
		s.reply(req, ipc.ListRulesRep{Rules: infos}, nil)

	case ipc.OpServe:
		var body ipc.ServeReq
		if err := ipc.DecodeBody(req, &body); err != nil {
			s.reply(req, nil, err)
			return
		}
		s.srv.registerServing(s, body.Ops)
		s.reply(req, nil, nil)

	case ipc.OpStats:
		engRaw, err := ipc.EncodeBody(eng.Stats())
		if err != nil {
			s.reply(req, nil, err)
			return
		}
		s.reply(req, ipc.StatsRep{Engine: engRaw, Obs: eng.Obs.Snapshot()}, nil)

	case ipc.OpTrace:
		var body ipc.TraceReq
		if err := ipc.DecodeBody(req, &body); err != nil {
			s.reply(req, nil, err)
			return
		}
		s.reply(req, ipc.TraceRep{Traces: eng.Obs.Tracer().Last(body.Last)}, nil)

	case ipc.OpCheckpoint:
		res, err := eng.Checkpoint()
		if err != nil {
			s.reply(req, nil, err)
			return
		}
		s.reply(req, ipc.CheckpointRep{Kind: res.Kind, Records: res.Records,
			Reclaimed: res.Reclaimed}, nil)

	case ipc.OpReplStatus:
		s.srv.mu.Lock()
		fn := s.srv.replStatus
		s.srv.mu.Unlock()
		if fn == nil {
			s.reply(req, ipc.ReplStatusRep{Role: "primary"}, nil)
			return
		}
		s.reply(req, fn(), nil)

	case ipc.OpPromote:
		s.reply(req, nil, errors.New("server: this node is already a writable primary"))

	case ipc.OpGraph:
		var rep ipc.GraphRep
		for _, n := range eng.Conditions.Nodes() {
			rep.Nodes = append(rep.Nodes, ipc.GraphNode{
				Query: n.Query, Refs: n.Refs, EventFree: n.EventFree, Cached: n.Cached,
			})
		}
		s.reply(req, rep, nil)

	default:
		s.reply(req, nil, fmt.Errorf("server: unknown operation %q", req.Op))
	}
}

// withTxn runs fn under the transaction's serialization mutex and
// replies with its result.
func (s *session) withTxn(req *ipc.Message, id uint64, fn func(*txn.Txn) (any, error)) {
	t, mu, err := s.lookupTxn(id)
	if err != nil {
		s.reply(req, nil, err)
		return
	}
	mu.Lock()
	body, err := fn(t)
	mu.Unlock()
	s.reply(req, body, err)
}

func ruleInfo(r *rule.Rule) ipc.RuleInfo {
	return ipc.RuleInfo{
		Name:    r.Name,
		Event:   r.EventString(),
		EC:      r.EC.String(),
		CA:      r.CA.String(),
		Enabled: r.Enabled,
	}
}
