package server

// TestFigure42SAA runs the paper's Securities Analyst's Assistant
// end-to-end (experiment F4.2): three application programs — Ticker,
// Display, Trader — connected to one HiPAC server, interacting ONLY
// through rule firings, exactly as Figure 4.2 prescribes.

import (
	"sync"
	"testing"
	"time"

	"repro/internal/client"
	"repro/internal/datum"
	"repro/internal/saa"
)

func TestFigure42SAA(t *testing.T) {
	_, addr := startServer(t)

	// --- setup program: schema, seed data, event, rules ---
	setup := dial(t, addr)
	tx, err := setup.Begin()
	if err != nil {
		t.Fatal(err)
	}
	for _, cls := range saa.Classes() {
		if err := setup.DefineClass(tx, cls); err != nil {
			t.Fatal(err)
		}
	}
	stockOIDs := map[string]datum.OID{}
	for _, sym := range []string{"XRX", "IBM"} {
		oid, err := setup.Create(tx, saa.ClassStock, map[string]datum.Value{
			"symbol": datum.Str(sym), "price": datum.Float(48),
		})
		if err != nil {
			t.Fatal(err)
		}
		stockOIDs[sym] = oid
	}
	holdingOID, err := setup.Create(tx, saa.ClassHolding, map[string]datum.Value{
		"owner": datum.Str("clientA"), "symbol": datum.Str("XRX"), "qty": datum.Int(0),
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	if err := setup.DefineEvent(saa.EventTradeExecuted, saa.TradeEventParams...); err != nil {
		t.Fatal(err)
	}
	if err := setup.CreateRule(saa.DisplayQuoteRule("display-ticker")); err != nil {
		t.Fatal(err)
	}
	if err := setup.CreateRule(saa.BuyAtRule("buy-xrx-at-50", "clientA", "XRX", 500, 50)); err != nil {
		t.Fatal(err)
	}
	if err := setup.CreateRule(saa.PortfolioUpdateRule("portfolio-update")); err != nil {
		t.Fatal(err)
	}
	if err := setup.CreateRule(saa.DisplayTradeRule("display-trade")); err != nil {
		t.Fatal(err)
	}

	// --- Display program: serves the display operations ---
	display := dial(t, addr)
	var dmu sync.Mutex
	var quotes []string
	var trades []string
	if err := display.Serve(map[string]client.Handler{
		saa.OpDisplayQuote: func(args map[string]datum.Value) (map[string]datum.Value, error) {
			dmu.Lock()
			quotes = append(quotes, args["symbol"].AsString())
			dmu.Unlock()
			return nil, nil
		},
		saa.OpDisplayTrade: func(args map[string]datum.Value) (map[string]datum.Value, error) {
			dmu.Lock()
			trades = append(trades, args["owner"].AsString()+"/"+args["symbol"].AsString())
			dmu.Unlock()
			return nil, nil
		},
	}); err != nil {
		t.Fatal(err)
	}

	// --- Trader program: executes trades, signals TradeExecuted ---
	trader := dial(t, addr)
	var tmu sync.Mutex
	var executed []float64
	if err := trader.Serve(map[string]client.Handler{
		saa.OpExecuteTrade: func(args map[string]datum.Value) (map[string]datum.Value, error) {
			tmu.Lock()
			executed = append(executed, args["price"].AsFloat())
			tmu.Unlock()
			// Transmit to the trading service (simulated), then
			// signal the trade on a separate goroutine: the signal
			// fires rules whose locks may depend on this reply.
			go func() {
				ttx, err := trader.Begin()
				if err != nil {
					return
				}
				if err := trader.SignalEvent(ttx, saa.EventTradeExecuted, map[string]datum.Value{
					"owner":  args["owner"],
					"symbol": args["symbol"],
					"qty":    args["qty"],
					"price":  args["price"],
				}); err != nil {
					ttx.Abort()
					return
				}
				ttx.Commit()
			}()
			return map[string]datum.Value{"status": datum.Str("sent")}, nil
		},
	}); err != nil {
		t.Fatal(err)
	}

	// --- Ticker program: drives prices from the wire ---
	// A deterministic mini-tape with exactly one XRX cross of 50.
	ticker := dial(t, addr)
	tape := []struct {
		sym   string
		price float64
	}{
		{"XRX", 49},
		{"IBM", 120},
		{"XRX", 50.25}, // triggers the trading rule
	}
	for _, q := range tape {
		qt, err := ticker.Begin()
		if err != nil {
			t.Fatal(err)
		}
		if err := ticker.Modify(qt, stockOIDs[q.sym], map[string]datum.Value{
			"price": datum.Float(q.price),
		}); err != nil {
			t.Fatal(err)
		}
		if err := qt.Commit(); err != nil {
			t.Fatal(err)
		}
	}

	// --- assertions: the whole pipeline ran through rules alone ---
	deadline := time.Now().Add(5 * time.Second)
	for {
		check, _ := setup.Begin()
		obj, err := setup.Get(check, holdingOID)
		check.Commit()
		if err == nil && obj.Attrs["qty"].AsInt() == 500 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("portfolio never updated (qty=%v err=%v)", obj.Attrs["qty"], err)
		}
		time.Sleep(10 * time.Millisecond)
	}
	// Display eventually sees all three quotes and the trade.
	deadline = time.Now().Add(5 * time.Second)
	for {
		dmu.Lock()
		nq, nt := len(quotes), len(trades)
		dmu.Unlock()
		if nq >= 3 && nt >= 1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("display incomplete: %d quotes, %d trades", nq, nt)
		}
		time.Sleep(10 * time.Millisecond)
	}
	tmu.Lock()
	if len(executed) != 1 || executed[0] != 50.25 {
		t.Fatalf("trader executions = %v, want exactly one at 50.25", executed)
	}
	tmu.Unlock()
	dmu.Lock()
	if trades[0] != "clientA/XRX" {
		t.Fatalf("trade display = %v", trades)
	}
	dmu.Unlock()
}
