// Package datum defines the value model shared by every layer of the
// database: typed attribute values, object identifiers, comparison,
// and the binary and JSON codecs used by the write-ahead log and the
// IPC protocol respectively.
//
// Values are small immutable variants. The zero Value is the null
// value. Values of different numeric kinds (int, float) compare with
// one another; all other cross-kind comparisons are errors so that
// schema bugs surface instead of silently ordering arbitrarily.
package datum

import (
	"errors"
	"fmt"
	"math"
	"strconv"
	"strings"
	"time"
)

// Kind enumerates the primitive kinds a Value can hold.
type Kind uint8

// The kinds of values supported by the data model.
const (
	KindNull Kind = iota
	KindBool
	KindInt
	KindFloat
	KindString
	KindTime
	KindOID
	KindList
)

// String returns the lower-case name of the kind as used in schema
// definitions and the query language ("int", "float", ...).
func (k Kind) String() string {
	switch k {
	case KindNull:
		return "null"
	case KindBool:
		return "bool"
	case KindInt:
		return "int"
	case KindFloat:
		return "float"
	case KindString:
		return "string"
	case KindTime:
		return "time"
	case KindOID:
		return "oid"
	case KindList:
		return "list"
	default:
		return fmt.Sprintf("kind(%d)", uint8(k))
	}
}

// KindFromString parses a kind name as written in schema definitions.
func KindFromString(s string) (Kind, error) {
	switch s {
	case "null":
		return KindNull, nil
	case "bool":
		return KindBool, nil
	case "int":
		return KindInt, nil
	case "float":
		return KindFloat, nil
	case "string":
		return KindString, nil
	case "time":
		return KindTime, nil
	case "oid":
		return KindOID, nil
	case "list":
		return KindList, nil
	default:
		return KindNull, fmt.Errorf("datum: unknown kind %q", s)
	}
}

// OID is a database-wide object identifier. OIDs are allocated by the
// storage layer and never reused.
type OID uint64

// String formats the OID in the conventional "#<n>" notation.
func (o OID) String() string { return "#" + strconv.FormatUint(uint64(o), 10) }

// Value is a single typed datum. The zero Value is null.
type Value struct {
	kind Kind
	i    int64 // bool (0/1), int, OID, time (UnixNano)
	f    float64
	s    string
	l    []Value
}

// Null returns the null value.
func Null() Value { return Value{} }

// Bool returns a boolean value.
func Bool(b bool) Value {
	var i int64
	if b {
		i = 1
	}
	return Value{kind: KindBool, i: i}
}

// Int returns an integer value.
func Int(i int64) Value { return Value{kind: KindInt, i: i} }

// Float returns a floating-point value.
func Float(f float64) Value { return Value{kind: KindFloat, f: f} }

// Str returns a string value. (Not named String: that is the Stringer
// method on Value.)
func Str(s string) Value { return Value{kind: KindString, s: s} }

// Time returns a time value with nanosecond precision.
func Time(t time.Time) Value { return Value{kind: KindTime, i: t.UnixNano()} }

// ID returns an object-identifier value.
func ID(o OID) Value { return Value{kind: KindOID, i: int64(o)} }

// List returns a list value holding the given elements.
func List(vs ...Value) Value {
	cp := make([]Value, len(vs))
	copy(cp, vs)
	return Value{kind: KindList, l: cp}
}

// Kind reports the kind of the value.
func (v Value) Kind() Kind { return v.kind }

// IsNull reports whether the value is null.
func (v Value) IsNull() bool { return v.kind == KindNull }

// AsBool returns the boolean content; false if the value is not a bool.
func (v Value) AsBool() bool { return v.kind == KindBool && v.i != 0 }

// AsInt returns the integer content. Floats are truncated toward zero.
func (v Value) AsInt() int64 {
	if v.kind == KindFloat {
		return int64(v.f)
	}
	return v.i
}

// AsFloat returns the numeric content as a float64.
func (v Value) AsFloat() float64 {
	if v.kind == KindFloat {
		return v.f
	}
	return float64(v.i)
}

// AsString returns the string content; "" if the value is not a string.
func (v Value) AsString() string {
	if v.kind != KindString {
		return ""
	}
	return v.s
}

// AsTime returns the time content; the zero time if not a time value.
func (v Value) AsTime() time.Time {
	if v.kind != KindTime {
		return time.Time{}
	}
	return time.Unix(0, v.i)
}

// AsOID returns the object-identifier content; 0 if not an OID value.
func (v Value) AsOID() OID {
	if v.kind != KindOID {
		return 0
	}
	return OID(v.i)
}

// AsList returns the list elements; nil if not a list value. The
// returned slice must not be modified.
func (v Value) AsList() []Value {
	if v.kind != KindList {
		return nil
	}
	return v.l
}

// IsNumeric reports whether the value is an int or a float.
func (v Value) IsNumeric() bool { return v.kind == KindInt || v.kind == KindFloat }

// String renders the value for display and tracing.
func (v Value) String() string {
	switch v.kind {
	case KindNull:
		return "null"
	case KindBool:
		if v.i != 0 {
			return "true"
		}
		return "false"
	case KindInt:
		return strconv.FormatInt(v.i, 10)
	case KindFloat:
		return strconv.FormatFloat(v.f, 'g', -1, 64)
	case KindString:
		return strconv.Quote(v.s)
	case KindTime:
		return v.AsTime().UTC().Format(time.RFC3339Nano)
	case KindOID:
		return OID(v.i).String()
	case KindList:
		parts := make([]string, len(v.l))
		for i, e := range v.l {
			parts[i] = e.String()
		}
		return "[" + strings.Join(parts, ", ") + "]"
	default:
		return fmt.Sprintf("value(kind=%d)", v.kind)
	}
}

// ErrIncomparable is returned by Compare for values whose kinds have
// no defined ordering with respect to one another.
var ErrIncomparable = errors.New("datum: incomparable values")

// Compare orders two values: -1, 0, or +1. Int and float compare
// numerically with one another. Null compares equal to null and less
// than everything else (so ordered scans have a defined place for
// missing attributes). Other cross-kind comparisons return
// ErrIncomparable.
func Compare(a, b Value) (int, error) {
	if a.kind == KindNull || b.kind == KindNull {
		switch {
		case a.kind == b.kind:
			return 0, nil
		case a.kind == KindNull:
			return -1, nil
		default:
			return 1, nil
		}
	}
	if a.IsNumeric() && b.IsNumeric() {
		if a.kind == KindInt && b.kind == KindInt {
			return cmpInt(a.i, b.i), nil
		}
		af, bf := a.AsFloat(), b.AsFloat()
		switch {
		case af < bf:
			return -1, nil
		case af > bf:
			return 1, nil
		default:
			return 0, nil
		}
	}
	if a.kind != b.kind {
		return 0, fmt.Errorf("%w: %s vs %s", ErrIncomparable, a.kind, b.kind)
	}
	switch a.kind {
	case KindBool:
		return cmpInt(a.i, b.i), nil
	case KindString:
		return strings.Compare(a.s, b.s), nil
	case KindTime, KindOID:
		return cmpInt(a.i, b.i), nil
	case KindList:
		n := len(a.l)
		if len(b.l) < n {
			n = len(b.l)
		}
		for i := 0; i < n; i++ {
			c, err := Compare(a.l[i], b.l[i])
			if err != nil || c != 0 {
				return c, err
			}
		}
		return cmpInt(int64(len(a.l)), int64(len(b.l))), nil
	default:
		return 0, fmt.Errorf("%w: kind %s", ErrIncomparable, a.kind)
	}
}

func cmpInt(a, b int64) int {
	switch {
	case a < b:
		return -1
	case a > b:
		return 1
	default:
		return 0
	}
}

// Equal reports whether two values are equal under Compare. Values
// with incomparable kinds are unequal.
func Equal(a, b Value) bool {
	c, err := Compare(a, b)
	return err == nil && c == 0
}

// Less reports whether a orders before b, treating incomparable kinds
// as ordered by kind tag. It is a total order suitable for sorting
// heterogeneous slices deterministically.
func Less(a, b Value) bool {
	if a.kind != b.kind && !(a.IsNumeric() && b.IsNumeric()) {
		return a.kind < b.kind
	}
	c, err := Compare(a, b)
	if err != nil {
		return a.kind < b.kind
	}
	return c < 0
}

// Key returns an order-preserving string encoding of the value for use
// as an index key: for values a, b of the same (or both numeric)
// kinds, Compare(a,b) < 0 iff Key(a) < Key(b) bytewise.
func (v Value) Key() string {
	var sb strings.Builder
	v.appendKey(&sb)
	return sb.String()
}

func (v Value) appendKey(sb *strings.Builder) {
	switch v.kind {
	case KindNull:
		sb.WriteByte(0x00)
	case KindBool:
		sb.WriteByte(0x01)
		sb.WriteByte(byte(v.i))
	case KindInt, KindFloat:
		// Encode all numerics through the float64 total order so int
		// and float keys interleave correctly.
		sb.WriteByte(0x02)
		bits := math.Float64bits(v.AsFloat())
		if bits&(1<<63) != 0 {
			bits = ^bits // negative: flip all bits
		} else {
			bits |= 1 << 63 // positive: set sign bit
		}
		var buf [8]byte
		for i := 0; i < 8; i++ {
			buf[i] = byte(bits >> (56 - 8*i))
		}
		sb.Write(buf[:])
	case KindString:
		sb.WriteByte(0x03)
		sb.WriteString(v.s)
		sb.WriteByte(0x00)
	case KindTime:
		sb.WriteByte(0x04)
		appendOrderedInt64(sb, v.i)
	case KindOID:
		sb.WriteByte(0x05)
		appendOrderedInt64(sb, v.i)
	case KindList:
		sb.WriteByte(0x06)
		for _, e := range v.l {
			e.appendKey(sb)
		}
		sb.WriteByte(0x00)
	}
}

func appendOrderedInt64(sb *strings.Builder, i int64) {
	u := uint64(i) ^ (1 << 63)
	var buf [8]byte
	for k := 0; k < 8; k++ {
		buf[k] = byte(u >> (56 - 8*k))
	}
	sb.Write(buf[:])
}
