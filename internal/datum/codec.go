package datum

import (
	"encoding/binary"
	"encoding/json"
	"fmt"
	"math"
	"time"
)

// AppendBinary appends a compact binary encoding of the value to dst
// and returns the extended slice. The encoding is self-delimiting:
// DecodeBinary can recover the value and the number of bytes consumed.
// It is the on-disk format used by the write-ahead log.
func (v Value) AppendBinary(dst []byte) []byte {
	dst = append(dst, byte(v.kind))
	switch v.kind {
	case KindNull:
	case KindBool:
		dst = append(dst, byte(v.i))
	case KindInt, KindTime, KindOID:
		dst = binary.AppendVarint(dst, v.i)
	case KindFloat:
		var buf [8]byte
		binary.BigEndian.PutUint64(buf[:], math.Float64bits(v.f))
		dst = append(dst, buf[:]...)
	case KindString:
		dst = binary.AppendUvarint(dst, uint64(len(v.s)))
		dst = append(dst, v.s...)
	case KindList:
		dst = binary.AppendUvarint(dst, uint64(len(v.l)))
		for _, e := range v.l {
			dst = e.AppendBinary(dst)
		}
	}
	return dst
}

// DecodeBinary decodes a value produced by AppendBinary from the front
// of b, returning the value and the number of bytes consumed.
func DecodeBinary(b []byte) (Value, int, error) {
	if len(b) == 0 {
		return Value{}, 0, fmt.Errorf("datum: empty binary value")
	}
	k := Kind(b[0])
	n := 1
	switch k {
	case KindNull:
		return Value{}, n, nil
	case KindBool:
		if len(b) < 2 {
			return Value{}, 0, fmt.Errorf("datum: truncated bool")
		}
		return Bool(b[1] != 0), 2, nil
	case KindInt, KindTime, KindOID:
		i, m := binary.Varint(b[n:])
		if m <= 0 {
			return Value{}, 0, fmt.Errorf("datum: truncated varint for kind %s", k)
		}
		return Value{kind: k, i: i}, n + m, nil
	case KindFloat:
		if len(b) < n+8 {
			return Value{}, 0, fmt.Errorf("datum: truncated float")
		}
		f := math.Float64frombits(binary.BigEndian.Uint64(b[n : n+8]))
		return Float(f), n + 8, nil
	case KindString:
		l, m := binary.Uvarint(b[n:])
		// Compare in uint64 so a huge length cannot wrap int and slip
		// past the bounds check.
		if m <= 0 || l > uint64(len(b)-n-m) {
			return Value{}, 0, fmt.Errorf("datum: truncated string")
		}
		n += m
		return Str(string(b[n : n+int(l)])), n + int(l), nil
	case KindList:
		l, m := binary.Uvarint(b[n:])
		// Each element takes at least one byte, so a count beyond the
		// remaining input is corrupt — reject before allocating.
		if m <= 0 || l > uint64(len(b)-n-m) {
			return Value{}, 0, fmt.Errorf("datum: truncated list length")
		}
		n += m
		elems := make([]Value, 0, l)
		for i := uint64(0); i < l; i++ {
			e, m, err := DecodeBinary(b[n:])
			if err != nil {
				return Value{}, 0, fmt.Errorf("datum: list element %d: %w", i, err)
			}
			elems = append(elems, e)
			n += m
		}
		return Value{kind: KindList, l: elems}, n, nil
	default:
		return Value{}, 0, fmt.Errorf("datum: unknown binary kind tag %d", b[0])
	}
}

// jsonValue is the wire form of a Value used by the IPC protocol. The
// kind tag keeps ints and floats distinct across the JSON boundary.
type jsonValue struct {
	K string          `json:"k"`
	V json.RawMessage `json:"v,omitempty"`
}

// MarshalJSON encodes the value as {"k": kind, "v": payload}.
func (v Value) MarshalJSON() ([]byte, error) {
	jv := jsonValue{K: v.kind.String()}
	var payload any
	switch v.kind {
	case KindNull:
		return json.Marshal(jv)
	case KindBool:
		payload = v.i != 0
	case KindInt:
		payload = v.i
	case KindFloat:
		payload = v.f
	case KindString:
		payload = v.s
	case KindTime:
		payload = v.i // UnixNano
	case KindOID:
		payload = uint64(v.i)
	case KindList:
		payload = v.l
	}
	raw, err := json.Marshal(payload)
	if err != nil {
		return nil, err
	}
	jv.V = raw
	return json.Marshal(jv)
}

// UnmarshalJSON decodes a value written by MarshalJSON.
func (v *Value) UnmarshalJSON(b []byte) error {
	var jv jsonValue
	if err := json.Unmarshal(b, &jv); err != nil {
		return err
	}
	k, err := KindFromString(jv.K)
	if err != nil {
		return err
	}
	switch k {
	case KindNull:
		*v = Null()
	case KindBool:
		var b bool
		if err := json.Unmarshal(jv.V, &b); err != nil {
			return err
		}
		*v = Bool(b)
	case KindInt:
		var i int64
		if err := json.Unmarshal(jv.V, &i); err != nil {
			return err
		}
		*v = Int(i)
	case KindFloat:
		var f float64
		if err := json.Unmarshal(jv.V, &f); err != nil {
			return err
		}
		*v = Float(f)
	case KindString:
		var s string
		if err := json.Unmarshal(jv.V, &s); err != nil {
			return err
		}
		*v = Str(s)
	case KindTime:
		var i int64
		if err := json.Unmarshal(jv.V, &i); err != nil {
			return err
		}
		*v = Time(time.Unix(0, i))
	case KindOID:
		var o uint64
		if err := json.Unmarshal(jv.V, &o); err != nil {
			return err
		}
		*v = ID(OID(o))
	case KindList:
		var l []Value
		if err := json.Unmarshal(jv.V, &l); err != nil {
			return err
		}
		*v = Value{kind: KindList, l: l}
	default:
		return fmt.Errorf("datum: cannot unmarshal kind %s", k)
	}
	return nil
}

// EncodeMap appends a binary encoding of an attribute map (sorted by
// attribute name for determinism) to dst.
func EncodeMap(dst []byte, m map[string]Value) []byte {
	keys := sortedKeys(m)
	dst = binary.AppendUvarint(dst, uint64(len(keys)))
	for _, k := range keys {
		dst = binary.AppendUvarint(dst, uint64(len(k)))
		dst = append(dst, k...)
		dst = m[k].AppendBinary(dst)
	}
	return dst
}

// DecodeMap decodes an attribute map written by EncodeMap from the
// front of b, returning the map and bytes consumed.
func DecodeMap(b []byte) (map[string]Value, int, error) {
	cnt, n := binary.Uvarint(b)
	// Each entry takes at least two bytes (key length + kind tag), so
	// a count beyond the remaining input is corrupt — reject before
	// allocating the map.
	if n <= 0 || cnt > uint64(len(b)-n) {
		return nil, 0, fmt.Errorf("datum: truncated map header")
	}
	m := make(map[string]Value, cnt)
	for i := uint64(0); i < cnt; i++ {
		l, k := binary.Uvarint(b[n:])
		if k <= 0 || l > uint64(len(b)-n-k) {
			return nil, 0, fmt.Errorf("datum: truncated map key")
		}
		n += k
		key := string(b[n : n+int(l)])
		n += int(l)
		v, m2, err := DecodeBinary(b[n:])
		if err != nil {
			return nil, 0, fmt.Errorf("datum: map value for %q: %w", key, err)
		}
		m[key] = v
		n += m2
	}
	return m, n, nil
}

func sortedKeys(m map[string]Value) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	// insertion sort: maps here are small attribute sets
	for i := 1; i < len(keys); i++ {
		for j := i; j > 0 && keys[j] < keys[j-1]; j-- {
			keys[j], keys[j-1] = keys[j-1], keys[j]
		}
	}
	return keys
}

// CloneMap returns a shallow copy of an attribute map. Values are
// immutable, so a shallow copy is a safe snapshot.
func CloneMap(m map[string]Value) map[string]Value {
	if m == nil {
		return nil
	}
	cp := make(map[string]Value, len(m))
	for k, v := range m {
		cp[k] = v
	}
	return cp
}
