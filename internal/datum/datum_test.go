package datum

import (
	"math"
	"math/rand"
	"reflect"
	"strings"
	"testing"
	"testing/quick"
	"time"
)

func TestKindRoundTrip(t *testing.T) {
	for k := KindNull; k <= KindList; k++ {
		got, err := KindFromString(k.String())
		if err != nil {
			t.Fatalf("KindFromString(%q): %v", k.String(), err)
		}
		if got != k {
			t.Errorf("kind %v round-tripped to %v", k, got)
		}
	}
	if _, err := KindFromString("bogus"); err == nil {
		t.Error("KindFromString(bogus) should fail")
	}
}

func TestConstructorsAndAccessors(t *testing.T) {
	now := time.Unix(12345, 6789)
	cases := []struct {
		v    Value
		kind Kind
	}{
		{Null(), KindNull},
		{Bool(true), KindBool},
		{Int(-42), KindInt},
		{Float(3.5), KindFloat},
		{Str("hi"), KindString},
		{Time(now), KindTime},
		{ID(7), KindOID},
		{List(Int(1), Str("x")), KindList},
	}
	for _, c := range cases {
		if c.v.Kind() != c.kind {
			t.Errorf("%v: kind = %v, want %v", c.v, c.v.Kind(), c.kind)
		}
	}
	if !Bool(true).AsBool() || Bool(false).AsBool() {
		t.Error("AsBool wrong")
	}
	if Int(-42).AsInt() != -42 {
		t.Error("AsInt wrong")
	}
	if Float(3.75).AsInt() != 3 {
		t.Error("AsInt on float should truncate")
	}
	if Int(2).AsFloat() != 2.0 {
		t.Error("AsFloat on int wrong")
	}
	if Str("hi").AsString() != "hi" || Int(1).AsString() != "" {
		t.Error("AsString wrong")
	}
	if !Time(now).AsTime().Equal(now) {
		t.Error("AsTime wrong")
	}
	if ID(7).AsOID() != 7 || Int(7).AsOID() != 0 {
		t.Error("AsOID wrong")
	}
	if got := List(Int(1), Int(2)).AsList(); len(got) != 2 || got[1].AsInt() != 2 {
		t.Error("AsList wrong")
	}
	if !Null().IsNull() || Int(0).IsNull() {
		t.Error("IsNull wrong")
	}
}

func TestListCopiesInput(t *testing.T) {
	src := []Value{Int(1)}
	v := List(src...)
	src[0] = Int(99)
	if v.AsList()[0].AsInt() != 1 {
		t.Error("List must copy its input slice")
	}
}

func TestCompare(t *testing.T) {
	cases := []struct {
		a, b Value
		want int
	}{
		{Int(1), Int(2), -1},
		{Int(2), Int(2), 0},
		{Int(3), Int(2), 1},
		{Int(1), Float(1.5), -1},
		{Float(2.0), Int(2), 0},
		{Float(2.5), Int(2), 1},
		{Str("a"), Str("b"), -1},
		{Bool(false), Bool(true), -1},
		{Null(), Null(), 0},
		{Null(), Int(0), -1},
		{Int(0), Null(), 1},
		{ID(1), ID(2), -1},
		{List(Int(1)), List(Int(1), Int(2)), -1},
		{List(Int(2)), List(Int(1), Int(9)), 1},
		{Time(time.Unix(1, 0)), Time(time.Unix(2, 0)), -1},
	}
	for _, c := range cases {
		got, err := Compare(c.a, c.b)
		if err != nil {
			t.Errorf("Compare(%v, %v): %v", c.a, c.b, err)
			continue
		}
		if got != c.want {
			t.Errorf("Compare(%v, %v) = %d, want %d", c.a, c.b, got, c.want)
		}
	}
	if _, err := Compare(Str("a"), Int(1)); err == nil {
		t.Error("string vs int should be incomparable")
	}
	if Equal(Str("a"), Int(1)) {
		t.Error("incomparable values must not be Equal")
	}
	if !Equal(Int(3), Float(3)) {
		t.Error("int 3 should equal float 3")
	}
}

func TestLessTotalOrder(t *testing.T) {
	vs := []Value{Null(), Bool(true), Int(5), Float(2.5), Str("z"), ID(1)}
	for i, a := range vs {
		for j, b := range vs {
			if i == j {
				if Less(a, b) {
					t.Errorf("Less(%v,%v) should be false for equal values", a, b)
				}
				continue
			}
			if Less(a, b) == Less(b, a) && !Equal(a, b) {
				t.Errorf("Less not antisymmetric for %v, %v", a, b)
			}
		}
	}
}

func TestString(t *testing.T) {
	cases := []struct {
		v    Value
		want string
	}{
		{Null(), "null"},
		{Bool(true), "true"},
		{Bool(false), "false"},
		{Int(-3), "-3"},
		{Float(2.5), "2.5"},
		{Str("hi"), `"hi"`},
		{ID(9), "#9"},
		{List(Int(1), Str("a")), `[1, "a"]`},
	}
	for _, c := range cases {
		if got := c.v.String(); got != c.want {
			t.Errorf("String(%v) = %q, want %q", c.v.Kind(), got, c.want)
		}
	}
	if !strings.Contains(Time(time.Unix(0, 0)).String(), "1970") {
		t.Error("time String should be RFC3339")
	}
}

func TestKeyOrderPreserving(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	gen := func() Value {
		switch rng.Intn(4) {
		case 0:
			return Int(rng.Int63n(2000) - 1000)
		case 1:
			return Float((rng.Float64() - 0.5) * 2000)
		case 2:
			return Str(randString(rng))
		default:
			return Time(time.Unix(0, rng.Int63n(1e12)-5e11))
		}
	}
	for trial := 0; trial < 5000; trial++ {
		a, b := gen(), gen()
		c, err := Compare(a, b)
		if err != nil {
			continue // cross-kind: keys order by kind tag, not asserted
		}
		ka, kb := a.Key(), b.Key()
		switch {
		case c < 0 && !(ka < kb):
			t.Fatalf("Compare(%v,%v)<0 but Key %q >= %q", a, b, ka, kb)
		case c > 0 && !(ka > kb):
			t.Fatalf("Compare(%v,%v)>0 but Key %q <= %q", a, b, ka, kb)
		case c == 0 && ka != kb && a.Kind() == b.Kind():
			t.Fatalf("Compare(%v,%v)=0 but keys differ", a, b)
		}
	}
}

func TestKeyNegativeFloats(t *testing.T) {
	vals := []Value{Float(math.Inf(-1)), Float(-100.5), Float(-0.001), Float(0),
		Float(0.001), Int(7), Float(100.5), Float(math.Inf(1))}
	for i := 1; i < len(vals); i++ {
		if !(vals[i-1].Key() < vals[i].Key()) {
			t.Errorf("Key order broken between %v and %v", vals[i-1], vals[i])
		}
	}
}

func randString(rng *rand.Rand) string {
	n := rng.Intn(8)
	b := make([]byte, n)
	for i := range b {
		b[i] = byte('a' + rng.Intn(26))
	}
	return string(b)
}

func randValue(rng *rand.Rand, depth int) Value {
	n := 7
	if depth <= 0 {
		n = 6
	}
	switch rng.Intn(n) {
	case 0:
		return Null()
	case 1:
		return Bool(rng.Intn(2) == 0)
	case 2:
		return Int(rng.Int63() - rng.Int63())
	case 3:
		return Float(rng.NormFloat64() * 1e6)
	case 4:
		return Str(randString(rng))
	case 5:
		return ID(OID(rng.Uint64() >> 1))
	default:
		k := rng.Intn(3)
		elems := make([]Value, k)
		for i := range elems {
			elems[i] = randValue(rng, depth-1)
		}
		return List(elems...)
	}
}

func TestBinaryRoundTripProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for trial := 0; trial < 5000; trial++ {
		v := randValue(rng, 2)
		enc := v.AppendBinary(nil)
		got, n, err := DecodeBinary(enc)
		if err != nil {
			t.Fatalf("decode %v: %v", v, err)
		}
		if n != len(enc) {
			t.Fatalf("decode %v consumed %d of %d bytes", v, n, len(enc))
		}
		if !reflect.DeepEqual(normalize(v), normalize(got)) {
			t.Fatalf("round trip: %v -> %v", v, got)
		}
	}
}

// normalize maps a Value to a comparable representation (NaN-safe).
func normalize(v Value) any {
	switch v.Kind() {
	case KindFloat:
		f := v.AsFloat()
		if math.IsNaN(f) {
			return "NaN"
		}
		return f
	case KindList:
		l := v.AsList()
		out := make([]any, len(l))
		for i, e := range l {
			out[i] = normalize(e)
		}
		return out
	default:
		return v.String()
	}
}

func TestBinaryTruncation(t *testing.T) {
	v := List(Int(1), Str("hello"), Float(2.5))
	enc := v.AppendBinary(nil)
	for i := 0; i < len(enc); i++ {
		if _, _, err := DecodeBinary(enc[:i]); err == nil {
			t.Errorf("decoding %d-byte prefix should fail", i)
		}
	}
}

func TestBinaryGarbage(t *testing.T) {
	if _, _, err := DecodeBinary([]byte{0xFF, 1, 2}); err == nil {
		t.Error("unknown kind tag should fail")
	}
}

func TestJSONRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 2000; trial++ {
		v := randValue(rng, 2)
		if hasNaN(v) {
			continue // JSON cannot carry NaN
		}
		b, err := v.MarshalJSON()
		if err != nil {
			t.Fatalf("marshal %v: %v", v, err)
		}
		var got Value
		if err := got.UnmarshalJSON(b); err != nil {
			t.Fatalf("unmarshal %s: %v", b, err)
		}
		if !reflect.DeepEqual(normalize(v), normalize(got)) {
			t.Fatalf("json round trip: %v -> %v (wire %s)", v, got, b)
		}
	}
}

func hasNaN(v Value) bool {
	if v.Kind() == KindFloat && math.IsNaN(v.AsFloat()) {
		return true
	}
	for _, e := range v.AsList() {
		if hasNaN(e) {
			return true
		}
	}
	return false
}

func TestJSONErrors(t *testing.T) {
	var v Value
	if err := v.UnmarshalJSON([]byte(`{"k":"bogus"}`)); err == nil {
		t.Error("unknown kind should fail")
	}
	if err := v.UnmarshalJSON([]byte(`{"k":"int","v":"notanint"}`)); err == nil {
		t.Error("mistyped payload should fail")
	}
	if err := v.UnmarshalJSON([]byte(`not json`)); err == nil {
		t.Error("garbage should fail")
	}
}

func TestMapRoundTrip(t *testing.T) {
	m := map[string]Value{
		"price":  Float(50.25),
		"symbol": Str("XRX"),
		"qty":    Int(500),
		"active": Bool(true),
	}
	enc := EncodeMap(nil, m)
	got, n, err := DecodeMap(enc)
	if err != nil {
		t.Fatal(err)
	}
	if n != len(enc) {
		t.Fatalf("consumed %d of %d", n, len(enc))
	}
	if len(got) != len(m) {
		t.Fatalf("got %d entries, want %d", len(got), len(m))
	}
	for k, v := range m {
		if !Equal(got[k], v) {
			t.Errorf("key %q: got %v want %v", k, got[k], v)
		}
	}
}

func TestMapDeterministicEncoding(t *testing.T) {
	m := map[string]Value{"b": Int(2), "a": Int(1), "c": Int(3)}
	e1 := EncodeMap(nil, m)
	for i := 0; i < 20; i++ {
		e2 := EncodeMap(nil, m)
		if string(e1) != string(e2) {
			t.Fatal("EncodeMap must be deterministic")
		}
	}
}

func TestMapTruncation(t *testing.T) {
	enc := EncodeMap(nil, map[string]Value{"k": Int(5)})
	for i := 0; i < len(enc); i++ {
		if _, _, err := DecodeMap(enc[:i]); err == nil && i > 0 {
			t.Errorf("decoding %d-byte prefix should fail", i)
		}
	}
}

func TestCloneMap(t *testing.T) {
	if CloneMap(nil) != nil {
		t.Error("CloneMap(nil) should be nil")
	}
	m := map[string]Value{"a": Int(1)}
	c := CloneMap(m)
	c["a"] = Int(2)
	if m["a"].AsInt() != 1 {
		t.Error("CloneMap must copy")
	}
}

func TestQuickCompareReflexive(t *testing.T) {
	f := func(i int64) bool {
		v := Int(i)
		c, err := Compare(v, v)
		return err == nil && c == 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestQuickCompareAntisymmetric(t *testing.T) {
	f := func(a, b int64) bool {
		ca, _ := Compare(Int(a), Int(b))
		cb, _ := Compare(Int(b), Int(a))
		return ca == -cb
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestQuickStringBinaryRoundTrip(t *testing.T) {
	f := func(s string) bool {
		enc := Str(s).AppendBinary(nil)
		v, n, err := DecodeBinary(enc)
		return err == nil && n == len(enc) && v.AsString() == s
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestQuickFloatKeyOrder(t *testing.T) {
	f := func(a, b float64) bool {
		if math.IsNaN(a) || math.IsNaN(b) {
			return true
		}
		va, vb := Float(a), Float(b)
		c, _ := Compare(va, vb)
		ka, kb := va.Key(), vb.Key()
		switch {
		case c < 0:
			return ka < kb
		case c > 0:
			return ka > kb
		default:
			return ka == kb || a != b // -0 vs +0 may differ in key; both fine
		}
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
