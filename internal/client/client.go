// Package client is the application-program side of the HiPAC IPC
// protocol: the four interface modules of Figure 4.1 as a Go API. An
// application connects, performs data and transaction operations,
// defines and signals events, and may register itself as the server
// of application operations — which the DBMS then invokes when rule
// actions request them.
package client

import (
	"errors"
	"fmt"
	"net"
	"sync"

	"repro/internal/datum"
	"repro/internal/ipc"
	"repro/internal/object"
	"repro/internal/obs"
	"repro/internal/rule"
)

// Handler serves one application operation invoked by the DBMS.
type Handler func(args map[string]datum.Value) (map[string]datum.Value, error)

// ErrClosed is returned for operations on a closed client.
var ErrClosed = errors.New("client: connection closed")

// Client is a connection to a HiPAC server.
type Client struct {
	conn net.Conn

	writeMu sync.Mutex

	mu       sync.Mutex
	nextID   uint64
	pending  map[uint64]chan *ipc.Message
	handlers map[string]Handler
	closed   bool
	readErr  error
}

// Dial connects to a HiPAC server at a TCP address.
func Dial(addr string) (*Client, error) {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, err
	}
	return NewClient(conn), nil
}

// NewClient wraps an established connection.
func NewClient(conn net.Conn) *Client {
	c := &Client{
		conn:     conn,
		nextID:   1,
		pending:  map[uint64]chan *ipc.Message{},
		handlers: map[string]Handler{},
	}
	go c.readLoop()
	return c
}

// Close tears the connection down; in-flight calls fail.
func (c *Client) Close() error {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return nil
	}
	c.closed = true
	pend := c.pending
	c.pending = map[uint64]chan *ipc.Message{}
	c.mu.Unlock()
	err := c.conn.Close()
	for _, ch := range pend {
		close(ch)
	}
	return err
}

func (c *Client) readLoop() {
	for {
		m, err := ipc.Read(c.conn)
		if err != nil {
			c.mu.Lock()
			c.readErr = err
			pend := c.pending
			c.pending = map[uint64]chan *ipc.Message{}
			c.closed = true
			c.mu.Unlock()
			c.conn.Close()
			for _, ch := range pend {
				close(ch)
			}
			return
		}
		switch m.Kind {
		case ipc.KindReply:
			c.mu.Lock()
			ch := c.pending[m.ID]
			delete(c.pending, m.ID)
			c.mu.Unlock()
			if ch != nil {
				ch <- m
			}
		case ipc.KindAppCall:
			// The DBMS is calling us: serve on a fresh goroutine so a
			// slow handler doesn't stall replies to our own requests.
			go c.serveCall(m)
		}
	}
}

func (c *Client) serveCall(m *ipc.Message) {
	var body ipc.AppCallBody
	rep := &ipc.Message{ID: m.ID, Kind: ipc.KindAppReply, Op: m.Op}
	if err := ipc.DecodeBody(m, &body); err != nil {
		rep.Err = err.Error()
		c.send(rep)
		return
	}
	c.mu.Lock()
	h := c.handlers[body.Op]
	c.mu.Unlock()
	if h == nil {
		rep.Err = fmt.Sprintf("client: no handler for %q", body.Op)
		c.send(rep)
		return
	}
	reply, err := h(body.Args)
	if err != nil {
		rep.Err = err.Error()
	} else if raw, encErr := ipc.EncodeBody(ipc.AppReplyBody{Reply: reply}); encErr != nil {
		rep.Err = encErr.Error()
	} else {
		rep.Body = raw
	}
	c.send(rep)
}

func (c *Client) send(m *ipc.Message) error {
	c.writeMu.Lock()
	defer c.writeMu.Unlock()
	return ipc.Write(c.conn, m)
}

// call performs one request/reply round trip.
func (c *Client) call(op string, reqBody, repBody any) error {
	var raw []byte
	if reqBody != nil {
		var err error
		raw, err = ipc.EncodeBody(reqBody)
		if err != nil {
			return err
		}
	}
	ch := make(chan *ipc.Message, 1)
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return ErrClosed
	}
	id := c.nextID
	c.nextID++
	c.pending[id] = ch
	c.mu.Unlock()

	if err := c.send(&ipc.Message{ID: id, Kind: ipc.KindRequest, Op: op, Body: raw}); err != nil {
		c.mu.Lock()
		delete(c.pending, id)
		c.mu.Unlock()
		return err
	}
	m, ok := <-ch
	if !ok {
		return ErrClosed
	}
	if m.Err != "" {
		return errors.New(m.Err)
	}
	if repBody != nil {
		return ipc.DecodeBody(m, repBody)
	}
	return nil
}

// --- operations on transactions ---

// Txn is a remote transaction handle.
type Txn struct {
	c  *Client
	ID uint64
}

// Begin starts a top-level transaction.
func (c *Client) Begin() (*Txn, error) {
	var rep ipc.BeginRep
	if err := c.call(ipc.OpBegin, nil, &rep); err != nil {
		return nil, err
	}
	return &Txn{c: c, ID: rep.Txn}, nil
}

// Child creates a nested transaction; the parent is suspended until
// it terminates.
func (t *Txn) Child() (*Txn, error) {
	var rep ipc.BeginRep
	if err := t.c.call(ipc.OpChild, ipc.TxnRef{Txn: t.ID}, &rep); err != nil {
		return nil, err
	}
	return &Txn{c: t.c, ID: rep.Txn}, nil
}

// Commit commits the transaction (processing deferred rule firings
// first, per the execution model).
func (t *Txn) Commit() error {
	return t.c.call(ipc.OpCommit, ipc.TxnRef{Txn: t.ID}, nil)
}

// Abort aborts the transaction, discarding its effects.
func (t *Txn) Abort() error {
	return t.c.call(ipc.OpAbort, ipc.TxnRef{Txn: t.ID}, nil)
}

// --- operations on data ---

// DefineClass defines a class.
func (c *Client) DefineClass(tx *Txn, cls object.Class) error {
	return c.call(ipc.OpDefineClass, ipc.DefineClassReq{Txn: tx.ID, Class: cls}, nil)
}

// DropClass drops a class.
func (c *Client) DropClass(tx *Txn, name string) error {
	return c.call(ipc.OpDropClass, ipc.DropClassReq{Txn: tx.ID, Name: name}, nil)
}

// Classes lists user-defined classes.
func (c *Client) Classes(tx *Txn) ([]object.Class, error) {
	var rep ipc.ClassesRep
	if err := c.call(ipc.OpClasses, ipc.TxnRef{Txn: tx.ID}, &rep); err != nil {
		return nil, err
	}
	return rep.Classes, nil
}

// Create creates an object, returning its OID.
func (c *Client) Create(tx *Txn, class string, attrs map[string]datum.Value) (datum.OID, error) {
	var rep ipc.CreateRep
	if err := c.call(ipc.OpCreate, ipc.CreateReq{Txn: tx.ID, Class: class, Attrs: attrs}, &rep); err != nil {
		return 0, err
	}
	return datum.OID(rep.OID), nil
}

// Modify updates an object's attributes.
func (c *Client) Modify(tx *Txn, oid datum.OID, attrs map[string]datum.Value) error {
	return c.call(ipc.OpModify, ipc.ModifyReq{Txn: tx.ID, OID: uint64(oid), Attrs: attrs}, nil)
}

// Delete removes an object.
func (c *Client) Delete(tx *Txn, oid datum.OID) error {
	return c.call(ipc.OpDelete, ipc.DeleteReq{Txn: tx.ID, OID: uint64(oid)}, nil)
}

// Object is a fetched object.
type Object struct {
	OID   datum.OID
	Class string
	Attrs map[string]datum.Value
}

// Get fetches an object.
func (c *Client) Get(tx *Txn, oid datum.OID) (Object, error) {
	var rep ipc.GetRep
	if err := c.call(ipc.OpGet, ipc.GetReq{Txn: tx.ID, OID: uint64(oid)}, &rep); err != nil {
		return Object{}, err
	}
	return Object{OID: datum.OID(rep.OID), Class: rep.Class, Attrs: rep.Attrs}, nil
}

// Result is a query result.
type Result struct {
	Columns []string
	Rows    [][]datum.Value
}

// Query evaluates a select statement.
func (c *Client) Query(tx *Txn, src string, args map[string]datum.Value) (*Result, error) {
	var rep ipc.QueryRep
	if err := c.call(ipc.OpQuery, ipc.QueryReq{Txn: tx.ID, Src: src, Args: args}, &rep); err != nil {
		return nil, err
	}
	return &Result{Columns: rep.Columns, Rows: rep.Rows}, nil
}

// Explain returns the physical plan the server's cost-based planner
// chooses for a select statement, as text; nothing is executed.
func (c *Client) Explain(tx *Txn, src string, args map[string]datum.Value) (string, error) {
	var rep ipc.ExplainRep
	if err := c.call(ipc.OpExplain, ipc.ExplainReq{Txn: tx.ID, Src: src, Args: args}, &rep); err != nil {
		return "", err
	}
	return rep.Text, nil
}

// --- operations on events ---

// DefineEvent defines an application-specific event (§4.1).
func (c *Client) DefineEvent(name string, params ...string) error {
	return c.call(ipc.OpDefineEvent, ipc.DefineEventReq{Name: name, Params: params}, nil)
}

// SignalEvent signals an application-specific event. tx may be nil
// for occurrences outside any transaction. The call returns after
// immediate rule processing completes on the server.
func (c *Client) SignalEvent(tx *Txn, name string, args map[string]datum.Value) error {
	req := ipc.SignalEventReq{Name: name, Args: args}
	if tx != nil {
		req.Txn = tx.ID
	}
	return c.call(ipc.OpSignalEvent, req, nil)
}

// --- application operations ---

// Serve registers handlers for application operations; the DBMS
// routes rule-action requests for these operations to this
// connection.
func (c *Client) Serve(handlers map[string]Handler) error {
	ops := make([]string, 0, len(handlers))
	c.mu.Lock()
	for op, h := range handlers {
		c.handlers[op] = h
		ops = append(ops, op)
	}
	c.mu.Unlock()
	return c.call(ipc.OpServe, ipc.ServeReq{Ops: ops}, nil)
}

// --- operations on rules ---

// CreateRule defines, persists, and activates an ECA rule.
func (c *Client) CreateRule(def rule.Def) error {
	return c.call(ipc.OpCreateRule, ipc.CreateRuleReq{Def: def}, nil)
}

// UpdateRule replaces a rule's definition in place (§2.2 "modify").
func (c *Client) UpdateRule(def rule.Def) error {
	return c.call(ipc.OpUpdateRule, ipc.CreateRuleReq{Def: def}, nil)
}

// DeleteRule removes a rule.
func (c *Client) DeleteRule(name string) error {
	return c.call(ipc.OpDeleteRule, ipc.RuleNameReq{Name: name}, nil)
}

// EnableRule re-enables automatic firing.
func (c *Client) EnableRule(name string) error {
	return c.call(ipc.OpEnableRule, ipc.RuleNameReq{Name: name}, nil)
}

// DisableRule suspends automatic firing.
func (c *Client) DisableRule(name string) error {
	return c.call(ipc.OpDisableRule, ipc.RuleNameReq{Name: name}, nil)
}

// FireRule fires a rule manually.
func (c *Client) FireRule(tx *Txn, name string, args map[string]datum.Value) error {
	req := ipc.FireRuleReq{Name: name, Args: args}
	if tx != nil {
		req.Txn = tx.ID
	}
	return c.call(ipc.OpFireRule, req, nil)
}

// Rules lists registered rules.
func (c *Client) Rules() ([]ipc.RuleInfo, error) {
	var rep ipc.ListRulesRep
	if err := c.call(ipc.OpListRules, nil, &rep); err != nil {
		return nil, err
	}
	return rep.Rules, nil
}

// Graph lists the server's condition-graph nodes (rule-base
// tooling: which queries are shared by how many rules).
func (c *Client) Graph() ([]ipc.GraphNode, error) {
	var rep ipc.GraphRep
	if err := c.call(ipc.OpGraph, nil, &rep); err != nil {
		return nil, err
	}
	return rep.Nodes, nil
}

// Stats fetches the server's counters: the engine's Stats struct as
// raw JSON (see internal/core) plus the observability snapshot with
// the latency histograms.
func (c *Client) Stats() (*ipc.StatsRep, error) {
	var rep ipc.StatsRep
	if err := c.call(ipc.OpStats, nil, &rep); err != nil {
		return nil, err
	}
	return &rep, nil
}

// Checkpoint asks the server to run one fuzzy checkpoint now and
// reports what it wrote: the chain-element kind ("full" or "delta"),
// its record count, and the WAL bytes reclaimed. Commits proceed
// concurrently on the server; only the covered log prefix is dropped.
func (c *Client) Checkpoint() (*ipc.CheckpointRep, error) {
	var rep ipc.CheckpointRep
	if err := c.call(ipc.OpCheckpoint, nil, &rep); err != nil {
		return nil, err
	}
	return &rep, nil
}

// ReplStatus reports the node's replication role and state: a
// primary's follower connections and durable frontier, or a replica's
// applied frontier, lag, and catchup counters.
func (c *Client) ReplStatus() (*ipc.ReplStatusRep, error) {
	var rep ipc.ReplStatusRep
	if err := c.call(ipc.OpReplStatus, nil, &rep); err != nil {
		return nil, err
	}
	return &rep, nil
}

// Promote asks a replica to detach from its primary and recover into
// a writable store, reporting the applied LSN it promoted at. A
// primary answers with an error.
func (c *Client) Promote() (*ipc.PromoteRep, error) {
	var rep ipc.PromoteRep
	if err := c.call(ipc.OpPromote, nil, &rep); err != nil {
		return nil, err
	}
	return &rep, nil
}

// Trace fetches the server's newest finished firing trees, newest
// first (n <= 0 means all retained).
func (c *Client) Trace(n int) ([]obs.SpanSnapshot, error) {
	var rep ipc.TraceRep
	if err := c.call(ipc.OpTrace, ipc.TraceReq{Last: n}, &rep); err != nil {
		return nil, err
	}
	return rep.Traces, nil
}
