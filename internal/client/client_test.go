package client

// Direct client tests (the server package holds the end-to-end
// suite): connection lifecycle and error paths.

import (
	"net"
	"strings"
	"testing"
	"time"

	"repro/internal/clock"
	"repro/internal/core"
	"repro/internal/datum"
	"repro/internal/server"
)

func startServer(t *testing.T) string {
	t.Helper()
	eng, err := core.Open(core.Options{Clock: clock.NewVirtual(time.Unix(0, 0))})
	if err != nil {
		t.Fatal(err)
	}
	srv := server.New(eng)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go srv.Serve(ln)
	t.Cleanup(func() {
		srv.Close()
		eng.Close()
	})
	return ln.Addr().String()
}

func TestDialErrors(t *testing.T) {
	if _, err := Dial("127.0.0.1:1"); err == nil {
		t.Fatal("dial to closed port should fail")
	}
}

func TestOperationsAfterClose(t *testing.T) {
	addr := startServer(t)
	c, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}
	if err := c.Close(); err != nil {
		t.Fatal("double close should be a no-op")
	}
	if _, err := c.Begin(); err == nil {
		t.Fatal("Begin after Close should fail")
	}
}

func TestInFlightCallFailsOnServerDrop(t *testing.T) {
	addr := startServer(t)
	c, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	// Open a txn, then kill the connection from our side while a
	// request could be pending; subsequent calls fail cleanly.
	tx, err := c.Begin()
	if err != nil {
		t.Fatal(err)
	}
	c.conn.Close() // simulate network drop
	err = tx.Commit()
	if err == nil {
		t.Fatal("commit over dropped connection should fail")
	}
}

func TestStats(t *testing.T) {
	addr := startServer(t)
	c, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	rep, err := c.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(rep.Engine), "Rules") {
		t.Fatalf("engine stats json = %s", rep.Engine)
	}
	if !rep.Obs.Enabled {
		t.Fatal("observability should be enabled by default")
	}
	if _, ok := rep.Obs.Hist["ipc_request"]; !ok {
		t.Fatalf("missing ipc_request histogram: %v", rep.Obs.Hist)
	}
}

func TestServeUnknownHandlerError(t *testing.T) {
	// A "call" for an operation with no handler yields an app error,
	// not a hang.
	addr := startServer(t)
	c, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	// Register one op; the server won't route others here, so this
	// just checks Serve's happy path and handler map updates.
	if err := c.Serve(map[string]Handler{
		"op1": func(map[string]datum.Value) (map[string]datum.Value, error) { return nil, nil },
	}); err != nil {
		t.Fatal(err)
	}
	if err := c.Serve(map[string]Handler{
		"op2": func(map[string]datum.Value) (map[string]datum.Value, error) { return nil, nil },
	}); err != nil {
		t.Fatal(err)
	}
}
