package query

// Property tests: randomly generated single-class predicates are
// evaluated both by the engine (with and without index assistance)
// and by a brute-force reference; results must agree exactly.

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/datum"
)

// randPredicate builds a random predicate over s.price (float),
// s.volume (int), and s.sector (string), returning its text and a
// reference evaluator.
func randPredicate(rng *rand.Rand, depth int) (string, func(attrs map[string]datum.Value) bool) {
	if depth <= 0 || rng.Intn(3) == 0 {
		// Leaf comparison.
		switch rng.Intn(3) {
		case 0:
			limit := float64(rng.Intn(200))
			ops := []struct {
				text string
				fn   func(a, b float64) bool
			}{
				{"<", func(a, b float64) bool { return a < b }},
				{"<=", func(a, b float64) bool { return a <= b }},
				{">", func(a, b float64) bool { return a > b }},
				{">=", func(a, b float64) bool { return a >= b }},
				{"=", func(a, b float64) bool { return a == b }},
				{"!=", func(a, b float64) bool { return a != b }},
			}
			op := ops[rng.Intn(len(ops))]
			return fmt.Sprintf("s.price %s %g", op.text, limit),
				func(attrs map[string]datum.Value) bool {
					return op.fn(attrs["price"].AsFloat(), limit)
				}
		case 1:
			limit := int64(rng.Intn(100))
			return fmt.Sprintf("s.volume >= %d", limit),
				func(attrs map[string]datum.Value) bool {
					return attrs["volume"].AsInt() >= limit
				}
		default:
			sector := []string{"tech", "auto", "energy"}[rng.Intn(3)]
			return fmt.Sprintf("s.sector = '%s'", sector),
				func(attrs map[string]datum.Value) bool {
					return attrs["sector"].AsString() == sector
				}
		}
	}
	lText, lFn := randPredicate(rng, depth-1)
	rText, rFn := randPredicate(rng, depth-1)
	switch rng.Intn(3) {
	case 0:
		return fmt.Sprintf("(%s and %s)", lText, rText),
			func(a map[string]datum.Value) bool { return lFn(a) && rFn(a) }
	case 1:
		return fmt.Sprintf("(%s or %s)", lText, rText),
			func(a map[string]datum.Value) bool { return lFn(a) || rFn(a) }
	default:
		return fmt.Sprintf("not %s", lText),
			func(a map[string]datum.Value) bool { return !lFn(a) }
	}
}

func randDataset(rng *rand.Rand, n int, indexed bool) *memReader {
	m := newMemReader()
	if indexed {
		m.indexed["Stock.price"] = true
		m.indexed["Stock.volume"] = true
	}
	for i := 0; i < n; i++ {
		m.add("Stock", datum.OID(i+1), map[string]datum.Value{
			"price":  datum.Float(float64(rng.Intn(200))),
			"volume": datum.Int(int64(rng.Intn(100))),
			"sector": datum.Str([]string{"tech", "auto", "energy"}[rng.Intn(3)]),
		})
	}
	return m
}

func TestRandomPredicatesAgainstReference(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	for trial := 0; trial < 400; trial++ {
		data := randDataset(rng, 40, trial%2 == 0)
		predText, ref := randPredicate(rng, 3)
		src := "select s from Stock s where " + predText
		q, err := Parse(src)
		if err != nil {
			t.Fatalf("trial %d: Parse(%q): %v", trial, src, err)
		}
		res, err := Eval(q, data, nil)
		if err != nil {
			t.Fatalf("trial %d: Eval(%q): %v", trial, src, err)
		}
		got := map[datum.OID]bool{}
		for _, r := range res.Rows {
			got[r[0].AsOID()] = true
		}
		for _, o := range data.classes["Stock"] {
			want := ref(o.attrs)
			if got[o.oid] != want {
				t.Fatalf("trial %d: %q oid %v: got %v want %v (attrs %v)",
					trial, src, o.oid, got[o.oid], want, o.attrs)
			}
		}
	}
}

func TestIndexAndScanAgree(t *testing.T) {
	// The same query must return identical rows with and without
	// index assistance (false positives re-filtered, no misses).
	rng := rand.New(rand.NewSource(22))
	for trial := 0; trial < 200; trial++ {
		seed := rng.Int63()
		predText, _ := randPredicate(rand.New(rand.NewSource(seed)), 2)
		src := "select s from Stock s where " + predText
		collect := func(indexed bool) []datum.OID {
			data := randDataset(rand.New(rand.NewSource(seed)), 30, indexed)
			res, err := Eval(MustParse(src), data, nil)
			if err != nil {
				t.Fatalf("trial %d: %v", trial, err)
			}
			var out []datum.OID
			for _, r := range res.Rows {
				out = append(out, r[0].AsOID())
			}
			return out
		}
		a, b := collect(true), collect(false)
		if fmt.Sprint(a) != fmt.Sprint(b) {
			t.Fatalf("trial %d: %q indexed=%v scan=%v", trial, src, a, b)
		}
	}
}

func TestAggregatesAgainstReference(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	for trial := 0; trial < 200; trial++ {
		data := randDataset(rng, 25, false)
		limit := float64(rng.Intn(200))
		src := fmt.Sprintf(
			"select count(*) as n, sum(s.price) as total, min(s.price) as lo, max(s.price) as hi from Stock s where s.price < %g", limit)
		res, err := Eval(MustParse(src), data, nil)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		var n int64
		var total, lo, hi float64
		first := true
		for _, o := range data.classes["Stock"] {
			p := o.attrs["price"].AsFloat()
			if p < limit {
				n++
				total += p
				if first || p < lo {
					lo = p
				}
				if first || p > hi {
					hi = p
				}
				first = false
			}
		}
		b := res.RowBindings(0)
		if b["n"].AsInt() != n {
			t.Fatalf("trial %d: count %d want %d", trial, b["n"].AsInt(), n)
		}
		if n > 0 {
			if b["total"].AsFloat() != total || b["lo"].AsFloat() != lo || b["hi"].AsFloat() != hi {
				t.Fatalf("trial %d: sum/min/max = %v/%v/%v want %v/%v/%v",
					trial, b["total"], b["lo"], b["hi"], total, lo, hi)
			}
		}
	}
}

func TestJoinAgainstReference(t *testing.T) {
	rng := rand.New(rand.NewSource(24))
	for trial := 0; trial < 100; trial++ {
		m := newMemReader()
		nStocks, nHoldings := rng.Intn(10)+1, rng.Intn(15)
		sectors := []string{"a", "b", "c"}
		for i := 0; i < nStocks; i++ {
			m.add("Stock", datum.OID(i+1), map[string]datum.Value{
				"sym": datum.Str(fmt.Sprintf("S%d", i%4)), "sector": datum.Str(sectors[rng.Intn(3)]),
			})
		}
		for i := 0; i < nHoldings; i++ {
			m.add("Holding", datum.OID(100+i), map[string]datum.Value{
				"sym": datum.Str(fmt.Sprintf("S%d", rng.Intn(6))), "qty": datum.Int(int64(rng.Intn(10))),
			})
		}
		res, err := Eval(MustParse(
			"select s, h from Stock s, Holding h where s.sym = h.sym and h.qty > 2"), m, nil)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		want := 0
		for _, s := range m.classes["Stock"] {
			for _, h := range m.classes["Holding"] {
				if s.attrs["sym"].AsString() == h.attrs["sym"].AsString() &&
					h.attrs["qty"].AsInt() > 2 {
					want++
				}
			}
		}
		if len(res.Rows) != want {
			t.Fatalf("trial %d: join rows %d want %d", trial, len(res.Rows), want)
		}
	}
}
