package query

import (
	"fmt"
	"strconv"
	"strings"
	"unicode"

	"repro/internal/datum"
)

// Parse parses a select statement.
func Parse(src string) (*Query, error) {
	p := newParser(src)
	q, err := p.parseQuery()
	if err != nil {
		return nil, err
	}
	if p.peek().kind != tokEOF {
		return nil, p.errf("unexpected %q after end of query", p.peek().text)
	}
	return q, nil
}

// MustParse is Parse that panics on error; for tests and fixtures.
func MustParse(src string) *Query {
	q, err := Parse(src)
	if err != nil {
		panic(err)
	}
	return q
}

// ParseExpr parses a standalone expression (used by rule actions for
// computed attribute values).
func ParseExpr(src string) (Expr, error) {
	p := newParser(src)
	e, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	if p.peek().kind != tokEOF {
		return nil, p.errf("unexpected %q after end of expression", p.peek().text)
	}
	return e, nil
}

// --- lexer ---

type tokenKind int

const (
	tokEOF tokenKind = iota
	tokIdent
	tokNumber
	tokString
	tokOp // punctuation and operators
)

type token struct {
	kind tokenKind
	text string
	pos  int
}

type parser struct {
	src    string
	tokens []token
	idx    int
	err    error
}

func newParser(src string) *parser {
	p := &parser{src: src}
	p.lex()
	return p
}

func (p *parser) lex() {
	i := 0
	for i < len(p.src) {
		c := p.src[i]
		switch {
		case unicode.IsSpace(rune(c)):
			i++
		case c == '\'' || c == '"':
			quote := c
			j := i + 1
			var sb strings.Builder
			for j < len(p.src) && p.src[j] != quote {
				if p.src[j] == '\\' && j+1 < len(p.src) {
					j++
				}
				sb.WriteByte(p.src[j])
				j++
			}
			if j >= len(p.src) {
				p.err = fmt.Errorf("query: unterminated string at %d", i)
				return
			}
			p.tokens = append(p.tokens, token{tokString, sb.String(), i})
			i = j + 1
		case c >= '0' && c <= '9':
			j := i
			for j < len(p.src) && (p.src[j] >= '0' && p.src[j] <= '9' || p.src[j] == '.') {
				j++
			}
			// Optional exponent: 1e9, 2.5E-3.
			if j < len(p.src) && (p.src[j] == 'e' || p.src[j] == 'E') {
				k := j + 1
				if k < len(p.src) && (p.src[k] == '+' || p.src[k] == '-') {
					k++
				}
				if k < len(p.src) && p.src[k] >= '0' && p.src[k] <= '9' {
					for k < len(p.src) && p.src[k] >= '0' && p.src[k] <= '9' {
						k++
					}
					j = k
				}
			}
			p.tokens = append(p.tokens, token{tokNumber, p.src[i:j], i})
			i = j
		case c == '_' || unicode.IsLetter(rune(c)):
			j := i
			for j < len(p.src) {
				cj := p.src[j]
				if cj == '_' || unicode.IsLetter(rune(cj)) || unicode.IsDigit(rune(cj)) {
					j++
					continue
				}
				break
			}
			p.tokens = append(p.tokens, token{tokIdent, p.src[i:j], i})
			i = j
		default:
			// multi-char operators first
			two := ""
			if i+1 < len(p.src) {
				two = p.src[i : i+2]
			}
			switch two {
			case "!=", "<=", ">=", "<>":
				if two == "<>" {
					two = "!="
				}
				p.tokens = append(p.tokens, token{tokOp, two, i})
				i += 2
				continue
			}
			switch c {
			case '+', '-', '*', '/', '%', '=', '<', '>', '(', ')', ',', '.':
				p.tokens = append(p.tokens, token{tokOp, string(c), i})
				i++
			default:
				p.err = fmt.Errorf("query: unexpected character %q at %d", string(c), i)
				return
			}
		}
	}
	p.tokens = append(p.tokens, token{tokEOF, "", len(p.src)})
}

func (p *parser) peek() token { return p.tokens[p.idx] }

func (p *parser) next() token {
	t := p.tokens[p.idx]
	if t.kind != tokEOF {
		p.idx++
	}
	return t
}

func (p *parser) acceptOp(op string) bool {
	if t := p.peek(); t.kind == tokOp && t.text == op {
		p.idx++
		return true
	}
	return false
}

// acceptKeyword matches a case-insensitive identifier keyword.
func (p *parser) acceptKeyword(kw string) bool {
	if t := p.peek(); t.kind == tokIdent && strings.EqualFold(t.text, kw) {
		p.idx++
		return true
	}
	return false
}

func (p *parser) expectKeyword(kw string) error {
	if !p.acceptKeyword(kw) {
		return p.errf("expected %q, found %q", kw, p.peek().text)
	}
	return nil
}

func (p *parser) expectOp(op string) error {
	if !p.acceptOp(op) {
		return p.errf("expected %q, found %q", op, p.peek().text)
	}
	return nil
}

func (p *parser) errf(format string, args ...any) error {
	return fmt.Errorf("query: %s (at offset %d in %q)",
		fmt.Sprintf(format, args...), p.peek().pos, p.src)
}

func (p *parser) ident() (string, error) {
	t := p.peek()
	if t.kind != tokIdent {
		return "", p.errf("expected identifier, found %q", t.text)
	}
	p.idx++
	return t.text, nil
}

var reservedWords = map[string]bool{
	"select": true, "from": true, "where": true, "as": true,
	"and": true, "or": true, "not": true, "true": true, "false": true,
	"null": true, "event": true, "order": true, "by": true,
	"limit": true, "asc": true, "desc": true,
}

// --- grammar ---

func (p *parser) parseQuery() (*Query, error) {
	if p.err != nil {
		return nil, p.err
	}
	if err := p.expectKeyword("select"); err != nil {
		return nil, err
	}
	q := &Query{}
	for {
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		item := SelectItem{Expr: e}
		if p.acceptKeyword("as") {
			name, err := p.ident()
			if err != nil {
				return nil, err
			}
			item.Alias = name
		}
		q.Select = append(q.Select, item)
		if !p.acceptOp(",") {
			break
		}
	}
	if err := p.expectKeyword("from"); err != nil {
		return nil, err
	}
	for {
		cls, err := p.ident()
		if err != nil {
			return nil, err
		}
		if reservedWords[strings.ToLower(cls)] {
			return nil, p.errf("class name %q is reserved", cls)
		}
		v, err := p.ident()
		if err != nil {
			return nil, err
		}
		if reservedWords[strings.ToLower(v)] {
			return nil, p.errf("range variable %q is reserved", v)
		}
		q.From = append(q.From, FromClause{Class: cls, Var: v})
		if !p.acceptOp(",") {
			break
		}
	}
	if p.acceptKeyword("where") {
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		q.Where = e
	}
	q.Limit = -1
	if p.acceptKeyword("order") {
		if err := p.expectKeyword("by"); err != nil {
			return nil, err
		}
		for {
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			item := OrderItem{Expr: e}
			if p.acceptKeyword("desc") {
				item.Desc = true
			} else {
				p.acceptKeyword("asc")
			}
			q.OrderBy = append(q.OrderBy, item)
			if !p.acceptOp(",") {
				break
			}
		}
	}
	if p.acceptKeyword("limit") {
		tok := p.peek()
		if tok.kind != tokNumber {
			return nil, p.errf("limit needs a number, found %q", tok.text)
		}
		p.idx++
		n, err := strconv.ParseInt(tok.text, 10, 64)
		if err != nil || n < 0 {
			return nil, p.errf("bad limit %q", tok.text)
		}
		q.Limit = int(n)
	}
	// Sanity: select/where may only reference declared variables.
	if err := p.checkVars(q); err != nil {
		return nil, err
	}
	// Aggregate shape: if any select item aggregates, all must.
	agg := 0
	for _, s := range q.Select {
		if hasAggregate(s.Expr) {
			agg++
		}
	}
	if agg > 0 && agg != len(q.Select) {
		return nil, fmt.Errorf("query: cannot mix aggregate and non-aggregate select items in %q", p.src)
	}
	if q.Where != nil && hasAggregate(q.Where) {
		return nil, fmt.Errorf("query: aggregates are not allowed in where (%q)", p.src)
	}
	if agg > 0 && len(q.OrderBy) > 0 {
		return nil, fmt.Errorf("query: order by is meaningless with aggregates (%q)", p.src)
	}
	return q, nil
}

func (p *parser) checkVars(q *Query) error {
	declared := map[string]bool{}
	for _, f := range q.From {
		if declared[f.Var] {
			return fmt.Errorf("query: duplicate range variable %q", f.Var)
		}
		declared[f.Var] = true
	}
	var check func(e Expr) error
	check = func(e Expr) error {
		switch v := e.(type) {
		case nil:
			return nil
		case *VarRef:
			if !declared[v.Name] {
				return fmt.Errorf("query: undeclared variable %q", v.Name)
			}
		case *Path:
			if !declared[v.Var] {
				return fmt.Errorf("query: undeclared variable %q", v.Var)
			}
		case *Binary:
			if err := check(v.L); err != nil {
				return err
			}
			return check(v.R)
		case *Unary:
			return check(v.X)
		case *Call:
			for _, a := range v.Args {
				if err := check(a); err != nil {
					return err
				}
			}
		}
		return nil
	}
	for _, s := range q.Select {
		if err := check(s.Expr); err != nil {
			return err
		}
	}
	for _, o := range q.OrderBy {
		if err := check(o.Expr); err != nil {
			return err
		}
	}
	return check(q.Where)
}

// Precedence climbing: or < and < not < comparison < add < mul < unary.

func (p *parser) parseExpr() (Expr, error) {
	if p.err != nil {
		return nil, p.err
	}
	return p.parseOr()
}

func (p *parser) parseOr() (Expr, error) {
	l, err := p.parseAnd()
	if err != nil {
		return nil, err
	}
	for p.acceptKeyword("or") {
		r, err := p.parseAnd()
		if err != nil {
			return nil, err
		}
		l = &Binary{Op: OpOr, L: l, R: r}
	}
	return l, nil
}

func (p *parser) parseAnd() (Expr, error) {
	l, err := p.parseNot()
	if err != nil {
		return nil, err
	}
	for p.acceptKeyword("and") {
		r, err := p.parseNot()
		if err != nil {
			return nil, err
		}
		l = &Binary{Op: OpAnd, L: l, R: r}
	}
	return l, nil
}

func (p *parser) parseNot() (Expr, error) {
	if p.acceptKeyword("not") {
		x, err := p.parseNot()
		if err != nil {
			return nil, err
		}
		return &Unary{Op: OpNot, X: x}, nil
	}
	return p.parseComparison()
}

func (p *parser) parseComparison() (Expr, error) {
	l, err := p.parseAdditive()
	if err != nil {
		return nil, err
	}
	for _, op := range []string{"<=", ">=", "!=", "=", "<", ">"} {
		if p.acceptOp(op) {
			r, err := p.parseAdditive()
			if err != nil {
				return nil, err
			}
			return &Binary{Op: BinOp(op), L: l, R: r}, nil
		}
	}
	return l, nil
}

func (p *parser) parseAdditive() (Expr, error) {
	l, err := p.parseMultiplicative()
	if err != nil {
		return nil, err
	}
	for {
		switch {
		case p.acceptOp("+"):
			r, err := p.parseMultiplicative()
			if err != nil {
				return nil, err
			}
			l = &Binary{Op: OpAdd, L: l, R: r}
		case p.acceptOp("-"):
			r, err := p.parseMultiplicative()
			if err != nil {
				return nil, err
			}
			l = &Binary{Op: OpSub, L: l, R: r}
		default:
			return l, nil
		}
	}
}

func (p *parser) parseMultiplicative() (Expr, error) {
	l, err := p.parseUnary()
	if err != nil {
		return nil, err
	}
	for {
		switch {
		case p.acceptOp("*"):
			r, err := p.parseUnary()
			if err != nil {
				return nil, err
			}
			l = &Binary{Op: OpMul, L: l, R: r}
		case p.acceptOp("/"):
			r, err := p.parseUnary()
			if err != nil {
				return nil, err
			}
			l = &Binary{Op: OpDiv, L: l, R: r}
		case p.acceptOp("%"):
			r, err := p.parseUnary()
			if err != nil {
				return nil, err
			}
			l = &Binary{Op: OpMod, L: l, R: r}
		default:
			return l, nil
		}
	}
}

func (p *parser) parseUnary() (Expr, error) {
	if p.acceptOp("-") {
		x, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		return &Unary{Op: OpNeg, X: x}, nil
	}
	return p.parsePrimary()
}

func (p *parser) parsePrimary() (Expr, error) {
	t := p.peek()
	switch t.kind {
	case tokNumber:
		p.idx++
		if strings.ContainsAny(t.text, ".eE") {
			f, err := strconv.ParseFloat(t.text, 64)
			if err != nil {
				return nil, p.errf("bad number %q", t.text)
			}
			return &Literal{Val: datum.Float(f)}, nil
		}
		i, err := strconv.ParseInt(t.text, 10, 64)
		if err != nil {
			return nil, p.errf("bad number %q", t.text)
		}
		return &Literal{Val: datum.Int(i)}, nil
	case tokString:
		p.idx++
		return &Literal{Val: datum.Str(t.text)}, nil
	case tokOp:
		if t.text == "(" {
			p.idx++
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			if err := p.expectOp(")"); err != nil {
				return nil, err
			}
			return e, nil
		}
		return nil, p.errf("unexpected %q", t.text)
	case tokIdent:
		lower := strings.ToLower(t.text)
		switch lower {
		case "true":
			p.idx++
			return &Literal{Val: datum.Bool(true)}, nil
		case "false":
			p.idx++
			return &Literal{Val: datum.Bool(false)}, nil
		case "null":
			p.idx++
			return &Literal{Val: datum.Null()}, nil
		case "event":
			p.idx++
			if err := p.expectOp("."); err != nil {
				return nil, err
			}
			name, err := p.ident()
			if err != nil {
				return nil, err
			}
			return &EventRef{Name: name}, nil
		}
		p.idx++
		name := t.text
		// Function call?
		if p.acceptOp("(") {
			call := &Call{Fn: strings.ToLower(name)}
			if p.acceptOp("*") {
				call.Star = true
				if call.Fn != "count" {
					return nil, p.errf("only count(*) may use *")
				}
				if err := p.expectOp(")"); err != nil {
					return nil, err
				}
				return call, nil
			}
			if !p.acceptOp(")") {
				for {
					a, err := p.parseExpr()
					if err != nil {
						return nil, err
					}
					call.Args = append(call.Args, a)
					if p.acceptOp(",") {
						continue
					}
					if err := p.expectOp(")"); err != nil {
						return nil, err
					}
					break
				}
			}
			return call, nil
		}
		// Attribute path?
		if p.acceptOp(".") {
			attr, err := p.ident()
			if err != nil {
				return nil, err
			}
			return &Path{Var: name, Attr: attr}, nil
		}
		if reservedWords[lower] {
			return nil, p.errf("unexpected keyword %q", t.text)
		}
		return &VarRef{Name: name}, nil
	default:
		return nil, p.errf("unexpected end of input")
	}
}
