// Package query implements the object-oriented DML that HiPAC rule
// conditions and applications use (§2.1 of the paper: "a collection
// of queries expressed in an object-oriented DML ... may refer to
// arguments in the event signal").
//
// The language is a small OQL-flavoured select:
//
//	select s from Stock s where s.price >= 50
//	select s, t from Stock s, Trade t
//	    where s.symbol = t.symbol and t.qty > 100
//	select s.symbol as sym, s.price * 1.1 as target from Stock s
//	select count(s) from Stock s where s.price > event.new_price
//
// Expressions support arithmetic, comparison, boolean logic, string
// concatenation (+), attribute paths (var.attr), event-argument
// references (event.name), and whole-result aggregates (count, sum,
// avg, min, max).
package query

import (
	"fmt"
	"strings"

	"repro/internal/datum"
)

// Query is a parsed select statement.
type Query struct {
	Select  []SelectItem
	From    []FromClause
	Where   Expr // nil when absent
	OrderBy []OrderItem
	Limit   int // -1 when absent
}

// OrderItem is one "order by" key.
type OrderItem struct {
	Expr Expr
	Desc bool
}

// SelectItem is one projection: an expression and its output name.
type SelectItem struct {
	Expr  Expr
	Alias string // defaults to a rendering of the expression
}

// Name returns the output column name.
func (s SelectItem) Name() string {
	if s.Alias != "" {
		return s.Alias
	}
	return s.Expr.String()
}

// FromClause binds a range variable over a class extent.
type FromClause struct {
	Class string
	Var   string
}

// String renders the query in canonical form (used as the sharing key
// in the condition graph, so it must be deterministic).
func (q *Query) String() string {
	var sb strings.Builder
	sb.WriteString("select ")
	for i, s := range q.Select {
		if i > 0 {
			sb.WriteString(", ")
		}
		sb.WriteString(s.Expr.String())
		if s.Alias != "" {
			sb.WriteString(" as ")
			sb.WriteString(s.Alias)
		}
	}
	sb.WriteString(" from ")
	for i, f := range q.From {
		if i > 0 {
			sb.WriteString(", ")
		}
		fmt.Fprintf(&sb, "%s %s", f.Class, f.Var)
	}
	if q.Where != nil {
		sb.WriteString(" where ")
		sb.WriteString(q.Where.String())
	}
	if len(q.OrderBy) > 0 {
		sb.WriteString(" order by ")
		for i, o := range q.OrderBy {
			if i > 0 {
				sb.WriteString(", ")
			}
			sb.WriteString(o.Expr.String())
			if o.Desc {
				sb.WriteString(" desc")
			}
		}
	}
	if q.Limit >= 0 {
		fmt.Fprintf(&sb, " limit %d", q.Limit)
	}
	return sb.String()
}

// Footprint describes which classes and attributes a query reads;
// the Rule Manager derives event specifications from it (§2.1: "HiPAC
// derives the event specification from the condition") and the
// condition evaluator uses it for incremental evaluation.
type Footprint struct {
	// Classes maps each class read to the set of attributes
	// referenced through its range variables (nil set = whole
	// object).
	Classes map[string]map[string]struct{}
	// EventArgs lists the event.* argument names referenced.
	EventArgs []string
}

// ComputeFootprint walks the query.
func (q *Query) ComputeFootprint() Footprint {
	fp := Footprint{Classes: map[string]map[string]struct{}{}}
	varClass := map[string]string{}
	for _, f := range q.From {
		varClass[f.Var] = f.Class
		if fp.Classes[f.Class] == nil {
			fp.Classes[f.Class] = map[string]struct{}{}
		}
	}
	seenEvent := map[string]bool{}
	var walk func(e Expr)
	walk = func(e Expr) {
		switch v := e.(type) {
		case nil:
		case *Path:
			if cls, ok := varClass[v.Var]; ok {
				fp.Classes[cls][v.Attr] = struct{}{}
			}
		case *EventRef:
			if !seenEvent[v.Name] {
				seenEvent[v.Name] = true
				fp.EventArgs = append(fp.EventArgs, v.Name)
			}
		case *Binary:
			walk(v.L)
			walk(v.R)
		case *Unary:
			walk(v.X)
		case *Call:
			for _, a := range v.Args {
				walk(a)
			}
		}
	}
	for _, s := range q.Select {
		walk(s.Expr)
	}
	walk(q.Where)
	for _, o := range q.OrderBy {
		walk(o.Expr)
	}
	return fp
}

// Expr is a node of the expression tree.
type Expr interface {
	String() string
	isExpr()
}

// Literal is a constant value.
type Literal struct{ Val datum.Value }

func (*Literal) isExpr()          {}
func (l *Literal) String() string { return l.Val.String() }

// VarRef references a range variable (yields the object's OID value).
type VarRef struct{ Name string }

func (*VarRef) isExpr()          {}
func (v *VarRef) String() string { return v.Name }

// Path references an attribute of a range variable: var.attr.
type Path struct {
	Var  string
	Attr string
}

func (*Path) isExpr()          {}
func (p *Path) String() string { return p.Var + "." + p.Attr }

// EventRef references an event-signal argument: event.name.
type EventRef struct{ Name string }

func (*EventRef) isExpr()          {}
func (e *EventRef) String() string { return "event." + e.Name }

// BinOp is a binary operator.
type BinOp string

// Binary operators.
const (
	OpAdd BinOp = "+"
	OpSub BinOp = "-"
	OpMul BinOp = "*"
	OpDiv BinOp = "/"
	OpMod BinOp = "%"
	OpEq  BinOp = "="
	OpNe  BinOp = "!="
	OpLt  BinOp = "<"
	OpLe  BinOp = "<="
	OpGt  BinOp = ">"
	OpGe  BinOp = ">="
	OpAnd BinOp = "and"
	OpOr  BinOp = "or"
)

// Binary applies a binary operator.
type Binary struct {
	Op   BinOp
	L, R Expr
}

func (*Binary) isExpr() {}
func (b *Binary) String() string {
	return fmt.Sprintf("(%s %s %s)", b.L, b.Op, b.R)
}

// UnOp is a unary operator.
type UnOp string

// Unary operators.
const (
	OpNot UnOp = "not"
	OpNeg UnOp = "-"
)

// Unary applies a unary operator.
type Unary struct {
	Op UnOp
	X  Expr
}

func (*Unary) isExpr() {}
func (u *Unary) String() string {
	if u.Op == OpNot {
		return fmt.Sprintf("(not %s)", u.X)
	}
	return fmt.Sprintf("(-%s)", u.X)
}

// Call invokes a builtin function or aggregate: count, sum, avg, min,
// max (aggregates); abs, lower, upper, len (scalars).
type Call struct {
	Fn   string
	Args []Expr
	Star bool // count(*)
}

func (*Call) isExpr() {}
func (c *Call) String() string {
	if c.Star {
		return c.Fn + "(*)"
	}
	args := make([]string, len(c.Args))
	for i, a := range c.Args {
		args[i] = a.String()
	}
	return fmt.Sprintf("%s(%s)", c.Fn, strings.Join(args, ", "))
}

// aggregates is the set of whole-result aggregate functions.
var aggregates = map[string]bool{
	"count": true, "sum": true, "avg": true, "min": true, "max": true,
}

// IsAggregate reports whether the call is an aggregate.
func (c *Call) IsAggregate() bool { return aggregates[c.Fn] }

// hasAggregate reports whether the expression contains an aggregate
// call.
func hasAggregate(e Expr) bool {
	switch v := e.(type) {
	case *Binary:
		return hasAggregate(v.L) || hasAggregate(v.R)
	case *Unary:
		return hasAggregate(v.X)
	case *Call:
		if v.IsAggregate() {
			return true
		}
		for _, a := range v.Args {
			if hasAggregate(a) {
				return true
			}
		}
	}
	return false
}
