package query

import "repro/internal/datum"

// This file exports the tree-walk evaluator's expression and
// aggregate semantics for the physical executor in internal/plan.
// The planner's plan-invariance guarantee ("every admissible plan
// returns exactly what Eval returns") depends on both engines sharing
// one implementation of expression evaluation, null/missing-value
// comparison rules, and aggregate accumulation — so plan does not
// reimplement any of it; it drives the code below.

// Env is an expression-evaluation environment: a set of range-variable
// bindings plus the event arguments, evaluating expressions with
// exactly the tree-walk evaluator's semantics.
type Env struct {
	e evaluator
}

// NewEnv returns an environment with no variables bound. reader backs
// sub-fetches (none today, but kept symmetric with Eval); eventArgs
// bind event.<name> references and may be nil.
func NewEnv(r Reader, eventArgs map[string]datum.Value) *Env {
	return &Env{e: evaluator{reader: r, event: eventArgs, env: map[string]object{}}}
}

// Bind binds a range variable to an object.
func (v *Env) Bind(name string, oid datum.OID, attrs map[string]datum.Value) {
	v.e.env[name] = object{oid: oid, attrs: attrs}
}

// Unbind removes a range-variable binding.
func (v *Env) Unbind(name string) { delete(v.e.env, name) }

// Bound reports whether name is currently bound.
func (v *Env) Bound(name string) bool {
	_, ok := v.e.env[name]
	return ok
}

// Eval evaluates an expression against the current bindings. A
// missing attribute or event argument yields an error wrapping
// ErrNoValue.
func (v *Env) Eval(x Expr) (datum.Value, error) { return v.e.eval(x) }

// EvalBool evaluates a predicate: missing values and nulls are
// unknown, which is false.
func (v *Env) EvalBool(x Expr) (bool, error) { return v.e.evalBool(x) }

// IsConstWrt reports whether x is evaluable from the current bindings
// alone — it references no unbound range variable.
func (v *Env) IsConstWrt(x Expr) bool { return isConstWrt(x, v.e.env) }

// SplitConjuncts flattens the top-level ANDs of a WHERE clause (nil
// yields nil).
func SplitConjuncts(e Expr) []Expr { return splitConjuncts(e) }

// HasAggregate reports whether the expression contains an aggregate
// call. A query whose first select item has an aggregate runs in
// aggregate mode: one output row accumulated over the join.
func HasAggregate(e Expr) bool { return hasAggregate(e) }

// ReferencesAny reports whether the expression references any of the
// given range variables.
func ReferencesAny(e Expr, vars map[string]bool) bool { return referencesAny(e, vars) }

// FlipOp mirrors a comparison operator for swapped operands
// (a < b == b > a); non-comparison ops are returned unchanged.
func FlipOp(op BinOp) BinOp { return flipOp(op) }

// AggState accumulates one select item's aggregate over emitted rows.
// Accumulation order matters for float sums: the executor feeds rows
// in the tree-walk emission order so results are bit-identical.
type AggState struct {
	st aggState
}

// Accumulate feeds the current bindings' row into the aggregate
// inside expr (a no-op when expr has none). Null and missing values
// do not participate, matching the tree-walk evaluator.
func (v *Env) Accumulate(st *AggState, expr Expr) error {
	return v.e.accumulate(&st.st, expr)
}

// FinishAggregate computes the final value of an aggregate select
// item, evaluating any surrounding expression around the aggregate.
func FinishAggregate(st *AggState, expr Expr) (datum.Value, error) {
	return finishAggregate(&st.st, expr)
}

// MergeAggState folds src — the partial aggregate of a later,
// contiguous chunk of the emission sequence — into dst, reporting
// false when an exact merge is impossible (float sums and averages
// accumulate in emission order; incomparable min/max candidates are
// order-sensitive). On false, dst is unspecified and the caller must
// re-accumulate serially to stay bit-identical to the tree-walk.
// Parallel partial aggregation in the physical executor is built on
// this: count, min/max, and integer sums merge exactly and run
// chunk-parallel; everything else degrades to the serial tail.
func MergeAggState(dst, src *AggState, expr Expr) bool {
	return mergeAggState(&dst.st, &src.st, expr)
}
