package query

import (
	"errors"
	"fmt"

	"repro/internal/datum"
)

// EvalExpr evaluates a standalone expression (from ParseExpr) outside
// a query: bare variable names resolve through vars, event.x through
// eventArgs, and paths var.attr dereference vars[var] as an OID
// through reader (which may be nil when no dereferencing is needed).
// Rule actions use this to compute attribute values and request
// arguments from the event signal and the condition's result rows.
func EvalExpr(e Expr, reader Reader, vars, eventArgs map[string]datum.Value) (datum.Value, error) {
	ev := &exprEvaluator{reader: reader, vars: vars, inner: evaluator{event: eventArgs}}
	v, err := ev.eval(e)
	if err != nil && errors.Is(err, ErrNoValue) {
		// Missing bindings evaluate to null rather than failing the
		// whole action; the store rejects nulls where they are not
		// allowed.
		return datum.Null(), nil
	}
	return v, err
}

type exprEvaluator struct {
	reader Reader
	vars   map[string]datum.Value
	inner  evaluator
}

func (x *exprEvaluator) eval(e Expr) (datum.Value, error) {
	switch v := e.(type) {
	case *VarRef:
		if val, ok := x.vars[v.Name]; ok {
			return val, nil
		}
		return datum.Null(), fmt.Errorf("%w: binding %q", ErrNoValue, v.Name)
	case *Path:
		val, ok := x.vars[v.Var]
		if !ok {
			return datum.Null(), fmt.Errorf("%w: binding %q", ErrNoValue, v.Var)
		}
		if val.Kind() != datum.KindOID {
			return datum.Null(), fmt.Errorf("query: %s is not an object (kind %s)", v.Var, val.Kind())
		}
		if x.reader == nil {
			return datum.Null(), fmt.Errorf("query: cannot dereference %s without a reader", v)
		}
		_, attrs, ok := x.reader.Fetch(val.AsOID())
		if !ok {
			return datum.Null(), fmt.Errorf("%w: object %v", ErrNoValue, val.AsOID())
		}
		av, ok := attrs[v.Attr]
		if !ok {
			return datum.Null(), fmt.Errorf("%w: attribute %q", ErrNoValue, v.Attr)
		}
		return av, nil
	case *Binary:
		// Reuse the inner evaluator's operator semantics by
		// pre-resolving the variable-dependent leaves.
		return x.inner.evalBinary(&Binary{Op: v.Op, L: x.resolve(v.L), R: x.resolve(v.R)})
	case *Unary:
		return x.inner.evalUnary(&Unary{Op: v.Op, X: x.resolve(v.X)})
	case *Call:
		args := make([]Expr, len(v.Args))
		for i, a := range v.Args {
			args[i] = x.resolve(a)
		}
		return x.inner.evalCall(&Call{Fn: v.Fn, Args: args, Star: v.Star})
	default:
		return x.inner.eval(e)
	}
}

// resolve replaces variable-dependent leaves with literals (or an
// errExpr that reproduces the resolution error lazily, preserving
// missing-value semantics for comparisons).
func (x *exprEvaluator) resolve(e Expr) Expr {
	switch v := e.(type) {
	case *VarRef, *Path:
		val, err := x.eval(v)
		if err != nil {
			return &errExpr{err: err}
		}
		return &Literal{Val: val}
	case *Binary:
		return &Binary{Op: v.Op, L: x.resolve(v.L), R: x.resolve(v.R)}
	case *Unary:
		return &Unary{Op: v.Op, X: x.resolve(v.X)}
	case *Call:
		args := make([]Expr, len(v.Args))
		for i, a := range v.Args {
			args[i] = x.resolve(a)
		}
		return &Call{Fn: v.Fn, Args: args, Star: v.Star}
	default:
		return e
	}
}

// errExpr carries a deferred resolution error through evaluation;
// evaluator.eval unwraps it, so ErrNoValue comparisons keep their
// missing-value semantics.
type errExpr struct{ err error }

func (*errExpr) isExpr()          {}
func (e *errExpr) String() string { return fmt.Sprintf("<error: %v>", e.err) }
