package query

import (
	"errors"
	"fmt"
	"sort"
	"strings"

	"repro/internal/datum"
)

// Reader is the evaluator's view of the database, bound to a
// transaction by the Object Manager. Implementations must expose a
// transaction-consistent snapshot (own writes visible, ancestors'
// writes visible, others' invisible).
type Reader interface {
	// ScanClass visits every live object of the class in OID order.
	ScanClass(class string, fn func(oid datum.OID, attrs map[string]datum.Value) bool) error
	// LookupRange returns candidate OIDs with lo <= attrs[attr] <= hi
	// (bounds optional). ok is false when no index exists on
	// class.attr; candidates may include false positives but must not
	// miss any visible match.
	LookupRange(class, attr string, lo, hi *datum.Value, loInc, hiInc bool) (oids []datum.OID, ok bool)
	// Fetch returns a live object's attributes by OID.
	Fetch(oid datum.OID) (class string, attrs map[string]datum.Value, ok bool)
}

// Result is a query result: named columns and rows of values.
type Result struct {
	Columns []string
	Rows    [][]datum.Value
}

// Empty reports whether the result has no rows. The paper's condition
// semantics: a condition is satisfied iff all its queries return
// non-empty results.
func (r *Result) Empty() bool { return len(r.Rows) == 0 }

// RowBindings returns row i as a name->value map for action
// parameter binding.
func (r *Result) RowBindings(i int) map[string]datum.Value {
	m := make(map[string]datum.Value, len(r.Columns))
	for c, name := range r.Columns {
		m[name] = r.Rows[i][c]
	}
	return m
}

// ErrNoValue marks evaluation against a missing attribute or event
// argument; comparisons treat it as null.
var ErrNoValue = errors.New("query: no value")

// Eval runs the query against r with the given event-argument
// bindings (may be nil).
func Eval(q *Query, r Reader, eventArgs map[string]datum.Value) (*Result, error) {
	e := &evaluator{reader: r, event: eventArgs}
	return e.run(q)
}

type object struct {
	oid   datum.OID
	attrs map[string]datum.Value
}

type evaluator struct {
	reader Reader
	event  map[string]datum.Value
	env    map[string]object
}

func (e *evaluator) run(q *Query) (*Result, error) {
	res := &Result{}
	for _, s := range q.Select {
		res.Columns = append(res.Columns, s.Name())
	}

	conjuncts := splitConjuncts(q.Where)
	e.env = make(map[string]object, len(q.From))

	aggMode := len(q.Select) > 0 && hasAggregate(q.Select[0].Expr)
	var aggs []*aggState
	if aggMode {
		aggs = make([]*aggState, len(q.Select))
		for i := range aggs {
			aggs[i] = &aggState{}
		}
	}

	var sortKeys [][]datum.Value
	emit := func() error {
		if aggMode {
			for i, s := range q.Select {
				if err := e.accumulate(aggs[i], s.Expr); err != nil {
					return err
				}
			}
			return nil
		}
		row := make([]datum.Value, len(q.Select))
		for i, s := range q.Select {
			v, err := e.eval(s.Expr)
			if err != nil && !errors.Is(err, ErrNoValue) {
				return err
			}
			row[i] = v
		}
		res.Rows = append(res.Rows, row)
		if len(q.OrderBy) > 0 {
			keys := make([]datum.Value, len(q.OrderBy))
			for i, o := range q.OrderBy {
				v, err := e.eval(o.Expr)
				if err != nil && !errors.Is(err, ErrNoValue) {
					return err
				}
				keys[i] = v
			}
			sortKeys = append(sortKeys, keys)
		}
		return nil
	}

	if err := e.loop(q.From, conjuncts, emit); err != nil {
		return nil, err
	}

	if aggMode {
		row := make([]datum.Value, len(q.Select))
		for i, s := range q.Select {
			v, err := finishAggregate(aggs[i], s.Expr)
			if err != nil {
				return nil, err
			}
			row[i] = v
		}
		res.Rows = append(res.Rows, row)
	}
	if len(q.OrderBy) > 0 {
		// Stable sort on the precomputed keys (datum.Less is a total
		// order, so heterogeneous keys still sort deterministically).
		idx := make([]int, len(res.Rows))
		for i := range idx {
			idx[i] = i
		}
		sort.SliceStable(idx, func(a, b int) bool {
			ka, kb := sortKeys[idx[a]], sortKeys[idx[b]]
			for c, o := range q.OrderBy {
				if datum.Equal(ka[c], kb[c]) {
					continue
				}
				less := datum.Less(ka[c], kb[c])
				if o.Desc {
					return !less
				}
				return less
			}
			return false
		})
		sorted := make([][]datum.Value, len(res.Rows))
		for i, j := range idx {
			sorted[i] = res.Rows[j]
		}
		res.Rows = sorted
	}
	if q.Limit >= 0 && len(res.Rows) > q.Limit {
		res.Rows = res.Rows[:q.Limit]
	}
	return res, nil
}

// loop performs the nested-loop join over the remaining FROM clauses,
// applying each conjunct as soon as all its variables are bound.
func (e *evaluator) loop(from []FromClause, conjuncts []Expr, emit func() error) error {
	if len(from) == 0 {
		return emit()
	}
	f := from[0]
	rest := from[1:]

	// Conjuncts fully evaluable once f.Var is bound (and no later
	// vars are referenced) filter here; the rest pass down.
	laterVars := map[string]bool{}
	for _, lf := range rest {
		laterVars[lf.Var] = true
	}
	var here, below []Expr
	for _, c := range conjuncts {
		if referencesAny(c, laterVars) {
			below = append(below, c)
		} else {
			here = append(here, c)
		}
	}

	visit := func(oid datum.OID, attrs map[string]datum.Value) (bool, error) {
		e.env[f.Var] = object{oid: oid, attrs: attrs}
		for _, c := range here {
			ok, err := e.evalBool(c)
			if err != nil {
				return false, err
			}
			if !ok {
				return true, nil // next candidate
			}
		}
		if err := e.loop(rest, below, emit); err != nil {
			return false, err
		}
		return true, nil
	}

	// Fast path: a conjunct pinning the range variable itself to an
	// object identity (`s = event.oid`) needs one Fetch, not a scan —
	// the shape of every "the modified object" rule condition.
	if oid, pinned, err := e.identityPin(f, here); err != nil {
		return err
	} else if pinned {
		defer delete(e.env, f.Var)
		cls, attrs, found := e.reader.Fetch(oid)
		if !found || cls != f.Class {
			return nil
		}
		_, err := visit(oid, attrs)
		return err
	}

	// Try an index probe for a sargable conjunct on f.Var.
	if oids, used, err := e.indexProbe(f, here); err != nil {
		return err
	} else if used {
		for _, oid := range oids {
			cls, attrs, ok := e.reader.Fetch(oid)
			if !ok || cls != f.Class {
				continue
			}
			cont, err := visit(oid, attrs)
			if err != nil {
				return err
			}
			if !cont {
				break
			}
		}
		delete(e.env, f.Var)
		return nil
	}

	var scanErr error
	err := e.reader.ScanClass(f.Class, func(oid datum.OID, attrs map[string]datum.Value) bool {
		cont, err := visit(oid, attrs)
		if err != nil {
			scanErr = err
			return false
		}
		return cont
	})
	delete(e.env, f.Var)
	if scanErr != nil {
		return scanErr
	}
	return err
}

// identityPin looks for a conjunct of the form `var = <oid-valued
// constant>` (or flipped) and returns the object identity when found.
func (e *evaluator) identityPin(f FromClause, conjuncts []Expr) (datum.OID, bool, error) {
	for _, c := range conjuncts {
		b, ok := c.(*Binary)
		if !ok || b.Op != OpEq {
			continue
		}
		var constExpr Expr
		if v, ok := b.L.(*VarRef); ok && v.Name == f.Var && isConstWrt(b.R, e.env) {
			constExpr = b.R
		} else if v, ok := b.R.(*VarRef); ok && v.Name == f.Var && isConstWrt(b.L, e.env) {
			constExpr = b.L
		} else {
			continue
		}
		val, err := e.eval(constExpr)
		if err != nil {
			if errors.Is(err, ErrNoValue) {
				continue
			}
			return 0, false, err
		}
		if val.Kind() == datum.KindOID {
			return val.AsOID(), true, nil
		}
	}
	return 0, false, nil
}

// indexProbe looks for a conjunct of the form f.Var.attr OP constant
// (literal or event reference) with an available index and returns
// the candidate OIDs. The conjunct is NOT removed: it is re-checked
// as a residual, so false positives from the candidate set are
// harmless.
func (e *evaluator) indexProbe(f FromClause, conjuncts []Expr) ([]datum.OID, bool, error) {
	for _, c := range conjuncts {
		b, ok := c.(*Binary)
		if !ok {
			continue
		}
		var path *Path
		var constExpr Expr
		op := b.Op
		if p, ok := b.L.(*Path); ok && p.Var == f.Var && isConstWrt(b.R, e.env) {
			path, constExpr = p, b.R
		} else if p, ok := b.R.(*Path); ok && p.Var == f.Var && isConstWrt(b.L, e.env) {
			path, constExpr = p, b.L
			op = flipOp(op)
		} else {
			continue
		}
		var lo, hi *datum.Value
		loInc, hiInc := true, true
		v, err := e.eval(constExpr)
		if err != nil {
			if errors.Is(err, ErrNoValue) {
				continue
			}
			return nil, false, err
		}
		switch op {
		case OpEq:
			lo, hi = &v, &v
		case OpLt:
			hi, hiInc = &v, false
		case OpLe:
			hi = &v
		case OpGt:
			lo, loInc = &v, false
		case OpGe:
			lo = &v
		default:
			continue
		}
		if oids, ok := e.reader.LookupRange(f.Class, path.Attr, lo, hi, loInc, hiInc); ok {
			return oids, true, nil
		}
	}
	return nil, false, nil
}

// isConstWrt reports whether expr is evaluable without reference to
// any still-unbound range variable: literals, event refs, and
// already-bound variables qualify.
func isConstWrt(e Expr, bound map[string]object) bool {
	switch v := e.(type) {
	case *Literal, *EventRef:
		return true
	case *VarRef:
		_, ok := bound[v.Name]
		return ok
	case *Path:
		_, ok := bound[v.Var]
		return ok
	case *Binary:
		return isConstWrt(v.L, bound) && isConstWrt(v.R, bound)
	case *Unary:
		return isConstWrt(v.X, bound)
	case *Call:
		for _, a := range v.Args {
			if !isConstWrt(a, bound) {
				return false
			}
		}
		return true
	default:
		return false
	}
}

func flipOp(op BinOp) BinOp {
	switch op {
	case OpLt:
		return OpGt
	case OpLe:
		return OpGe
	case OpGt:
		return OpLt
	case OpGe:
		return OpLe
	default:
		return op
	}
}

// splitConjuncts flattens top-level ANDs.
func splitConjuncts(e Expr) []Expr {
	if e == nil {
		return nil
	}
	if b, ok := e.(*Binary); ok && b.Op == OpAnd {
		return append(splitConjuncts(b.L), splitConjuncts(b.R)...)
	}
	return []Expr{e}
}

func referencesAny(e Expr, vars map[string]bool) bool {
	switch v := e.(type) {
	case *VarRef:
		return vars[v.Name]
	case *Path:
		return vars[v.Var]
	case *Binary:
		return referencesAny(v.L, vars) || referencesAny(v.R, vars)
	case *Unary:
		return referencesAny(v.X, vars)
	case *Call:
		for _, a := range v.Args {
			if referencesAny(a, vars) {
				return true
			}
		}
	}
	return false
}

// --- expression evaluation ---

func (e *evaluator) evalBool(x Expr) (bool, error) {
	v, err := e.eval(x)
	if err != nil {
		if errors.Is(err, ErrNoValue) {
			return false, nil // missing value: predicate is unknown = false
		}
		return false, err
	}
	if v.Kind() == datum.KindNull {
		return false, nil
	}
	if v.Kind() != datum.KindBool {
		return false, fmt.Errorf("query: predicate yielded %s, want bool", v.Kind())
	}
	return v.AsBool(), nil
}

func (e *evaluator) eval(x Expr) (datum.Value, error) {
	switch v := x.(type) {
	case *Literal:
		return v.Val, nil
	case *VarRef:
		obj, ok := e.env[v.Name]
		if !ok {
			return datum.Null(), fmt.Errorf("%w: variable %q unbound", ErrNoValue, v.Name)
		}
		return datum.ID(obj.oid), nil
	case *Path:
		obj, ok := e.env[v.Var]
		if !ok {
			return datum.Null(), fmt.Errorf("%w: variable %q unbound", ErrNoValue, v.Var)
		}
		val, ok := obj.attrs[v.Attr]
		if !ok {
			return datum.Null(), fmt.Errorf("%w: attribute %q", ErrNoValue, v.Attr)
		}
		return val, nil
	case *EventRef:
		val, ok := e.event[v.Name]
		if !ok {
			return datum.Null(), fmt.Errorf("%w: event argument %q", ErrNoValue, v.Name)
		}
		return val, nil
	case *Unary:
		return e.evalUnary(v)
	case *Binary:
		return e.evalBinary(v)
	case *Call:
		return e.evalCall(v)
	case *errExpr:
		return datum.Null(), v.err
	default:
		return datum.Null(), fmt.Errorf("query: cannot evaluate %T", x)
	}
}

func (e *evaluator) evalUnary(u *Unary) (datum.Value, error) {
	x, err := e.eval(u.X)
	if err != nil {
		return datum.Null(), err
	}
	switch u.Op {
	case OpNot:
		if x.Kind() != datum.KindBool {
			return datum.Null(), fmt.Errorf("query: not applied to %s", x.Kind())
		}
		return datum.Bool(!x.AsBool()), nil
	case OpNeg:
		switch x.Kind() {
		case datum.KindInt:
			return datum.Int(-x.AsInt()), nil
		case datum.KindFloat:
			return datum.Float(-x.AsFloat()), nil
		default:
			return datum.Null(), fmt.Errorf("query: negation of %s", x.Kind())
		}
	default:
		return datum.Null(), fmt.Errorf("query: unknown unary op %q", u.Op)
	}
}

func (e *evaluator) evalBinary(b *Binary) (datum.Value, error) {
	// Short-circuit logic first.
	switch b.Op {
	case OpAnd:
		l, err := e.evalBool(b.L)
		if err != nil {
			return datum.Null(), err
		}
		if !l {
			return datum.Bool(false), nil
		}
		r, err := e.evalBool(b.R)
		if err != nil {
			return datum.Null(), err
		}
		return datum.Bool(r), nil
	case OpOr:
		l, err := e.evalBool(b.L)
		if err != nil {
			return datum.Null(), err
		}
		if l {
			return datum.Bool(true), nil
		}
		r, err := e.evalBool(b.R)
		if err != nil {
			return datum.Null(), err
		}
		return datum.Bool(r), nil
	}

	l, err := e.eval(b.L)
	if err != nil && !errors.Is(err, ErrNoValue) {
		return datum.Null(), err
	}
	lMissing := err != nil
	r, err := e.eval(b.R)
	if err != nil && !errors.Is(err, ErrNoValue) {
		return datum.Null(), err
	}
	rMissing := err != nil

	switch b.Op {
	case OpEq, OpNe, OpLt, OpLe, OpGt, OpGe:
		if lMissing || rMissing || l.IsNull() || r.IsNull() {
			// Comparisons against missing/null are unknown (false),
			// except inequality against a known value.
			if b.Op == OpNe && lMissing != rMissing {
				return datum.Bool(true), nil
			}
			return datum.Bool(false), nil
		}
		c, err := datum.Compare(l, r)
		if err != nil {
			if b.Op == OpEq {
				return datum.Bool(false), nil
			}
			if b.Op == OpNe {
				return datum.Bool(true), nil
			}
			return datum.Null(), fmt.Errorf("query: %v %s %v: %w", l, b.Op, r, err)
		}
		switch b.Op {
		case OpEq:
			return datum.Bool(c == 0), nil
		case OpNe:
			return datum.Bool(c != 0), nil
		case OpLt:
			return datum.Bool(c < 0), nil
		case OpLe:
			return datum.Bool(c <= 0), nil
		case OpGt:
			return datum.Bool(c > 0), nil
		case OpGe:
			return datum.Bool(c >= 0), nil
		}
	}

	if lMissing || rMissing {
		return datum.Null(), fmt.Errorf("%w: operand of %s", ErrNoValue, b.Op)
	}

	switch b.Op {
	case OpAdd:
		if l.Kind() == datum.KindString && r.Kind() == datum.KindString {
			return datum.Str(l.AsString() + r.AsString()), nil
		}
		return numericOp(l, r, b.Op)
	case OpSub, OpMul, OpDiv, OpMod:
		return numericOp(l, r, b.Op)
	}
	return datum.Null(), fmt.Errorf("query: unknown binary op %q", b.Op)
}

func numericOp(l, r datum.Value, op BinOp) (datum.Value, error) {
	if !l.IsNumeric() || !r.IsNumeric() {
		return datum.Null(), fmt.Errorf("query: %s applied to %s and %s", op, l.Kind(), r.Kind())
	}
	if l.Kind() == datum.KindInt && r.Kind() == datum.KindInt {
		a, b := l.AsInt(), r.AsInt()
		switch op {
		case OpAdd:
			return datum.Int(a + b), nil
		case OpSub:
			return datum.Int(a - b), nil
		case OpMul:
			return datum.Int(a * b), nil
		case OpDiv:
			if b == 0 {
				return datum.Null(), errors.New("query: integer division by zero")
			}
			return datum.Int(a / b), nil
		case OpMod:
			if b == 0 {
				return datum.Null(), errors.New("query: integer modulo by zero")
			}
			return datum.Int(a % b), nil
		}
	}
	a, b := l.AsFloat(), r.AsFloat()
	switch op {
	case OpAdd:
		return datum.Float(a + b), nil
	case OpSub:
		return datum.Float(a - b), nil
	case OpMul:
		return datum.Float(a * b), nil
	case OpDiv:
		if b == 0 {
			return datum.Null(), errors.New("query: division by zero")
		}
		return datum.Float(a / b), nil
	case OpMod:
		return datum.Null(), errors.New("query: modulo needs integers")
	}
	return datum.Null(), fmt.Errorf("query: unknown numeric op %q", op)
}

func (e *evaluator) evalCall(c *Call) (datum.Value, error) {
	if c.IsAggregate() {
		return datum.Null(), fmt.Errorf("query: aggregate %s evaluated in row context", c.Fn)
	}
	if len(c.Args) != 1 {
		return datum.Null(), fmt.Errorf("query: %s takes one argument", c.Fn)
	}
	v, err := e.eval(c.Args[0])
	if err != nil {
		return datum.Null(), err
	}
	switch c.Fn {
	case "abs":
		switch v.Kind() {
		case datum.KindInt:
			if v.AsInt() < 0 {
				return datum.Int(-v.AsInt()), nil
			}
			return v, nil
		case datum.KindFloat:
			if v.AsFloat() < 0 {
				return datum.Float(-v.AsFloat()), nil
			}
			return v, nil
		default:
			return datum.Null(), fmt.Errorf("query: abs of %s", v.Kind())
		}
	case "lower":
		return datum.Str(strings.ToLower(v.AsString())), nil
	case "upper":
		return datum.Str(strings.ToUpper(v.AsString())), nil
	case "len":
		if v.Kind() == datum.KindList {
			return datum.Int(int64(len(v.AsList()))), nil
		}
		return datum.Int(int64(len(v.AsString()))), nil
	default:
		return datum.Null(), fmt.Errorf("query: unknown function %q", c.Fn)
	}
}

// --- aggregates ---

type aggState struct {
	count int64
	sum   float64
	sumI  int64
	isInt bool
	first bool
	min   datum.Value
	max   datum.Value
	init  bool
}

// accumulate feeds one row into every aggregate inside expr.
func (e *evaluator) accumulate(st *aggState, expr Expr) error {
	call := findAggregate(expr)
	if call == nil {
		return nil
	}
	if call.Star {
		st.count++
		return nil
	}
	if len(call.Args) != 1 {
		return fmt.Errorf("query: %s takes one argument", call.Fn)
	}
	v, err := e.eval(call.Args[0])
	if err != nil {
		if errors.Is(err, ErrNoValue) {
			return nil // nulls don't participate
		}
		return err
	}
	if v.IsNull() {
		return nil
	}
	st.count++
	if !st.init {
		st.init = true
		st.isInt = v.Kind() == datum.KindInt
		st.min, st.max = v, v
	}
	if v.Kind() != datum.KindInt {
		st.isInt = false
	}
	if v.IsNumeric() {
		st.sum += v.AsFloat()
		st.sumI += v.AsInt()
	}
	if c, err := datum.Compare(v, st.min); err == nil && c < 0 {
		st.min = v
	}
	if c, err := datum.Compare(v, st.max); err == nil && c > 0 {
		st.max = v
	}
	return nil
}

// mergeAggState folds src — the partial aggregate of a later,
// contiguous chunk of the emission sequence — into dst. It reports
// false when the merged state could differ bitwise from accumulating
// both chunks serially, in which case dst is left unspecified and the
// caller must fall back to serial accumulation:
//
//   - sum over floats and avg read the float64 running sum, whose
//     value depends on accumulation order (addition is not
//     associative);
//   - min/max candidates that datum.Compare cannot order (cross-kind
//     values outside the numeric family) keep whichever value came
//     first, so partials from different chunks cannot be reconciled.
//
// count, min/max over comparable values, and sum over ints (int64
// wraparound addition is associative) merge exactly.
func mergeAggState(dst, src *aggState, expr Expr) bool {
	call := findAggregate(expr)
	if call == nil || src.count == 0 {
		return true // nothing to merge (count(*) bumps count without init)
	}
	if dst.count == 0 {
		*dst = *src // the serial run would have accumulated src alone
		return true
	}
	switch call.Fn {
	case "sum":
		if !dst.isInt || !src.isInt {
			return false // finish would read the order-sensitive float sum
		}
	case "avg":
		return false // always finishes through the float sum
	case "count", "min", "max":
	default:
		return false // unknown aggregate: let the serial path report it
	}
	if src.init && dst.init {
		cMin, errMin := datum.Compare(src.min, dst.min)
		cMax, errMax := datum.Compare(src.max, dst.max)
		if errMin != nil || errMax != nil {
			return false // incomparable partials are order-sensitive
		}
		// Strict inequality keeps the serial "first value wins ties"
		// behavior: dst holds the earlier chunk.
		if cMin < 0 {
			dst.min = src.min
		}
		if cMax > 0 {
			dst.max = src.max
		}
	} else if src.init {
		dst.init = true
		dst.min, dst.max = src.min, src.max
	}
	dst.count += src.count
	dst.sumI += src.sumI
	dst.sum += src.sum
	dst.isInt = dst.isInt && src.isInt
	return true
}

func findAggregate(expr Expr) *Call {
	switch v := expr.(type) {
	case *Call:
		if v.IsAggregate() {
			return v
		}
		for _, a := range v.Args {
			if c := findAggregate(a); c != nil {
				return c
			}
		}
	case *Binary:
		if c := findAggregate(v.L); c != nil {
			return c
		}
		return findAggregate(v.R)
	case *Unary:
		return findAggregate(v.X)
	}
	return nil
}

// finishAggregate computes the final value of an aggregate select
// item. Expressions over an aggregate (e.g. count(*) + 1) are
// evaluated by substituting the aggregate's value.
func finishAggregate(st *aggState, expr Expr) (datum.Value, error) {
	call := findAggregate(expr)
	if call == nil {
		return datum.Null(), errors.New("query: aggregate select item without aggregate")
	}
	var val datum.Value
	switch call.Fn {
	case "count":
		val = datum.Int(st.count)
	case "sum":
		if st.count == 0 {
			val = datum.Int(0)
		} else if st.isInt {
			val = datum.Int(st.sumI)
		} else {
			val = datum.Float(st.sum)
		}
	case "avg":
		if st.count == 0 {
			val = datum.Null()
		} else {
			val = datum.Float(st.sum / float64(st.count))
		}
	case "min":
		if !st.init {
			val = datum.Null()
		} else {
			val = st.min
		}
	case "max":
		if !st.init {
			val = datum.Null()
		} else {
			val = st.max
		}
	default:
		return datum.Null(), fmt.Errorf("query: unknown aggregate %q", call.Fn)
	}
	// Substitute and evaluate the surrounding expression, if any.
	if expr == Expr(call) {
		return val, nil
	}
	sub := substitute(expr, call, &Literal{Val: val})
	e := &evaluator{}
	return e.eval(sub)
}

// substitute replaces target with repl in a copy of expr.
func substitute(expr Expr, target *Call, repl Expr) Expr {
	switch v := expr.(type) {
	case *Call:
		if v == target {
			return repl
		}
		args := make([]Expr, len(v.Args))
		for i, a := range v.Args {
			args[i] = substitute(a, target, repl)
		}
		return &Call{Fn: v.Fn, Args: args, Star: v.Star}
	case *Binary:
		return &Binary{Op: v.Op, L: substitute(v.L, target, repl), R: substitute(v.R, target, repl)}
	case *Unary:
		return &Unary{Op: v.Op, X: substitute(v.X, target, repl)}
	default:
		return expr
	}
}
