package query

import (
	"fmt"
	"reflect"
	"sort"
	"strings"
	"testing"

	"repro/internal/datum"
)

// memReader is an in-memory Reader with optional per-attribute
// indexes and probe counting.
type memReader struct {
	classes map[string][]object // sorted by OID
	indexed map[string]bool     // "class.attr"
	scans   int
	probes  int
}

func newMemReader() *memReader {
	return &memReader{classes: map[string][]object{}, indexed: map[string]bool{}}
}

func (m *memReader) add(class string, oid datum.OID, attrs map[string]datum.Value) {
	m.classes[class] = append(m.classes[class], object{oid: oid, attrs: attrs})
	sort.Slice(m.classes[class], func(i, j int) bool {
		return m.classes[class][i].oid < m.classes[class][j].oid
	})
}

func (m *memReader) ScanClass(class string, fn func(datum.OID, map[string]datum.Value) bool) error {
	m.scans++
	for _, o := range m.classes[class] {
		if !fn(o.oid, o.attrs) {
			return nil
		}
	}
	return nil
}

func (m *memReader) LookupRange(class, attr string, lo, hi *datum.Value, loInc, hiInc bool) ([]datum.OID, bool) {
	if !m.indexed[class+"."+attr] {
		return nil, false
	}
	m.probes++
	var out []datum.OID
	for _, o := range m.classes[class] {
		v, ok := o.attrs[attr]
		if !ok {
			continue
		}
		if lo != nil {
			c, err := datum.Compare(v, *lo)
			if err != nil || c < 0 || (c == 0 && !loInc) {
				continue
			}
		}
		if hi != nil {
			c, err := datum.Compare(v, *hi)
			if err != nil || c > 0 || (c == 0 && !hiInc) {
				continue
			}
		}
		out = append(out, o.oid)
	}
	return out, true
}

func (m *memReader) Fetch(oid datum.OID) (string, map[string]datum.Value, bool) {
	for class, objs := range m.classes {
		for _, o := range objs {
			if o.oid == oid {
				return class, o.attrs, true
			}
		}
	}
	return "", nil, false
}

func stockReader() *memReader {
	m := newMemReader()
	data := []struct {
		oid    datum.OID
		symbol string
		price  float64
		sector string
	}{
		{1, "XRX", 50, "tech"},
		{2, "IBM", 120, "tech"},
		{3, "DEC", 30, "tech"},
		{4, "GM", 45, "auto"},
		{5, "F", 12, "auto"},
	}
	for _, d := range data {
		m.add("Stock", d.oid, map[string]datum.Value{
			"symbol": datum.Str(d.symbol),
			"price":  datum.Float(d.price),
			"sector": datum.Str(d.sector),
		})
	}
	return m
}

func col(res *Result, name string) []datum.Value {
	for i, c := range res.Columns {
		if c == name {
			out := make([]datum.Value, len(res.Rows))
			for r := range res.Rows {
				out[r] = res.Rows[r][i]
			}
			return out
		}
	}
	return nil
}

func TestParseRoundTrip(t *testing.T) {
	cases := []string{
		"select s from Stock s",
		"select s from Stock s where (s.price >= 50)",
		"select s.symbol as sym, (s.price * 1.1) as target from Stock s",
		"select s, t from Stock s, Trade t where ((s.symbol = t.symbol) and (t.qty > 100))",
		"select count(*) from Stock s",
		"select s from Stock s where (s.price = event.new_price)",
		"select s from Stock s where (not (s.sector = 'auto'))",
	}
	for _, src := range cases {
		q, err := Parse(src)
		if err != nil {
			t.Fatalf("Parse(%q): %v", src, err)
		}
		q2, err := Parse(q.String())
		if err != nil {
			t.Fatalf("reparse %q: %v", q.String(), err)
		}
		if q.String() != q2.String() {
			t.Errorf("canonical form unstable: %q vs %q", q.String(), q2.String())
		}
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		"",
		"selec s from Stock s",
		"select from Stock s",
		"select s from",
		"select s from Stock",                      // missing var
		"select s from Stock s where",              // missing predicate
		"select x from Stock s",                    // undeclared var
		"select s from Stock s, Stock s",           // duplicate var
		"select s.price, count(*) from Stock s",    // mixed aggregate
		"select s from Stock s where count(*) > 1", // aggregate in where
		"select s from Stock s where s.price >",    // dangling op
		"select s from Stock s where s.price = 'x", // unterminated string
		"select s from Stock s extra",              // trailing tokens
		"select s from select s",                   // reserved class name
		"select s from Stock s where s.price ~ 3",  // bad char
	}
	for _, src := range bad {
		if _, err := Parse(src); err == nil {
			t.Errorf("Parse(%q) should fail", src)
		}
	}
}

func TestSimpleSelect(t *testing.T) {
	m := stockReader()
	res, err := Eval(MustParse("select s.symbol from Stock s where s.price >= 50"), m, nil)
	if err != nil {
		t.Fatal(err)
	}
	syms := col(res, "s.symbol")
	if len(syms) != 2 || syms[0].AsString() != "XRX" || syms[1].AsString() != "IBM" {
		t.Fatalf("rows = %v", syms)
	}
}

func TestSelectVarYieldsOID(t *testing.T) {
	m := stockReader()
	res, err := Eval(MustParse("select s from Stock s where s.symbol = 'GM'"), m, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 1 || res.Rows[0][0].AsOID() != 4 {
		t.Fatalf("rows = %v", res.Rows)
	}
}

func TestEmptyResult(t *testing.T) {
	m := stockReader()
	res, err := Eval(MustParse("select s from Stock s where s.price > 1000"), m, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Empty() {
		t.Fatal("want empty")
	}
}

func TestArithmeticAndAlias(t *testing.T) {
	m := stockReader()
	res, err := Eval(MustParse("select s.price * 2 as double, s.price + 1 as inc from Stock s where s.symbol = 'F'"), m, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.Columns[0] != "double" || res.Columns[1] != "inc" {
		t.Fatalf("columns = %v", res.Columns)
	}
	if res.Rows[0][0].AsFloat() != 24 || res.Rows[0][1].AsFloat() != 13 {
		t.Fatalf("row = %v", res.Rows[0])
	}
}

func TestEventArguments(t *testing.T) {
	m := stockReader()
	args := map[string]datum.Value{"sym": datum.Str("DEC"), "limit": datum.Float(40)}
	res, err := Eval(MustParse("select s from Stock s where s.symbol = event.sym and s.price < event.limit"), m, args)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 1 || res.Rows[0][0].AsOID() != 3 {
		t.Fatalf("rows = %v", res.Rows)
	}
	// Missing event argument: predicate is unknown -> no rows, no error.
	res, err = Eval(MustParse("select s from Stock s where s.symbol = event.missing"), m, args)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Empty() {
		t.Fatal("missing event arg should yield no rows")
	}
}

func TestJoin(t *testing.T) {
	m := stockReader()
	m.add("Holding", 10, map[string]datum.Value{"symbol": datum.Str("XRX"), "qty": datum.Int(500)})
	m.add("Holding", 11, map[string]datum.Value{"symbol": datum.Str("GM"), "qty": datum.Int(50)})
	m.add("Holding", 12, map[string]datum.Value{"symbol": datum.Str("XRX"), "qty": datum.Int(100)})
	res, err := Eval(MustParse(
		"select h.qty, s.price from Stock s, Holding h where h.symbol = s.symbol and h.qty >= 100"), m, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 2 {
		t.Fatalf("rows = %v", res.Rows)
	}
	for _, row := range res.Rows {
		if row[1].AsFloat() != 50 {
			t.Fatalf("joined wrong stock: %v", row)
		}
	}
}

func TestJoinValueComputation(t *testing.T) {
	m := stockReader()
	m.add("Holding", 10, map[string]datum.Value{"symbol": datum.Str("IBM"), "qty": datum.Int(10)})
	res, err := Eval(MustParse(
		"select h.qty * s.price as value from Stock s, Holding h where h.symbol = s.symbol"), m, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 1 || res.Rows[0][0].AsFloat() != 1200 {
		t.Fatalf("rows = %v", res.Rows)
	}
}

func TestAggregates(t *testing.T) {
	m := stockReader()
	res, err := Eval(MustParse(
		"select count(*) as n, sum(s.price) as total, avg(s.price) as mean, min(s.price) as lo, max(s.price) as hi from Stock s where s.sector = 'tech'"), m, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 1 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	row := res.RowBindings(0)
	if row["n"].AsInt() != 3 || row["total"].AsFloat() != 200 ||
		row["mean"].AsFloat() != 200.0/3 || row["lo"].AsFloat() != 30 || row["hi"].AsFloat() != 120 {
		t.Fatalf("row = %v", row)
	}
}

func TestAggregateEmptyInput(t *testing.T) {
	m := stockReader()
	res, err := Eval(MustParse("select count(*) as n, sum(s.price) as total from Stock s where s.price > 9999"), m, nil)
	if err != nil {
		t.Fatal(err)
	}
	row := res.RowBindings(0)
	if row["n"].AsInt() != 0 || row["total"].AsInt() != 0 {
		t.Fatalf("row = %v", row)
	}
}

func TestAggregateExpression(t *testing.T) {
	m := stockReader()
	res, err := Eval(MustParse("select count(*) + 100 as n from Stock s"), m, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.Rows[0][0].AsInt() != 105 {
		t.Fatalf("row = %v", res.Rows[0])
	}
}

func TestCountAttribute(t *testing.T) {
	m := stockReader()
	m.add("Stock", 99, map[string]datum.Value{"symbol": datum.Str("N/A")}) // no price
	res, err := Eval(MustParse("select count(s.price) as n from Stock s"), m, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.Rows[0][0].AsInt() != 5 {
		t.Fatalf("count skips missing values: %v", res.Rows[0])
	}
}

func TestBuiltinFunctions(t *testing.T) {
	m := stockReader()
	res, err := Eval(MustParse("select lower(s.symbol) as l, upper(s.sector) as u, abs(0 - s.price) as a, len(s.symbol) as n from Stock s where s.symbol = 'XRX'"), m, nil)
	if err != nil {
		t.Fatal(err)
	}
	row := res.RowBindings(0)
	if row["l"].AsString() != "xrx" || row["u"].AsString() != "TECH" ||
		row["a"].AsFloat() != 50 || row["n"].AsInt() != 3 {
		t.Fatalf("row = %v", row)
	}
}

func TestStringConcat(t *testing.T) {
	m := stockReader()
	res, err := Eval(MustParse("select s.symbol + '-' + s.sector as tag from Stock s where s.symbol = 'GM'"), m, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.Rows[0][0].AsString() != "GM-auto" {
		t.Fatalf("row = %v", res.Rows[0])
	}
}

func TestBooleanLogicAndNot(t *testing.T) {
	m := stockReader()
	res, err := Eval(MustParse("select s from Stock s where not (s.sector = 'tech') or s.price > 100"), m, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 3 { // GM, F (auto) + IBM (>100)
		t.Fatalf("rows = %v", res.Rows)
	}
}

func TestDivisionByZero(t *testing.T) {
	m := stockReader()
	if _, err := Eval(MustParse("select s.price / 0 from Stock s"), m, nil); err == nil {
		t.Fatal("division by zero should error")
	}
	if _, err := Eval(MustParse("select 5 % 0 from Stock s"), m, nil); err == nil {
		t.Fatal("modulo by zero should error")
	}
}

func TestTypeErrors(t *testing.T) {
	m := stockReader()
	if _, err := Eval(MustParse("select s.price + s.symbol from Stock s"), m, nil); err == nil {
		t.Fatal("float + string should error")
	}
	if _, err := Eval(MustParse("select s from Stock s where s.price < s.symbol"), m, nil); err == nil {
		t.Fatal("incomparable < should error")
	}
	// Equality across kinds is just false, not an error.
	res, err := Eval(MustParse("select s from Stock s where s.price = s.symbol"), m, nil)
	if err != nil || !res.Empty() {
		t.Fatalf("cross-kind equality: %v %v", res, err)
	}
}

func TestIndexProbeUsed(t *testing.T) {
	m := stockReader()
	m.indexed["Stock.price"] = true
	res, err := Eval(MustParse("select s from Stock s where s.price >= 50"), m, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 2 {
		t.Fatalf("rows = %v", res.Rows)
	}
	if m.probes != 1 || m.scans != 0 {
		t.Fatalf("probes=%d scans=%d; index not used", m.probes, m.scans)
	}
}

func TestIndexProbeWithEventConstant(t *testing.T) {
	m := stockReader()
	m.indexed["Stock.symbol"] = true
	args := map[string]datum.Value{"sym": datum.Str("IBM")}
	res, err := Eval(MustParse("select s from Stock s where s.symbol = event.sym"), m, args)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 1 || m.probes != 1 {
		t.Fatalf("rows=%d probes=%d", len(res.Rows), m.probes)
	}
}

func TestIndexResidualRecheck(t *testing.T) {
	// Flipped comparison: constant on the left.
	m := stockReader()
	m.indexed["Stock.price"] = true
	res, err := Eval(MustParse("select s from Stock s where 50 <= s.price"), m, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 2 {
		t.Fatalf("rows = %v", res.Rows)
	}
}

func TestNoIndexFallsBackToScan(t *testing.T) {
	m := stockReader()
	res, err := Eval(MustParse("select s from Stock s where s.price >= 50"), m, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 2 || m.scans != 1 {
		t.Fatalf("rows=%d scans=%d", len(res.Rows), m.scans)
	}
}

func TestFootprint(t *testing.T) {
	q := MustParse("select s.symbol from Stock s, Holding h where s.price > event.p and h.symbol = s.symbol")
	fp := q.ComputeFootprint()
	if len(fp.Classes) != 2 {
		t.Fatalf("classes = %v", fp.Classes)
	}
	stockAttrs := fp.Classes["Stock"]
	if _, ok := stockAttrs["symbol"]; !ok {
		t.Error("Stock.symbol missing from footprint")
	}
	if _, ok := stockAttrs["price"]; !ok {
		t.Error("Stock.price missing from footprint")
	}
	if _, ok := fp.Classes["Holding"]["symbol"]; !ok {
		t.Error("Holding.symbol missing")
	}
	if !reflect.DeepEqual(fp.EventArgs, []string{"p"}) {
		t.Errorf("EventArgs = %v", fp.EventArgs)
	}
}

func TestRowBindings(t *testing.T) {
	m := stockReader()
	res, err := Eval(MustParse("select s.symbol as sym, s.price as p from Stock s where s.symbol = 'XRX'"), m, nil)
	if err != nil {
		t.Fatal(err)
	}
	b := res.RowBindings(0)
	if b["sym"].AsString() != "XRX" || b["p"].AsFloat() != 50 {
		t.Fatalf("bindings = %v", b)
	}
}

func TestParseExprStandalone(t *testing.T) {
	e, err := ParseExpr("event.price * 1.5 + 2")
	if err != nil {
		t.Fatal(err)
	}
	ev := &evaluator{event: map[string]datum.Value{"price": datum.Float(10)}}
	v, err := ev.eval(e)
	if err != nil {
		t.Fatal(err)
	}
	if v.AsFloat() != 17 {
		t.Fatalf("value = %v", v)
	}
	if _, err := ParseExpr("1 + "); err == nil {
		t.Fatal("dangling expression should fail")
	}
	if _, err := ParseExpr("1 + 2 extra"); err == nil {
		t.Fatal("trailing tokens should fail")
	}
}

func TestCanonicalStringsAreShared(t *testing.T) {
	// Same query text modulo whitespace must canonicalize identically
	// (the condition graph keys on this).
	a := MustParse("select s from Stock s where s.price >= 50")
	b := MustParse("select  s  from Stock s where (s.price>=50)")
	if a.String() != b.String() {
		t.Fatalf("canonical forms differ: %q vs %q", a.String(), b.String())
	}
}

func TestLargeScanOrder(t *testing.T) {
	m := newMemReader()
	for i := 0; i < 500; i++ {
		m.add("N", datum.OID(i+1), map[string]datum.Value{"i": datum.Int(int64(i))})
	}
	res, err := Eval(MustParse("select n.i from N n where n.i % 100 = 0"), m, nil)
	if err != nil {
		t.Fatal(err)
	}
	var got []string
	for _, r := range res.Rows {
		got = append(got, fmt.Sprint(r[0].AsInt()))
	}
	if strings.Join(got, ",") != "0,100,200,300,400" {
		t.Fatalf("rows = %v", got)
	}
}

func TestOrderBy(t *testing.T) {
	m := stockReader()
	res, err := Eval(MustParse("select s.symbol from Stock s order by s.price"), m, nil)
	if err != nil {
		t.Fatal(err)
	}
	var got []string
	for _, r := range res.Rows {
		got = append(got, r[0].AsString())
	}
	if strings.Join(got, ",") != "F,DEC,GM,XRX,IBM" {
		t.Fatalf("asc order = %v", got)
	}
	res, err = Eval(MustParse("select s.symbol from Stock s order by s.price desc limit 2"), m, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 2 || res.Rows[0][0].AsString() != "IBM" || res.Rows[1][0].AsString() != "XRX" {
		t.Fatalf("desc limit = %v", res.Rows)
	}
}

func TestOrderByMultipleKeys(t *testing.T) {
	m := stockReader()
	res, err := Eval(MustParse(
		"select s.symbol from Stock s order by s.sector, s.price desc"), m, nil)
	if err != nil {
		t.Fatal(err)
	}
	var got []string
	for _, r := range res.Rows {
		got = append(got, r[0].AsString())
	}
	// auto (GM 45, F 12 desc) then tech (IBM 120, XRX 50, DEC 30 desc)
	if strings.Join(got, ",") != "GM,F,IBM,XRX,DEC" {
		t.Fatalf("multi-key order = %v", got)
	}
}

func TestLimitWithoutOrder(t *testing.T) {
	m := stockReader()
	res, err := Eval(MustParse("select s from Stock s limit 3"), m, nil)
	if err != nil || len(res.Rows) != 3 {
		t.Fatalf("rows = %d (%v)", len(res.Rows), err)
	}
	res, err = Eval(MustParse("select s from Stock s limit 0"), m, nil)
	if err != nil || len(res.Rows) != 0 {
		t.Fatalf("limit 0 rows = %d (%v)", len(res.Rows), err)
	}
}

func TestOrderByCanonicalRoundTrip(t *testing.T) {
	src := "select s from Stock s where (s.price > 1) order by s.price desc, s.symbol limit 5"
	q := MustParse(src)
	q2 := MustParse(q.String())
	if q.String() != q2.String() {
		t.Fatalf("canonical: %q vs %q", q.String(), q2.String())
	}
}

func TestOrderByErrors(t *testing.T) {
	bad := []string{
		"select s from Stock s order s.price",           // missing by
		"select s from Stock s order by",                // missing expr
		"select s from Stock s limit",                   // missing count
		"select s from Stock s limit x",                 // non-numeric
		"select count(*) from Stock s order by s.price", // aggregate + order
		"select s from Stock s order by x.price",        // undeclared var
	}
	for _, src := range bad {
		if _, err := Parse(src); err == nil {
			t.Errorf("Parse(%q) should fail", src)
		}
	}
}

func TestUnaryOperators(t *testing.T) {
	m := stockReader()
	res, err := Eval(MustParse("select -s.price as neg, -s.price * -1 as pos from Stock s where s.symbol = 'GM'"), m, nil)
	if err != nil {
		t.Fatal(err)
	}
	b := res.RowBindings(0)
	if b["neg"].AsFloat() != -45 || b["pos"].AsFloat() != 45 {
		t.Fatalf("row = %v", b)
	}
	// Negating an int stays an int.
	m.add("N", 50, map[string]datum.Value{"v": datum.Int(7)})
	res, err = Eval(MustParse("select -n.v as x from N n"), m, nil)
	if err != nil || res.Rows[0][0].Kind() != datum.KindInt || res.Rows[0][0].AsInt() != -7 {
		t.Fatalf("int negation = %v (%v)", res.Rows[0][0], err)
	}
	// Negating a string errors.
	if _, err := Eval(MustParse("select -s.symbol from Stock s"), m, nil); err == nil {
		t.Fatal("negating a string should error")
	}
	// not applied to a non-bool errors.
	if _, err := Eval(MustParse("select not s.price from Stock s"), m, nil); err == nil {
		t.Fatal("not of a float should error")
	}
}

func TestScalarFunctionErrors(t *testing.T) {
	m := stockReader()
	bad := []string{
		"select abs(s.symbol) from Stock s", // abs of string
		"select nosuchfn(s.price) from Stock s",
		"select abs(s.price, s.price) from Stock s", // arity
	}
	for _, src := range bad {
		if _, err := Eval(MustParse(src), m, nil); err == nil {
			t.Errorf("Eval(%q) should fail", src)
		}
	}
}

func TestEvalExprDereferencesThroughReader(t *testing.T) {
	m := stockReader()
	e, err := ParseExpr("s.price * 2")
	if err != nil {
		t.Fatal(err)
	}
	// Bind s to the GM object's OID value; EvalExpr must fetch its
	// attrs through the reader.
	v, err := EvalExpr(e, m, map[string]datum.Value{"s": datum.ID(4)}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if v.AsFloat() != 90 {
		t.Fatalf("deref = %v", v)
	}
	// Unbound variable: evaluates to null (action semantics).
	v, err = EvalExpr(e, m, nil, nil)
	if err != nil || !v.IsNull() {
		t.Fatalf("unbound = %v (%v)", v, err)
	}
	// Dereferencing a non-OID binding errors.
	if _, err := EvalExpr(e, m, map[string]datum.Value{"s": datum.Int(3)}, nil); err == nil {
		t.Fatal("deref of non-OID should error")
	}
	// Dereferencing without a reader errors.
	if _, err := EvalExpr(e, nil, map[string]datum.Value{"s": datum.ID(4)}, nil); err == nil {
		t.Fatal("deref without reader should error")
	}
	// Functions and comparisons over resolved bindings work.
	e2, _ := ParseExpr("upper(sym) + '!'")
	v, err = EvalExpr(e2, nil, map[string]datum.Value{"sym": datum.Str("gm")}, nil)
	if err != nil || v.AsString() != "GM!" {
		t.Fatalf("call over binding = %v (%v)", v, err)
	}
	e3, _ := ParseExpr("qty >= 100 and event.go")
	v, err = EvalExpr(e3, nil,
		map[string]datum.Value{"qty": datum.Int(500)},
		map[string]datum.Value{"go": datum.Bool(true)})
	if err != nil || !v.AsBool() {
		t.Fatalf("boolean over bindings = %v (%v)", v, err)
	}
}

func TestAggregateOverExpression(t *testing.T) {
	m := stockReader()
	res, err := Eval(MustParse("select sum(s.price * 2) as d from Stock s where s.sector = 'auto'"), m, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.Rows[0][0].AsFloat() != 114 { // (45+12)*2
		t.Fatalf("sum of expr = %v", res.Rows[0][0])
	}
	// min/max over strings.
	res, err = Eval(MustParse("select min(s.symbol) as lo, max(s.symbol) as hi from Stock s"), m, nil)
	if err != nil {
		t.Fatal(err)
	}
	b := res.RowBindings(0)
	if b["lo"].AsString() != "DEC" || b["hi"].AsString() != "XRX" {
		t.Fatalf("string min/max = %v", b)
	}
	// avg over empty input is null.
	res, err = Eval(MustParse("select avg(s.price) as a from Stock s where s.price > 1e9"), m, nil)
	if err != nil || !res.Rows[0][0].IsNull() {
		t.Fatalf("avg(empty) = %v (%v)", res.Rows[0][0], err)
	}
}

func TestIdentityPinAvoidsScan(t *testing.T) {
	// `s = <oid>` conditions fetch exactly one object instead of
	// scanning the extent — the shape of every "the modified object"
	// rule condition (e.g. the SAA display rule).
	m := stockReader()
	args := map[string]datum.Value{"oid": datum.ID(2)}
	res, err := Eval(MustParse("select s.symbol from Stock s where s = event.oid"), m, args)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 1 || res.Rows[0][0].AsString() != "IBM" {
		t.Fatalf("rows = %v", res.Rows)
	}
	if m.scans != 0 {
		t.Fatalf("scans = %d; identity pin must not scan", m.scans)
	}
	// Flipped form and extra residual conjuncts work too.
	res, err = Eval(MustParse("select s from Stock s where event.oid = s and s.price > 1000"), m, args)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Empty() || m.scans != 0 {
		t.Fatalf("residual over pin: rows=%d scans=%d", len(res.Rows), m.scans)
	}
	// A missing object yields no rows, no error.
	res, err = Eval(MustParse("select s from Stock s where s = event.oid"), m,
		map[string]datum.Value{"oid": datum.ID(999)})
	if err != nil || !res.Empty() {
		t.Fatalf("missing object: rows=%d err=%v", len(res.Rows), err)
	}
	// Pinning in a join still scans the other class only.
	m.add("Holding", 10, map[string]datum.Value{"symbol": datum.Str("IBM"), "qty": datum.Int(5)})
	res, err = Eval(MustParse(
		"select h.qty from Stock s, Holding h where s = event.oid and h.symbol = s.symbol"), m, args)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 1 || res.Rows[0][0].AsInt() != 5 {
		t.Fatalf("join rows = %v", res.Rows)
	}
	if m.scans != 1 { // only the Holding scan
		t.Fatalf("scans = %d, want 1", m.scans)
	}
}
