package lock

import (
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// fakeTopology is a parent map implementing Topology for tests.
type fakeTopology struct {
	mu     sync.Mutex
	parent map[TxnID]TxnID
}

func newTopo() *fakeTopology { return &fakeTopology{parent: map[TxnID]TxnID{}} }

func (f *fakeTopology) setParent(child, parent TxnID) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.parent[child] = parent
}

func (f *fakeTopology) IsAncestorOrSelf(anc, desc TxnID) bool {
	f.mu.Lock()
	defer f.mu.Unlock()
	for {
		if anc == desc {
			return true
		}
		p, ok := f.parent[desc]
		if !ok {
			return false
		}
		desc = p
	}
}

func TestSharedCompatible(t *testing.T) {
	m := NewManager(newTopo())
	if err := m.Acquire(1, "a", Shared); err != nil {
		t.Fatal(err)
	}
	if err := m.Acquire(2, "a", Shared); err != nil {
		t.Fatal(err)
	}
	if got, ok := m.HeldMode(1, "a"); !ok || got != Shared {
		t.Fatalf("HeldMode = %v, %v", got, ok)
	}
}

func TestExclusiveBlocksUnrelated(t *testing.T) {
	m := NewManager(newTopo())
	if err := m.Acquire(1, "a", Exclusive); err != nil {
		t.Fatal(err)
	}
	if m.TryAcquire(2, "a", Shared) {
		t.Fatal("unrelated txn acquired over X lock")
	}
	if m.TryAcquire(2, "a", Exclusive) {
		t.Fatal("unrelated txn acquired X over X lock")
	}
	// Blocked Acquire is granted once the holder releases.
	done := make(chan error, 1)
	go func() { done <- m.Acquire(2, "a", Exclusive) }()
	time.Sleep(10 * time.Millisecond)
	select {
	case err := <-done:
		t.Fatalf("acquire returned early: %v", err)
	default:
	}
	m.ReleaseAll(1)
	if err := <-done; err != nil {
		t.Fatal(err)
	}
}

func TestMossAncestorRule(t *testing.T) {
	topo := newTopo()
	m := NewManager(topo)
	// 1 is top-level, 2 is its child, 3 is unrelated.
	topo.setParent(2, 1)
	if err := m.Acquire(1, "a", Exclusive); err != nil {
		t.Fatal(err)
	}
	// A child may acquire over its (suspended) ancestor's lock.
	if err := m.Acquire(2, "a", Exclusive); err != nil {
		t.Fatalf("child blocked by ancestor's lock: %v", err)
	}
	// But a stranger may not — even over the child's hold.
	if m.TryAcquire(3, "a", Shared) {
		t.Fatal("stranger acquired over X locks")
	}
}

func TestGrandchildOverGrandparent(t *testing.T) {
	topo := newTopo()
	m := NewManager(topo)
	topo.setParent(2, 1)
	topo.setParent(3, 2)
	if err := m.Acquire(1, "a", Exclusive); err != nil {
		t.Fatal(err)
	}
	if err := m.Acquire(3, "a", Exclusive); err != nil {
		t.Fatalf("grandchild should pass: %v", err)
	}
}

func TestSiblingConflict(t *testing.T) {
	topo := newTopo()
	m := NewManager(topo)
	topo.setParent(2, 1)
	topo.setParent(3, 1)
	if err := m.Acquire(2, "a", Exclusive); err != nil {
		t.Fatal(err)
	}
	// Sibling is NOT an ancestor: must block.
	if m.TryAcquire(3, "a", Exclusive) {
		t.Fatal("sibling acquired conflicting lock")
	}
}

func TestUpgrade(t *testing.T) {
	m := NewManager(newTopo())
	if err := m.Acquire(1, "a", Shared); err != nil {
		t.Fatal(err)
	}
	if err := m.Acquire(1, "a", Exclusive); err != nil {
		t.Fatalf("lone-holder upgrade failed: %v", err)
	}
	if got, _ := m.HeldMode(1, "a"); got != Exclusive {
		t.Fatalf("mode after upgrade = %v", got)
	}
	// Downgrade requests are no-ops: mode stays Exclusive.
	if err := m.Acquire(1, "a", Shared); err != nil {
		t.Fatal(err)
	}
	if got, _ := m.HeldMode(1, "a"); got != Exclusive {
		t.Fatal("re-acquiring Shared must not weaken the held mode")
	}
}

func TestUpgradeBlockedByOtherReader(t *testing.T) {
	m := NewManager(newTopo())
	m.Acquire(1, "a", Shared)
	m.Acquire(2, "a", Shared)
	if m.TryAcquire(1, "a", Exclusive) {
		t.Fatal("upgrade granted despite concurrent reader")
	}
	m.ReleaseAll(2)
	if err := m.Acquire(1, "a", Exclusive); err != nil {
		t.Fatal(err)
	}
}

func TestUpgradeDeadlock(t *testing.T) {
	// Two readers both try to upgrade: classic conversion deadlock.
	m := NewManager(newTopo())
	m.Acquire(1, "a", Shared)
	m.Acquire(2, "a", Shared)
	errs := make(chan error, 2)
	go func() { errs <- m.Acquire(1, "a", Exclusive) }()
	time.Sleep(20 * time.Millisecond) // let txn 1 block
	go func() { errs <- m.Acquire(2, "a", Exclusive) }()
	var deadlocked, granted int
	for i := 0; i < 1; i++ { // at least the second requester must fail fast
		select {
		case err := <-errs:
			if errors.Is(err, ErrDeadlock) {
				deadlocked++
				// Simulate abort of the victim so the other side proceeds.
				if deadlocked == 1 {
					m.ReleaseAll(2)
					m.ReleaseAll(1)
				}
			} else if err == nil {
				granted++
			} else {
				t.Fatalf("unexpected error: %v", err)
			}
		case <-time.After(2 * time.Second):
			t.Fatal("neither requester resolved: undetected deadlock")
		}
	}
	if deadlocked == 0 {
		t.Fatal("conversion deadlock not detected")
	}
}

func TestTwoItemDeadlock(t *testing.T) {
	m := NewManager(newTopo())
	m.Acquire(1, "a", Exclusive)
	m.Acquire(2, "b", Exclusive)
	done1 := make(chan error, 1)
	go func() { done1 <- m.Acquire(1, "b", Exclusive) }()
	time.Sleep(20 * time.Millisecond)
	err := m.Acquire(2, "a", Exclusive) // closes the cycle
	if !errors.Is(err, ErrDeadlock) {
		t.Fatalf("want ErrDeadlock, got %v", err)
	}
	// Victim aborts; survivor proceeds.
	m.ReleaseAll(2)
	if err := <-done1; err != nil {
		t.Fatalf("survivor: %v", err)
	}
}

func TestNestedDeadlockAcrossTrees(t *testing.T) {
	// Top-level A(1) holds a; top-level B(2) holds b. A's child (3)
	// wants b; B's child (4) wants a. The cycle runs through the
	// suspended parents and must be detected via delegation edges.
	topo := newTopo()
	m := NewManager(topo)
	topo.setParent(3, 1)
	topo.setParent(4, 2)
	m.Acquire(1, "a", Exclusive)
	m.Acquire(2, "b", Exclusive)
	done := make(chan error, 1)
	go func() { done <- m.Acquire(3, "b", Exclusive) }()
	time.Sleep(20 * time.Millisecond)
	err := m.Acquire(4, "a", Exclusive)
	if !errors.Is(err, ErrDeadlock) {
		t.Fatalf("cross-tree nested deadlock undetected: %v", err)
	}
	m.ReleaseAll(4)
	m.ReleaseAll(2)
	if err := <-done; err != nil {
		t.Fatalf("survivor child: %v", err)
	}
}

func TestTransferToParentUnblocksSibling(t *testing.T) {
	topo := newTopo()
	m := NewManager(topo)
	topo.setParent(2, 1)
	topo.setParent(3, 1)
	m.Acquire(2, "a", Exclusive)
	done := make(chan error, 1)
	go func() { done <- m.Acquire(3, "a", Exclusive) }()
	time.Sleep(20 * time.Millisecond)
	// Sibling 2 commits: its lock moves to parent 1, which IS an
	// ancestor of 3, so 3 becomes grantable.
	m.TransferToParent(2, 1)
	if err := <-done; err != nil {
		t.Fatal(err)
	}
	if _, held := m.HeldMode(2, "a"); held {
		t.Fatal("child still holds after transfer")
	}
	if got, ok := m.HeldMode(1, "a"); !ok || got != Exclusive {
		t.Fatalf("parent hold after transfer = %v, %v", got, ok)
	}
}

func TestTransferKeepsStrongestMode(t *testing.T) {
	topo := newTopo()
	m := NewManager(topo)
	topo.setParent(2, 1)
	m.Acquire(1, "a", Shared)
	m.Acquire(2, "a", Exclusive)
	m.TransferToParent(2, 1)
	if got, _ := m.HeldMode(1, "a"); got != Exclusive {
		t.Fatalf("parent mode = %v, want X", got)
	}
}

func TestCancelWakesWaiter(t *testing.T) {
	m := NewManager(newTopo())
	m.Acquire(1, "a", Exclusive)
	done := make(chan error, 1)
	go func() { done <- m.Acquire(2, "a", Exclusive) }()
	time.Sleep(20 * time.Millisecond)
	m.Cancel(2)
	err := <-done
	if !errors.Is(err, ErrCanceled) {
		t.Fatalf("want ErrCanceled, got %v", err)
	}
	// ReleaseAll clears the cancel mark; tx 2 can lock again later.
	m.ReleaseAll(2)
	m.ReleaseAll(1)
	if err := m.Acquire(2, "a", Exclusive); err != nil {
		t.Fatalf("after clear: %v", err)
	}
}

func TestReleaseAllDropsEverything(t *testing.T) {
	m := NewManager(newTopo())
	m.Acquire(1, "a", Exclusive)
	m.Acquire(1, "b", Shared)
	if m.HeldItems(1) != 2 {
		t.Fatalf("HeldItems = %d", m.HeldItems(1))
	}
	m.ReleaseAll(1)
	if m.HeldItems(1) != 0 {
		t.Fatal("locks survived ReleaseAll")
	}
}

func TestStats(t *testing.T) {
	m := NewManager(newTopo())
	m.Acquire(1, "a", Exclusive)
	go func() {
		time.Sleep(20 * time.Millisecond)
		m.ReleaseAll(1)
	}()
	m.Acquire(2, "a", Exclusive)
	s := m.Stats()
	if s.Acquired < 2 || s.Waited < 1 {
		t.Fatalf("stats = %+v", s)
	}
}

func TestConcurrentStress(t *testing.T) {
	// Many top-level transactions hammer a small item space with
	// deterministic lock ordering (no deadlocks possible); every
	// acquire must eventually succeed and counters must balance.
	m := NewManager(newTopo())
	const workers = 16
	const rounds = 200
	items := []Item{"i0", "i1", "i2", "i3"}
	var wg sync.WaitGroup
	var acquired atomic.Int64
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			tx := TxnID(w + 1)
			for r := 0; r < rounds; r++ {
				// Ascending item order prevents cycles.
				for _, it := range items {
					if err := m.Acquire(tx, it, Exclusive); err != nil {
						t.Errorf("worker %d: %v", w, err)
						return
					}
					acquired.Add(1)
				}
				m.ReleaseAll(tx)
			}
		}(w)
	}
	wg.Wait()
	if got := acquired.Load(); got != workers*rounds*int64(len(items)) {
		t.Fatalf("acquired %d", got)
	}
}

func TestSharedThenManyReaders(t *testing.T) {
	m := NewManager(newTopo())
	var wg sync.WaitGroup
	for i := 1; i <= 50; i++ {
		wg.Add(1)
		go func(tx TxnID) {
			defer wg.Done()
			if err := m.Acquire(tx, "hot", Shared); err != nil {
				t.Error(err)
			}
		}(TxnID(i))
	}
	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	select {
	case <-done:
	case <-time.After(2 * time.Second):
		t.Fatal("readers should never block each other")
	}
}
