package lock

// Property/invariant stress: under random concurrent workloads, the
// Moss invariant must hold at every grant — no two conflicting
// holders unless one is an ancestor of the other.

import (
	"errors"
	"math/rand"
	"sync"
	"testing"
	"time"
)

// checkMossInvariant scans the lock table for conflicting holders
// that are not ancestor-related. Each stripe is checked under its own
// mutex; the invariant is per-item, so a globally consistent view is
// not needed.
func checkMossInvariant(t *testing.T, m *Manager, topo Topology) {
	t.Helper()
	for i := range m.stripes {
		st := &m.stripes[i]
		st.mu.Lock()
		checkStripeMossInvariant(t, st, topo)
		st.mu.Unlock()
	}
}

func checkStripeMossInvariant(t *testing.T, st *stripe, topo Topology) {
	t.Helper()
	for item, e := range st.locks {
		holders := make([]TxnID, 0, len(e.holders))
		for h := range e.holders {
			holders = append(holders, h)
		}
		for i := 0; i < len(holders); i++ {
			for j := i + 1; j < len(holders); j++ {
				a, b := holders[i], holders[j]
				if !conflicts(e.holders[a], e.holders[b]) {
					continue
				}
				if !topo.IsAncestorOrSelf(a, b) && !topo.IsAncestorOrSelf(b, a) {
					t.Errorf("item %q: conflicting non-ancestor holders %d(%s) and %d(%s)",
						item, a, e.holders[a], b, e.holders[b])
				}
			}
		}
	}
}

type stressTopo struct {
	mu     sync.Mutex
	parent map[TxnID]TxnID
}

func (s *stressTopo) setParent(c, p TxnID) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.parent[c] = p
}

func (s *stressTopo) IsAncestorOrSelf(anc, desc TxnID) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	for {
		if anc == desc {
			return true
		}
		p, ok := s.parent[desc]
		if !ok {
			return false
		}
		desc = p
	}
}

func TestMossInvariantUnderRandomWorkload(t *testing.T) {
	topo := &stressTopo{parent: map[TxnID]TxnID{}}
	m := NewManager(topo)
	items := []Item{"a", "b", "c", "d", "e"}

	const workers = 8
	const rounds = 300
	var wg sync.WaitGroup
	var nextID struct {
		sync.Mutex
		id TxnID
	}
	nextID.id = 1
	alloc := func(parent TxnID) TxnID {
		nextID.Lock()
		id := nextID.id
		nextID.id++
		nextID.Unlock()
		if parent != 0 {
			topo.setParent(id, parent)
		}
		return id
	}

	var checkMu sync.Mutex
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(w)))
			for r := 0; r < rounds; r++ {
				top := alloc(0)
				// Random lock pattern in ascending item order, random
				// modes. Ascending order prevents top-vs-top cycles,
				// but the children below lock out of order over their
				// suspended parents, so cross-worker deadlocks are
				// still possible (childA→topB→childB→topA); a detected
				// deadlock is a legitimate outcome — release and move
				// on — while any other error is a failure.
				held, aborted := false, false
				for _, item := range items {
					if rng.Intn(2) == 0 {
						continue
					}
					mode := Shared
					if rng.Intn(3) == 0 {
						mode = Exclusive
					}
					if err := m.Acquire(top, item, mode); err != nil {
						if !errors.Is(err, ErrDeadlock) {
							t.Errorf("acquire: %v", err)
							return
						}
						aborted = true
						break
					}
					held = true
				}
				// Sometimes spawn a child that locks over the parent.
				if !aborted && held && rng.Intn(2) == 0 {
					child := alloc(top)
					if err := m.Acquire(child, items[rng.Intn(len(items))], Exclusive); err != nil {
						if !errors.Is(err, ErrDeadlock) {
							t.Errorf("child acquire: %v", err)
							return
						}
						m.ReleaseAll(child)
					} else if rng.Intn(2) == 0 {
						m.TransferToParent(child, top)
					} else {
						m.ReleaseAll(child)
					}
				}
				// Periodic invariant check (serialized; the check
				// takes the manager lock).
				if r%50 == 0 {
					checkMu.Lock()
					checkMossInvariant(t, m, topo)
					checkMu.Unlock()
				}
				m.ReleaseAll(top)
			}
		}(w)
	}
	wg.Wait()
	checkMossInvariant(t, m, topo)
	// Everything released at the end.
	remaining := 0
	for i := range m.stripes {
		st := &m.stripes[i]
		st.mu.Lock()
		remaining += len(st.locks)
		st.mu.Unlock()
	}
	if remaining != 0 {
		t.Fatalf("%d items still locked after all releases", remaining)
	}
}

func TestDeadlockStressResolves(t *testing.T) {
	// Workers locking two random items in RANDOM order: deadlocks
	// happen; every one must be detected (no permanent hang) and the
	// system must drain.
	topo := &stressTopo{parent: map[TxnID]TxnID{}}
	m := NewManager(topo)
	items := []Item{"x", "y", "z"}
	const workers = 6
	const rounds = 150
	var wg sync.WaitGroup
	var id struct {
		sync.Mutex
		n TxnID
	}
	id.n = 1
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(w + 100)))
			for r := 0; r < rounds; r++ {
				id.Lock()
				tx := id.n
				id.n++
				id.Unlock()
				a, b := rng.Intn(len(items)), rng.Intn(len(items))
				if err := m.Acquire(tx, items[a], Exclusive); err != nil {
					m.ReleaseAll(tx)
					continue // deadlock victim: retry next round
				}
				if a != b {
					if err := m.Acquire(tx, items[b], Exclusive); err != nil {
						m.ReleaseAll(tx)
						continue
					}
				}
				m.ReleaseAll(tx)
			}
		}(w)
	}
	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	select {
	case <-done:
	case <-time.After(30 * time.Second):
		t.Fatal("workers hung: undetected deadlock")
	}
	if m.Stats().Deadlocks == 0 {
		t.Log("note: no deadlocks occurred this run (schedule-dependent)")
	}
}
