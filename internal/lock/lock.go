// Package lock implements the lock manager for the nested transaction
// model of Moss as used by HiPAC (§3.1, §3.3 of the paper).
//
// The central rule is Moss's: a transaction may acquire a lock in mode
// m if and only if every holder of a conflicting mode is an ancestor
// of the requester. When a subtransaction commits, its locks are
// inherited by (transferred to) its parent; when it aborts they are
// released. Because a parent is suspended while its children run, an
// ancestor-held lock can never be in active use by a concurrent
// computation, which is what makes the rule safe.
//
// Deadlocks are detected at block time by a cycle search over the
// waits-for graph. The graph has two edge kinds: a waiter points at
// each conflicting non-ancestor holder of the item it wants, and a
// suspended holder points at each of its waiting descendants (the
// descendant is the computation actually running on the holder's
// behalf, so the holder cannot release anything until the descendant
// proceeds). The requester that closes a cycle receives ErrDeadlock.
package lock

import (
	"errors"
	"fmt"
	"sync"

	"repro/internal/obs"
)

// TxnID identifies a transaction. ID 0 is reserved for "committed
// top-level state" and never holds locks.
type TxnID uint64

// Mode is a lock mode.
type Mode int

// Lock modes in increasing strength.
const (
	// Shared permits concurrent readers.
	Shared Mode = iota
	// Exclusive permits a single writer.
	Exclusive
)

// String returns "S" or "X".
func (m Mode) String() string {
	if m == Exclusive {
		return "X"
	}
	return "S"
}

// conflicts reports whether two modes cannot be held concurrently by
// unrelated transactions.
func conflicts(a, b Mode) bool { return a == Exclusive || b == Exclusive }

// Item names a lockable resource ("obj/#12", "class/Stock",
// "rule/#7", ...). Naming conventions live in the layers above.
type Item string

// Topology lets the lock manager ask about transaction ancestry. The
// transaction manager implements it.
type Topology interface {
	// IsAncestorOrSelf reports whether anc is desc or a (transitive)
	// parent of desc.
	IsAncestorOrSelf(anc, desc TxnID) bool
}

// Errors returned by Acquire.
var (
	ErrDeadlock = errors.New("lock: deadlock detected")
	ErrCanceled = errors.New("lock: wait canceled")
)

// Stats counts lock-manager activity; read with Manager.Stats.
type Stats struct {
	Acquired  uint64 // grants, including re-grants and upgrades
	Waited    uint64 // times a request had to block
	Deadlocks uint64 // requests refused with ErrDeadlock
}

type waitRecord struct {
	item Item
	mode Mode
}

type entry struct {
	holders map[TxnID]Mode // strongest mode held by each transaction
}

// Manager is the lock manager. It is safe for concurrent use.
type Manager struct {
	mu       sync.Mutex
	cond     *sync.Cond
	top      Topology
	locks    map[Item]*entry
	waits    map[TxnID]waitRecord // who is blocked, and on what
	canceled map[TxnID]bool
	stats    Stats
	obsm     *obs.Metrics // nil-safe wait-latency observer
}

// SetObserver installs a wait-latency observer. Not safe to call
// concurrently with lock processing.
func (m *Manager) SetObserver(o *obs.Metrics) { m.obsm = o }

// NewManager returns a lock manager that resolves ancestry through
// top.
func NewManager(top Topology) *Manager {
	m := &Manager{
		top:      top,
		locks:    map[Item]*entry{},
		waits:    map[TxnID]waitRecord{},
		canceled: map[TxnID]bool{},
	}
	m.cond = sync.NewCond(&m.mu)
	return m
}

// Acquire blocks until tx holds item in at least the requested mode,
// a deadlock is detected (ErrDeadlock), or the wait is canceled
// (ErrCanceled). Re-acquiring an already-held mode is a cheap no-op;
// requesting Exclusive over a held Shared is an upgrade and follows
// the same conflict rule.
func (m *Manager) Acquire(tx TxnID, item Item, mode Mode) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	// waitTimer stays zero (a no-op) unless the request blocks; it
	// then measures block-to-resolution, whatever the outcome.
	var waitTimer obs.Timer
	for {
		if m.canceled[tx] {
			delete(m.waits, tx)
			waitTimer.Done()
			return fmt.Errorf("%w (txn %d, item %q)", ErrCanceled, tx, item)
		}
		e := m.locks[item]
		if e == nil {
			e = &entry{holders: map[TxnID]Mode{}}
			m.locks[item] = e
		}
		if m.grantable(e, tx, mode) {
			if cur, ok := e.holders[tx]; !ok || mode > cur {
				e.holders[tx] = mode
			}
			delete(m.waits, tx)
			m.stats.Acquired++
			waitTimer.Done()
			return nil
		}
		if _, alreadyWaiting := m.waits[tx]; !alreadyWaiting {
			m.stats.Waited++
			waitTimer = m.obsm.Timer(obs.HLockWait)
		}
		m.waits[tx] = waitRecord{item: item, mode: mode}
		if m.inCycle(tx) {
			delete(m.waits, tx)
			m.stats.Deadlocks++
			waitTimer.Done()
			return fmt.Errorf("%w (txn %d, item %q, mode %s)", ErrDeadlock, tx, item, mode)
		}
		m.cond.Wait()
	}
}

// TryAcquire attempts the grant without blocking, reporting success.
func (m *Manager) TryAcquire(tx TxnID, item Item, mode Mode) bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	e := m.locks[item]
	if e == nil {
		e = &entry{holders: map[TxnID]Mode{}}
		m.locks[item] = e
	}
	if !m.grantable(e, tx, mode) {
		return false
	}
	if cur, ok := e.holders[tx]; !ok || mode > cur {
		e.holders[tx] = mode
	}
	m.stats.Acquired++
	return true
}

// grantable implements Moss's rule. Caller holds m.mu.
func (m *Manager) grantable(e *entry, tx TxnID, mode Mode) bool {
	for h, hm := range e.holders {
		if h == tx {
			continue
		}
		if conflicts(hm, mode) && !m.top.IsAncestorOrSelf(h, tx) {
			return false
		}
	}
	return true
}

// inCycle reports whether tx participates in a waits-for cycle.
// Caller holds m.mu.
func (m *Manager) inCycle(start TxnID) bool {
	visited := map[TxnID]bool{}
	var visit func(tx TxnID) bool
	visit = func(tx TxnID) bool {
		if visited[tx] {
			return false
		}
		visited[tx] = true
		for _, next := range m.blockers(tx) {
			if next == start || visit(next) {
				return true
			}
		}
		return false
	}
	for _, next := range m.blockers(start) {
		if next == start || visit(next) {
			return true
		}
	}
	return false
}

// blockers returns the transactions tx is directly waiting on:
// conflicting non-ancestor holders of its wanted item, plus — because
// a holder with running descendants is suspended until they finish —
// every waiting descendant of tx itself. Caller holds m.mu.
func (m *Manager) blockers(tx TxnID) []TxnID {
	var out []TxnID
	if w, ok := m.waits[tx]; ok {
		if e := m.locks[w.item]; e != nil {
			for h, hm := range e.holders {
				if h != tx && conflicts(hm, w.mode) && !m.top.IsAncestorOrSelf(h, tx) {
					out = append(out, h)
				}
			}
		}
	}
	// Delegation edges: tx's progress depends on its blocked
	// descendants (tx is suspended while they run).
	for w := range m.waits {
		if w != tx && m.top.IsAncestorOrSelf(tx, w) {
			out = append(out, w)
		}
	}
	return out
}

// ReleaseAll drops every lock held by tx (used at abort, and at
// top-level commit) and clears any cancellation mark.
func (m *Manager) ReleaseAll(tx TxnID) {
	m.mu.Lock()
	defer m.mu.Unlock()
	for item, e := range m.locks {
		if _, ok := e.holders[tx]; ok {
			delete(e.holders, tx)
			if len(e.holders) == 0 {
				delete(m.locks, item)
			}
		}
	}
	delete(m.canceled, tx)
	m.cond.Broadcast()
}

// TransferToParent implements lock inheritance at subtransaction
// commit: every lock held by child is afterwards held by parent in
// the stronger of the two modes.
func (m *Manager) TransferToParent(child, parent TxnID) {
	m.mu.Lock()
	defer m.mu.Unlock()
	for _, e := range m.locks {
		cm, ok := e.holders[child]
		if !ok {
			continue
		}
		delete(e.holders, child)
		if pm, ok := e.holders[parent]; !ok || cm > pm {
			e.holders[parent] = cm
		}
	}
	delete(m.canceled, child)
	// Ancestry-based grantability may have improved for waiters that
	// are descendants of the parent.
	m.cond.Broadcast()
}

// Cancel wakes any in-progress or future waits by tx with
// ErrCanceled. Used when a transaction is aborted from another
// goroutine while it may be blocked.
func (m *Manager) Cancel(tx TxnID) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.canceled[tx] = true
	m.cond.Broadcast()
}

// HeldMode reports the mode tx holds on item, if any.
func (m *Manager) HeldMode(tx TxnID, item Item) (Mode, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if e := m.locks[item]; e != nil {
		mode, ok := e.holders[tx]
		return mode, ok
	}
	return 0, false
}

// HeldItems returns the number of items on which tx holds a lock.
func (m *Manager) HeldItems(tx TxnID) int {
	m.mu.Lock()
	defer m.mu.Unlock()
	n := 0
	for _, e := range m.locks {
		if _, ok := e.holders[tx]; ok {
			n++
		}
	}
	return n
}

// Stats returns a snapshot of the activity counters.
func (m *Manager) Stats() Stats {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.stats
}
