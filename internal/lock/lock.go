// Package lock implements the lock manager for the nested transaction
// model of Moss as used by HiPAC (§3.1, §3.3 of the paper).
//
// The central rule is Moss's: a transaction may acquire a lock in mode
// m if and only if every holder of a conflicting mode is an ancestor
// of the requester. When a subtransaction commits, its locks are
// inherited by (transferred to) its parent; when it aborts they are
// released. Because a parent is suspended while its children run, an
// ancestor-held lock can never be in active use by a concurrent
// computation, which is what makes the rule safe.
//
// The lock table is striped: items hash to one of nStripes buckets,
// each with its own mutex and condition variable, so requests for
// unrelated items never contend. Only the wait registry (who is
// blocked, on what) is global, under its own small mutex; the lock
// order is stripe mutex before registry mutex, never the reverse.
//
// Deadlocks are detected at block time by a cycle search over the
// waits-for graph. The graph has two edge kinds: a waiter points at
// each conflicting non-ancestor holder of the item it wants, and a
// suspended holder points at each of its waiting descendants (the
// descendant is the computation actually running on the holder's
// behalf, so the holder cannot release anything until the descendant
// proceeds). The probe runs without any stripe lock held — it freezes
// the wait registry, then reads each visited item's holders one
// stripe at a time. The view may therefore be slightly stale, which
// can only over-report (abort a transaction on a cycle that had
// already broken), never miss a real deadlock: a cycle is closed by
// whichever waiter registers its edge last, and that waiter's probe
// starts after every other edge of the cycle is in the registry and
// every holder on the cycle already holds its item.
//
// Since the MVCC read path landed, readers of *committed* data bypass
// the lock table entirely: point reads and scans resolve against
// commit-LSN version chains at a snapshot LSN and take no shared
// locks. The table serializes writers against writers (exclusive
// modes, Moss inheritance) and backs the explicit locking read
// (object.Manager.GetForUpdate) that read-modify-write transactions
// use in place of a plain snapshot read. Shared mode remains for
// callers that want lock-based read stability — e.g. the rule
// manager's read locks on rule objects — not for data reads.
package lock

import (
	"errors"
	"fmt"
	"hash/maphash"
	"sync"
	"sync/atomic"

	"repro/internal/obs"
)

// TxnID identifies a transaction. ID 0 is reserved for "committed
// top-level state" and never holds locks.
type TxnID uint64

// Mode is a lock mode.
type Mode int

// Lock modes in increasing strength.
const (
	// Shared permits concurrent readers.
	Shared Mode = iota
	// Exclusive permits a single writer.
	Exclusive
)

// String returns "S" or "X".
func (m Mode) String() string {
	if m == Exclusive {
		return "X"
	}
	return "S"
}

// conflicts reports whether two modes cannot be held concurrently by
// unrelated transactions.
func conflicts(a, b Mode) bool { return a == Exclusive || b == Exclusive }

// Item names a lockable resource ("obj/#12", "class/Stock",
// "rule/#7", ...). Naming conventions live in the layers above.
type Item string

// Topology lets the lock manager ask about transaction ancestry. The
// transaction manager implements it.
type Topology interface {
	// IsAncestorOrSelf reports whether anc is desc or a (transitive)
	// parent of desc.
	IsAncestorOrSelf(anc, desc TxnID) bool
}

// Errors returned by Acquire.
var (
	ErrDeadlock = errors.New("lock: deadlock detected")
	ErrCanceled = errors.New("lock: wait canceled")
)

// Stats counts lock-manager activity; read with Manager.Stats.
type Stats struct {
	Acquired  uint64 // grants, including re-grants and upgrades
	Waited    uint64 // times a request had to block
	Deadlocks uint64 // requests refused with ErrDeadlock
}

type waitRecord struct {
	item Item
	mode Mode
}

type entry struct {
	holders map[TxnID]Mode // strongest mode held by each transaction
}

// heldSet is one transaction's lock list: the items it was granted,
// appended only on first grant so re-grants stay free and the list
// holds no duplicates (transfers may introduce a few; release treats
// them as no-ops). The mutex covers concurrent sibling transfers
// merging into a shared parent's list.
type heldSet struct {
	mu    sync.Mutex
	items []Item
}

// nStripes is the lock-table stripe count. Power of two so the item
// hash is a mask.
const nStripes = 64

// stripe is one bucket of the lock table: the entries whose items
// hash here, under their own mutex. cond wakes waiters blocked on
// this stripe's items; every mutation that can improve grantability
// broadcasts it while holding mu, so a waiter that re-checked its
// grant under mu and then slept can never miss the wakeup.
type stripe struct {
	mu    sync.Mutex
	cond  *sync.Cond
	locks map[Item]*entry
}

// Manager is the lock manager. It is safe for concurrent use.
type Manager struct {
	top     Topology
	stripes [nStripes]stripe
	seed    maphash.Seed

	// wmu guards waits. Lock order: a stripe's mu may be held when
	// taking wmu, never the reverse. The never-blocked grant path does
	// not touch wmu at all.
	wmu      sync.Mutex
	waits    map[TxnID]waitRecord // who is blocked, and on what
	canceled sync.Map             // TxnID -> struct{}; lock-free read on the hot path

	// held maps each transaction to the items it holds, so ReleaseAll
	// and TransferToParent visit only the stripes involved instead of
	// sweeping the whole table. Correct because a transaction's lock
	// calls are serial: grants happen on its own goroutine, and release
	// or transfer runs only after the transaction reached a terminal
	// state. A heldSet's mu is never held while taking a stripe mutex.
	held sync.Map // TxnID -> *heldSet

	nAcquired, nWaited, nDeadlocks atomic.Uint64
	obsm                           *obs.Metrics // nil-safe wait-latency observer
}

// SetObserver installs a wait-latency observer. Not safe to call
// concurrently with lock processing.
func (m *Manager) SetObserver(o *obs.Metrics) { m.obsm = o }

// NewManager returns a lock manager that resolves ancestry through
// top.
func NewManager(top Topology) *Manager {
	m := &Manager{
		top:   top,
		seed:  maphash.MakeSeed(),
		waits: map[TxnID]waitRecord{},
	}
	for i := range m.stripes {
		st := &m.stripes[i]
		st.locks = map[Item]*entry{}
		st.cond = sync.NewCond(&st.mu)
	}
	return m
}

// stripeOf maps an item to its bucket.
func (m *Manager) stripeOf(item Item) *stripe {
	return &m.stripes[maphash.String(m.seed, string(item))&(nStripes-1)]
}

// Acquire blocks until tx holds item in at least the requested mode,
// a deadlock is detected (ErrDeadlock), or the wait is canceled
// (ErrCanceled). Re-acquiring an already-held mode is a cheap no-op;
// requesting Exclusive over a held Shared is an upgrade and follows
// the same conflict rule.
func (m *Manager) Acquire(tx TxnID, item Item, mode Mode) error {
	st := m.stripeOf(item)
	st.mu.Lock()
	// waitTimer stays zero (a no-op) unless the request blocks; it
	// then measures block-to-resolution, whatever the outcome.
	// waited tracks whether this request ever entered the registry, so
	// the common never-blocked grant skips the registry mutex.
	var waitTimer obs.Timer
	waited := false
	for {
		if m.isCanceled(tx) {
			if waited {
				m.clearWait(tx)
			}
			st.mu.Unlock()
			waitTimer.Done()
			return fmt.Errorf("%w (txn %d, item %q)", ErrCanceled, tx, item)
		}
		e := st.locks[item]
		if e == nil {
			e = &entry{holders: map[TxnID]Mode{}}
			st.locks[item] = e
		}
		if m.grantable(e, tx, mode) {
			cur, already := e.holders[tx]
			if !already || mode > cur {
				e.holders[tx] = mode
			}
			// Clear the wait before releasing the stripe so no probe
			// sees a granted request still registered as blocked.
			if waited {
				m.clearWait(tx)
			}
			st.mu.Unlock()
			if !already {
				m.noteHeld(tx, item)
			}
			m.nAcquired.Add(1)
			waitTimer.Done()
			return nil
		}
		// Register the wait before probing for deadlock: the probe of
		// whichever waiter closes a cycle must be able to see every
		// other edge. The canceled re-read inside registerWait closes
		// the race with a concurrent Cancel that looked up our (not
		// yet registered) wait record and broadcast nothing.
		first, canceled := m.registerWait(tx, item, mode)
		waited = true
		if first {
			m.nWaited.Add(1)
			waitTimer = m.obsm.Timer(obs.HLockWait)
		}
		if canceled {
			continue // loop top returns ErrCanceled
		}
		// The cycle probe takes stripes one at a time, so it must not
		// hold ours. Releasing the stripe opens a window in which the
		// request may become grantable (or a Cancel may land); the
		// re-locked loop top re-checks both before sleeping, and any
		// later change broadcasts under st.mu, so the sleep cannot
		// miss its wakeup.
		st.mu.Unlock()
		dead := m.inCycle(tx)
		st.mu.Lock()
		if dead {
			m.clearWait(tx)
			m.nDeadlocks.Add(1)
			st.mu.Unlock()
			waitTimer.Done()
			return fmt.Errorf("%w (txn %d, item %q, mode %s)", ErrDeadlock, tx, item, mode)
		}
		if m.isCanceled(tx) || m.grantable(st.locks[item], tx, mode) {
			continue
		}
		st.cond.Wait()
	}
}

// noteHeld appends item to tx's lock list. Callers invoke it only
// when the grant created a new holder entry (not on re-grants or
// upgrades), which keeps the list duplicate-free and the hot
// re-acquire path unaffected.
func (m *Manager) noteHeld(tx TxnID, item Item) {
	v, ok := m.held.Load(tx)
	if !ok {
		v, _ = m.held.LoadOrStore(tx, &heldSet{})
	}
	h := v.(*heldSet)
	h.mu.Lock()
	h.items = append(h.items, item)
	h.mu.Unlock()
}

// takeHeld removes and returns tx's lock list.
func (m *Manager) takeHeld(tx TxnID) []Item {
	v, ok := m.held.LoadAndDelete(tx)
	if !ok {
		return nil
	}
	h := v.(*heldSet)
	h.mu.Lock()
	items := h.items
	h.items = nil
	h.mu.Unlock()
	return items
}

// isCanceled reads tx's cancellation mark. Lock-free: the mark lives
// in a sync.Map so the never-blocked grant path stays off wmu.
func (m *Manager) isCanceled(tx TxnID) bool {
	_, ok := m.canceled.Load(tx)
	return ok
}

// clearWait removes tx from the wait registry.
func (m *Manager) clearWait(tx TxnID) {
	m.wmu.Lock()
	delete(m.waits, tx)
	m.wmu.Unlock()
}

// registerWait records that tx blocks on item/mode, reporting whether
// this is a fresh block (for stats) and whether tx is already
// canceled.
func (m *Manager) registerWait(tx TxnID, item Item, mode Mode) (first, canceled bool) {
	m.wmu.Lock()
	_, already := m.waits[tx]
	m.waits[tx] = waitRecord{item: item, mode: mode}
	m.wmu.Unlock()
	// Read the mark only after the record is visible: either this load
	// sees a concurrent Cancel's store, or the Cancel's registry lookup
	// (which follows its store) sees the record and broadcasts our
	// stripe — never both misses.
	return !already, m.isCanceled(tx)
}

// TryAcquire attempts the grant without blocking, reporting success.
func (m *Manager) TryAcquire(tx TxnID, item Item, mode Mode) bool {
	st := m.stripeOf(item)
	st.mu.Lock()
	e := st.locks[item]
	if e == nil {
		e = &entry{holders: map[TxnID]Mode{}}
		st.locks[item] = e
	}
	if !m.grantable(e, tx, mode) {
		st.mu.Unlock()
		return false
	}
	cur, already := e.holders[tx]
	if !already || mode > cur {
		e.holders[tx] = mode
	}
	st.mu.Unlock()
	if !already {
		m.noteHeld(tx, item)
	}
	m.nAcquired.Add(1)
	return true
}

// grantable implements Moss's rule. Caller holds the entry's stripe
// mutex; e may be nil (vacuously grantable).
func (m *Manager) grantable(e *entry, tx TxnID, mode Mode) bool {
	if e == nil {
		return true
	}
	for h, hm := range e.holders {
		if h == tx {
			continue
		}
		if conflicts(hm, mode) && !m.top.IsAncestorOrSelf(h, tx) {
			return false
		}
	}
	return true
}

// inCycle reports whether tx participates in a waits-for cycle. It is
// called with no stripe lock held: the wait registry is frozen into a
// snapshot up front, and each visited item's holders are read under
// that item's stripe, one stripe at a time.
func (m *Manager) inCycle(start TxnID) bool {
	m.wmu.Lock()
	waits := make(map[TxnID]waitRecord, len(m.waits))
	for tx, w := range m.waits {
		waits[tx] = w
	}
	m.wmu.Unlock()
	visited := map[TxnID]bool{}
	var visit func(tx TxnID) bool
	visit = func(tx TxnID) bool {
		if visited[tx] {
			return false
		}
		visited[tx] = true
		for _, next := range m.blockers(waits, tx) {
			if next == start || visit(next) {
				return true
			}
		}
		return false
	}
	for _, next := range m.blockers(waits, start) {
		if next == start || visit(next) {
			return true
		}
	}
	return false
}

// blockers returns the transactions tx is directly waiting on:
// conflicting non-ancestor holders of its wanted item, plus — because
// a holder with running descendants is suspended until they finish —
// every waiting descendant of tx itself. waits is the probe's frozen
// registry snapshot; holders are read live under the item's stripe.
func (m *Manager) blockers(waits map[TxnID]waitRecord, tx TxnID) []TxnID {
	var out []TxnID
	if w, ok := waits[tx]; ok {
		st := m.stripeOf(w.item)
		st.mu.Lock()
		if e := st.locks[w.item]; e != nil {
			for h, hm := range e.holders {
				if h != tx && conflicts(hm, w.mode) && !m.top.IsAncestorOrSelf(h, tx) {
					out = append(out, h)
				}
			}
		}
		st.mu.Unlock()
	}
	// Delegation edges: tx's progress depends on its blocked
	// descendants (tx is suspended while they run).
	for w := range waits {
		if w != tx && m.top.IsAncestorOrSelf(tx, w) {
			out = append(out, w)
		}
	}
	return out
}

// ReleaseAll drops every lock held by tx (used at abort, and at
// top-level commit) and clears any cancellation mark. The lock list
// names the items, so only their stripes are touched and woken.
func (m *Manager) ReleaseAll(tx TxnID) {
	for _, item := range m.takeHeld(tx) {
		st := m.stripeOf(item)
		st.mu.Lock()
		if e := st.locks[item]; e != nil {
			if _, ok := e.holders[tx]; ok {
				delete(e.holders, tx)
				if len(e.holders) == 0 {
					delete(st.locks, item)
				}
				st.cond.Broadcast()
			}
		}
		st.mu.Unlock()
	}
	m.canceled.Delete(tx)
}

// TransferToParent implements lock inheritance at subtransaction
// commit: every lock held by child is afterwards held by parent in
// the stronger of the two modes. Waiters on affected stripes are
// woken — ancestry-based grantability may have improved for waiters
// that are descendants of the parent, and only items the child held
// can be affected.
func (m *Manager) TransferToParent(child, parent TxnID) {
	items := m.takeHeld(child)
	inherited := items[:0]
	for _, item := range items {
		st := m.stripeOf(item)
		st.mu.Lock()
		if e := st.locks[item]; e != nil {
			if cm, ok := e.holders[child]; ok {
				pm, held := e.holders[parent]
				if !held || cm > pm {
					e.holders[parent] = cm
				}
				delete(e.holders, child)
				if !held {
					// Parent's list gains only items it did not already
					// hold, so lists stay duplicate-free.
					inherited = append(inherited, item)
				}
				st.cond.Broadcast()
			}
		}
		st.mu.Unlock()
	}
	for _, item := range inherited {
		m.noteHeld(parent, item)
	}
	m.canceled.Delete(child)
}

// Cancel wakes any in-progress or future waits by tx with
// ErrCanceled. Used when a transaction is aborted from another
// goroutine while it may be blocked.
func (m *Manager) Cancel(tx TxnID) {
	m.canceled.Store(tx, struct{}{})
	m.wmu.Lock()
	w, waiting := m.waits[tx]
	m.wmu.Unlock()
	if !waiting {
		// Not blocked yet. If tx is racing toward a wait, it re-reads
		// the mark inside registerWait (after publishing its record)
		// and returns without sleeping.
		return
	}
	st := m.stripeOf(w.item)
	st.mu.Lock()
	st.cond.Broadcast()
	st.mu.Unlock()
}

// HeldMode reports the mode tx holds on item, if any.
func (m *Manager) HeldMode(tx TxnID, item Item) (Mode, bool) {
	st := m.stripeOf(item)
	st.mu.Lock()
	defer st.mu.Unlock()
	if e := st.locks[item]; e != nil {
		mode, ok := e.holders[tx]
		return mode, ok
	}
	return 0, false
}

// HeldItems returns the number of items on which tx holds a lock.
func (m *Manager) HeldItems(tx TxnID) int {
	v, ok := m.held.Load(tx)
	if !ok {
		return 0
	}
	h := v.(*heldSet)
	h.mu.Lock()
	defer h.mu.Unlock()
	return len(h.items)
}

// Stats returns a snapshot of the activity counters.
func (m *Manager) Stats() Stats {
	return Stats{
		Acquired:  m.nAcquired.Load(),
		Waited:    m.nWaited.Load(),
		Deadlocks: m.nDeadlocks.Load(),
	}
}
