package plan

import (
	"repro/internal/datum"
	"repro/internal/query"
)

// enumerateCap bounds the plan count Enumerate returns; the
// differential tests run every plan, so keep the space tractable.
const enumerateCap = 200

// Enumerate returns admissible physical plans for q: join-order
// permutations (all of them up to 4 FROM clauses) crossed with every
// access-path option per step. Built for the differential test suite
// — each returned plan must produce exactly query.Eval's result.
// opt's parallelism settings apply to every returned plan (the
// differential rounds force the parallel paths through here); its
// access constraints are ignored — enumeration wants the whole space.
func Enumerate(q *query.Query, cat Catalog, args map[string]datum.Value, opt Options) []*Plan {
	known := map[string]bool{}
	var vars []string
	for _, f := range q.From {
		vars = append(vars, f.Var)
		known[f.Var] = true
	}
	conjuncts := query.SplitConjuncts(q.Where)

	var orders [][]int
	idx := make([]int, len(q.From))
	for i := range idx {
		idx[i] = i
	}
	if len(q.From) <= 4 {
		orders = permutations(idx)
	} else {
		orders = [][]int{idx}
	}

	var plans []*Plan
	for _, order := range orders {
		boundEnv := query.NewEnv(nil, args)
		constEnv := query.NewEnv(nil, args)
		var rec func(pos int, steps []*step, outRows float64)
		rec = func(pos int, steps []*step, outRows float64) {
			if len(plans) >= enumerateCap {
				return
			}
			if pos == len(order) {
				p := &Plan{Query: q, vars: vars, stats: cat != nil}
				// Steps are shared across enumerated plans, so copy
				// before the per-plan residual and parallelism marks.
				for _, s := range steps {
					dup := *s
					dup.residual = nil
					dup.par = 0
					p.steps = append(p.steps, &dup)
				}
				for _, s := range p.steps {
					p.cost += s.estCost
				}
				assignResiduals(p, conjuncts, known)
				p.obs = opt.Obs
				markParallel(p, cat, opt)
				plans = append(plans, p)
				return
			}
			slot := order[pos]
			f := q.From[slot]
			// Hash joins need an outer side; skip the option set's
			// hash entries at position 0 (accessOptions already omits
			// them when the probe key has no bound variable).
			opts := accessOptions(f, slot, conjuncts, boundEnv, cat, Options{})
			boundEnv.Bind(f.Var, 0, nil)
			for _, s := range opts {
				costStep(s, conjuncts, known, boundEnv, constEnv, cat, outRows)
				rec(pos+1, append(steps, s), s.estRows)
			}
			boundEnv.Unbind(f.Var)
		}
		rec(0, nil, 1)
		if len(plans) >= enumerateCap {
			break
		}
	}
	if len(q.From) == 0 {
		plans = append(plans, Build(q, cat, args, opt))
	}
	return plans
}

func permutations(idx []int) [][]int {
	if len(idx) <= 1 {
		return [][]int{append([]int(nil), idx...)}
	}
	var out [][]int
	for i := range idx {
		rest := make([]int, 0, len(idx)-1)
		rest = append(rest, idx[:i]...)
		rest = append(rest, idx[i+1:]...)
		for _, p := range permutations(rest) {
			out = append(out, append([]int{idx[i]}, p...))
		}
	}
	return out
}
