package plan

import (
	"errors"
	"sort"

	"repro/internal/datum"
	"repro/internal/query"
)

// execCtx is the per-Execute state shared by the operator tree: the
// reader, the expression environment holding the bindings of the
// current pipeline prefix, and the event arguments (kept so parallel
// stages can mint per-worker environments).
type execCtx struct {
	r    query.Reader
	env  *query.Env
	args map[string]datum.Value
}

// cand is one candidate object produced by a step's access path.
type cand struct {
	oid   datum.OID
	attrs map[string]datum.Value
}

// tuple is one join-output row: a binding per syntactic FROM slot.
type tuple []cand

// rowSource is the volcano iterator contract. Invariant: after Next
// returns a tuple, the env holds exactly that tuple's bindings (each
// step binds its variable as it yields), so residuals and select
// expressions evaluate against the current row.
type rowSource interface {
	Open(x *execCtx) error
	Next(x *execCtx) (tuple, bool, error)
	Close(x *execCtx)
}

// --- step candidates: pin / index scan / extent scan / hash probe ---

// stepCands produces the candidates of one step for the current outer
// bindings, applying the step's residual filters. Re-Opened per outer
// row by the enclosing join; the hash table persists across re-Opens.
type stepCands struct {
	s     *step
	cands []cand
	i     int

	// table is the hash build side, built on first Open (or injected
	// pre-built by a parallel probe stage) and immutable afterwards.
	table *hashTable
	built bool
}

func (sc *stepCands) Open(x *execCtx) error {
	sc.i = 0
	sc.cands = sc.cands[:0]
	switch sc.s.access {
	case accessPin:
		return sc.openPin(x)
	case accessIndex:
		return sc.openIndex(x)
	case accessHash:
		return sc.openHash(x)
	default:
		return sc.openExtent(x)
	}
}

func (sc *stepCands) openPin(x *execCtx) error {
	v, err := x.env.Eval(sc.s.pin)
	if err != nil {
		if errors.Is(err, query.ErrNoValue) {
			return nil // residual `var = <missing>` rejects every row anyway
		}
		return err
	}
	if v.Kind() != datum.KindOID {
		return nil // residual comparison to a non-OID is always false
	}
	cls, attrs, ok := x.r.Fetch(v.AsOID())
	if !ok || cls != sc.s.from.Class {
		return nil
	}
	sc.cands = append(sc.cands, cand{oid: v.AsOID(), attrs: attrs})
	return nil
}

func (sc *stepCands) openIndex(x *execCtx) error {
	var loV, hiV *datum.Value
	if sc.s.lo != nil {
		v, err := x.env.Eval(sc.s.lo)
		if err != nil {
			if errors.Is(err, query.ErrNoValue) {
				return nil // the residual comparison is unknown=false for every row
			}
			return err
		}
		loV = &v
	}
	if sc.s.hi != nil {
		if sc.s.hi == sc.s.lo {
			hiV = loV
		} else {
			v, err := x.env.Eval(sc.s.hi)
			if err != nil {
				if errors.Is(err, query.ErrNoValue) {
					return nil
				}
				return err
			}
			hiV = &v
		}
	}
	oids, ok := x.r.LookupRange(sc.s.from.Class, sc.s.attr, loV, hiV, sc.s.loInc, sc.s.hiInc)
	if !ok {
		// The index vanished (or the reader has none): degrade to the
		// extent scan; the residuals keep the result identical.
		return sc.openExtent(x)
	}
	for _, oid := range oids {
		cls, attrs, ok := x.r.Fetch(oid)
		if !ok || cls != sc.s.from.Class {
			continue
		}
		sc.cands = append(sc.cands, cand{oid: oid, attrs: attrs})
	}
	return nil
}

func (sc *stepCands) openExtent(x *execCtx) error {
	return x.r.ScanClass(sc.s.from.Class, func(oid datum.OID, attrs map[string]datum.Value) bool {
		sc.cands = append(sc.cands, cand{oid: oid, attrs: attrs})
		return true
	})
}

func (sc *stepCands) openHash(x *execCtx) error {
	if !sc.built {
		t, err := buildHashSerial(x, sc.s, 1)
		if err != nil {
			return err
		}
		sc.table = t
		sc.built = true
	}
	v, err := x.env.Eval(sc.s.probeKey)
	if err != nil {
		if errors.Is(err, query.ErrNoValue) {
			return nil
		}
		return err
	}
	if v.IsNull() {
		return nil
	}
	// Bucket membership is a candidate set, not a verdict: datum keys
	// collide across int/float precision loss, and the residual
	// equality re-check decides — exactly the oracle's semantics.
	sc.cands = append(sc.cands, sc.table.get(v.Key())...)
	return nil
}

// Next yields the next candidate that passes the residuals, with the
// step's variable bound in the env.
func (sc *stepCands) Next(x *execCtx) (cand, bool, error) {
	for sc.i < len(sc.cands) {
		c := sc.cands[sc.i]
		sc.i++
		x.env.Bind(sc.s.from.Var, c.oid, c.attrs)
		pass := true
		for _, r := range sc.s.residual {
			ok, err := x.env.EvalBool(r)
			if err != nil {
				return cand{}, false, err
			}
			if !ok {
				pass = false
				break
			}
		}
		if pass {
			return c, true, nil
		}
	}
	return cand{}, false, nil
}

func (sc *stepCands) Close(x *execCtx) {
	x.env.Unbind(sc.s.from.Var)
	sc.cands = nil
}

// --- join pipeline ---

// baseIter adapts the first step to a rowSource.
type baseIter struct {
	sc    stepCands
	width int
}

func (b *baseIter) Open(x *execCtx) error { return b.sc.Open(x) }

func (b *baseIter) Next(x *execCtx) (tuple, bool, error) {
	c, ok, err := b.sc.Next(x)
	if err != nil || !ok {
		return nil, false, err
	}
	t := make(tuple, b.width)
	t[b.sc.s.slot] = c
	return t, true, nil
}

func (b *baseIter) Close(x *execCtx) { b.sc.Close(x) }

// joinIter is the nested-loop join: for each outer tuple it re-Opens
// the inner step (whose parameterized bounds or hash probe key see the
// outer bindings through the env) and streams the matches. With an
// index inner this is an index-nested-loop join; with a hash inner
// the build happens on the first Open only.
type joinIter struct {
	outer     rowSource
	sc        stepCands
	cur       tuple
	haveOuter bool
}

func (j *joinIter) Open(x *execCtx) error {
	j.haveOuter = false
	return j.outer.Open(x)
}

func (j *joinIter) Next(x *execCtx) (tuple, bool, error) {
	for {
		if !j.haveOuter {
			t, ok, err := j.outer.Next(x)
			if err != nil || !ok {
				return nil, false, err
			}
			j.cur = t
			j.haveOuter = true
			if err := j.sc.Open(x); err != nil {
				return nil, false, err
			}
		}
		c, ok, err := j.sc.Next(x)
		if err != nil {
			return nil, false, err
		}
		if ok {
			out := make(tuple, len(j.cur))
			copy(out, j.cur)
			out[j.sc.s.slot] = c
			return out, true, nil
		}
		j.haveOuter = false
	}
}

func (j *joinIter) Close(x *execCtx) {
	j.sc.Close(x)
	j.outer.Close(x)
}

// emitOnce handles a FROM-less query: the oracle emits exactly one
// row without consulting the WHERE clause (bug-compatible on purpose).
type emitOnce struct{ done bool }

func (e *emitOnce) Open(*execCtx) error { e.done = false; return nil }
func (e *emitOnce) Next(*execCtx) (tuple, bool, error) {
	if e.done {
		return nil, false, nil
	}
	e.done = true
	return tuple{}, true, nil
}
func (e *emitOnce) Close(*execCtx) {}

// --- execution ---

// Execute runs the plan against r with the given event arguments and
// returns a result identical to query.Eval's. Plans with parallel
// steps run the staged fan-out pipeline (parallel.go); the canonical
// sort below makes both production orders emit identically.
func (p *Plan) Execute(r query.Reader, args map[string]datum.Value) (*query.Result, error) {
	x := &execCtx{r: r, env: query.NewEnv(r, args), args: args}

	var tuples []tuple
	var err error
	if p.maxPar() > 1 {
		tuples, err = p.joinParallel(x)
	} else {
		tuples, err = p.joinSerial(x)
	}
	if err != nil {
		return nil, err
	}
	// Restore the oracle's emission order with the canonical sort
	// (see the package comment).
	sort.SliceStable(tuples, func(a, b int) bool {
		ta, tb := tuples[a], tuples[b]
		for i := range ta {
			if ta[i].oid != tb[i].oid {
				return ta[i].oid < tb[i].oid
			}
		}
		return false
	})

	return p.emit(x, tuples)
}

// joinSerial materializes the join output through the volcano tree.
func (p *Plan) joinSerial(x *execCtx) ([]tuple, error) {
	var root rowSource
	if len(p.steps) == 0 {
		root = &emitOnce{}
	} else {
		root = &baseIter{sc: stepCands{s: p.steps[0]}, width: len(p.vars)}
		for _, s := range p.steps[1:] {
			root = &joinIter{outer: root, sc: stepCands{s: s}}
		}
	}
	if err := root.Open(x); err != nil {
		return nil, err
	}
	var tuples []tuple
	for {
		t, ok, err := root.Next(x)
		if err != nil {
			root.Close(x)
			return nil, err
		}
		if !ok {
			break
		}
		tuples = append(tuples, t)
	}
	root.Close(x)
	return tuples, nil
}

// emit is the oracle's run() tail: select/aggregate per tuple in
// canonical order, then ORDER BY's stable sort, then LIMIT.
func (p *Plan) emit(x *execCtx, tuples []tuple) (*query.Result, error) {
	q := p.Query
	res := &query.Result{}
	for _, s := range q.Select {
		res.Columns = append(res.Columns, s.Name())
	}

	aggMode := len(q.Select) > 0 && query.HasAggregate(q.Select[0].Expr)
	var aggs []*query.AggState
	if aggMode {
		// Parallel plans try chunked partial aggregation first; it
		// hands back exact merged states or declines (order-sensitive
		// accumulation), in which case the serial loop below runs
		// over the same canonically sorted tuples — bit-identical
		// either way.
		if p.maxPar() > 1 {
			merged, ok, err := p.parallelAggregate(x, tuples)
			if err != nil {
				return nil, err
			}
			if ok {
				aggs = merged
				tuples = nil // already accumulated; skip the loop
			}
		}
		if aggs == nil {
			aggs = make([]*query.AggState, len(q.Select))
			for i := range aggs {
				aggs[i] = &query.AggState{}
			}
		}
	}

	var sortKeys [][]datum.Value
	for _, t := range tuples {
		for slot, c := range t {
			x.env.Bind(p.vars[slot], c.oid, c.attrs)
		}
		if aggMode {
			for i, s := range q.Select {
				if err := x.env.Accumulate(aggs[i], s.Expr); err != nil {
					return nil, err
				}
			}
			continue
		}
		row := make([]datum.Value, len(q.Select))
		for i, s := range q.Select {
			v, err := x.env.Eval(s.Expr)
			if err != nil && !errors.Is(err, query.ErrNoValue) {
				return nil, err
			}
			row[i] = v
		}
		res.Rows = append(res.Rows, row)
		if len(q.OrderBy) > 0 {
			keys := make([]datum.Value, len(q.OrderBy))
			for i, o := range q.OrderBy {
				v, err := x.env.Eval(o.Expr)
				if err != nil && !errors.Is(err, query.ErrNoValue) {
					return nil, err
				}
				keys[i] = v
			}
			sortKeys = append(sortKeys, keys)
		}
	}

	if aggMode {
		row := make([]datum.Value, len(q.Select))
		for i, s := range q.Select {
			v, err := query.FinishAggregate(aggs[i], s.Expr)
			if err != nil {
				return nil, err
			}
			row[i] = v
		}
		res.Rows = append(res.Rows, row)
	}
	if len(q.OrderBy) > 0 {
		idx := make([]int, len(res.Rows))
		for i := range idx {
			idx[i] = i
		}
		sort.SliceStable(idx, func(a, b int) bool {
			ka, kb := sortKeys[idx[a]], sortKeys[idx[b]]
			for c, o := range q.OrderBy {
				if datum.Equal(ka[c], kb[c]) {
					continue
				}
				less := datum.Less(ka[c], kb[c])
				if o.Desc {
					return !less
				}
				return less
			}
			return false
		})
		sorted := make([][]datum.Value, len(res.Rows))
		for i, j := range idx {
			sorted[i] = res.Rows[j]
		}
		res.Rows = sorted
	}
	if q.Limit >= 0 && len(res.Rows) > q.Limit {
		res.Rows = res.Rows[:q.Limit]
	}
	return res, nil
}
