// Package plan is the physical query engine: a volcano-style operator
// pipeline (identity pin, index scan, extent scan, filter,
// nested-loop/index-nested-loop join, hash join, aggregate,
// order/limit) behind a small cost-based planner.
//
// The planner chooses an access path per FROM clause — identity pin,
// secondary-index probe, hash-table build, or extent scan — and a
// join order, using two statistics from the Catalog: per-class extent
// cardinality (maintained O(1) by the store) and capped index-range
// counts. Conditions and CLI queries that join event arguments
// against large classes stop being O(extent).
//
// Plan invariance. Every admissible plan returns *exactly* the result
// the tree-walk oracle (query.Eval) returns — same rows, same order,
// bit-identical floats — because:
//
//   - The tree-walk emits join tuples in lexicographic OID order of
//     the syntactic FROM variables: every level visits strictly
//     ascending OIDs (extent scans sort by OID, index candidates are
//     deduplicated and sorted, a pin visits one), so the emission
//     sequence of (oid_1, ..., oid_n) tuples is the lexicographic
//     order of the distinct tuples it produces. The executor
//     therefore materializes the join output of *any* operator tree
//     and restores that order with one canonical sort.
//   - Access paths never decide membership: the conjunct that chose a
//     pin, probe, or hash bucket is re-applied as a residual filter,
//     so index false positives and hash-key collisions (int/float
//     keys encode through the same float64 order) are filtered
//     identically to the oracle's residual re-check.
//   - Expression evaluation, null/missing-value comparison, and
//     aggregate accumulation run through the query package's own
//     evaluator (query.Env), in canonical order — so float sums
//     accumulate in the oracle's order and ORDER BY's stable sort
//     starts from the oracle's input sequence.
//
// The invariance holds for queries that evaluate without hard errors
// (type errors and division by zero); a failing query fails under
// every plan, but which row triggers the error first can differ.
package plan

import (
	"math"
	"runtime"

	"repro/internal/datum"
	"repro/internal/obs"
	"repro/internal/query"
)

// Catalog supplies planner statistics. The object manager's readers
// implement it against the store; plan.Run type-asserts it from the
// query.Reader, so any reader may decline by not implementing it.
type Catalog interface {
	// ExtentEstimate approximates the class's extent cardinality.
	ExtentEstimate(class string) int
	// HasIndex reports whether class.attr has a secondary index.
	HasIndex(class, attr string) bool
	// IndexEstimate counts index entries in [lo, hi] on class.attr,
	// stopping at limit; ok is false when no index exists.
	IndexEstimate(class, attr string, lo, hi *datum.Value, loInc, hiInc bool, limit int) (int, bool)
}

// Options constrain the planner; the zero value lets it choose
// freely. The constraints exist for the differential tests and the
// planner-on/off benchmarks.
type Options struct {
	// DisableIndex forbids identity pins and index scans: every
	// non-hash access is a full extent scan.
	DisableIndex bool
	// DisableHash forbids hash joins.
	DisableHash bool
	// ForceOrder keeps the syntactic FROM order.
	ForceOrder bool
	// Parallelism caps the executor's degree of parallelism: 0
	// derives it from GOMAXPROCS (capped at maxParallelism), 1 forces
	// serial execution, N>1 allows up to N workers per parallel step.
	// Parallel plans return bit-identical results to serial ones: the
	// canonical OID sort fixes tuple order regardless of production
	// order, and order-sensitive aggregates re-accumulate serially
	// (see MergeAggState).
	Parallelism int
	// ParallelThreshold is the estimated input cardinality (extent
	// size for scans and hash builds, outer rows for joins) a step
	// must reach before it fans out; below it worker setup and the
	// exchange cost more than they save. 0 means the default
	// (defaultParallelThreshold); negative removes the floor so every
	// eligible step parallelizes — for tests.
	ParallelThreshold int
	// Obs receives the executor's fan-out width and gather-skew
	// observations; nil records nothing.
	Obs *obs.Metrics
}

type access int

const (
	accessExtent access = iota // scan the class extent
	accessIndex                // probe a secondary index
	accessPin                  // fetch one object by identity
	accessHash                 // build a hash table on the extent, probe per outer row
)

func (a access) String() string {
	switch a {
	case accessIndex:
		return "index scan"
	case accessPin:
		return "identity pin"
	case accessHash:
		return "hash join"
	default:
		return "extent scan"
	}
}

// step is one level of the left-deep pipeline: how to produce
// candidate objects for one FROM clause given the outer bindings.
type step struct {
	from query.FromClause
	slot int // position in the syntactic FROM order (canonical sort key)

	access access

	// accessPin: expression yielding the object identity.
	pin query.Expr

	// accessIndex: bounds on the from.Class index over attr. Nil
	// means unbounded; param marks bounds referencing outer range
	// variables (re-evaluated per outer row: an index-nested-loop
	// probe).
	attr         string
	lo, hi       query.Expr
	loInc, hiInc bool
	param        bool

	// accessHash: build key (a path on this step's variable) and the
	// probe key (constant w.r.t. the outer bindings).
	buildKey query.Expr
	probeKey query.Expr

	// residual predicates applied after this step's variable binds.
	// Every WHERE conjunct lands in exactly one step's residual list —
	// including the conjunct that chose the access path, so false
	// positives from any path are re-filtered.
	residual []query.Expr

	estRows float64 // cumulative output rows after this step
	estCost float64 // cost charged for this step

	// par is the step's degree of parallelism (0 or 1 means serial):
	// shard workers for a base extent scan, probe workers for a join.
	par int
}

// Plan is a compiled physical plan. It is immutable after Build and
// safe for concurrent Execute calls.
type Plan struct {
	Query *query.Query
	vars  []string // syntactic FROM order
	steps []*step  // join order
	cost  float64
	stats bool // a Catalog informed the estimates

	obs *obs.Metrics // fan-out/gather-skew observer; nil-safe
}

// Cost returns the planner's total cost estimate (arbitrary units).
func (p *Plan) Cost() float64 { return p.cost }

const (
	fetchCost     = 2.0  // charge per candidate fetched via OID
	defaultExtent = 1000 // assumed extent size without a catalog
	indexCountCap = 4096 // cap for plan-time index range counts
	eqSel         = 0.05 // selectivity of a residual equality
	rangeSel      = 0.33 // selectivity of a residual comparison
	otherSel      = 0.75 // selectivity of any other residual

	// maxParallelism caps the derived degree of parallelism: past the
	// store's shard count and typical core counts, more workers only
	// add exchange traffic.
	maxParallelism = 16
	// defaultParallelThreshold is the estimated input cardinality at
	// which a step starts fanning out (see Options.ParallelThreshold).
	defaultParallelThreshold = 2048
)

// Build compiles a physical plan for q. cat may be nil (no
// statistics: the planner keeps the syntactic order and mimics the
// tree-walk's access heuristics). args are the event arguments —
// available at plan time on every call path, they let the planner
// evaluate literal/event-only index bounds for real range counts.
func Build(q *query.Query, cat Catalog, args map[string]datum.Value, opt Options) *Plan {
	p := &Plan{Query: q, stats: cat != nil}
	for _, f := range q.From {
		p.vars = append(p.vars, f.Var)
	}
	conjuncts := query.SplitConjuncts(q.Where)
	known := map[string]bool{}
	for _, v := range p.vars {
		known[v] = true
	}

	// Greedy join-order + access-path selection: repeatedly place the
	// remaining clause whose best access yields the smallest
	// intermediate result (ties broken by step cost). Minimizing
	// output cardinality, not step cost, is what makes the greedy
	// choose a selective index probe over a cheap-but-wide outer
	// extent scan.
	boundEnv := query.NewEnv(nil, args) // placed vars bound (dummies)
	constEnv := query.NewEnv(nil, args) // nothing bound: plan-time eval
	remaining := make([]query.FromClause, len(q.From))
	slots := make([]int, len(q.From))
	copy(remaining, q.From)
	for i := range slots {
		slots[i] = i
	}
	outRows := 1.0
	for len(remaining) > 0 {
		bestI := 0
		var best *step
		n := len(remaining)
		if opt.ForceOrder || cat == nil {
			n = 1 // only the syntactically next clause
		}
		for i := 0; i < n; i++ {
			opts := accessOptions(remaining[i], slots[i], conjuncts, boundEnv, cat, opt)
			for _, s := range opts {
				costStep(s, conjuncts, known, boundEnv, constEnv, cat, outRows)
				if best == nil || betterStep(s, best) {
					best, bestI = s, i
				}
			}
		}
		p.steps = append(p.steps, best)
		p.cost += best.estCost
		outRows = best.estRows
		boundEnv.Bind(best.from.Var, 0, nil)
		remaining = append(remaining[:bestI], remaining[bestI+1:]...)
		slots = append(slots[:bestI], slots[bestI+1:]...)
	}

	assignResiduals(p, conjuncts, known)
	p.obs = opt.Obs
	markParallel(p, cat, opt)
	return p
}

// resolveParallelism turns Options.Parallelism into a concrete worker
// cap (always >= 1).
func resolveParallelism(n int) int {
	if n == 0 {
		n = runtime.GOMAXPROCS(0)
	}
	if n > maxParallelism {
		n = maxParallelism
	}
	if n < 1 {
		n = 1
	}
	return n
}

// markParallel assigns each step's degree of parallelism: a step fans
// out when the work it distributes — the extent for a base scan or a
// hash build, the outer tuples for a join probe — is estimated past
// the threshold. The decision is cost-gated so tiny queries stay
// serial; it never affects results (see the package comment), only
// how the executor produces them.
func markParallel(p *Plan, cat Catalog, opt Options) {
	dop := resolveParallelism(opt.Parallelism)
	if dop <= 1 {
		return
	}
	thr := float64(opt.ParallelThreshold)
	if opt.ParallelThreshold == 0 {
		thr = defaultParallelThreshold
	} else if opt.ParallelThreshold < 0 {
		thr = 0
	}
	for i, s := range p.steps {
		extent := float64(defaultExtent)
		if cat != nil {
			extent = math.Max(1, float64(cat.ExtentEstimate(s.from.Class)))
		}
		switch {
		case i == 0:
			// Only an unselective base extent scan benefits; pins and
			// index probes are already sub-linear.
			if s.access == accessExtent && extent >= thr {
				s.par = dop
			}
		case s.access == accessHash:
			// Parallel when either side is big: the build fans out
			// over shards, the probe over outer tuples.
			if extent >= thr || p.steps[i-1].estRows >= thr {
				s.par = dop
			}
		default:
			if p.steps[i-1].estRows >= thr {
				s.par = dop
			}
		}
	}
}

// accessOptions returns every admissible access path for clause f
// given the currently bound variables. The first option is always the
// extent scan (the universal fallback), so the list is never empty.
func accessOptions(f query.FromClause, slot int, conjuncts []query.Expr,
	bound *query.Env, cat Catalog, opt Options) []*step {

	mk := func(a access) *step {
		return &step{from: f, slot: slot, access: a}
	}
	opts := []*step{mk(accessExtent)}
	for _, c := range conjuncts {
		b, ok := c.(*query.Binary)
		if !ok {
			continue
		}
		// Identity pin: f.Var = <const w.r.t. bound>.
		if !opt.DisableIndex && b.Op == query.OpEq {
			if v, ok := b.L.(*query.VarRef); ok && v.Name == f.Var && bound.IsConstWrt(b.R) {
				s := mk(accessPin)
				s.pin = b.R
				opts = append(opts, s)
			} else if v, ok := b.R.(*query.VarRef); ok && v.Name == f.Var && bound.IsConstWrt(b.L) {
				s := mk(accessPin)
				s.pin = b.L
				opts = append(opts, s)
			}
		}
		// Sargable path comparison: f.Var.attr OP <const w.r.t. bound>.
		var path *query.Path
		var constExpr query.Expr
		op := b.Op
		if pp, ok := b.L.(*query.Path); ok && pp.Var == f.Var && bound.IsConstWrt(b.R) {
			path, constExpr = pp, b.R
		} else if pp, ok := b.R.(*query.Path); ok && pp.Var == f.Var && bound.IsConstWrt(b.L) {
			path, constExpr = pp, b.L
			op = query.FlipOp(op)
		}
		if path == nil {
			continue
		}
		indexable := cat == nil || cat.HasIndex(f.Class, path.Attr)
		if !opt.DisableIndex && indexable {
			s := mk(accessIndex)
			s.attr = path.Attr
			s.param = !isEventConst(constExpr)
			switch op {
			case query.OpEq:
				s.lo, s.hi, s.loInc, s.hiInc = constExpr, constExpr, true, true
			case query.OpLt:
				s.hi, s.hiInc = constExpr, false
			case query.OpLe:
				s.hi, s.hiInc = constExpr, true
			case query.OpGt:
				s.lo, s.loInc = constExpr, false
			case query.OpGe:
				s.lo, s.loInc = constExpr, true
			default:
				s = nil
			}
			if s != nil {
				opts = append(opts, s)
			}
		}
		// Hash join: equality on a path whose other side references at
		// least one bound variable (a pure event/literal key gains
		// nothing over a filtered scan).
		if !opt.DisableHash && b.Op == query.OpEq && !isEventConst(constExpr) {
			s := mk(accessHash)
			s.buildKey = path
			s.probeKey = constExpr
			opts = append(opts, s)
		}
	}
	return opts
}

// betterStep ranks candidate steps: fewer estimated output rows wins
// (within a 0.1% tolerance so float noise cannot flip a tie), then
// lower step cost.
func betterStep(a, b *step) bool {
	if a.estRows*1.001 < b.estRows {
		return true
	}
	if b.estRows*1.001 < a.estRows {
		return false
	}
	return a.estCost < b.estCost
}

// isEventConst reports whether e is constant w.r.t. an empty binding
// set — only literals and event references.
func isEventConst(e query.Expr) bool {
	empty := query.NewEnv(nil, nil)
	return empty.IsConstWrt(e)
}

// costStep fills s.estCost and s.estRows (cumulative after the step).
func costStep(s *step, conjuncts []query.Expr, known map[string]bool,
	bound, constEnv *query.Env, cat Catalog, outRows float64) {

	extent := float64(defaultExtent)
	if cat != nil {
		extent = math.Max(1, float64(cat.ExtentEstimate(s.from.Class)))
	}
	var perOuter, cost float64
	switch s.access {
	case accessPin:
		perOuter = 1
		cost = outRows * (1 + fetchCost)
	case accessIndex:
		k := indexRows(s, constEnv, cat, extent)
		perOuter = k
		cost = outRows * (1 + fetchCost*k)
	case accessHash:
		bucket := math.Max(1, extent/64)
		perOuter = bucket
		cost = extent + outRows*(1+bucket)
	default:
		perOuter = extent
		cost = outRows * (1 + extent)
	}
	// Residual selectivity of the other conjuncts that become
	// checkable once this variable binds.
	sel := 1.0
	for _, c := range conjuncts {
		if usesVar(c, s.from.Var, known) && checkableAfter(c, s.from.Var, bound, known) {
			if b, ok := c.(*query.Binary); ok {
				switch b.Op {
				case query.OpEq:
					sel *= eqSel
				case query.OpNe, query.OpLt, query.OpLe, query.OpGt, query.OpGe:
					sel *= rangeSel
				default:
					sel *= otherSel
				}
			} else {
				sel *= otherSel
			}
		}
	}
	// The access path's own conjunct already restricted perOuter for
	// pin/index/hash; applying every residual again under-counts, but
	// uniformly across plans — good enough to rank them.
	rows := outRows * perOuter * math.Max(sel, eqSel*eqSel)
	s.estRows = math.Max(rows, 0.001)
	s.estCost = cost
}

// indexRows estimates candidates per probe of s's index bounds.
func indexRows(s *step, constEnv *query.Env, cat Catalog, extent float64) float64 {
	eq := s.lo != nil && s.hi != nil
	if s.param || cat == nil {
		if eq {
			return math.Max(1, extent/64)
		}
		return math.Max(1, extent/4)
	}
	// Bounds are literal/event-only: evaluate and count for real.
	var loV, hiV *datum.Value
	if s.lo != nil {
		v, err := constEnv.Eval(s.lo)
		if err != nil {
			return 1 // missing event arg: the residual rejects everything
		}
		loV = &v
	}
	if s.hi != nil {
		v, err := constEnv.Eval(s.hi)
		if err != nil {
			return 1
		}
		hiV = &v
	}
	if n, ok := cat.IndexEstimate(s.from.Class, s.attr, loV, hiV, s.loInc, s.hiInc, indexCountCap); ok {
		return math.Max(1, float64(n))
	}
	if eq {
		return math.Max(1, extent/64)
	}
	return math.Max(1, extent/4)
}

// assignResiduals places every WHERE conjunct on the earliest step at
// which all the range variables it references are bound (unknown
// variables never bind: such a conjunct evaluates to unknown=false at
// its earliest position, exactly like the oracle).
func assignResiduals(p *Plan, conjuncts []query.Expr, known map[string]bool) {
	boundAt := map[string]int{}
	for i, s := range p.steps {
		boundAt[s.from.Var] = i
	}
	for _, c := range conjuncts {
		at := 0
		for v := range varsOf(c, known) {
			if i, ok := boundAt[v]; ok && i > at {
				at = i
			}
		}
		if len(p.steps) > 0 {
			p.steps[at].residual = append(p.steps[at].residual, c)
		}
	}
}

// varsOf collects the known range variables referenced by e.
func varsOf(e query.Expr, known map[string]bool) map[string]bool {
	out := map[string]bool{}
	var walk func(query.Expr)
	walk = func(e query.Expr) {
		switch v := e.(type) {
		case *query.VarRef:
			if known[v.Name] {
				out[v.Name] = true
			}
		case *query.Path:
			if known[v.Var] {
				out[v.Var] = true
			}
		case *query.Binary:
			walk(v.L)
			walk(v.R)
		case *query.Unary:
			walk(v.X)
		case *query.Call:
			for _, a := range v.Args {
				walk(a)
			}
		}
	}
	walk(e)
	return out
}

func usesVar(e query.Expr, name string, known map[string]bool) bool {
	return varsOf(e, known)[name]
}

// checkableAfter reports whether conjunct c becomes fully evaluable
// once name binds on top of the current bound set.
func checkableAfter(c query.Expr, name string, bound *query.Env, known map[string]bool) bool {
	for v := range varsOf(c, known) {
		if v != name && !bound.Bound(v) {
			return false
		}
	}
	return true
}

// Run plans and executes q against r in one call — the engine's
// default query path. Statistics come from the reader itself when it
// implements Catalog (the object manager's readers do). The zero
// Options apply: parallelism derives from GOMAXPROCS.
func Run(q *query.Query, r query.Reader, args map[string]datum.Value) (*query.Result, error) {
	return Exec(Options{})(q, r, args)
}

// Exec returns a Run-shaped executor with fixed options — what the
// engine installs into the condition evaluator (cond.SetExec) so rule
// conditions run with the configured parallelism and observer.
func Exec(opt Options) func(*query.Query, query.Reader, map[string]datum.Value) (*query.Result, error) {
	return func(q *query.Query, r query.Reader, args map[string]datum.Value) (*query.Result, error) {
		cat, _ := r.(Catalog)
		return Build(q, cat, args, opt).Execute(r, args)
	}
}
