package plan

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"

	"repro/internal/datum"
)

// The differential property suite: random schemas, data, and queries
// run through every admissible plan and the tree-walk oracle, which
// must agree bit-for-bit (checkAll). The generator is type-safe by
// construction — ordering comparisons only relate values of
// compatible kinds, and there is no arithmetic — so no query can hard
// -error and every divergence is a planner or executor bug.

type genAttr struct {
	name    string
	kind    datum.Kind
	indexed bool
}

type genClass struct {
	name  string
	attrs []genAttr
}

type genSchema struct {
	classes []genClass
}

func genValue(rng *rand.Rand, k datum.Kind) datum.Value {
	switch k {
	case datum.KindInt:
		return datum.Int(int64(rng.Intn(11) - 5))
	case datum.KindFloat:
		return datum.Float([]float64{-2, -0.5, 0, 0.5, 1, 2.5, 3}[rng.Intn(7)])
	default:
		return datum.Str(string(rune('a' + rng.Intn(5))))
	}
}

func genRound(rng *rand.Rand) (*fakeReader, genSchema, map[string]datum.Value) {
	kinds := []datum.Kind{datum.KindInt, datum.KindFloat, datum.KindString}
	var sc genSchema
	f := newFake()
	nClasses := 2 + rng.Intn(2)
	oid := datum.OID(1)
	for c := 0; c < nClasses; c++ {
		cl := genClass{name: fmt.Sprintf("C%d", c)}
		nAttrs := 2 + rng.Intn(3)
		for a := 0; a < nAttrs; a++ {
			at := genAttr{
				name:    fmt.Sprintf("a%d", a),
				kind:    kinds[rng.Intn(len(kinds))],
				indexed: rng.Intn(2) == 0,
			}
			cl.attrs = append(cl.attrs, at)
			if at.indexed {
				f.index(cl.name, at.name)
			}
		}
		sc.classes = append(sc.classes, cl)
		nRows := rng.Intn(13)
		for r := 0; r < nRows; r++ {
			attrs := map[string]datum.Value{}
			for _, at := range cl.attrs {
				switch p := rng.Float64(); {
				case p < 0.10: // absent
				case p < 0.20:
					attrs[at.name] = datum.Null()
				default:
					attrs[at.name] = genValue(rng, at.kind)
				}
			}
			f.add(cl.name, oid, attrs)
			oid++
		}
	}
	// One typed event argument per round, sometimes absent.
	args := map[string]datum.Value{}
	if rng.Intn(4) > 0 {
		args["p"] = genValue(rng, kinds[rng.Intn(len(kinds))])
	}
	// An OID-valued argument for identity pins, sometimes dangling.
	if rng.Intn(2) == 0 {
		args["target"] = datum.ID(datum.OID(1 + rng.Intn(int(oid)+2)))
	}
	return f, sc, args
}

// compatible reports whether two kinds may be related by an ordering
// comparison without a hard evaluation error.
func compatible(a, b datum.Kind) bool {
	num := func(k datum.Kind) bool { return k == datum.KindInt || k == datum.KindFloat }
	return a == b || (num(a) && num(b))
}

func genQuery(rng *rand.Rand, sc genSchema, args map[string]datum.Value) string {
	ordOps := []string{"=", "!=", "<", "<=", ">", ">="}

	type fromVar struct {
		v  string
		cl genClass
	}
	nFrom := 1 + rng.Intn(3)
	var from []fromVar
	var fromParts []string
	for i := 0; i < nFrom; i++ {
		cl := sc.classes[rng.Intn(len(sc.classes))]
		v := fmt.Sprintf("v%d", i)
		from = append(from, fromVar{v: v, cl: cl})
		fromParts = append(fromParts, cl.name+" "+v)
	}

	attrOf := func(fv fromVar) genAttr { return fv.cl.attrs[rng.Intn(len(fv.cl.attrs))] }

	var conjs []string
	nConj := rng.Intn(5)
	for i := 0; i < nConj; i++ {
		fv := from[rng.Intn(len(from))]
		at := attrOf(fv)
		lhs := fv.v + "." + at.name
		switch rng.Intn(5) {
		case 0: // attr vs literal, ordering-safe by same-kind literal
			op := ordOps[rng.Intn(len(ordOps))]
			lit := genValue(rng, at.kind)
			conjs = append(conjs, fmt.Sprintf("%s %s %s", lhs, op, litString(lit)))
		case 1: // join conjunct on compatible kinds
			ov := from[rng.Intn(len(from))]
			oat := attrOf(ov)
			op := "="
			if compatible(at.kind, oat.kind) {
				op = ordOps[rng.Intn(len(ordOps))]
			} else if rng.Intn(2) == 0 {
				op = "!=" // cross-kind equality never hard-errors
			}
			conjs = append(conjs, fmt.Sprintf("%s %s %s.%s", lhs, op, ov.v, oat.name))
		case 2: // attr vs event argument
			op := "="
			if p, ok := args["p"]; ok && compatible(at.kind, p.Kind()) {
				op = ordOps[rng.Intn(len(ordOps))]
			} else if rng.Intn(2) == 0 {
				op = "!="
			}
			conjs = append(conjs, fmt.Sprintf("%s %s event.p", lhs, op))
		case 3: // identity pin (possibly dangling or wrong class)
			conjs = append(conjs, fmt.Sprintf("%s = event.target", fv.v))
		default: // negated equality through NOT
			lit := genValue(rng, at.kind)
			conjs = append(conjs, fmt.Sprintf("not %s = %s", lhs, litString(lit)))
		}
	}

	var sb strings.Builder
	sb.WriteString("select ")
	aggMode := rng.Intn(4) == 0
	if aggMode {
		var items []string
		items = append(items, "count(*) as n")
		// Aggregate a numeric attribute when one exists.
		fv := from[rng.Intn(len(from))]
		for _, at := range fv.cl.attrs {
			if at.kind == datum.KindInt || at.kind == datum.KindFloat {
				fn := []string{"sum", "min", "max", "avg"}[rng.Intn(4)]
				items = append(items, fmt.Sprintf("%s(%s.%s) as agg", fn, fv.v, at.name))
				break
			}
		}
		sb.WriteString(strings.Join(items, ", "))
	} else {
		var items []string
		nSel := 1 + rng.Intn(3)
		for i := 0; i < nSel; i++ {
			fv := from[rng.Intn(len(from))]
			switch rng.Intn(3) {
			case 0:
				items = append(items, fv.v)
			case 1:
				items = append(items, "event.p")
			default:
				items = append(items, fv.v+"."+attrOf(fv).name)
			}
		}
		sb.WriteString(strings.Join(items, ", "))
	}
	sb.WriteString(" from ")
	sb.WriteString(strings.Join(fromParts, ", "))
	if len(conjs) > 0 {
		sb.WriteString(" where ")
		sb.WriteString(strings.Join(conjs, " and "))
	}
	if !aggMode && rng.Intn(5) < 2 {
		fv := from[rng.Intn(len(from))]
		sb.WriteString(" order by " + fv.v + "." + attrOf(fv).name)
		if rng.Intn(2) == 0 {
			sb.WriteString(" desc")
		}
		if rng.Intn(2) == 0 {
			ov := from[rng.Intn(len(from))]
			sb.WriteString(", " + ov.v + "." + attrOf(ov).name)
		}
	}
	if rng.Intn(10) < 3 {
		sb.WriteString(fmt.Sprintf(" limit %d", rng.Intn(6)))
	}
	return sb.String()
}

func litString(v datum.Value) string {
	if v.Kind() == datum.KindString {
		return "'" + v.AsString() + "'"
	}
	return v.String()
}

// TestDifferentialRandomized is the core property test: ≥150 random
// rounds, each running several random queries through every plan
// Enumerate produces plus all Build option combinations, against the
// tree-walk oracle.
func TestDifferentialRandomized(t *testing.T) {
	const rounds = 150
	for round := 0; round < rounds; round++ {
		rng := rand.New(rand.NewSource(int64(round) * 7919))
		f, sc, args := genRound(rng)
		for qi := 0; qi < 4; qi++ {
			src := genQuery(rng, sc, args)
			func() {
				defer func() {
					if r := recover(); r != nil {
						t.Fatalf("round %d panicked\nquery: %s\npanic: %v", round, src, r)
					}
				}()
				checkAll(t, src, f, args)
			}()
			if t.Failed() {
				t.Fatalf("round %d diverged (seed %d): %s", round, int64(round)*7919, src)
			}
		}
	}
}
