package plan

import (
	"reflect"
	"sort"
	"strings"
	"sync/atomic"
	"testing"

	"repro/internal/datum"
	"repro/internal/query"
)

// fakeReader is a test double for query.Reader + Catalog +
// ShardScanner over an in-memory class map. Its index can be made to
// lie: LookupRange may return extra candidates (false positives), or
// report ok=false even though the catalog advertised the index (a
// vanished index). Counters are atomic: parallel plan stages probe
// and fetch from worker goroutines.
type fakeReader struct {
	classes map[string][]cand
	indexes map[string]bool        // "Class.attr" has an index
	lies    map[string][]datum.OID // extra OIDs LookupRange returns for "Class.attr"
	vanish  bool                   // LookupRange always answers ok=false

	scans, lookups, fetches atomic.Int64
}

func newFake() *fakeReader {
	return &fakeReader{
		classes: map[string][]cand{},
		indexes: map[string]bool{},
		lies:    map[string][]datum.OID{},
	}
}

func (f *fakeReader) add(class string, oid datum.OID, attrs map[string]datum.Value) {
	rows := append(f.classes[class], cand{oid: oid, attrs: attrs})
	sort.Slice(rows, func(a, b int) bool { return rows[a].oid < rows[b].oid })
	f.classes[class] = rows
}

func (f *fakeReader) index(class, attr string) { f.indexes[class+"."+attr] = true }

func (f *fakeReader) ScanClass(class string, fn func(datum.OID, map[string]datum.Value) bool) error {
	f.scans.Add(1)
	for _, r := range f.classes[class] {
		if !fn(r.oid, r.attrs) {
			break
		}
	}
	return nil
}

// fakeShards partitions the fake store for the parallel executor's
// shard fan-out, mirroring the real store's OID-hash sharding.
const fakeShards = 4

func (f *fakeReader) ShardCount() int { return fakeShards }

func (f *fakeReader) PinShards() (uint64, func()) { return 1, func() {} }

func (f *fakeReader) ScanClassShard(si int, class string, _ uint64, fn func(datum.OID, map[string]datum.Value) bool) error {
	f.scans.Add(1)
	for _, r := range f.classes[class] {
		if int(r.oid)&(fakeShards-1) != si {
			continue
		}
		if !fn(r.oid, r.attrs) {
			break
		}
	}
	return nil
}

// inRange mimics a btree probe: rows whose attr value falls in
// [lo, hi] under datum.Compare. Missing and null attrs have no index
// entry; cross-kind values never match the bounds (and would be
// rejected by the residual anyway).
func (f *fakeReader) inRange(class, attr string, lo, hi *datum.Value, loInc, hiInc bool) []datum.OID {
	var out []datum.OID
	for _, r := range f.classes[class] {
		v, ok := r.attrs[attr]
		if !ok || v.IsNull() {
			continue
		}
		if lo != nil {
			c, err := datum.Compare(v, *lo)
			if err != nil || c < 0 || (c == 0 && !loInc) {
				continue
			}
		}
		if hi != nil {
			c, err := datum.Compare(v, *hi)
			if err != nil || c > 0 || (c == 0 && !hiInc) {
				continue
			}
		}
		out = append(out, r.oid)
	}
	return out
}

func (f *fakeReader) LookupRange(class, attr string, lo, hi *datum.Value, loInc, hiInc bool) ([]datum.OID, bool) {
	key := class + "." + attr
	if f.vanish || !f.indexes[key] {
		return nil, false
	}
	f.lookups.Add(1)
	oids := f.inRange(class, attr, lo, hi, loInc, hiInc)
	// Inject the configured false positives, then restore the btree
	// contract: sorted, deduplicated candidates.
	oids = append(oids, f.lies[key]...)
	sort.Slice(oids, func(a, b int) bool { return oids[a] < oids[b] })
	dedup := oids[:0]
	for i, o := range oids {
		if i == 0 || o != oids[i-1] {
			dedup = append(dedup, o)
		}
	}
	return dedup, true
}

func (f *fakeReader) Fetch(oid datum.OID) (string, map[string]datum.Value, bool) {
	f.fetches.Add(1)
	for class, rows := range f.classes {
		for _, r := range rows {
			if r.oid == oid {
				return class, r.attrs, true
			}
		}
	}
	return "", nil, false
}

func (f *fakeReader) ExtentEstimate(class string) int { return len(f.classes[class]) }

func (f *fakeReader) HasIndex(class, attr string) bool { return f.indexes[class+"."+attr] }

func (f *fakeReader) IndexEstimate(class, attr string, lo, hi *datum.Value, loInc, hiInc bool, limit int) (int, bool) {
	if !f.indexes[class+"."+attr] {
		return 0, false
	}
	n := len(f.inRange(class, attr, lo, hi, loInc, hiInc))
	if n > limit {
		n = limit
	}
	return n, true
}

// checkAll runs src through the tree-walk oracle and through every
// admissible plan — the default build, each option-constrained build,
// and the full enumeration — asserting bit-identical results. It
// returns the oracle result for additional direct assertions.
func checkAll(t *testing.T, src string, r query.Reader, args map[string]datum.Value) *query.Result {
	t.Helper()
	q := query.MustParse(src)
	want, werr := query.Eval(q, r, args)

	cat, _ := r.(Catalog)
	// forcePar removes the cardinality floor so even these tiny
	// fixtures exercise the parallel scan/join/aggregate paths.
	forcePar := func(n int) Options { return Options{Parallelism: n, ParallelThreshold: -1} }
	plans := []*Plan{
		Build(q, cat, args, Options{}),
		Build(q, cat, args, Options{DisableIndex: true}),
		Build(q, cat, args, Options{DisableHash: true}),
		Build(q, cat, args, Options{DisableIndex: true, DisableHash: true}),
		Build(q, cat, args, Options{ForceOrder: true}),
		Build(q, nil, args, Options{}), // no statistics
		Build(q, cat, args, forcePar(4)),
		Build(q, cat, args, Options{Parallelism: 4, ParallelThreshold: -1, DisableIndex: true}),
		Build(q, cat, args, Options{Parallelism: 2, ParallelThreshold: -1, DisableHash: true}),
		Build(q, cat, args, Options{Parallelism: 8, ParallelThreshold: -1, ForceOrder: true}),
		Build(q, nil, args, forcePar(3)), // parallel without statistics
	}
	plans = append(plans, Enumerate(q, cat, args, Options{})...)
	plans = append(plans, Enumerate(q, cat, args, forcePar(4))...)

	for i, p := range plans {
		got, gerr := p.Execute(r, args)
		if werr != nil {
			if gerr == nil {
				t.Fatalf("plan %d: oracle failed (%v) but plan succeeded\n%s", i, werr, p.Explain())
			}
			continue
		}
		if gerr != nil {
			t.Fatalf("plan %d: %v\n%s", i, gerr, p.Explain())
		}
		if !reflect.DeepEqual(want, got) {
			t.Fatalf("plan %d diverges from tree-walk\nquery: %s\nwant: %+v\ngot:  %+v\n%s",
				i, src, want, got, p.Explain())
		}
	}
	// The engine's one-call path.
	if werr == nil {
		got, err := Run(q, r, args)
		if err != nil {
			t.Fatalf("Run: %v", err)
		}
		if !reflect.DeepEqual(want, got) {
			t.Fatalf("Run diverges from tree-walk\nwant: %+v\ngot:  %+v", want, got)
		}
	}
	return want
}

func stockFake() *fakeReader {
	f := newFake()
	f.index("Stock", "price")
	for i, price := range []float64{10, 20, 30, 40, 50} {
		f.add("Stock", datum.OID(i+1), map[string]datum.Value{
			"symbol": datum.Str(string(rune('A' + i))),
			"price":  datum.Float(price),
		})
	}
	return f
}

func TestLyingIndexFalsePositivesRefiltered(t *testing.T) {
	f := stockFake()
	f.add("Bond", 7, map[string]datum.Value{"price": datum.Float(30)})
	// The index lies three ways: a live Stock whose price does not
	// match (OID 2, price 20), a dangling OID, and an object of
	// another class whose attribute would match.
	f.lies["Stock.price"] = []datum.OID{2, 7, 99}

	got := checkAll(t, "select s from Stock s where s.price = 30", f, nil)
	if len(got.Rows) != 1 || !datum.Equal(got.Rows[0][0], datum.ID(3)) {
		t.Fatalf("rows = %+v, want exactly #3", got.Rows)
	}
	if f.lookups.Load() == 0 {
		t.Fatal("index never probed: the lying-index test exercised nothing")
	}

	// The default plan with statistics must actually take the index
	// path (5-row extent, selective equality).
	q := query.MustParse("select s from Stock s where s.price = 30")
	p := Build(q, f, nil, Options{})
	if p.steps[0].access != accessIndex {
		t.Fatalf("default plan access = %v, want index scan\n%s", p.steps[0].access, p.Explain())
	}
}

func TestVanishedIndexDegradesToExtentScan(t *testing.T) {
	f := stockFake()
	f.vanish = true // catalog still advertises the index; probes fail

	got := checkAll(t, "select s from Stock s where s.price >= 40", f, nil)
	if len(got.Rows) != 2 {
		t.Fatalf("rows = %+v, want #4 and #5", got.Rows)
	}

	q := query.MustParse("select s from Stock s where s.price >= 40")
	p := Build(q, f, nil, Options{})
	if p.steps[0].access != accessIndex {
		t.Fatalf("plan should still choose the index (the catalog lied): %v", p.steps[0].access)
	}
	f.scans.Store(0)
	res, err := p.Execute(f, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 2 || f.scans.Load() == 0 {
		t.Fatalf("rows = %d scans = %d; want a degraded extent scan with 2 rows", len(res.Rows), f.scans.Load())
	}
}

// joinFake builds two classes for join tests; keys go in as raw
// values so callers control nulls, kinds, and duplicates.
func joinFake(sKeys, hKeys []datum.Value) *fakeReader {
	f := newFake()
	f.index("S", "k")
	for i, v := range sKeys {
		attrs := map[string]datum.Value{"tag": datum.Int(int64(i))}
		if v.Kind() != datum.KindList { // KindList marks "attribute absent"
			attrs["k"] = v
		}
		f.add("S", datum.OID(i+1), attrs)
	}
	for i, v := range hKeys {
		attrs := map[string]datum.Value{"tag": datum.Int(int64(100 + i))}
		if v.Kind() != datum.KindList {
			attrs["k"] = v
		}
		f.add("H", datum.OID(i+101), attrs)
	}
	return f
}

var absent = datum.List() // sentinel: leave the attribute off the row

func TestJoinEdgeCases(t *testing.T) {
	const join = "select s, h from S s, H h where s.k = h.k"
	cases := []struct {
		name   string
		s, h   []datum.Value
		nTuple int
	}{
		{"both empty", nil, nil, 0},
		{"empty build side", nil, []datum.Value{datum.Int(1)}, 0},
		{"empty probe side", []datum.Value{datum.Int(1)}, nil, 0},
		{"null keys never join", []datum.Value{datum.Null(), datum.Int(1)}, []datum.Value{datum.Null(), datum.Int(2)}, 0},
		{"missing keys never join", []datum.Value{absent, datum.Int(3)}, []datum.Value{absent, datum.Int(3)}, 1},
		{"duplicate keys multiply", []datum.Value{datum.Int(7), datum.Int(7)}, []datum.Value{datum.Int(7), datum.Int(7), datum.Int(7)}, 6},
		{"int and float keys cross-match", []datum.Value{datum.Int(2)}, []datum.Value{datum.Float(2)}, 1},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			got := checkAll(t, join, joinFake(tc.s, tc.h), nil)
			if len(got.Rows) != tc.nTuple {
				t.Fatalf("join rows = %d, want %d: %+v", len(got.Rows), tc.nTuple, got.Rows)
			}
		})
	}
}

func TestHashKeyPrecisionCollision(t *testing.T) {
	// 2^53 and 2^53+1 are distinct int64s with the same float64 image,
	// so they land in the same hash bucket (datum keys encode numerics
	// through float64). The residual equality compares int/int exactly
	// and must keep them apart.
	big := int64(1) << 53
	f := joinFake(
		[]datum.Value{datum.Int(big), datum.Int(big + 1)},
		[]datum.Value{datum.Int(big), datum.Float(float64(big))},
	)
	got := checkAll(t, "select s.tag, h.tag from S s, H h where s.k = h.k", f, nil)
	// Int(2^53) matches both H rows; Int(2^53+1) vs Float(2^53) also
	// matches (cross-kind comparison goes through float64, which
	// rounds). Only the exact int/int pair Int(2^53+1) = Int(2^53)
	// must NOT match.
	want := 3
	if len(got.Rows) != want {
		t.Fatalf("rows = %d, want %d: %+v", len(got.Rows), want, got.Rows)
	}
	for _, r := range got.Rows {
		if r[0].AsInt() == 1 && r[1].AsInt() == 100 {
			t.Fatalf("collision leaked: Int(2^53+1) joined Int(2^53): %+v", got.Rows)
		}
	}
}

func TestIdentityPinEdgeCases(t *testing.T) {
	f := stockFake()
	f.add("Bond", 7, map[string]datum.Value{"price": datum.Float(1)})
	const pin = "select s.symbol from Stock s where s = event.target"
	cases := []struct {
		name string
		args map[string]datum.Value
		rows int
	}{
		{"missing event arg", nil, 0},
		{"non-oid pin value", map[string]datum.Value{"target": datum.Int(3)}, 0},
		{"dangling oid", map[string]datum.Value{"target": datum.ID(999)}, 0},
		{"wrong class", map[string]datum.Value{"target": datum.ID(7)}, 0},
		{"live oid", map[string]datum.Value{"target": datum.ID(3)}, 1},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			got := checkAll(t, pin, f, tc.args)
			if len(got.Rows) != tc.rows {
				t.Fatalf("rows = %d, want %d", len(got.Rows), tc.rows)
			}
		})
	}
}

func TestAggregateEdgeCases(t *testing.T) {
	f := newFake()
	const agg = "select count(*) as n, sum(s.x) as t, avg(s.x) as a, min(s.x) as lo, max(s.x) as hi from S s"

	// Empty input: count 0, sum 0, avg/min/max null.
	got := checkAll(t, agg, f, nil)
	want := []datum.Value{datum.Int(0), datum.Int(0), datum.Null(), datum.Null(), datum.Null()}
	if !reflect.DeepEqual(got.Rows[0], want) {
		t.Fatalf("empty aggregate = %+v, want %+v", got.Rows[0], want)
	}

	// Nulls and missing values are skipped; duplicates count.
	f.add("S", 1, map[string]datum.Value{"x": datum.Int(4)})
	f.add("S", 2, map[string]datum.Value{"x": datum.Null()})
	f.add("S", 3, map[string]datum.Value{})
	f.add("S", 4, map[string]datum.Value{"x": datum.Int(4)})
	f.add("S", 5, map[string]datum.Value{"x": datum.Int(10)})
	got = checkAll(t, agg, f, nil)
	want = []datum.Value{datum.Int(5), datum.Int(18), datum.Float(6), datum.Int(4), datum.Int(10)}
	if !reflect.DeepEqual(got.Rows[0], want) {
		t.Fatalf("aggregate = %+v, want %+v", got.Rows[0], want)
	}

	// Aggregate over a join with an empty side stays a single row.
	got = checkAll(t, "select count(*) as n from S s, H h where s.x = h.x", f, nil)
	if len(got.Rows) != 1 || !datum.Equal(got.Rows[0][0], datum.Int(0)) {
		t.Fatalf("join aggregate over empty side = %+v", got.Rows)
	}
}

func TestOrderByAndLimitMatchOracle(t *testing.T) {
	f := stockFake()
	checkAll(t, "select s.symbol, s.price from Stock s order by s.price desc limit 3", f, nil)
	checkAll(t, "select s.symbol from Stock s where s.price > 15 order by s.symbol", f, nil)
	checkAll(t, "select s, h from Stock s, Stock h where s.price <= h.price order by h.price desc, s.price limit 7", f, nil)
}

func TestFromlessQueryEmitsOneRow(t *testing.T) {
	// The parser requires FROM, but rule internals may hand-build
	// queries; the oracle emits one row without consulting WHERE, and
	// the executor is deliberately bug-compatible.
	q := &query.Query{
		Select: []query.SelectItem{{Expr: &query.EventRef{Name: "x"}}},
		Where:  &query.Literal{Val: datum.Bool(false)},
		Limit:  -1,
	}
	f := newFake()
	args := map[string]datum.Value{"x": datum.Int(42)}
	want, err := query.Eval(q, f, args)
	if err != nil {
		t.Fatal(err)
	}
	got, err := Build(q, f, args, Options{}).Execute(f, args)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(want, got) {
		t.Fatalf("want %+v, got %+v", want, got)
	}
	if len(got.Rows) != 1 {
		t.Fatalf("FROM-less query rows = %d, want 1", len(got.Rows))
	}
}

// saaFake models the SAA benchmark shape: a small Stock class and a
// large Holding class with a selective owner index.
func saaFake(holdings int) *fakeReader {
	f := newFake()
	f.index("Stock", "symbol")
	f.index("Holding", "owner")
	for i := 0; i < 20; i++ {
		f.add("Stock", datum.OID(i+1), map[string]datum.Value{
			"symbol": datum.Str("SYM" + string(rune('A'+i))),
			"price":  datum.Float(float64(10 + i)),
		})
	}
	for i := 0; i < holdings; i++ {
		f.add("Holding", datum.OID(1000+i), map[string]datum.Value{
			"owner":  datum.Str("owner" + string(rune('a'+i%26))),
			"symbol": datum.Str("SYM" + string(rune('A'+i%20))),
			"qty":    datum.Int(int64(i)),
		})
	}
	return f
}

func TestCostModelReordersSelectiveJoin(t *testing.T) {
	f := saaFake(520)
	const src = "select s, h from Stock s, Holding h where s.symbol = h.symbol and h.owner = event.owner"
	args := map[string]datum.Value{"owner": datum.Str("ownerc")}

	q := query.MustParse(src)
	p := Build(q, f, args, Options{})
	if p.steps[0].from.Class != "Holding" || p.steps[0].access != accessIndex {
		t.Fatalf("statistics should drive Holding-first via the owner index:\n%s", p.Explain())
	}
	if p.steps[1].from.Class != "Stock" || p.steps[1].access == accessExtent {
		t.Fatalf("inner Stock should not be a bare extent scan:\n%s", p.Explain())
	}

	// Without a catalog the planner keeps the syntactic order.
	p = Build(q, nil, args, Options{})
	if p.steps[0].from.Class != "Stock" {
		t.Fatalf("no-statistics plan must keep syntactic order:\n%s", p.Explain())
	}
	// ForceOrder pins the syntactic order even with statistics.
	p = Build(q, f, args, Options{ForceOrder: true})
	if p.steps[0].from.Class != "Stock" {
		t.Fatalf("ForceOrder ignored:\n%s", p.Explain())
	}
	// DisableIndex forbids every index access.
	p = Build(q, f, args, Options{DisableIndex: true})
	for _, s := range p.steps {
		if s.access == accessIndex || s.access == accessPin {
			t.Fatalf("DisableIndex produced %v:\n%s", s.access, p.Explain())
		}
	}

	got := checkAll(t, src, f, args)
	if len(got.Rows) == 0 {
		t.Fatal("selective join found no rows; fixture is broken")
	}
}

func TestEnumerateCoversAccessPathsAndOrders(t *testing.T) {
	f := saaFake(60)
	q := query.MustParse("select s, h from Stock s, Holding h where s.symbol = h.symbol and h.owner = event.owner")
	plans := Enumerate(q, f, map[string]datum.Value{"owner": datum.Str("ownera")}, Options{})
	if len(plans) < 4 {
		t.Fatalf("enumeration too small: %d plans", len(plans))
	}
	var sawHash, sawIndex, sawHoldingFirst, sawStockFirst bool
	for _, p := range plans {
		for _, s := range p.steps {
			switch s.access {
			case accessHash:
				sawHash = true
			case accessIndex:
				sawIndex = true
			}
		}
		if p.steps[0].from.Class == "Holding" {
			sawHoldingFirst = true
		} else {
			sawStockFirst = true
		}
	}
	if !sawHash || !sawIndex || !sawHoldingFirst || !sawStockFirst {
		t.Fatalf("enumeration misses shapes: hash=%v index=%v holdingFirst=%v stockFirst=%v",
			sawHash, sawIndex, sawHoldingFirst, sawStockFirst)
	}
}

func TestExplainOutput(t *testing.T) {
	f := saaFake(520)
	q := query.MustParse("select s.symbol, h.qty from Stock s, Holding h " +
		"where s.symbol = h.symbol and h.owner = event.owner and h.qty > 3 " +
		"order by h.qty desc limit 5")
	text := Build(q, f, map[string]datum.Value{"owner": datum.Str("ownerb")}, Options{}).Explain()
	for _, want := range []string{
		"plan (cost=", "statistics", "index scan", "Holding", "filter:",
		"canonical sort", "order by", "limit 5",
	} {
		if !strings.Contains(text, want) {
			t.Fatalf("explain output missing %q:\n%s", want, text)
		}
	}
	// No-statistics explain says so.
	text = Build(q, nil, nil, Options{}).Explain()
	if !strings.Contains(text, "no statistics") {
		t.Fatalf("explain should flag missing statistics:\n%s", text)
	}
}
