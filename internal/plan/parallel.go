package plan

// Parallel execution. A plan whose steps carry par > 1 runs as a
// staged, materialized pipeline instead of the volcano tree: each
// stage consumes the previous stage's tuple slice and produces the
// next, fanning work out over goroutines where the step allows it.
//
//	shard 0 ──scan+filter──┐
//	shard 1 ──scan+filter──┤  bounded      ┌──────────┐
//	   ...                 ├─ channel  ──▶ │ gather / │ ─▶ canonical ─▶ emit
//	shard N ──scan+filter──┘  exchange     │  merge   │     OID sort
//	                                       └──────────┘
//
// Correctness rides entirely on three facts (see the package
// comment): tuple production order is free because the canonical
// slot-wise OID sort restores the oracle's emission order; access
// paths never decide membership, so residual re-filtering in any
// worker is exactly the oracle's check; and every worker of a base
// scan or hash build reads at ONE pinned snapshot LSN, so the union
// of the shard scans equals one serial scan of the same snapshot.
// Aggregation stays bit-identical through query.MergeAggState: exact
// partial merges (count, min/max, integer sums) run chunk-parallel,
// order-sensitive ones (float sums, avg) fall back to one serial
// re-accumulation over the already-sorted tuples.

import (
	"errors"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/datum"
	"repro/internal/obs"
	"repro/internal/query"
)

// ShardScanner is the optional reader fan-out surface for
// shard-parallel extent scans. The object manager's readers implement
// it against the store's OID-hash shards; the executor type-asserts
// it from the query.Reader, and any reader may decline by not
// implementing it — base scans then run serially.
type ShardScanner interface {
	// ShardCount returns the number of committed-tier shards.
	ShardCount() int
	// PinShards returns the snapshot LSN every shard worker must read
	// at, plus a release for the backing pin. Pinning once for the
	// whole fan-out is the parallel scan's consistency contract: all
	// workers observe one committed state no matter how commits race.
	PinShards() (lsn uint64, release func())
	// ScanClassShard visits the class's live objects held by shard si
	// at the given LSN, in OID order within the shard.
	ScanClassShard(si int, class string, lsn uint64, fn func(datum.OID, map[string]datum.Value) bool) error
}

// maxPar returns the widest step fan-out of the plan (1 when fully
// serial).
func (p *Plan) maxPar() int {
	par := 1
	for _, s := range p.steps {
		if s.par > par {
			par = s.par
		}
	}
	return par
}

// --- partitioned hash table ---

// hashTable is the hash-join build side, partitioned by FNV-1a of the
// join key so parallel build workers merge partition-disjoint (and
// probe workers read lock-free — the table is immutable after build).
// One partition degenerates to the serial executor's plain map.
type hashTable struct {
	mask  uint32
	parts []map[string][]cand
}

func newHashTable(nparts int) *hashTable {
	n := 1
	for n < nparts {
		n <<= 1
	}
	parts := make([]map[string][]cand, n)
	for i := range parts {
		parts[i] = map[string][]cand{}
	}
	return &hashTable{mask: uint32(n - 1), parts: parts}
}

// fnvHash is FNV-1a over the datum key bytes.
func fnvHash(key string) uint32 {
	h := uint32(2166136261)
	for i := 0; i < len(key); i++ {
		h ^= uint32(key[i])
		h *= 16777619
	}
	return h
}

func (h *hashTable) bucket(key string) map[string][]cand {
	if h.mask == 0 {
		return h.parts[0]
	}
	return h.parts[fnvHash(key)&h.mask]
}

func (h *hashTable) add(key string, c cand) {
	b := h.bucket(key)
	b[key] = append(b[key], c)
}

func (h *hashTable) get(key string) []cand { return h.bucket(key)[key] }

// --- gather instrumentation ---

// gather records worker completion times; the skew between the first
// and last arrival is how long the gather node idled on stragglers.
type gather struct {
	mu          sync.Mutex
	first, last time.Time
	n           int
}

func (g *gather) done() {
	now := time.Now()
	g.mu.Lock()
	if g.n == 0 {
		g.first = now
	}
	g.n++
	g.last = now
	g.mu.Unlock()
}

// observeGather records one parallel stage's fan-out width and gather
// skew. Nil-safe on p.obs.
func (p *Plan) observeGather(workers int, g *gather) {
	if p.obs == nil {
		return
	}
	p.obs.ObserveN(obs.HPlanFanout, uint64(workers))
	g.mu.Lock()
	skew := g.last.Sub(g.first)
	g.mu.Unlock()
	p.obs.Observe(obs.HPlanGatherWait, skew)
}

// --- bounded-channel exchange ---

// parallelBatch is the tuple batch size shipped per exchange send.
const parallelBatch = 128

// exchange is the bounded channel between stage workers and the
// gather loop. The first error cancels everything: fail closes done,
// workers abort their scans on the next stopped() poll, blocked
// senders fall out of send, and the gather loop keeps draining until
// the closer goroutine (wg.Wait → close(ch)) ends the range — so no
// worker can leak blocked on a full channel.
type exchange struct {
	ch   chan []tuple
	done chan struct{}
	once sync.Once
	err  error
}

func newExchange(workers int) *exchange {
	return &exchange{ch: make(chan []tuple, 2*workers), done: make(chan struct{})}
}

func (ex *exchange) fail(err error) {
	ex.once.Do(func() {
		ex.err = err
		close(ex.done)
	})
}

func (ex *exchange) stopped() bool {
	select {
	case <-ex.done:
		return true
	default:
		return false
	}
}

// send ships one batch, abandoning it when the exchange is cancelled.
func (ex *exchange) send(batch []tuple) bool {
	if len(batch) == 0 {
		return !ex.stopped()
	}
	select {
	case ex.ch <- batch:
		return true
	case <-ex.done:
		return false
	}
}

// runStage drives one fan-out: workers produce batches into the
// exchange, the calling goroutine gathers. worker must poll
// ex.stopped() and return promptly once cancelled.
func (p *Plan) runStage(workers int, worker func(w int, ex *exchange) error) ([]tuple, error) {
	ex := newExchange(workers)
	g := &gather{}
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			defer g.done()
			if err := worker(w, ex); err != nil {
				ex.fail(err)
			}
		}(w)
	}
	go func() {
		wg.Wait()
		close(ex.ch)
	}()
	var out []tuple
	for batch := range ex.ch {
		out = append(out, batch...)
	}
	p.observeGather(workers, g)
	if ex.err != nil {
		return nil, ex.err
	}
	return out, nil
}

// --- staged pipeline ---

// joinParallel produces the (unsorted) join output of a plan with at
// least one parallel step, stage by stage.
func (p *Plan) joinParallel(x *execCtx) ([]tuple, error) {
	width := len(p.vars)
	s0 := p.steps[0]
	var tuples []tuple
	var err error
	ss, sharded := x.r.(ShardScanner)
	if s0.par > 1 && s0.access == accessExtent && sharded {
		tuples, err = p.parallelBase(x, s0, ss, width)
	} else {
		tuples, err = p.serialBase(x, s0, width)
	}
	if err != nil {
		return nil, err
	}
	placed := []*step{s0}
	for _, s := range p.steps[1:] {
		if len(tuples) == 0 {
			// No outer rows: every remaining stage is a no-op. The
			// serial executor never Opens an inner step without an
			// outer row — a hash build (and any build-key error) is
			// skipped there too, so skipping here stays identical.
			break
		}
		if s.par > 1 {
			tuples, err = p.parallelJoin(x, s, placed, tuples)
		} else {
			tuples, err = p.serialJoin(x, s, placed, tuples)
		}
		if err != nil {
			return nil, err
		}
		placed = append(placed, s)
	}
	return tuples, nil
}

// parallelBase fans the first step's extent scan out one worker per
// committed-tier shard slice, all pinned at one snapshot LSN. Each
// worker applies the step's residuals with its own env and ships
// surviving tuples through the exchange.
func (p *Plan) parallelBase(x *execCtx, s *step, ss ShardScanner, width int) ([]tuple, error) {
	lsn, release := ss.PinShards()
	defer release()
	nsh := ss.ShardCount()
	workers := s.par
	if workers > nsh {
		workers = nsh
	}
	return p.runStage(workers, func(w int, ex *exchange) error {
		env := query.NewEnv(x.r, x.args)
		batch := make([]tuple, 0, parallelBatch)
		for si := w; si < nsh; si += workers {
			if ex.stopped() {
				return nil
			}
			var evalErr error
			err := ss.ScanClassShard(si, s.from.Class, lsn, func(oid datum.OID, attrs map[string]datum.Value) bool {
				if ex.stopped() {
					return false
				}
				env.Bind(s.from.Var, oid, attrs)
				for _, r := range s.residual {
					ok, err := env.EvalBool(r)
					if err != nil {
						evalErr = err
						return false
					}
					if !ok {
						return true
					}
				}
				t := make(tuple, width)
				t[s.slot] = cand{oid: oid, attrs: attrs}
				batch = append(batch, t)
				if len(batch) == parallelBatch {
					if !ex.send(batch) {
						return false
					}
					batch = make([]tuple, 0, parallelBatch)
				}
				return true
			})
			if err == nil {
				err = evalErr
			}
			if err != nil {
				return err
			}
		}
		ex.send(batch)
		return nil
	})
}

// serialBase materializes the first step's output on the calling
// goroutine (the staged equivalent of baseIter).
func (p *Plan) serialBase(x *execCtx, s *step, width int) ([]tuple, error) {
	sc := &stepCands{s: s}
	if err := sc.Open(x); err != nil {
		return nil, err
	}
	defer sc.Close(x)
	var out []tuple
	for {
		c, ok, err := sc.Next(x)
		if err != nil {
			return nil, err
		}
		if !ok {
			return out, nil
		}
		t := make(tuple, width)
		t[s.slot] = c
		out = append(out, t)
	}
}

// bindPrefix binds the outer tuple's placed variables into env.
func bindPrefix(env *query.Env, placed []*step, t tuple) {
	for _, ps := range placed {
		c := t[ps.slot]
		env.Bind(ps.from.Var, c.oid, c.attrs)
	}
}

// joinChunk is the outer-tuple granule parallel probe workers claim.
const joinChunk = 64

// parallelJoin runs one join step over the materialized outer tuples
// with par probe workers. A hash step's build side is constructed
// first — shard-parallel and partitioned when the reader allows —
// then shared immutably by every prober; index and extent inners
// re-open per outer row inside each worker, exactly like the serial
// nested loop.
func (p *Plan) parallelJoin(x *execCtx, s *step, placed []*step, outer []tuple) ([]tuple, error) {
	var table *hashTable
	if s.access == accessHash {
		var err error
		if table, err = p.buildHash(x, s); err != nil {
			return nil, err
		}
		if len(outer) == 0 {
			return nil, nil
		}
	}
	workers := s.par
	if max := (len(outer) + joinChunk - 1) / joinChunk; workers > max {
		workers = max
	}
	var next atomic.Int64
	return p.runStage(workers, func(w int, ex *exchange) error {
		env := query.NewEnv(x.r, x.args)
		wx := &execCtx{r: x.r, env: env, args: x.args}
		sc := &stepCands{s: s, table: table, built: table != nil}
		batch := make([]tuple, 0, parallelBatch)
		for {
			if ex.stopped() {
				return nil
			}
			lo := int(next.Add(1)-1) * joinChunk
			if lo >= len(outer) {
				break
			}
			hi := lo + joinChunk
			if hi > len(outer) {
				hi = len(outer)
			}
			for _, t := range outer[lo:hi] {
				bindPrefix(env, placed, t)
				if err := sc.Open(wx); err != nil {
					return err
				}
				for {
					c, ok, err := sc.Next(wx)
					if err != nil {
						return err
					}
					if !ok {
						break
					}
					nt := make(tuple, len(t))
					copy(nt, t)
					nt[s.slot] = c
					batch = append(batch, nt)
					if len(batch) >= parallelBatch {
						if !ex.send(batch) {
							return nil
						}
						batch = make([]tuple, 0, parallelBatch)
					}
				}
			}
		}
		ex.send(batch)
		return nil
	})
}

// serialJoin runs one join step on the calling goroutine (the staged
// equivalent of joinIter; the hash build persists across outer rows
// inside sc).
func (p *Plan) serialJoin(x *execCtx, s *step, placed []*step, outer []tuple) ([]tuple, error) {
	sc := &stepCands{s: s}
	var out []tuple
	for _, t := range outer {
		bindPrefix(x.env, placed, t)
		if err := sc.Open(x); err != nil {
			return nil, err
		}
		for {
			c, ok, err := sc.Next(x)
			if err != nil {
				return nil, err
			}
			if !ok {
				break
			}
			nt := make(tuple, len(t))
			copy(nt, t)
			nt[s.slot] = c
			out = append(out, nt)
		}
	}
	return out, nil
}

// buildHash constructs the partitioned build side of a hash step. With
// a ShardScanner it fans the build out one worker per shard slice at
// one pinned LSN, each filling a private partitioned table, then
// merges per partition — merge workers own disjoint partitions, so
// the whole build is lock-free. Otherwise one serial scan fills the
// (still partitioned) table.
func (p *Plan) buildHash(x *execCtx, s *step) (*hashTable, error) {
	nparts := s.par
	ss, sharded := x.r.(ShardScanner)
	workers := 0
	var nsh int
	if sharded {
		nsh = ss.ShardCount()
		workers = s.par
		if workers > nsh {
			workers = nsh
		}
	}
	if workers <= 1 {
		return buildHashSerial(x, s, nparts)
	}

	lsn, release := ss.PinShards()
	defer release()
	locals := make([]*hashTable, workers)
	errs := make([]error, workers)
	var stop atomic.Bool
	g := &gather{}
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			defer g.done()
			env := query.NewEnv(x.r, x.args)
			t := newHashTable(nparts)
			locals[w] = t
			for si := w; si < nsh; si += workers {
				if stop.Load() {
					return
				}
				var keyErr error
				err := ss.ScanClassShard(si, s.from.Class, lsn, func(oid datum.OID, attrs map[string]datum.Value) bool {
					if stop.Load() {
						return false
					}
					env.Bind(s.from.Var, oid, attrs)
					v, err := env.Eval(s.buildKey)
					if err != nil {
						if errors.Is(err, query.ErrNoValue) {
							return true // a missing key never equals anything
						}
						keyErr = err
						return false
					}
					if v.IsNull() {
						return true // null never equals anything
					}
					t.add(v.Key(), cand{oid: oid, attrs: attrs})
					return true
				})
				if err == nil {
					err = keyErr
				}
				if err != nil {
					errs[w] = err
					stop.Store(true)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	p.observeGather(workers, g)
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}

	merged := newHashTable(nparts)
	mworkers := workers
	if mworkers > len(merged.parts) {
		mworkers = len(merged.parts)
	}
	var mwg sync.WaitGroup
	for w := 0; w < mworkers; w++ {
		mwg.Add(1)
		go func(w int) {
			defer mwg.Done()
			for pi := w; pi < len(merged.parts); pi += mworkers {
				dst := merged.parts[pi]
				for _, lt := range locals {
					for k, cs := range lt.parts[pi] {
						dst[k] = append(dst[k], cs...)
					}
				}
			}
		}(w)
	}
	mwg.Wait()
	return merged, nil
}

// buildHashSerial fills a partitioned table with one ScanClass — the
// serial executor's openHash build, shared here so both paths agree.
func buildHashSerial(x *execCtx, s *step, nparts int) (*hashTable, error) {
	t := newHashTable(nparts)
	var keyErr error
	err := x.r.ScanClass(s.from.Class, func(oid datum.OID, attrs map[string]datum.Value) bool {
		x.env.Bind(s.from.Var, oid, attrs)
		v, err := x.env.Eval(s.buildKey)
		x.env.Unbind(s.from.Var)
		if err != nil {
			if errors.Is(err, query.ErrNoValue) {
				return true // a missing key never equals anything
			}
			keyErr = err
			return false
		}
		if v.IsNull() {
			return true // null never equals anything
		}
		t.add(v.Key(), cand{oid: oid, attrs: attrs})
		return true
	})
	if keyErr != nil {
		return nil, keyErr
	}
	if err != nil {
		return nil, err
	}
	return t, nil
}

// --- parallel partial aggregation ---

// parallelAggregate accumulates the select items' aggregates over the
// canonically sorted tuples in contiguous chunks, one worker each,
// then merges the partials in chunk order. ok is false when any item
// refuses an exact merge (order-sensitive accumulation — float sums,
// averages, incomparable min/max partials); the caller then
// re-accumulates serially, preserving bit-identical output.
func (p *Plan) parallelAggregate(x *execCtx, tuples []tuple) ([]*query.AggState, bool, error) {
	q := p.Query
	workers := p.maxPar()
	if chunks := (len(tuples) + joinChunk - 1) / joinChunk; workers > chunks {
		workers = chunks
	}
	if workers <= 1 {
		return nil, false, nil
	}
	per := (len(tuples) + workers - 1) / workers
	partials := make([][]*query.AggState, workers)
	errs := make([]error, workers)
	g := &gather{}
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			defer g.done()
			lo, hi := w*per, (w+1)*per
			if hi > len(tuples) {
				hi = len(tuples)
			}
			if lo >= hi {
				return
			}
			env := query.NewEnv(x.r, x.args)
			aggs := make([]*query.AggState, len(q.Select))
			for i := range aggs {
				aggs[i] = &query.AggState{}
			}
			partials[w] = aggs
			for _, t := range tuples[lo:hi] {
				for slot, c := range t {
					env.Bind(p.vars[slot], c.oid, c.attrs)
				}
				for i, s := range q.Select {
					if err := env.Accumulate(aggs[i], s.Expr); err != nil {
						errs[w] = err
						return
					}
				}
			}
		}(w)
	}
	wg.Wait()
	p.observeGather(workers, g)
	for _, err := range errs {
		if err != nil {
			return nil, false, err
		}
	}
	var merged []*query.AggState
	for _, part := range partials {
		if part == nil {
			continue
		}
		if merged == nil {
			merged = part
			continue
		}
		for i, s := range q.Select {
			if !query.MergeAggState(merged[i], part[i], s.Expr) {
				return nil, false, nil
			}
		}
	}
	if merged == nil {
		return nil, false, nil
	}
	return merged, true, nil
}
