package plan

import (
	"fmt"
	"strings"

	"repro/internal/query"
)

// Explain renders the plan as text: one line per pipeline step (join
// order, access path, bounds, residual filters, estimates), then the
// canonical sort and the emit stages. Surfaced through the engine's
// `explain` op and hipac-cli.
func (p *Plan) Explain() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "query: %s\n", p.Query.String())
	src := "statistics"
	if !p.stats {
		src = "no statistics, heuristic"
	}
	fmt.Fprintf(&sb, "plan (cost=%.1f, %s):\n", p.cost, src)
	for i, s := range p.steps {
		fmt.Fprintf(&sb, "  %d. %s %s as %s", i+1, s.access, s.from.Class, s.from.Var)
		switch s.access {
		case accessPin:
			fmt.Fprintf(&sb, ": %s = %s", s.from.Var, s.pin.String())
		case accessIndex:
			fmt.Fprintf(&sb, " on %s: %s", s.attr, boundsString(s))
			if s.param {
				sb.WriteString(" [per outer row]")
			}
		case accessHash:
			fmt.Fprintf(&sb, ": build %s, probe %s", s.buildKey.String(), s.probeKey.String())
		}
		if s.par > 1 {
			fmt.Fprintf(&sb, " parallel=%d", s.par)
		}
		fmt.Fprintf(&sb, " (est %.0f rows", s.estRows)
		if i > 0 {
			sb.WriteString(" cumulative")
		}
		sb.WriteString(")\n")
		for _, r := range s.residual {
			fmt.Fprintf(&sb, "     filter: %s\n", r.String())
		}
	}
	if len(p.vars) > 1 {
		fmt.Fprintf(&sb, "  canonical sort (%s)\n", strings.Join(p.vars, ", "))
	}
	q := p.Query
	if len(q.Select) > 0 && query.HasAggregate(q.Select[0].Expr) {
		items := make([]string, len(q.Select))
		for i, s := range q.Select {
			items[i] = s.Expr.String()
		}
		fmt.Fprintf(&sb, "  aggregate: %s\n", strings.Join(items, ", "))
	} else {
		items := make([]string, len(q.Select))
		for i, s := range q.Select {
			items[i] = s.Name()
		}
		fmt.Fprintf(&sb, "  select: %s\n", strings.Join(items, ", "))
	}
	if len(q.OrderBy) > 0 {
		items := make([]string, len(q.OrderBy))
		for i, o := range q.OrderBy {
			items[i] = o.Expr.String()
			if o.Desc {
				items[i] += " desc"
			}
		}
		fmt.Fprintf(&sb, "  order by %s\n", strings.Join(items, ", "))
	}
	if q.Limit >= 0 {
		fmt.Fprintf(&sb, "  limit %d\n", q.Limit)
	}
	return sb.String()
}

func boundsString(s *step) string {
	a := s.from.Var + "." + s.attr
	if s.lo != nil && s.hi != nil && s.lo == s.hi {
		return fmt.Sprintf("%s = %s", a, s.lo.String())
	}
	var parts []string
	if s.lo != nil {
		op := ">"
		if s.loInc {
			op = ">="
		}
		parts = append(parts, fmt.Sprintf("%s %s %s", a, op, s.lo.String()))
	}
	if s.hi != nil {
		op := "<"
		if s.hiInc {
			op = "<="
		}
		parts = append(parts, fmt.Sprintf("%s %s %s", a, op, s.hi.String()))
	}
	if len(parts) == 0 {
		return a + " unbounded"
	}
	return strings.Join(parts, " and ")
}
