// Engine-level differential test: every plan against the tree-walk
// oracle on a real MVCC store, at a snapshot LSN pinned while
// concurrent committers keep mutating the underlying classes. Lives
// in an external test package because it drives the full engine,
// which itself links against the planner.
package plan_test

import (
	"fmt"
	"math/rand"
	"reflect"
	"strings"
	"sync"
	"sync/atomic"
	"testing"

	"repro/internal/core"
	"repro/internal/datum"
	"repro/internal/object"
	"repro/internal/plan"
	"repro/internal/query"
)

func diffEngine(t *testing.T) *core.Engine {
	t.Helper()
	e, err := core.Open(core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { e.Close() })
	tx := e.Begin()
	for _, c := range []object.Class{
		{Name: "Stock", Attrs: []object.AttrDef{
			{Name: "symbol", Kind: datum.KindString, Indexed: true},
			{Name: "price", Kind: datum.KindFloat, Indexed: true},
		}},
		{Name: "Holding", Attrs: []object.AttrDef{
			{Name: "owner", Kind: datum.KindString, Indexed: true},
			{Name: "symbol", Kind: datum.KindString},
			{Name: "qty", Kind: datum.KindInt},
		}},
	} {
		if err := e.DefineClass(tx, c); err != nil {
			t.Fatal(err)
		}
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	return e
}

// TestDifferentialUnderConcurrentCommitters pins a snapshot reader
// per round and checks that the oracle and every enumerated plan see
// the same rows through it, while writer goroutines commit against
// the same classes. Run it under -race: the point is that plan
// execution shares no unsynchronized state with committers.
func TestDifferentialUnderConcurrentCommitters(t *testing.T) {
	e := diffEngine(t)

	// Seed data: a few stocks, holdings spread over owners.
	seed := e.Begin()
	for i := 0; i < 8; i++ {
		if _, err := e.Create(seed, "Stock", map[string]datum.Value{
			"symbol": datum.Str(fmt.Sprintf("SYM%d", i)),
			"price":  datum.Float(float64(10 + i)),
		}); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 60; i++ {
		if _, err := e.Create(seed, "Holding", map[string]datum.Value{
			"owner":  datum.Str(fmt.Sprintf("owner%d", i%6)),
			"symbol": datum.Str(fmt.Sprintf("SYM%d", i%8)),
			"qty":    datum.Int(int64(i)),
		}); err != nil {
			t.Fatal(err)
		}
	}
	if err := seed.Commit(); err != nil {
		t.Fatal(err)
	}

	// Committers: each worker owns a disjoint set of holdings it
	// creates, modifies, and deletes in small transactions.
	var stop atomic.Bool
	var wg sync.WaitGroup
	const workers = 4
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(w) + 42))
			var mine []datum.OID
			for !stop.Load() {
				tx := e.Begin()
				switch {
				case len(mine) < 5 || rng.Intn(3) == 0:
					oid, err := e.Create(tx, "Holding", map[string]datum.Value{
						"owner":  datum.Str(fmt.Sprintf("owner%d", rng.Intn(6))),
						"symbol": datum.Str(fmt.Sprintf("SYM%d", rng.Intn(8))),
						"qty":    datum.Int(int64(rng.Intn(100))),
					})
					if err == nil {
						mine = append(mine, oid)
					}
				case rng.Intn(2) == 0:
					e.Modify(tx, mine[rng.Intn(len(mine))], map[string]datum.Value{
						"qty": datum.Int(int64(rng.Intn(100))),
					})
				default:
					i := rng.Intn(len(mine))
					if err := e.Delete(tx, mine[i]); err == nil {
						mine = append(mine[:i], mine[i+1:]...)
					}
				}
				tx.Commit()
			}
		}(w)
	}
	defer func() {
		stop.Store(true)
		wg.Wait()
	}()

	queries := []string{
		"select h from Holding h where h.owner = event.owner",
		"select s, h from Stock s, Holding h where s.symbol = h.symbol and h.owner = event.owner",
		"select s.symbol, h.qty from Stock s, Holding h where s.symbol = h.symbol and h.qty >= 10 order by h.qty desc limit 5",
		"select count(*) as n, sum(h.qty) as total from Holding h, Stock s where h.symbol = s.symbol and s.price > event.floor",
	}

	const rounds = 60
	for round := 0; round < rounds; round++ {
		rng := rand.New(rand.NewSource(int64(round) * 104729))
		args := map[string]datum.Value{
			"owner": datum.Str(fmt.Sprintf("owner%d", rng.Intn(6))),
			"floor": datum.Float(float64(9 + rng.Intn(10))),
		}
		src := queries[round%len(queries)]
		q := query.MustParse(src)

		tx := e.Begin()
		sr := e.Objects.SnapshotReader(tx)
		lsn := sr.SnapshotLSN()

		want, err := query.Eval(q, sr, args)
		if err != nil {
			t.Fatalf("oracle: %v", err)
		}
		// The forced-parallel builds remove the cardinality floor so
		// every round also runs shard-parallel scans, partitioned hash
		// joins, and parallel aggregation against the live store —
		// byte-equality vs. the serial plans and the oracle, under
		// -race.
		plans := append(
			[]*plan.Plan{
				plan.Build(q, sr, args, plan.Options{}),
				plan.Build(q, sr, args, plan.Options{DisableIndex: true}),
				plan.Build(q, sr, args, plan.Options{DisableHash: true}),
				plan.Build(q, nil, args, plan.Options{ForceOrder: true}),
				plan.Build(q, sr, args, plan.Options{Parallelism: 4, ParallelThreshold: -1}),
				plan.Build(q, sr, args, plan.Options{Parallelism: 8, ParallelThreshold: -1, DisableIndex: true}),
				plan.Build(q, sr, args, plan.Options{Parallelism: 2, ParallelThreshold: -1, DisableHash: true}),
			},
			plan.Enumerate(q, sr, args, plan.Options{})...)
		for i, p := range plans {
			got, err := p.Execute(sr, args)
			if err != nil {
				t.Fatalf("round %d plan %d: %v\n%s", round, i, err, p.Explain())
			}
			if !reflect.DeepEqual(want, got) {
				t.Fatalf("round %d plan %d diverges at snapshot LSN %d\nquery: %s\nwant: %+v\ngot:  %+v\n%s",
					round, i, lsn, src, want, got, p.Explain())
			}
		}
		if got := sr.SnapshotLSN(); got != lsn {
			t.Fatalf("snapshot moved during evaluation: %d -> %d", lsn, got)
		}
		sr.Close()
		tx.Commit()
	}
}

// TestParallelScanPinnedLSNUnderCommitters races committer goroutines
// against forced-parallel unselective scans and joins. Every shard
// worker reads at the reader's pinned snapshot LSN; the test asserts
// the LSN is immobile across the whole fan-out and that the parallel
// result equals the serial result at the same pin — i.e. concurrent
// commits are invisible to every worker, not just the gather node.
func TestParallelScanPinnedLSNUnderCommitters(t *testing.T) {
	e := diffEngine(t)
	seed := e.Begin()
	for i := 0; i < 300; i++ {
		if _, err := e.Create(seed, "Holding", map[string]datum.Value{
			"owner":  datum.Str(fmt.Sprintf("owner%d", i%6)),
			"symbol": datum.Str(fmt.Sprintf("SYM%d", i%8)),
			"qty":    datum.Int(int64(i)),
		}); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 8; i++ {
		if _, err := e.Create(seed, "Stock", map[string]datum.Value{
			"symbol": datum.Str(fmt.Sprintf("SYM%d", i)),
			"price":  datum.Float(float64(10 + i)),
		}); err != nil {
			t.Fatal(err)
		}
	}
	if err := seed.Commit(); err != nil {
		t.Fatal(err)
	}

	var stop atomic.Bool
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(w) + 99))
			var mine []datum.OID
			for !stop.Load() {
				tx := e.Begin()
				// Bounded churn: grow to ~20 rows, then replace —
				// the extent stays small while its version chains and
				// membership keep flipping under the scan workers.
				if len(mine) < 20 {
					oid, err := e.Create(tx, "Holding", map[string]datum.Value{
						"owner":  datum.Str(fmt.Sprintf("owner%d", rng.Intn(6))),
						"symbol": datum.Str(fmt.Sprintf("SYM%d", rng.Intn(8))),
						"qty":    datum.Int(int64(rng.Intn(1000))),
					})
					if err == nil {
						mine = append(mine, oid)
					}
				} else {
					i := rng.Intn(len(mine))
					if err := e.Delete(tx, mine[i]); err == nil {
						mine = append(mine[:i], mine[i+1:]...)
					}
				}
				tx.Commit()
			}
		}(w)
	}
	defer func() {
		stop.Store(true)
		wg.Wait()
	}()

	queries := []string{
		"select h from Holding h where h.qty >= 0",
		"select s.symbol, h.qty from Stock s, Holding h where s.symbol = h.symbol",
		"select count(*) as n, sum(h.qty) as total from Holding h",
	}
	for round := 0; round < 30; round++ {
		src := queries[round%len(queries)]
		q := query.MustParse(src)
		tx := e.Begin()
		sr := e.Objects.SnapshotReader(tx)
		lsn := sr.SnapshotLSN()

		serial, err := plan.Build(q, sr, nil, plan.Options{Parallelism: 1}).Execute(sr, nil)
		if err != nil {
			t.Fatal(err)
		}
		p := plan.Build(q, sr, nil, plan.Options{Parallelism: 8, ParallelThreshold: -1})
		par, err := p.Execute(sr, nil)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(serial, par) {
			t.Fatalf("round %d: parallel result diverges from serial at pinned LSN %d\nquery: %s\n%s",
				round, lsn, src, p.Explain())
		}
		if got := sr.SnapshotLSN(); got != lsn {
			t.Fatalf("round %d: pinned snapshot LSN moved across the fan-out: %d -> %d", round, lsn, got)
		}
		sr.Close()
		tx.Commit()
	}
}

// TestEngineQueryAndExplain drives the engine's public Query/Explain
// paths with the planner enabled (the default) and with the tree-walk
// flag, asserting they agree.
func TestEngineQueryAndExplain(t *testing.T) {
	e := diffEngine(t)
	tw, err := core.Open(core.Options{TreeWalkQueries: true})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { tw.Close() })

	load := func(eng *core.Engine) {
		tx := eng.Begin()
		if _, err := eng.Create(tx, "Stock", map[string]datum.Value{
			"symbol": datum.Str("XRX"), "price": datum.Float(48),
		}); err != nil {
			t.Fatal(err)
		}
		if _, err := eng.Create(tx, "Holding", map[string]datum.Value{
			"owner": datum.Str("kim"), "symbol": datum.Str("XRX"), "qty": datum.Int(3),
		}); err != nil {
			t.Fatal(err)
		}
		if err := tx.Commit(); err != nil {
			t.Fatal(err)
		}
	}
	// The tree-walk engine needs its own schema.
	twx := tw.Begin()
	for _, c := range []object.Class{
		{Name: "Stock", Attrs: []object.AttrDef{
			{Name: "symbol", Kind: datum.KindString, Indexed: true},
			{Name: "price", Kind: datum.KindFloat, Indexed: true},
		}},
		{Name: "Holding", Attrs: []object.AttrDef{
			{Name: "owner", Kind: datum.KindString, Indexed: true},
			{Name: "symbol", Kind: datum.KindString},
			{Name: "qty", Kind: datum.KindInt},
		}},
	} {
		if err := tw.DefineClass(twx, c); err != nil {
			t.Fatal(err)
		}
	}
	if err := twx.Commit(); err != nil {
		t.Fatal(err)
	}
	load(e)
	load(tw)

	const src = "select s.symbol, h.qty from Stock s, Holding h where s.symbol = h.symbol and h.owner = 'kim'"
	tx := e.Begin()
	defer tx.Commit()
	got, err := e.Query(tx, src, nil)
	if err != nil {
		t.Fatal(err)
	}
	twTx := tw.Begin()
	defer twTx.Commit()
	want, err := tw.Query(twTx, src, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(want.Rows, got.Rows) {
		t.Fatalf("planner engine and tree-walk engine disagree:\nwant %+v\ngot  %+v", want.Rows, got.Rows)
	}

	text, err := e.Explain(tx, src, nil)
	if err != nil {
		t.Fatal(err)
	}
	for _, needle := range []string{"plan (cost=", "Holding", "Stock"} {
		if !strings.Contains(text, needle) {
			t.Fatalf("explain missing %q:\n%s", needle, text)
		}
	}
}
