package plan

import (
	"reflect"
	"testing"

	"repro/internal/datum"
	"repro/internal/query"
)

// fuzzFixture is a small deterministic store with mixed kinds, nulls,
// missing attributes, and an index, so fuzzed queries exercise every
// access path.
func fuzzFixture() *fakeReader {
	f := newFake()
	f.index("C0", "a0")
	f.index("C1", "a1")
	f.add("C0", 1, map[string]datum.Value{"a0": datum.Int(1), "a1": datum.Str("x")})
	f.add("C0", 2, map[string]datum.Value{"a0": datum.Int(2), "a1": datum.Str("y"), "a2": datum.Float(0.5)})
	f.add("C0", 3, map[string]datum.Value{"a0": datum.Null()})
	f.add("C0", 4, map[string]datum.Value{"a1": datum.Str("x")})
	f.add("C1", 10, map[string]datum.Value{"a0": datum.Float(2), "a1": datum.Int(7)})
	f.add("C1", 11, map[string]datum.Value{"a0": datum.Int(1), "a1": datum.Int(7)})
	f.add("C1", 12, map[string]datum.Value{"a1": datum.Null(), "a2": datum.Str("y")})
	return f
}

// FuzzPlan parses an arbitrary query string, compiles every plan the
// planner admits, and executes each against the fixture store. The
// run must be panic-free, and whenever the tree-walk oracle and a
// plan both succeed they must return identical results. (Hard
// evaluation errors — type errors, division by zero — may strike
// different rows under different plans, so error cases only assert
// crash-freedom.)
func FuzzPlan(f *testing.F) {
	f.Add("select c from C0 c")
	f.Add("select c from C0 c where c.a0 = 2")
	f.Add("select a, b from C0 a, C1 b where a.a0 = b.a0")
	f.Add("select a.a1, b.a1 from C0 a, C1 b where a.a1 = b.a2 and b.a1 >= 7")
	f.Add("select count(*) as n, sum(a.a0) as s from C0 a where a.a0 > 0")
	f.Add("select a from C0 a where a = event.target")
	f.Add("select a.a0 from C0 a order by a.a0 desc limit 2")
	f.Add("select a, b, c from C0 a, C1 b, C0 c where a.a0 = b.a0 and c.a0 <= b.a1")

	args := map[string]datum.Value{
		"target": datum.ID(2),
		"p":      datum.Int(1),
	}

	f.Fuzz(func(t *testing.T, src string) {
		if len(src) > 512 {
			return
		}
		q, err := query.Parse(src)
		if err != nil {
			return
		}
		store := fuzzFixture()
		want, werr := query.Eval(q, store, args)

		plans := []*Plan{
			Build(q, store, args, Options{}),
			Build(q, store, args, Options{DisableIndex: true}),
			Build(q, store, args, Options{DisableHash: true}),
			Build(q, nil, args, Options{ForceOrder: true}),
			Build(q, store, args, Options{Parallelism: 4, ParallelThreshold: -1}),
		}
		plans = append(plans, Enumerate(q, store, args, Options{})...)
		for i, p := range plans {
			got, gerr := p.Execute(store, args)
			if werr != nil || gerr != nil {
				continue
			}
			if !reflect.DeepEqual(want, got) {
				t.Fatalf("plan %d diverges from tree-walk\nquery: %s\nwant: %+v\ngot:  %+v\n%s",
					i, src, want, got, p.Explain())
			}
		}
	})
}
