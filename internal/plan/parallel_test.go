package plan

import (
	"fmt"
	"math/rand"
	"reflect"
	"runtime"
	"strings"
	"testing"
	"time"

	"repro/internal/datum"
	"repro/internal/query"
)

// parFake builds a class big enough that every fake shard holds rows:
// n objects with int x (= i), float f (order-sensitive sums), and a
// symbol cycling over 8 values for join fan-out.
func parFake(n int) *fakeReader {
	f := newFake()
	for i := 0; i < n; i++ {
		f.add("S", datum.OID(i+1), map[string]datum.Value{
			"x":   datum.Int(int64(i)),
			"f":   datum.Float(float64(i) * 0.1),
			"sym": datum.Str(fmt.Sprintf("SYM%d", i%8)),
		})
	}
	for i := 0; i < 8; i++ {
		f.add("T", datum.OID(10000+i), map[string]datum.Value{
			"sym":  datum.Str(fmt.Sprintf("SYM%d", i)),
			"rank": datum.Int(int64(i)),
		})
	}
	return f
}

// TestParallelMatchesSerialByteEquality runs randomized rounds of the
// core query shapes at parallelism 1 vs N, asserting byte-identical
// results (reflect.DeepEqual over datum values compares floats
// bit-exactly). Run under -race: the workers share the reader, the
// prebuilt hash table, and nothing else.
func TestParallelMatchesSerialByteEquality(t *testing.T) {
	queries := []string{
		"select s.x from S s where s.x >= event.lo",
		"select s.f from S s where s.x % 3 = 0 order by s.f desc limit 40",
		"select s.x, t.rank from S s, T t where s.sym = t.sym and s.x < event.hi",
		"select count(*) as n, sum(s.x) as sx, min(s.x) as lo, max(s.x) as hi from S s where s.x >= event.lo",
		"select sum(s.f) as fs, avg(s.f) as fa from S s where s.x < event.hi",
		"select count(*) as n, sum(s.x) as sx from S s, T t where s.sym = t.sym and t.rank = event.r",
	}
	rng := rand.New(rand.NewSource(7))
	f := parFake(300)
	for round := 0; round < 24; round++ {
		src := queries[round%len(queries)]
		args := map[string]datum.Value{
			"lo": datum.Int(int64(rng.Intn(50))),
			"hi": datum.Int(int64(50 + rng.Intn(250))),
			"r":  datum.Int(int64(rng.Intn(8))),
		}
		q := query.MustParse(src)
		want, err := Build(q, f, args, Options{Parallelism: 1}).Execute(f, args)
		if err != nil {
			t.Fatalf("serial: %v", err)
		}
		for _, par := range []int{2, 4, 8} {
			p := Build(q, f, args, Options{Parallelism: par, ParallelThreshold: -1})
			if p.maxPar() <= 1 {
				t.Fatalf("round %d: no parallel step at par=%d\n%s", round, par, p.Explain())
			}
			got, err := p.Execute(f, args)
			if err != nil {
				t.Fatalf("round %d par=%d: %v", round, par, err)
			}
			if !reflect.DeepEqual(want, got) {
				t.Fatalf("round %d par=%d diverges\nquery: %s\nwant: %+v\ngot:  %+v\n%s",
					round, par, src, want, got, p.Explain())
			}
		}
	}
}

// TestParallelCancellationNoGoroutineLeak fails a residual filter mid
// shard-scan (division by zero on one row) and asserts that the error
// surfaces, every worker shuts down, and repeated failing executions
// leave the goroutine count at its baseline — no worker may stay
// blocked on the exchange channel.
func TestParallelCancellationNoGoroutineLeak(t *testing.T) {
	f := parFake(400)
	// One poisoned row per shard region: x = 0 divides by zero.
	q := query.MustParse("select s.x from S s where 100 / s.x >= 0")
	args := map[string]datum.Value(nil)

	if _, err := Build(q, f, args, Options{Parallelism: 1}).Execute(f, args); err == nil {
		t.Fatal("serial plan must fail on the poisoned row")
	}

	base := runtime.NumGoroutine()
	for i := 0; i < 50; i++ {
		p := Build(q, f, args, Options{Parallelism: 8, ParallelThreshold: -1})
		if p.maxPar() <= 1 {
			t.Fatalf("scan did not parallelize:\n%s", p.Explain())
		}
		if _, err := p.Execute(f, args); err == nil {
			t.Fatal("parallel plan must fail on the poisoned row")
		}
	}
	deadline := time.Now().Add(5 * time.Second)
	for {
		if n := runtime.NumGoroutine(); n <= base {
			break
		}
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<20)
			t.Fatalf("goroutines leaked after cancelled parallel scans: %d > %d\n%s",
				runtime.NumGoroutine(), base, buf[:runtime.Stack(buf, true)])
		}
		time.Sleep(10 * time.Millisecond)
	}

	// Same shutdown contract for a failing parallel join stage: the
	// division blows up in the probe workers' residual instead.
	jq := query.MustParse("select s.x, t.rank from S s, T t where s.sym = t.sym and 100 / (s.x - s.x) >= 0")
	if _, err := Build(jq, f, args, Options{Parallelism: 1}).Execute(f, args); err == nil {
		t.Fatal("serial join must fail")
	}
	base = runtime.NumGoroutine()
	for i := 0; i < 20; i++ {
		p := Build(jq, f, args, Options{Parallelism: 4, ParallelThreshold: -1})
		if _, err := p.Execute(f, args); err == nil {
			t.Fatal("parallel join must fail")
		}
	}
	deadline = time.Now().Add(5 * time.Second)
	for {
		if n := runtime.NumGoroutine(); n <= base {
			break
		}
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<20)
			t.Fatalf("goroutines leaked after cancelled parallel joins: %d > %d\n%s",
				runtime.NumGoroutine(), base, buf[:runtime.Stack(buf, true)])
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestParallelAggregateMergeAndFallback pins the two aggregation
// regimes: exact-mergeable states (count/min/max/integer sum) and
// order-sensitive ones (float sum, avg) that must fall back to serial
// re-accumulation — both bit-identical to the oracle.
func TestParallelAggregateMergeAndFallback(t *testing.T) {
	f := parFake(500)
	for _, src := range []string{
		// Exact merge path.
		"select count(*) as n, sum(s.x) as sx, min(s.x) as lo, max(s.x) as hi from S s",
		// Fallback path: float sum and avg accumulate in emission order.
		"select sum(s.f) as fs, avg(s.f) as fa from S s",
		// Mixed: the fallback item forces one serial pass for all.
		"select count(*) as n, sum(s.f) as fs from S s",
		// Surrounding expression around the aggregate.
		"select sum(s.x) * 2 + 1 as twice from S s",
	} {
		q := query.MustParse(src)
		want, err := query.Eval(q, f, nil)
		if err != nil {
			t.Fatal(err)
		}
		p := Build(q, f, nil, Options{Parallelism: 8, ParallelThreshold: -1})
		got, err := p.Execute(f, nil)
		if err != nil {
			t.Fatalf("%s: %v", src, err)
		}
		if !reflect.DeepEqual(want, got) {
			t.Fatalf("%s\nwant: %+v\ngot:  %+v", src, want, got)
		}
	}
}

// TestExplainShowsParallelism: steps past the cardinality gate print
// parallel=N; gated (small) plans do not.
func TestExplainShowsParallelism(t *testing.T) {
	f := parFake(300)
	q := query.MustParse("select s.x, t.rank from S s, T t where s.sym = t.sym")
	text := Build(q, f, nil, Options{Parallelism: 8, ParallelThreshold: -1}).Explain()
	if !strings.Contains(text, "parallel=8") {
		t.Fatalf("explain misses parallel=8:\n%s", text)
	}
	// Default threshold (2048) keeps this 300-row extent serial.
	text = Build(q, f, nil, Options{Parallelism: 8}).Explain()
	if strings.Contains(text, "parallel=") {
		t.Fatalf("small extent should stay serial under the default threshold:\n%s", text)
	}
	// Parallelism 1 forces serial everywhere.
	text = Build(q, f, nil, Options{Parallelism: 1, ParallelThreshold: -1}).Explain()
	if strings.Contains(text, "parallel=") {
		t.Fatalf("Parallelism=1 must stay serial:\n%s", text)
	}
}
