package workload

// First tests for the workload generators: the benchmark harness
// depends on two engines fed the same generator producing identical
// worlds (experiments compare configurations, so the workload itself
// must not be a variable), and on the generator knobs meaning what
// the experiment tables say they mean.

import (
	"fmt"
	"testing"

	"repro/internal/datum"
)

// TestSeedStocksDeterministic: two fresh engines seeded identically
// must hold identical Stock extents — same OIDs, symbols, and prices.
func TestSeedStocksDeterministic(t *testing.T) {
	type row struct {
		sym   string
		price float64
	}
	build := func() map[datum.OID]row {
		e, _ := MustEngine()
		defer e.Close()
		if err := DefineBase(e); err != nil {
			t.Fatal(err)
		}
		oids, err := SeedStocks(e, 50)
		if err != nil {
			t.Fatal(err)
		}
		if len(oids) != 50 {
			t.Fatalf("seeded %d stocks, want 50", len(oids))
		}
		out := map[datum.OID]row{}
		tx := e.Begin()
		defer tx.Commit()
		for _, oid := range oids {
			r, err := e.Get(tx, oid)
			if err != nil {
				t.Fatal(err)
			}
			out[oid] = row{r.Attrs["symbol"].AsString(), r.Attrs["price"].AsFloat()}
		}
		return out
	}
	a, b := build(), build()
	if len(a) != len(b) {
		t.Fatalf("extent sizes differ: %d vs %d", len(a), len(b))
	}
	for oid, ra := range a {
		if rb, ok := b[oid]; !ok || ra != rb {
			t.Fatalf("oid %v: %+v vs %+v", oid, ra, b[oid])
		}
	}
	// Symbols are schema'd to the seed index, not engine state.
	for oid, r := range a {
		var i int
		if _, err := fmt.Sscanf(r.sym, "S%05d", &i); err != nil {
			t.Fatalf("oid %v: malformed symbol %q", oid, r.sym)
		}
		if r.price != float64(i) {
			t.Fatalf("symbol %q has price %v, want %v", r.sym, r.price, float64(i))
		}
	}
}

// TestSharedConditionRulesOverlap: the overlap fraction controls how
// many rules share the single common condition text — the knob behind
// experiment C4's shared-node axis.
func TestSharedConditionRulesOverlap(t *testing.T) {
	for _, tc := range []struct {
		n       int
		overlap float64
		shared  int
	}{
		{10, 0, 0}, {10, 0.5, 5}, {10, 1, 10}, {7, 0.5, 3},
	} {
		defs := SharedConditionRules(tc.n, tc.overlap)
		if len(defs) != tc.n {
			t.Fatalf("n=%d overlap=%v: got %d defs", tc.n, tc.overlap, len(defs))
		}
		counts := map[string]int{}
		names := map[string]bool{}
		for _, d := range defs {
			if len(d.Condition) != 1 {
				t.Fatalf("rule %s has %d conditions", d.Name, len(d.Condition))
			}
			counts[d.Condition[0]]++
			if names[d.Name] {
				t.Fatalf("duplicate rule name %s", d.Name)
			}
			names[d.Name] = true
		}
		maxShared := 0
		distinct := 0
		for _, c := range counts {
			if c > maxShared {
				maxShared = c
			}
			if c == 1 {
				distinct++
			}
		}
		if tc.shared > 1 && maxShared != tc.shared {
			t.Fatalf("n=%d overlap=%v: largest shared group %d, want %d",
				tc.n, tc.overlap, maxShared, tc.shared)
		}
		if want := tc.n - tc.shared; distinct != want && !(tc.shared == 1 && distinct == tc.n) {
			t.Fatalf("n=%d overlap=%v: %d distinct conditions, want %d",
				tc.n, tc.overlap, distinct, want)
		}
	}
}

// TestCallRuleDefsShape: sibling rules all share the event and the
// callback, with unique names (the rule manager rejects duplicates).
func TestCallRuleDefsShape(t *testing.T) {
	defs := CallRuleDefs(16, "work")
	names := map[string]bool{}
	for _, d := range defs {
		if d.Event != "modify(Stock)" {
			t.Fatalf("rule %s on event %q", d.Name, d.Event)
		}
		if len(d.Action) != 1 || d.Action[0].Fn != "work" {
			t.Fatalf("rule %s action %+v", d.Name, d.Action)
		}
		if names[d.Name] {
			t.Fatalf("duplicate name %s", d.Name)
		}
		names[d.Name] = true
	}
}

// TestSpinDeterministic: Spin is the benchmark's unit of CPU work;
// it must be input-determined (identical across runs) and scale with
// the iteration count so "2x iters" means 2x work.
func TestSpinDeterministic(t *testing.T) {
	if Spin(1000) != Spin(1000) {
		t.Fatal("Spin is not deterministic")
	}
	if Spin(0) != 0 {
		t.Fatalf("Spin(0) = %d, want 0", Spin(0))
	}
	if Spin(999) == Spin(1000) {
		t.Fatal("Spin ignores its iteration count")
	}
}

// TestCascadeChainFires: the cascade generator must wire depth rules
// so one create at the head propagates to the tail class.
func TestCascadeChainFires(t *testing.T) {
	e, _ := MustEngine()
	defer e.Close()
	const depth = 4
	head, err := CascadeChain(e, depth)
	if err != nil {
		t.Fatal(err)
	}
	tx := e.Begin()
	if _, err := e.Create(tx, head, map[string]datum.Value{"x": datum.Int(0)}); err != nil {
		t.Fatal(err)
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	tx = e.Begin()
	defer tx.Commit()
	res, err := e.Query(tx, fmt.Sprintf("select c from C%d c", depth), nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 1 {
		t.Fatalf("cascade reached C%d with %d rows, want 1", depth, len(res.Rows))
	}
}
