// Package workload builds the synthetic schemas, data, and rule sets
// used by the benchmark harness (bench_test.go and cmd/hipac-bench)
// to regenerate the experiments in DESIGN.md's per-experiment index.
package workload

import (
	"fmt"
	"time"

	"repro/internal/clock"
	"repro/internal/core"
	"repro/internal/datum"
	"repro/internal/object"
	"repro/internal/rule"
)

// Epoch is the fixed virtual-clock start used by deterministic runs.
var Epoch = time.Date(2026, 7, 6, 9, 0, 0, 0, time.UTC)

// MustEngine returns a fresh in-memory engine on a virtual clock,
// panicking on setup failure (benchmark context).
func MustEngine() (*core.Engine, *clock.Virtual) {
	clk := clock.NewVirtual(Epoch)
	e, err := core.Open(core.Options{Clock: clk})
	if err != nil {
		panic(err)
	}
	return e, clk
}

// StockClass is the benchmark's base schema.
var StockClass = object.Class{
	Name: "Stock",
	Attrs: []object.AttrDef{
		{Name: "symbol", Kind: datum.KindString, Required: true, Indexed: true},
		{Name: "price", Kind: datum.KindFloat, Indexed: true},
		{Name: "volume", Kind: datum.KindInt},
	},
}

// AuditClass receives rule-action output.
var AuditClass = object.Class{
	Name: "Audit",
	Attrs: []object.AttrDef{
		{Name: "note", Kind: datum.KindString},
		{Name: "price", Kind: datum.KindFloat},
	},
}

// DefineBase installs StockClass and AuditClass.
func DefineBase(e *core.Engine) error {
	tx := e.Begin()
	if err := e.DefineClass(tx, StockClass); err != nil {
		tx.Abort()
		return err
	}
	if err := e.DefineClass(tx, AuditClass); err != nil {
		tx.Abort()
		return err
	}
	return tx.Commit()
}

// SeedStocks creates n Stock objects with prices i (one committed
// transaction).
func SeedStocks(e *core.Engine, n int) ([]datum.OID, error) {
	tx := e.Begin()
	oids := make([]datum.OID, n)
	for i := range oids {
		oid, err := e.Create(tx, "Stock", map[string]datum.Value{
			"symbol": datum.Str(fmt.Sprintf("S%05d", i)),
			"price":  datum.Float(float64(i)),
		})
		if err != nil {
			tx.Abort()
			return nil, err
		}
		oids[i] = oid
	}
	return oids, tx.Commit()
}

// UpdateOne runs a single-update transaction against oid.
func UpdateOne(e *core.Engine, oid datum.OID, price float64) error {
	tx := e.Begin()
	if err := e.Modify(tx, oid, map[string]datum.Value{"price": datum.Float(price)}); err != nil {
		tx.Abort()
		return err
	}
	return tx.Commit()
}

// AuditRuleDef returns a rule that appends an Audit row on Stock
// modifications with the given couplings.
func AuditRuleDef(name, ec, ca string) rule.Def {
	return rule.Def{
		Name:  name,
		Event: "modify(Stock)",
		Action: []rule.Step{{
			Kind: rule.StepCreate, Class: "Audit",
			Attrs: map[string]string{"note": "'w'", "price": "event.new_price"},
		}},
		EC: ec, CA: ca,
	}
}

// CallRuleDefs returns n rules on the same event whose actions invoke
// the named registered callback (used with a work function to measure
// sibling concurrency).
func CallRuleDefs(n int, fn string) []rule.Def {
	defs := make([]rule.Def, n)
	for i := range defs {
		defs[i] = rule.Def{
			Name:   fmt.Sprintf("sib-%03d", i),
			Event:  "modify(Stock)",
			Action: []rule.Step{{Kind: rule.StepCall, Fn: fn}},
			EC:     "immediate", CA: "immediate",
		}
	}
	return defs
}

// SharedConditionRules returns n rules triggered by modify(Stock).
// A fraction `overlap` of them share one identical condition text
// (one condition-graph node); the rest get syntactically distinct
// conditions (distinct nodes). With overlap 0 every rule has its own
// node — the "naive" per-rule evaluation baseline for experiment C4.
func SharedConditionRules(n int, overlap float64) []rule.Def {
	shared := int(float64(n) * overlap)
	defs := make([]rule.Def, n)
	for i := range defs {
		var cond string
		if i < shared {
			cond = "select s from Stock s where s.price >= 100"
		} else {
			// Distinct canonical form per rule: same semantics,
			// different constant arithmetic.
			cond = fmt.Sprintf("select s from Stock s where s.price >= 100 + %d * 0", i+1)
		}
		defs[i] = rule.Def{
			Name:      fmt.Sprintf("cond-%03d", i),
			Event:     "modify(Stock)",
			Condition: []string{cond},
			Action:    []rule.Step{{Kind: rule.StepCall, Fn: "noop"}},
			EC:        "immediate", CA: "immediate",
		}
	}
	return defs
}

// CascadeChain installs depth classes C0..C(depth) and rules so that
// creating in C(i) creates in C(i+1): one trigger cascades to the
// full depth. Returns the name of the first class.
func CascadeChain(e *core.Engine, depth int) (string, error) {
	tx := e.Begin()
	for i := 0; i <= depth; i++ {
		if err := e.DefineClass(tx, object.Class{
			Name:  fmt.Sprintf("C%d", i),
			Attrs: []object.AttrDef{{Name: "x", Kind: datum.KindInt}},
		}); err != nil {
			tx.Abort()
			return "", err
		}
	}
	if err := tx.Commit(); err != nil {
		return "", err
	}
	for i := 0; i < depth; i++ {
		if _, err := e.CreateRule(rule.Def{
			Name:  fmt.Sprintf("cascade-%d", i),
			Event: fmt.Sprintf("create(C%d)", i),
			Action: []rule.Step{{
				Kind: rule.StepCreate, Class: fmt.Sprintf("C%d", i+1),
				Attrs: map[string]string{"x": "event.new_x + 1"},
			}},
			EC: "immediate", CA: "immediate",
		}); err != nil {
			return "", err
		}
	}
	return "C0", nil
}

// NonMatchingRules installs n enabled rules on classes never touched
// by the Stock workload (experiment C5).
func NonMatchingRules(e *core.Engine, n int) error {
	tx := e.Begin()
	if err := e.DefineClass(tx, object.Class{
		Name:  "Unrelated",
		Attrs: []object.AttrDef{{Name: "x", Kind: datum.KindInt}},
	}); err != nil {
		tx.Abort()
		return err
	}
	if err := tx.Commit(); err != nil {
		return err
	}
	for i := 0; i < n; i++ {
		if _, err := e.CreateRule(rule.Def{
			Name:   fmt.Sprintf("nomatch-%03d", i),
			Event:  "modify(Unrelated)",
			Action: []rule.Step{{Kind: rule.StepCall, Fn: "noop"}},
			EC:     "immediate", CA: "immediate",
		}); err != nil {
			return err
		}
	}
	return nil
}

// DisabledRules installs n rules on modify(Stock), all disabled
// (experiment C10).
func DisabledRules(e *core.Engine, n int) error {
	for i := 0; i < n; i++ {
		if _, err := e.CreateRule(rule.Def{
			Name:   fmt.Sprintf("disabled-%03d", i),
			Event:  "modify(Stock)",
			Action: []rule.Step{{Kind: rule.StepCall, Fn: "noop"}},
			EC:     "immediate", CA: "immediate",
			Disabled: true,
		}); err != nil {
			return err
		}
	}
	return nil
}

// Spin burns roughly the given number of iterations of integer work;
// used as the per-action cost in concurrency experiments (CPU-bound
// so wall-clock gains from sibling parallelism are measurable).
func Spin(iters int) int64 {
	var acc int64
	for i := 0; i < iters; i++ {
		acc = acc*1664525 + 1013904223
	}
	return acc
}
