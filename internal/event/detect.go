package event

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/cep"
	"repro/internal/clock"
	"repro/internal/datum"
	"repro/internal/lock"
	"repro/internal/obs"
)

// SubID identifies a programmed event subscription (one per rule
// event, created by the Rule Manager via Define — the "Define Event"
// operation of §5.3).
type SubID uint64

// Emit is the Rule Manager's "Signal Event" entry point (§5.4): it is
// called synchronously on the goroutine where the event occurred, so
// the triggering operation is suspended until it returns — exactly
// the suspension the paper's §6.2 prescribes. A non-nil error
// propagates to the triggering operation (e.g. an integrity rule
// requesting abort).
type Emit func(SubID, Signal) error

// Stats counts detector activity.
type Stats struct {
	DatabaseSignals uint64 // primitive database occurrences examined
	ExternalSignals uint64
	TemporalFirings uint64
	Emissions       uint64 // signals delivered to the Rule Manager

	// Composite-event runtime (internal/cep) aggregates across all
	// templates.
	CEPTemplates int    // live operator templates
	CEPInstances int    // live correlation-key NFA instances
	CEPPartials  int    // open partial matches
	CEPFirings   uint64 // composite firings produced
	CEPExpired   uint64 // partial matches reclaimed by expiry/cap/slide
}

type dbKey struct {
	op    Op
	class string
}

type sub struct {
	id       SubID
	spec     Spec
	disabled bool
	removed  bool
	parent   *sub
	partIdx  int
	children []*sub

	// temporal state
	timer     clock.Timer
	fireCount int64

	// composite state
	seqNext     int
	seqBindings map[string]datum.Value
	conjSeen    []map[string]datum.Value

	// CEP operator state (Within/During/Window/Aggregate specs): the
	// sharded per-correlation-key automata. Immutable once defined;
	// its own internal synchronization (per-shard locks + atomic
	// enable/remove flags) lets top-level constituents advance it
	// without taking Detectors.mu.
	tmpl *cep.Template
}

// indexSnapshot is an immutable copy of the subscription index,
// republished whenever the index changes (Define/Delete — rare) and
// read lock-free by every signal (hot). Slices and maps inside a
// published snapshot are never mutated; the *sub pointers are shared
// with the live index, and their mutable state (automata progress,
// disabled/removed flags) is only touched under Detectors.mu.
type indexSnapshot struct {
	db  map[dbKey][]*sub
	ext map[string][]*sub
}

// Detectors is the set of event detectors: database, temporal,
// external, and the composite-event automata layered over them. It is
// safe for concurrent use.
//
// Signalling is read-mostly: the subscription index is a copy-on-write
// snapshot under an atomic pointer, so matching a DML signal against
// the (usually empty) subscription set takes no lock at all. Only
// delivery — which advances per-subscription automata — serializes
// under mu.
type Detectors struct {
	mu      sync.Mutex // guards subs, the live index maps, and all per-sub state
	clk     clock.Clock
	emit    Emit
	nextSub SubID
	subs    map[SubID]*sub
	dbIndex map[dbKey][]*sub
	extIdx  map[string][]*sub
	idx     atomic.Pointer[indexSnapshot]
	obsm    *obs.Metrics // nil-safe emission-latency observer

	cepShards int    // shard count for new cep templates (0 = cep.DefaultShards)
	cepSubs   []*sub // subscriptions holding a cep template, for stats/GC

	nDBSignals, nExtSignals, nTemporal, nEmissions atomic.Uint64

	asyncErr func(error) // errors from temporal firings (no caller to return to)
}

// SetObserver installs an emission-latency observer. Not safe to call
// concurrently with detection.
func (d *Detectors) SetObserver(o *obs.Metrics) { d.obsm = o }

// New returns detectors that report matched events to emit, using clk
// for temporal events.
func New(clk clock.Clock, emit Emit) *Detectors {
	d := &Detectors{
		clk:     clk,
		emit:    emit,
		nextSub: 1,
		subs:    map[SubID]*sub{},
		dbIndex: map[dbKey][]*sub{},
		extIdx:  map[string][]*sub{},
	}
	d.idx.Store(&indexSnapshot{})
	return d
}

// publishLocked swaps in a fresh immutable snapshot of the index.
// Caller holds d.mu and has just mutated dbIndex/extIdx.
func (d *Detectors) publishLocked() {
	snap := &indexSnapshot{
		db:  make(map[dbKey][]*sub, len(d.dbIndex)),
		ext: make(map[string][]*sub, len(d.extIdx)),
	}
	for k, list := range d.dbIndex {
		snap.db[k] = append([]*sub(nil), list...)
	}
	for name, list := range d.extIdx {
		snap.ext[name] = append([]*sub(nil), list...)
	}
	d.idx.Store(snap)
}

// SetCEPShards sets the instance-map shard count used by composite
// (cep) templates defined afterwards. Not safe to call concurrently
// with Define; the engine calls it once at startup.
func (d *Detectors) SetCEPShards(n int) { d.cepShards = n }

// SetAsyncErrorHandler installs a handler for errors raised by rule
// processing of temporal events, which have no signalling caller to
// return an error to. Not safe to call concurrently with detection.
func (d *Detectors) SetAsyncErrorHandler(f func(error)) { d.asyncErr = f }

// Define programs the detectors to report occurrences of spec,
// returning the subscription id used in subsequent Enable, Disable,
// and Delete calls and in emissions.
func (d *Detectors) Define(spec Spec) (SubID, error) {
	if spec == nil {
		return 0, fmt.Errorf("event: nil spec")
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	s, err := d.defineLocked(spec, nil, 0)
	if err != nil {
		return 0, err
	}
	d.publishLocked()
	return s.id, nil
}

func (d *Detectors) defineLocked(spec Spec, parent *sub, partIdx int) (*sub, error) {
	s := &sub{id: d.nextSub, spec: spec, parent: parent, partIdx: partIdx}
	d.nextSub++
	d.subs[s.id] = s
	switch v := spec.(type) {
	case Database:
		k := dbKey{op: v.Op, class: v.Class}
		d.dbIndex[k] = append(d.dbIndex[k], s)
	case External:
		if v.Name == "" {
			return nil, fmt.Errorf("event: external event needs a name")
		}
		d.extIdx[v.Name] = append(d.extIdx[v.Name], s)
	case Temporal:
		if err := d.defineTemporalLocked(s, v); err != nil {
			return nil, err
		}
	case Composite:
		if len(v.Parts) < 2 {
			return nil, fmt.Errorf("event: composite %s needs at least two parts", v.Op)
		}
		switch v.Op {
		case Disjunction, Sequence, Conjunction:
		default:
			return nil, fmt.Errorf("event: unknown composite operator %q", v.Op)
		}
		s.conjSeen = make([]map[string]datum.Value, len(v.Parts))
		for i, part := range v.Parts {
			child, err := d.defineLocked(part, s, i)
			if err != nil {
				return nil, err
			}
			s.children = append(s.children, child)
		}
	case Within:
		if len(v.Parts) < 2 {
			return nil, fmt.Errorf("event: within needs at least two parts")
		}
		if v.Window <= 0 {
			return nil, fmt.Errorf("event: within needs a positive window")
		}
		cfg := cep.Config{Kind: cep.KWithin, Parts: len(v.Parts), Window: v.Window,
			CorrelAttr: v.Correl.Attr, CorrelVar: v.Correl.Var}
		if err := d.defineCEPLocked(s, cfg, v.Parts...); err != nil {
			return nil, err
		}
	case During:
		if v.Event == nil || v.Start == nil || v.End == nil {
			return nil, fmt.Errorf("event: during needs event, start, and end parts")
		}
		cfg := cep.Config{Kind: cep.KDuring, Parts: 3,
			CorrelAttr: v.Correl.Attr, CorrelVar: v.Correl.Var}
		if err := d.defineCEPLocked(s, cfg, v.Event, v.Start, v.End); err != nil {
			return nil, err
		}
	case Window:
		if v.Part == nil {
			return nil, fmt.Errorf("event: %s window needs a part", v.Mode)
		}
		if v.Count < 1 {
			return nil, fmt.Errorf("event: %s window needs a positive count", v.Mode)
		}
		kind := cep.KSliding
		switch v.Mode {
		case Sliding:
		case Tumbling:
			kind = cep.KTumbling
		default:
			return nil, fmt.Errorf("event: unknown window mode %q", v.Mode)
		}
		cfg := cep.Config{Kind: kind, Parts: 1, Count: v.Count,
			CorrelAttr: v.Correl.Attr, CorrelVar: v.Correl.Var}
		if err := d.defineCEPLocked(s, cfg, v.Part); err != nil {
			return nil, err
		}
	case Aggregate:
		if v.Part == nil {
			return nil, fmt.Errorf("event: count aggregate needs a part")
		}
		if v.Min < 1 {
			return nil, fmt.Errorf("event: count aggregate needs a positive minimum")
		}
		if v.Window <= 0 {
			return nil, fmt.Errorf("event: count aggregate needs a positive window")
		}
		cfg := cep.Config{Kind: cep.KAggregate, Parts: 1, Count: v.Min, Window: v.Window,
			CorrelAttr: v.Correl.Attr, CorrelVar: v.Correl.Var}
		if err := d.defineCEPLocked(s, cfg, v.Part); err != nil {
			return nil, err
		}
	default:
		return nil, fmt.Errorf("event: unsupported spec type %T", spec)
	}
	return s, nil
}

// defineCEPLocked builds the cep template for s and defines its
// constituent parts as children with role indices matching the
// template's part numbering. Caller holds d.mu.
func (d *Detectors) defineCEPLocked(s *sub, cfg cep.Config, parts ...Spec) error {
	s.tmpl = cep.New(cfg, d.cepShards)
	for i, part := range parts {
		child, err := d.defineLocked(part, s, i)
		if err != nil {
			return err
		}
		s.children = append(s.children, child)
	}
	d.cepSubs = append(d.cepSubs, s)
	d.scheduleCEPGCLocked(s)
	return nil
}

// scheduleCEPGCLocked arms the periodic partial-match GC sweep for a
// windowed template. Caller holds d.mu. Kinds without a time window
// reclaim state inline and need no sweep.
func (d *Detectors) scheduleCEPGCLocked(s *sub) {
	w := s.tmpl.Window()
	if w <= 0 {
		return
	}
	s.timer = d.clk.AfterFunc(w, func() { d.cepGC(s, w) })
}

// cepGC runs one GC sweep over a template's instances and re-arms the
// timer. Expiry compares against the detector clock, so a virtual
// clock drives deterministic reclamation in tests.
func (d *Detectors) cepGC(s *sub, w time.Duration) {
	d.mu.Lock()
	if s.removed {
		d.mu.Unlock()
		return
	}
	d.mu.Unlock()
	s.tmpl.GC(d.clk.Now())
	st := s.tmpl.Stats()
	d.obsm.ObserveN(obs.HCEPInstances, uint64(st.Instances))
	d.mu.Lock()
	if !s.removed {
		s.timer = d.clk.AfterFunc(w, func() { d.cepGC(s, w) })
	}
	d.mu.Unlock()
}

func (d *Detectors) defineTemporalLocked(s *sub, v Temporal) error {
	switch v.Kind {
	case Absolute:
		delay := v.At.Sub(d.clk.Now())
		if delay < 0 {
			return nil // already past: never fires
		}
		s.timer = d.clk.AfterFunc(delay, func() { d.temporalFire(s, false) })
	case Relative:
		if v.Offset < 0 {
			return fmt.Errorf("event: negative relative offset")
		}
		if v.Baseline == nil {
			s.timer = d.clk.AfterFunc(v.Offset, func() { d.temporalFire(s, false) })
		} else {
			base, err := d.defineLocked(v.Baseline, s, -1)
			if err != nil {
				return err
			}
			s.children = append(s.children, base)
		}
	case Periodic:
		if v.Period <= 0 {
			return fmt.Errorf("event: periodic event needs a positive period")
		}
		if v.Baseline == nil {
			s.timer = d.clk.AfterFunc(v.Period, func() { d.temporalFire(s, true) })
		} else {
			base, err := d.defineLocked(v.Baseline, s, -1)
			if err != nil {
				return err
			}
			s.children = append(s.children, base)
		}
	default:
		return fmt.Errorf("event: unknown temporal kind %q", v.Kind)
	}
	return nil
}

// temporalFire handles a timer expiry for subscription s.
func (d *Detectors) temporalFire(s *sub, periodic bool) {
	var emits []emission
	d.mu.Lock()
	if s.removed || s.disabled {
		d.mu.Unlock()
		return
	}
	d.nTemporal.Add(1)
	s.fireCount++
	bindings := map[string]datum.Value{
		"time":  datum.Time(d.clk.Now()),
		"count": datum.Int(s.fireCount),
	}
	sig := Signal{Spec: s.spec, Time: d.clk.Now(), Bindings: bindings}
	if periodic {
		period := s.spec.(Temporal).Period
		s.timer = d.clk.AfterFunc(period, func() { d.temporalFire(s, true) })
	}
	d.deliverLocked(s, sig, &emits)
	d.mu.Unlock()
	d.nEmissions.Add(uint64(len(emits)))
	if err := d.send(emits); err != nil && d.asyncErr != nil {
		d.asyncErr(err)
	}
}

type emission struct {
	id  SubID
	sig Signal
}

// send dispatches queued emissions outside d.mu (rule processing may
// re-enter the detectors, e.g. an action that signals another event)
// and returns the first error.
func (d *Detectors) send(emits []emission) error {
	var first error
	for _, e := range emits {
		tm := d.obsm.Timer(obs.HSignal)
		err := d.emit(e.id, e.sig)
		tm.Done()
		if err != nil && first == nil {
			first = err
		}
	}
	return first
}

// deliverLocked routes a signal on subscription s upward: top-level
// subscriptions are queued for emission to the Rule Manager;
// composite parts feed their parent's automaton; temporal baselines
// (re)arm their parent's timer. Caller holds d.mu.
func (d *Detectors) deliverLocked(s *sub, sig Signal, emits *[]emission) {
	if s.disabled || s.removed {
		return
	}
	if s.parent == nil {
		*emits = append(*emits, emission{id: s.id, sig: sig})
		return
	}
	p := s.parent
	if s.partIdx == -1 {
		// Baseline occurrence for a relative or periodic temporal.
		d.armFromBaseline(p)
		return
	}
	if p.tmpl != nil {
		d.offerLocked(p, s.partIdx, sig, emits)
		return
	}
	comp, ok := p.spec.(Composite)
	if !ok {
		return
	}
	switch comp.Op {
	case Disjunction:
		out := Signal{Spec: p.spec, Time: sig.Time, Txn: sig.Txn, Bindings: sig.Bindings}
		d.deliverLocked(p, out, emits)
	case Sequence:
		switch {
		case s.partIdx == p.seqNext:
			p.seqBindings = MergeBindings(p.seqBindings, sig.Bindings)
			p.seqNext++
			if p.seqNext == len(comp.Parts) {
				out := Signal{Spec: p.spec, Time: sig.Time, Txn: sig.Txn, Bindings: p.seqBindings}
				p.seqNext = 0
				p.seqBindings = nil
				d.deliverLocked(p, out, emits)
			}
		case s.partIdx == 0:
			// Restart the sequence on a fresh first occurrence.
			p.seqNext = 1
			p.seqBindings = datum.CloneMap(sig.Bindings)
		default:
			// Out-of-order constituent: ignored.
		}
	case Conjunction:
		seen := datum.CloneMap(sig.Bindings)
		if seen == nil {
			// A part with no bindings still counts as seen.
			seen = map[string]datum.Value{}
		}
		p.conjSeen[s.partIdx] = seen
		all := true
		for _, b := range p.conjSeen {
			if b == nil {
				all = false
				break
			}
		}
		if all {
			merged := map[string]datum.Value{}
			for _, b := range p.conjSeen {
				merged = MergeBindings(merged, b)
			}
			out := Signal{Spec: p.spec, Time: sig.Time, Txn: sig.Txn, Bindings: merged}
			p.conjSeen = make([]map[string]datum.Value, len(comp.Parts))
			d.deliverLocked(p, out, emits)
		}
	}
}

// offerLocked advances a cep template with a constituent occurrence
// and routes completed composite firings upward (the template may
// itself be a part of an enclosing composite). Caller holds d.mu.
// Lock order: d.mu may be held while Offer takes a shard lock, never
// the reverse.
func (d *Detectors) offerLocked(p *sub, part int, sig Signal, emits *[]emission) {
	firs := p.tmpl.Offer(cep.Occurrence{Part: part, Time: sig.Time, Txn: sig.Txn, Bindings: sig.Bindings})
	d.obsm.ObserveN(obs.HCEPPartials, uint64(p.tmpl.Partials()))
	for _, f := range firs {
		out := Signal{Spec: p.spec, Time: f.Time, Txn: f.Txn, Bindings: f.Bindings}
		d.deliverLocked(p, out, emits)
	}
}

// offerFast is the lock-free delivery path for constituents of a
// TOP-LEVEL cep template: the template's per-shard locks are the only
// synchronization, so signals for different correlation keys advance
// their automata in parallel. Safe without d.mu because the sub tree
// shape (parent/partIdx/spec/id/tmpl) is immutable after Define, and
// enable/remove state is read through the template's atomic flags.
func (d *Detectors) offerFast(p *sub, part int, now time.Time, tx lock.TxnID,
	bindings map[string]datum.Value, emits *[]emission) {

	firs := p.tmpl.Offer(cep.Occurrence{Part: part, Time: now, Txn: tx, Bindings: bindings})
	d.obsm.ObserveN(obs.HCEPPartials, uint64(p.tmpl.Partials()))
	for _, f := range firs {
		*emits = append(*emits, emission{id: p.id,
			sig: Signal{Spec: p.spec, Time: f.Time, Txn: f.Txn, Bindings: f.Bindings}})
	}
}

// cepFastEligible reports whether a matched subscription can take the
// lock-free cep delivery path: it is a direct constituent of a
// top-level cep template.
func cepFastEligible(s *sub) bool {
	return s.parent != nil && s.parent.tmpl != nil && s.parent.parent == nil
}

// armFromBaseline schedules parent's timer now that its baseline
// event occurred. Caller holds d.mu.
func (d *Detectors) armFromBaseline(p *sub) {
	t, ok := p.spec.(Temporal)
	if !ok || p.disabled || p.removed {
		return
	}
	if p.timer != nil {
		p.timer.Stop()
	}
	switch t.Kind {
	case Relative:
		p.timer = d.clk.AfterFunc(t.Offset, func() { d.temporalFire(p, false) })
	case Periodic:
		p.timer = d.clk.AfterFunc(t.Period, func() { d.temporalFire(p, true) })
	}
}

// SignalDatabase reports a primitive database operation to every
// matching subscription. It is called by the Object Manager (DDL/DML)
// and the Transaction Manager (commit/abort), and runs rule
// processing synchronously before returning.
func (d *Detectors) SignalDatabase(op Op, class string, tx lock.TxnID, bindings map[string]datum.Value) error {
	// A signal matches subscriptions on (op, class), (op, any class),
	// (any op, class), and (any op, any class); drop the duplicate
	// keys that arise when op or class is already the wildcard.
	keys := [4]dbKey{
		{op: op, class: class},
		{op: op, class: ""},
		{op: OpAny, class: class},
		{op: OpAny, class: ""},
	}
	n := 4
	if op == OpAny {
		keys[1] = keys[3] // rows 2,3 duplicate rows 0,1
		n = 2
	}
	if class == "" {
		keys[1] = keys[2] // columns collapse pairwise
		n /= 2
	}
	d.nDBSignals.Add(1)
	snap := d.idx.Load()
	matched := 0
	for _, k := range keys[:n] {
		matched += len(snap.db[k])
	}
	if matched == 0 {
		// Fast path: every DML operation signals here, but most ops
		// have no subscribed rule. One atomic load and (usually) four
		// empty map probes — no lock, no shared-cache-line write
		// beyond the signal counter.
		return nil
	}
	now := d.clk.Now()
	var emits []emission
	// Constituents of top-level cep templates advance their sharded
	// automata without d.mu — signals for distinct correlation keys
	// run fully in parallel.
	slow := 0
	for _, k := range keys[:n] {
		for _, s := range snap.db[k] {
			if cepFastEligible(s) {
				d.offerFast(s.parent, s.partIdx, now, tx, bindings, &emits)
			} else {
				slow++
			}
		}
	}
	// Delivery to everything else advances composite automata, so it
	// serializes under mu. The snapshot's sub lists may be stale
	// relative to a concurrent Define/Delete: a just-added
	// subscription is missed (the signal linearizes before the
	// define) and a just-deleted one is skipped by deliverLocked's
	// removed check.
	if slow > 0 {
		d.mu.Lock()
		for _, k := range keys[:n] {
			for _, s := range snap.db[k] {
				if cepFastEligible(s) {
					continue
				}
				sig := Signal{Spec: s.spec, Time: now, Txn: tx, Bindings: bindings}
				d.deliverLocked(s, sig, &emits)
			}
		}
		d.mu.Unlock()
	}
	d.nEmissions.Add(uint64(len(emits)))
	return d.send(emits)
}

// SignalExternal reports an application-defined event occurrence
// (§4.1 "signal"). tx is the transaction the application associates
// with the occurrence (0 for none). Rule processing for immediate
// couplings runs synchronously before SignalExternal returns.
func (d *Detectors) SignalExternal(name string, tx lock.TxnID, args map[string]datum.Value) (int, error) {
	d.nExtSignals.Add(1)
	snap := d.idx.Load()
	list := snap.ext[name]
	if len(list) == 0 {
		return 0, nil
	}
	now := d.clk.Now()
	var emits []emission
	slow := 0
	for _, s := range list {
		if cepFastEligible(s) {
			d.offerFast(s.parent, s.partIdx, now, tx, args, &emits)
		} else {
			slow++
		}
	}
	if slow > 0 {
		d.mu.Lock()
		for _, s := range list {
			if cepFastEligible(s) {
				continue
			}
			sig := Signal{Spec: s.spec, Time: now, Txn: tx, Bindings: args}
			d.deliverLocked(s, sig, &emits)
		}
		d.mu.Unlock()
	}
	d.nEmissions.Add(uint64(len(emits)))
	return len(emits), d.send(emits)
}

// Delete removes a subscription and all its internal children,
// stopping any timers (§5.3: detection ceases when the last rule
// using the event is deleted).
func (d *Detectors) Delete(id SubID) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if s := d.subs[id]; s != nil {
		d.removeLocked(s)
		d.publishLocked()
	}
}

func (d *Detectors) removeLocked(s *sub) {
	s.removed = true
	if s.timer != nil {
		s.timer.Stop()
		s.timer = nil
	}
	if s.tmpl != nil {
		s.tmpl.SetRemoved()
		for i, c := range d.cepSubs {
			if c == s {
				d.cepSubs = append(d.cepSubs[:i:i], d.cepSubs[i+1:]...)
				break
			}
		}
	}
	delete(d.subs, s.id)
	switch v := s.spec.(type) {
	case Database:
		k := dbKey{op: v.Op, class: v.Class}
		d.dbIndex[k] = removeSub(d.dbIndex[k], s)
		if len(d.dbIndex[k]) == 0 {
			delete(d.dbIndex, k)
		}
	case External:
		d.extIdx[v.Name] = removeSub(d.extIdx[v.Name], s)
		if len(d.extIdx[v.Name]) == 0 {
			delete(d.extIdx, v.Name)
		}
	}
	for _, c := range s.children {
		d.removeLocked(c)
	}
}

func removeSub(list []*sub, s *sub) []*sub {
	for i, x := range list {
		if x == s {
			return append(list[:i:i], list[i+1:]...)
		}
	}
	return list
}

// Disable suspends detection/signalling for the subscription (§5.3
// Disable Event). Timers of temporal subscriptions are stopped.
func (d *Detectors) Disable(id SubID) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if s := d.subs[id]; s != nil {
		d.setDisabledLocked(s, true)
	}
}

// Enable resumes detection (§5.3 Enable Event). Relative and periodic
// temporal subscriptions are re-armed from the enable instant;
// absolute ones fire only if still in the future.
func (d *Detectors) Enable(id SubID) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if s := d.subs[id]; s != nil {
		d.setDisabledLocked(s, false)
	}
}

func (d *Detectors) setDisabledLocked(s *sub, disabled bool) {
	if s.disabled == disabled {
		return
	}
	s.disabled = disabled
	if s.tmpl != nil {
		// The atomic flag is what the lock-free delivery path reads;
		// partial-match state survives a disable/enable cycle, like
		// the or/seq/and automata.
		s.tmpl.SetEnabled(!disabled)
	}
	if t, ok := s.spec.(Temporal); ok {
		if disabled {
			if s.timer != nil {
				s.timer.Stop()
				s.timer = nil
			}
		} else if t.Baseline == nil {
			switch t.Kind {
			case Absolute:
				if delay := t.At.Sub(d.clk.Now()); delay >= 0 {
					s.timer = d.clk.AfterFunc(delay, func() { d.temporalFire(s, false) })
				}
			case Relative:
				s.timer = d.clk.AfterFunc(t.Offset, func() { d.temporalFire(s, false) })
			case Periodic:
				s.timer = d.clk.AfterFunc(t.Period, func() { d.temporalFire(s, true) })
			}
		}
	}
	for _, c := range s.children {
		d.setDisabledLocked(c, disabled)
	}
}

// Subscriptions reports the number of live subscriptions including
// internal composite children.
func (d *Detectors) Subscriptions() int {
	d.mu.Lock()
	defer d.mu.Unlock()
	return len(d.subs)
}

// Stats returns a snapshot of the counters.
func (d *Detectors) Stats() Stats {
	st := Stats{
		DatabaseSignals: d.nDBSignals.Load(),
		ExternalSignals: d.nExtSignals.Load(),
		TemporalFirings: d.nTemporal.Load(),
		Emissions:       d.nEmissions.Load(),
	}
	d.mu.Lock()
	cepSubs := append([]*sub(nil), d.cepSubs...)
	d.mu.Unlock()
	for _, s := range cepSubs {
		ts := s.tmpl.Stats()
		st.CEPTemplates++
		st.CEPInstances += ts.Instances
		st.CEPPartials += ts.Partials
		st.CEPFirings += ts.Fired
		st.CEPExpired += ts.Expired
	}
	return st
}

// CEPShardInstances reports live NFA instances per shard, summed
// elementwise across all cep templates — the evidence that detection
// state (and therefore detection work) spreads over the shards.
func (d *Detectors) CEPShardInstances() []int {
	d.mu.Lock()
	cepSubs := append([]*sub(nil), d.cepSubs...)
	d.mu.Unlock()
	var out []int
	for _, s := range cepSubs {
		per := s.tmpl.ShardInstances()
		if out == nil {
			out = make([]int, len(per))
		}
		for i, n := range per {
			if i < len(out) {
				out[i] += n
			}
		}
	}
	return out
}

// Now exposes the detector clock (used by layers that timestamp
// signals consistently with temporal events).
func (d *Detectors) Now() time.Time { return d.clk.Now() }
