package event

// Property tests over the event-spec algebra: random specs must
// print-parse round trip, JSON round trip, and detect consistently.

import (
	"math/rand"
	"reflect"
	"testing"
	"time"

	"repro/internal/clock"
	"repro/internal/datum"
)

// randSpec generates a random event specification of bounded depth.
func randSpec(rng *rand.Rand, depth int) Spec {
	max := 7
	if depth <= 0 {
		max = 4 // primitives only
	}
	switch rng.Intn(max) {
	case 0:
		ops := []Op{OpCreate, OpModify, OpDelete, OpDefineClass, OpDropClass, OpAny}
		classes := []string{"Stock", "Holding", "Audit", ""}
		return Database{Op: ops[rng.Intn(len(ops))], Class: classes[rng.Intn(len(classes))]}
	case 1:
		return Database{Op: []Op{OpCommit, OpAbort}[rng.Intn(2)]}
	case 2:
		names := []string{"A", "B", "Trade", "Open"}
		return External{Name: names[rng.Intn(len(names))]}
	case 3:
		switch rng.Intn(3) {
		case 0:
			return Temporal{Kind: Absolute,
				At: time.Unix(0, rng.Int63n(1e15)).UTC().Truncate(time.Second)}
		case 1:
			t := Temporal{Kind: Relative, Offset: time.Duration(rng.Intn(3600)) * time.Second}
			if rng.Intn(2) == 0 && depth > 0 {
				t.Baseline = randSpec(rng, depth-1)
			}
			return t
		default:
			t := Temporal{Kind: Periodic, Period: time.Duration(rng.Intn(3600)+1) * time.Second}
			if rng.Intn(2) == 0 && depth > 0 {
				t.Baseline = randSpec(rng, depth-1)
			}
			return t
		}
	case 4:
		// The windowed/interval/aggregate operators, with and without
		// a correlation clause.
		var correl Correl
		if rng.Intn(2) == 0 {
			correl = Correl{Attr: "ticker", Var: "t"}
		}
		switch rng.Intn(4) {
		case 0:
			w := Within{Window: time.Duration(rng.Intn(3600)+1) * time.Second, Correl: correl}
			n := rng.Intn(2) + 2
			for i := 0; i < n; i++ {
				w.Parts = append(w.Parts, randSpec(rng, depth-1))
			}
			return w
		case 1:
			return During{Event: randSpec(rng, depth-1), Start: randSpec(rng, depth-1),
				End: randSpec(rng, depth-1), Correl: correl}
		case 2:
			return Window{Mode: []WindowMode{Sliding, Tumbling}[rng.Intn(2)],
				Part: randSpec(rng, depth-1), Count: rng.Intn(100) + 1, Correl: correl}
		default:
			return Aggregate{Part: randSpec(rng, depth-1), Correl: correl,
				Min: rng.Intn(100) + 1, Window: time.Duration(rng.Intn(3600)+1) * time.Second}
		}
	default:
		ops := []CompOp{Disjunction, Sequence, Conjunction}
		n := rng.Intn(2) + 2
		c := Composite{Op: ops[rng.Intn(len(ops))]}
		for i := 0; i < n; i++ {
			c.Parts = append(c.Parts, randSpec(rng, depth-1))
		}
		return c
	}
}

func TestRandomSpecPrintParseRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 2000; trial++ {
		spec := randSpec(rng, 3)
		text := spec.String()
		back, err := Parse(text)
		if err != nil {
			t.Fatalf("trial %d: Parse(%q): %v", trial, text, err)
		}
		if back.String() != text {
			t.Fatalf("trial %d: %q reparsed to %q", trial, text, back.String())
		}
	}
}

func TestRandomSpecJSONRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	for trial := 0; trial < 2000; trial++ {
		spec := randSpec(rng, 3)
		raw, err := MarshalSpec(spec)
		if err != nil {
			t.Fatalf("trial %d: marshal %v: %v", trial, spec, err)
		}
		back, err := UnmarshalSpec(raw)
		if err != nil {
			t.Fatalf("trial %d: unmarshal %s: %v", trial, raw, err)
		}
		if !reflect.DeepEqual(spec, back) && spec.String() != back.String() {
			t.Fatalf("trial %d: %v -> %v", trial, spec, back)
		}
	}
}

func TestRandomSpecsDefineAndDelete(t *testing.T) {
	// Every random spec must be definable; Delete must fully clean
	// up, leaving zero live subscriptions.
	rng := rand.New(rand.NewSource(13))
	d := New(clock.NewVirtual(time.Unix(0, 0)), func(SubID, Signal) error { return nil })
	for trial := 0; trial < 500; trial++ {
		spec := randSpec(rng, 3)
		id, err := d.Define(spec)
		if err != nil {
			t.Fatalf("trial %d: Define(%v): %v", trial, spec, err)
		}
		d.Delete(id)
	}
	if got := d.Subscriptions(); got != 0 {
		t.Fatalf("subscriptions leaked: %d", got)
	}
}

func TestDisjunctionOrderIrrelevant(t *testing.T) {
	// Property: or(A, B) and or(B, A) emit identically for any
	// interleaving of A and B signals.
	rng := rand.New(rand.NewSource(14))
	for trial := 0; trial < 200; trial++ {
		countFor := func(parts []Spec, stream []string) int {
			n := 0
			d := New(clock.NewVirtual(time.Unix(0, 0)),
				func(SubID, Signal) error { n++; return nil })
			if _, err := d.Define(Composite{Op: Disjunction, Parts: parts}); err != nil {
				t.Fatal(err)
			}
			for _, name := range stream {
				d.SignalExternal(name, 0, nil)
			}
			return n
		}
		stream := make([]string, rng.Intn(20))
		for i := range stream {
			stream[i] = []string{"A", "B", "C"}[rng.Intn(3)]
		}
		ab := countFor([]Spec{External{Name: "A"}, External{Name: "B"}}, stream)
		ba := countFor([]Spec{External{Name: "B"}, External{Name: "A"}}, stream)
		if ab != ba {
			t.Fatalf("trial %d: or(A,B)=%d, or(B,A)=%d for %v", trial, ab, ba, stream)
		}
	}
}

func TestConjunctionOrderIrrelevant(t *testing.T) {
	// Property: and(A, B) fires the same number of times as and(B, A)
	// for any stream.
	rng := rand.New(rand.NewSource(15))
	for trial := 0; trial < 200; trial++ {
		countFor := func(parts []Spec, stream []string) int {
			n := 0
			d := New(clock.NewVirtual(time.Unix(0, 0)),
				func(SubID, Signal) error { n++; return nil })
			if _, err := d.Define(Composite{Op: Conjunction, Parts: parts}); err != nil {
				t.Fatal(err)
			}
			for _, name := range stream {
				d.SignalExternal(name, 0, map[string]datum.Value{"x": datum.Int(1)})
			}
			return n
		}
		stream := make([]string, rng.Intn(20))
		for i := range stream {
			stream[i] = []string{"A", "B"}[rng.Intn(2)]
		}
		ab := countFor([]Spec{External{Name: "A"}, External{Name: "B"}}, stream)
		ba := countFor([]Spec{External{Name: "B"}, External{Name: "A"}}, stream)
		if ab != ba {
			t.Fatalf("trial %d: and(A,B)=%d, and(B,A)=%d for %v", trial, ab, ba, stream)
		}
	}
}

func TestSequenceNeverExceedsPairCount(t *testing.T) {
	// Property: seq(A, B) fires at most min(#A, #B) times, and the
	// count equals the number of A->B alternation completions.
	rng := rand.New(rand.NewSource(16))
	for trial := 0; trial < 300; trial++ {
		n := 0
		d := New(clock.NewVirtual(time.Unix(0, 0)),
			func(SubID, Signal) error { n++; return nil })
		d.Define(Composite{Op: Sequence, Parts: []Spec{
			External{Name: "A"}, External{Name: "B"},
		}})
		stream := make([]string, rng.Intn(30))
		countA, countB := 0, 0
		armed := false
		wantFires := 0
		for i := range stream {
			name := []string{"A", "B"}[rng.Intn(2)]
			stream[i] = name
			if name == "A" {
				countA++
				armed = true
			} else {
				countB++
				if armed {
					wantFires++
					armed = false
				}
			}
			d.SignalExternal(name, 0, nil)
		}
		limit := countA
		if countB < limit {
			limit = countB
		}
		if n > limit {
			t.Fatalf("trial %d: %d fires exceeds min(#A,#B)=%d for %v", trial, n, limit, stream)
		}
		if n != wantFires {
			t.Fatalf("trial %d: %d fires, reference model says %d for %v", trial, n, wantFires, stream)
		}
	}
}
