package event

// Detector-level tests for the composite-event runtime: windowed,
// interval, and aggregate specs defined through Define and driven by
// SignalExternal / SignalDatabase, including the periodic GC sweep on
// the virtual clock and the detector-wide CEP stats.

import (
	"fmt"
	"math/rand"
	"sync"
	"testing"
	"time"

	"repro/internal/datum"
	"repro/internal/lock"
)

func mustParse(t *testing.T, src string) Spec {
	t.Helper()
	spec, err := Parse(src)
	if err != nil {
		t.Fatalf("Parse(%q): %v", src, err)
	}
	return spec
}

func signalDrop(t *testing.T, d *Detectors, ticker string) int {
	t.Helper()
	n, err := d.SignalExternal("PriceDrop", 0, map[string]datum.Value{
		"ticker": datum.Str(ticker),
		"price":  datum.Int(100),
	})
	if err != nil {
		t.Fatalf("SignalExternal: %v", err)
	}
	return n
}

func TestDetectAggregateCorrelated(t *testing.T) {
	d, col, _ := setup()
	if _, err := d.Define(mustParse(t,
		"count(external(PriceDrop) where ticker=$t) >= 3 within 1m0s")); err != nil {
		t.Fatal(err)
	}
	// Interleave two tickers; each must reach its threshold on its own.
	for _, tk := range []string{"AAPL", "MSFT", "AAPL", "MSFT", "AAPL"} {
		signalDrop(t, d, tk)
	}
	if col.count() != 1 {
		t.Fatalf("emissions = %d, want 1 (AAPL reached 3)", col.count())
	}
	sig := col.last()
	if got := sig.Bindings["t"]; !datum.Equal(got, datum.Str("AAPL")) {
		t.Fatalf("correlation binding t = %v, want AAPL", got)
	}
	if got := sig.Bindings["cep_count"]; !datum.Equal(got, datum.Int(3)) {
		t.Fatalf("cep_count = %v, want 3", got)
	}
	if _, ok := sig.Bindings["cep_window_start"]; !ok {
		t.Fatalf("firing lacks cep_window_start binding: %v", sig.Bindings)
	}
	// MSFT is at 2 of 3; one more fires it, and the consumed AAPL set
	// does not fire again from a single further drop.
	signalDrop(t, d, "MSFT")
	signalDrop(t, d, "AAPL")
	if col.count() != 2 {
		t.Fatalf("emissions = %d, want 2", col.count())
	}
	if got := col.last().Bindings["t"]; !datum.Equal(got, datum.Str("MSFT")) {
		t.Fatalf("second firing t = %v, want MSFT", got)
	}
}

func TestDetectWithinSequence(t *testing.T) {
	d, col, clk := setup()
	if _, err := d.Define(mustParse(t,
		"within(external(A), external(B), 30s where k=$v)")); err != nil {
		t.Fatal(err)
	}
	args := func(key string) map[string]datum.Value {
		return map[string]datum.Value{"k": datum.Str(key)}
	}
	// In-window completion fires.
	d.SignalExternal("A", 0, args("x"))
	clk.Advance(10 * time.Second)
	d.SignalExternal("B", 0, args("x"))
	if col.count() != 1 {
		t.Fatalf("emissions = %d, want 1", col.count())
	}
	if got := col.last().Bindings["v"]; !datum.Equal(got, datum.Str("x")) {
		t.Fatalf("correlation binding v = %v, want x", got)
	}
	// Past-window completion does not: the partial expires first.
	d.SignalExternal("A", 0, args("y"))
	clk.Advance(31 * time.Second)
	d.SignalExternal("B", 0, args("y"))
	if col.count() != 1 {
		t.Fatalf("emissions = %d after expired pair, want 1", col.count())
	}
}

func TestDetectDuringInterval(t *testing.T) {
	d, col, _ := setup()
	if _, err := d.Define(mustParse(t,
		"during(external(Trade), external(Open), external(Close))")); err != nil {
		t.Fatal(err)
	}
	d.SignalExternal("Trade", 0, nil) // before the interval: ignored
	d.SignalExternal("Open", 0, nil)
	d.SignalExternal("Trade", 0, nil)
	d.SignalExternal("Trade", 0, nil)
	if col.count() != 0 {
		t.Fatalf("emitted before interval end: %d", col.count())
	}
	d.SignalExternal("Close", 0, nil)
	if col.count() != 1 {
		t.Fatalf("emissions = %d, want 1 at interval end", col.count())
	}
	if got := col.last().Bindings["cep_count"]; !datum.Equal(got, datum.Int(2)) {
		t.Fatalf("cep_count = %v, want 2", got)
	}
}

func TestDetectSlidingWindowOverDatabase(t *testing.T) {
	// A count window over a primitive database event, driven through
	// SignalDatabase — the cep layer composes with DML signals, not
	// just external ones.
	d, col, _ := setup()
	if _, err := d.Define(mustParse(t, "sliding(modify(Stock), 3)")); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		if err := d.SignalDatabase(OpModify, "Stock", lock.TxnID(i+1), nil); err != nil {
			t.Fatal(err)
		}
	}
	if col.count() != 3 {
		t.Fatalf("emissions = %d, want 3 (offers 3,4,5 each complete a window)", col.count())
	}
}

func TestCEPGCTimerReclaimsAndRearms(t *testing.T) {
	d, col, clk := setup()
	if _, err := d.Define(mustParse(t,
		"within(external(A), external(B), 10s where k=$v)")); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		d.SignalExternal("A", 0, map[string]datum.Value{
			"k": datum.Str(fmt.Sprintf("key-%d", i)),
		})
	}
	if st := d.Stats(); st.CEPPartials != 5 || st.CEPInstances != 5 {
		t.Fatalf("before GC: partials=%d instances=%d, want 5/5", st.CEPPartials, st.CEPInstances)
	}
	// The sweep timer runs inside Advance on the virtual clock. By
	// +25s two sweeps have run; the second (at +20s) sees every partial
	// strictly older than the 10s window and reclaims all of them.
	clk.Advance(25 * time.Second)
	st := d.Stats()
	if st.CEPPartials != 0 || st.CEPInstances != 0 {
		t.Fatalf("after GC: partials=%d instances=%d, want 0/0", st.CEPPartials, st.CEPInstances)
	}
	if st.CEPExpired != 5 {
		t.Fatalf("CEPExpired = %d, want 5", st.CEPExpired)
	}
	// The timer re-armed: a second orphan generation is reclaimed too.
	d.SignalExternal("A", 0, map[string]datum.Value{"k": datum.Str("late")})
	clk.Advance(25 * time.Second)
	st = d.Stats()
	if st.CEPExpired != 6 || st.CEPPartials != 0 {
		t.Fatalf("after second GC: expired=%d partials=%d, want 6/0", st.CEPExpired, st.CEPPartials)
	}
	if col.count() != 0 {
		t.Fatalf("unexpected emissions: %d", col.count())
	}
}

func TestCEPDisableEnableDelete(t *testing.T) {
	d, col, clk := setup()
	id, err := d.Define(mustParse(t,
		"count(external(PriceDrop) where ticker=$t) >= 2 within 1m0s"))
	if err != nil {
		t.Fatal(err)
	}
	signalDrop(t, d, "AAPL")
	d.Disable(id)
	// Disabled: signals are ignored but accumulated state survives,
	// like the or/seq/and automata.
	signalDrop(t, d, "AAPL")
	if col.count() != 0 {
		t.Fatalf("disabled template emitted: %d", col.count())
	}
	d.Enable(id)
	signalDrop(t, d, "AAPL")
	if col.count() != 1 {
		t.Fatalf("emissions = %d after enable, want 1", col.count())
	}
	d.Delete(id)
	if n := signalDrop(t, d, "AAPL"); n != 0 {
		t.Fatalf("deleted template still emits: %d", n)
	}
	if got := d.Subscriptions(); got != 0 {
		t.Fatalf("subscriptions leaked after Delete: %d", got)
	}
	if st := d.Stats(); st.CEPTemplates != 0 {
		t.Fatalf("CEPTemplates = %d after Delete, want 0", st.CEPTemplates)
	}
	// The GC timer died with the subscription.
	if clk.PendingTimers() != 0 {
		t.Fatalf("pending timers after Delete: %d", clk.PendingTimers())
	}
}

func TestCEPStatsAndShardInstances(t *testing.T) {
	d, _, _ := setup()
	if _, err := d.Define(mustParse(t,
		"count(external(PriceDrop) where ticker=$t) >= 100 within 1h0m0s")); err != nil {
		t.Fatal(err)
	}
	if _, err := d.Define(mustParse(t, "sliding(external(Tick), 1000)")); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 64; i++ {
		signalDrop(t, d, fmt.Sprintf("T%03d", i))
	}
	d.SignalExternal("Tick", 0, nil)
	st := d.Stats()
	if st.CEPTemplates != 2 {
		t.Fatalf("CEPTemplates = %d, want 2", st.CEPTemplates)
	}
	if st.CEPInstances != 65 { // 64 tickers + the uncorrelated Tick instance
		t.Fatalf("CEPInstances = %d, want 65", st.CEPInstances)
	}
	if st.CEPPartials != 65 {
		t.Fatalf("CEPPartials = %d, want 65", st.CEPPartials)
	}
	per := d.CEPShardInstances()
	total, nonzero := 0, 0
	for _, n := range per {
		total += n
		if n > 0 {
			nonzero++
		}
	}
	if total != 65 {
		t.Fatalf("shard instance sum = %d, want 65", total)
	}
	if nonzero < 2 {
		t.Fatalf("instances concentrated in %d shard(s); want spread over >= 2", nonzero)
	}
}

func TestCEPConcurrentExternalSignals(t *testing.T) {
	// The lock-free fast path: concurrent signalers for distinct
	// correlation keys advance the sharded automata in parallel.
	// Every ticker sees exactly `perKey` drops, so with threshold
	// `perKey` each fires exactly once regardless of interleaving.
	d, col, _ := setup()
	const workers, tickers, perKey = 8, 32, 10
	if _, err := d.Define(mustParse(t, fmt.Sprintf(
		"count(external(PriceDrop) where ticker=$t) >= %d within 1h0m0s", perKey))); err != nil {
		t.Fatal(err)
	}
	var stream []string
	for i := 0; i < tickers; i++ {
		for j := 0; j < perKey; j++ {
			stream = append(stream, fmt.Sprintf("T%03d", i))
		}
	}
	rand.New(rand.NewSource(7)).Shuffle(len(stream), func(i, j int) {
		stream[i], stream[j] = stream[j], stream[i]
	})
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := w; i < len(stream); i += workers {
				d.SignalExternal("PriceDrop", 0, map[string]datum.Value{
					"ticker": datum.Str(stream[i]),
				})
			}
		}(w)
	}
	wg.Wait()
	if col.count() != tickers {
		t.Fatalf("emissions = %d, want exactly %d (one per ticker)", col.count(), tickers)
	}
	seen := map[string]int{}
	col.mu.Lock()
	for _, sig := range col.sigs {
		seen[sig.Bindings["t"].String()]++
	}
	col.mu.Unlock()
	for k, n := range seen {
		if n != 1 {
			t.Fatalf("ticker %v fired %d times, want 1", k, n)
		}
	}
	if st := d.Stats(); st.CEPFirings != tickers || st.CEPPartials != 0 {
		t.Fatalf("stats firings=%d partials=%d, want %d/0", st.CEPFirings, st.CEPPartials, tickers)
	}
}

func TestCEPInsideEnclosingComposite(t *testing.T) {
	// A cep operator nested under or(): firings route upward through
	// the ordinary composite delivery path (not the fast path).
	d, col, _ := setup()
	if _, err := d.Define(mustParse(t,
		"or(sliding(external(Tick), 2), external(Halt))")); err != nil {
		t.Fatal(err)
	}
	d.SignalExternal("Tick", 0, nil)
	if col.count() != 0 {
		t.Fatalf("premature emission: %d", col.count())
	}
	d.SignalExternal("Tick", 0, nil)
	if col.count() != 1 {
		t.Fatalf("emissions = %d after window filled, want 1", col.count())
	}
	d.SignalExternal("Halt", 0, nil)
	if col.count() != 2 {
		t.Fatalf("emissions = %d after or-branch, want 2", col.count())
	}
}
