// Package event implements the HiPAC event model (§2.1 of the paper):
// primitive events — database operations, temporal events (absolute,
// relative, periodic), and application-defined external events — and
// composite events built from them with disjunction and sequence
// operators (plus conjunction, an extension flagged as such). It also
// implements the event detectors of §5.3, which the Rule Manager
// programs when rules are created.
package event

import (
	"encoding/json"
	"fmt"
	"strings"
	"time"

	"repro/internal/datum"
	"repro/internal/lock"
)

// Op is a database operation type, the subject of database events.
// The paper groups these as data definition, data manipulation, and
// transaction control.
type Op string

// Database operation types.
const (
	OpAny         Op = ""            // wildcard in specifications
	OpCreate      Op = "create"      // DML: object creation
	OpModify      Op = "modify"      // DML: attribute update
	OpDelete      Op = "delete"      // DML: object deletion
	OpDefineClass Op = "defineClass" // DDL
	OpDropClass   Op = "dropClass"   // DDL
	OpCommit      Op = "commit"      // transaction control
	OpAbort       Op = "abort"       // transaction control
)

// Spec describes an event that can trigger rules. Specs are values;
// they are stored in rule objects and shipped over IPC, so every
// implementation is JSON-serializable via MarshalSpec/UnmarshalSpec
// and has a canonical String form parseable by Parse.
type Spec interface {
	// String renders the spec in the canonical text syntax.
	String() string
	isSpec()
}

// Database matches database operations. A zero Op matches any
// operation; an empty Class matches any class.
type Database struct {
	Op    Op
	Class string
}

func (Database) isSpec() {}

// String renders e.g. `modify(Stock)`, `create(*)`, `commit()`.
func (d Database) String() string {
	op := string(d.Op)
	if op == "" {
		op = "anyop"
	}
	switch d.Op {
	case OpCommit, OpAbort:
		return op + "()"
	}
	cls := d.Class
	if cls == "" {
		cls = "*"
	}
	return fmt.Sprintf("%s(%s)", op, cls)
}

// TemporalKind distinguishes the three temporal event forms of §2.1.
type TemporalKind string

// Temporal event kinds.
const (
	Absolute TemporalKind = "absolute"
	Relative TemporalKind = "relative"
	Periodic TemporalKind = "periodic"
)

// Temporal matches instants in time. Absolute fires once at At.
// Relative fires once, Offset after its baseline (the moment the
// detector is programmed when Baseline is nil, else each baseline
// event occurrence). Periodic fires every Period after its baseline.
type Temporal struct {
	Kind     TemporalKind
	At       time.Time     // Absolute only
	Offset   time.Duration // Relative only
	Period   time.Duration // Periodic only
	Baseline Spec          // Relative/Periodic; nil = detector programming time
}

func (Temporal) isSpec() {}

// String renders e.g. `at(2026-07-06T09:30:00Z)`, `after(5s)`,
// `after(commit(), 5s)`, `every(1m)`.
func (t Temporal) String() string {
	switch t.Kind {
	case Absolute:
		return fmt.Sprintf("at(%s)", t.At.UTC().Format(time.RFC3339Nano))
	case Relative:
		if t.Baseline != nil {
			return fmt.Sprintf("after(%s, %s)", t.Baseline, t.Offset)
		}
		return fmt.Sprintf("after(%s)", t.Offset)
	case Periodic:
		if t.Baseline != nil {
			return fmt.Sprintf("every(%s, %s)", t.Baseline, t.Period)
		}
		return fmt.Sprintf("every(%s)", t.Period)
	default:
		return fmt.Sprintf("temporal(%s)", t.Kind)
	}
}

// External matches application-defined events signalled by name
// (§2.1 item 3; §4.1 "define" and "signal" operations).
type External struct {
	Name string
}

func (External) isSpec() {}

// String renders `external(Name)`.
func (e External) String() string { return fmt.Sprintf("external(%s)", e.Name) }

// CompOp is a composite event operator.
type CompOp string

// Composite operators. The paper specifies disjunction and sequence;
// conjunction is implemented as a documented extension.
const (
	Disjunction CompOp = "or"
	Sequence    CompOp = "seq"
	Conjunction CompOp = "and"
)

// Composite combines sub-events. Disjunction signals when any part
// signals; Sequence when the parts signal in order; Conjunction when
// all parts have signalled in any order. Bindings of the constituent
// signals are merged, later constituents winning name collisions.
type Composite struct {
	Op    CompOp
	Parts []Spec
}

func (Composite) isSpec() {}

// String renders e.g. `seq(modify(Stock), external(TradeExecuted))`.
func (c Composite) String() string {
	parts := make([]string, len(c.Parts))
	for i, p := range c.Parts {
		parts[i] = p.String()
	}
	return fmt.Sprintf("%s(%s)", c.Op, strings.Join(parts, ", "))
}

// Signal is an event occurrence: which spec matched, when, in which
// transaction (0 when outside any transaction, e.g. temporal events),
// and the argument bindings carried to conditions and actions.
//
// Binding name conventions for database events: "op", "class", "oid",
// and "old_<attr>" / "new_<attr>" for modified attributes. External
// events carry their declared parameters. Temporal events carry
// "time" and, for periodic events, "count".
type Signal struct {
	Spec     Spec
	Time     time.Time
	Txn      lock.TxnID
	Bindings map[string]datum.Value
}

// MergeBindings returns a new map holding first overlaid with second
// (second wins collisions).
func MergeBindings(first, second map[string]datum.Value) map[string]datum.Value {
	out := make(map[string]datum.Value, len(first)+len(second))
	for k, v := range first {
		out[k] = v
	}
	for k, v := range second {
		out[k] = v
	}
	return out
}

// --- JSON encoding of specs (tagged union) ---

type specJSON struct {
	Type     string            `json:"type"`
	Op       string            `json:"op,omitempty"`
	Class    string            `json:"class,omitempty"`
	Kind     string            `json:"kind,omitempty"`
	At       int64             `json:"at,omitempty"` // UnixNano
	HasAt    bool              `json:"hasAt,omitempty"`
	Offset   int64             `json:"offset,omitempty"`
	Period   int64             `json:"period,omitempty"`
	Baseline json.RawMessage   `json:"baseline,omitempty"`
	Name     string            `json:"name,omitempty"`
	CompOp   string            `json:"compOp,omitempty"`
	Parts    []json.RawMessage `json:"parts,omitempty"`
}

// MarshalSpec encodes a spec to JSON.
func MarshalSpec(s Spec) ([]byte, error) {
	switch v := s.(type) {
	case Database:
		return json.Marshal(specJSON{Type: "db", Op: string(v.Op), Class: v.Class})
	case Temporal:
		sj := specJSON{Type: "temporal", Kind: string(v.Kind),
			Offset: int64(v.Offset), Period: int64(v.Period)}
		if v.Kind == Absolute {
			// Absolute instants round-trip as UnixNano; the zero At is
			// not meaningful for the other kinds.
			sj.At = v.At.UnixNano()
			sj.HasAt = true
		}
		if v.Baseline != nil {
			raw, err := MarshalSpec(v.Baseline)
			if err != nil {
				return nil, err
			}
			sj.Baseline = raw
		}
		return json.Marshal(sj)
	case External:
		return json.Marshal(specJSON{Type: "external", Name: v.Name})
	case Composite:
		sj := specJSON{Type: "composite", CompOp: string(v.Op)}
		for _, p := range v.Parts {
			raw, err := MarshalSpec(p)
			if err != nil {
				return nil, err
			}
			sj.Parts = append(sj.Parts, raw)
		}
		return json.Marshal(sj)
	case nil:
		return []byte("null"), nil
	default:
		return nil, fmt.Errorf("event: cannot marshal spec of type %T", s)
	}
}

// UnmarshalSpec decodes a spec written by MarshalSpec.
func UnmarshalSpec(b []byte) (Spec, error) {
	if string(b) == "null" || len(b) == 0 {
		return nil, nil
	}
	var sj specJSON
	if err := json.Unmarshal(b, &sj); err != nil {
		return nil, fmt.Errorf("event: bad spec json: %w", err)
	}
	switch sj.Type {
	case "db":
		return Database{Op: Op(sj.Op), Class: sj.Class}, nil
	case "temporal":
		t := Temporal{Kind: TemporalKind(sj.Kind), Offset: time.Duration(sj.Offset),
			Period: time.Duration(sj.Period)}
		if sj.HasAt {
			t.At = time.Unix(0, sj.At)
		}
		if len(sj.Baseline) > 0 {
			base, err := UnmarshalSpec(sj.Baseline)
			if err != nil {
				return nil, err
			}
			t.Baseline = base
		}
		return t, nil
	case "external":
		return External{Name: sj.Name}, nil
	case "composite":
		c := Composite{Op: CompOp(sj.CompOp)}
		for _, raw := range sj.Parts {
			p, err := UnmarshalSpec(raw)
			if err != nil {
				return nil, err
			}
			c.Parts = append(c.Parts, p)
		}
		return c, nil
	default:
		return nil, fmt.Errorf("event: unknown spec type %q", sj.Type)
	}
}
