// Package event implements the HiPAC event model (§2.1 of the paper):
// primitive events — database operations, temporal events (absolute,
// relative, periodic), and application-defined external events — and
// composite events built from them with disjunction and sequence
// operators (plus conjunction, an extension flagged as such). It also
// implements the event detectors of §5.3, which the Rule Manager
// programs when rules are created.
package event

import (
	"encoding/json"
	"fmt"
	"strings"
	"time"

	"repro/internal/datum"
	"repro/internal/lock"
)

// Op is a database operation type, the subject of database events.
// The paper groups these as data definition, data manipulation, and
// transaction control.
type Op string

// Database operation types.
const (
	OpAny         Op = ""            // wildcard in specifications
	OpCreate      Op = "create"      // DML: object creation
	OpModify      Op = "modify"      // DML: attribute update
	OpDelete      Op = "delete"      // DML: object deletion
	OpDefineClass Op = "defineClass" // DDL
	OpDropClass   Op = "dropClass"   // DDL
	OpCommit      Op = "commit"      // transaction control
	OpAbort       Op = "abort"       // transaction control
)

// Spec describes an event that can trigger rules. Specs are values;
// they are stored in rule objects and shipped over IPC, so every
// implementation is JSON-serializable via MarshalSpec/UnmarshalSpec
// and has a canonical String form parseable by Parse.
type Spec interface {
	// String renders the spec in the canonical text syntax.
	String() string
	isSpec()
}

// Database matches database operations. A zero Op matches any
// operation; an empty Class matches any class.
type Database struct {
	Op    Op
	Class string
}

func (Database) isSpec() {}

// String renders e.g. `modify(Stock)`, `create(*)`, `commit()`.
func (d Database) String() string {
	op := string(d.Op)
	if op == "" {
		op = "anyop"
	}
	switch d.Op {
	case OpCommit, OpAbort:
		return op + "()"
	}
	cls := d.Class
	if cls == "" {
		cls = "*"
	}
	return fmt.Sprintf("%s(%s)", op, cls)
}

// TemporalKind distinguishes the three temporal event forms of §2.1.
type TemporalKind string

// Temporal event kinds.
const (
	Absolute TemporalKind = "absolute"
	Relative TemporalKind = "relative"
	Periodic TemporalKind = "periodic"
)

// Temporal matches instants in time. Absolute fires once at At.
// Relative fires once, Offset after its baseline (the moment the
// detector is programmed when Baseline is nil, else each baseline
// event occurrence). Periodic fires every Period after its baseline.
type Temporal struct {
	Kind     TemporalKind
	At       time.Time     // Absolute only
	Offset   time.Duration // Relative only
	Period   time.Duration // Periodic only
	Baseline Spec          // Relative/Periodic; nil = detector programming time
}

func (Temporal) isSpec() {}

// String renders e.g. `at(2026-07-06T09:30:00Z)`, `after(5s)`,
// `after(commit(), 5s)`, `every(1m)`.
func (t Temporal) String() string {
	switch t.Kind {
	case Absolute:
		return fmt.Sprintf("at(%s)", t.At.UTC().Format(time.RFC3339Nano))
	case Relative:
		if t.Baseline != nil {
			return fmt.Sprintf("after(%s, %s)", t.Baseline, t.Offset)
		}
		return fmt.Sprintf("after(%s)", t.Offset)
	case Periodic:
		if t.Baseline != nil {
			return fmt.Sprintf("every(%s, %s)", t.Baseline, t.Period)
		}
		return fmt.Sprintf("every(%s)", t.Period)
	default:
		return fmt.Sprintf("temporal(%s)", t.Kind)
	}
}

// External matches application-defined events signalled by name
// (§2.1 item 3; §4.1 "define" and "signal" operations).
type External struct {
	Name string
}

func (External) isSpec() {}

// String renders `external(Name)`.
func (e External) String() string { return fmt.Sprintf("external(%s)", e.Name) }

// CompOp is a composite event operator.
type CompOp string

// Composite operators. The paper specifies disjunction and sequence;
// conjunction is implemented as a documented extension.
const (
	Disjunction CompOp = "or"
	Sequence    CompOp = "seq"
	Conjunction CompOp = "and"
)

// Composite combines sub-events. Disjunction signals when any part
// signals; Sequence when the parts signal in order; Conjunction when
// all parts have signalled in any order. Bindings of the constituent
// signals are merged, later constituents winning name collisions.
type Composite struct {
	Op    CompOp
	Parts []Spec
}

func (Composite) isSpec() {}

// String renders e.g. `seq(modify(Stock), external(TradeExecuted))`.
func (c Composite) String() string {
	parts := make([]string, len(c.Parts))
	for i, p := range c.Parts {
		parts[i] = p.String()
	}
	return fmt.Sprintf("%s(%s)", c.Op, strings.Join(parts, ", "))
}

// --- CEP operators (composite-event runtime extensions) ---
//
// The operators below extend the paper's disjunction/sequence algebra
// along the axes of the Reaction RuleML event-processing space:
// sequence-within-duration, interval relations, count windows, and
// windowed aggregation. They are detected by NFA instances keyed by a
// correlation attribute (internal/cep), not by the single automaton
// per subscription that serves or/seq/and.

// Correl names a CEP operator's correlation: constituent occurrences
// are partitioned by the value bound to Attr (occurrences without it
// are ignored), and firings bind that value to Var. The zero Correl
// means uncorrelated — one global automaton instance.
type Correl struct {
	Attr string
	Var  string
}

// clause renders " where attr=$var", or "" for the zero Correl.
func (c Correl) clause() string {
	if c.Attr == "" {
		return ""
	}
	return fmt.Sprintf(" where %s=$%s", c.Attr, c.Var)
}

// Within is sequence-within-duration: the parts must occur in order,
// all within Window of the first part's occurrence.
type Within struct {
	Parts  []Spec
	Window time.Duration
	Correl Correl
}

func (Within) isSpec() {}

// String renders e.g. `within(external(A), external(B), 5s)` or
// `within(external(A), external(B), 5s where ticker=$t)`.
func (w Within) String() string {
	parts := make([]string, len(w.Parts))
	for i, p := range w.Parts {
		parts[i] = p.String()
	}
	return fmt.Sprintf("within(%s, %s%s)", strings.Join(parts, ", "), w.Window, w.Correl.clause())
}

// During is the interval relation A during B: Event must occur inside
// the interval delimited by a Start occurrence and the next End
// occurrence. It fires once per interval containing at least one
// Event, at the End occurrence.
type During struct {
	Event  Spec
	Start  Spec
	End    Spec
	Correl Correl
}

func (During) isSpec() {}

// String renders e.g. `during(external(A), external(S), external(E))`.
func (d During) String() string {
	return fmt.Sprintf("during(%s, %s, %s%s)", d.Event, d.Start, d.End, d.Correl.clause())
}

// WindowMode distinguishes the two count-window forms.
type WindowMode string

// Count-window modes.
const (
	Sliding  WindowMode = "sliding"  // fires on every occurrence once the window is full
	Tumbling WindowMode = "tumbling" // fires on every Count-th occurrence, then resets
)

// Window is a count window over occurrences of Part.
type Window struct {
	Mode   WindowMode
	Part   Spec
	Count  int
	Correl Correl
}

func (Window) isSpec() {}

// String renders e.g. `sliding(external(A), 5)` or
// `tumbling(modify(Stock), 100 where symbol=$s)`.
func (w Window) String() string {
	return fmt.Sprintf("%s(%s, %d%s)", w.Mode, w.Part, w.Count, w.Correl.clause())
}

// Aggregate is a windowed count aggregate: it fires when at least Min
// occurrences of Part fall within the trailing Window, consuming them
// (one qualifying burst fires exactly once).
type Aggregate struct {
	Part   Spec
	Correl Correl
	Min    int
	Window time.Duration
}

func (Aggregate) isSpec() {}

// String renders e.g.
// `count(external(PriceDrop) where ticker=$t) >= 10 within 1m0s`.
func (a Aggregate) String() string {
	return fmt.Sprintf("count(%s%s) >= %d within %s", a.Part, a.Correl.clause(), a.Min, a.Window)
}

// Signal is an event occurrence: which spec matched, when, in which
// transaction (0 when outside any transaction, e.g. temporal events),
// and the argument bindings carried to conditions and actions.
//
// Binding name conventions for database events: "op", "class", "oid",
// and "old_<attr>" / "new_<attr>" for modified attributes. External
// events carry their declared parameters. Temporal events carry
// "time" and, for periodic events, "count".
type Signal struct {
	Spec     Spec
	Time     time.Time
	Txn      lock.TxnID
	Bindings map[string]datum.Value
}

// MergeBindings returns a new map holding first overlaid with second
// (second wins collisions).
func MergeBindings(first, second map[string]datum.Value) map[string]datum.Value {
	out := make(map[string]datum.Value, len(first)+len(second))
	for k, v := range first {
		out[k] = v
	}
	for k, v := range second {
		out[k] = v
	}
	return out
}

// --- JSON encoding of specs (tagged union) ---

type specJSON struct {
	Type     string            `json:"type"`
	Op       string            `json:"op,omitempty"`
	Class    string            `json:"class,omitempty"`
	Kind     string            `json:"kind,omitempty"`
	At       int64             `json:"at,omitempty"` // UnixNano
	HasAt    bool              `json:"hasAt,omitempty"`
	Offset   int64             `json:"offset,omitempty"`
	Period   int64             `json:"period,omitempty"`
	Baseline json.RawMessage   `json:"baseline,omitempty"`
	Name     string            `json:"name,omitempty"`
	CompOp   string            `json:"compOp,omitempty"`
	Parts    []json.RawMessage `json:"parts,omitempty"`

	// CEP operator fields.
	Window int64  `json:"window,omitempty"` // duration in ns
	Count  int    `json:"count,omitempty"`
	Mode   string `json:"mode,omitempty"`
	Attr   string `json:"attr,omitempty"` // correlation attribute
	Var    string `json:"var,omitempty"`  // correlation variable
}

// marshalParts encodes a list of sub-specs.
func marshalParts(parts ...Spec) ([]json.RawMessage, error) {
	out := make([]json.RawMessage, 0, len(parts))
	for _, p := range parts {
		raw, err := MarshalSpec(p)
		if err != nil {
			return nil, err
		}
		out = append(out, raw)
	}
	return out, nil
}

// MarshalSpec encodes a spec to JSON.
func MarshalSpec(s Spec) ([]byte, error) {
	switch v := s.(type) {
	case Database:
		return json.Marshal(specJSON{Type: "db", Op: string(v.Op), Class: v.Class})
	case Temporal:
		sj := specJSON{Type: "temporal", Kind: string(v.Kind),
			Offset: int64(v.Offset), Period: int64(v.Period)}
		if v.Kind == Absolute {
			// Absolute instants round-trip as UnixNano; the zero At is
			// not meaningful for the other kinds.
			sj.At = v.At.UnixNano()
			sj.HasAt = true
		}
		if v.Baseline != nil {
			raw, err := MarshalSpec(v.Baseline)
			if err != nil {
				return nil, err
			}
			sj.Baseline = raw
		}
		return json.Marshal(sj)
	case External:
		return json.Marshal(specJSON{Type: "external", Name: v.Name})
	case Composite:
		sj := specJSON{Type: "composite", CompOp: string(v.Op)}
		for _, p := range v.Parts {
			raw, err := MarshalSpec(p)
			if err != nil {
				return nil, err
			}
			sj.Parts = append(sj.Parts, raw)
		}
		return json.Marshal(sj)
	case Within:
		parts, err := marshalParts(v.Parts...)
		if err != nil {
			return nil, err
		}
		return json.Marshal(specJSON{Type: "within", Parts: parts,
			Window: int64(v.Window), Attr: v.Correl.Attr, Var: v.Correl.Var})
	case During:
		parts, err := marshalParts(v.Event, v.Start, v.End)
		if err != nil {
			return nil, err
		}
		return json.Marshal(specJSON{Type: "during", Parts: parts,
			Attr: v.Correl.Attr, Var: v.Correl.Var})
	case Window:
		parts, err := marshalParts(v.Part)
		if err != nil {
			return nil, err
		}
		return json.Marshal(specJSON{Type: "window", Parts: parts,
			Mode: string(v.Mode), Count: v.Count, Attr: v.Correl.Attr, Var: v.Correl.Var})
	case Aggregate:
		parts, err := marshalParts(v.Part)
		if err != nil {
			return nil, err
		}
		return json.Marshal(specJSON{Type: "aggregate", Parts: parts,
			Count: v.Min, Window: int64(v.Window), Attr: v.Correl.Attr, Var: v.Correl.Var})
	case nil:
		return []byte("null"), nil
	default:
		return nil, fmt.Errorf("event: cannot marshal spec of type %T", s)
	}
}

// unmarshalParts decodes a tagged union's part list, requiring
// exactly want parts when want >= 0.
func unmarshalParts(sj specJSON, want int) ([]Spec, error) {
	if want >= 0 && len(sj.Parts) != want {
		return nil, fmt.Errorf("event: spec type %q wants %d parts, got %d", sj.Type, want, len(sj.Parts))
	}
	out := make([]Spec, 0, len(sj.Parts))
	for _, raw := range sj.Parts {
		p, err := UnmarshalSpec(raw)
		if err != nil {
			return nil, err
		}
		if p == nil {
			return nil, fmt.Errorf("event: spec type %q has a null part", sj.Type)
		}
		out = append(out, p)
	}
	return out, nil
}

// UnmarshalSpec decodes a spec written by MarshalSpec.
func UnmarshalSpec(b []byte) (Spec, error) {
	if string(b) == "null" || len(b) == 0 {
		return nil, nil
	}
	var sj specJSON
	if err := json.Unmarshal(b, &sj); err != nil {
		return nil, fmt.Errorf("event: bad spec json: %w", err)
	}
	switch sj.Type {
	case "db":
		return Database{Op: Op(sj.Op), Class: sj.Class}, nil
	case "temporal":
		t := Temporal{Kind: TemporalKind(sj.Kind), Offset: time.Duration(sj.Offset),
			Period: time.Duration(sj.Period)}
		if sj.HasAt {
			t.At = time.Unix(0, sj.At)
		}
		if len(sj.Baseline) > 0 {
			base, err := UnmarshalSpec(sj.Baseline)
			if err != nil {
				return nil, err
			}
			t.Baseline = base
		}
		return t, nil
	case "external":
		return External{Name: sj.Name}, nil
	case "composite":
		c := Composite{Op: CompOp(sj.CompOp)}
		for _, raw := range sj.Parts {
			p, err := UnmarshalSpec(raw)
			if err != nil {
				return nil, err
			}
			c.Parts = append(c.Parts, p)
		}
		return c, nil
	case "within":
		parts, err := unmarshalParts(sj, -1)
		if err != nil {
			return nil, err
		}
		return Within{Parts: parts, Window: time.Duration(sj.Window),
			Correl: Correl{Attr: sj.Attr, Var: sj.Var}}, nil
	case "during":
		parts, err := unmarshalParts(sj, 3)
		if err != nil {
			return nil, err
		}
		return During{Event: parts[0], Start: parts[1], End: parts[2],
			Correl: Correl{Attr: sj.Attr, Var: sj.Var}}, nil
	case "window":
		parts, err := unmarshalParts(sj, 1)
		if err != nil {
			return nil, err
		}
		return Window{Mode: WindowMode(sj.Mode), Part: parts[0], Count: sj.Count,
			Correl: Correl{Attr: sj.Attr, Var: sj.Var}}, nil
	case "aggregate":
		parts, err := unmarshalParts(sj, 1)
		if err != nil {
			return nil, err
		}
		return Aggregate{Part: parts[0], Min: sj.Count, Window: time.Duration(sj.Window),
			Correl: Correl{Attr: sj.Attr, Var: sj.Var}}, nil
	default:
		return nil, fmt.Errorf("event: unknown spec type %q", sj.Type)
	}
}
