package event

import (
	"fmt"
	"strconv"
	"strings"
	"time"
	"unicode"
)

// Parse reads an event specification in the canonical text syntax:
//
//	create(Stock)           database create on class Stock
//	modify(Stock)           database modify
//	delete(*)               database delete on any class
//	anyop(Stock)            any operation on Stock
//	defineClass(*)          DDL
//	commit()  abort()       transaction control
//	external(TradeDone)     application-defined event
//	at(2026-07-06T09:30:00Z)           absolute temporal
//	after(5s)  after(commit(), 5s)     relative temporal
//	every(1m)  every(external(X), 1m)  periodic temporal
//	or(e1, e2, ...)         disjunction
//	seq(e1, e2, ...)        sequence
//	and(e1, e2, ...)        conjunction (extension)
//
// CEP operators (composite-event runtime extensions; each form takes
// an optional trailing `where attr=$var` correlation clause that
// partitions detection by the named binding and exposes its value to
// conditions/actions as $var):
//
//	within(e1, e2, ..., 5s)              sequence within a duration
//	during(ev, start, end)               interval relation
//	sliding(e, 5)                        sliding count window
//	tumbling(e, 5)                       tumbling count window
//	count(e where a=$v) >= 10 within 1m  windowed count aggregate
//
// Inside the CEP forms a bare identifier is shorthand for an external
// event: count(PriceDrop ...) means count(external(PriceDrop) ...),
// and likewise within(PriceDrop, Confirm, 30s) etc.
func Parse(input string) (Spec, error) {
	p := &specParser{src: input}
	spec, err := p.parseSpec()
	if err != nil {
		return nil, err
	}
	p.skipSpace()
	if p.pos != len(p.src) {
		return nil, fmt.Errorf("event: trailing input at %d: %q", p.pos, p.src[p.pos:])
	}
	return spec, nil
}

// MustParse is Parse that panics on error; for tests and constants.
func MustParse(input string) Spec {
	s, err := Parse(input)
	if err != nil {
		panic(err)
	}
	return s
}

type specParser struct {
	src string
	pos int
}

func (p *specParser) skipSpace() {
	for p.pos < len(p.src) && unicode.IsSpace(rune(p.src[p.pos])) {
		p.pos++
	}
}

func (p *specParser) ident() string {
	start := p.pos
	for p.pos < len(p.src) {
		c := p.src[p.pos]
		if c == '_' || unicode.IsLetter(rune(c)) || (p.pos > start && unicode.IsDigit(rune(c))) {
			p.pos++
			continue
		}
		break
	}
	return p.src[start:p.pos]
}

func (p *specParser) expect(c byte) error {
	p.skipSpace()
	if p.pos >= len(p.src) || p.src[p.pos] != c {
		return fmt.Errorf("event: expected %q at %d in %q", string(c), p.pos, p.src)
	}
	p.pos++
	return nil
}

// argText reads raw text up to the next top-level ',' or ')'.
func (p *specParser) argText() string {
	p.skipSpace()
	depth := 0
	start := p.pos
	for p.pos < len(p.src) {
		switch p.src[p.pos] {
		case '(':
			depth++
		case ')':
			if depth == 0 {
				return strings.TrimSpace(p.src[start:p.pos])
			}
			depth--
		case ',':
			if depth == 0 {
				return strings.TrimSpace(p.src[start:p.pos])
			}
		}
		p.pos++
	}
	return strings.TrimSpace(p.src[start:p.pos])
}

func (p *specParser) parseSpec() (Spec, error) {
	p.skipSpace()
	name := p.ident()
	if name == "" {
		return nil, fmt.Errorf("event: expected event name at %d in %q", p.pos, p.src)
	}
	if err := p.expect('('); err != nil {
		return nil, err
	}
	switch name {
	case "create", "modify", "delete", "defineClass", "dropClass", "anyop":
		cls := p.argText()
		if err := p.expect(')'); err != nil {
			return nil, err
		}
		if cls == "*" {
			cls = ""
		}
		op := Op(name)
		if name == "anyop" {
			op = OpAny
		}
		return Database{Op: op, Class: cls}, nil

	case "commit", "abort":
		if err := p.expect(')'); err != nil {
			return nil, err
		}
		return Database{Op: Op(name)}, nil

	case "external":
		n := p.argText()
		if err := p.expect(')'); err != nil {
			return nil, err
		}
		if n == "" {
			return nil, fmt.Errorf("event: external() needs a name")
		}
		return External{Name: n}, nil

	case "at":
		txt := p.argText()
		if err := p.expect(')'); err != nil {
			return nil, err
		}
		at, err := time.Parse(time.RFC3339Nano, txt)
		if err != nil {
			at, err = time.Parse(time.RFC3339, txt)
		}
		if err != nil {
			return nil, fmt.Errorf("event: at(): bad time %q: %w", txt, err)
		}
		return Temporal{Kind: Absolute, At: at}, nil

	case "after", "every":
		// One arg: duration. Two args: baseline spec, duration.
		save := p.pos
		var baseline Spec
		txt := p.argText()
		p.skipSpace()
		if p.pos < len(p.src) && p.src[p.pos] == ',' {
			// Two-arg form: re-parse the first arg as a spec.
			p.pos = save
			base, err := p.parseSpec()
			if err != nil {
				return nil, fmt.Errorf("event: %s(): baseline: %w", name, err)
			}
			baseline = base
			if err := p.expect(','); err != nil {
				return nil, err
			}
			txt = p.argText()
		}
		if err := p.expect(')'); err != nil {
			return nil, err
		}
		d, err := time.ParseDuration(txt)
		if err != nil {
			return nil, fmt.Errorf("event: %s(): bad duration %q: %w", name, txt, err)
		}
		if name == "after" {
			return Temporal{Kind: Relative, Offset: d, Baseline: baseline}, nil
		}
		return Temporal{Kind: Periodic, Period: d, Baseline: baseline}, nil

	case "or", "seq", "and":
		var parts []Spec
		for {
			part, err := p.parseSpec()
			if err != nil {
				return nil, err
			}
			parts = append(parts, part)
			p.skipSpace()
			if p.pos < len(p.src) && p.src[p.pos] == ',' {
				p.pos++
				continue
			}
			break
		}
		if err := p.expect(')'); err != nil {
			return nil, err
		}
		if len(parts) < 2 {
			return nil, fmt.Errorf("event: %s() needs at least two parts", name)
		}
		return Composite{Op: CompOp(name), Parts: parts}, nil

	case "within":
		// within(e1, ..., en, d [where attr=$var])
		var parts []Spec
		for {
			save := p.pos
			part, err := p.parsePart()
			if err != nil {
				// Not a spec: the duration argument starts here.
				p.pos = save
				break
			}
			parts = append(parts, part)
			p.skipSpace()
			if p.pos < len(p.src) && p.src[p.pos] == ',' {
				p.pos++
				continue
			}
			break
		}
		if len(parts) < 2 {
			return nil, fmt.Errorf("event: within() needs at least two event parts")
		}
		d, err := p.duration("within()")
		if err != nil {
			return nil, err
		}
		c, err := p.parseOptWhere()
		if err != nil {
			return nil, err
		}
		if err := p.expect(')'); err != nil {
			return nil, err
		}
		return Within{Parts: parts, Window: d, Correl: c}, nil

	case "during":
		// during(event, start, end [where attr=$var])
		ev, err := p.parsePart()
		if err != nil {
			return nil, fmt.Errorf("event: during(): %w", err)
		}
		if err := p.expect(','); err != nil {
			return nil, err
		}
		st, err := p.parsePart()
		if err != nil {
			return nil, fmt.Errorf("event: during(): %w", err)
		}
		if err := p.expect(','); err != nil {
			return nil, err
		}
		en, err := p.parsePart()
		if err != nil {
			return nil, fmt.Errorf("event: during(): %w", err)
		}
		c, err := p.parseOptWhere()
		if err != nil {
			return nil, err
		}
		if err := p.expect(')'); err != nil {
			return nil, err
		}
		return During{Event: ev, Start: st, End: en, Correl: c}, nil

	case "sliding", "tumbling":
		// sliding(e, N [where attr=$var])
		part, err := p.parsePart()
		if err != nil {
			return nil, fmt.Errorf("event: %s(): %w", name, err)
		}
		if err := p.expect(','); err != nil {
			return nil, err
		}
		n, err := p.integer(name + "()")
		if err != nil {
			return nil, err
		}
		c, err := p.parseOptWhere()
		if err != nil {
			return nil, err
		}
		if err := p.expect(')'); err != nil {
			return nil, err
		}
		return Window{Mode: WindowMode(name), Part: part, Count: n, Correl: c}, nil

	case "count":
		// count(e [where attr=$var]) >= N within D
		part, err := p.parsePart()
		if err != nil {
			return nil, err
		}
		c, err := p.parseOptWhere()
		if err != nil {
			return nil, err
		}
		if err := p.expect(')'); err != nil {
			return nil, err
		}
		if err := p.expect('>'); err != nil {
			return nil, err
		}
		if err := p.expect('='); err != nil {
			return nil, err
		}
		n, err := p.integer("count")
		if err != nil {
			return nil, err
		}
		p.skipSpace()
		if kw := p.ident(); kw != "within" {
			return nil, fmt.Errorf("event: count: expected 'within' at %d in %q", p.pos, p.src)
		}
		d, err := p.duration("count")
		if err != nil {
			return nil, err
		}
		return Aggregate{Part: part, Correl: c, Min: n, Window: d}, nil

	default:
		return nil, fmt.Errorf("event: unknown event form %q", name)
	}
}

// token reads a bare argument token (duration or integer): raw text
// up to the next delimiter or space.
func (p *specParser) token() string {
	p.skipSpace()
	start := p.pos
	for p.pos < len(p.src) {
		c := p.src[p.pos]
		if c == ',' || c == '(' || c == ')' || c == '=' || c == '$' || unicode.IsSpace(rune(c)) {
			break
		}
		p.pos++
	}
	return p.src[start:p.pos]
}

// duration parses a positive Go duration token.
func (p *specParser) duration(form string) (time.Duration, error) {
	tok := p.token()
	d, err := time.ParseDuration(tok)
	if err != nil {
		return 0, fmt.Errorf("event: %s: bad duration %q: %w", form, tok, err)
	}
	if d <= 0 {
		return 0, fmt.Errorf("event: %s: duration must be positive, got %q", form, tok)
	}
	return d, nil
}

// maxWindowCount bounds count-window and aggregate thresholds so a
// malformed or hostile spec cannot demand unbounded per-instance
// state.
const maxWindowCount = 1 << 20

// integer parses a positive integer token.
func (p *specParser) integer(form string) (int, error) {
	tok := p.token()
	n, err := strconv.Atoi(tok)
	if err != nil {
		return 0, fmt.Errorf("event: %s: bad count %q: %w", form, tok, err)
	}
	if n < 1 || n > maxWindowCount {
		return 0, fmt.Errorf("event: %s: count must be in [1, %d], got %d", form, maxWindowCount, n)
	}
	return n, nil
}

// parseOptWhere parses an optional `where attr=$var` correlation
// clause.
func (p *specParser) parseOptWhere() (Correl, error) {
	save := p.pos
	p.skipSpace()
	if p.ident() != "where" {
		p.pos = save
		return Correl{}, nil
	}
	p.skipSpace()
	attr := p.ident()
	if attr == "" {
		return Correl{}, fmt.Errorf("event: where: expected attribute name at %d in %q", p.pos, p.src)
	}
	if err := p.expect('='); err != nil {
		return Correl{}, err
	}
	if err := p.expect('$'); err != nil {
		return Correl{}, err
	}
	v := p.ident()
	if v == "" {
		return Correl{}, fmt.Errorf("event: where: expected variable name after $ at %d in %q", p.pos, p.src)
	}
	return Correl{Attr: attr, Var: v}, nil
}

// parsePart parses a CEP form's constituent event, accepting a bare
// identifier as external-event shorthand (`PriceDrop` for
// `external(PriceDrop)`). A bare `where` is never a part: it starts
// the correlation clause.
func (p *specParser) parsePart() (Spec, error) {
	save := p.pos
	p.skipSpace()
	name := p.ident()
	p.skipSpace()
	if name != "" && name != "where" && (p.pos >= len(p.src) || p.src[p.pos] != '(') {
		return External{Name: name}, nil
	}
	p.pos = save
	return p.parseSpec()
}
