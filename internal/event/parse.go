package event

import (
	"fmt"
	"strings"
	"time"
	"unicode"
)

// Parse reads an event specification in the canonical text syntax:
//
//	create(Stock)           database create on class Stock
//	modify(Stock)           database modify
//	delete(*)               database delete on any class
//	anyop(Stock)            any operation on Stock
//	defineClass(*)          DDL
//	commit()  abort()       transaction control
//	external(TradeDone)     application-defined event
//	at(2026-07-06T09:30:00Z)           absolute temporal
//	after(5s)  after(commit(), 5s)     relative temporal
//	every(1m)  every(external(X), 1m)  periodic temporal
//	or(e1, e2, ...)         disjunction
//	seq(e1, e2, ...)        sequence
//	and(e1, e2, ...)        conjunction (extension)
func Parse(input string) (Spec, error) {
	p := &specParser{src: input}
	spec, err := p.parseSpec()
	if err != nil {
		return nil, err
	}
	p.skipSpace()
	if p.pos != len(p.src) {
		return nil, fmt.Errorf("event: trailing input at %d: %q", p.pos, p.src[p.pos:])
	}
	return spec, nil
}

// MustParse is Parse that panics on error; for tests and constants.
func MustParse(input string) Spec {
	s, err := Parse(input)
	if err != nil {
		panic(err)
	}
	return s
}

type specParser struct {
	src string
	pos int
}

func (p *specParser) skipSpace() {
	for p.pos < len(p.src) && unicode.IsSpace(rune(p.src[p.pos])) {
		p.pos++
	}
}

func (p *specParser) ident() string {
	start := p.pos
	for p.pos < len(p.src) {
		c := p.src[p.pos]
		if c == '_' || unicode.IsLetter(rune(c)) || (p.pos > start && unicode.IsDigit(rune(c))) {
			p.pos++
			continue
		}
		break
	}
	return p.src[start:p.pos]
}

func (p *specParser) expect(c byte) error {
	p.skipSpace()
	if p.pos >= len(p.src) || p.src[p.pos] != c {
		return fmt.Errorf("event: expected %q at %d in %q", string(c), p.pos, p.src)
	}
	p.pos++
	return nil
}

// argText reads raw text up to the next top-level ',' or ')'.
func (p *specParser) argText() string {
	p.skipSpace()
	depth := 0
	start := p.pos
	for p.pos < len(p.src) {
		switch p.src[p.pos] {
		case '(':
			depth++
		case ')':
			if depth == 0 {
				return strings.TrimSpace(p.src[start:p.pos])
			}
			depth--
		case ',':
			if depth == 0 {
				return strings.TrimSpace(p.src[start:p.pos])
			}
		}
		p.pos++
	}
	return strings.TrimSpace(p.src[start:p.pos])
}

func (p *specParser) parseSpec() (Spec, error) {
	p.skipSpace()
	name := p.ident()
	if name == "" {
		return nil, fmt.Errorf("event: expected event name at %d in %q", p.pos, p.src)
	}
	if err := p.expect('('); err != nil {
		return nil, err
	}
	switch name {
	case "create", "modify", "delete", "defineClass", "dropClass", "anyop":
		cls := p.argText()
		if err := p.expect(')'); err != nil {
			return nil, err
		}
		if cls == "*" {
			cls = ""
		}
		op := Op(name)
		if name == "anyop" {
			op = OpAny
		}
		return Database{Op: op, Class: cls}, nil

	case "commit", "abort":
		if err := p.expect(')'); err != nil {
			return nil, err
		}
		return Database{Op: Op(name)}, nil

	case "external":
		n := p.argText()
		if err := p.expect(')'); err != nil {
			return nil, err
		}
		if n == "" {
			return nil, fmt.Errorf("event: external() needs a name")
		}
		return External{Name: n}, nil

	case "at":
		txt := p.argText()
		if err := p.expect(')'); err != nil {
			return nil, err
		}
		at, err := time.Parse(time.RFC3339Nano, txt)
		if err != nil {
			at, err = time.Parse(time.RFC3339, txt)
		}
		if err != nil {
			return nil, fmt.Errorf("event: at(): bad time %q: %w", txt, err)
		}
		return Temporal{Kind: Absolute, At: at}, nil

	case "after", "every":
		// One arg: duration. Two args: baseline spec, duration.
		save := p.pos
		var baseline Spec
		txt := p.argText()
		p.skipSpace()
		if p.pos < len(p.src) && p.src[p.pos] == ',' {
			// Two-arg form: re-parse the first arg as a spec.
			p.pos = save
			base, err := p.parseSpec()
			if err != nil {
				return nil, fmt.Errorf("event: %s(): baseline: %w", name, err)
			}
			baseline = base
			if err := p.expect(','); err != nil {
				return nil, err
			}
			txt = p.argText()
		}
		if err := p.expect(')'); err != nil {
			return nil, err
		}
		d, err := time.ParseDuration(txt)
		if err != nil {
			return nil, fmt.Errorf("event: %s(): bad duration %q: %w", name, txt, err)
		}
		if name == "after" {
			return Temporal{Kind: Relative, Offset: d, Baseline: baseline}, nil
		}
		return Temporal{Kind: Periodic, Period: d, Baseline: baseline}, nil

	case "or", "seq", "and":
		var parts []Spec
		for {
			part, err := p.parseSpec()
			if err != nil {
				return nil, err
			}
			parts = append(parts, part)
			p.skipSpace()
			if p.pos < len(p.src) && p.src[p.pos] == ',' {
				p.pos++
				continue
			}
			break
		}
		if err := p.expect(')'); err != nil {
			return nil, err
		}
		if len(parts) < 2 {
			return nil, fmt.Errorf("event: %s() needs at least two parts", name)
		}
		return Composite{Op: CompOp(name), Parts: parts}, nil

	default:
		return nil, fmt.Errorf("event: unknown event form %q", name)
	}
}
