package event

import (
	"fmt"
	"reflect"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/clock"
	"repro/internal/datum"
	"repro/internal/lock"
)

var epoch = time.Date(2026, 7, 6, 9, 0, 0, 0, time.UTC)

// collector gathers emissions for assertions.
type collector struct {
	mu   sync.Mutex
	sigs []Signal
	ids  []SubID
}

func (c *collector) emit(id SubID, sig Signal) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.ids = append(c.ids, id)
	c.sigs = append(c.sigs, sig)
	return nil
}

func (c *collector) count() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.sigs)
}

func (c *collector) last() Signal {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.sigs[len(c.sigs)-1]
}

func setup() (*Detectors, *collector, *clock.Virtual) {
	col := &collector{}
	clk := clock.NewVirtual(epoch)
	d := New(clk, col.emit)
	return d, col, clk
}

func TestSpecStringRoundTrip(t *testing.T) {
	cases := []string{
		"modify(Stock)",
		"create(*)",
		"commit()",
		"abort()",
		"external(TradeExecuted)",
		"after(5s)",
		"every(1m0s)",
		"or(modify(Stock), delete(Stock))",
		"seq(modify(Stock), external(Trade))",
		"and(commit(), external(X))",
		"every(commit(), 10s)",
		"after(external(Open), 1h0m0s)",
		"within(external(A), external(B), 30s)",
		"within(modify(Stock), external(Confirm), external(Settle), 5m0s where ticker=$t)",
		"during(external(Trade), external(Open), external(Close))",
		"during(modify(Stock), external(Open), external(Close) where acct=$a)",
		"sliding(external(Tick), 5)",
		"tumbling(external(Tick), 100 where ticker=$t)",
		"count(external(PriceDrop)) >= 3 within 1m0s",
		"count(external(PriceDrop) where ticker=$t) >= 10 within 1m0s",
	}
	for _, src := range cases {
		spec, err := Parse(src)
		if err != nil {
			t.Fatalf("Parse(%q): %v", src, err)
		}
		back, err := Parse(spec.String())
		if err != nil {
			t.Fatalf("reparse of %q -> %q: %v", src, spec.String(), err)
		}
		if !reflect.DeepEqual(spec, back) {
			t.Errorf("round trip %q -> %q changed spec", src, spec.String())
		}
	}
}

func TestParseAbsolute(t *testing.T) {
	spec, err := Parse("at(2026-07-06T09:30:00Z)")
	if err != nil {
		t.Fatal(err)
	}
	tmp := spec.(Temporal)
	if tmp.Kind != Absolute || !tmp.At.Equal(epoch.Add(30*time.Minute)) {
		t.Fatalf("parsed %+v", tmp)
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		"", "bogus(X)", "modify(", "or(modify(X))", "external()",
		"at(notatime)", "after(xyz)", "modify(Stock) trailing",
		"seq(modify(X), )",
		"within(external(A), 30s)",                    // needs >= 2 parts
		"within(external(A), external(B))",            // missing duration
		"during(external(A), external(B))",            // needs 3 parts
		"sliding(external(A), 0)",                     // count must be >= 1
		"tumbling(external(A), 9999999999)",           // count over the cap
		"count(external(A)) >= 3",                     // missing within
		"count(external(A)) > 3 within 1m",            // only >= supported
		"count(external(A)) >= 0 within 1m",           // min must be >= 1
		"count(external(A)) >= 3 within -1s",          // window must be positive
		"count(external(A) where x=y) >= 3 within 1m", // var needs $
	}
	for _, src := range bad {
		if _, err := Parse(src); err == nil {
			t.Errorf("Parse(%q) should fail", src)
		}
	}
}

func TestSpecJSONRoundTrip(t *testing.T) {
	specs := []Spec{
		Database{Op: OpModify, Class: "Stock"},
		Database{Op: OpCommit},
		External{Name: "Trade"},
		Temporal{Kind: Absolute, At: epoch},
		Temporal{Kind: Relative, Offset: 5 * time.Second},
		Temporal{Kind: Periodic, Period: time.Minute, Baseline: External{Name: "Open"}},
		Composite{Op: Sequence, Parts: []Spec{
			Database{Op: OpModify, Class: "Stock"},
			Composite{Op: Disjunction, Parts: []Spec{External{Name: "A"}, External{Name: "B"}}},
		}},
	}
	for _, s := range specs {
		raw, err := MarshalSpec(s)
		if err != nil {
			t.Fatalf("marshal %v: %v", s, err)
		}
		got, err := UnmarshalSpec(raw)
		if err != nil {
			t.Fatalf("unmarshal %s: %v", raw, err)
		}
		if got.String() != s.String() {
			t.Errorf("json round trip %v -> %v", s, got)
		}
	}
	// nil round-trips to nil.
	raw, _ := MarshalSpec(nil)
	if got, err := UnmarshalSpec(raw); err != nil || got != nil {
		t.Errorf("nil spec round trip: %v %v", got, err)
	}
}

func TestDatabaseEventMatching(t *testing.T) {
	d, col, _ := setup()
	idExact, _ := d.Define(Database{Op: OpModify, Class: "Stock"})
	idAnyClass, _ := d.Define(Database{Op: OpModify})
	idAnyOp, _ := d.Define(Database{Op: OpAny, Class: "Stock"})
	d.Define(Database{Op: OpDelete, Class: "Stock"}) // must not match

	d.SignalDatabase(OpModify, "Stock", 7, map[string]datum.Value{"oid": datum.ID(3)})
	if col.count() != 3 {
		t.Fatalf("emitted %d signals, want 3 (exact, any-class, any-op)", col.count())
	}
	got := map[SubID]bool{}
	for _, id := range col.ids {
		got[id] = true
	}
	for _, id := range []SubID{idExact, idAnyClass, idAnyOp} {
		if !got[id] {
			t.Errorf("subscription %d did not fire", id)
		}
	}
	if sig := col.last(); sig.Txn != 7 || sig.Bindings["oid"].AsOID() != 3 {
		t.Errorf("signal = %+v", sig)
	}
}

func TestDatabaseNonMatching(t *testing.T) {
	d, col, _ := setup()
	d.Define(Database{Op: OpModify, Class: "Stock"})
	d.SignalDatabase(OpModify, "Bond", 1, nil)
	d.SignalDatabase(OpCreate, "Stock", 1, nil)
	if col.count() != 0 {
		t.Fatalf("non-matching signals fired %d emissions", col.count())
	}
}

func TestExternalEvents(t *testing.T) {
	d, col, _ := setup()
	id, _ := d.Define(External{Name: "TradeExecuted"})
	n, err := d.SignalExternal("TradeExecuted", 9, map[string]datum.Value{"qty": datum.Int(500)})
	if err != nil {
		t.Fatal(err)
	}
	if n != 1 || col.count() != 1 {
		t.Fatalf("n=%d count=%d", n, col.count())
	}
	if col.ids[0] != id || col.last().Bindings["qty"].AsInt() != 500 {
		t.Fatalf("signal = %+v", col.last())
	}
	if n, _ := d.SignalExternal("Unknown", 0, nil); n != 0 {
		t.Fatalf("unknown external fired %d", n)
	}
}

func TestAbsoluteTemporal(t *testing.T) {
	d, col, clk := setup()
	d.Define(Temporal{Kind: Absolute, At: epoch.Add(time.Minute)})
	clk.Advance(59 * time.Second)
	if col.count() != 0 {
		t.Fatal("fired early")
	}
	clk.Advance(2 * time.Second)
	if col.count() != 1 {
		t.Fatalf("count = %d", col.count())
	}
	sig := col.last()
	if !sig.Bindings["time"].AsTime().Equal(epoch.Add(time.Minute)) {
		t.Fatalf("time binding = %v", sig.Bindings["time"])
	}
	clk.Advance(time.Hour)
	if col.count() != 1 {
		t.Fatal("absolute event fired more than once")
	}
}

func TestPastAbsoluteNeverFires(t *testing.T) {
	d, col, clk := setup()
	d.Define(Temporal{Kind: Absolute, At: epoch.Add(-time.Hour)})
	clk.Advance(time.Hour)
	if col.count() != 0 {
		t.Fatal("past absolute event fired")
	}
}

func TestRelativeTemporal(t *testing.T) {
	d, col, clk := setup()
	d.Define(Temporal{Kind: Relative, Offset: 10 * time.Second})
	clk.Advance(10 * time.Second)
	if col.count() != 1 {
		t.Fatalf("count = %d", col.count())
	}
}

func TestPeriodicTemporal(t *testing.T) {
	d, col, clk := setup()
	d.Define(Temporal{Kind: Periodic, Period: time.Second})
	clk.Advance(5 * time.Second)
	if col.count() != 5 {
		t.Fatalf("count = %d, want 5", col.count())
	}
	if col.last().Bindings["count"].AsInt() != 5 {
		t.Fatalf("count binding = %v", col.last().Bindings["count"])
	}
}

func TestRelativeWithBaseline(t *testing.T) {
	d, col, clk := setup()
	d.Define(Temporal{Kind: Relative, Offset: 30 * time.Second, Baseline: External{Name: "Open"}})
	clk.Advance(time.Minute)
	if col.count() != 0 {
		t.Fatal("fired before baseline")
	}
	d.SignalExternal("Open", 0, nil)
	clk.Advance(29 * time.Second)
	if col.count() != 0 {
		t.Fatal("fired before offset elapsed")
	}
	clk.Advance(2 * time.Second)
	if col.count() != 1 {
		t.Fatalf("count = %d", col.count())
	}
}

func TestPeriodicWithBaselineRearms(t *testing.T) {
	d, col, clk := setup()
	d.Define(Temporal{Kind: Periodic, Period: 10 * time.Second, Baseline: External{Name: "Open"}})
	d.SignalExternal("Open", 0, nil)
	clk.Advance(25 * time.Second)
	if col.count() != 2 {
		t.Fatalf("count = %d, want 2", col.count())
	}
	// A new baseline occurrence re-anchors the period.
	d.SignalExternal("Open", 0, nil)
	clk.Advance(10 * time.Second)
	if col.count() != 3 {
		t.Fatalf("count = %d, want 3", col.count())
	}
}

func TestDisjunction(t *testing.T) {
	d, col, _ := setup()
	id, err := d.Define(Composite{Op: Disjunction, Parts: []Spec{
		Database{Op: OpModify, Class: "Stock"},
		External{Name: "Alert"},
	}})
	if err != nil {
		t.Fatal(err)
	}
	d.SignalDatabase(OpModify, "Stock", 1, map[string]datum.Value{"k": datum.Int(1)})
	d.SignalExternal("Alert", 2, map[string]datum.Value{"k": datum.Int(2)})
	if col.count() != 2 {
		t.Fatalf("count = %d", col.count())
	}
	for _, gotID := range col.ids {
		if gotID != id {
			t.Fatal("emission under wrong subscription")
		}
	}
	if col.sigs[0].Bindings["k"].AsInt() != 1 || col.sigs[1].Bindings["k"].AsInt() != 2 {
		t.Fatal("disjunction bindings not passed through")
	}
}

func TestSequence(t *testing.T) {
	d, col, _ := setup()
	d.Define(Composite{Op: Sequence, Parts: []Spec{
		External{Name: "A"},
		External{Name: "B"},
	}})
	d.SignalExternal("B", 0, nil) // out of order: ignored
	if col.count() != 0 {
		t.Fatal("sequence fired on out-of-order part")
	}
	d.SignalExternal("A", 0, map[string]datum.Value{"a": datum.Int(1), "shared": datum.Int(10)})
	if col.count() != 0 {
		t.Fatal("sequence fired after first part only")
	}
	d.SignalExternal("B", 5, map[string]datum.Value{"b": datum.Int(2), "shared": datum.Int(20)})
	if col.count() != 1 {
		t.Fatalf("count = %d", col.count())
	}
	sig := col.last()
	if sig.Txn != 5 {
		t.Fatalf("composite txn = %d, want the completing signal's txn", sig.Txn)
	}
	if sig.Bindings["a"].AsInt() != 1 || sig.Bindings["b"].AsInt() != 2 {
		t.Fatal("merged bindings missing parts")
	}
	if sig.Bindings["shared"].AsInt() != 20 {
		t.Fatal("later part must win binding collisions")
	}
	// Automaton reset: a lone B again does nothing.
	d.SignalExternal("B", 0, nil)
	if col.count() != 1 {
		t.Fatal("sequence did not reset after firing")
	}
}

func TestSequenceRestartOnFreshFirst(t *testing.T) {
	d, col, _ := setup()
	d.Define(Composite{Op: Sequence, Parts: []Spec{
		External{Name: "A"},
		External{Name: "B"},
	}})
	d.SignalExternal("A", 0, map[string]datum.Value{"v": datum.Int(1)})
	d.SignalExternal("A", 0, map[string]datum.Value{"v": datum.Int(2)})
	d.SignalExternal("B", 0, nil)
	if col.count() != 1 {
		t.Fatalf("count = %d", col.count())
	}
	if col.last().Bindings["v"].AsInt() != 2 {
		t.Fatal("restart must keep the freshest first-part bindings")
	}
}

func TestThreePartSequence(t *testing.T) {
	d, col, _ := setup()
	d.Define(MustParse("seq(external(A), external(B), external(C))"))
	d.SignalExternal("A", 0, nil)
	d.SignalExternal("C", 0, nil) // skip: ignored
	d.SignalExternal("B", 0, nil)
	d.SignalExternal("C", 0, nil)
	if col.count() != 1 {
		t.Fatalf("count = %d", col.count())
	}
}

func TestConjunction(t *testing.T) {
	d, col, _ := setup()
	d.Define(Composite{Op: Conjunction, Parts: []Spec{
		External{Name: "A"},
		External{Name: "B"},
	}})
	d.SignalExternal("B", 0, map[string]datum.Value{"b": datum.Int(2)}) // any order
	d.SignalExternal("A", 0, map[string]datum.Value{"a": datum.Int(1)})
	if col.count() != 1 {
		t.Fatalf("count = %d", col.count())
	}
	sig := col.last()
	if sig.Bindings["a"].AsInt() != 1 || sig.Bindings["b"].AsInt() != 2 {
		t.Fatal("conjunction bindings incomplete")
	}
	// Resets afterwards.
	d.SignalExternal("A", 0, nil)
	if col.count() != 1 {
		t.Fatal("conjunction did not reset")
	}
}

func TestConjunctionNilBindings(t *testing.T) {
	// Regression: parts signalled with nil bindings must still count
	// as seen (CloneMap(nil) is nil).
	d, col, _ := setup()
	d.Define(Composite{Op: Conjunction, Parts: []Spec{
		External{Name: "A"},
		External{Name: "B"},
	}})
	d.SignalExternal("A", 0, nil)
	d.SignalExternal("B", 0, nil)
	if col.count() != 1 {
		t.Fatalf("count = %d; nil-bindings conjunction must fire", col.count())
	}
}

func TestNestedComposite(t *testing.T) {
	// seq(or(A,B), C): either A or B, then C.
	d, col, _ := setup()
	d.Define(MustParse("seq(or(external(A), external(B)), external(C))"))
	d.SignalExternal("B", 0, nil)
	d.SignalExternal("C", 0, nil)
	if col.count() != 1 {
		t.Fatalf("count = %d", col.count())
	}
	d.SignalExternal("C", 0, nil)
	if col.count() != 1 {
		t.Fatal("fired without fresh or() part")
	}
}

func TestDisableEnable(t *testing.T) {
	d, col, _ := setup()
	id, _ := d.Define(External{Name: "E"})
	d.Disable(id)
	d.SignalExternal("E", 0, nil)
	if col.count() != 0 {
		t.Fatal("disabled subscription fired")
	}
	d.Enable(id)
	d.SignalExternal("E", 0, nil)
	if col.count() != 1 {
		t.Fatal("enabled subscription did not fire")
	}
}

func TestDisableStopsTemporalTimer(t *testing.T) {
	d, col, clk := setup()
	id, _ := d.Define(Temporal{Kind: Periodic, Period: time.Second})
	clk.Advance(2 * time.Second)
	if col.count() != 2 {
		t.Fatalf("count = %d", col.count())
	}
	d.Disable(id)
	clk.Advance(5 * time.Second)
	if col.count() != 2 {
		t.Fatal("disabled periodic kept firing")
	}
	d.Enable(id)
	clk.Advance(time.Second)
	if col.count() != 3 {
		t.Fatal("re-enabled periodic did not resume")
	}
}

func TestDeleteStopsEverything(t *testing.T) {
	d, col, clk := setup()
	id, _ := d.Define(MustParse("or(external(E), every(1s))"))
	before := d.Subscriptions()
	if before != 3 { // composite + 2 parts
		t.Fatalf("Subscriptions = %d", before)
	}
	d.Delete(id)
	if d.Subscriptions() != 0 {
		t.Fatalf("Subscriptions after delete = %d", d.Subscriptions())
	}
	d.SignalExternal("E", 0, nil)
	clk.Advance(5 * time.Second)
	if col.count() != 0 {
		t.Fatal("deleted subscription fired")
	}
}

func TestStats(t *testing.T) {
	d, _, clk := setup()
	d.Define(External{Name: "E"})
	d.Define(Temporal{Kind: Relative, Offset: time.Second})
	d.SignalExternal("E", 0, nil)
	d.SignalDatabase(OpModify, "X", 0, nil)
	clk.Advance(time.Second)
	s := d.Stats()
	if s.ExternalSignals != 1 || s.DatabaseSignals != 1 || s.TemporalFirings != 1 || s.Emissions != 2 {
		t.Fatalf("stats = %+v", s)
	}
}

func TestManySubscriptionsNonMatchingCheap(t *testing.T) {
	// C10's premise: non-matching subscriptions must not be touched.
	d, col, _ := setup()
	for i := 0; i < 1000; i++ {
		d.Define(Database{Op: OpModify, Class: fmt.Sprintf("Class%d", i)})
	}
	d.SignalDatabase(OpModify, "Class500", 0, nil)
	if col.count() != 1 {
		t.Fatalf("count = %d", col.count())
	}
}

func TestConcurrentSignals(t *testing.T) {
	d, col, _ := setup()
	d.Define(External{Name: "E"})
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				d.SignalExternal("E", lock.TxnID(w), nil)
			}
		}(w)
	}
	wg.Wait()
	if col.count() != 800 {
		t.Fatalf("count = %d", col.count())
	}
}

func TestMergeBindings(t *testing.T) {
	a := map[string]datum.Value{"x": datum.Int(1), "y": datum.Int(2)}
	b := map[string]datum.Value{"y": datum.Int(9), "z": datum.Int(3)}
	got := MergeBindings(a, b)
	if got["x"].AsInt() != 1 || got["y"].AsInt() != 9 || got["z"].AsInt() != 3 {
		t.Fatalf("merge = %v", got)
	}
	if a["y"].AsInt() != 2 {
		t.Fatal("merge mutated input")
	}
}

func TestSpecStrings(t *testing.T) {
	cases := map[string]Spec{
		"modify(Stock)": Database{Op: OpModify, Class: "Stock"},
		"anyop(*)":      Database{},
		"commit()":      Database{Op: OpCommit},
		"external(X)":   External{Name: "X"},
		"or(commit(), abort())": Composite{Op: Disjunction, Parts: []Spec{
			Database{Op: OpCommit}, Database{Op: OpAbort}}},
	}
	for want, spec := range cases {
		if got := spec.String(); got != want {
			t.Errorf("String = %q, want %q", got, want)
		}
	}
	if !strings.Contains((Temporal{Kind: Absolute, At: epoch}).String(), "2026") {
		t.Error("absolute String should include the time")
	}
}
