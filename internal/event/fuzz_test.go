package event

// Fuzz target for the event-spec parser, centered on the composite
// grammar (within/during/sliding/tumbling/count). The parser must
// reject arbitrary text with an error — never panic — and any text it
// accepts must be stable: String() re-parses to an identical spec
// (the canonical form is what rules persist and share subscriptions
// by, so instability would split or corrupt the subscription index).

import (
	"reflect"
	"testing"
)

func FuzzCompositeSpec(f *testing.F) {
	seeds := []string{
		"modify(Stock)",
		"or(modify(Stock), delete(Stock))",
		"seq(external(A), external(B))",
		"and(commit(), external(X))",
		"within(external(A), external(B), 30s)",
		"within(modify(Stock), external(Confirm), external(Settle), 5m0s where ticker=$t)",
		"during(external(Trade), external(Open), external(Close))",
		"during(modify(Stock), external(Open), external(Close) where acct=$a)",
		"sliding(external(Tick), 5)",
		"tumbling(external(Tick), 100 where ticker=$t)",
		"count(external(PriceDrop)) >= 3 within 1m0s",
		"count(PriceDrop where ticker=$t) >= 10 within 1m",
		"within(within(external(A), external(B), 10s), external(C), 1m0s)",
		"count(seq(external(A), external(B)) where k=$v) >= 2 within 10s",
		"within(external(A), external(B)",   // truncated
		"count(external(A)) >= 99999999999", // overflow
		"during(,,)",
		"sliding(external(A), -1)",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, src string) {
		spec, err := Parse(src)
		if err != nil {
			return
		}
		text := spec.String()
		back, err := Parse(text)
		if err != nil {
			t.Fatalf("canonical form %q of accepted input %q does not re-parse: %v", text, src, err)
		}
		if !reflect.DeepEqual(spec, back) {
			t.Fatalf("canonical form %q re-parses to a different spec (from %q)", text, src)
		}
		if back.String() != text {
			t.Fatalf("canonical form not a fixed point: %q -> %q", text, back.String())
		}
	})
}
