package btree

import (
	"fmt"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"

	"repro/internal/datum"
)

func TestEmpty(t *testing.T) {
	tr := New()
	if tr.Len() != 0 {
		t.Fatal("new tree not empty")
	}
	if got := tr.Get("x"); got != nil {
		t.Fatalf("Get on empty = %v", got)
	}
	if tr.Delete("x", 1) {
		t.Fatal("Delete on empty should be false")
	}
	if msg := tr.CheckInvariants(); msg != "" {
		t.Fatal(msg)
	}
}

func TestInsertGet(t *testing.T) {
	tr := New()
	if !tr.Insert("b", 2) || !tr.Insert("a", 1) || !tr.Insert("c", 3) {
		t.Fatal("fresh inserts should report true")
	}
	if tr.Insert("b", 2) {
		t.Fatal("duplicate pair insert should report false")
	}
	if !tr.Insert("b", 5) {
		t.Fatal("same key, new oid should report true")
	}
	if tr.Len() != 4 {
		t.Fatalf("Len = %d, want 4", tr.Len())
	}
	if got := tr.Get("b"); len(got) != 2 || got[0] != 2 || got[1] != 5 {
		t.Fatalf("Get(b) = %v", got)
	}
	if got := tr.Get("missing"); got != nil {
		t.Fatalf("Get(missing) = %v", got)
	}
}

func TestDelete(t *testing.T) {
	tr := New()
	tr.Insert("k", 1)
	tr.Insert("k", 2)
	if !tr.Delete("k", 1) {
		t.Fatal("Delete existing should be true")
	}
	if tr.Delete("k", 1) {
		t.Fatal("double Delete should be false")
	}
	if got := tr.Get("k"); len(got) != 1 || got[0] != 2 {
		t.Fatalf("Get after delete = %v", got)
	}
	if !tr.Delete("k", 2) {
		t.Fatal("Delete last should be true")
	}
	if tr.Get("k") != nil {
		t.Fatal("key should vanish when its set empties")
	}
	if tr.Len() != 0 {
		t.Fatalf("Len = %d", tr.Len())
	}
}

func TestSplitGrowth(t *testing.T) {
	tr := New()
	const n = 10_000
	for i := 0; i < n; i++ {
		tr.Insert(fmt.Sprintf("key%06d", i), datum.OID(i))
	}
	if tr.Len() != n {
		t.Fatalf("Len = %d", tr.Len())
	}
	if tr.Depth() < 3 {
		t.Fatalf("tree with %d keys should have split; depth = %d", n, tr.Depth())
	}
	if msg := tr.CheckInvariants(); msg != "" {
		t.Fatal(msg)
	}
	for i := 0; i < n; i += 997 {
		key := fmt.Sprintf("key%06d", i)
		if got := tr.Get(key); len(got) != 1 || got[0] != datum.OID(i) {
			t.Fatalf("Get(%s) = %v", key, got)
		}
	}
}

func TestScanFullOrder(t *testing.T) {
	tr := New()
	rng := rand.New(rand.NewSource(7))
	want := make([]string, 0, 500)
	for i := 0; i < 500; i++ {
		k := fmt.Sprintf("k%04d", rng.Intn(10_000))
		if tr.Insert(k, datum.OID(i)) {
		}
		want = append(want, k)
	}
	var got []string
	tr.Scan(Open(), Open(), func(k string, _ datum.OID) bool {
		got = append(got, k)
		return true
	})
	sort.Strings(want)
	if len(got) != len(want) {
		t.Fatalf("scan visited %d pairs, want %d", len(got), len(want))
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("scan order diverges at %d: %q vs %q", i, got[i], want[i])
		}
	}
}

func TestScanBounds(t *testing.T) {
	tr := New()
	for i := 0; i < 10; i++ {
		tr.Insert(fmt.Sprintf("%02d", i), datum.OID(i))
	}
	collect := func(lo, hi Bound) []string {
		var out []string
		tr.Scan(lo, hi, func(k string, _ datum.OID) bool {
			out = append(out, k)
			return true
		})
		return out
	}
	if got := collect(Include("03"), Include("06")); fmt.Sprint(got) != "[03 04 05 06]" {
		t.Fatalf("inclusive range = %v", got)
	}
	if got := collect(Exclude("03"), Exclude("06")); fmt.Sprint(got) != "[04 05]" {
		t.Fatalf("exclusive range = %v", got)
	}
	if got := collect(Include("07"), Open()); fmt.Sprint(got) != "[07 08 09]" {
		t.Fatalf("lo-only = %v", got)
	}
	if got := collect(Open(), Exclude("02")); fmt.Sprint(got) != "[00 01]" {
		t.Fatalf("hi-only = %v", got)
	}
	if got := collect(Include("20"), Open()); len(got) != 0 {
		t.Fatalf("out-of-range scan = %v", got)
	}
}

func TestScanEarlyStop(t *testing.T) {
	tr := New()
	for i := 0; i < 100; i++ {
		tr.Insert(fmt.Sprintf("%03d", i), datum.OID(i))
	}
	n := 0
	tr.Scan(Open(), Open(), func(string, datum.OID) bool {
		n++
		return n < 5
	})
	if n != 5 {
		t.Fatalf("visited %d, want 5", n)
	}
}

func TestKeysDistinct(t *testing.T) {
	tr := New()
	tr.Insert("a", 1)
	tr.Insert("a", 2)
	tr.Insert("b", 3)
	if got := tr.Keys(); fmt.Sprint(got) != "[a b]" {
		t.Fatalf("Keys = %v", got)
	}
}

// TestRandomizedAgainstModel drives the tree with a random workload
// and compares against a map-based model, checking invariants along
// the way.
func TestRandomizedAgainstModel(t *testing.T) {
	tr := New()
	model := map[string]map[datum.OID]bool{}
	modelLen := 0
	rng := rand.New(rand.NewSource(42))
	key := func() string { return fmt.Sprintf("k%03d", rng.Intn(200)) }
	oid := func() datum.OID { return datum.OID(rng.Intn(50)) }
	for step := 0; step < 20_000; step++ {
		k, o := key(), oid()
		switch rng.Intn(3) {
		case 0, 1: // insert twice as often as delete
			got := tr.Insert(k, o)
			want := !model[k][o]
			if got != want {
				t.Fatalf("step %d: Insert(%s,%d) = %v, want %v", step, k, o, got, want)
			}
			if model[k] == nil {
				model[k] = map[datum.OID]bool{}
			}
			if !model[k][o] {
				model[k][o] = true
				modelLen++
			}
		case 2:
			got := tr.Delete(k, o)
			want := model[k][o]
			if got != want {
				t.Fatalf("step %d: Delete(%s,%d) = %v, want %v", step, k, o, got, want)
			}
			if model[k][o] {
				delete(model[k], o)
				modelLen--
			}
		}
		if tr.Len() != modelLen {
			t.Fatalf("step %d: Len = %d, model %d", step, tr.Len(), modelLen)
		}
		if step%2000 == 0 {
			if msg := tr.CheckInvariants(); msg != "" {
				t.Fatalf("step %d: %s", step, msg)
			}
		}
	}
	if msg := tr.CheckInvariants(); msg != "" {
		t.Fatal(msg)
	}
	// Final full comparison.
	for k, set := range model {
		got := tr.Get(k)
		if len(got) != len(set) {
			t.Fatalf("key %s: got %d oids, model %d", k, len(got), len(set))
		}
		for _, o := range got {
			if !set[o] {
				t.Fatalf("key %s: oid %d not in model", k, o)
			}
		}
	}
}

func TestQuickInsertedIsFound(t *testing.T) {
	f := func(keys []string) bool {
		tr := New()
		for i, k := range keys {
			tr.Insert(k, datum.OID(i))
		}
		for i, k := range keys {
			found := false
			for _, o := range tr.Get(k) {
				if o == datum.OID(i) {
					found = true
				}
			}
			if !found {
				return false
			}
		}
		return tr.CheckInvariants() == ""
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestQuickScanSorted(t *testing.T) {
	f := func(keys []string) bool {
		tr := New()
		for i, k := range keys {
			tr.Insert(k, datum.OID(i))
		}
		prev := ""
		ok := true
		first := true
		tr.Scan(Open(), Open(), func(k string, _ datum.OID) bool {
			if !first && k < prev {
				ok = false
				return false
			}
			prev, first = k, false
			return true
		})
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func BenchmarkInsert(b *testing.B) {
	tr := New()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		tr.Insert(fmt.Sprintf("key%09d", i), datum.OID(i))
	}
}

func BenchmarkGet(b *testing.B) {
	tr := New()
	const n = 100_000
	for i := 0; i < n; i++ {
		tr.Insert(fmt.Sprintf("key%09d", i), datum.OID(i))
	}
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		tr.Get(fmt.Sprintf("key%09d", i%n))
	}
}
