package btree

// CheckInvariants exposes the structural invariant checker to tests.
func (t *Tree) CheckInvariants() string { return t.checkInvariants() }

// Depth exposes the tree height to tests.
func (t *Tree) Depth() int { return t.depth() }
