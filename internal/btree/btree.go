// Package btree implements an in-memory B+tree keyed by byte-ordered
// strings, used by the storage layer for secondary indexes over the
// order-preserving datum key encoding. Each key maps to a set of
// object identifiers (the index is non-unique: many objects can share
// an attribute value).
//
// The tree is not internally synchronized; the storage layer guards it
// with its own locking (probes and mutations run under the owning
// shard's mutex).
//
// Index entries are maintained with MVCC "add-only at install"
// semantics: committing a new object version inserts its (key, oid)
// pair, but entries for superseded versions are removed later, by the
// version GC (or the commit-time inline trim), and only once no
// surviving chain version still carries the key. A probe therefore
// sees a superset of any snapshot's true matches — old snapshots keep
// finding the rows they can see, and newer readers re-verify each
// candidate against the snapshot-resolved record, so false positives
// are filtered, never returned.
package btree

import (
	"sort"

	"repro/internal/datum"
)

// degree is the maximum number of keys per node. Chosen small enough
// to exercise splits in tests while keeping nodes cache-friendly.
const degree = 32

// Tree is a B+tree from string keys to sets of OIDs.
type Tree struct {
	root *node
	size int // number of (key, oid) pairs
}

type node struct {
	leaf     bool
	keys     []string
	children []*node       // interior only; len = len(keys)+1
	vals     [][]datum.OID // leaf only; parallel to keys, each sorted
	next     *node         // leaf chain for range scans
}

// New returns an empty tree.
func New() *Tree {
	return &Tree{root: &node{leaf: true}}
}

// Len reports the number of (key, oid) pairs in the tree.
func (t *Tree) Len() int { return t.size }

// Insert adds the (key, oid) pair. It reports whether the pair was new
// (false if the exact pair was already present).
func (t *Tree) Insert(key string, oid datum.OID) bool {
	inserted := t.insert(t.root, key, oid)
	if len(t.root.keys) >= degree {
		// Split the root: the tree grows one level.
		left := t.root
		mid, right := split(left)
		t.root = &node{
			keys:     []string{mid},
			children: []*node{left, right},
		}
	}
	if inserted {
		t.size++
	}
	return inserted
}

func (t *Tree) insert(n *node, key string, oid datum.OID) bool {
	if n.leaf {
		i := sort.SearchStrings(n.keys, key)
		if i < len(n.keys) && n.keys[i] == key {
			set := n.vals[i]
			j := sort.Search(len(set), func(k int) bool { return set[k] >= oid })
			if j < len(set) && set[j] == oid {
				return false
			}
			set = append(set, 0)
			copy(set[j+1:], set[j:])
			set[j] = oid
			n.vals[i] = set
			return true
		}
		n.keys = append(n.keys, "")
		copy(n.keys[i+1:], n.keys[i:])
		n.keys[i] = key
		n.vals = append(n.vals, nil)
		copy(n.vals[i+1:], n.vals[i:])
		n.vals[i] = []datum.OID{oid}
		return true
	}
	i := sort.SearchStrings(n.keys, key)
	if i < len(n.keys) && n.keys[i] == key {
		i++ // keys equal to a separator live in the right child
	}
	child := n.children[i]
	inserted := t.insert(child, key, oid)
	if len(child.keys) >= degree {
		mid, right := split(child)
		n.keys = append(n.keys, "")
		copy(n.keys[i+1:], n.keys[i:])
		n.keys[i] = mid
		n.children = append(n.children, nil)
		copy(n.children[i+2:], n.children[i+1:])
		n.children[i+1] = right
	}
	return inserted
}

// split divides an overfull node in two, returning the separator key
// and the new right sibling.
func split(n *node) (string, *node) {
	mid := len(n.keys) / 2
	right := &node{leaf: n.leaf}
	if n.leaf {
		right.keys = append(right.keys, n.keys[mid:]...)
		right.vals = append(right.vals, n.vals[mid:]...)
		n.keys = n.keys[:mid:mid]
		n.vals = n.vals[:mid:mid]
		right.next = n.next
		n.next = right
		// In a B+tree the separator for a leaf split is the first key
		// of the right sibling (the key stays in the leaf).
		return right.keys[0], right
	}
	sep := n.keys[mid]
	right.keys = append(right.keys, n.keys[mid+1:]...)
	right.children = append(right.children, n.children[mid+1:]...)
	n.keys = n.keys[:mid:mid]
	n.children = n.children[: mid+1 : mid+1]
	return sep, right
}

// Delete removes the (key, oid) pair, reporting whether it was present.
// Deletion uses lazy rebalancing: nodes may become underfull, but the
// tree remains correct and empty leaves are tolerated; this keeps the
// code simple and is standard for in-memory indexes with churn.
func (t *Tree) Delete(key string, oid datum.OID) bool {
	n := t.root
	for !n.leaf {
		i := sort.SearchStrings(n.keys, key)
		if i < len(n.keys) && n.keys[i] == key {
			i++
		}
		n = n.children[i]
	}
	i := sort.SearchStrings(n.keys, key)
	if i >= len(n.keys) || n.keys[i] != key {
		return false
	}
	set := n.vals[i]
	j := sort.Search(len(set), func(k int) bool { return set[k] >= oid })
	if j >= len(set) || set[j] != oid {
		return false
	}
	set = append(set[:j], set[j+1:]...)
	if len(set) == 0 {
		n.keys = append(n.keys[:i], n.keys[i+1:]...)
		n.vals = append(n.vals[:i], n.vals[i+1:]...)
	} else {
		n.vals[i] = set
	}
	t.size--
	return true
}

// Get returns the OIDs stored under key, in ascending order. The
// returned slice must not be modified.
func (t *Tree) Get(key string) []datum.OID {
	n := t.root
	for !n.leaf {
		i := sort.SearchStrings(n.keys, key)
		if i < len(n.keys) && n.keys[i] == key {
			i++
		}
		n = n.children[i]
	}
	i := sort.SearchStrings(n.keys, key)
	if i < len(n.keys) && n.keys[i] == key {
		return n.vals[i]
	}
	return nil
}

// Bound describes one end of a range scan.
type Bound struct {
	Key       string
	Inclusive bool
	Unbounded bool
}

// Include returns an inclusive bound at key.
func Include(key string) Bound { return Bound{Key: key, Inclusive: true} }

// Exclude returns an exclusive bound at key.
func Exclude(key string) Bound { return Bound{Key: key} }

// Open returns an unbounded end.
func Open() Bound { return Bound{Unbounded: true} }

// Scan visits every (key, oid) pair with lo <= key <= hi (subject to
// the bounds' inclusivity) in ascending key order, calling fn for each
// pair. Scanning stops early if fn returns false.
func (t *Tree) Scan(lo, hi Bound, fn func(key string, oid datum.OID) bool) {
	n := t.root
	start := ""
	if !lo.Unbounded {
		start = lo.Key
	}
	for !n.leaf {
		i := sort.SearchStrings(n.keys, start)
		if i < len(n.keys) && n.keys[i] == start {
			i++
		}
		n = n.children[i]
	}
	for ; n != nil; n = n.next {
		for i, k := range n.keys {
			if !lo.Unbounded {
				if k < lo.Key || (!lo.Inclusive && k == lo.Key) {
					continue
				}
			}
			if !hi.Unbounded {
				if k > hi.Key || (!hi.Inclusive && k == hi.Key) {
					return
				}
			}
			for _, oid := range n.vals[i] {
				if !fn(k, oid) {
					return
				}
			}
		}
	}
}

// Keys returns all distinct keys in ascending order. Intended for
// tests and diagnostics.
func (t *Tree) Keys() []string {
	var out []string
	t.Scan(Open(), Open(), func(k string, _ datum.OID) bool {
		if len(out) == 0 || out[len(out)-1] != k {
			out = append(out, k)
		}
		return true
	})
	return out
}

// depth returns the height of the tree (1 for a lone leaf). Used by
// invariant checks in tests.
func (t *Tree) depth() int {
	d := 1
	for n := t.root; !n.leaf; n = n.children[0] {
		d++
	}
	return d
}

// checkInvariants walks the whole tree verifying structural invariants
// and returns a description of the first violation, or "". Exposed to
// the package tests via export_test.go.
func (t *Tree) checkInvariants() string {
	var leafDepths []int
	var walk func(n *node, depth int, lo, hi string, haveLo, haveHi bool) string
	walk = func(n *node, depth int, lo, hi string, haveLo, haveHi bool) string {
		for i := 1; i < len(n.keys); i++ {
			if n.keys[i-1] >= n.keys[i] {
				return "keys out of order within node"
			}
		}
		for _, k := range n.keys {
			if haveLo && k < lo {
				return "key below subtree lower bound"
			}
			if haveHi && k >= hi {
				return "key at or above subtree upper bound"
			}
		}
		if n.leaf {
			if len(n.vals) != len(n.keys) {
				return "leaf vals/keys length mismatch"
			}
			for _, set := range n.vals {
				if len(set) == 0 {
					return "empty OID set retained in leaf"
				}
				for i := 1; i < len(set); i++ {
					if set[i-1] >= set[i] {
						return "OID set not strictly ascending"
					}
				}
			}
			leafDepths = append(leafDepths, depth)
			return ""
		}
		if len(n.children) != len(n.keys)+1 {
			return "interior children/keys length mismatch"
		}
		for i, c := range n.children {
			clo, chi := lo, hi
			cHaveLo, cHaveHi := haveLo, haveHi
			if i > 0 {
				clo, cHaveLo = n.keys[i-1], true
			}
			if i < len(n.keys) {
				chi, cHaveHi = n.keys[i], true
			}
			if msg := walk(c, depth+1, clo, chi, cHaveLo, cHaveHi); msg != "" {
				return msg
			}
		}
		return ""
	}
	if msg := walk(t.root, 1, "", "", false, false); msg != "" {
		return msg
	}
	for _, d := range leafDepths {
		if d != leafDepths[0] {
			return "leaves at unequal depth"
		}
	}
	// The leaf chain must visit exactly the leaves, left to right.
	count := 0
	for n := leftmostLeaf(t.root); n != nil; n = n.next {
		for _, set := range n.vals {
			count += len(set)
		}
	}
	if count != t.size {
		return "leaf chain pair count disagrees with size"
	}
	return ""
}

func leftmostLeaf(n *node) *node {
	for !n.leaf {
		n = n.children[0]
	}
	return n
}
