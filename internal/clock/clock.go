// Package clock abstracts time for the temporal event detector. The
// production engine runs on the wall clock; tests and deterministic
// experiments run on a virtual clock that only advances when told to,
// so that "fire this rule at 09:30" is testable without sleeping.
package clock

import (
	"container/heap"
	"sync"
	"time"
)

// Clock supplies the current time and timer wake-ups.
type Clock interface {
	// Now returns the current time on this clock.
	Now() time.Time
	// AfterFunc arranges for f to run (on its own goroutine for the
	// real clock; synchronously inside Advance for the virtual clock)
	// once the clock reaches or passes d from now. The returned Timer
	// can cancel the wake-up.
	AfterFunc(d time.Duration, f func()) Timer
}

// Timer is a cancellable pending wake-up.
type Timer interface {
	// Stop cancels the wake-up. It reports whether the call prevented
	// the function from running.
	Stop() bool
}

// Real returns a Clock backed by the system wall clock.
func Real() Clock { return realClock{} }

type realClock struct{}

func (realClock) Now() time.Time { return time.Now() }

func (realClock) AfterFunc(d time.Duration, f func()) Timer {
	return realTimer{time.AfterFunc(d, f)}
}

type realTimer struct{ t *time.Timer }

func (t realTimer) Stop() bool { return t.t.Stop() }

// Virtual is a manually advanced Clock for tests. The zero value is
// not usable; create one with NewVirtual.
type Virtual struct {
	mu      sync.Mutex
	now     time.Time
	pending timerHeap
	seq     uint64
}

// NewVirtual returns a virtual clock positioned at start.
func NewVirtual(start time.Time) *Virtual {
	return &Virtual{now: start}
}

// Now returns the virtual current time.
func (v *Virtual) Now() time.Time {
	v.mu.Lock()
	defer v.mu.Unlock()
	return v.now
}

// AfterFunc schedules f for the virtual instant now+d. If d <= 0 the
// function runs on the next Advance (or immediately on Advance(0)).
func (v *Virtual) AfterFunc(d time.Duration, f func()) Timer {
	v.mu.Lock()
	defer v.mu.Unlock()
	t := &virtualTimer{clock: v, when: v.now.Add(d), fn: f, seq: v.seq}
	v.seq++
	heap.Push(&v.pending, t)
	return t
}

// Advance moves the virtual clock forward by d, running every timer
// whose deadline is reached, in deadline order. Timer functions run
// synchronously on the caller's goroutine with the clock set to the
// timer's deadline, so periodic reschedules land at exact instants
// (drift-free).
func (v *Virtual) Advance(d time.Duration) {
	v.mu.Lock()
	target := v.now.Add(d)
	for {
		if len(v.pending) == 0 || v.pending[0].when.After(target) {
			break
		}
		t := heap.Pop(&v.pending).(*virtualTimer)
		if t.stopped {
			continue
		}
		t.fired = true
		v.now = t.when
		fn := t.fn
		v.mu.Unlock()
		fn()
		v.mu.Lock()
	}
	if target.After(v.now) {
		v.now = target
	}
	v.mu.Unlock()
}

// AdvanceTo moves the clock to the given instant (no-op if already
// past it).
func (v *Virtual) AdvanceTo(t time.Time) {
	v.mu.Lock()
	d := t.Sub(v.now)
	v.mu.Unlock()
	if d > 0 {
		v.Advance(d)
	}
}

// PendingTimers reports how many timers are scheduled and not yet
// fired or stopped.
func (v *Virtual) PendingTimers() int {
	v.mu.Lock()
	defer v.mu.Unlock()
	n := 0
	for _, t := range v.pending {
		if !t.stopped {
			n++
		}
	}
	return n
}

type virtualTimer struct {
	clock   *Virtual
	when    time.Time
	fn      func()
	seq     uint64
	index   int
	stopped bool
	fired   bool
}

func (t *virtualTimer) Stop() bool {
	t.clock.mu.Lock()
	defer t.clock.mu.Unlock()
	if t.fired || t.stopped {
		return false
	}
	t.stopped = true
	return true
}

// timerHeap orders timers by deadline, breaking ties by creation
// sequence so same-instant timers fire in schedule order.
type timerHeap []*virtualTimer

func (h timerHeap) Len() int { return len(h) }
func (h timerHeap) Less(i, j int) bool {
	if h[i].when.Equal(h[j].when) {
		return h[i].seq < h[j].seq
	}
	return h[i].when.Before(h[j].when)
}
func (h timerHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].index, h[j].index = i, j
}
func (h *timerHeap) Push(x any) {
	t := x.(*virtualTimer)
	t.index = len(*h)
	*h = append(*h, t)
}
func (h *timerHeap) Pop() any {
	old := *h
	n := len(old)
	t := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return t
}
