package clock

import (
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

var epoch = time.Date(2026, 7, 6, 9, 0, 0, 0, time.UTC)

func TestVirtualNow(t *testing.T) {
	v := NewVirtual(epoch)
	if !v.Now().Equal(epoch) {
		t.Fatalf("Now = %v, want %v", v.Now(), epoch)
	}
	v.Advance(time.Minute)
	if !v.Now().Equal(epoch.Add(time.Minute)) {
		t.Fatalf("after Advance: %v", v.Now())
	}
}

func TestVirtualAfterFuncFiresAtDeadline(t *testing.T) {
	v := NewVirtual(epoch)
	var firedAt time.Time
	v.AfterFunc(10*time.Second, func() { firedAt = v.Now() })
	v.Advance(9 * time.Second)
	if !firedAt.IsZero() {
		t.Fatal("timer fired early")
	}
	v.Advance(2 * time.Second)
	if !firedAt.Equal(epoch.Add(10 * time.Second)) {
		t.Fatalf("fired at %v, want %v (clock must be AT the deadline during fire)", firedAt, epoch.Add(10*time.Second))
	}
}

func TestVirtualTimersFireInOrder(t *testing.T) {
	v := NewVirtual(epoch)
	var order []int
	v.AfterFunc(3*time.Second, func() { order = append(order, 3) })
	v.AfterFunc(1*time.Second, func() { order = append(order, 1) })
	v.AfterFunc(2*time.Second, func() { order = append(order, 2) })
	v.Advance(5 * time.Second)
	if len(order) != 3 || order[0] != 1 || order[1] != 2 || order[2] != 3 {
		t.Fatalf("fire order %v", order)
	}
}

func TestVirtualSameInstantFIFO(t *testing.T) {
	v := NewVirtual(epoch)
	var order []int
	for i := 0; i < 5; i++ {
		i := i
		v.AfterFunc(time.Second, func() { order = append(order, i) })
	}
	v.Advance(time.Second)
	for i, got := range order {
		if got != i {
			t.Fatalf("same-instant timers fired out of schedule order: %v", order)
		}
	}
}

func TestVirtualStop(t *testing.T) {
	v := NewVirtual(epoch)
	fired := false
	tm := v.AfterFunc(time.Second, func() { fired = true })
	if !tm.Stop() {
		t.Fatal("first Stop should report true")
	}
	if tm.Stop() {
		t.Fatal("second Stop should report false")
	}
	v.Advance(2 * time.Second)
	if fired {
		t.Fatal("stopped timer fired")
	}
	if v.PendingTimers() != 0 {
		t.Fatalf("PendingTimers = %d, want 0", v.PendingTimers())
	}
}

func TestVirtualStopAfterFire(t *testing.T) {
	v := NewVirtual(epoch)
	tm := v.AfterFunc(time.Second, func() {})
	v.Advance(time.Second)
	if tm.Stop() {
		t.Fatal("Stop after fire should report false")
	}
}

func TestVirtualRescheduleFromCallback(t *testing.T) {
	// A periodic detector reschedules itself from inside the callback;
	// the new timer must be eligible within the same Advance window.
	v := NewVirtual(epoch)
	var fires []time.Time
	var tick func()
	tick = func() {
		fires = append(fires, v.Now())
		if len(fires) < 5 {
			v.AfterFunc(time.Second, tick)
		}
	}
	v.AfterFunc(time.Second, tick)
	v.Advance(10 * time.Second)
	if len(fires) != 5 {
		t.Fatalf("got %d fires, want 5", len(fires))
	}
	for i, ft := range fires {
		want := epoch.Add(time.Duration(i+1) * time.Second)
		if !ft.Equal(want) {
			t.Fatalf("fire %d at %v, want %v (periodic must be drift-free)", i, ft, want)
		}
	}
}

func TestVirtualZeroDelay(t *testing.T) {
	v := NewVirtual(epoch)
	fired := false
	v.AfterFunc(0, func() { fired = true })
	v.Advance(0)
	if !fired {
		t.Fatal("zero-delay timer should fire on Advance(0)")
	}
}

func TestVirtualAdvanceTo(t *testing.T) {
	v := NewVirtual(epoch)
	target := epoch.Add(time.Hour)
	v.AdvanceTo(target)
	if !v.Now().Equal(target) {
		t.Fatalf("Now = %v", v.Now())
	}
	v.AdvanceTo(epoch) // already past: no-op
	if !v.Now().Equal(target) {
		t.Fatal("AdvanceTo must not move backwards")
	}
}

func TestVirtualConcurrentSchedule(t *testing.T) {
	v := NewVirtual(epoch)
	var count atomic.Int64
	var wg sync.WaitGroup
	for i := 0; i < 50; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			v.AfterFunc(time.Duration(i)*time.Millisecond, func() { count.Add(1) })
		}(i)
	}
	wg.Wait()
	v.Advance(time.Second)
	if count.Load() != 50 {
		t.Fatalf("fired %d of 50", count.Load())
	}
}

func TestRealClock(t *testing.T) {
	c := Real()
	before := time.Now()
	now := c.Now()
	if now.Before(before.Add(-time.Second)) {
		t.Fatal("real clock far behind wall clock")
	}
	done := make(chan struct{})
	c.AfterFunc(time.Millisecond, func() { close(done) })
	select {
	case <-done:
	case <-time.After(2 * time.Second):
		t.Fatal("real AfterFunc did not fire")
	}
	tm := c.AfterFunc(time.Hour, func() {})
	if !tm.Stop() {
		t.Fatal("Stop on pending real timer should be true")
	}
}
