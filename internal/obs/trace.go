package obs

import (
	"sync"
	"sync/atomic"
	"time"
)

// Tracer records firing trees: every event signal that triggers rules
// becomes a root span whose children mirror the nested-transaction
// tree rule processing builds (§3.2 of the paper) — condition
// subtransactions, sibling action subtransactions, cascaded signals,
// deferred drains at commit, and separate top-level firings.
//
// Spans whose transactions can host cascades are *bound* to their
// transaction id while open; when a cascaded signal arrives, the rule
// manager walks the trigger's ancestor chain and attaches the new
// span under the innermost bound one, so cross-rule causality is
// preserved without threading context through every call.
//
// Finished root spans are materialized into immutable snapshots and
// kept in a fixed-capacity ring, newest-first on read.
type Tracer struct {
	on        atomic.Bool
	capacity  int
	slow      time.Duration
	logf      func(format string, args ...any)
	slowCount atomic.Uint64

	// bound is sharded by transaction id so concurrent bind/lookup
	// traffic (every span open/close on every firing) does not
	// serialize on the ring's mutex or on a single map lock.
	bound [boundShards]boundShard

	mu       sync.Mutex // guards the ring below
	ring     []SpanSnapshot
	next     int // overwrite cursor once the ring is full
	recorded uint64
	dropped  uint64
}

// boundShards is the fixed shard count for the span↔transaction
// binding table. Transaction ids are sequential, so simple modulo
// spreads neighbors across shards.
const boundShards = 16

type boundShard struct {
	mu sync.Mutex
	m  map[uint64]*Span
}

func (t *Tracer) shard(txn uint64) *boundShard {
	return &t.bound[txn%boundShards]
}

// On reports whether tracing is enabled. Safe on nil.
func (t *Tracer) On() bool { return t != nil && t.on.Load() }

// Span is one node of an in-progress firing tree. A nil *Span is a
// valid no-op target for every method, so disabled tracing needs no
// branches at the call sites.
type Span struct {
	tr   *Tracer
	root *Span

	kind      string
	name      string
	mode      string
	txn       uint64
	parentTxn uint64
	start     time.Time
	boundTo   uint64

	mu       sync.Mutex
	outcome  string
	dur      time.Duration
	ended    bool
	children []*Span
}

func (t *Tracer) newSpan(kind, name, mode string, txn, parentTxn uint64) *Span {
	s := &Span{tr: t, kind: kind, name: name, mode: mode,
		txn: txn, parentTxn: parentTxn, start: time.Now()}
	s.root = s
	t.bind(txn, s)
	return s
}

// bind associates txn with s unless the id is already bound (the
// innermost span wins: the first binder for a transaction is the span
// that created it).
func (t *Tracer) bind(txn uint64, s *Span) {
	if txn == 0 {
		return
	}
	sh := t.shard(txn)
	sh.mu.Lock()
	if _, taken := sh.m[txn]; !taken {
		sh.m[txn] = s
		s.boundTo = txn
	}
	sh.mu.Unlock()
}

func (t *Tracer) unbind(s *Span) {
	if s.boundTo == 0 {
		return
	}
	sh := t.shard(s.boundTo)
	sh.mu.Lock()
	if sh.m[s.boundTo] == s {
		delete(sh.m, s.boundTo)
	}
	sh.mu.Unlock()
}

// Bound returns the open span bound to the transaction id, if any.
func (t *Tracer) Bound(txn uint64) *Span {
	if t == nil || txn == 0 {
		return nil
	}
	sh := t.shard(txn)
	sh.mu.Lock()
	s := sh.m[txn]
	sh.mu.Unlock()
	return s
}

// StartRoot opens a new firing tree. Returns nil when tracing is off.
func (t *Tracer) StartRoot(kind, name, mode string, txn, parentTxn uint64) *Span {
	if !t.On() {
		return nil
	}
	return t.newSpan(kind, name, mode, txn, parentTxn)
}

// StartChild opens a child span. Nil-safe; the child shares the
// receiver's tree.
func (s *Span) StartChild(kind, name, mode string, txn, parentTxn uint64) *Span {
	if s == nil {
		return nil
	}
	c := s.tr.newSpan(kind, name, mode, txn, parentTxn)
	c.root = s.root
	s.mu.Lock()
	s.children = append(s.children, c)
	s.mu.Unlock()
	return c
}

// Mark appends an instantaneous child (queue markers, not-satisfied
// verdicts). Nil-safe.
func (s *Span) Mark(kind, name, mode, outcome string, txn, parentTxn uint64) {
	if s == nil {
		return
	}
	c := &Span{tr: s.tr, root: s.root, kind: kind, name: name, mode: mode,
		txn: txn, parentTxn: parentTxn, start: time.Now(),
		outcome: outcome, ended: true}
	s.mu.Lock()
	s.children = append(s.children, c)
	s.mu.Unlock()
}

// End closes the span with an outcome. Ending a root materializes the
// tree into the ring and runs the slow-firing check. Nil-safe and
// idempotent.
func (s *Span) End(outcome string) {
	if s == nil {
		return
	}
	s.mu.Lock()
	if s.ended {
		s.mu.Unlock()
		return
	}
	s.ended = true
	s.outcome = outcome
	s.dur = time.Since(s.start)
	s.mu.Unlock()
	s.tr.unbind(s)
	if s.root == s {
		s.tr.finish(s)
	}
}

func (t *Tracer) finish(root *Span) {
	snap := root.materialize()
	if t.slow > 0 && snap.DurNS >= int64(t.slow) {
		t.slowCount.Add(1)
		t.logf("obs: slow firing: %s %q took %v (threshold %v)",
			snap.Kind, snap.Name, time.Duration(snap.DurNS), t.slow)
	}
	t.mu.Lock()
	t.recorded++
	if len(t.ring) < t.capacity {
		t.ring = append(t.ring, snap)
	} else {
		t.ring[t.next] = snap
		t.next = (t.next + 1) % t.capacity
		t.dropped++
	}
	t.mu.Unlock()
}

func (s *Span) materialize() SpanSnapshot {
	s.mu.Lock()
	out := SpanSnapshot{
		Kind: s.kind, Name: s.name, Mode: s.mode, Outcome: s.outcome,
		Txn: s.txn, ParentTxn: s.parentTxn,
		StartNS: s.start.UnixNano(), DurNS: int64(s.dur),
	}
	children := append([]*Span(nil), s.children...)
	s.mu.Unlock()
	for _, c := range children {
		out.Children = append(out.Children, c.materialize())
	}
	return out
}

// Last returns up to n finished firing trees, newest first (n<=0
// means all retained).
func (t *Tracer) Last(n int) []SpanSnapshot {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	total := len(t.ring)
	if n <= 0 || n > total {
		n = total
	}
	newest := total - 1
	if total == t.capacity {
		newest = (t.next - 1 + t.capacity) % t.capacity
	}
	out := make([]SpanSnapshot, 0, n)
	for i := 0; i < n; i++ {
		out = append(out, t.ring[(newest-i+total)%total])
	}
	return out
}

func (t *Tracer) counts() (recorded, dropped uint64, capacity int) {
	if t == nil {
		return 0, 0, 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.recorded, t.dropped, t.capacity
}

// SlowFirings returns the number of root spans that crossed the
// slow-firing threshold.
func (t *Tracer) SlowFirings() uint64 {
	if t == nil {
		return 0
	}
	return t.slowCount.Load()
}

// SpanSnapshot is one node of a finished firing tree.
type SpanSnapshot struct {
	Kind      string         `json:"kind"`
	Name      string         `json:"name,omitempty"`
	Mode      string         `json:"mode,omitempty"`
	Outcome   string         `json:"outcome,omitempty"`
	Txn       uint64         `json:"txn,omitempty"`
	ParentTxn uint64         `json:"parentTxn,omitempty"`
	StartNS   int64          `json:"startNs"`
	DurNS     int64          `json:"durNs"`
	Children  []SpanSnapshot `json:"children,omitempty"`
}

// Depth returns the tree's depth (a leaf is 1).
func (s SpanSnapshot) Depth() int {
	max := 0
	for _, c := range s.Children {
		if d := c.Depth(); d > max {
			max = d
		}
	}
	return max + 1
}

// Walk visits the tree pre-order with each node's depth (root 0).
func (s *SpanSnapshot) Walk(fn func(node *SpanSnapshot, depth int)) {
	var rec func(n *SpanSnapshot, d int)
	rec = func(n *SpanSnapshot, d int) {
		fn(n, d)
		for i := range n.Children {
			rec(&n.Children[i], d+1)
		}
	}
	rec(s, 0)
}
