package obs

import (
	"math"
	"math/bits"
	"sync/atomic"
	"time"
)

// NumBuckets is the fixed bucket count of every latency histogram.
// Bucket i (i < NumBuckets-1) holds observations below 2^i
// microseconds; the last bucket is the overflow (everything from
// 2^(NumBuckets-2) µs ≈ 1s upward).
const NumBuckets = 22

// Histogram is a fixed-bucket, exponentially-spaced latency
// histogram. Observe is lock-free (three atomic adds); Snapshot reads
// are not atomic across buckets but each counter is monotone, so a
// concurrent snapshot is a valid histogram of a slightly smeared
// instant — fine for monitoring.
type Histogram struct {
	count   atomic.Uint64
	sumNS   atomic.Int64
	buckets [NumBuckets]atomic.Uint64
}

// bucketIndex maps a duration to its bucket: bits.Len64 of the
// microsecond count, clamped to the overflow bucket.
func bucketIndex(d time.Duration) int {
	if d < 0 {
		d = 0
	}
	i := bits.Len64(uint64(d / time.Microsecond))
	if i >= NumBuckets {
		i = NumBuckets - 1
	}
	return i
}

// Observe records one duration.
func (h *Histogram) Observe(d time.Duration) {
	h.count.Add(1)
	h.sumNS.Add(int64(d))
	h.buckets[bucketIndex(d)].Add(1)
}

// BucketUpperMicros returns bucket i's exclusive upper bound in
// microseconds; the last bucket returns math.MaxUint64 (+Inf).
func BucketUpperMicros(i int) uint64 {
	if i >= NumBuckets-1 {
		return math.MaxUint64
	}
	return 1 << uint(i)
}

// HistogramSnapshot is a point-in-time copy of a histogram.
type HistogramSnapshot struct {
	Count   uint64             `json:"count"`
	SumNS   int64              `json:"sumNs"`
	Buckets [NumBuckets]uint64 `json:"buckets"`
}

// Snapshot copies the histogram's counters.
func (h *Histogram) Snapshot() HistogramSnapshot {
	var s HistogramSnapshot
	s.Count = h.count.Load()
	s.SumNS = h.sumNS.Load()
	for i := range h.buckets {
		s.Buckets[i] = h.buckets[i].Load()
	}
	return s
}

// Mean returns the average observed duration (0 when empty).
func (s HistogramSnapshot) Mean() time.Duration {
	if s.Count == 0 {
		return 0
	}
	return time.Duration(s.SumNS / int64(s.Count))
}

// MeanCount returns the average observation of a count histogram
// (ObserveN units; 0 when empty).
func (s HistogramSnapshot) MeanCount() float64 {
	if s.Count == 0 {
		return 0
	}
	return float64(s.SumNS) / float64(time.Microsecond) / float64(s.Count)
}

// QuantileCount returns the q-quantile upper bound of a count
// histogram in ObserveN units.
func (s HistogramSnapshot) QuantileCount(q float64) uint64 {
	return uint64(s.Quantile(q) / time.Microsecond)
}

// Quantile returns an upper-bound estimate of the q-quantile (0<q<=1)
// as the upper edge of the bucket containing it. The overflow bucket
// reports the largest finite edge.
func (s HistogramSnapshot) Quantile(q float64) time.Duration {
	if s.Count == 0 {
		return 0
	}
	target := uint64(math.Ceil(q * float64(s.Count)))
	if target == 0 {
		target = 1
	}
	var cum uint64
	for i, b := range s.Buckets {
		cum += b
		if cum >= target {
			if i >= NumBuckets-1 {
				break
			}
			return time.Duration(BucketUpperMicros(i)) * time.Microsecond
		}
	}
	return time.Duration(BucketUpperMicros(NumBuckets-2)) * time.Microsecond
}
