package obs

import (
	"sync/atomic"
	"time"
)

// Metrics is the fixed set of latency histograms. The hot path is a
// single atomic load when disabled and three atomic adds per
// observation when enabled; there are no locks and no allocations.
type Metrics struct {
	on   atomic.Bool
	hist [numHists]Histogram
}

// On reports whether recording is enabled. Safe on nil.
func (m *Metrics) On() bool { return m != nil && m.on.Load() }

// Observe records one duration into the named histogram when enabled.
func (m *Metrics) Observe(id HistID, d time.Duration) {
	if m.On() {
		m.hist[id].Observe(d)
	}
}

// ObserveN records one count observation (e.g. a group-commit batch
// size) into a count histogram (see HistIsCount). Counts share the
// power-of-two bucket layout: one count unit maps to one microsecond
// internally; read them back with MeanCount/QuantileCount.
func (m *Metrics) ObserveN(id HistID, n uint64) {
	if m.On() {
		m.hist[id].Observe(time.Duration(n) * time.Microsecond)
	}
}

// Timer starts timing an operation destined for histogram id. When
// metrics are off (or m is nil) the zero Timer is returned and Done
// is a no-op, so call sites need no branches.
func (m *Metrics) Timer(id HistID) Timer {
	if !m.On() {
		return Timer{}
	}
	return Timer{m: m, id: id, start: time.Now()}
}

// Timer measures one operation; see Metrics.Timer.
type Timer struct {
	m     *Metrics
	id    HistID
	start time.Time
}

// Done records the elapsed time. No-op on the zero Timer.
func (t Timer) Done() {
	if t.m != nil {
		t.m.hist[t.id].Observe(time.Since(t.start))
	}
}

// HistSnapshot returns a snapshot of one histogram (empty when m is
// nil).
func (m *Metrics) HistSnapshot(id HistID) HistogramSnapshot {
	if m == nil {
		return HistogramSnapshot{}
	}
	return m.hist[id].Snapshot()
}
