// Package obs is the engine's observability subsystem: lock-free
// latency histograms for the hot paths (operations, condition
// evaluations, action executions, WAL syncs, lock waits) and a
// structured firing-tree tracer that records each event signal's
// rule processing as a span tree mirroring the nested-transaction
// tree of §3 of the paper. Everything is snapshot-on-read: writers
// touch only atomics (histograms) or per-span state (tracer), readers
// materialize consistent copies.
//
// The package depends only on the standard library so every layer of
// the engine can import it without cycles. All entry points are
// nil-receiver-safe and gated on an enabled flag, so instrumented
// components work unobserved (unit tests, disabled deployments) at
// the cost of a single atomic load per site.
package obs

import (
	"log"
	"time"
)

// HistID names one of the fixed latency histograms.
type HistID int

// The instrumented code paths.
const (
	// HOp: one engine data operation (create/modify/delete/get/query).
	HOp HistID = iota
	// HTxnCommit: commit processing of a top-level user transaction,
	// including deferred rule firings (§6.3).
	HTxnCommit
	// HSignal: rule processing of one emitted event signal (§6.2), as
	// seen by the suspended trigger — dispatch through return.
	HSignal
	// HCondEval: one condition-graph node evaluation (§5.5).
	HCondEval
	// HActionExec: one rule action execution (all steps, all rows).
	HActionExec
	// HWALSync: one WAL fsync.
	HWALSync
	// HLockWait: time a lock request spent blocked before grant or
	// refusal.
	HLockWait
	// HIPCRequest: one server-side ipc request, dispatch to reply.
	HIPCRequest
	// HCommitStall: time a durable commit spent waiting for its log
	// record to become durable (append through group-flush wakeup).
	HCommitStall
	// HWALGroup: the number of commits amortized by one WAL group
	// flush. A count histogram: record via ObserveN, read via
	// HistogramSnapshot counts (not durations).
	HWALGroup
	// HCheckpoint: one fuzzy checkpoint, scan through WAL truncation.
	HCheckpoint
	// HWALReclaimed: WAL bytes reclaimed by one checkpoint truncation.
	// A count histogram like HWALGroup.
	HWALReclaimed
	// HDeltaRecords: records written by one delta checkpoint — the
	// "d" in the O(d) incremental-snapshot claim. A count histogram
	// like HWALGroup.
	HDeltaRecords
	// HCommitShards: heap shards a top-level commit's install phase
	// locked — the spread of write sets over the partitions. A count
	// histogram like HWALGroup.
	HCommitShards
	// HCEPPartials: open partial matches in a cep template after one
	// constituent offer — the live-state pressure of the composite
	// event runtime. A count histogram like HWALGroup.
	HCEPPartials
	// HCEPInstances: live correlation-key NFA instances in a cep
	// template, observed at each GC sweep. A count histogram like
	// HWALGroup.
	HCEPInstances
	// HVersionChain: committed version-chain length after one install —
	// the MVCC garbage-collection pressure. A count histogram like
	// HWALGroup.
	HVersionChain
	// HSnapshotRead: one snapshot class scan (pin through last record
	// resolved), the lock-free MVCC read path.
	HSnapshotRead
	// HReplBatch: redo-payload bytes shipped in one replication batch
	// frame. A count histogram like HWALGroup.
	HReplBatch
	// HReplLag: replication apply lag for one shipped batch — primary
	// send timestamp to follower apply completion, as observed by the
	// follower (meaningful when both share a clock).
	HReplLag
	// HPlanFanout: worker count of one parallel plan stage (scan,
	// join, or aggregate fan-out). A count histogram like HWALGroup.
	HPlanFanout
	// HPlanGatherWait: gather-stage skew of one parallel plan stage —
	// the gap between the first and last worker finishing, i.e. how
	// long the gather node idles on stragglers.
	HPlanGatherWait

	numHists
)

var histNames = [numHists]string{
	"op", "txn_commit", "signal", "cond_eval",
	"action_exec", "wal_sync", "lock_wait", "ipc_request",
	"commit_stall", "wal_group_size",
	"checkpoint", "wal_bytes_reclaimed", "delta_records",
	"commit_shards", "cep_partials", "cep_instances",
	"version_chain_len", "snapshot_read",
	"repl_batch_bytes", "repl_lag",
	"plan_parallel_fanout", "plan_gather_wait",
}

// histIsCount marks histograms whose observations are counts recorded
// via ObserveN, not durations.
var histIsCount = [numHists]bool{HWALGroup: true, HWALReclaimed: true, HDeltaRecords: true,
	HCommitShards: true, HCEPPartials: true, HCEPInstances: true, HVersionChain: true,
	HReplBatch: true, HPlanFanout: true}

// HistNames returns the canonical histogram names in display order;
// snapshot maps are keyed by these.
func HistNames() []string { return append([]string(nil), histNames[:]...) }

// HistIsCount reports whether the named histogram holds counts
// (ObserveN units) rather than latencies; renderers should print its
// mean and quantiles as plain numbers.
func HistIsCount(name string) bool {
	for id, n := range histNames {
		if n == name {
			return histIsCount[id]
		}
	}
	return false
}

// Options configures an Obs. The zero value means enabled with
// default trace capacity and no slow-firing log.
type Options struct {
	// Disabled turns all recording off; every instrumentation site
	// then costs one atomic load.
	Disabled bool
	// TraceCapacity is the firing-tree ring-buffer size (finished
	// root spans retained). 0 means DefaultTraceCapacity.
	TraceCapacity int
	// SlowFiring, when >0, logs any finished root span whose duration
	// meets or exceeds it, and counts it in the snapshot.
	SlowFiring time.Duration
	// Logf receives slow-firing reports; nil means the standard
	// logger.
	Logf func(format string, args ...any)
}

// DefaultTraceCapacity is the trace ring size when Options leaves it
// zero.
const DefaultTraceCapacity = 256

// Obs bundles the metrics and the tracer. Methods are safe on a nil
// receiver (everything reads as disabled).
type Obs struct {
	metrics *Metrics
	tracer  *Tracer
}

// New builds an Obs per opts. The result and both components are
// always non-nil; Disabled only gates recording.
func New(opts Options) *Obs {
	capacity := opts.TraceCapacity
	if capacity <= 0 {
		capacity = DefaultTraceCapacity
	}
	logf := opts.Logf
	if logf == nil {
		logf = log.Printf
	}
	m := &Metrics{}
	tr := &Tracer{capacity: capacity, slow: opts.SlowFiring, logf: logf}
	for i := range tr.bound {
		tr.bound[i].m = map[uint64]*Span{}
	}
	if !opts.Disabled {
		m.on.Store(true)
		tr.on.Store(true)
	}
	return &Obs{metrics: m, tracer: tr}
}

// Metrics returns the histogram set (nil from a nil Obs).
func (o *Obs) Metrics() *Metrics {
	if o == nil {
		return nil
	}
	return o.metrics
}

// Tracer returns the firing-tree tracer (nil from a nil Obs).
func (o *Obs) Tracer() *Tracer {
	if o == nil {
		return nil
	}
	return o.tracer
}

// Enabled reports whether recording is on.
func (o *Obs) Enabled() bool { return o != nil && o.metrics.On() }

// Snapshot is a consistent, JSON-friendly copy of all observability
// state, served over ipc and rendered by the CLI and the Prometheus
// endpoint.
type Snapshot struct {
	Enabled       bool                         `json:"enabled"`
	Hist          map[string]HistogramSnapshot `json:"hist"`
	SlowFirings   uint64                       `json:"slowFirings"`
	TraceRecorded uint64                       `json:"traceRecorded"`
	TraceDropped  uint64                       `json:"traceDropped"`
	TraceCapacity int                          `json:"traceCapacity"`
}

// Snapshot materializes the current state.
func (o *Obs) Snapshot() Snapshot {
	if o == nil {
		return Snapshot{}
	}
	s := Snapshot{
		Enabled: o.metrics.On(),
		Hist:    make(map[string]HistogramSnapshot, numHists),
	}
	for id := HistID(0); id < numHists; id++ {
		s.Hist[histNames[id]] = o.metrics.hist[id].Snapshot()
	}
	s.SlowFirings = o.tracer.slowCount.Load()
	s.TraceRecorded, s.TraceDropped, s.TraceCapacity = o.tracer.counts()
	return s
}
