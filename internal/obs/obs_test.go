package obs

import (
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestHistogramBuckets(t *testing.T) {
	var h Histogram
	h.Observe(0)                     // bucket 0 (<1µs)
	h.Observe(500 * time.Nanosecond) // bucket 0
	h.Observe(1 * time.Microsecond)  // bucket 1 (<2µs)
	h.Observe(3 * time.Microsecond)  // bucket 2 (<4µs)
	h.Observe(100 * time.Millisecond)
	h.Observe(time.Hour) // overflow
	s := h.Snapshot()
	if s.Count != 6 {
		t.Fatalf("count = %d", s.Count)
	}
	if s.Buckets[0] != 2 || s.Buckets[1] != 1 || s.Buckets[2] != 1 {
		t.Fatalf("low buckets = %v", s.Buckets[:4])
	}
	if s.Buckets[NumBuckets-1] != 1 {
		t.Fatalf("overflow bucket = %d", s.Buckets[NumBuckets-1])
	}
	if s.Mean() <= 0 {
		t.Fatalf("mean = %v", s.Mean())
	}
	if q := s.Quantile(0.5); q > 8*time.Microsecond {
		t.Fatalf("p50 = %v, want a low bucket edge", q)
	}
	if q := s.Quantile(1.0); q < time.Second {
		t.Fatalf("p100 = %v, want the top finite edge", q)
	}
}

func TestNegativeDurationClamped(t *testing.T) {
	var h Histogram
	h.Observe(-time.Second)
	if s := h.Snapshot(); s.Buckets[0] != 1 {
		t.Fatalf("negative duration not clamped to bucket 0: %v", s.Buckets[:2])
	}
}

func TestMetricsDisabled(t *testing.T) {
	o := New(Options{Disabled: true})
	tm := o.Metrics().Timer(HOp)
	tm.Done()
	o.Metrics().Observe(HSignal, time.Second)
	if s := o.Snapshot(); s.Enabled || s.Hist["op"].Count != 0 || s.Hist["signal"].Count != 0 {
		t.Fatalf("disabled metrics recorded: %+v", s)
	}
	if sp := o.Tracer().StartRoot("signal", "x", "", 1, 0); sp != nil {
		t.Fatal("disabled tracer returned a live span")
	}
}

func TestNilSafety(t *testing.T) {
	var o *Obs
	if o.Metrics() != nil || o.Tracer() != nil || o.Enabled() {
		t.Fatal("nil Obs not inert")
	}
	o.Metrics().Observe(HOp, time.Second)
	o.Metrics().Timer(HOp).Done()
	var sp *Span
	sp.End("x")
	sp.Mark("k", "n", "", "", 0, 0)
	if c := sp.StartChild("k", "n", "", 0, 0); c != nil {
		t.Fatal("nil span spawned a child")
	}
	if o.Snapshot().Enabled {
		t.Fatal("nil snapshot enabled")
	}
}

func TestTracerTreeAndBinding(t *testing.T) {
	o := New(Options{})
	tr := o.Tracer()
	root := tr.StartRoot("signal", "modify(Stock)", "", 10, 0)
	if tr.Bound(10) != root {
		t.Fatal("root not bound to its txn")
	}
	cond := root.StartChild("cond", "audit", "immediate", 11, 10)
	cond.End("ok")
	if tr.Bound(11) != nil {
		t.Fatal("ended child still bound")
	}
	act := root.StartChild("action", "audit", "immediate", 12, 10)
	act.Mark("rule", "other", "", "not-satisfied", 0, 0)
	act.End("fired")
	root.End("")
	if tr.Bound(10) != nil {
		t.Fatal("ended root still bound")
	}

	last := tr.Last(1)
	if len(last) != 1 {
		t.Fatalf("last = %d trees", len(last))
	}
	got := last[0]
	if got.Kind != "signal" || got.Name != "modify(Stock)" || got.Txn != 10 {
		t.Fatalf("root snapshot = %+v", got)
	}
	if len(got.Children) != 2 || got.Children[0].Kind != "cond" || got.Children[1].Kind != "action" {
		t.Fatalf("children = %+v", got.Children)
	}
	if got.Children[0].ParentTxn != 10 || got.Children[0].Outcome != "ok" {
		t.Fatalf("cond child = %+v", got.Children[0])
	}
	if got.Children[1].Children[0].Outcome != "not-satisfied" {
		t.Fatalf("mark = %+v", got.Children[1].Children[0])
	}
	if got.Depth() != 3 {
		t.Fatalf("depth = %d, want 3", got.Depth())
	}
	var visited int
	got.Walk(func(*SpanSnapshot, int) { visited++ })
	if visited != 4 {
		t.Fatalf("walked %d nodes, want 4", visited)
	}
}

func TestBindFirstWins(t *testing.T) {
	o := New(Options{})
	tr := o.Tracer()
	a := tr.StartRoot("signal", "a", "", 5, 0)
	b := tr.StartRoot("signal", "b", "", 5, 0) // same txn: must not rebind
	if tr.Bound(5) != a {
		t.Fatal("second binder displaced the first")
	}
	b.End("")
	if tr.Bound(5) != a {
		t.Fatal("ending the non-binder unbound the txn")
	}
	a.End("")
	if tr.Bound(5) != nil {
		t.Fatal("binding survived its span")
	}
}

func TestRingEviction(t *testing.T) {
	o := New(Options{TraceCapacity: 4})
	tr := o.Tracer()
	for i := 0; i < 10; i++ {
		tr.StartRoot("signal", fmt.Sprintf("s%d", i), "", 0, 0).End("")
	}
	last := tr.Last(0)
	if len(last) != 4 {
		t.Fatalf("retained %d, want 4", len(last))
	}
	for i, want := range []string{"s9", "s8", "s7", "s6"} {
		if last[i].Name != want {
			t.Fatalf("last[%d] = %q, want %q", i, last[i].Name, want)
		}
	}
	rec, dropped, capacity := tr.counts()
	if rec != 10 || dropped != 6 || capacity != 4 {
		t.Fatalf("counts = %d recorded, %d dropped, cap %d", rec, dropped, capacity)
	}
	if two := tr.Last(2); len(two) != 2 || two[0].Name != "s9" || two[1].Name != "s8" {
		t.Fatalf("Last(2) = %+v", two)
	}
}

func TestSlowFiringLog(t *testing.T) {
	var mu sync.Mutex
	var lines []string
	o := New(Options{SlowFiring: time.Nanosecond, Logf: func(f string, a ...any) {
		mu.Lock()
		lines = append(lines, fmt.Sprintf(f, a...))
		mu.Unlock()
	}})
	sp := o.Tracer().StartRoot("signal", "slowpoke", "", 0, 0)
	time.Sleep(time.Millisecond)
	sp.End("")
	if o.Tracer().SlowFirings() != 1 {
		t.Fatalf("slow firings = %d", o.Tracer().SlowFirings())
	}
	mu.Lock()
	defer mu.Unlock()
	if len(lines) != 1 || !strings.Contains(lines[0], "slowpoke") {
		t.Fatalf("log = %v", lines)
	}
}

func TestEndIdempotent(t *testing.T) {
	o := New(Options{})
	sp := o.Tracer().StartRoot("signal", "x", "", 0, 0)
	sp.End("first")
	sp.End("second")
	last := o.Tracer().Last(0)
	if len(last) != 1 || last[0].Outcome != "first" {
		t.Fatalf("double End recorded twice or overwrote: %+v", last)
	}
}

func TestPrometheusRendering(t *testing.T) {
	o := New(Options{})
	o.Metrics().Observe(HWALSync, 3*time.Millisecond)
	o.Tracer().StartRoot("signal", "x", "", 0, 0).End("")
	var b strings.Builder
	if err := WritePrometheus(&b, o.Snapshot(), "hipac"); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		"# TYPE hipac_wal_sync_duration_seconds histogram",
		`hipac_wal_sync_duration_seconds_bucket{le="+Inf"} 1`,
		"hipac_wal_sync_duration_seconds_count 1",
		"hipac_traces_recorded_total 1",
		"hipac_slow_firings_total 0",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("missing %q in:\n%s", want, out)
		}
	}
	// Cumulative buckets: the +Inf bucket equals count for every hist.
	if strings.Contains(out, `le="+Inf"} 0`) && !strings.Contains(out, "hipac_op_duration_seconds") {
		t.Fatal("histogram rendering incomplete")
	}
}

func TestConcurrentRecording(t *testing.T) {
	o := New(Options{TraceCapacity: 8, SlowFiring: time.Nanosecond, Logf: func(string, ...any) {}})
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				o.Metrics().Observe(HOp, time.Duration(i)*time.Microsecond)
				tm := o.Metrics().Timer(HCondEval)
				tm.Done()
				root := o.Tracer().StartRoot("signal", "t", "", uint64(g*1000+i+1), 0)
				c := root.StartChild("cond", "r", "immediate", 0, 0)
				c.End("ok")
				root.End("")
			}
		}(g)
	}
	wg.Wait()
	s := o.Snapshot()
	if s.Hist["op"].Count != 1600 || s.Hist["cond_eval"].Count != 1600 {
		t.Fatalf("hist counts = %d / %d", s.Hist["op"].Count, s.Hist["cond_eval"].Count)
	}
	if s.TraceRecorded != 1600 || len(o.Tracer().Last(0)) != 8 {
		t.Fatalf("traces = %d recorded, %d retained", s.TraceRecorded, len(o.Tracer().Last(0)))
	}
}
