package obs

import (
	"fmt"
	"io"
	"strconv"
)

// WritePrometheus renders a Snapshot in the Prometheus text
// exposition format. Each histogram becomes
// <prefix>_<name>_duration_seconds with cumulative le buckets; the
// trace counters become <prefix>_*_total gauges/counters. prefix is
// typically "hipac".
func WritePrometheus(w io.Writer, s Snapshot, prefix string) error {
	for id, name := range histNames {
		h, ok := s.Hist[name]
		if !ok {
			continue
		}
		// Count histograms (e.g. group-commit batch size) expose raw
		// units; latency histograms expose seconds.
		isCount := histIsCount[id]
		metric := fmt.Sprintf("%s_%s_duration_seconds", prefix, name)
		if isCount {
			metric = fmt.Sprintf("%s_%s", prefix, name)
		}
		if _, err := fmt.Fprintf(w, "# TYPE %s histogram\n", metric); err != nil {
			return err
		}
		var cum uint64
		for i := 0; i < NumBuckets; i++ {
			cum += h.Buckets[i]
			le := "+Inf"
			if i < NumBuckets-1 {
				if isCount {
					le = strconv.FormatUint(BucketUpperMicros(i), 10)
				} else {
					le = strconv.FormatFloat(float64(BucketUpperMicros(i))/1e6, 'g', -1, 64)
				}
			}
			if _, err := fmt.Fprintf(w, "%s_bucket{le=%q} %d\n", metric, le, cum); err != nil {
				return err
			}
		}
		sum := float64(h.SumNS) / 1e9
		if isCount {
			sum = float64(h.SumNS) / 1e3 // ObserveN stores units as µs
		}
		if _, err := fmt.Fprintf(w, "%s_sum %s\n%s_count %d\n", metric,
			strconv.FormatFloat(sum, 'g', -1, 64), metric, h.Count); err != nil {
			return err
		}
	}
	_, err := fmt.Fprintf(w,
		"# TYPE %[1]s_slow_firings_total counter\n%[1]s_slow_firings_total %[2]d\n"+
			"# TYPE %[1]s_traces_recorded_total counter\n%[1]s_traces_recorded_total %[3]d\n"+
			"# TYPE %[1]s_traces_dropped_total counter\n%[1]s_traces_dropped_total %[4]d\n",
		prefix, s.SlowFirings, s.TraceRecorded, s.TraceDropped)
	return err
}
