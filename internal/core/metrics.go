package core

import (
	"fmt"
	"io"
	"sort"

	"repro/internal/obs"
)

// WritePrometheus renders the engine's counters and the observability
// subsystem's histograms in the Prometheus text exposition format.
// hipacd serves it on the optional -metrics listener.
func (e *Engine) WritePrometheus(w io.Writer) error {
	s := e.Stats()
	counters := []struct {
		name  string
		value uint64
	}{
		{"hipac_store_puts_total", s.Store.Puts},
		{"hipac_store_gets_total", s.Store.Gets},
		{"hipac_store_scans_total", s.Store.Scans},
		{"hipac_store_index_probes_total", s.Store.IndexProbes},
		{"hipac_store_top_commits_total", s.Store.TopCommits},
		{"hipac_store_wal_bytes_total", s.Store.WALBytes},
		{"hipac_store_wal_fsyncs_total", s.Store.WALFsyncs},
		{"hipac_store_wal_sync_requests_total", s.Store.WALSyncRequests},
		{"hipac_locks_acquired_total", s.Locks.Acquired},
		{"hipac_locks_waited_total", s.Locks.Waited},
		{"hipac_locks_deadlocks_total", s.Locks.Deadlocks},
		{"hipac_event_database_signals_total", s.Detectors.DatabaseSignals},
		{"hipac_event_external_signals_total", s.Detectors.ExternalSignals},
		{"hipac_event_temporal_firings_total", s.Detectors.TemporalFirings},
		{"hipac_event_emissions_total", s.Detectors.Emissions},
		{"hipac_cond_evaluations_total", s.Conditions.Evaluations},
		{"hipac_cond_shared_hits_total", s.Conditions.SharedHits},
		{"hipac_cond_cache_hits_total", s.Conditions.CacheHits},
		{"hipac_rule_signals_total", s.Rules.Signals},
		{"hipac_rule_triggered_total", s.Rules.Triggered},
		{"hipac_rule_immediate_firings_total", s.Rules.ImmediateFirings},
		{"hipac_rule_deferred_firings_total", s.Rules.DeferredFirings},
		{"hipac_rule_separate_firings_total", s.Rules.SeparateFirings},
		{"hipac_rule_conditions_satisfied_total", s.Rules.ConditionsSatisfied},
		{"hipac_rule_actions_executed_total", s.Rules.ActionsExecuted},
		{"hipac_rule_async_errors_total", s.Rules.AsyncErrors},
		{"hipac_cep_firings_total", s.Detectors.CEPFirings},
		{"hipac_cep_expired_partials_total", s.Detectors.CEPExpired},
		{"hipac_store_version_gc_runs_total", s.Store.GCRuns},
		{"hipac_store_versions_gc_reclaimed_total", s.Store.VersionsReclaimed},
	}
	for _, c := range counters {
		if _, err := fmt.Fprintf(w, "# TYPE %s counter\n%s %d\n", c.name, c.name, c.value); err != nil {
			return err
		}
	}
	if _, err := fmt.Fprintf(w, "# TYPE hipac_live_txns gauge\nhipac_live_txns %d\n", s.LiveTxns); err != nil {
		return err
	}
	if _, err := fmt.Fprintf(w, "# TYPE hipac_store_shards gauge\nhipac_store_shards %d\n", s.Store.Shards); err != nil {
		return err
	}
	// MVCC read-path gauges: the published commit frontier, the
	// version-GC watermark (their gap = snapshot lag), and the pinned
	// snapshot population holding that watermark back.
	mvccGauges := []struct {
		name  string
		value uint64
	}{
		{"hipac_store_published_lsn", s.Store.PublishedLSN},
		{"hipac_store_oldest_snapshot_lsn", s.Store.OldestSnapshotLSN},
		{"hipac_store_live_snapshots", uint64(s.Store.LiveSnapshots)},
	}
	for _, g := range mvccGauges {
		if _, err := fmt.Fprintf(w, "# TYPE %s gauge\n%s %d\n", g.name, g.name, g.value); err != nil {
			return err
		}
	}
	// Per-shard install counts expose heap partition skew: a hot shard
	// shows up as one series far above the rest.
	if _, err := fmt.Fprintf(w, "# TYPE hipac_store_shard_installs_total counter\n"); err != nil {
		return err
	}
	for i, n := range e.Store.ShardInstalls() {
		if _, err := fmt.Fprintf(w, "hipac_store_shard_installs_total{shard=\"%d\"} %d\n", i, n); err != nil {
			return err
		}
	}
	// Composite-event runtime gauges: template count plus the live
	// NFA-instance and partial-match populations (bounded-memory
	// evidence under sustained streams).
	cepGauges := []struct {
		name  string
		value int
	}{
		{"hipac_cep_templates", s.Detectors.CEPTemplates},
		{"hipac_cep_instances", s.Detectors.CEPInstances},
		{"hipac_cep_partials", s.Detectors.CEPPartials},
	}
	for _, g := range cepGauges {
		if _, err := fmt.Fprintf(w, "# TYPE %s gauge\n%s %d\n", g.name, g.name, g.value); err != nil {
			return err
		}
	}
	// Per-rule firing counters (cardinality-bounded at the source:
	// rule.MaxFiringCounters names, overflow folded into one series).
	if len(s.Rules.RuleFirings) > 0 {
		if _, err := fmt.Fprintf(w, "# TYPE hipac_rule_firings_total counter\n"); err != nil {
			return err
		}
		names := make([]string, 0, len(s.Rules.RuleFirings))
		for name := range s.Rules.RuleFirings {
			names = append(names, name)
		}
		sort.Strings(names)
		for _, name := range names {
			if _, err := fmt.Fprintf(w, "hipac_rule_firings_total{rule=%q} %d\n", name, s.Rules.RuleFirings[name]); err != nil {
				return err
			}
		}
	}
	return obs.WritePrometheus(w, e.Obs.Snapshot(), "hipac")
}
