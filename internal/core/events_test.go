package core

// Tests of transaction-control events, temporal baselines, and mixed
// composite events through the full engine.

import (
	"fmt"
	"testing"
	"time"

	"repro/internal/datum"
	"repro/internal/object"
	"repro/internal/rule"
	"repro/internal/txn"
)

func TestCommitEventRule(t *testing.T) {
	// §2.1: transaction control is a primitive database event. A rule
	// on commit() fires during commit processing (§6.3), in a
	// subtransaction of the committing transaction.
	e, _ := newEngine(t)
	defineStockAndAudit(t, e)
	var committedTxns []int64
	e.RegisterCall("note-commit", func(tx *txn.Txn, b map[string]datum.Value) error {
		committedTxns = append(committedTxns, b["txn"].AsInt())
		return nil
	})
	if _, err := e.CreateRule(rule.Def{
		Name:   "on-commit",
		Event:  "commit()",
		Action: []rule.Step{{Kind: rule.StepCall, Fn: "note-commit"}},
		EC:     "immediate", CA: "immediate",
	}); err != nil {
		t.Fatal(err)
	}
	tx := e.Begin()
	id := int64(tx.ID())
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	found := false
	for _, got := range committedTxns {
		if got == id {
			found = true
		}
	}
	if !found {
		t.Fatalf("commit rule did not observe txn %d (saw %v)", id, committedTxns)
	}
}

func TestAbortEventRule(t *testing.T) {
	// Aborts are signalled outside any transaction; immediate
	// coupling degrades to a separate firing.
	e, _ := newEngine(t)
	defineStockAndAudit(t, e)
	aborted := make(chan int64, 8)
	e.RegisterCall("note-abort", func(tx *txn.Txn, b map[string]datum.Value) error {
		aborted <- b["txn"].AsInt()
		return nil
	})
	if _, err := e.CreateRule(rule.Def{
		Name:   "on-abort",
		Event:  "abort()",
		Action: []rule.Step{{Kind: rule.StepCall, Fn: "note-abort"}},
		EC:     "immediate", CA: "immediate",
	}); err != nil {
		t.Fatal(err)
	}
	tx := e.Begin()
	id := int64(tx.ID())
	tx.Abort()
	e.Quiesce()
	select {
	case got := <-aborted:
		if got != id {
			t.Fatalf("abort rule saw txn %d, want %d", got, id)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("abort rule never fired")
	}
}

func TestTemporalBaselineRule(t *testing.T) {
	// "30 seconds after MarketOpen" through the engine.
	e, clk := newEngine(t)
	defineStockAndAudit(t, e)
	if err := e.DefineEvent("MarketOpen"); err != nil {
		t.Fatal(err)
	}
	fired := 0
	e.RegisterCall("late-check", func(*txn.Txn, map[string]datum.Value) error {
		fired++
		return nil
	})
	if _, err := e.CreateRule(rule.Def{
		Name:   "post-open",
		Event:  "after(external(MarketOpen), 30s)",
		Action: []rule.Step{{Kind: rule.StepCall, Fn: "late-check"}},
	}); err != nil {
		t.Fatal(err)
	}
	clk.Advance(time.Minute)
	e.Quiesce()
	if fired != 0 {
		t.Fatal("fired before the baseline event")
	}
	if err := e.SignalEvent(nil, "MarketOpen", nil); err != nil {
		t.Fatal(err)
	}
	clk.Advance(30 * time.Second)
	e.Quiesce()
	if fired != 1 {
		t.Fatalf("fired = %d, want 1", fired)
	}
}

func TestMixedCompositeDBAndExternal(t *testing.T) {
	// seq(modify(Stock), external(Confirm)): a database event
	// followed by an application event, with merged bindings.
	e, _ := newEngine(t)
	defineStockAndAudit(t, e)
	oid := createStock(t, e, "XRX", 48)
	if err := e.DefineEvent("Confirm", "who"); err != nil {
		t.Fatal(err)
	}
	if _, err := e.CreateRule(rule.Def{
		Name:  "confirmed-change",
		Event: "seq(modify(Stock), external(Confirm))",
		Action: []rule.Step{{
			Kind: rule.StepCreate, Class: "Audit",
			Attrs: map[string]string{
				"note":  "event.who",       // from the external part
				"price": "event.new_price", // from the database part
			},
		}},
		EC: "immediate", CA: "immediate",
	}); err != nil {
		t.Fatal(err)
	}
	tx := e.Begin()
	if err := e.Modify(tx, oid, map[string]datum.Value{"price": datum.Float(50)}); err != nil {
		t.Fatal(err)
	}
	if got := auditCountIn(t, e, tx); got != 0 {
		t.Fatal("sequence fired after first part")
	}
	if err := e.SignalEvent(tx, "Confirm", map[string]datum.Value{"who": datum.Str("ops")}); err != nil {
		t.Fatal(err)
	}
	if got := auditCountIn(t, e, tx); got != 1 {
		t.Fatalf("audit rows = %d", got)
	}
	res, err := e.Query(tx, "select a.note, a.price from Audit a", nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.Rows[0][0].AsString() != "ops" || res.Rows[0][1].AsFloat() != 50 {
		t.Fatalf("merged bindings = %v", res.Rows[0])
	}
	tx.Commit()
}

func TestRuleOnDeleteSeesOldValues(t *testing.T) {
	e, _ := newEngine(t)
	defineStockAndAudit(t, e)
	oid := createStock(t, e, "XRX", 48)
	if _, err := e.CreateRule(rule.Def{
		Name:  "tombstone-audit",
		Event: "delete(Stock)",
		Action: []rule.Step{{
			Kind: rule.StepCreate, Class: "Audit",
			Attrs: map[string]string{"note": "event.old_symbol", "price": "event.old_price"},
		}},
		EC: "immediate", CA: "immediate",
	}); err != nil {
		t.Fatal(err)
	}
	tx := e.Begin()
	if err := e.Delete(tx, oid); err != nil {
		t.Fatal(err)
	}
	res, err := e.Query(tx, "select a.note, a.price from Audit a", nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 1 || res.Rows[0][0].AsString() != "XRX" || res.Rows[0][1].AsFloat() != 48 {
		t.Fatalf("delete bindings = %v", res.Rows)
	}
	tx.Commit()
}

func TestActionModifyStepWithRowTarget(t *testing.T) {
	// The SAA portfolio pattern in isolation: condition selects an
	// object, the action modifies it via the row binding, computing
	// the new value from old attribute + event argument.
	e, _ := newEngine(t)
	tx0 := e.Begin()
	if err := e.DefineClass(tx0, stockClass); err != nil {
		t.Fatal(err)
	}
	if err := e.DefineClass(tx0, auditClass); err != nil {
		t.Fatal(err)
	}
	tx0.Commit()
	if err := e.DefineEvent("Add", "sym", "amount"); err != nil {
		t.Fatal(err)
	}
	oid := createStock(t, e, "XRX", 10)
	if _, err := e.CreateRule(rule.Def{
		Name:      "bump",
		Event:     "external(Add)",
		Condition: []string{"select s from Stock s where s.symbol = event.sym"},
		Action: []rule.Step{{
			Kind: rule.StepModify, Target: "s",
			Attrs: map[string]string{"price": "s.price + event.amount"},
		}},
		EC: "immediate", CA: "immediate",
	}); err != nil {
		t.Fatal(err)
	}
	tx := e.Begin()
	if err := e.SignalEvent(tx, "Add", map[string]datum.Value{
		"sym": datum.Str("XRX"), "amount": datum.Float(5),
	}); err != nil {
		t.Fatal(err)
	}
	rec, err := e.Get(tx, oid)
	if err != nil || rec.Attrs["price"].AsFloat() != 15 {
		t.Fatalf("price = %v (%v)", rec.Attrs["price"], err)
	}
	tx.Commit()
}

func TestActionDeleteStep(t *testing.T) {
	// A cleanup rule: when a stock's price hits zero, delete it.
	e, _ := newEngine(t)
	defineStockAndAudit(t, e)
	oid := createStock(t, e, "DEAD", 5)
	if _, err := e.CreateRule(rule.Def{
		Name:      "reap",
		Event:     "modify(Stock)",
		Condition: []string{"select s from Stock s where s = event.oid and event.new_price <= 0"},
		Action:    []rule.Step{{Kind: rule.StepDelete, Target: "s"}},
		EC:        "immediate", CA: "immediate",
	}); err != nil {
		t.Fatal(err)
	}
	tx := e.Begin()
	if err := e.Modify(tx, oid, map[string]datum.Value{"price": datum.Float(0)}); err != nil {
		t.Fatal(err)
	}
	if _, err := e.Get(tx, oid); err == nil {
		t.Fatal("object survived the reap rule")
	}
	tx.Commit()
}

func TestManyRulesManyEventsIsolation(t *testing.T) {
	// Rules on different classes never cross-fire.
	e, _ := newEngine(t)
	tx0 := e.Begin()
	for i := 0; i < 5; i++ {
		if err := e.DefineClass(tx0, hipacClass(fmt.Sprintf("K%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	if err := e.DefineClass(tx0, auditClass); err != nil {
		t.Fatal(err)
	}
	tx0.Commit()
	for i := 0; i < 5; i++ {
		if _, err := e.CreateRule(rule.Def{
			Name:  fmt.Sprintf("watch-K%d", i),
			Event: fmt.Sprintf("create(K%d)", i),
			Action: []rule.Step{{Kind: rule.StepCreate, Class: "Audit",
				Attrs: map[string]string{"note": fmt.Sprintf("'K%d'", i)}}},
			EC: "immediate", CA: "immediate",
		}); err != nil {
			t.Fatal(err)
		}
	}
	tx := e.Begin()
	if _, err := e.Create(tx, "K2", map[string]datum.Value{"x": datum.Int(1)}); err != nil {
		t.Fatal(err)
	}
	res, err := e.Query(tx, "select a.note from Audit a", nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 1 || res.Rows[0][0].AsString() != "K2" {
		t.Fatalf("cross-fired: %v", res.Rows)
	}
	tx.Commit()
}

func hipacClass(name string) object.Class {
	return object.Class{Name: name, Attrs: []object.AttrDef{{Name: "x", Kind: datum.KindInt}}}
}
