package core

import (
	"sync"
	"testing"
	"time"

	"repro/internal/datum"
	"repro/internal/object"
	"repro/internal/rule"
)

var flagClass = object.Class{
	Name: "Flag",
	Attrs: []object.AttrDef{
		{Name: "g", Kind: datum.KindInt},
	},
}

// makeFlags defines the Flag class and commits n flags with g=0,
// returning their OIDs.
func makeFlags(t *testing.T, e *Engine, n int) []datum.OID {
	t.Helper()
	tx := e.Begin()
	if err := e.DefineClass(tx, flagClass); err != nil {
		t.Fatal(err)
	}
	var oids []datum.OID
	for i := 0; i < n; i++ {
		oid, err := e.Create(tx, "Flag", map[string]datum.Value{"g": datum.Int(0)})
		if err != nil {
			t.Fatal(err)
		}
		oids = append(oids, oid)
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	return oids
}

// flipFlags atomically advances every flag to generation gen until
// stop closes.
func flipFlags(t *testing.T, e *Engine, oids []datum.OID, stop <-chan struct{}, wg *sync.WaitGroup) {
	t.Helper()
	wg.Add(1)
	go func() {
		defer wg.Done()
		gen := int64(0)
		for {
			select {
			case <-stop:
				return
			default:
			}
			gen++
			tx := e.Begin()
			for _, oid := range oids {
				if err := e.Modify(tx, oid, map[string]datum.Value{"g": datum.Int(gen)}); err != nil {
					t.Error(err)
					tx.Abort()
					return
				}
			}
			if err := tx.Commit(); err != nil {
				t.Error(err)
				return
			}
		}
	}()
}

// TestQuerySnapshotConsistency: Engine.Query evaluates against one
// pinned snapshot, so a query racing a writer that atomically flips a
// whole class never observes a mix of generations.
func TestQuerySnapshotConsistency(t *testing.T) {
	e, _ := newEngine(t)
	oids := makeFlags(t, e, 40)

	stop := make(chan struct{})
	var wg sync.WaitGroup
	flipFlags(t, e, oids, stop, &wg)

	deadline := time.Now().Add(300 * time.Millisecond)
	for time.Now().Before(deadline) {
		tx := e.Begin()
		res, err := e.Query(tx, "select min(f.g) as lo, max(f.g) as hi, count(*) as n from Flag f", nil)
		if err != nil {
			t.Fatal(err)
		}
		tx.Commit()
		lo, hi := res.Rows[0][0].AsInt(), res.Rows[0][1].AsInt()
		if lo != hi {
			t.Fatalf("query observed a torn flip: min g=%d, max g=%d", lo, hi)
		}
		if n := res.Rows[0][2].AsInt(); n != 40 {
			t.Fatalf("query saw %d flags, want 40", n)
		}
	}
	close(stop)
	wg.Wait()
}

// TestDeferredConditionSnapshotConsistency: a deferred rule condition
// evaluates against a single snapshot LSN, so concurrent writer
// mutations are invisible mid-evaluation. The condition is a torn-view
// detector — a self-join matching flag pairs with differing
// generations — which is non-empty (firing the action) only if one
// evaluation mixes two generations.
func TestDeferredConditionSnapshotConsistency(t *testing.T) {
	e, _ := newEngine(t)
	oids := makeFlags(t, e, 40)
	tx := e.Begin()
	for _, c := range []object.Class{
		{Name: "Poke", Attrs: []object.AttrDef{{Name: "x", Kind: datum.KindInt}}},
		{Name: "Torn", Attrs: []object.AttrDef{{Name: "x", Kind: datum.KindInt}}},
	} {
		if err := e.DefineClass(tx, c); err != nil {
			t.Fatal(err)
		}
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	if _, err := e.CreateRule(rule.Def{
		Name:      "torn-detector",
		Event:     "create(Poke)",
		Condition: []string{"select f from Flag f, Flag h where f.g != h.g"},
		Action:    []rule.Step{{Kind: rule.StepCreate, Class: "Torn", Attrs: map[string]string{"x": "1"}}},
		EC:        "deferred",
		CA:        "immediate",
	}); err != nil {
		t.Fatal(err)
	}

	stop := make(chan struct{})
	var wg sync.WaitGroup
	flipFlags(t, e, oids, stop, &wg)

	for i := 0; i < 40; i++ {
		tx := e.Begin()
		if _, err := e.Create(tx, "Poke", map[string]datum.Value{"x": datum.Int(int64(i))}); err != nil {
			t.Fatal(err)
		}
		if err := tx.Commit(); err != nil {
			t.Fatal(err)
		}
	}
	close(stop)
	wg.Wait()
	e.Quiesce()

	check := e.Begin()
	defer check.Commit()
	res, err := e.Query(check, "select count(*) as n from Torn t", nil)
	if err != nil {
		t.Fatal(err)
	}
	if got := res.Rows[0][0].AsInt(); got != 0 {
		t.Fatalf("deferred condition observed %d torn views, want 0", got)
	}
}
