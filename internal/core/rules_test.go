package core

// Tests for subtler Rule Manager behaviours: shared detector
// subscriptions with mixed enablement, action-step sequences, C-A
// wave ordering, and cascaded deferred firings.

import (
	"sync"
	"testing"

	"repro/internal/datum"
	"repro/internal/rule"
	"repro/internal/txn"
)

func TestPartialDisableAmongSharedSubscription(t *testing.T) {
	// Rules with identical events share one detector subscription;
	// disabling ONE of them must not silence the others.
	e, _ := newEngine(t)
	defineStockAndAudit(t, e)
	oid := createStock(t, e, "XRX", 48)
	for _, name := range []string{"r1", "r2", "r3"} {
		def := auditRule(name, "immediate", "immediate")
		def.Action[0].Attrs["note"] = "'" + name + "'"
		if _, err := e.CreateRule(def); err != nil {
			t.Fatal(err)
		}
	}
	if err := e.DisableRule("r2"); err != nil {
		t.Fatal(err)
	}
	tx := e.Begin()
	if err := e.Modify(tx, oid, map[string]datum.Value{"price": datum.Float(50)}); err != nil {
		t.Fatal(err)
	}
	res, err := e.Query(tx, "select a.note from Audit a order by a.note", nil)
	if err != nil {
		t.Fatal(err)
	}
	var notes []string
	for _, r := range res.Rows {
		notes = append(notes, r[0].AsString())
	}
	if len(notes) != 2 || notes[0] != "r1" || notes[1] != "r3" {
		t.Fatalf("fired = %v, want [r1 r3]", notes)
	}
	tx.Commit()

	// Disabling the remaining two disables the subscription entirely;
	// re-enabling one brings detection back.
	e.DisableRule("r1")
	e.DisableRule("r3")
	tx2 := e.Begin()
	e.Modify(tx2, oid, map[string]datum.Value{"price": datum.Float(51)})
	if got := auditCountIn(t, e, tx2); got != 2 {
		t.Fatalf("disabled rules fired: %d rows", got)
	}
	tx2.Commit()
	e.EnableRule("r2")
	tx3 := e.Begin()
	e.Modify(tx3, oid, map[string]datum.Value{"price": datum.Float(52)})
	res, _ = e.Query(tx3, "select a.note from Audit a where a.note = 'r2'", nil)
	if len(res.Rows) != 1 {
		t.Fatal("re-enabled rule in shared subscription did not fire")
	}
	tx3.Commit()
}

func TestDeleteOneOfSharedSubscription(t *testing.T) {
	e, _ := newEngine(t)
	defineStockAndAudit(t, e)
	oid := createStock(t, e, "XRX", 48)
	e.CreateRule(auditRule("keep", "immediate", "immediate"))
	e.CreateRule(auditRule("drop", "immediate", "immediate"))
	subs := e.Detectors.Subscriptions()
	if err := e.DeleteRule("drop"); err != nil {
		t.Fatal(err)
	}
	// The shared subscription survives (still referenced by "keep").
	if e.Detectors.Subscriptions() != subs {
		t.Fatalf("subscription dropped while still referenced")
	}
	tx := e.Begin()
	e.Modify(tx, oid, map[string]datum.Value{"price": datum.Float(50)})
	if got := auditCountIn(t, e, tx); got != 1 {
		t.Fatalf("surviving rule fired %d times, want 1", got)
	}
	tx.Commit()
	// Deleting the last rule removes the subscription.
	if err := e.DeleteRule("keep"); err != nil {
		t.Fatal(err)
	}
	if e.Detectors.Subscriptions() != subs-1 {
		t.Fatal("subscription leaked after last rule deleted")
	}
}

func TestActionStepSequence(t *testing.T) {
	// §2.1: "The action is a sequence of operations" — steps run in
	// order, in one action transaction.
	e, _ := newEngine(t)
	defineStockAndAudit(t, e)
	oid := createStock(t, e, "XRX", 48)
	var order []string
	var mu sync.Mutex
	for _, name := range []string{"first", "second", "third"} {
		name := name
		e.RegisterCall(name, func(*txn.Txn, map[string]datum.Value) error {
			mu.Lock()
			order = append(order, name)
			mu.Unlock()
			return nil
		})
	}
	if _, err := e.CreateRule(rule.Def{
		Name:  "multi-step",
		Event: "modify(Stock)",
		Action: []rule.Step{
			{Kind: rule.StepCall, Fn: "first"},
			{Kind: rule.StepCreate, Class: "Audit", Attrs: map[string]string{"note": "'mid'"}},
			{Kind: rule.StepCall, Fn: "second"},
			{Kind: rule.StepCall, Fn: "third"},
		},
		EC: "immediate", CA: "immediate",
	}); err != nil {
		t.Fatal(err)
	}
	tx := e.Begin()
	if err := e.Modify(tx, oid, map[string]datum.Value{"price": datum.Float(50)}); err != nil {
		t.Fatal(err)
	}
	tx.Commit()
	mu.Lock()
	defer mu.Unlock()
	if len(order) != 3 || order[0] != "first" || order[1] != "second" || order[2] != "third" {
		t.Fatalf("step order = %v", order)
	}
	if got := auditCount(t, e); got != 1 {
		t.Fatalf("mid-step create lost: %d", got)
	}
}

func TestActionStepFailureAbortsWholeAction(t *testing.T) {
	// A failing later step rolls back the earlier steps of the same
	// action transaction (atomic actions).
	e, _ := newEngine(t)
	defineStockAndAudit(t, e)
	oid := createStock(t, e, "XRX", 48)
	if _, err := e.CreateRule(rule.Def{
		Name:  "half-broken",
		Event: "modify(Stock)",
		Action: []rule.Step{
			{Kind: rule.StepCreate, Class: "Audit", Attrs: map[string]string{"note": "'early'"}},
			{Kind: rule.StepAbort}, // fails after the create
		},
		EC: "immediate", CA: "immediate",
	}); err != nil {
		t.Fatal(err)
	}
	tx := e.Begin()
	if err := e.Modify(tx, oid, map[string]datum.Value{"price": datum.Float(50)}); err == nil {
		t.Fatal("failing action did not surface")
	}
	// The early create was rolled back with the action txn.
	if got := auditCountIn(t, e, tx); got != 0 {
		t.Fatalf("partial action effects leaked: %d rows", got)
	}
	tx.Abort()
}

func TestCAWaveOrdering(t *testing.T) {
	// Among rules triggered by one event: C-A immediate actions all
	// complete before any C-A deferred action starts.
	e, _ := newEngine(t)
	defineStockAndAudit(t, e)
	oid := createStock(t, e, "XRX", 48)
	var mu sync.Mutex
	var order []string
	mark := func(name string) rule.CallFunc {
		return func(*txn.Txn, map[string]datum.Value) error {
			mu.Lock()
			order = append(order, name)
			mu.Unlock()
			return nil
		}
	}
	e.RegisterCall("imm", mark("imm"))
	e.RegisterCall("def", mark("def"))
	// Create the deferred-CA rule FIRST so map iteration order can't
	// accidentally give the right answer.
	e.CreateRule(rule.Def{
		Name: "ca-deferred", Event: "modify(Stock)",
		Action: []rule.Step{{Kind: rule.StepCall, Fn: "def"}},
		EC:     "immediate", CA: "deferred",
	})
	e.CreateRule(rule.Def{
		Name: "ca-immediate", Event: "modify(Stock)",
		Action: []rule.Step{{Kind: rule.StepCall, Fn: "imm"}},
		EC:     "immediate", CA: "immediate",
	})
	tx := e.Begin()
	if err := e.Modify(tx, oid, map[string]datum.Value{"price": datum.Float(50)}); err != nil {
		t.Fatal(err)
	}
	tx.Commit()
	mu.Lock()
	defer mu.Unlock()
	if len(order) != 2 || order[0] != "imm" || order[1] != "def" {
		t.Fatalf("wave order = %v, want [imm def]", order)
	}
}

func TestCascadedDeferredFiringsDrainCompletely(t *testing.T) {
	// A deferred firing's action triggers another deferred firing on
	// the same committing transaction; the §6.3 drain loop must
	// process the newly queued work before commit completes.
	e, _ := newEngine(t)
	defineStockAndAudit(t, e)
	oid := createStock(t, e, "XRX", 48)
	e.CreateRule(rule.Def{
		Name:  "level1-deferred",
		Event: "modify(Stock)",
		Action: []rule.Step{{Kind: rule.StepCreate, Class: "Audit",
			Attrs: map[string]string{"note": "'level1'"}}},
		EC: "deferred", CA: "immediate",
	})
	e.CreateRule(rule.Def{
		Name:      "level2-deferred",
		Event:     "create(Audit)",
		Condition: []string{"select a from Audit a where event.new_note = 'level1'"},
		Action: []rule.Step{{Kind: rule.StepCreate, Class: "Audit",
			Attrs: map[string]string{"note": "'level2'"}}},
		EC: "deferred", CA: "immediate",
	})
	tx := e.Begin()
	if err := e.Modify(tx, oid, map[string]datum.Value{"price": datum.Float(50)}); err != nil {
		t.Fatal(err)
	}
	if got := auditCountIn(t, e, tx); got != 0 {
		t.Fatal("deferred fired early")
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	check := e.Begin()
	defer check.Commit()
	res, err := e.Query(check, "select a.note from Audit a order by a.note", nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 2 || res.Rows[0][0].AsString() != "level1" || res.Rows[1][0].AsString() != "level2" {
		t.Fatalf("cascaded deferred drain = %v", res.Rows)
	}
}

func TestFireWithConditionRows(t *testing.T) {
	// Manual Fire evaluates the condition like an automatic firing:
	// the action runs per primary row.
	e, _ := newEngine(t)
	defineStockAndAudit(t, e)
	createStock(t, e, "A", 100)
	createStock(t, e, "B", 200)
	createStock(t, e, "C", 10)
	e.CreateRule(rule.Def{
		Name:      "sweep",
		Event:     "external(never-fires)",
		Condition: []string{"select s.symbol as sym from Stock s where s.price >= 100"},
		Action: []rule.Step{{Kind: rule.StepCreate, Class: "Audit",
			Attrs: map[string]string{"note": "sym"}}},
		EC: "immediate", CA: "immediate",
		Disabled: true,
	})
	tx := e.Begin()
	if err := e.FireRule(tx, "sweep", nil); err != nil {
		t.Fatal(err)
	}
	if got := auditCountIn(t, e, tx); got != 2 {
		t.Fatalf("fired actions = %d, want 2 (per matching row)", got)
	}
	tx.Commit()
}
