package core

// Tests for the paper's §6 rule-processing protocols (experiment
// F5.1 in DESIGN.md) and the §3.2 concurrency claims (C2, C8).

import (
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"testing"
	"time"

	"repro/internal/clock"
	"repro/internal/datum"
	"repro/internal/lock"
	"repro/internal/object"
	"repro/internal/rule"
	"repro/internal/txn"
)

// traceRecorder captures rule-manager traces.
type traceRecorder struct {
	mu     sync.Mutex
	traces []rule.Trace
}

func (r *traceRecorder) record(t rule.Trace) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.traces = append(r.traces, t)
}

func (r *traceRecorder) snapshot() []rule.Trace {
	r.mu.Lock()
	defer r.mu.Unlock()
	return append([]rule.Trace(nil), r.traces...)
}

func (r *traceRecorder) kinds() []string {
	var out []string
	for _, t := range r.snapshot() {
		out = append(out, t.Kind)
	}
	return out
}

func TestEventSignalFlow(t *testing.T) {
	// §6.2: event signal -> condition evaluation in a subtransaction
	// of the trigger -> action in a sibling subtransaction -> the
	// triggering operation resumes only after both complete.
	e, _ := newEngine(t)
	defineStockAndAudit(t, e)
	oid := createStock(t, e, "XRX", 48)
	rec := &traceRecorder{}
	e.Rules.SetTrace(rec.record)
	e.CreateRule(auditRule("audit", "immediate", "immediate"))

	tx := e.Begin()
	if err := e.Modify(tx, oid, map[string]datum.Value{"price": datum.Float(50)}); err != nil {
		t.Fatal(err)
	}
	traces := rec.snapshot()
	if len(traces) != 2 || traces[0].Kind != "cond" || traces[1].Kind != "action" {
		t.Fatalf("trace = %v", rec.kinds())
	}
	condTr, actTr := traces[0], traces[1]
	if condTr.Parent != tx.ID() || actTr.Parent != tx.ID() {
		t.Fatalf("condition/action not anchored at the trigger: %+v %+v (trigger %d)", condTr, actTr, tx.ID())
	}
	if condTr.Txn == actTr.Txn {
		t.Fatal("condition and action must run in distinct subtransactions")
	}
	if condTr.Txn <= tx.ID() || actTr.Txn <= condTr.Txn {
		t.Fatalf("transaction creation order wrong: trigger=%d cond=%d action=%d", tx.ID(), condTr.Txn, actTr.Txn)
	}
	// The trigger is operable again (all subtransactions terminated).
	if err := tx.CheckOperable(); err != nil {
		t.Fatalf("trigger still suspended after signal processing: %v", err)
	}
	tx.Commit()
}

func TestCommitFlow(t *testing.T) {
	// §6.3: deferred firings queue during the transaction and drain
	// as part of commit processing, before commit completes.
	e, _ := newEngine(t)
	defineStockAndAudit(t, e)
	oid := createStock(t, e, "XRX", 48)
	rec := &traceRecorder{}
	e.Rules.SetTrace(rec.record)
	e.CreateRule(auditRule("audit", "deferred", "immediate"))

	tx := e.Begin()
	e.Modify(tx, oid, map[string]datum.Value{"price": datum.Float(50)})
	e.Modify(tx, oid, map[string]datum.Value{"price": datum.Float(51)})
	if got := rec.kinds(); fmt.Sprint(got) != "[deferred-queue deferred-queue]" {
		t.Fatalf("pre-commit trace = %v", got)
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	got := rec.kinds()
	want := "[deferred-queue deferred-queue deferred-drain cond action deferred-drain cond action]"
	if fmt.Sprint(got) != want {
		t.Fatalf("trace = %v, want %v", got, want)
	}
	// Drained firings are anchored at the committing transaction.
	for _, tr := range rec.snapshot() {
		if tr.Kind == "cond" && tr.Parent != tx.ID() {
			t.Fatalf("deferred condition parent = %d, want trigger %d", tr.Parent, tx.ID())
		}
	}
}

func TestRuleCreationFlow(t *testing.T) {
	// §6.1: creating a rule stores a rule object, programs the event
	// detectors, registers the condition in the graph, and maps the
	// event to the rule.
	e, _ := newEngine(t)
	defineStockAndAudit(t, e)
	subsBefore := e.Detectors.Subscriptions()
	nodesBefore := e.Conditions.NodeCount()
	def := auditRule("audit", "immediate", "immediate")
	def.Condition = []string{"select s from Stock s"}
	r, err := e.CreateRule(def)
	if err != nil {
		t.Fatal(err)
	}
	if e.Detectors.Subscriptions() != subsBefore+1 {
		t.Fatal("event detector not programmed")
	}
	if e.Conditions.NodeCount() != nodesBefore+1 {
		t.Fatal("condition not added to the graph")
	}
	// The rule object exists in the database.
	tx := e.Begin()
	defer tx.Commit()
	recObj, err := e.Get(tx, r.OID)
	if err != nil || recObj.Class != rule.RuleClass {
		t.Fatalf("rule object = %+v (%v)", recObj, err)
	}
	if recObj.Attrs["name"].AsString() != "audit" {
		t.Fatal("rule object name wrong")
	}
}

func TestSiblingActionsRunConcurrently(t *testing.T) {
	// C2 / §3.2: "all of the rules fire concurrently as sibling
	// transactions" — verified with a rendezvous barrier that can
	// only be passed if all N actions are alive at the same time.
	const n = 4
	e, _ := newEngine(t)
	defineStockAndAudit(t, e)
	oid := createStock(t, e, "XRX", 48)

	var mu sync.Mutex
	arrived := 0
	cond := sync.NewCond(&mu)
	barrier := func(*txn.Txn, map[string]datum.Value) error {
		mu.Lock()
		defer mu.Unlock()
		arrived++
		cond.Broadcast()
		deadline := time.Now().Add(5 * time.Second)
		for arrived < n {
			if time.Now().After(deadline) {
				return errors.New("barrier timeout: actions are not concurrent")
			}
			cond.Wait()
		}
		return nil
	}
	e.RegisterCall("barrier", barrier)
	// Watchdog: wake sleepers periodically so the deadline check runs.
	stop := make(chan struct{})
	defer close(stop)
	go func() {
		for {
			select {
			case <-stop:
				return
			case <-time.After(100 * time.Millisecond):
				cond.Broadcast()
			}
		}
	}()

	for i := 0; i < n; i++ {
		_, err := e.CreateRule(rule.Def{
			Name:   fmt.Sprintf("sibling-%d", i),
			Event:  "modify(Stock)",
			Action: []rule.Step{{Kind: rule.StepCall, Fn: "barrier"}},
			EC:     "immediate", CA: "immediate",
		})
		if err != nil {
			t.Fatal(err)
		}
	}
	tx := e.Begin()
	if err := e.Modify(tx, oid, map[string]datum.Value{"price": datum.Float(50)}); err != nil {
		t.Fatalf("siblings did not run concurrently: %v", err)
	}
	tx.Commit()
}

func TestCascadeProducesNestedTree(t *testing.T) {
	// §3.2: cascading rule firings produce a TREE of nested
	// transactions; verify depths via traces.
	e, _ := newEngine(t)
	defineStockAndAudit(t, e)
	tx0 := e.Begin()
	if err := e.DefineClass(tx0, object.Class{Name: "L2", Attrs: []object.AttrDef{{Name: "x", Kind: datum.KindInt}}}); err != nil {
		t.Fatal(err)
	}
	tx0.Commit()
	oid := createStock(t, e, "XRX", 48)
	rec := &traceRecorder{}
	e.Rules.SetTrace(rec.record)

	e.CreateRule(rule.Def{
		Name:  "lvl1",
		Event: "modify(Stock)",
		Action: []rule.Step{{Kind: rule.StepCreate, Class: "Audit",
			Attrs: map[string]string{"note": "'1'"}}},
		EC: "immediate", CA: "immediate",
	})
	e.CreateRule(rule.Def{
		Name:  "lvl2",
		Event: "create(Audit)",
		Action: []rule.Step{{Kind: rule.StepCreate, Class: "L2",
			Attrs: map[string]string{"x": "1"}}},
		EC: "immediate", CA: "immediate",
	})

	tx := e.Begin()
	if err := e.Modify(tx, oid, map[string]datum.Value{"price": datum.Float(50)}); err != nil {
		t.Fatal(err)
	}
	// Find lvl1's action txn and lvl2's firing parent: lvl2 must be
	// anchored at lvl1's action subtransaction, forming a tree.
	var lvl1Action, lvl2CondParent lock.TxnID
	for _, tr := range rec.snapshot() {
		if tr.Kind == "action" && tr.Rule == "lvl1" {
			lvl1Action = tr.Txn
		}
		if tr.Kind == "cond" && lvl1Action != 0 && tr.Parent == lvl1Action {
			lvl2CondParent = tr.Parent
		}
	}
	if lvl1Action == 0 || lvl2CondParent != lvl1Action {
		t.Fatalf("cascade not nested under lvl1's action: traces=%v", rec.snapshot())
	}
	tx.Commit()
}

func TestSerializabilityStress(t *testing.T) {
	// C8: concurrent transfers between accounts with an auditing rule
	// attached; total balance is invariant and the books stay
	// consistent under deadlock-retry.
	e, _ := newEngine(t)
	tx0 := e.Begin()
	if err := e.DefineClass(tx0, object.Class{
		Name: "Account",
		Attrs: []object.AttrDef{
			{Name: "owner", Kind: datum.KindString, Required: true},
			{Name: "balance", Kind: datum.KindInt, Required: true},
		},
	}); err != nil {
		t.Fatal(err)
	}
	if err := e.DefineClass(tx0, auditClass); err != nil {
		t.Fatal(err)
	}
	tx0.Commit()

	const accounts = 8
	const initial = 1000
	oids := make([]datum.OID, accounts)
	seed := e.Begin()
	for i := range oids {
		var err error
		oids[i], err = e.Create(seed, "Account", map[string]datum.Value{
			"owner": datum.Str(fmt.Sprintf("acct%d", i)), "balance": datum.Int(initial),
		})
		if err != nil {
			t.Fatal(err)
		}
	}
	seed.Commit()

	// An immediate rule audits every account modification.
	if _, err := e.CreateRule(rule.Def{
		Name:  "audit-transfers",
		Event: "modify(Account)",
		Action: []rule.Step{{Kind: rule.StepCreate, Class: "Audit",
			Attrs: map[string]string{"note": "'xfer'"}}},
		EC: "immediate", CA: "immediate",
	}); err != nil {
		t.Fatal(err)
	}

	const workers = 8
	const transfersPerWorker = 30
	var committed, retried int64
	var cm sync.Mutex
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(w)))
			for i := 0; i < transfersPerWorker; {
				a, b := rng.Intn(accounts), rng.Intn(accounts)
				if a == b {
					continue
				}
				// Deterministic lock order avoids most deadlocks; the
				// rule's Audit extent lock still serializes firings.
				if a > b {
					a, b = b, a
				}
				tx := e.Begin()
				err := transfer(e, tx, oids[a], oids[b], 1)
				if err != nil {
					tx.Abort()
					if errors.Is(err, lock.ErrDeadlock) {
						cm.Lock()
						retried++
						cm.Unlock()
						continue // retry
					}
					t.Errorf("transfer: %v", err)
					return
				}
				if err := tx.Commit(); err != nil {
					t.Errorf("commit: %v", err)
					return
				}
				cm.Lock()
				committed++
				cm.Unlock()
				i++
			}
		}(w)
	}
	wg.Wait()
	e.Quiesce()

	check := e.Begin()
	defer check.Commit()
	res, err := e.Query(check, "select sum(a.balance) as total from Account a", nil)
	if err != nil {
		t.Fatal(err)
	}
	if got := res.Rows[0][0].AsInt(); got != accounts*initial {
		t.Fatalf("total balance = %d, want %d (money %s)", got, accounts*initial,
			map[bool]string{true: "created", false: "destroyed"}[got > accounts*initial])
	}
	// Every committed transfer audited exactly twice (two modifies).
	res, err = e.Query(check, "select count(*) as n from Audit a", nil)
	if err != nil {
		t.Fatal(err)
	}
	if got := res.Rows[0][0].AsInt(); got != 2*committed {
		t.Fatalf("audit rows = %d, want %d (2 per committed transfer)", got, 2*committed)
	}
	if committed != workers*transfersPerWorker {
		t.Fatalf("committed = %d", committed)
	}
}

func transfer(e *Engine, tx *txn.Txn, from, to datum.OID, amount int64) error {
	src, err := e.Get(tx, from)
	if err != nil {
		return err
	}
	dst, err := e.Get(tx, to)
	if err != nil {
		return err
	}
	if err := e.Modify(tx, from, map[string]datum.Value{
		"balance": datum.Int(src.Attrs["balance"].AsInt() - amount)}); err != nil {
		return err
	}
	return e.Modify(tx, to, map[string]datum.Value{
		"balance": datum.Int(dst.Attrs["balance"].AsInt() + amount)})
}

func TestEngineCrashRecovery(t *testing.T) {
	// C8: committed top-level effects survive an abrupt stop (no
	// Close); uncommitted ones do not.
	dir := t.TempDir()
	e, err := Open(Options{Dir: dir, NoSync: true, Clock: clock.NewVirtual(epoch)})
	if err != nil {
		t.Fatal(err)
	}
	tx := e.Begin()
	if err := e.DefineClass(tx, stockClass); err != nil {
		t.Fatal(err)
	}
	tx.Commit()
	c1 := e.Begin()
	committedOID, _ := e.Create(c1, "Stock", map[string]datum.Value{
		"symbol": datum.Str("SAFE"), "price": datum.Float(1),
	})
	c1.Commit()
	c2 := e.Begin()
	e.Create(c2, "Stock", map[string]datum.Value{
		"symbol": datum.Str("LOST"), "price": datum.Float(2),
	})
	// Crash: c2 never commits, engine never closed.
	_ = c2

	e2, err := Open(Options{Dir: dir, NoSync: true, Clock: clock.NewVirtual(epoch)})
	if err != nil {
		t.Fatal(err)
	}
	defer e2.Close()
	tx2 := e2.Begin()
	defer tx2.Commit()
	if _, err := e2.Get(tx2, committedOID); err != nil {
		t.Fatalf("committed object lost: %v", err)
	}
	res, err := e2.Query(tx2, "select count(*) as n from Stock s", nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.Rows[0][0].AsInt() != 1 {
		t.Fatalf("recovered %d stocks, want 1", res.Rows[0][0].AsInt())
	}
}

func TestEngineCheckpoint(t *testing.T) {
	dir := t.TempDir()
	e, err := Open(Options{Dir: dir, NoSync: true, Clock: clock.NewVirtual(epoch)})
	if err != nil {
		t.Fatal(err)
	}
	tx := e.Begin()
	e.DefineClass(tx, stockClass)
	tx.Commit()
	for i := 0; i < 10; i++ {
		tx := e.Begin()
		e.Create(tx, "Stock", map[string]datum.Value{
			"symbol": datum.Str(fmt.Sprintf("S%d", i)), "price": datum.Float(float64(i)),
		})
		tx.Commit()
	}
	if err := e.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	// Post-checkpoint commits land in the fresh WAL.
	tx2 := e.Begin()
	e.Create(tx2, "Stock", map[string]datum.Value{"symbol": datum.Str("POST"), "price": datum.Float(99)})
	tx2.Commit()
	e.Close()

	e2, err := Open(Options{Dir: dir, NoSync: true, Clock: clock.NewVirtual(epoch)})
	if err != nil {
		t.Fatal(err)
	}
	defer e2.Close()
	tx3 := e2.Begin()
	defer tx3.Commit()
	res, err := e2.Query(tx3, "select count(*) as n from Stock s", nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.Rows[0][0].AsInt() != 11 {
		t.Fatalf("recovered %d stocks, want 11", res.Rows[0][0].AsInt())
	}
}

func TestSeparateFiringErrorReported(t *testing.T) {
	e, _ := newEngine(t)
	defineStockAndAudit(t, e)
	oid := createStock(t, e, "XRX", 48)
	var mu sync.Mutex
	var reported []string
	e.Rules.SetErrorHandler(func(rule string, err error) {
		mu.Lock()
		reported = append(reported, rule)
		mu.Unlock()
	})
	e.RegisterCall("explode", func(*txn.Txn, map[string]datum.Value) error {
		return errors.New("boom")
	})
	e.CreateRule(rule.Def{
		Name:   "fragile",
		Event:  "modify(Stock)",
		Action: []rule.Step{{Kind: rule.StepCall, Fn: "explode"}},
		EC:     "separate", CA: "immediate",
	})
	tx := e.Begin()
	if err := e.Modify(tx, oid, map[string]datum.Value{"price": datum.Float(50)}); err != nil {
		t.Fatalf("separate firing error leaked into trigger: %v", err)
	}
	tx.Commit()
	e.Quiesce()
	mu.Lock()
	defer mu.Unlock()
	if len(reported) != 1 || reported[0] != "fragile" {
		t.Fatalf("reported = %v", reported)
	}
}
